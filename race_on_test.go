//go:build race

package rakis_test

// raceDetectorEnabled reports whether this binary was built with -race.
//
// CI runs the FM and ring tests both ways on purpose. The -race run is
// load-bearing: the enclave and the simulated host kernel exchange data
// through genuinely shared mem.Space segments, so a missing happens-
// before edge in the ring protocol (a control word read without the
// Atomic32 cell, a slot read outside the Submit/Release window) is a
// real RAKIS bug that only the race detector surfaces — the tests would
// still pass by luck without it. Conversely, the adversarial scribbling
// tests ARE intentional data races (the host tampering concurrently
// with FM reads, as on real SGX hardware) and use this constant to skip
// themselves under -race; they only run in the uninstrumented pass.
const raceDetectorEnabled = true
