//go:build race

package rakis_test

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = true
