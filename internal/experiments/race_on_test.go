//go:build race

package experiments

// raceDetectorEnabled reports whether this binary was built with -race.
// See race_off_test.go: the race pass keeps the functional experiment
// tests but skips scheduling-sensitive calibration bands.
const raceDetectorEnabled = true
