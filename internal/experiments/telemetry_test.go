package experiments

import (
	"testing"

	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

// TestTelemetryConservation runs an instrumented iperf3 cell in every
// environment and asserts the accounting invariant of the telemetry
// subsystem: every probed thread's per-component cycle totals sum
// exactly to its virtual clock, and every span's component decomposition
// sums to the span's recorded cycles. Any charge that bypasses
// attribution, or any attribution without a matching clock advance,
// fails here.
func TestTelemetryConservation(t *testing.T) {
	for _, env := range Environments {
		t.Run(env.String(), func(t *testing.T) {
			sink := telemetry.NewSink()
			sink.Trace.Enable()
			w, err := NewWorld(Options{Env: env, Telemetry: sink})
			if err != nil {
				t.Fatal(err)
			}
			res, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{
				PacketSize: 512, Count: 300,
			})
			w.Close()
			if err != nil {
				t.Fatal(err)
			}
			if res.Received == 0 {
				t.Fatal("iperf3 delivered nothing; the cell is not exercising the stack")
			}
			if err := sink.CheckConservation(); err != nil {
				t.Fatal(err)
			}

			bd := sink.Breakdown()
			if len(bd.Spans) == 0 {
				t.Fatal("no spans recorded in an instrumented run")
			}
			spans := map[string]telemetry.SpanRow{}
			for _, row := range bd.Spans {
				spans[row.Syscall] = row
			}
			for _, name := range []string{"socket", "bind", "recvfrom"} {
				row, ok := spans[name]
				if !ok {
					t.Fatalf("iperf3 server recorded no %q spans (got %v)", name, bd.Spans)
				}
				if row.Count == 0 || row.Cycles == 0 {
					t.Fatalf("%q span empty: %+v", name, row)
				}
			}

			// The registry is the single source of truth for the legacy
			// counter sinks: the exit gauge must agree with the raw counter.
			gauge, ok := sink.Reg.Value("vtime.enclave_exits")
			if !ok {
				t.Fatal("vtime.enclave_exits gauge not registered")
			}
			if raw := w.Counters.EnclaveExits.Load(); gauge != raw {
				t.Fatalf("exit gauge %d != counter %d", gauge, raw)
			}
			if env == GramineSGX && gauge == 0 {
				t.Fatal("Gramine-SGX iperf3 run recorded zero enclave exits")
			}

			// Per-queue drop gauges must exist for both NIC ends.
			if _, ok := sink.Reg.Value("netsim.eth-server.q0.dropped"); !ok {
				t.Fatal("server NIC drop gauge not registered")
			}
			if _, ok := sink.Reg.Value("netsim.eth-client.q0.dropped"); !ok {
				t.Fatal("client NIC drop gauge not registered")
			}

			// The trace must have captured boundary traffic appropriate to
			// the environment.
			kinds := map[telemetry.Kind]int{}
			for _, e := range sink.Trace.Events() {
				kinds[e.Kind]++
			}
			if kinds[telemetry.EvSoftirqFrame] == 0 {
				t.Fatal("no softirq frame events despite traffic")
			}
			if env == GramineSGX && kinds[telemetry.EvEnclaveExit] == 0 {
				t.Fatal("Gramine-SGX run traced no enclave exits")
			}
			if env.IsRakis() {
				if kinds[telemetry.EvRingProduce] == 0 || kinds[telemetry.EvRingConsume] == 0 {
					t.Fatalf("RAKIS run traced no certified ring traffic: %v", kinds)
				}
			}
		})
	}
}

// TestTelemetryDisabledWorld checks that a world built without a sink
// still runs and that the nil plumbing stays inert end to end.
func TestTelemetryDisabledWorld(t *testing.T) {
	w, err := NewWorld(Options{Env: RakisSGX})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Telemetry != nil {
		t.Fatal("uninstrumented world grew a sink")
	}
	if _, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{
		PacketSize: 256, Count: 100,
	}); err != nil {
		t.Fatal(err)
	}
	// Drop accounting works with or without telemetry.
	_ = w.TotalDrops()
}
