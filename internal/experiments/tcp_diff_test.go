package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/sys"
)

// Differential tests for the in-enclave XSK TCP path: the same
// deterministic TCP workload run against the io_uring-proxied
// environment (TCP terminated in the host kernel, the paper's §7
// configuration) and against the in-enclave XSK TCP environment must
// produce byte-identical application streams at every connection width.
// Moving the TCP endpoint across the trust boundary changes who pays
// for a segment — never what the application observes. Refusal and ring
// accounting is asserted exactly, not bounded: a clean run refuses
// nothing in either world, the cookie counters move once per handshake
// on the enclave stack and never on the kernel stack, and a probe at a
// closed port costs exactly one deterministic refusal in each.

// tcpDiffWidths is the connection-parallelism ladder. Width also sets
// the XSK shard count (capped at 8 queues) so the high widths exercise
// cross-shard demux, not just one busy lane.
var tcpDiffWidths = []int{1, 2, 4, 8, 16, 32, 64}

const (
	tcpDiffPort = 6401
	tcpDiffMsgs = 6
)

// tcpDiffMsg is message k of connection ci: a deterministic size in
// [1, 2800] — straddling the 1460-byte MSS so multi-segment sends and
// reassembly are on the differential path — with a deterministic fill.
func tcpDiffMsg(ci, k int) []byte {
	size := 1 + (ci*131+k*977)%2800
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(ci*7 + k*13 + i*31)
	}
	return b
}

// tcpDiffServer is a poll-loop echo server: every received byte is sent
// straight back. It exits once all `conns` expected connections have
// been accepted and have closed.
func tcpDiffServer(t sys.Sys, port uint16, conns int, ready chan<- struct{}) error {
	lfd, err := t.Socket(sys.TCP)
	if err != nil {
		return err
	}
	if err := t.Bind(lfd, port); err != nil {
		return err
	}
	if err := t.Listen(lfd, 128); err != nil {
		return err
	}
	close(ready)
	accepted := 0
	live := make(map[int]bool)
	buf := make([]byte, 65536)
	giveUp := time.Now().Add(60 * time.Second)
	for {
		if accepted == conns && len(live) == 0 {
			t.Close(lfd)
			return nil
		}
		if time.Now().After(giveUp) {
			for fd := range live {
				t.Close(fd)
			}
			t.Close(lfd)
			return fmt.Errorf("tcp diff server: %d/%d conns still open after 60s", len(live), conns)
		}
		fds := make([]sys.PollFD, 0, len(live)+1)
		if accepted < conns {
			fds = append(fds, sys.PollFD{FD: lfd, Events: sys.PollIn})
		}
		for fd := range live {
			fds = append(fds, sys.PollFD{FD: fd, Events: sys.PollIn})
		}
		if _, err := t.Poll(fds, time.Second); err != nil {
			return err
		}
		for _, pf := range fds {
			if pf.Revents == 0 {
				continue
			}
			if pf.FD == lfd {
				if nfd, _, err := t.Accept(lfd, false); err == nil {
					live[nfd] = true
					accepted++
				}
				continue
			}
			n, err := t.Recv(pf.FD, buf, false)
			if err != nil {
				continue
			}
			if n == 0 { // EOF
				t.Close(pf.FD)
				delete(live, pf.FD)
				continue
			}
			if _, err := t.Send(pf.FD, buf[:n]); err != nil {
				t.Close(pf.FD)
				delete(live, pf.FD)
			}
		}
	}
}

// tcpDiffClient drives one connection stop-and-wait through the message
// schedule and returns the concatenated reply stream.
func tcpDiffClient(cli sys.Sys, dst sys.Addr, ci int) ([]byte, error) {
	fd, err := cli.Socket(sys.TCP)
	if err != nil {
		return nil, err
	}
	if err := cli.Connect(fd, dst); err != nil {
		return nil, fmt.Errorf("conn %d connect: %w", ci, err)
	}
	var stream []byte
	scratch := make([]byte, 8192)
	for k := 0; k < tcpDiffMsgs; k++ {
		msg := tcpDiffMsg(ci, k)
		if _, err := cli.Send(fd, msg); err != nil {
			return nil, fmt.Errorf("conn %d msg %d send: %w", ci, k, err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for got := 0; got < len(msg); {
			n, err := cli.Recv(fd, scratch, false)
			if err == nil {
				if n == 0 {
					return nil, fmt.Errorf("conn %d msg %d: EOF mid-echo", ci, k)
				}
				stream = append(stream, scratch[:n]...)
				got += n
				continue
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("conn %d msg %d: no echo within 20s (%d/%d bytes)", ci, k, got, len(msg))
			}
			cli.Poll([]sys.PollFD{{FD: fd, Events: sys.PollIn}}, 50*time.Millisecond)
		}
	}
	cli.Close(fd)
	return stream, nil
}

// tcpDiffRun is one world's observable outcome: per-connection reply
// streams plus the exact refusal, cookie, and ring accounting.
type tcpDiffRun struct {
	streams         [][]byte
	refused         uint64
	cookiesSent     uint64
	cookiesAccepted uint64
	ringViolations  uint64
	ringResyncs     uint64
}

// runTCPDiffWorld boots one world of the given environment, runs the
// echo schedule at the given width, and captures the outcome.
func runTCPDiffWorld(t *testing.T, env Environment, width int, inj *chaos.Injector) tcpDiffRun {
	t.Helper()
	shards := width
	if shards > 8 {
		shards = 8
	}
	w, err := NewWorld(Options{Env: env, NumXSKs: shards, ServerQueues: shards, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	e := w.WorkloadEnv()
	srv, err := e.ServerThread()
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan struct{})
	serverErr := make(chan error, 1)
	go func() { serverErr <- tcpDiffServer(srv, tcpDiffPort, width, ready) }()
	<-ready

	dst := sys.Addr{IP: e.TCPServerIP(), Port: tcpDiffPort}
	streams := make([][]byte, width)
	errs := make([]error, width)
	var wg sync.WaitGroup
	for ci := 0; ci < width; ci++ {
		cli := e.ClientThread()
		wg.Add(1)
		go func(ci int, cli sys.Sys) {
			defer wg.Done()
			streams[ci], errs[ci] = tcpDiffClient(cli, dst, ci)
		}(ci, cli)
	}
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			t.Fatalf("%v width %d: client %d: %v", env, width, ci, err)
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("%v width %d: server: %v", env, width, err)
	}
	return tcpDiffRun{
		streams:         streams,
		refused:         w.Counters.TCPRefused.Load(),
		cookiesSent:     w.Counters.TCPCookiesSent.Load(),
		cookiesAccepted: w.Counters.TCPCookiesAccepted.Load(),
		ringViolations:  w.Counters.RingViolations.Load() + w.Counters.UMemViolations.Load(),
		ringResyncs:     w.Counters.RingResyncs.Load(),
	}
}

// assertTCPStreams fails unless both runs produced byte-identical
// per-connection reply streams that also match the send schedule — a
// bug corrupting both worlds identically cannot hide behind equality.
func assertTCPStreams(t *testing.T, proxied, xsk tcpDiffRun, width int) {
	t.Helper()
	for ci := 0; ci < width; ci++ {
		if !bytes.Equal(proxied.streams[ci], xsk.streams[ci]) {
			t.Fatalf("width %d conn %d: proxied and xsk-tcp reply streams diverge (%d vs %d bytes)",
				width, ci, len(proxied.streams[ci]), len(xsk.streams[ci]))
		}
		var want []byte
		for k := 0; k < tcpDiffMsgs; k++ {
			want = append(want, tcpDiffMsg(ci, k)...)
		}
		if !bytes.Equal(xsk.streams[ci], want) {
			t.Fatalf("width %d conn %d: reply stream does not match the send schedule", width, ci)
		}
	}
}

// TestTCPDifferentialStreams: at every width 1..64, the proxied and
// XSK TCP environments deliver byte-identical reply streams, with the
// exact clean-run accounting of each world: zero refusals and zero ring
// violations in both; on the enclave stack exactly one cookie minted
// and one accepted per handshake; on the kernel stack no cookies at all
// (its listen path is stateful).
func TestTCPDifferentialStreams(t *testing.T) {
	for _, width := range tcpDiffWidths {
		proxied := runTCPDiffWorld(t, RakisSGX, width, nil)
		xsk := runTCPDiffWorld(t, RakisSGXXskTCP, width, nil)
		assertTCPStreams(t, proxied, xsk, width)
		for _, r := range []struct {
			name string
			run  tcpDiffRun
		}{{"proxied", proxied}, {"xsk-tcp", xsk}} {
			if r.run.refused != 0 {
				t.Errorf("width %d %s: %d refusals on a clean run, want exactly 0", width, r.name, r.run.refused)
			}
			if r.run.ringViolations != 0 || r.run.ringResyncs != 0 {
				t.Errorf("width %d %s: ring accounting %d violations / %d resyncs, want exactly 0 / 0",
					width, r.name, r.run.ringViolations, r.run.ringResyncs)
			}
		}
		if proxied.cookiesSent != 0 || proxied.cookiesAccepted != 0 {
			t.Errorf("width %d proxied: cookie counters moved (%d sent, %d accepted) on the stateful kernel listen path",
				width, proxied.cookiesSent, proxied.cookiesAccepted)
		}
		if xsk.cookiesSent != uint64(width) || xsk.cookiesAccepted != uint64(width) {
			t.Errorf("width %d xsk-tcp: cookies sent=%d accepted=%d, want exactly %d/%d (one per handshake)",
				width, xsk.cookiesSent, xsk.cookiesAccepted, width, width)
		}
	}
}

// TestTCPDifferentialRefusal: a connect at a closed port is refused in
// both environments with identical application-visible behavior and
// exactly one deterministic refusal on the answering stack — the
// kernel's in the proxied world, the enclave's in the XSK world.
func TestTCPDifferentialRefusal(t *testing.T) {
	for _, env := range []Environment{RakisSGX, RakisSGXXskTCP} {
		w, err := NewWorld(Options{Env: env, NumXSKs: 2})
		if err != nil {
			t.Fatal(err)
		}
		e := w.WorkloadEnv()
		cli := e.ClientThread()
		fd, err := cli.Socket(sys.TCP)
		if err != nil {
			t.Fatal(err)
		}
		err = cli.Connect(fd, sys.Addr{IP: e.TCPServerIP(), Port: 9})
		refused := w.Counters.TCPRefused.Load()
		w.Close()
		if err == nil {
			t.Errorf("%v: connect to a closed port succeeded", env)
		}
		if refused != 1 {
			t.Errorf("%v: closed-port probe cost %d refusals, want exactly 1", env, refused)
		}
	}
}

// TestTCPDifferentialUnderChaos: under the completion-safe wire
// profiles (same profile, same seed in both worlds) the two
// environments still deliver byte-identical reply streams. Loss,
// duplication, and corruption change retransmission bills — RTO on the
// enclave stack, the kernel's on the proxied path — never application
// bytes. Fault timing is not deterministic across the two worlds, so
// only completion and stream equality are asserted, the same contract
// the chaos matrix enforces.
func TestTCPDifferentialUnderChaos(t *testing.T) {
	const width = 8
	profiles := chaos.Profiles()
	for _, name := range []string{"net", "synflood"} {
		prof, ok := profiles[name]
		if !ok {
			t.Fatalf("chaos profile %q missing", name)
		}
		if !prof.RequireCompletion {
			t.Fatalf("profile %q does not require completion; the differential contract needs one that does", name)
		}
		t.Run(name, func(t *testing.T) {
			seed := uint64(0x7cb)
			proxied := runTCPDiffWorld(t, RakisSGX, width, chaos.New(prof, seed, nil, nil))
			xsk := runTCPDiffWorld(t, RakisSGXXskTCP, width, chaos.New(prof, seed, nil, nil))
			assertTCPStreams(t, proxied, xsk, width)
		})
	}
}
