package experiments

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/mem"
	"rakis/internal/workloads"
)

// Differential tests for the batched fast path: the batched and scalar
// paths must yield byte-identical datagram streams, identical final ring
// states, and identical certification refusals — batching may change the
// cost of a run, never its observable behavior.

// diffParams derives one random echo workload from a seed: both worlds
// of a differential pair replay the same derived parameters, so any
// divergence is the batched path's fault, not the workload's.
func diffParams(seed int64) workloads.EchoParams {
	rng := rand.New(rand.NewSource(seed))
	return workloads.EchoParams{
		PacketSize: 64 + rng.Intn(900),
		Count:      96 + rng.Intn(96),
		Port:       7,
	}
}

// diffRun is one world's observable outcome: the client's received
// payload stream, the enclave packet counters, the refusal counters, and
// the final trusted ring indices of every XSK.
type diffRun struct {
	res        workloads.EchoResult
	pktRx      uint64
	pktTx      uint64
	bytesRx    uint64
	bytesTx    uint64
	violations uint64
	resyncs    uint64
	rings      [][3]uint32 // per XSK: RX, TX, Fill local indices
}

// runEchoWorld builds one RakisSGX world, runs the echo workload at the
// given vector width, quiesces the pumps, and captures the outcome.
func runEchoWorld(t *testing.T, p workloads.EchoParams, batch int, inj *chaos.Injector) diffRun {
	t.Helper()
	p.Batch = batch
	w, err := NewWorld(Options{Env: RakisSGX, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	res, err := workloads.UDPEcho(w.WorkloadEnv(), p, true)
	if err != nil {
		t.Fatalf("b=%d: %v", batch, err)
	}
	d := diffRun{
		res:        res,
		pktRx:      w.Counters.PacketsRx.Load(),
		pktTx:      w.Counters.PacketsTx.Load(),
		bytesRx:    w.Counters.BytesRx.Load(),
		bytesTx:    w.Counters.BytesTx.Load(),
		violations: w.Counters.RingViolations.Load() + w.Counters.UMemViolations.Load(),
		resyncs:    w.Counters.RingResyncs.Load(),
	}
	// Quiesce the pumps so the trusted ring shadows stop moving, then
	// record them. Completion-ring indices are excluded: TX-completion
	// reaping races the shutdown and is invisible to the application.
	for _, pump := range w.Rakis().Pumps() {
		pump.Close()
	}
	for _, pump := range w.Rakis().Pumps() {
		s := pump.Socket()
		d.rings = append(d.rings, [3]uint32{s.RX.Local(), s.TX.Local(), s.Fill.Local()})
	}
	return d
}

// assertSameStream fails unless the two runs produced byte-identical
// payload streams in identical order.
func assertSameStream(t *testing.T, scalar, batched diffRun, batch int) {
	t.Helper()
	if scalar.res.Echoed != batched.res.Echoed {
		t.Fatalf("b=%d echoed %d datagrams, scalar echoed %d", batch, batched.res.Echoed, scalar.res.Echoed)
	}
	if len(scalar.res.Payloads) != len(batched.res.Payloads) {
		t.Fatalf("b=%d stream length %d, scalar %d", batch, len(batched.res.Payloads), len(scalar.res.Payloads))
	}
	for i := range scalar.res.Payloads {
		if !bytes.Equal(scalar.res.Payloads[i], batched.res.Payloads[i]) {
			t.Fatalf("b=%d datagram %d differs from the scalar stream", batch, i)
		}
	}
}

// TestBatchDifferentialStreams: for random seeded workloads and every
// vector width 1..64, the batched path must deliver the exact datagram
// stream the scalar path delivers, with equal enclave packet accounting,
// equal final ring indices, and zero certification refusals in both
// worlds.
func TestBatchDifferentialStreams(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		p := diffParams(seed)
		scalar := runEchoWorld(t, p, 1, nil)
		if scalar.violations != 0 {
			t.Fatalf("seed %d: scalar run refused %d certifications on a well-behaved host", seed, scalar.violations)
		}
		for _, batch := range []int{2, 7, 32, 64} {
			batched := runEchoWorld(t, p, batch, nil)
			assertSameStream(t, scalar, batched, batch)
			if batched.violations != 0 {
				t.Fatalf("seed %d b=%d: batched run refused %d certifications on a well-behaved host",
					seed, batch, batched.violations)
			}
			if batched.pktRx != scalar.pktRx || batched.pktTx != scalar.pktTx ||
				batched.bytesRx != scalar.bytesRx || batched.bytesTx != scalar.bytesTx {
				t.Fatalf("seed %d b=%d: packet accounting differs: batched rx=%d/%dB tx=%d/%dB scalar rx=%d/%dB tx=%d/%dB",
					seed, batch, batched.pktRx, batched.bytesRx, batched.pktTx, batched.bytesTx,
					scalar.pktRx, scalar.bytesRx, scalar.pktTx, scalar.bytesTx)
			}
			if len(batched.rings) != len(scalar.rings) {
				t.Fatalf("seed %d b=%d: XSK count differs", seed, batch)
			}
			for i := range scalar.rings {
				if batched.rings[i] != scalar.rings[i] {
					t.Fatalf("seed %d b=%d xsk %d: final ring state %v, scalar %v (RX, TX, Fill locals)",
						seed, batch, i, batched.rings[i], scalar.rings[i])
				}
			}
		}
	}
}

// refusalProbe drives one world through traffic, a deterministic hostile
// write, and recovery traffic, returning the refusal counters. The
// hostile write lands in an idle window (no traffic in flight), so the
// FM's certified reads meet it exactly resyncThreshold times before
// quarantine-and-resync heals the cell: the refusal count is exact, not
// statistical, and must be identical in the scalar and batched worlds.
func refusalProbe(t *testing.T, p workloads.EchoParams, batch int) (violations, resyncs uint64) {
	t.Helper()
	w, err := NewWorld(Options{Env: RakisSGX})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	p.Batch = batch
	p.Port = 7
	if _, err := workloads.UDPEcho(w.WorkloadEnv(), p, false); err != nil {
		t.Fatalf("b=%d warmup: %v", batch, err)
	}
	if v := w.Counters.RingViolations.Load(); v != 0 {
		t.Fatalf("b=%d: %d refusals before the hostile write", batch, v)
	}

	// The hostile write: a producer index one past the certification
	// window on the RX ring, stored during an idle window. Every pump
	// poll refuses it; the fourth refusal triggers quarantine-and-resync.
	sock := w.Rakis().Pumps()[0].Socket()
	cell, err := w.Space.Atomic32(mem.RoleHost, sock.RX.Base())
	if err != nil {
		t.Fatal(err)
	}
	cell.Store(sock.RX.Local() + sock.RX.Size() + 1)

	deadline := time.Now().Add(5 * time.Second)
	for w.Counters.RingResyncs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("b=%d: quarantine-and-resync never fired (violations=%d)",
				batch, w.Counters.RingViolations.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}

	// The system must have healed: a second workload completes on the
	// resynced ring.
	p.Port = 8
	if _, err := workloads.UDPEcho(w.WorkloadEnv(), p, false); err != nil {
		t.Fatalf("b=%d after resync: %v", batch, err)
	}
	return w.Counters.RingViolations.Load(), w.Counters.RingResyncs.Load()
}

// TestBatchDifferentialRefusals: a deterministic hostile producer value
// must produce the identical certification-refusal outcome on the scalar
// and batched paths — exactly resyncThreshold refusals, one resync, and
// full recovery, in both worlds.
func TestBatchDifferentialRefusals(t *testing.T) {
	p := diffParams(3)
	const wantViolations, wantResyncs = 4, 1 // ring.resyncThreshold consecutive refusals, then one heal
	for _, batch := range []int{1, 32} {
		violations, resyncs := refusalProbe(t, p, batch)
		if violations != wantViolations || resyncs != wantResyncs {
			t.Fatalf("b=%d: %d refusals / %d resyncs, want exactly %d / %d",
				batch, violations, resyncs, wantViolations, wantResyncs)
		}
	}
}

// TestBatchDifferentialUnderChaos: under the completion-profile fault
// injectors of the chaos suite (same profile, same seed in both worlds),
// the batched path must still deliver the byte-identical datagram stream
// the scalar path delivers. Fault timing is not deterministic across the
// two worlds — only completion and stream equality are asserted, the
// same contract the chaos matrix enforces.
func TestBatchDifferentialUnderChaos(t *testing.T) {
	profiles := chaos.Profiles()
	for _, name := range []string{"wakeups", "mmdeath"} {
		prof, ok := profiles[name]
		if !ok {
			t.Fatalf("chaos profile %q missing", name)
		}
		if !prof.RequireCompletion {
			t.Fatalf("profile %q does not require completion; the differential contract needs one that does", name)
		}
		t.Run(name, func(t *testing.T) {
			p := diffParams(4)
			seed := uint64(0x5eed)
			scalar := runEchoWorld(t, p, 1, chaos.New(prof, seed, nil, nil))
			batched := runEchoWorld(t, p, 32, chaos.New(prof, seed, nil, nil))
			assertSameStream(t, scalar, batched, 32)
		})
	}
}
