package experiments

import "testing"

// TestTCPFigureGate pins the acceptance bar of the in-enclave TCP
// figure: the XSK TCP environment serves the Redis-style TCP echo at
// the startup-only exit floor (steady-state exits/op ≤ 0.01) and at
// ≥1.5× the throughput of the io_uring-proxied row. A regression in the
// view-path TCP ingest, the cookie listen path, the flow-affine TX
// lanes, or the poll plumbing shows up here as either exit leakage or a
// throughput collapse.
func TestTCPFigureGate(t *testing.T) {
	ops := TCPFigOps(0.25)
	proxied, err := RunTCPCell(RakisSGX, ops)
	if err != nil {
		t.Fatalf("proxied cell: %v", err)
	}
	xsk, err := RunTCPCell(RakisSGXXskTCP, ops)
	if err != nil {
		t.Fatalf("xsk cell: %v", err)
	}
	t.Logf("proxied: %.0f ops/s, %.4f exits/op (%d ops, %d drops)",
		proxied.OpsPerSec, proxied.ExitsPerOp, proxied.Ops, proxied.Drops)
	t.Logf("xsk-tcp: %.0f ops/s, %.4f exits/op (%d ops, %d drops)",
		xsk.OpsPerSec, xsk.ExitsPerOp, xsk.Ops, xsk.Drops)

	if xsk.ExitsPerOp > 0.01 {
		t.Errorf("xsk-tcp steady-state exits/op = %.4f, want ≤ 0.01 (startup-only floor)",
			xsk.ExitsPerOp)
	}
	if xsk.OpsPerSec < 1.5*proxied.OpsPerSec {
		t.Errorf("xsk-tcp throughput %.0f ops/s < 1.5x proxied %.0f ops/s",
			xsk.OpsPerSec, proxied.OpsPerSec)
	}
}
