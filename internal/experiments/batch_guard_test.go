package experiments

import (
	"testing"

	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

// echoExitCell runs the UDP echo workload at one vector width in a fresh
// instrumented world and reports (enclave exits per echoed datagram,
// batch calls, batched messages) out of the telemetry registry — the
// same vtime.* gauges rakis-bench and cmd/rakis-trace read.
func echoExitCell(t *testing.T, env Environment, batch int) (exitsPerOp float64, calls, msgs uint64) {
	t.Helper()
	sink := telemetry.NewSink()
	w, err := NewWorld(Options{Env: env, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := workloads.UDPEcho(w.WorkloadEnv(), workloads.EchoParams{
		PacketSize: 256, Count: 256, Batch: batch,
	}, false)
	w.Close()
	if runErr != nil {
		t.Fatalf("%v b=%d: %v", env, batch, runErr)
	}
	if res.Echoed != 256 {
		t.Fatalf("%v b=%d: echoed %d of 256", env, batch, res.Echoed)
	}
	exits, ok := sink.Reg.Value("vtime.enclave_exits")
	if !ok {
		t.Fatal("vtime.enclave_exits gauge not registered")
	}
	calls, _ = sink.Reg.Value("vtime.batch_calls")
	msgs, _ = sink.Reg.Value("vtime.batched_msgs")
	return float64(exits) / float64(res.Echoed), calls, msgs
}

// TestBatchExitAmortization is the exit-amortization regression guard:
// the XSK echo workload at batch 32 must pay at least 4x fewer enclave
// exits per datagram than the scalar path on Gramine-SGX (where every
// scalar recv+send is two OCALLs), and on RAKIS-SGX — whose UDP data
// path pays zero exits — batching must not add a single exit.
func TestBatchExitAmortization(t *testing.T) {
	scalar, _, _ := echoExitCell(t, GramineSGX, 1)
	batched, calls, msgs := echoExitCell(t, GramineSGX, 32)
	if calls == 0 {
		t.Fatal("batch-32 run recorded no vectored calls; the batched path did not execute")
	}
	if msgs < 2*256 {
		// Every datagram passes through one RecvFromN and one SendToN.
		t.Fatalf("batch-32 run vectored only %d messages, want >= %d", msgs, 2*256)
	}
	if scalar < 4*batched {
		t.Fatalf("exit amortization regressed: scalar %.3f exits/op vs batched %.3f (%.1fx, want >= 4x)",
			scalar, batched, scalar/batched)
	}
	t.Logf("Gramine-SGX: %.3f exits/op scalar, %.3f batched (%.1fx amortization)",
		scalar, batched, scalar/batched)

	rakisScalar, _, _ := echoExitCell(t, RakisSGX, 1)
	rakisBatched, rcalls, _ := echoExitCell(t, RakisSGX, 32)
	if rcalls == 0 {
		t.Fatal("RAKIS batch-32 run recorded no vectored calls")
	}
	if rakisBatched > rakisScalar {
		t.Fatalf("batching added exits on RAKIS-SGX: %.3f/op batched vs %.3f/op scalar — the data path must stay exit-free",
			rakisBatched, rakisScalar)
	}
	// And the RAKIS floor sits far below even the amortized Gramine cost.
	if rakisBatched >= batched {
		t.Fatalf("RAKIS-SGX (%.3f exits/op) not below batched Gramine-SGX (%.3f)", rakisBatched, batched)
	}
}
