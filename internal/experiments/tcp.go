package experiments

import (
	"fmt"

	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

// TCPFigOps returns the Redis op count used by FigTCP at the given
// scale (shared with the gate test so both measure the same regime).
func TCPFigOps(scale Scale) int {
	ops := int(float64(4000) * float64(scale))
	if ops < 800 {
		ops = 800
	}
	return ops
}

// TCPCell runs the Redis-style TCP echo workload in one environment and
// reports throughput plus steady-state enclave exits per operation. The
// exit counter is snapshotted after world boot, so what is measured is
// the workload's own exit bill: for the io_uring-proxied configuration
// that includes its per-thread ring setup; for the XSK TCP
// configuration everything from listen to close stays enclave-side.
type TCPCellResult struct {
	OpsPerSec  float64
	ExitsPerOp float64
	Ops        int
	Drops      uint64
}

// RunTCPCell boots one world, serves ops Redis SET commands over TCP,
// and returns the measured cell.
func RunTCPCell(env Environment, ops int) (TCPCellResult, error) {
	sink := telemetry.NewSink()
	w, err := NewWorld(Options{Env: env, NumXSKs: 2, Telemetry: sink})
	if err != nil {
		return TCPCellResult{}, err
	}
	exits0, _ := sink.Reg.Value("vtime.enclave_exits")
	res, runErr := workloads.Redis(w.WorkloadEnv(), workloads.RedisParams{
		Command:     "SET",
		Ops:         ops,
		Connections: 8,
		UseEpoll:    true,
	})
	exits1, _ := sink.Reg.Value("vtime.enclave_exits")
	drops := w.TotalDrops()
	w.Close()
	if runErr != nil {
		return TCPCellResult{}, fmt.Errorf("tcp cell %v: %w", env, runErr)
	}
	return TCPCellResult{
		OpsPerSec:  res.OpsPerSec,
		ExitsPerOp: float64(exits1-exits0) / float64(res.Ops),
		Ops:        res.Ops,
		Drops:      drops,
	}, nil
}

// FigTCP extends Figure 5(b): the Redis-style TCP workload on the
// io_uring-proxied configuration (the paper's RAKIS-SGX, TCP terminated
// in the host kernel per §7) versus the in-enclave XSK TCP environment.
// Two row groups: client-observed throughput and steady-state enclave
// exits per op. The XSK row must sit at the zero-exit floor while
// beating the proxied row's throughput — the figure the paper never
// achieved.
func FigTCP(scale Scale) ([]Row, error) {
	ops := TCPFigOps(scale)
	var rows []Row
	for _, env := range []Environment{RakisSGX, RakisSGXXskTCP} {
		cell, err := RunTCPCell(env, ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			Row{Env: env, Param: "redis-SET", Value: cell.OpsPerSec, Unit: "ops/s", Drops: cell.Drops},
			Row{Env: env, Param: "exits/op", Value: cell.ExitsPerOp, Unit: "exits/op"},
		)
	}
	return rows, nil
}
