package experiments

import (
	"fmt"

	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

// This file is the shard-scaling figure: the sharded data path on
// RAKIS-SGX across XSK shard counts 1..16. Each cell runs a fixed total
// volume of flow-pinned echo (or memcached) traffic, so more shards
// means the same work spread over more pumps — the client-clock
// makespan shrinks and throughput scales near-linearly, while the
// zero-exit UDP fast path keeps exits per op at the single-shard floor.
// An S=8 round-robin TX ablation cell rides along: same world, same
// load, pre-shard rotating queue selection — what flow affinity buys is
// read directly off the pair.

// ShardCell is one shard-count configuration's measurement.
type ShardCell struct {
	// Name identifies the cell ("echo/4", "memcached/8", "echo/8/rr").
	Name string
	// Shards is the XSK/shard count the world booted with.
	Shards int
	// RoundRobin marks the TX-ablation cell.
	RoundRobin bool

	// Ops is the delivered operation count (echo round trips or
	// memcached ops).
	Ops int
	// OpsPerSec is throughput over the client-clock makespan.
	OpsPerSec float64
	// ExitsPerOp is enclave exits per delivered op, measured as a delta
	// around the workload so per-shard boot-time setup exits (which grow
	// with the shard count) don't pollute the steady-state ratio.
	ExitsPerOp float64
	// PerShardRx is each shard pump's delivered-frame count — the
	// balance evidence that the flows actually spread across shards.
	PerShardRx []uint64
	// PerShardTx is each shard TX lane's frame count.
	PerShardTx []uint64
	// Drops is the NIC-queue drop count for the run.
	Drops uint64
}

// shardWorldOptions sizes a world so the NICs are never the bottleneck
// being measured: server queues and client queues both track the shard
// count.
func shardWorldOptions(shards int, sink *telemetry.Sink, rr bool) Options {
	sq, cq := shards, shards
	if sq < 4 {
		sq = 4
	}
	if cq < 2 {
		cq = 2
	}
	// Each XSK shard owns a 16 MB UMEM plus rings inside the untrusted
	// segment; the default 256 MB segment fits 8 shards with room to
	// spare but not 16, so the segment grows with the shard count.
	untrusted := (64 + 24*shards) << 20
	if untrusted < 1<<28 {
		untrusted = 1 << 28
	}
	return Options{
		Env:            RakisSGX,
		NumXSKs:        shards,
		ServerQueues:   sq,
		ClientQueues:   cq,
		RoundRobinTX:   rr,
		UntrustedBytes: untrusted,
		// The sweep pins kernel busy-poll: at saturation each queue's
		// poll worker drains its rings on its own clock, so the one MM
		// thread multiplexing every shard issues no per-op wakeup
		// syscall — without that, the MM clock is a serial ~1.2 kcyc/op
		// ceiling no shard count clears (the adaptive runtime reaches
		// the same state by flipping hot shards to busy-poll; the figure
		// pins it so the sweep measures sharding, not tuner ramp).
		BusyPoll:  true,
		Telemetry: sink,
	}
}

// shardRollup reads the per-shard counters: from Runtime.ShardStats for
// the struct rollup, and cross-checked against the registry readers so
// the figure consumes the same numbers operators see. A mismatch means
// the telemetry wiring lies — that is a run failure, not a figure row.
func shardRollup(w *World, sink *telemetry.Sink, cell *ShardCell) error {
	stats := w.Rakis().ShardStats()
	vals := sink.Reg.Values()
	for _, s := range stats {
		rx, ok := vals[fmt.Sprintf("fm.xsk%d.rx_pkts", s.Shard)]
		if !ok || rx != s.RxPkts {
			return fmt.Errorf("shard %d: registry rx %d (present=%v) != rollup %d",
				s.Shard, rx, ok, s.RxPkts)
		}
		tx, ok := vals[fmt.Sprintf("sm.xsk%d.tx_pkts", s.Shard)]
		if !ok || tx != s.TxPkts {
			return fmt.Errorf("shard %d: registry tx %d (present=%v) != rollup %d",
				s.Shard, tx, ok, s.TxPkts)
		}
		cell.PerShardRx = append(cell.PerShardRx, s.RxPkts)
		cell.PerShardTx = append(cell.PerShardTx, s.TxPkts)
	}
	return nil
}

// RunShardEchoCell measures one sharded-echo cell: fixed total ops
// (Flows x PerFlow is the same at every shard count) on a world with
// the given shard count.
func RunShardEchoCell(scale Scale, shards int, roundRobin bool) (ShardCell, error) {
	cell := ShardCell{Name: fmt.Sprintf("echo/%d", shards), Shards: shards, RoundRobin: roundRobin}
	if roundRobin {
		cell.Name += "/rr"
	}
	perFlow := int(128 * float64(scale))
	if perFlow < 16 {
		perFlow = 16
	}
	sink := telemetry.NewSink()
	w, err := NewWorld(shardWorldOptions(shards, sink, roundRobin))
	if err != nil {
		return cell, err
	}
	exits0, _ := sink.Reg.Value("vtime.enclave_exits")
	res, runErr := workloads.ShardedEcho(w.WorkloadEnv(), workloads.ShardedEchoParams{
		Flows:      32,
		PerFlow:    perFlow,
		PacketSize: 256,
		// Deep enough pipelining that the shared data path — not each
		// flow's round-trip latency — bounds the makespan at every
		// shard count in the sweep.
		Window:        8,
		Shards:        shards,
		ServerThreads: shards,
	})
	exits1, _ := sink.Reg.Value("vtime.enclave_exits")
	cell.Drops = w.TotalDrops()
	rollupErr := shardRollup(w, sink, &cell)
	w.Close()
	if runErr != nil {
		return cell, fmt.Errorf("%s: %w", cell.Name, runErr)
	}
	if rollupErr != nil {
		return cell, fmt.Errorf("%s: %w", cell.Name, rollupErr)
	}
	if res.Echoed == 0 || res.Cycles == 0 {
		return cell, fmt.Errorf("%s: nothing echoed", cell.Name)
	}
	cell.Ops = res.Echoed
	cell.OpsPerSec = float64(res.Echoed) / w.Model.Seconds(res.Cycles)
	cell.ExitsPerOp = float64(exits1-exits0) / float64(res.Echoed)
	return cell, nil
}

// RunShardMemcachedCell measures one memcached cell: fixed total ops,
// server threads tracking the shard count.
func RunShardMemcachedCell(scale Scale, shards int) (ShardCell, error) {
	cell := ShardCell{Name: fmt.Sprintf("memcached/%d", shards), Shards: shards}
	ops := int(2000 * float64(scale))
	if ops < 200 {
		ops = 200
	}
	sink := telemetry.NewSink()
	w, err := NewWorld(shardWorldOptions(shards, sink, false))
	if err != nil {
		return cell, err
	}
	exits0, _ := sink.Reg.Value("vtime.enclave_exits")
	res, runErr := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{
		ServerThreads: shards,
		// Enough concurrent stop-and-wait connections that the server
		// side stays saturated at the top of the sweep — fewer would
		// let per-connection latency cap the speedup.
		ClientThreads: 8,
		Connections:   64,
		Ops:           ops,
	})
	exits1, _ := sink.Reg.Value("vtime.enclave_exits")
	cell.Drops = w.TotalDrops()
	rollupErr := shardRollup(w, sink, &cell)
	w.Close()
	if runErr != nil {
		return cell, fmt.Errorf("%s: %w", cell.Name, runErr)
	}
	if rollupErr != nil {
		return cell, fmt.Errorf("%s: %w", cell.Name, rollupErr)
	}
	if res.Ops == 0 {
		return cell, fmt.Errorf("%s: no ops completed", cell.Name)
	}
	cell.Ops = res.Ops
	cell.OpsPerSec = res.OpsPerSec
	cell.ExitsPerOp = float64(exits1-exits0) / float64(res.Ops)
	return cell, nil
}

// RunShardScaling measures the full sweep. counts nil means the
// figure's default 1..16 sweep; the gate test passes {1, 8}.
func RunShardScaling(scale Scale, counts []int) ([]ShardCell, error) {
	if counts == nil {
		counts = []int{1, 2, 4, 8, 16}
	}
	var cells []ShardCell
	for _, s := range counts {
		c, err := RunShardEchoCell(scale, s, false)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	for _, s := range counts {
		c, err := RunShardMemcachedCell(scale, s)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// FigShards renders the shard-scaling figure: throughput and exits/op
// per shard count for both workloads, plus the S=8 round-robin TX
// ablation.
func FigShards(scale Scale) ([]Row, error) {
	cells, err := RunShardScaling(scale, nil)
	if err != nil {
		return nil, err
	}
	rr, err := RunShardEchoCell(scale, 8, true)
	if err != nil {
		return nil, err
	}
	cells = append(cells, rr)
	var rows []Row
	for _, c := range cells {
		rows = append(rows,
			Row{Env: RakisSGX, Param: c.Name, Value: c.OpsPerSec / 1e3, Unit: "kops/s", Drops: c.Drops},
			Row{Env: RakisSGX, Param: c.Name + "/exits", Value: c.ExitsPerOp, Unit: "exits/op", Drops: c.Drops},
		)
	}
	return rows, nil
}
