package experiments

import (
	"testing"
)

// TestShardScalingGate is the acceptance gate for the sharded data
// path: on the flow-pinned echo load with a fixed total volume, eight
// shards must deliver at least 3x the single-shard throughput, and the
// per-op enclave exit bill must stay within 1.2x of the single-shard
// floor — scale-out that bought throughput by multiplying boundary
// crossings would be cheating the paper's core claim.
func TestShardScalingGate(t *testing.T) {
	cells, err := RunShardScaling(0.5, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShardCell{}
	for _, c := range cells {
		t.Logf("%-14s ops=%d thr=%.0f ops/s exits/op=%.4f drops=%d rx=%v",
			c.Name, c.Ops, c.OpsPerSec, c.ExitsPerOp, c.Drops, c.PerShardRx)
		byName[c.Name] = c
	}
	for _, wl := range []string{"echo", "memcached"} {
		one, ok1 := byName[wl+"/1"]
		eight, ok8 := byName[wl+"/8"]
		if !ok1 || !ok8 {
			t.Fatalf("%s cells missing from %v", wl, cells)
		}
		if speedup := eight.OpsPerSec / one.OpsPerSec; speedup < 3 {
			t.Errorf("%s: 8-shard throughput only %.2fx the 1-shard cell (want >= 3x)", wl, speedup)
		}
		if one.ExitsPerOp > 0 && eight.ExitsPerOp > one.ExitsPerOp*1.2 {
			t.Errorf("%s: 8-shard exits/op %.4f exceeds 1.2x the 1-shard floor %.4f",
				wl, eight.ExitsPerOp, one.ExitsPerOp)
		}
	}
	// Balance: the pinned echo flows must actually land on all eight
	// shards — a sweep that funnels everything through one pump would
	// "scale" only by luck.
	eight := byName["echo/8"]
	if len(eight.PerShardRx) != 8 {
		t.Fatalf("echo/8: expected 8 shard rollups, got %v", eight.PerShardRx)
	}
	for i, rx := range eight.PerShardRx {
		if rx == 0 {
			t.Errorf("echo/8: shard %d moved no frames: %v", i, eight.PerShardRx)
		}
	}
}
