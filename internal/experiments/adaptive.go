package experiments

import (
	"fmt"

	"rakis/internal/netsim"
	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

// This file is the adaptive figure: the shaped-traffic echo workload on
// RAKIS-SGX across a grid of static configurations and the self-tuning
// runtime. Each static configuration is right for one phase of the load
// and wrong for another — wide batches park datagrams at trickle, busy
// polling burns the inter-arrival gaps, narrow batches and need-wakeup
// signalling tax the burst. The tuner moves all three knobs with the
// load, so the adaptive point sits on (or inside) the latency-vs-cycles
// frontier the statics trace.

// AdaptiveCell is one configuration's measurement on the shaped load.
type AdaptiveCell struct {
	// Name identifies the configuration ("b=1/wake/r2048", "adaptive").
	Name string
	// Static knobs (informational; Adaptive ignores them).
	Batch    int
	BusyPoll bool
	Ring     uint32
	Adaptive bool

	// Sent/Delivered are the schedule size and the echoes that came back.
	Sent, Delivered int
	// MeanLat/P99Lat are virtual-cycle round-trip latencies.
	MeanLat float64
	P99Lat  uint64
	// CycPerOp is the server-side busy cycle bill per delivered echo:
	// every probed server clock's cycles minus its wait component. This
	// is where busy-poll burn and per-sweep wakeup syscalls surface.
	CycPerOp float64
	// ExitsPerOp is enclave exits per delivered echo.
	ExitsPerOp float64
	// Drops is the NIC-queue drop count for the run.
	Drops uint64
	// TunerSteps/TunerUps/TunerSwitches record the control loop's
	// activity (adaptive cells only) — diagnostics for a frontier miss.
	TunerSteps, TunerUps, TunerSwitches uint64
}

// adaptiveShape is the figure's load: trickle, a sustained burst, then
// trickle again. The burst is long relative to the tuner's guard window
// so the control loop is supposed to follow it; the return to trickle
// catches configurations that cannot come back down.
func adaptiveShape(scale Scale) netsim.Shape {
	// Both slow phases and the burst carry real weight in the mean, so a
	// configuration that is right for one regime and wrong in the other
	// cannot hide its bad phase behind the other's volume: the long
	// trickle exposes wide gathers parking datagrams, and the long burst
	// compounds a scalar server's per-op deficit into a standing queue.
	// The burst also spans many control windows, so the tuner's ramp
	// transient stays a small prefix of it.
	trickleN := int(3000 * float64(scale))
	burstN := int(3600 * float64(scale))
	if trickleN < 40 {
		trickleN = 40
	}
	if burstN < 300 {
		burstN = 300
	}
	const (
		trickleGap = 120_000 // 50us at 2.4 GHz: one datagram at a time
		// burstGap sits between the narrow and wide per-op service
		// costs: the server pays a fixed per-wake dispatch cost on top
		// of per-datagram work, so scalar serving (~3.2 kcyc/op) falls
		// far behind at this rate and queues without bound, while
		// amortized wide serving (~1.1 kcyc/op) keeps enough margin to
		// also drain the backlog that builds while the control loop is
		// still reacting to the phase edge — without that margin the
		// onset transient stands for the whole phase and the figure
		// measures scheduler luck, not configurations. The margin is
		// judged against the slowest pipeline stage (~1.45 kcyc/op
		// end-to-end, not just the app thread), and the dispatch cost
		// keeps both margins wide (scalar ~1.8x underwater, wide ~25%
		// clear), so the regime separation does not balance on a few
		// percent of service-rate slack.
		burstGap = 1_800
	)
	return netsim.Shape{Name: "mixed", Phases: []netsim.Phase{
		{Name: "trickle", Count: trickleN, Gap: trickleGap},
		{Name: "burst", Count: burstN, Gap: burstGap},
		{Name: "cooldown", Count: trickleN, Gap: trickleGap},
	}}
}

// adaptiveStatics is the static grid the adaptive point is judged
// against: both batch extremes in both wakeup modes at the default
// geometry, plus an undersized ring.
func adaptiveStatics() []AdaptiveCell {
	return []AdaptiveCell{
		{Name: "b=1/wake/r2048", Batch: 1, Ring: 2048},
		{Name: "b=32/wake/r2048", Batch: 32, Ring: 2048},
		{Name: "b=1/poll/r2048", Batch: 1, BusyPoll: true, Ring: 2048},
		{Name: "b=32/poll/r2048", Batch: 32, BusyPoll: true, Ring: 2048},
		{Name: "b=32/wake/r256", Batch: 32, Ring: 256},
	}
}

// runAdaptiveCell builds one RAKIS-SGX world, replays the shape, and
// reads the cell's metrics out of the telemetry sink.
func runAdaptiveCell(cell AdaptiveCell, shape netsim.Shape, frameCount uint32) (AdaptiveCell, error) {
	sink := telemetry.NewSink()
	opt := Options{
		Env:        RakisSGX,
		RingSize:   cell.Ring,
		FrameCount: frameCount,
		Telemetry:  sink,
	}
	if cell.Adaptive {
		opt.Adaptive = true
	} else {
		opt.BatchHint = cell.Batch
		opt.BusyPoll = cell.BusyPoll
	}
	w, err := NewWorld(opt)
	if err != nil {
		return cell, err
	}
	res, runErr := workloads.ShapedEcho(w.WorkloadEnv(), workloads.ShapedParams{
		Shape:      shape,
		PacketSize: 256,
		// Width 0 follows AdviseBatch: statics report their pinned hint,
		// the adaptive runtime moves it.
	})
	drops := w.TotalDrops()
	// Fill-exhaustion drops on the XSK path land on the packet counter,
	// not the NIC queues — fold them in so an undersized ring cannot
	// hide its losses.
	if d, ok := sink.Reg.Value("vtime.packets_dropped"); ok {
		drops += d
	}
	if cell.Adaptive {
		st := w.Rakis().TunerStats()
		cell.TunerSteps, cell.TunerUps, cell.TunerSwitches = st.Steps, st.BatchUps, st.ModeSwitches
	}
	w.Close()
	if runErr != nil {
		return cell, fmt.Errorf("%s: %w", cell.Name, runErr)
	}
	if res.Delivered == 0 {
		return cell, fmt.Errorf("%s: nothing delivered", cell.Name)
	}
	cell.Sent = res.Sent
	cell.Delivered = res.Delivered
	cell.MeanLat = res.MeanLat
	cell.P99Lat = res.P99Lat
	cell.Drops = drops
	var busy uint64
	for _, tr := range sink.Breakdown().Threads {
		busy += tr.Cycles - tr.Comp["wait"]
	}
	cell.CycPerOp = float64(busy) / float64(res.Delivered)
	exits, _ := sink.Reg.Value("vtime.enclave_exits")
	cell.ExitsPerOp = float64(exits) / float64(res.Delivered)
	return cell, nil
}

// RunAdaptiveFrontier measures the static grid and the adaptive runtime
// on the shaped load. The adaptive run happens twice: a short
// calibration pass at the default geometry feeds the tuner's ring
// recommendation, and the measured pass applies it at boot — geometry is
// a (re)configure-time knob, not a live one.
func RunAdaptiveFrontier(scale Scale) ([]AdaptiveCell, error) {
	shape := adaptiveShape(scale)
	var cells []AdaptiveCell
	for _, s := range adaptiveStatics() {
		c, err := runAdaptiveCell(s, shape, 0)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}

	// Calibration: quarter-scale shape, default geometry, tuner on.
	calScale := scale / 4
	ring, frames := uint32(0), uint32(0)
	{
		sink := telemetry.NewSink()
		w, err := NewWorld(Options{Env: RakisSGX, Adaptive: true, Telemetry: sink})
		if err != nil {
			return nil, err
		}
		_, runErr := workloads.ShapedEcho(w.WorkloadEnv(), workloads.ShapedParams{
			Shape: adaptiveShape(calScale), PacketSize: 256,
		})
		if rt := w.Rakis(); rt != nil {
			ring, frames = rt.TunerRecommend()
		}
		w.Close()
		if runErr != nil {
			return nil, fmt.Errorf("adaptive calibration: %w", runErr)
		}
	}

	ad := AdaptiveCell{Name: "adaptive", Adaptive: true, Ring: ring}
	ad, err := runAdaptiveCell(ad, shape, frames)
	if err != nil {
		return nil, err
	}
	cells = append(cells, ad)
	return cells, nil
}

// FigAdaptive renders the frontier as figure rows: per configuration,
// mean latency (kcyc), server busy cycles per op (kcyc/op), and enclave
// exits per op.
func FigAdaptive(scale Scale) ([]Row, error) {
	cells, err := RunAdaptiveFrontier(scale)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, c := range cells {
		rows = append(rows,
			Row{Env: RakisSGX, Param: c.Name + "/lat", Value: c.MeanLat / 1e3, Unit: "kcyc", Drops: c.Drops, Batch: c.Batch},
			Row{Env: RakisSGX, Param: c.Name + "/cyc", Value: c.CycPerOp / 1e3, Unit: "kcyc/op", Drops: c.Drops, Batch: c.Batch},
			Row{Env: RakisSGX, Param: c.Name + "/exits", Value: c.ExitsPerOp, Unit: "exits/op", Drops: c.Drops, Batch: c.Batch},
		)
	}
	return rows, nil
}
