package experiments

import (
	"runtime"
	"testing"

	"rakis/internal/workloads"
)

// heapAllocNow reads live heap bytes after a full collection, so the
// flood's footprint delta measures retained state, not GC slack.
func heapAllocNow() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestMillionFlows offers one datagram from each of 2^20 distinct flows
// to a four-shard world and asserts the three properties the generator
// exists to prove: per-flow state stays bounded (live heap grows by far
// less than a per-flow footprint would cost), the sharded demux does not
// degrade with flow count (the second half of the flood takes about as
// long as the first), and delivery spreads across every shard with the
// TX path still live (sampled echoes flow).
func TestMillionFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20-flow flood is a long test")
	}
	const shards = 4
	flows := 1 << 20
	if raceDetectorEnabled {
		// The generator is single-threaded and allocation-free per frame;
		// under the instrumented build the same properties hold at a
		// sixteenth of the volume in a sixteenth of the wall time.
		flows = 1 << 16
	}
	w, err := NewWorld(Options{
		Env:          RakisSGX,
		NumXSKs:      shards,
		ServerQueues: shards,
		BusyPoll:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	before := heapAllocNow()
	res, err := workloads.MillionFlows(w.WorkloadEnv(), workloads.FloodParams{
		Flows:  flows,
		Shards: shards,
		Dev:    w.ClientDev(),
	})
	if err != nil {
		t.Fatal(err)
	}
	growth := int64(heapAllocNow()) - int64(before)
	t.Logf("injected=%d delivered=%d echoed=%d perShard=%v firstHalf=%v secondHalf=%v heapGrowth=%dKiB",
		res.Injected, res.Delivered, res.Echoed, res.PerShard,
		res.FirstHalf, res.SecondHalf, growth/1024)

	if res.Injected != flows {
		t.Fatalf("injected %d of %d", res.Injected, flows)
	}
	// Healthy world: the windowed pacing keeps socket queues under
	// capacity, so delivery is essentially lossless.
	if res.Delivered < flows-flows/100 {
		t.Errorf("delivered %d of %d (>1%% loss on a healthy world)", res.Delivered, flows)
	}
	if res.Echoed == 0 {
		t.Error("no sampled echoes: TX path went dead under flood")
	}
	for sh, n := range res.PerShard {
		if n == 0 {
			t.Errorf("shard %d delivered nothing — flows did not spread", sh)
		}
	}
	// Bounded state: a million flows with even 64 bytes of per-flow
	// server state would retain 64 MiB. The budget is far below that and
	// far above test noise.
	const heapBudget = 32 << 20
	if growth > heapBudget {
		t.Errorf("live heap grew %d bytes across the flood (budget %d): per-flow state leaked",
			growth, heapBudget)
	}
	// Flat delivery: a demux that slows down as flows accumulate shows a
	// second half materially slower than the first.
	if res.SecondHalf > res.FirstHalf*5/2 {
		t.Errorf("second half %v vs first half %v: delivery degraded with flow count",
			res.SecondHalf, res.FirstHalf)
	}
}
