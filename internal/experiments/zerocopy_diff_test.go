package experiments

import (
	"testing"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/mem"
	"rakis/internal/workloads"
)

// Differential tests for the zero-copy RX/splice datapath: the
// certify-in-place view path must yield byte-identical datagram streams,
// identical final ring states, and identical certification refusals to
// the legacy copying RX path — removing the copies may change the cost
// of a run, never its observable behavior.

// runZCEchoWorld builds one world in the given environment with the RX
// path selected by copyRX, runs the echo workload, quiesces the pumps,
// and captures the outcome. The diffRun shape and the stream assertion
// are shared with the batch differential suite.
func runZCEchoWorld(t *testing.T, env Environment, p workloads.EchoParams, batch int, copyRX bool, inj *chaos.Injector) diffRun {
	t.Helper()
	p.Batch = batch
	w, err := NewWorld(Options{Env: env, CopyRX: copyRX, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	res, err := workloads.UDPEcho(w.WorkloadEnv(), p, true)
	if err != nil {
		t.Fatalf("%v copyRX=%v b=%d: %v", env, copyRX, batch, err)
	}
	d := diffRun{
		res:        res,
		pktRx:      w.Counters.PacketsRx.Load(),
		pktTx:      w.Counters.PacketsTx.Load(),
		bytesRx:    w.Counters.BytesRx.Load(),
		bytesTx:    w.Counters.BytesTx.Load(),
		violations: w.Counters.RingViolations.Load() + w.Counters.UMemViolations.Load(),
		resyncs:    w.Counters.RingResyncs.Load(),
	}
	if rt := w.Rakis(); rt != nil {
		for _, pump := range rt.Pumps() {
			pump.Close()
		}
		for _, pump := range rt.Pumps() {
			s := pump.Socket()
			d.rings = append(d.rings, [3]uint32{s.RX.Local(), s.TX.Local(), s.Fill.Local()})
		}
	}
	return d
}

// assertSameOutcome extends the stream assertion with the enclave packet
// accounting, refusal counters, and final trusted ring indices.
func assertSameOutcome(t *testing.T, copied, inplace diffRun, label string) {
	t.Helper()
	if copied.res.Echoed != inplace.res.Echoed ||
		len(copied.res.Payloads) != len(inplace.res.Payloads) {
		t.Fatalf("%s: in-place echoed %d (%d payloads), copy echoed %d (%d payloads)",
			label, inplace.res.Echoed, len(inplace.res.Payloads), copied.res.Echoed, len(copied.res.Payloads))
	}
	for i := range copied.res.Payloads {
		if string(copied.res.Payloads[i]) != string(inplace.res.Payloads[i]) {
			t.Fatalf("%s: datagram %d differs between the copy and in-place streams", label, i)
		}
	}
	if copied.violations != inplace.violations {
		t.Fatalf("%s: refusal counters differ: in-place %d, copy %d", label, inplace.violations, copied.violations)
	}
	if copied.pktRx != inplace.pktRx || copied.pktTx != inplace.pktTx ||
		copied.bytesRx != inplace.bytesRx || copied.bytesTx != inplace.bytesTx {
		t.Fatalf("%s: packet accounting differs: in-place rx=%d/%dB tx=%d/%dB copy rx=%d/%dB tx=%d/%dB",
			label, inplace.pktRx, inplace.bytesRx, inplace.pktTx, inplace.bytesTx,
			copied.pktRx, copied.bytesRx, copied.pktTx, copied.bytesTx)
	}
	if len(copied.rings) != len(inplace.rings) {
		t.Fatalf("%s: XSK count differs", label)
	}
	for i := range copied.rings {
		if copied.rings[i] != inplace.rings[i] {
			t.Fatalf("%s xsk %d: final ring state %v in-place, %v copy (RX, TX, Fill locals)",
				label, i, inplace.rings[i], copied.rings[i])
		}
	}
}

// TestZerocopyDifferentialStreams: for seeded random echo workloads at
// vector widths 1..64 in every environment, the in-place view path must
// deliver the exact datagram stream the copying path delivers, with
// equal packet accounting, equal final ring indices, and zero refusals.
// The RAKIS environments exercise the real differential; the baselines
// pin the knob as a structural no-op outside RAKIS.
func TestZerocopyDifferentialStreams(t *testing.T) {
	for _, env := range Environments {
		widths := []int{1, 7, 32, 64}
		if !env.IsRakis() {
			widths = []int{1} // knob is a no-op: one sanity width
		}
		for _, batch := range widths {
			p := diffParams(11)
			label := env.String()
			copied := runZCEchoWorld(t, env, p, batch, true, nil)
			inplace := runZCEchoWorld(t, env, p, batch, false, nil)
			if copied.violations != 0 {
				t.Fatalf("%s b=%d: copy run refused %d certifications on a well-behaved host",
					label, batch, copied.violations)
			}
			assertSameOutcome(t, copied, inplace, label)
		}
	}
}

// TestZerocopyDifferentialIperf: the datagram-blast shape (no echo —
// pure RX pressure, large frames) must agree between the two paths on
// delivered count, bytes, packet accounting, and refusals.
func TestZerocopyDifferentialIperf(t *testing.T) {
	run := func(copyRX bool) (workloads.IperfResult, [2]uint64, uint64) {
		w, err := NewWorld(Options{Env: RakisSGX, CopyRX: copyRX})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		res, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{PacketSize: 1460, Count: 400})
		if err != nil {
			t.Fatalf("copyRX=%v: %v", copyRX, err)
		}
		return res,
			[2]uint64{w.Counters.PacketsRx.Load(), w.Counters.BytesRx.Load()},
			w.Counters.RingViolations.Load() + w.Counters.UMemViolations.Load()
	}
	cres, ccnt, cviol := run(true)
	zres, zcnt, zviol := run(false)
	if cviol != 0 || zviol != 0 {
		t.Fatalf("refusals on a well-behaved host: copy %d, in-place %d", cviol, zviol)
	}
	if cres.Received != zres.Received || cres.Bytes != zres.Bytes {
		t.Fatalf("delivery differs: in-place %d/%dB, copy %d/%dB", zres.Received, zres.Bytes, cres.Received, cres.Bytes)
	}
	if ccnt != zcnt {
		t.Fatalf("packet accounting differs: in-place %v, copy %v", zcnt, ccnt)
	}
}

// TestZerocopyDifferentialMemcached: the request/response workload (two
// directions, many sockets) must complete the same op count with zero
// refusals on both paths. Exact packet counts are not asserted: the
// memaslap-style client emits timing-dependent retries, so packet
// accounting varies between runs of the SAME path (measured: ±1 request
// on a fixed copy-path world) — op completion and refusal-freedom are
// the deterministic contract here.
func TestZerocopyDifferentialMemcached(t *testing.T) {
	run := func(copyRX bool) (workloads.MemcachedResult, uint64) {
		w, err := NewWorld(Options{Env: RakisSGX, CopyRX: copyRX})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		res, err := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{ServerThreads: 2, Ops: 400})
		if err != nil {
			t.Fatalf("copyRX=%v: %v", copyRX, err)
		}
		return res, w.Counters.RingViolations.Load() + w.Counters.UMemViolations.Load()
	}
	cres, cviol := run(true)
	zres, zviol := run(false)
	if cviol != 0 || zviol != 0 {
		t.Fatalf("refusals on a well-behaved host: copy %d, in-place %d", cviol, zviol)
	}
	if cres.Ops != zres.Ops {
		t.Fatalf("ops differ: in-place %d, copy %d", zres.Ops, cres.Ops)
	}
}

// TestZerocopyDifferentialRefusals: a deterministic hostile producer
// value must produce the identical certification-refusal outcome on both
// RX paths — exactly resyncThreshold refusals, one resync, and full
// recovery.
func TestZerocopyDifferentialRefusals(t *testing.T) {
	p := diffParams(12)
	const wantViolations, wantResyncs = 4, 1
	for _, copyRX := range []bool{true, false} {
		w, err := NewWorld(Options{Env: RakisSGX, CopyRX: copyRX})
		if err != nil {
			t.Fatal(err)
		}
		p.Batch = 1
		p.Port = 7
		if _, err := workloads.UDPEcho(w.WorkloadEnv(), p, false); err != nil {
			t.Fatalf("copyRX=%v warmup: %v", copyRX, err)
		}
		if v := w.Counters.RingViolations.Load(); v != 0 {
			t.Fatalf("copyRX=%v: %d refusals before the hostile write", copyRX, v)
		}
		sock := w.Rakis().Pumps()[0].Socket()
		cell, err := w.Space.Atomic32(mem.RoleHost, sock.RX.Base())
		if err != nil {
			t.Fatal(err)
		}
		cell.Store(sock.RX.Local() + sock.RX.Size() + 1)
		deadline := time.Now().Add(5 * time.Second)
		for w.Counters.RingResyncs.Load() == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("copyRX=%v: quarantine-and-resync never fired (violations=%d)",
					copyRX, w.Counters.RingViolations.Load())
			}
			time.Sleep(200 * time.Microsecond)
		}
		p.Port = 8
		if _, err := workloads.UDPEcho(w.WorkloadEnv(), p, false); err != nil {
			t.Fatalf("copyRX=%v after resync: %v", copyRX, err)
		}
		violations, resyncs := w.Counters.RingViolations.Load(), w.Counters.RingResyncs.Load()
		w.Close()
		if violations != wantViolations || resyncs != wantResyncs {
			t.Fatalf("copyRX=%v: %d refusals / %d resyncs, want exactly %d / %d",
				copyRX, violations, resyncs, wantViolations, wantResyncs)
		}
	}
}

// TestZerocopyDifferentialUnderChaos: under the completion-requiring
// fault profiles (same profile, same seed in both worlds), the in-place
// path must still deliver the byte-identical datagram stream the copy
// path delivers.
func TestZerocopyDifferentialUnderChaos(t *testing.T) {
	profiles := chaos.Profiles()
	for _, name := range []string{"wakeups", "mmdeath"} {
		prof, ok := profiles[name]
		if !ok {
			t.Fatalf("chaos profile %q missing", name)
		}
		if !prof.RequireCompletion {
			t.Fatalf("profile %q does not require completion; the differential contract needs one that does", name)
		}
		t.Run(name, func(t *testing.T) {
			p := diffParams(13)
			seed := uint64(0x2ce0)
			copied := runZCEchoWorld(t, RakisSGX, p, 8, true, chaos.New(prof, seed, nil, nil))
			inplace := runZCEchoWorld(t, RakisSGX, p, 8, false, chaos.New(prof, seed, nil, nil))
			assertSameStream(t, copied, inplace, 8)
		})
	}
}

// TestZerocopyProxySplice: the splice path itself — the proxy workload
// must run over the in-stack reflector under RAKIS (zero app-boundary
// copies) and over the socket echo everywhere else, delivering the same
// payload stream either way.
func TestZerocopyProxySplice(t *testing.T) {
	p := workloads.ProxyParams{PacketSize: 700, Count: 128}
	var want [][]byte
	for _, env := range Environments {
		w, err := NewWorld(Options{Env: env})
		if err != nil {
			t.Fatal(err)
		}
		res, err := workloads.UDPProxy(w.WorkloadEnv(), p, true)
		viol := w.Counters.RingViolations.Load() + w.Counters.UMemViolations.Load()
		w.Close()
		if err != nil {
			t.Fatalf("%v: %v", env, err)
		}
		if res.Spliced != env.IsRakis() {
			t.Fatalf("%v: spliced=%v, want %v", env, res.Spliced, env.IsRakis())
		}
		if viol != 0 {
			t.Fatalf("%v: %d refusals on a well-behaved host", env, viol)
		}
		if res.Echoed != p.Count {
			t.Fatalf("%v: echoed %d/%d", env, res.Echoed, p.Count)
		}
		if want == nil {
			want = res.Payloads
			continue
		}
		if len(res.Payloads) != len(want) {
			t.Fatalf("%v: stream length %d, want %d", env, len(res.Payloads), len(want))
		}
		for i := range want {
			if string(res.Payloads[i]) != string(want[i]) {
				t.Fatalf("%v: datagram %d differs from the reference stream", env, i)
			}
		}
	}
}

// TestZerocopyFigureGate is the acceptance gate for the zerocopy figure:
// the in-place path must cut the RX datapath's copy-component cycles per
// op by at least 2x on iperf and on the proxy workload, in both RAKIS
// environments.
func TestZerocopyFigureGate(t *testing.T) {
	if testing.Short() {
		t.Skip("figure-sized run")
	}
	rows, err := FigZerocopy(0.15)
	if err != nil {
		t.Fatal(err)
	}
	ratios := 0
	for _, r := range rows {
		if r.Unit != "x" {
			continue
		}
		ratios++
		if r.Value < 2 {
			t.Errorf("%v %s: copy/zc ratio %.2f, want >= 2", r.Env, r.Param, r.Value)
		}
	}
	if ratios != 4 {
		t.Fatalf("expected 4 ratio rows (2 envs x 2 workloads), got %d", ratios)
	}
}
