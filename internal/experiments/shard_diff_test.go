package experiments

import (
	"bytes"
	"testing"

	"rakis/internal/workloads"
)

// TestShardAffinityDifferential is the flow-affinity differential: the
// same flow-pinned stop-and-wait echo run, once on the flow-affine TX
// path and once on the retained round-robin ablation, must produce
// byte-identical per-flow payload streams. Affinity changes which queue
// carries a frame — never what the flow observes. The expected stream
// is also checked against the workload's deterministic payload schedule,
// so a bug that corrupted both runs the same way cannot hide.
func TestShardAffinityDifferential(t *testing.T) {
	const (
		flows   = 8
		perFlow = 32
		size    = 64
		shards  = 4
	)
	run := func(rr bool) workloads.ShardedEchoResult {
		t.Helper()
		w, err := NewWorld(Options{
			Env: RakisSGX, NumXSKs: shards,
			ServerQueues: shards, ClientQueues: shards,
			RoundRobinTX: rr,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		res, err := workloads.ShardedEcho(w.WorkloadEnv(), workloads.ShardedEchoParams{
			Flows: flows, PerFlow: perFlow, PacketSize: size,
			Shards: shards, ServerThreads: shards, Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	affine := run(false)
	rr := run(true)

	want := make([]byte, size)
	for f := 0; f < flows; f++ {
		a, b := affine.Flows[f], rr.Flows[f]
		if len(a.Stream) != perFlow || len(b.Stream) != perFlow {
			t.Fatalf("flow %d: stream lengths affine=%d rr=%d, want %d",
				f, len(a.Stream), len(b.Stream), perFlow)
		}
		for k := 0; k < perFlow; k++ {
			if !bytes.Equal(a.Stream[k], b.Stream[k]) {
				t.Fatalf("flow %d echo %d: affine and round-robin streams diverge", f, k)
			}
			for i := range want {
				want[i] = 0
			}
			putU32t(want, uint32(f))
			putU32t(want[4:], uint32(k))
			if !bytes.Equal(a.Stream[k], want) {
				t.Fatalf("flow %d echo %d: stream does not match the send schedule", f, k)
			}
		}
	}
}

func putU32t(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
