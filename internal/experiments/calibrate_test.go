package experiments

// Calibration tests: assert that the simulated environments land inside
// the bands the paper reports (the claims C1..C6 of the artifact
// appendix), in *shape* — who wins and by roughly what factor.

import (
	"os"
	"testing"

	"rakis/internal/workloads"
)

// measure runs one function against every environment.
func measure(t *testing.T, opt Options, f func(*World) float64) map[Environment]float64 {
	t.Helper()
	out := map[Environment]float64{}
	for _, env := range Environments {
		o := opt
		o.Env = env
		w, err := NewWorld(o)
		if err != nil {
			t.Fatalf("%v: %v", env, err)
		}
		out[env] = f(w)
		w.Close()
	}
	return out
}

func ratio(a, b float64) float64 { return a / b }

func TestCalibrationIperf(t *testing.T) {
	vals := measure(t, Options{}, func(w *World) float64 {
		res, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{PacketSize: 1460, Count: 1500})
		if err != nil {
			t.Fatalf("%v", err)
		}
		return res.Gbps
	})
	t.Logf("iperf3 1460B Gbps: %v", vals)

	// C1: RAKIS-SGX ~ +11% over Native (band: 1.0 .. 1.4).
	r := ratio(vals[RakisSGX], vals[Native])
	if r < 1.0 || r > 1.45 {
		t.Errorf("C1: Rakis-SGX/Native = %.2f, want ~1.11 (band 1.0..1.45)", r)
	}
	// Gramine-SGX ~17% of Native (band 8%..30%).
	g := ratio(vals[GramineSGX], vals[Native])
	if g < 0.08 || g > 0.35 {
		t.Errorf("Gramine-SGX/Native = %.2f, want ~0.17", g)
	}
	// Gramine-Direct ~75% of Native (band 55%..95%).
	d := ratio(vals[GramineDirect], vals[Native])
	if d < 0.55 || d > 0.97 {
		t.Errorf("Gramine-Direct/Native = %.2f, want ~0.75", d)
	}
	// RAKIS-SGX ~= RAKIS-Direct.
	rr := ratio(vals[RakisSGX], vals[RakisDirect])
	if rr < 0.85 || rr > 1.15 {
		t.Errorf("Rakis-SGX/Rakis-Direct = %.2f, want ~1", rr)
	}
}

func TestCalibrationFstime(t *testing.T) {
	vals := measure(t, Options{}, func(w *World) float64 {
		res, err := workloads.Fstime(w.WorkloadEnv(), workloads.FstimeParams{BlockSize: 4096, TotalBytes: 2 << 20})
		if err != nil {
			t.Fatalf("%v", err)
		}
		return res.KBps
	})
	t.Logf("fstime 4K KB/s: %v", vals)

	// C4: RAKIS-SGX ~2.8x Gramine-SGX (band 2..4).
	r := ratio(vals[RakisSGX], vals[GramineSGX])
	if r < 2.0 || r > 4.0 {
		t.Errorf("C4: Rakis-SGX/Gramine-SGX = %.2f, want ~2.8", r)
	}
	// RAKIS below Native (the async-wait overhead).
	if vals[RakisSGX] >= vals[Native] {
		t.Errorf("fstime: Rakis-SGX (%.0f) must trail Native (%.0f)", vals[RakisSGX], vals[Native])
	}
}

func TestCalibrationMcrypt(t *testing.T) {
	input := workloads.PrepareMcryptInput(4 << 20)
	vals := measure(t, Options{}, func(w *World) float64 {
		w.VFS().WriteFile("/data/mcrypt.in", input)
		res, err := workloads.Mcrypt(w.WorkloadEnv(), workloads.McryptParams{BlockSize: 65536})
		if err != nil {
			t.Fatalf("%v", err)
		}
		return res.Seconds
	})
	t.Logf("mcrypt 64K seconds: %v", vals)

	// C6: RAKIS ~3% over Native (band: up to 15% overhead), and ~10%
	// faster than Gramine-SGX (band 3%..30% reduction).
	over := vals[RakisSGX]/vals[Native] - 1
	if over < -0.02 || over > 0.15 {
		t.Errorf("C6: Rakis-SGX overhead vs Native = %.1f%%, want ~3%%", over*100)
	}
	red := 1 - vals[RakisSGX]/vals[GramineSGX]
	if red < 0.03 || red > 0.35 {
		t.Errorf("C6: Rakis-SGX reduction vs Gramine-SGX = %.1f%%, want ~10%%", red*100)
	}
}

func TestCalibrationMemcached(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-environment memcached run")
	}
	if raceDetectorEnabled {
		// The C3 band depends on fair real-time scheduling of the four
		// server goroutines sharing one socket; the race runtime
		// serializes goroutines (and the chaos harness package runs
		// concurrently in CI), which skews the measured ratio without
		// telling us anything about correctness.
		t.Skip("calibration bands are scheduling-sensitive under -race")
	}
	vals := measure(t, Options{NumXSKs: 4, ServerQueues: 8}, func(w *World) float64 {
		res, err := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{
			ServerThreads: 4, Ops: 1500,
		})
		if err != nil {
			t.Fatalf("%v", err)
		}
		return res.OpsPerSec
	})
	t.Logf("memcached 4thr ops/s: %v", vals)

	// C3: RAKIS ~ Native (band 0.8..1.3) and ~4.6x Gramine-SGX (band 3..7).
	r := ratio(vals[RakisSGX], vals[Native])
	if r < 0.8 || r > 1.3 {
		t.Errorf("C3: Rakis-SGX/Native = %.2f, want ~1", r)
	}
	g := ratio(vals[RakisSGX], vals[GramineSGX])
	if g < 3.0 || g > 7.0 {
		t.Errorf("C3: Rakis-SGX/Gramine-SGX = %.2f, want ~4.6", g)
	}
}

func TestCalibrationRedis(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-environment redis run")
	}
	vals := measure(t, Options{}, func(w *World) float64 {
		res, err := workloads.Redis(w.WorkloadEnv(), workloads.RedisParams{Command: "GET", Ops: 600, Connections: 20})
		if err != nil {
			t.Fatalf("%v", err)
		}
		return res.OpsPerSec
	})
	t.Logf("redis GET ops/s: %v", vals)

	// C5: RAKIS-SGX ~2.6x Gramine-SGX (band 1.8..4).
	g := ratio(vals[RakisSGX], vals[GramineSGX])
	if g < 1.8 || g > 4.0 {
		t.Errorf("C5: Rakis-SGX/Gramine-SGX = %.2f, want ~2.6", g)
	}
	// ~40% below Native (band 15%..60% overhead).
	over := 1 - vals[RakisSGX]/vals[Native]
	if over < 0.15 || over > 0.60 {
		t.Errorf("C5: Rakis-SGX below Native by %.0f%%, want ~40%%", over*100)
	}
}

func TestCalibrationCurl(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-environment curl run")
	}
	data := workloads.PrepareMcryptInput(2 << 20)
	vals := measure(t, Options{}, func(w *World) float64 {
		res, err := workloads.Curl(w.WorkloadEnv(), workloads.CurlParams{Path: "/f"},
			func(string) ([]byte, error) { return data, nil })
		if err != nil {
			t.Fatalf("%v", err)
		}
		if res.Bytes != uint64(len(data)) {
			t.Fatalf("curl got %d bytes", res.Bytes)
		}
		return res.Seconds
	})
	t.Logf("curl 2MB seconds: %v", vals)

	// C2: RAKIS ~ Native (band 0.85..1.35 of native duration), and
	// Gramine-SGX ~2.5x native duration (band 1.6..4).
	r := ratio(vals[RakisSGX], vals[Native])
	if r < 0.85 || r > 1.35 {
		t.Errorf("C2: Rakis-SGX/Native duration = %.2f, want ~1", r)
	}
	g := ratio(vals[GramineSGX], vals[Native])
	if g < 1.6 || g > 4.0 {
		t.Errorf("C2: Gramine-SGX/Native duration = %.2f, want ~2.5", g)
	}
}

func TestFig2ExitShape(t *testing.T) {
	rows, err := Fig2Exits(0.5)
	if err != nil {
		t.Fatal(err)
	}
	get := func(env Environment, param string) float64 {
		for _, r := range rows {
			if r.Env == env && r.Param == param {
				return r.Value
			}
		}
		t.Fatalf("missing row %v/%s", env, param)
		return 0
	}
	PrintRows(os.Stderr, "Figure 2 (enclave exits)", rows)
	// Gramine-SGX iperf3 must dwarf its HelloWorld baseline; RAKIS-SGX
	// iperf3 must stay within a small factor of the baseline.
	if get(GramineSGX, "iperf3") < 10*get(GramineSGX, "HelloWorld") {
		t.Error("Gramine-SGX iperf3 exits should be orders of magnitude above HelloWorld")
	}
	if get(RakisSGX, "iperf3") > 5*get(RakisSGX, "HelloWorld") {
		t.Error("Rakis-SGX iperf3 exits should stay near the HelloWorld baseline")
	}
}
