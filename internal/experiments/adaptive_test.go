package experiments

import (
	"testing"

	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

// TestAdaptiveFigureGate is the acceptance gate for the self-tuning
// runtime: on the shaped load (trickle / burst / cooldown), the adaptive
// configuration must sit inside the latency-vs-cycles frontier traced by
// every static configuration. Concretely, against each static it must
//
//   - deliver at least as much,
//   - win at least one axis (mean latency or busy cycles/op) by 1.3x,
//   - not lose the other axis by more than 1.5x, and
//   - win the latency*cycles product by 1.25x (ratio <= 0.8),
//
// and its enclave exits/op must not exceed the best static's by more
// than 5%. Thresholds carry ~2x slack against measured margins so the
// gate survives scheduler noise and -race timing shifts.
func TestAdaptiveFigureGate(t *testing.T) {
	cells, err := RunAdaptiveFrontier(0.5)
	if err != nil {
		t.Fatal(err)
	}
	var ad *AdaptiveCell
	var statics []AdaptiveCell
	for i := range cells {
		if cells[i].Adaptive {
			ad = &cells[i]
		} else {
			statics = append(statics, cells[i])
		}
	}
	if ad == nil || len(statics) == 0 {
		t.Fatalf("frontier missing cells: %+v", cells)
	}
	for _, c := range cells {
		t.Logf("%-18s del=%d/%d drops=%d lat=%.0f p99=%d cyc/op=%.0f exits/op=%.3f",
			c.Name, c.Delivered, c.Sent, c.Drops, c.MeanLat, c.P99Lat, c.CycPerOp, c.ExitsPerOp)
	}
	if ad.Delivered != ad.Sent {
		t.Errorf("adaptive dropped traffic: delivered %d of %d", ad.Delivered, ad.Sent)
	}
	minExits := statics[0].ExitsPerOp
	for _, s := range statics {
		if s.ExitsPerOp < minExits {
			minExits = s.ExitsPerOp
		}
	}
	if ad.ExitsPerOp > minExits*1.05 {
		t.Errorf("adaptive exits/op %.4f exceeds best static %.4f by >5%%", ad.ExitsPerOp, minExits)
	}
	for _, s := range statics {
		if ad.Delivered < s.Delivered {
			t.Errorf("adaptive delivered %d < static %s's %d", ad.Delivered, s.Name, s.Delivered)
		}
		latRatio := s.MeanLat / ad.MeanLat
		cycRatio := s.CycPerOp / ad.CycPerOp
		if latRatio < 1.3 && cycRatio < 1.3 {
			t.Errorf("adaptive does not clearly beat %s on any axis: lat %.2fx cyc %.2fx", s.Name, latRatio, cycRatio)
		}
		if latRatio < 1.0/1.5 || cycRatio < 1.0/1.5 {
			t.Errorf("adaptive loses an axis to %s by >1.5x: lat %.2fx cyc %.2fx", s.Name, latRatio, cycRatio)
		}
		if prod := (ad.MeanLat * ad.CycPerOp) / (s.MeanLat * s.CycPerOp); prod > 0.8 {
			t.Errorf("adaptive lat*cyc product vs %s is %.2f, want <= 0.8", s.Name, prod)
		}
	}
}

// TestAdaptiveSmoke is the quick CI leg: the adaptive runtime on a short
// shaped run must deliver everything, keep exits/op at the narrow
// static's floor, and the tuner must have actually stepped without ever
// leaving its safety envelope.
func TestAdaptiveSmoke(t *testing.T) {
	run := func(adaptive bool) (AdaptiveCell, *World, error) {
		sink := telemetry.NewSink()
		opt := Options{Env: RakisSGX, Telemetry: sink, Adaptive: adaptive}
		if !adaptive {
			opt.BatchHint = 1
		}
		w, err := NewWorld(opt)
		if err != nil {
			return AdaptiveCell{}, nil, err
		}
		res, runErr := workloads.ShapedEcho(w.WorkloadEnv(), workloads.ShapedParams{
			Shape: adaptiveShape(0.25), PacketSize: 256,
		})
		if runErr != nil {
			w.Close()
			return AdaptiveCell{}, nil, runErr
		}
		cell := AdaptiveCell{Sent: res.Sent, Delivered: res.Delivered, MeanLat: res.MeanLat}
		if exits, ok := sink.Reg.Value("vtime.enclave_exits"); ok && res.Delivered > 0 {
			cell.ExitsPerOp = float64(exits) / float64(res.Delivered)
		}
		return cell, w, nil
	}

	static, w, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	ad, w, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	stats := w.Rakis().TunerStats()
	w.Close()

	if ad.Delivered != ad.Sent {
		t.Errorf("adaptive delivered %d of %d", ad.Delivered, ad.Sent)
	}
	if ad.ExitsPerOp > static.ExitsPerOp*1.05 {
		t.Errorf("adaptive exits/op %.4f worse than static %.4f", ad.ExitsPerOp, static.ExitsPerOp)
	}
	if stats.Steps == 0 {
		t.Error("tuner never stepped during a loaded run")
	}
	if stats.EnvelopeViolations != 0 {
		t.Errorf("tuner left its safety envelope %d times", stats.EnvelopeViolations)
	}
	t.Logf("static lat=%.0f exits/op=%.3f | adaptive lat=%.0f exits/op=%.3f steps=%d ups=%d switches=%d",
		static.MeanLat, static.ExitsPerOp, ad.MeanLat, ad.ExitsPerOp, stats.Steps, stats.BatchUps, stats.ModeSwitches)
}
