//go:build !race

package experiments

// raceDetectorEnabled reports whether this binary was built with -race.
// See race_on_test.go.
const raceDetectorEnabled = false
