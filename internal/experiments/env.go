// Package experiments builds the five test environments of §6 and drives
// the workloads that regenerate every figure of the paper's evaluation:
// Native, Gramine-Direct, Gramine-SGX, RAKIS-Direct, and RAKIS-SGX, all
// on one simulated machine with two 25 Gbps interfaces wired in loopback.
package experiments

import (
	"fmt"

	"rakis"
	"rakis/internal/chaos"
	"rakis/internal/hostos"
	"rakis/internal/libos"
	"rakis/internal/mem"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/sys"
	"rakis/internal/telemetry"
	"rakis/internal/tuner"
	"rakis/internal/vtime"
)

// Environment selects one of the paper's five test environments.
type Environment int

const (
	// Native runs the workload on the host kernel.
	Native Environment = iota
	// GramineDirect runs under the LibOS outside SGX.
	GramineDirect
	// GramineSGX runs under the LibOS inside SGX (exits per syscall).
	GramineSGX
	// RakisDirect runs under RAKIS outside SGX.
	RakisDirect
	// RakisSGX runs under RAKIS inside SGX.
	RakisSGX
	// RakisSGXXskTCP is RakisSGX with the in-enclave TCP stack over the
	// XSK path (beyond the paper, which proxied TCP through io_uring):
	// listen/accept/connect/send/recv run enclave-side at the zero-exit
	// floor with the SYN-cookie listen path. Not part of Environments —
	// it extends figures, never alters the paper's five rows.
	RakisSGXXskTCP
)

// Environments lists all five in the paper's presentation order.
var Environments = []Environment{Native, RakisDirect, RakisSGX, GramineDirect, GramineSGX}

// String returns the environment name as the figures label it.
func (e Environment) String() string {
	switch e {
	case Native:
		return "Native"
	case GramineDirect:
		return "Gramine-Direct"
	case GramineSGX:
		return "Gramine-SGX"
	case RakisDirect:
		return "Rakis-Direct"
	case RakisSGXXskTCP:
		return "Rakis-SGX-XSK-TCP"
	default:
		return "Rakis-SGX"
	}
}

// IsRakis reports whether the environment runs under RAKIS.
func (e Environment) IsRakis() bool {
	return e == RakisDirect || e == RakisSGX || e == RakisSGXXskTCP
}

// Addresses of the simulated testbed.
var (
	// ClientIP is the load generator's address ("its own network
	// namespace", §6.1).
	ClientIP = netstack.IP4{10, 0, 0, 1}
	// KernelIP is the server kernel stack's address, used by the
	// baseline environments.
	KernelIP = netstack.IP4{10, 0, 0, 2}
	// RakisIP is the in-enclave stack's address, used by the RAKIS
	// environments (the XDP program steers it to the XSKs).
	RakisIP = netstack.IP4{10, 0, 0, 3}
)

// Options configures a World.
type Options struct {
	// Env is the environment under test.
	Env Environment
	// ServerQueues is the server NIC queue count (default 4).
	ServerQueues int
	// ClientQueues is the client NIC queue count (default 2). The shard
	// scaling figure raises it with the shard count so the uncosted
	// load generator's NIC never becomes the bottleneck being measured.
	ClientQueues int
	// NumXSKs is the XSK count for RAKIS environments (default 1;
	// Memcached uses 4, §6.1).
	NumXSKs int
	// RingSize is the XSK ring size (default 2048, §6.1).
	RingSize uint32
	// GlobalLockStack enables the enclave-stack global-lock ablation.
	GlobalLockStack bool
	// CopyRX selects the legacy copying RX path in RAKIS environments
	// (the zero-copy ablation). Ignored by the baselines.
	CopyRX bool
	// RoundRobinTX retains the pre-shard rotating TX queue selection in
	// RAKIS environments (the flow-affinity ablation).
	RoundRobinTX bool
	// FrameCount overrides the UMem frame count in RAKIS environments
	// (0 keeps the runtime default). The adaptive figure sets it from the
	// tuner's geometry recommendation.
	FrameCount uint32
	// Adaptive enables the self-tuning runtime in RAKIS environments.
	Adaptive bool
	// TunerParams overrides the tuner's pacing/envelope (zero value =
	// tuner.DefaultParams). Ignored unless Adaptive.
	TunerParams tuner.Params
	// BusyPoll statically selects kernel busy-poll mode in RAKIS
	// environments. Ignored when Adaptive.
	BusyPoll bool
	// BatchHint statically pins the advised vector width in RAKIS
	// environments (default 1). Ignored when Adaptive.
	BatchHint int
	// TrustedBytes and UntrustedBytes size the simulated address space.
	TrustedBytes, UntrustedBytes int
	// Chaos arms hostile-host fault injection across the kernel, the NIC
	// pair, and (in RAKIS environments) the Monitor Module. Nil means a
	// well-behaved host.
	Chaos *chaos.Injector
	// Telemetry, when non-nil, instruments the whole world: server
	// threads get cost-attribution probes, the boundary layers get trace
	// buffers, and the server NIC's per-queue drop counts surface as
	// registry gauges.
	Telemetry *telemetry.Sink

	// paramLabel labels rows produced from these options.
	paramLabel string
}

func (o *Options) fill() {
	if o.ServerQueues <= 0 {
		o.ServerQueues = 4
	}
	if o.ClientQueues <= 0 {
		o.ClientQueues = 2
	}
	if o.NumXSKs <= 0 {
		o.NumXSKs = 1
	}
	if o.RingSize == 0 {
		o.RingSize = 2048
	}
	if o.TrustedBytes == 0 {
		o.TrustedBytes = 1 << 24
	}
	if o.UntrustedBytes == 0 {
		o.UntrustedBytes = 1 << 28
	}
}

// World is one fully wired test environment.
type World struct {
	Opt      Options
	Model    *vtime.Model
	Space    *mem.Space
	Kern     *hostos.Kernel
	ClientNS *hostos.NetNS
	ServerNS *hostos.NetNS

	// Counters aggregates server-side events (exits, syscalls, drops).
	Counters *vtime.Counters

	// ServerIP is where workload servers listen in this environment.
	ServerIP netstack.IP4

	// Telemetry is the sink from Options (nil when uninstrumented).
	Telemetry *telemetry.Sink

	rakisRT    *rakis.Runtime
	serverProc *libos.Process
	clientProc *libos.Process
	cliDev     *netsim.Device
	srvDev     *netsim.Device
}

// clientModel is the uncosted load generator's model: the client "runs
// natively in its own namespace" and must never be the virtual
// bottleneck, so its per-packet costs are tiny. The shared wire still
// paces it at 25 Gbps.
func clientModel(m *vtime.Model) *vtime.Model {
	c := *m
	c.Syscall = 10
	c.KernelNetPerPacket = 20
	c.KernelTCPPerSegment = 30
	c.SocketOp = 5
	c.VfsOp = 10
	c.PollPerFD = 5
	c.KernelCopyPerByte = 0.002
	c.UserCopyPerByte = 0.002
	return &c
}

// rakisDirectModel removes the SGX boundary tax for RAKIS-Direct: copies
// in and out of the (non-encrypted) shared memory cost a plain copy.
func rakisDirectModel(m *vtime.Model) *vtime.Model {
	c := *m
	c.BoundaryCopyPerByte = c.UserCopyPerByte
	return &c
}

// NewWorld wires the full testbed for one environment.
func NewWorld(opt Options) (*World, error) {
	opt.fill()
	model := vtime.Default()
	w := &World{
		Opt:      opt,
		Model:    model,
		Space:    mem.NewSpace(opt.TrustedBytes, opt.UntrustedBytes),
		Counters: &vtime.Counters{},
	}
	w.Kern = hostos.NewKernel(w.Space, model)
	w.Kern.Chaos = opt.Chaos
	opt.Chaos.Bind(w.Space, w.Counters)
	cliDev, srvDev := netsim.NewPair(model,
		netsim.Config{Name: "eth-client", MAC: [6]byte{2, 0, 0, 0, 0, 1}, Queues: opt.ClientQueues},
		netsim.Config{Name: "eth-server", MAC: [6]byte{2, 0, 0, 0, 0, 2}, Queues: opt.ServerQueues},
	)
	// The wire is host-controlled too: both directions get the fault
	// hooks, and the server NIC's softirq workers can be stalled.
	cliDev.SetChaos(opt.Chaos)
	srvDev.SetChaos(opt.Chaos)
	w.cliDev, w.srvDev = cliDev, srvDev
	w.Telemetry = opt.Telemetry
	if sink := opt.Telemetry; sink != nil {
		telemetry.BindCounters(sink.Reg, w.Counters)
		w.Kern.Trace = sink.NewBuf("hostos")
		// The server NIC: per-frame softirq events, a probe per queue
		// clock, and the per-queue drop gauges the workload reports read.
		srvDev.SetTelemetry(sink.NewBuf("eth-server"))
		for i := 0; i < srvDev.NumQueues(); i++ {
			q := srvDev.Queue(i)
			sink.NewProbe(fmt.Sprintf("softirq.%s.q%d", srvDev.Name(), i), q.Clock())
			sink.Reg.Reader(fmt.Sprintf("netsim.%s.q%d.dropped", srvDev.Name(), i), q.Dropped)
		}
		for i := 0; i < cliDev.NumQueues(); i++ {
			q := cliDev.Queue(i)
			sink.Reg.Reader(fmt.Sprintf("netsim.%s.q%d.dropped", cliDev.Name(), i), q.Dropped)
		}
	}
	var err error
	w.ClientNS, err = w.Kern.AddNetNS("client", cliDev, ClientIP, clientModel(model), nil)
	if err != nil {
		return nil, err
	}
	w.ServerNS, err = w.Kern.AddNetNS("server", srvDev, KernelIP, model, w.Counters)
	if err != nil {
		return nil, err
	}

	cp := w.Kern.NewProc(w.ClientNS, nil)
	cp.Free = true
	w.clientProc = libos.NewProcess(cp, libos.Native, nil)

	switch opt.Env {
	case Native:
		w.ServerIP = KernelIP
		w.serverProc = libos.NewProcess(w.Kern.NewProc(w.ServerNS, w.Counters), libos.Native, w.Counters)
		w.serverProc.SetTelemetry(opt.Telemetry)
	case GramineDirect:
		// Direct mode never takes the OCALL path, so exit and boundary
		// costs are structurally absent; only the LibOS handling cost
		// remains.
		w.ServerIP = KernelIP
		w.serverProc = libos.NewProcess(w.Kern.NewProc(w.ServerNS, w.Counters), libos.Direct, w.Counters)
		w.serverProc.SetTelemetry(opt.Telemetry)
	case GramineSGX:
		w.ServerIP = KernelIP
		w.serverProc = libos.NewProcess(w.Kern.NewProc(w.ServerNS, w.Counters), libos.SGX, w.Counters)
		w.serverProc.SetTelemetry(opt.Telemetry)
	case RakisDirect, RakisSGX, RakisSGXXskTCP:
		w.ServerIP = RakisIP
		mode := libos.Direct
		encModel := rakisDirectModel(model)
		if opt.Env != RakisDirect {
			mode = libos.SGX
			encModel = model
		}
		w.rakisRT, err = rakis.Boot(w.Kern, w.ServerNS, rakis.Config{
			IP:              RakisIP,
			NumXSKs:         opt.NumXSKs,
			RingSize:        opt.RingSize,
			FrameCount:      opt.FrameCount,
			Mode:            mode,
			Model:           encModel,
			Counters:        w.Counters,
			GlobalLockStack: opt.GlobalLockStack,
			CopyRX:          opt.CopyRX,
			RoundRobinTX:    opt.RoundRobinTX,
			Chaos:           opt.Chaos,
			Telemetry:       opt.Telemetry,
			Adaptive:        opt.Adaptive,
			TunerParams:     opt.TunerParams,
			BusyPoll:        opt.BusyPoll,
			BatchHint:       opt.BatchHint,
			EnclaveTCP:      opt.Env == RakisSGXXskTCP,
		})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("experiments: unknown environment %d", opt.Env)
	}
	return w, nil
}

// ServerThread returns a fresh application thread in the server
// environment.
func (w *World) ServerThread() (sys.Sys, error) {
	if w.rakisRT != nil {
		return w.rakisRT.NewThread()
	}
	return w.serverProc.NewThread(), nil
}

// ClientThread returns a fresh load-generator thread (native, uncosted).
func (w *World) ClientThread() sys.Sys {
	return w.clientProc.NewThread()
}

// Rakis exposes the RAKIS runtime in RAKIS environments (nil otherwise).
func (w *World) Rakis() *rakis.Runtime { return w.rakisRT }

// ClientDev exposes the client-side NIC. The million-flow generator
// injects raw frames on it directly, bypassing per-flow client sockets.
func (w *World) ClientDev() *netsim.Device { return w.cliDev }

// TotalDrops sums the NIC queue drops on both ends of the wire — full
// receive queues silently eat frames, and a throughput figure that hides
// that is lying about goodput.
func (w *World) TotalDrops() uint64 {
	var total uint64
	for _, d := range []*netsim.Device{w.cliDev, w.srvDev} {
		for i := 0; i < d.NumQueues(); i++ {
			total += d.Queue(i).Dropped()
		}
	}
	return total
}

// VFS exposes the shared filesystem for workload setup.
func (w *World) VFS() *hostos.VFS { return w.Kern.VFS() }

// Close tears the world down.
func (w *World) Close() {
	if w.rakisRT != nil {
		w.rakisRT.Close()
	}
	w.Kern.Close()
}
