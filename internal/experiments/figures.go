package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"rakis/internal/telemetry"
	"rakis/internal/workloads"
)

// WorkloadEnv adapts a World to the workloads' environment surface.
func (w *World) WorkloadEnv() workloads.Env {
	env := workloads.Env{
		ServerThread: w.ServerThread,
		ClientThread: w.ClientThread,
		ServerIP:     w.ServerIP,
		ClientIP:     ClientIP,
		KernelIP:     KernelIP,
		Model:        w.Model,
	}
	if rt := w.Rakis(); rt != nil {
		env.SpliceUDPEcho = rt.SpliceUDPEcho
	}
	if w.Opt.Env == RakisSGXXskTCP {
		env.TCPIP = RakisIP
	}
	return env
}

// Scale shrinks experiment sizes: 1.0 regenerates figure-sized runs,
// smaller values keep tests fast. Durations in the paper (10 s streams,
// 1 GB files) are expressed as volumes here.
type Scale float64

// Row is one measured point of a figure: an environment, a swept
// parameter, and the measured value in the figure's unit.
type Row struct {
	Env   Environment
	Param string
	Value float64
	Unit  string
	// Drops is the NIC-queue frames silently dropped during the
	// measurement (both wire ends). A throughput number with hidden
	// drops overstates goodput, so every row carries its count.
	Drops uint64
	// Batch is the vector width of the I/O calls under measurement;
	// zero for figures that only exercise the scalar path.
	Batch int
}

// printCols returns the table's environment columns: the paper's five
// in presentation order, followed by any extra environments the figure
// measured (e.g. the in-enclave XSK TCP configuration) in
// first-appearance order. Columns no row measured are omitted.
func printCols(rows []Row) []Environment {
	seen := map[Environment]bool{}
	for _, r := range rows {
		seen[r.Env] = true
	}
	var cols []Environment
	for _, e := range Environments {
		if seen[e] {
			cols = append(cols, e)
			delete(seen, e)
		}
	}
	for _, r := range rows {
		if seen[r.Env] {
			cols = append(cols, r.Env)
			delete(seen, r.Env)
		}
	}
	return cols
}

// PrintRows renders rows as an aligned table grouped by parameter.
func PrintRows(out io.Writer, title string, rows []Row) {
	fmt.Fprintf(out, "\n%s\n", title)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	byParam := map[string][]Row{}
	var order []string
	for _, r := range rows {
		if len(byParam[r.Param]) == 0 {
			order = append(order, r.Param)
		}
		byParam[r.Param] = append(byParam[r.Param], r)
	}
	cols := printCols(rows)
	fmt.Fprintf(tw, "param")
	for _, e := range cols {
		fmt.Fprintf(tw, "\t%s", e)
	}
	if len(rows) > 0 {
		fmt.Fprintf(tw, "\t[%s]", rows[0].Unit)
	}
	fmt.Fprintln(tw)
	anyDrops := false
	for _, p := range order {
		fmt.Fprintf(tw, "%s", p)
		for _, e := range cols {
			v := 0.0
			for _, r := range byParam[p] {
				if r.Env == e {
					v = r.Value
					if r.Drops > 0 {
						anyDrops = true
					}
				}
			}
			fmt.Fprintf(tw, "\t%.2f", v)
		}
		fmt.Fprintln(tw)
	}
	if anyDrops {
		fmt.Fprintln(tw, "-- NIC drops --")
		for _, p := range order {
			fmt.Fprintf(tw, "%s", p)
			for _, e := range cols {
				var d uint64
				for _, r := range byParam[p] {
					if r.Env == e {
						d = r.Drops
					}
				}
				fmt.Fprintf(tw, "\t%d", d)
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// runPerEnv builds a world per environment and applies f.
func runPerEnv(opt Options, f func(*World) (float64, string, error)) ([]Row, map[Environment]float64, error) {
	var rows []Row
	vals := map[Environment]float64{}
	for _, env := range Environments {
		o := opt
		o.Env = env
		w, err := NewWorld(o)
		if err != nil {
			return nil, nil, fmt.Errorf("%v: %w", env, err)
		}
		v, unit, err := f(w)
		drops := w.TotalDrops()
		w.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%v: %w", env, err)
		}
		rows = append(rows, Row{Env: env, Param: opt.paramLabel, Value: v, Unit: unit, Drops: drops})
		vals[env] = v
	}
	return rows, vals, nil
}

// Fig4aIperf reproduces Figure 4(a): iperf3 UDP throughput (Gbps) across
// packet sizes for the five environments.
func Fig4aIperf(scale Scale) ([]Row, error) {
	sizes := []int{64, 128, 256, 512, 1024, 1460}
	count := int(float64(4000) * float64(scale))
	if count < 200 {
		count = 200
	}
	var rows []Row
	for _, size := range sizes {
		opt := Options{paramLabel: fmt.Sprintf("%dB", size)}
		r, _, err := runPerEnv(opt, func(w *World) (float64, string, error) {
			res, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{
				PacketSize: size, Count: count,
			})
			return res.Gbps, "Gbps", err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig4bCurl reproduces Figure 4(b): QUIC download duration (seconds,
// lower is better) across file sizes.
func Fig4bCurl(scale Scale) ([]Row, error) {
	// Paper: 10 MB .. 1 GB. Scaled for practicality.
	sizes := []int{
		int(float64(2<<20) * float64(scale) * 8),
		int(float64(8<<20) * float64(scale) * 8),
	}
	var rows []Row
	for _, size := range sizes {
		if size < 64<<10 {
			size = 64 << 10
		}
		data := workloads.PrepareMcryptInput(size)
		opt := Options{paramLabel: fmt.Sprintf("%dMB", size>>20)}
		r, _, err := runPerEnv(opt, func(w *World) (float64, string, error) {
			res, err := workloads.Curl(w.WorkloadEnv(), workloads.CurlParams{Path: "/srv/file"},
				func(string) ([]byte, error) { return data, nil })
			if err != nil {
				return 0, "s", err
			}
			if res.Bytes != uint64(size) {
				return 0, "s", fmt.Errorf("curl got %d bytes, want %d", res.Bytes, size)
			}
			return res.Seconds, "s", nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig4cMemcached reproduces Figure 4(c): memcached throughput (kops/s)
// across server thread counts, with four XSKs (§6.1).
func Fig4cMemcached(scale Scale) ([]Row, error) {
	threads := []int{1, 2, 4, 8}
	ops := int(float64(4000) * float64(scale))
	if ops < 400 {
		ops = 400
	}
	var rows []Row
	for _, t := range threads {
		opt := Options{NumXSKs: 4, ServerQueues: 8, paramLabel: fmt.Sprintf("%dthr", t)}
		r, _, err := runPerEnv(opt, func(w *World) (float64, string, error) {
			res, err := workloads.Memcached(w.WorkloadEnv(), workloads.MemcachedParams{
				ServerThreads: t, Ops: ops,
			})
			return res.OpsPerSec / 1e3, "kops/s", err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig5aFstime reproduces Figure 5(a): fstime write throughput (MB/s)
// across block sizes.
func Fig5aFstime(scale Scale) ([]Row, error) {
	blocks := []int{256, 1024, 4096, 16384, 65536, 262144, 1048576}
	var rows []Row
	for _, b := range blocks {
		total := int(float64(8<<20) * float64(scale))
		if total < b*16 {
			total = b * 16
		}
		opt := Options{paramLabel: fmt.Sprintf("%dB", b)}
		r, _, err := runPerEnv(opt, func(w *World) (float64, string, error) {
			res, err := workloads.Fstime(w.WorkloadEnv(), workloads.FstimeParams{
				BlockSize: b, TotalBytes: total,
			})
			return res.KBps / 1024, "MB/s", err
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig5bRedis reproduces Figure 5(b): Redis throughput normalized to
// Native, per command.
func Fig5bRedis(scale Scale) ([]Row, error) {
	cmds := []string{"PING", "SET", "GET"}
	ops := int(float64(2000) * float64(scale))
	if ops < 250 {
		ops = 250
	}
	var rows []Row
	for _, cmd := range cmds {
		opt := Options{paramLabel: cmd}
		r, vals, err := runPerEnv(opt, func(w *World) (float64, string, error) {
			res, err := workloads.Redis(w.WorkloadEnv(), workloads.RedisParams{
				Command: cmd, Ops: ops,
			})
			return res.OpsPerSec, "normalized", err
		})
		if err != nil {
			return nil, err
		}
		base := vals[Native]
		for i := range r {
			r[i].Value /= base
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig5cMcrypt reproduces Figure 5(c): MCrypt encryption duration
// (seconds) across read block sizes.
func Fig5cMcrypt(scale Scale) ([]Row, error) {
	blocks := []int{4096, 16384, 65536, 262144, 1048576}
	size := int(float64(32<<20) * float64(scale))
	if size < 1<<20 {
		size = 1 << 20
	}
	input := workloads.PrepareMcryptInput(size)
	var rows []Row
	for _, b := range blocks {
		opt := Options{paramLabel: fmt.Sprintf("%dKB", b>>10)}
		r, _, err := runPerEnv(opt, func(w *World) (float64, string, error) {
			w.VFS().WriteFile("/data/mcrypt.in", input)
			res, err := workloads.Mcrypt(w.WorkloadEnv(), workloads.McryptParams{BlockSize: b})
			if err != nil {
				return 0, "s", err
			}
			if res.Bytes != uint64(size) {
				return 0, "s", fmt.Errorf("mcrypt processed %d bytes, want %d", res.Bytes, size)
			}
			return res.Seconds, "s", nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig2Exits reproduces Figure 2: enclave exit counts for HelloWorld and
// an iperf3 run, on Gramine-SGX vs RAKIS-SGX. Exit counts are read from
// the telemetry registry's "vtime.enclave_exits" gauge — the same source
// of truth the breakdown and cmd/rakis-trace report.
func Fig2Exits(scale Scale) ([]Row, error) {
	count := int(float64(4000) * float64(scale))
	if count < 200 {
		count = 200
	}
	// exitCell builds an instrumented world, runs one workload, and reads
	// the exit count out of the registry.
	exitCell := func(env Environment, run func(*World) error) (Row, error) {
		sink := telemetry.NewSink()
		w, err := NewWorld(Options{Env: env, Telemetry: sink})
		if err != nil {
			return Row{}, err
		}
		runErr := run(w)
		drops := w.TotalDrops()
		w.Close()
		if runErr != nil {
			return Row{}, runErr
		}
		exits, ok := sink.Reg.Value("vtime.enclave_exits")
		if !ok {
			return Row{}, fmt.Errorf("fig2: exit gauge missing from registry")
		}
		return Row{Env: env, Value: float64(exits), Unit: "exits", Drops: drops}, nil
	}
	var rows []Row
	for _, env := range []Environment{GramineSGX, RakisSGX} {
		r, err := exitCell(env, func(w *World) error {
			return workloads.HelloWorld(w.WorkloadEnv())
		})
		if err != nil {
			return nil, err
		}
		r.Param = "HelloWorld"
		rows = append(rows, r)

		r, err = exitCell(env, func(w *World) error {
			_, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{
				PacketSize: 1460, Count: count,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		r.Param = "iperf3"
		rows = append(rows, r)
	}
	return rows, nil
}

// FigBatch measures the batched fast path: the UDP echo workload at
// vector widths 1 and 32, reporting enclave exits per echoed datagram
// on Gramine-SGX vs RAKIS-SGX. On Gramine-SGX every scalar recv+send
// pays two OCALLs, so width-32 vectors amortize them ~32x; on RAKIS-SGX
// the UDP data path already pays zero exits, so both widths sit at the
// same floor — batching changes nothing but the cost.
func FigBatch(scale Scale) ([]Row, error) {
	count := int(float64(2048) * float64(scale))
	if count < 256 {
		count = 256
	}
	var rows []Row
	for _, env := range []Environment{GramineSGX, RakisSGX} {
		for _, batch := range []int{1, 32} {
			sink := telemetry.NewSink()
			w, err := NewWorld(Options{Env: env, Telemetry: sink})
			if err != nil {
				return nil, fmt.Errorf("%v: %w", env, err)
			}
			res, runErr := workloads.UDPEcho(w.WorkloadEnv(), workloads.EchoParams{
				PacketSize: 256, Count: count, Batch: batch,
			}, false)
			drops := w.TotalDrops()
			w.Close()
			if runErr != nil {
				return nil, fmt.Errorf("%v b=%d: %w", env, batch, runErr)
			}
			exits, ok := sink.Reg.Value("vtime.enclave_exits")
			if !ok {
				return nil, fmt.Errorf("figbatch: exit gauge missing from registry")
			}
			if res.Echoed == 0 {
				return nil, fmt.Errorf("figbatch: %v b=%d echoed nothing", env, batch)
			}
			rows = append(rows, Row{
				Env: env, Param: fmt.Sprintf("b=%d", batch), Batch: batch,
				Value: float64(exits) / float64(res.Echoed), Unit: "exits/op",
				Drops: drops,
			})
		}
	}
	return rows, nil
}

// FigZerocopy measures the zero-copy RX/splice datapath: iperf3 and the
// UDP proxy on the RAKIS environments with the legacy copying RX path
// (CopyRX) versus the certify-in-place view path, reporting the
// copy-component cycles per delivered datagram summed over the RX
// datapath clocks (the FM pumps and the application threads — the
// clocks the copies land on). The "x" rows are the copy/zc ratios the
// acceptance gate asserts are ≥ 2.
func FigZerocopy(scale Scale) ([]Row, error) {
	count := int(float64(2048) * float64(scale))
	if count < 256 {
		count = 256
	}
	// copyCycPerOp runs one workload in one world and reads the RX
	// datapath's copy-component cycles per delivered op.
	copyCycPerOp := func(env Environment, copyRX bool, run func(*World) (int, error)) (float64, uint64, error) {
		sink := telemetry.NewSink()
		w, err := NewWorld(Options{Env: env, CopyRX: copyRX, Telemetry: sink})
		if err != nil {
			return 0, 0, err
		}
		ops, runErr := run(w)
		drops := w.TotalDrops()
		w.Close()
		if runErr != nil {
			return 0, 0, runErr
		}
		if ops == 0 {
			return 0, 0, fmt.Errorf("figzerocopy: no ops delivered")
		}
		var cyc uint64
		for _, tr := range sink.Breakdown().Threads {
			if strings.HasPrefix(tr.Thread, "fm.") || strings.HasPrefix(tr.Thread, "app.") {
				cyc += tr.Comp["copy"]
			}
		}
		return float64(cyc) / float64(ops), drops, nil
	}
	type wl struct {
		name string
		run  func(*World) (int, error)
	}
	wls := []wl{
		{"iperf", func(w *World) (int, error) {
			res, err := workloads.IperfUDP(w.WorkloadEnv(), workloads.IperfParams{
				PacketSize: 1460, Count: count,
			})
			return res.Received, err
		}},
		{"udpproxy", func(w *World) (int, error) {
			res, err := workloads.UDPProxy(w.WorkloadEnv(), workloads.ProxyParams{
				PacketSize: 1024, Count: count,
			}, false)
			return res.Echoed, err
		}},
	}
	var rows []Row
	for _, env := range []Environment{RakisDirect, RakisSGX} {
		for _, l := range wls {
			c, cd, err := copyCycPerOp(env, true, l.run)
			if err != nil {
				return nil, fmt.Errorf("%v %s copy: %w", env, l.name, err)
			}
			z, zd, err := copyCycPerOp(env, false, l.run)
			if err != nil {
				return nil, fmt.Errorf("%v %s zc: %w", env, l.name, err)
			}
			if z <= 0 {
				return nil, fmt.Errorf("%v %s: zero-copy path charged no copies", env, l.name)
			}
			rows = append(rows,
				Row{Env: env, Param: l.name + "/copy", Value: c, Unit: "copycyc/op", Drops: cd},
				Row{Env: env, Param: l.name + "/zc", Value: z, Unit: "copycyc/op", Drops: zd},
				Row{Env: env, Param: l.name + " ratio", Value: c / z, Unit: "x"},
			)
		}
	}
	return rows, nil
}

// BenchSchema identifies the machine-readable bench JSON layout.
const BenchSchema = "rakis-bench/v1"

// BenchRow is one measured figure point in the stable form the BENCH
// trajectory consumes (see EXPERIMENTS.md for the schema).
type BenchRow struct {
	Figure string  `json:"figure"`
	Env    string  `json:"env"`
	X      string  `json:"x"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
	Drops  uint64  `json:"drops"`
	Batch  int     `json:"batch,omitempty"`
}

// BenchDoc is the BENCH_figs.json document: a schema tag plus every
// measured row, in run order.
type BenchDoc struct {
	Schema string     `json:"schema"`
	Rows   []BenchRow `json:"rows"`
}

// AddFigure appends one figure's measured rows to the document.
func (d *BenchDoc) AddFigure(id string, rows []Row) {
	for _, r := range rows {
		d.Rows = append(d.Rows, BenchRow{
			Figure: id, Env: r.Env.String(), X: r.Param,
			Value: r.Value, Unit: r.Unit, Drops: r.Drops, Batch: r.Batch,
		})
	}
}

// WriteJSON writes the document as indented JSON.
func (d *BenchDoc) WriteJSON(w io.Writer) error {
	d.Schema = BenchSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
