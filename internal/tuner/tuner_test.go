package tuner

import (
	"sync"
	"testing"

	"rakis/internal/telemetry"
)

// depth builds a window histogram observing v, n times.
func depth(v uint64, n int) telemetry.HistSnapshot {
	var h telemetry.Histogram
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
	return h.Snapshot()
}

// window is one synthetic load-table entry.
type window struct {
	ops   uint64
	depth uint64 // observed backlog per active pump pass (0 = idle window)
}

func drive(t *testing.T, tn *Tuner, table []window) []Decision {
	t.Helper()
	out := make([]Decision, 0, len(table))
	for _, w := range table {
		in := Input{Ops: w.ops}
		if w.depth > 0 {
			in.Depth = depth(w.depth, 16)
		}
		out = append(out, tn.Step(in))
	}
	return out
}

// TestStepLoadMonotoneRamp drives a step load (trickle -> saturation ->
// trickle) and asserts the batch width ramps monotonically up through
// the hot phase and monotonically back down through the cool phase —
// the tentpole's "monotone ramp-up/ramp-down" property.
func TestStepLoadMonotoneRamp(t *testing.T) {
	tn := New(Params{}, nil)
	hot := make([]window, 12)
	for i := range hot {
		hot[i] = window{ops: 1000, depth: 64}
	}
	ds := drive(t, tn, hot)
	for i := 1; i < len(ds); i++ {
		if ds[i].Batch < ds[i-1].Batch {
			t.Fatalf("batch not monotone up under step load: %d then %d", ds[i-1].Batch, ds[i].Batch)
		}
	}
	if got := ds[len(ds)-1].Batch; got != tn.Params().MaxBatch {
		t.Fatalf("batch did not reach MaxBatch under saturation: got %d", got)
	}

	cool := make([]window, 24)
	for i := range cool {
		cool[i] = window{ops: 4, depth: 1}
	}
	ds = drive(t, tn, cool)
	for i := 1; i < len(ds); i++ {
		if ds[i].Batch > ds[i-1].Batch {
			t.Fatalf("batch not monotone down after load drop: %d then %d", ds[i-1].Batch, ds[i].Batch)
		}
	}
	if got := ds[len(ds)-1].Batch; got != tn.Params().MinBatch {
		t.Fatalf("batch did not decay to MinBatch at trickle: got %d", got)
	}
}

// TestModeHysteresisNoFlap drives an adversarially oscillating load
// (alternating deep/shallow windows, the worst case for a naive
// threshold) and asserts no two mode switches land within the guard
// window.
func TestModeHysteresisNoFlap(t *testing.T) {
	tn := New(Params{}, nil)
	table := make([]window, 64)
	for i := range table {
		if i%2 == 0 {
			table[i] = window{ops: 1000, depth: 32} // above PollOn
		} else {
			table[i] = window{ops: 2, depth: 1} // below PollOff
		}
	}
	drive(t, tn, table)
	st := tn.Stats()
	if st.ModeSwitches > 1 && st.MinSwitchGap < uint64(tn.Params().Guard) {
		t.Fatalf("mode flapped: min switch gap %d < guard %d (switches=%d)",
			st.MinSwitchGap, tn.Params().Guard, st.ModeSwitches)
	}
	if st.ModeSwitches == 0 {
		t.Fatalf("expected at least one mode switch under deep load")
	}
}

// TestBurstLoadConvergence drives an on/off burst pattern with bursts
// long relative to the guard and asserts the mode tracks the phases:
// busy-poll inside bursts, wakeup restored in the quiet tails.
func TestBurstLoadConvergence(t *testing.T) {
	tn := New(Params{}, nil)
	var table []window
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 10; i++ {
			table = append(table, window{ops: 1000, depth: 48})
		}
		for i := 0; i < 10; i++ {
			table = append(table, window{ops: 1, depth: 1})
		}
	}
	ds := drive(t, tn, table)
	// End of each burst phase: busy-poll; end of each quiet phase: wakeup.
	for cycle := 0; cycle < 3; cycle++ {
		if m := ds[cycle*20+9].Mode; m != ModeBusyPoll {
			t.Fatalf("cycle %d: expected busy-poll at burst end, got %v", cycle, m)
		}
		if m := ds[cycle*20+19].Mode; m != ModeWakeup {
			t.Fatalf("cycle %d: expected wakeup at quiet end, got %v", cycle, m)
		}
	}
}

// TestSingleQuietTickDoesNotCollapseBatch checks DownGuard: one shallow
// window inside a burst must not halve the width.
func TestSingleQuietTickDoesNotCollapseBatch(t *testing.T) {
	tn := New(Params{}, nil)
	drive(t, tn, []window{{1000, 64}, {1000, 64}, {1000, 64}, {1000, 64}})
	before := tn.Current().Batch
	drive(t, tn, []window{{1, 1}}) // single quiet tick
	if got := tn.Current().Batch; got != before {
		t.Fatalf("single quiet tick collapsed batch %d -> %d", before, got)
	}
}

// TestIdleDecay: fully idle windows decay the width and drop out of
// busy-poll (after the dwell), so an abandoned runtime does not spin.
func TestIdleDecay(t *testing.T) {
	tn := New(Params{}, nil)
	drive(t, tn, []window{{1000, 64}, {1000, 64}, {1000, 64}, {1000, 64}, {1000, 64}, {1000, 64}})
	if tn.Current().Mode != ModeBusyPoll {
		t.Fatalf("setup: expected busy-poll under saturation")
	}
	for i := 0; i < 32; i++ {
		tn.Step(Input{})
	}
	d := tn.Current()
	if d.Mode != ModeWakeup {
		t.Fatalf("idle runtime still busy-polling")
	}
	if d.Batch != tn.Params().MinBatch {
		t.Fatalf("idle runtime still advising batch %d", d.Batch)
	}
}

// TestEnvelopeUnderHostileInputs feeds absurd inputs (the worst a
// hostile host could induce indirectly by starving/flooding the data
// path, plus values no honest counter produces) and asserts every
// applied decision stays inside the safety envelope.
func TestEnvelopeUnderHostileInputs(t *testing.T) {
	tn := New(Params{}, nil)
	hostile := []Input{
		{Ops: ^uint64(0), Depth: depth(^uint64(0)>>1, 8)},
		{Ops: 1, Depth: depth(1<<40, 64)},
		{Ops: ^uint64(0), BatchCalls: 1, BatchedMsgs: ^uint64(0)},
		{Drops: ^uint64(0), Depth: depth(1<<62, 2)},
		{Suppressed: ^uint64(0)},
	}
	for i := 0; i < 200; i++ {
		d := tn.Step(hostile[i%len(hostile)])
		if !tn.InEnvelope(d) {
			t.Fatalf("decision %+v escaped the envelope", d)
		}
	}
	st := tn.Stats()
	if st.EnvelopeViolations != 0 {
		t.Fatalf("envelope violations recorded: %d", st.EnvelopeViolations)
	}
	// History trail too: every decision ever applied was safe.
	for _, d := range tn.History() {
		if !tn.InEnvelope(d) {
			t.Fatalf("historical decision %+v escaped the envelope", d)
		}
	}
}

// TestGeometryRecommendation: sustained deep windows push the
// recommended ring toward headroom over the p99 depth, clamped to the
// envelope.
func TestGeometryRecommendation(t *testing.T) {
	tn := New(Params{}, nil)
	for i := 0; i < 8; i++ {
		tn.Step(Input{Ops: 1000, Depth: depth(200, 32)})
	}
	rec := tn.Recommend()
	if rec.Ring < 1024 || rec.Ring > tn.Params().MaxRing {
		t.Fatalf("recommended ring %d not in expected band for p99~256 depth", rec.Ring)
	}
	if rec.Ring&(rec.Ring-1) != 0 {
		t.Fatalf("recommended ring %d not a power of two", rec.Ring)
	}
	if rec.Frames != rec.Ring*tn.Params().FramesPerSlot {
		t.Fatalf("frames %d not %d x ring", rec.Frames, tn.Params().FramesPerSlot)
	}

	// Trickle-only traffic recommends the minimal geometry.
	tn2 := New(Params{}, nil)
	for i := 0; i < 8; i++ {
		tn2.Step(Input{Ops: 4, Depth: depth(1, 4)})
	}
	if rec := tn2.Recommend(); rec.Ring != tn2.Params().MinRing {
		t.Fatalf("trickle recommended ring %d, want MinRing %d", rec.Ring, tn2.Params().MinRing)
	}
}

// TestStateConcurrentReaders exercises the shared cell under -race:
// one stepper, many readers.
func TestStateConcurrentReaders(t *testing.T) {
	tn := New(Params{}, nil)
	st := tn.State()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if b := st.Batch(); b < 1 || b > 64 {
					panic("batch outside envelope")
				}
				_ = st.BusyPoll()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		tn.Step(Input{Ops: uint64(i), Depth: depth(uint64(i%128), 8)})
	}
	close(stop)
	wg.Wait()
}

// TestNilStateSafe: data-path readers tolerate a nil cell (static
// configurations never allocate one).
func TestNilStateSafe(t *testing.T) {
	var s *State
	if s.Batch() != 1 || s.BusyPoll() {
		t.Fatalf("nil state must read as batch=1, wakeup mode")
	}
}
