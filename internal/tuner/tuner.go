// Package tuner is the self-tuning runtime's control loop: it closes the
// feedback path from the telemetry registry back onto the fast-path
// knobs the paper fixes at one operating point (§6.1: batch width b=32,
// need-wakeup MM signalling, 2K rings).
//
// Three knobs are tuned, each from trusted-side observations only:
//
//   - Vector width: the advised SendToN/RecvFromN batch ramps with the
//     RX queue depth the FM pumps observe through certified ring reads.
//     Deep backlogs double the width (amortizing API hooks and MM
//     wakeups); shallow ones halve it (a wide gather at trickle trades
//     latency for nothing).
//   - Wakeup mode: under load the Monitor Module's need-wakeup
//     signalling (one ~950-cycle syscall per TX edge, serialized on the
//     single MM thread) loses to a kernel busy-poll worker that drains
//     the rings continuously; at idle busy-poll burns the inter-arrival
//     gap as spin cycles. The classic interrupt-vs-poll trade switches
//     on queue depth with hysteresis and a dwell guard so it cannot
//     flap.
//   - Ring/UMem geometry: observed depth percentiles recommend the ring
//     size (headroom over p99) to apply at the next (re)configure.
//
// Trust argument: every input is a trusted-side counter — the depth
// histogram comes from certified ring reads inside the enclave, the
// occupancy counters from the API submodule, the drop and suppression
// gauges are advisory only. The host can starve or flood the data path
// (it always could) and thereby steer load-following, but the decision
// range is clamped to a fixed safe envelope, so the worst a hostile
// host achieves is wasted cycles — never an unsafe configuration. The
// tunerinput analyzer (internal/analysis) enforces the input discipline
// statically: this package may import only the telemetry registry and
// the standard library.
//
//rakis:role enclave
package tuner

import (
	"sync"
	"sync/atomic"

	"rakis/internal/telemetry"
)

// Mode is the wakeup strategy for the XSK data path.
type Mode int32

const (
	// ModeWakeup is need-wakeup signalling: the MM fires one syscall per
	// producer edge. Cheap at idle, serializing under load.
	ModeWakeup Mode = iota
	// ModeBusyPoll is the kernel busy-poll worker: rings drain
	// continuously with no per-edge syscall, burning spin cycles at
	// idle.
	ModeBusyPoll
)

// String names the mode as figures label it.
func (m Mode) String() string {
	if m == ModeBusyPoll {
		return "busypoll"
	}
	return "wakeup"
}

// Params bounds and paces the control loop. The bounds ARE the safety
// envelope: Step clamps every decision into them regardless of input.
type Params struct {
	// MinBatch and MaxBatch bound the advised vector width (powers of
	// two).
	MinBatch, MaxBatch int
	// DownGuard is how many consecutive shallow windows precede a
	// width halving (a single quiet tick inside a burst must not
	// collapse the batch).
	DownGuard int
	// PollOn and PollOff are the median queue-depth thresholds for
	// switching to and from busy-poll. PollOff < PollOn is the
	// hysteresis band.
	PollOn, PollOff uint64
	// Guard is the dwell: the minimum number of steps between two mode
	// switches. Within it the mode holds whatever the signal does.
	Guard int
	// IdleGuard is how many consecutive empty heartbeat windows make the
	// loop believe the system is idle and start decaying toward the
	// quiet operating point. It is deliberately longer than Guard: a
	// paced source's inter-chunk sleep can overshoot by several
	// heartbeat periods under a coarse timer, and a decay triggered by
	// that gap knocks the loop out of its settled point mid-burst.
	IdleGuard int
	// MinRing and MaxRing bound the recommended ring size.
	MinRing, MaxRing uint32
	// Headroom multiplies the observed p99 depth when recommending the
	// ring size: the ring must absorb the above-p99 tail plus the
	// refill latency between pump passes, so the margin is generous.
	Headroom uint32
	// FramesPerSlot sizes the UMem recommendation as a multiple of the
	// recommended ring.
	FramesPerSlot uint32
}

// DefaultParams returns the calibrated control-loop defaults.
func DefaultParams() Params {
	return Params{
		MinBatch: 1, MaxBatch: 32,
		DownGuard: 2,
		PollOn:    8, PollOff: 2,
		Guard:     4,
		IdleGuard: 8,
		MinRing: 256, MaxRing: 4096,
		Headroom:      8,
		FramesPerSlot: 4,
	}
}

func (p *Params) fill() {
	d := DefaultParams()
	if p.MinBatch <= 0 {
		p.MinBatch = d.MinBatch
	}
	if p.MaxBatch <= 0 {
		p.MaxBatch = d.MaxBatch
	}
	if p.DownGuard <= 0 {
		p.DownGuard = d.DownGuard
	}
	if p.PollOn == 0 {
		p.PollOn = d.PollOn
	}
	if p.PollOff == 0 || p.PollOff >= p.PollOn {
		p.PollOff = p.PollOn / 4
		if p.PollOff == 0 {
			p.PollOff = 1
		}
	}
	if p.Guard <= 0 {
		p.Guard = d.Guard
	}
	if p.IdleGuard <= 0 {
		p.IdleGuard = d.IdleGuard
	}
	if p.MinRing == 0 {
		p.MinRing = d.MinRing
	}
	if p.MaxRing < p.MinRing {
		p.MaxRing = d.MaxRing
	}
	if p.Headroom == 0 {
		p.Headroom = d.Headroom
	}
	if p.FramesPerSlot == 0 {
		p.FramesPerSlot = d.FramesPerSlot
	}
}

// Input is one observation window: counter deltas since the previous
// Step plus the queue-depth histogram the FM pumps filled over the
// window. Every field originates on the trusted side.
type Input struct {
	// Ops is the delta of datagrams the enclave stack moved (rx+tx).
	Ops uint64
	// BatchCalls and BatchedMsgs are the vectored-call deltas; their
	// ratio is the realized occupancy of the advised width.
	BatchCalls, BatchedMsgs uint64
	// Suppressed is the delta of MM wakeups avoided (per-shard
	// suppression counters summed) — advisory.
	Suppressed uint64
	// Drops is the delta of kernel-observed frame drops — advisory, it
	// feeds only the (clamped) geometry recommendation.
	Drops uint64
	// Depth is the window's RX queue-depth histogram: the backlog each
	// active pump pass found via a certified ring read.
	Depth telemetry.HistSnapshot
}

// Decision is one applied operating point.
type Decision struct {
	// Batch is the advised vector width.
	Batch int
	// Mode is the wakeup strategy.
	Mode Mode
	// Ring and Frames are the geometry recommendation current at this
	// step (applied at the next reconfigure, not live).
	Ring, Frames uint32
}

// Stats is the loop's own accounting, exported for the chaos harness
// and the registry.
type Stats struct {
	// Steps is the number of Step calls with a non-idle window.
	Steps uint64
	// BatchUps and BatchDowns count width ramps.
	BatchUps, BatchDowns uint64
	// ModeSwitches counts wakeup<->busy-poll transitions.
	ModeSwitches uint64
	// Clamps counts raw decisions the envelope had to pull back in —
	// benign by construction, but a spike means the inputs are being
	// steered.
	Clamps uint64
	// EnvelopeViolations counts applied decisions outside the safety
	// envelope. Always zero: the chaos suite asserts it.
	EnvelopeViolations uint64
	// MinSwitchGap is the smallest observed step distance between two
	// mode switches (^uint64(0) until a second switch happens). The
	// no-flap property is MinSwitchGap >= Guard.
	MinSwitchGap uint64
}

// State is the shared cell the data path reads: the API submodule asks
// it for the advised width, the FM pumps for their drain cap, the MM
// and the link for the wakeup mode. Writers go through the Tuner (or a
// static configuration at boot); readers are lock-free.
type State struct {
	batch    atomic.Int32
	busyPoll atomic.Bool
}

// NewState returns a state cell pinned at a static operating point
// (batch width, wakeup mode) until a Tuner takes it over.
func NewState(batch int, busyPoll bool) *State {
	s := &State{}
	if batch < 1 {
		batch = 1
	}
	s.batch.Store(int32(batch))
	s.busyPoll.Store(busyPoll)
	return s
}

// Batch returns the currently advised vector width (>= 1). Nil-safe.
func (s *State) Batch() int {
	if s == nil {
		return 1
	}
	if b := s.batch.Load(); b > 0 {
		return int(b)
	}
	return 1
}

// BusyPoll reports whether the busy-poll mode is in effect. Nil-safe.
func (s *State) BusyPoll() bool {
	return s != nil && s.busyPoll.Load()
}

// historyMax bounds the retained decision trail.
const historyMax = 1024

// Tuner runs the control loop. Step is called by a single goroutine;
// the published State is safe for concurrent readers.
type Tuner struct {
	p     Params
	state *State

	mu          sync.Mutex
	cur         Decision
	stats       Stats
	sinceSwitch uint64
	lowStreak   int
	idleStreak  int
	depthTotal  telemetry.HistSnapshot
	history     []Decision
}

// New builds a tuner publishing into the given state cell (a fresh one
// when nil) starting from the minimal operating point.
func New(p Params, state *State) *Tuner {
	p.fill()
	if state == nil {
		state = NewState(p.MinBatch, false)
	}
	t := &Tuner{p: p, state: state}
	t.cur = Decision{
		Batch: p.MinBatch,
		Mode:  ModeWakeup,
		Ring:  p.MinRing,
		Frames: p.MinRing * p.FramesPerSlot,
	}
	t.cur = t.clamp(t.cur)
	t.state.batch.Store(int32(t.cur.Batch))
	t.state.busyPoll.Store(t.cur.Mode == ModeBusyPoll)
	t.sinceSwitch = uint64(p.Guard) // allow an immediate first switch
	return t
}

// State returns the published shared cell.
func (t *Tuner) State() *State { return t.state }

// Params returns the loop parameters (after defaulting).
func (t *Tuner) Params() Params { return t.p }

// ceilPow2 rounds up to a power of two (min 1).
func ceilPow2(v uint32) uint32 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	return v + 1
}

// clamp pulls a raw decision into the safety envelope, counting every
// correction.
func (t *Tuner) clamp(d Decision) Decision {
	orig := d
	if d.Batch < t.p.MinBatch {
		d.Batch = t.p.MinBatch
	}
	if d.Batch > t.p.MaxBatch {
		d.Batch = t.p.MaxBatch
	}
	d.Batch = int(ceilPow2(uint32(d.Batch)))
	if d.Batch > t.p.MaxBatch {
		d.Batch = t.p.MaxBatch
	}
	if d.Mode != ModeWakeup && d.Mode != ModeBusyPoll {
		d.Mode = ModeWakeup
	}
	d.Ring = ceilPow2(d.Ring)
	if d.Ring < t.p.MinRing {
		d.Ring = t.p.MinRing
	}
	if d.Ring > t.p.MaxRing {
		d.Ring = t.p.MaxRing
	}
	d.Frames = d.Ring * t.p.FramesPerSlot
	if d != orig {
		t.stats.Clamps++
	}
	return d
}

// InEnvelope reports whether a decision lies inside the safety envelope
// of the tuner's parameters.
func (t *Tuner) InEnvelope(d Decision) bool {
	return d.Batch >= t.p.MinBatch && d.Batch <= t.p.MaxBatch &&
		d.Batch&(d.Batch-1) == 0 &&
		(d.Mode == ModeWakeup || d.Mode == ModeBusyPoll) &&
		d.Ring >= t.p.MinRing && d.Ring <= t.p.MaxRing &&
		d.Ring&(d.Ring-1) == 0 &&
		d.Frames == d.Ring*t.p.FramesPerSlot
}

// depthCap bounds the believed median depth: anything above it is
// treated as saturation, so absurd inputs cannot push internal state
// around faster than the envelope allows.
const depthCap = 1 << 20

// Step consumes one observation window and returns the (clamped)
// decision now in effect. An idle window (no ops, no depth samples)
// holds the knobs but decays toward the quiet operating point.
func (t *Tuner) Step(in Input) Decision {
	t.mu.Lock()
	defer t.mu.Unlock()

	idle := in.Ops == 0 && in.Depth.Count == 0
	if idle {
		// Decay: an idle system wants narrow batches and no spinning.
		// But a single quiet tick is not idleness — a paced source
		// sleeps between sub-bursts, and a heartbeat tick landing in
		// such a gap sees zero ops; under a coarse timer one intended
		// sub-millisecond sleep can swallow several consecutive
		// heartbeats. Decaying on such a run knocks the loop out of its
		// settled operating point mid-burst (narrow, fall behind, ramp
		// again: a limit cycle driven by the prober, not the load), so
		// decay waits for an idle run longer than any pacing gap.
		// Loaded quiet windows are unaffected: they carry their own
		// depth evidence and go through the banded path below.
		t.sinceSwitch++
		t.idleStreak++
		if t.idleStreak < t.p.IdleGuard {
			return t.cur
		}
		t.lowStreak++
		d := t.cur
		if t.lowStreak >= t.p.DownGuard && d.Batch > t.p.MinBatch {
			d.Batch /= 2
			t.stats.BatchDowns++
			t.lowStreak = 0
		}
		if d.Mode == ModeBusyPoll && t.sinceSwitch >= uint64(t.p.Guard) {
			d.Mode = ModeWakeup
			t.recordSwitch()
		}
		t.apply(d)
		return t.cur
	}
	t.stats.Steps++
	t.sinceSwitch++
	t.idleStreak = 0

	t.depthTotal = t.depthTotal.Merge(in.Depth)
	p50 := in.Depth.Quantile(0.5)
	if p50 > depthCap {
		p50 = depthCap
	}
	d := t.cur

	// Knob 1: vector width follows the backlog, holding inside the
	// hysteresis band (batch/2, 2*batch). Under a saturating burst the
	// standing backlog keeps the reading at or above the width and the
	// loop rides at the widest gather, which is right: with a queue to
	// drain, wide gathers fill instantly and only amortize. The signal
	// stays honest when the load thins because the data path's gather
	// flush budget caps how long a window coalesces — a trickle reads
	// as depth ~1 whatever the advised width, and the banded down path
	// pulls the width back in.
	//
	// Up-steps jump straight to the width the observed median justifies
	// (the smallest width whose band contains it) rather than doubling
	// once per window: at burst onset the queue the load builds while
	// the loop walks through intermediate widths would otherwise stand
	// for the rest of the phase — the service margin at full width
	// drains it only slowly — so the ramp transient, not the steady
	// state, is what decides the whole phase's latency. Down-steps stay
	// one notch behind DownGuard: a quiet window proves only one notch
	// of slack.
	switch {
	case p50 >= 2*uint64(d.Batch) && d.Batch < t.p.MaxBatch:
		for 2*uint64(d.Batch) <= p50 && d.Batch < t.p.MaxBatch {
			d.Batch *= 2
		}
		t.stats.BatchUps++
		t.lowStreak = 0
	case 2*p50 <= uint64(d.Batch):
		t.lowStreak++
		if t.lowStreak >= t.p.DownGuard && d.Batch > t.p.MinBatch {
			d.Batch /= 2
			t.stats.BatchDowns++
			t.lowStreak = 0
		}
	default:
		t.lowStreak = 0
	}

	// Knob 2: interrupt-vs-poll with hysteresis (PollOff < PollOn) and
	// a dwell guard so the mode cannot flap inside the guard window.
	// Leaving busy-poll additionally requires the window's gathers to
	// have run essentially scalar: busy-poll keeps the queue drained, so
	// under load the depth alone reads below PollOff exactly when the
	// mode is doing its job, and leaving on that reading parks the hot
	// path back on per-edge wakeups mid-burst. Gather occupancy
	// separates the two quiet regimes — a drained-but-hot window still
	// moves many datagrams per call, a genuine trickle moves one — and
	// unlike the width knob (where a filled gather is self-fulfilling at
	// any setting) occupancy is trustworthy here, because at trickle the
	// decayed width pins it to one.
	occScalar := in.BatchCalls == 0 || in.BatchedMsgs <= 3*in.BatchCalls
	if t.sinceSwitch >= uint64(t.p.Guard) {
		switch {
		case d.Mode == ModeWakeup && p50 >= t.p.PollOn:
			d.Mode = ModeBusyPoll
			t.recordSwitch()
		case d.Mode == ModeBusyPoll && p50 <= t.p.PollOff && occScalar:
			d.Mode = ModeWakeup
			t.recordSwitch()
		}
	}

	// Knob 3: geometry recommendation from the cumulative depth
	// percentiles (applied at reconfigure time, not live).
	p99 := t.depthTotal.Quantile(0.99)
	if p99 > depthCap {
		p99 = depthCap
	}
	want := uint64(t.p.Headroom) * p99
	if want > uint64(t.p.MaxRing) {
		want = uint64(t.p.MaxRing)
	}
	d.Ring = uint32(want)

	t.apply(d)
	return t.cur
}

// recordSwitch books one mode switch. Caller holds t.mu.
func (t *Tuner) recordSwitch() {
	t.stats.ModeSwitches++
	if t.stats.ModeSwitches > 1 && t.sinceSwitch < t.stats.MinSwitchGap {
		t.stats.MinSwitchGap = t.sinceSwitch
	}
	if t.stats.ModeSwitches == 1 {
		t.stats.MinSwitchGap = ^uint64(0)
	}
	t.sinceSwitch = 0
}

// apply clamps, publishes, and records a decision. Caller holds t.mu.
func (t *Tuner) apply(d Decision) {
	d = t.clamp(d)
	if !t.InEnvelope(d) {
		// Unreachable by construction; counted rather than trusted.
		t.stats.EnvelopeViolations++
		return
	}
	if d != t.cur {
		if len(t.history) < historyMax {
			t.history = append(t.history, d)
		}
	}
	t.cur = d
	t.state.batch.Store(int32(d.Batch))
	t.state.busyPoll.Store(d.Mode == ModeBusyPoll)
}

// Current returns the decision in effect.
func (t *Tuner) Current() Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// Stats returns a copy of the loop accounting.
func (t *Tuner) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// History returns the decision trail (bounded).
func (t *Tuner) History() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Decision(nil), t.history...)
}

// Recommend returns the geometry recommendation accumulated so far:
// ring size with headroom over the p99 observed depth, UMem frames as a
// fixed multiple. With no observations it returns the minimal envelope
// geometry.
func (t *Tuner) Recommend() Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}
