package libos

import (
	"testing"

	"rakis/internal/hostos"
	"rakis/internal/mem"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/sys"
	"rakis/internal/vtime"
)

func newProcess(t *testing.T, mode Mode) (*Process, *vtime.Counters) {
	t.Helper()
	m := vtime.Default()
	kern := hostos.NewKernel(mem.NewSpace(1<<20, 1<<22), m)
	a, b := netsim.NewPair(m, netsim.Config{Name: "a"}, netsim.Config{Name: "b"})
	ns, err := kern.AddNetNS("ns", a, netstack.IP4{10, 0, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = b
	t.Cleanup(func() { kern.Close(); b.Close() })
	ctrs := &vtime.Counters{}
	return NewProcess(kern.NewProc(ns, ctrs), mode, ctrs), ctrs
}

func TestModeStrings(t *testing.T) {
	if Native.String() != "Native" || Direct.String() != "Gramine-Direct" || SGX.String() != "Gramine-SGX" {
		t.Fatal("mode strings")
	}
}

func TestSGXStartupExits(t *testing.T) {
	_, ctrs := newProcess(t, SGX)
	if got := ctrs.EnclaveExits.Load(); got != vtime.Default().EnclaveStartupExits {
		t.Fatalf("startup exits = %d, want %d", got, vtime.Default().EnclaveStartupExits)
	}
	_, dctrs := newProcess(t, Direct)
	if dctrs.EnclaveExits.Load() != 0 {
		t.Fatal("Direct mode must not charge startup exits")
	}
}

func TestExitPerSyscallOnlyInSGX(t *testing.T) {
	run := func(mode Mode) (exits, libosCalls uint64, cycles uint64) {
		p, ctrs := newProcess(t, mode)
		th := p.NewThread()
		start := ctrs.EnclaveExits.Load()
		fd, err := th.Open("/f", sys.OCreate|sys.ORdwr)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			th.Write(fd, make([]byte, 128))
		}
		th.Close(fd)
		return ctrs.EnclaveExits.Load() - start, ctrs.LibOSCalls.Load(), th.Clock().Now()
	}
	nExits, nLibos, nCycles := run(Native)
	dExits, dLibos, dCycles := run(Direct)
	sExits, sLibos, sCycles := run(SGX)

	if nExits != 0 || nLibos != 0 {
		t.Fatalf("Native: exits=%d libos=%d, want 0/0", nExits, nLibos)
	}
	if dExits != 0 || dLibos != 12 {
		t.Fatalf("Direct: exits=%d libos=%d, want 0/12", dExits, dLibos)
	}
	if sExits != 12 || sLibos != 12 {
		t.Fatalf("SGX: exits=%d libos=%d, want 12/12", sExits, sLibos)
	}
	if !(nCycles < dCycles && dCycles < sCycles) {
		t.Fatalf("cost ordering broken: native=%d direct=%d sgx=%d", nCycles, dCycles, sCycles)
	}
	// The SGX premium must be dominated by exit costs.
	model := vtime.Default()
	if sCycles-dCycles < 12*model.EnclaveExit {
		t.Fatalf("SGX premium %d below 12 exits (%d)", sCycles-dCycles, 12*model.EnclaveExit)
	}
}

func TestFutexEmulatedInLibOS(t *testing.T) {
	pN, cN := newProcess(t, Native)
	thN := pN.NewThread()
	before := cN.Syscalls.Load()
	thN.Futex()
	if cN.Syscalls.Load() != before+1 {
		t.Fatal("Native futex must be a host syscall")
	}

	pD, cD := newProcess(t, Direct)
	thD := pD.NewThread()
	before = cD.Syscalls.Load()
	thD.Futex()
	if cD.Syscalls.Load() != before {
		t.Fatal("Direct futex must be handled inside the LibOS")
	}
}

func TestBoundaryCopiesChargedOnPayloads(t *testing.T) {
	// Writing N bytes under SGX must cost at least the exit plus the
	// boundary copy of N bytes more than under Direct.
	p, _ := newProcess(t, SGX)
	th := p.NewThread()
	fd, _ := th.Open("/f", sys.OCreate|sys.OWronly)
	small := th.Clock().Now()
	th.Write(fd, make([]byte, 1))
	smallCost := th.Clock().Now() - small
	big := th.Clock().Now()
	th.Write(fd, make([]byte, 1<<20))
	bigCost := th.Clock().Now() - big
	model := vtime.Default()
	wantExtra := vtime.Bytes(model.BoundaryCopyPerByte, 1<<20)
	if bigCost-smallCost < wantExtra {
		t.Fatalf("1MiB write extra cost %d, want >= %d (boundary copy)", bigCost-smallCost, wantExtra)
	}
}

func TestCloneSharesProcess(t *testing.T) {
	p, _ := newProcess(t, SGX)
	t1 := p.NewThread()
	t2 := t1.Clone()
	fd, err := t1.Open("/shared", sys.OCreate|sys.ORdwr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Write(fd, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The descriptor is process-wide: the sibling thread can use it.
	if _, err := t2.Pread(fd, make([]byte, 1), 0); err != nil {
		t.Fatalf("clone cannot use shared fd: %v", err)
	}
	if t1.Clock() == t2.Clock() {
		t.Fatal("threads must have distinct clocks")
	}
}
