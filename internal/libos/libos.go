// Package libos simulates a Gramine-like SGX library OS (§2.2): the
// intermediary layer that lets unmodified applications run inside an
// enclave by intercepting their syscalls.
//
// Three modes correspond to the paper's baseline environments:
//
//   - Native: syscalls go straight to the host kernel.
//   - Direct (Gramine-Direct): the LibOS intercepts and handles each
//     syscall, then calls the host — LibOS overhead but no enclave exits.
//   - SGX (Gramine-SGX): every host syscall is an OCALL — arguments are
//     copied to untrusted memory, the enclave exits (~8,200+ cycles), the
//     host performs the syscall, the enclave re-enters and copies results
//     back. Exits are counted; they are Figure 2's subject.
//
// Some syscalls are emulated entirely inside the enclave. Like Gramine,
// this LibOS handles futex wake/wait sequences without a host syscall
// when possible, which is the §6.1 observation that Gramine-Direct can
// beat Native on lock-heavy workloads.
package libos

import (
	"sync/atomic"
	"time"

	"rakis/internal/hostos"
	"rakis/internal/sys"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
)

// Mode selects the execution environment.
type Mode int

const (
	// Native runs on the host kernel directly.
	Native Mode = iota
	// Direct runs under the LibOS outside SGX (Gramine-Direct).
	Direct
	// SGX runs under the LibOS inside an enclave (Gramine-SGX).
	SGX
)

// String returns the environment name as used in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Native:
		return "Native"
	case Direct:
		return "Gramine-Direct"
	default:
		return "Gramine-SGX"
	}
}

// Process is one application instance under the LibOS.
type Process struct {
	proc     *hostos.Proc
	mode     Mode
	model    *vtime.Model
	counters *vtime.Counters
	sink     *telemetry.Sink

	// exitRes models the serial portion of SGX enclave transitions:
	// EEXIT/EENTER flush TLBs and contend on the EPC, so concurrent
	// OCALLs from many threads do not scale linearly. Single-threaded
	// exit patterns pass through unqueued (the resource's utilization
	// guard); only a multi-threaded exit storm — the Gramine-SGX
	// memcached case — saturates it.
	exitRes vtime.Resource

	// batchAdvice is the vector width AdviseBatch reports on this
	// process's threads. The Gramine/Native baselines have no tuner, so
	// this is a static process-wide hint (default 1) — it exists so
	// batching-aware workloads can ask every environment the same
	// question.
	batchAdvice atomic.Int32
}

// NewProcess boots a process in the given mode. In SGX mode the enclave
// creation and LibOS boot exits are charged immediately (the HelloWorld
// baseline of Figure 2).
func NewProcess(proc *hostos.Proc, mode Mode, counters *vtime.Counters) *Process {
	p := &Process{
		proc:     proc,
		mode:     mode,
		model:    proc.Kernel().Model,
		counters: counters,
	}
	if mode == SGX && counters != nil {
		counters.EnclaveExits.Add(p.model.EnclaveStartupExits)
	}
	return p
}

// Mode returns the process's environment mode.
func (p *Process) Mode() Mode { return p.mode }

// SetTelemetry attaches a telemetry sink: threads created afterwards get
// a span probe bound to their clock. Call before NewThread.
func (p *Process) SetTelemetry(s *telemetry.Sink) { p.sink = s }

// SetBatchAdvice pins the vector width this process's threads report
// from AdviseBatch.
func (p *Process) SetBatchAdvice(n int) {
	if n < 1 {
		n = 1
	}
	p.batchAdvice.Store(int32(n))
}

// Telemetry returns the attached sink (nil when telemetry is off).
func (p *Process) Telemetry() *telemetry.Sink { return p.sink }

// HostProc exposes the underlying host process (for environment setup).
func (p *Process) HostProc() *hostos.Proc { return p.proc }

// NewThread returns the syscall interface for one application thread.
func (p *Process) NewThread() *Thread {
	t := &Thread{p: p}
	if p.sink != nil {
		t.probe = p.sink.NewProbe(p.sink.ProbeLabel("app"), &t.clk)
	}
	return t
}

// Thread is one application thread's syscall interface.
type Thread struct {
	p     *Process
	clk   vtime.Clock
	probe *telemetry.Probe
}

var _ sys.Sys = (*Thread)(nil)

// Clock returns the thread's virtual clock.
func (t *Thread) Clock() *vtime.Clock { return &t.clk }

// Probe returns the thread's telemetry probe (nil when telemetry is
// off). RAKIS threads share it so a fallback call folds into the span
// opened at the API hook.
func (t *Thread) Probe() *telemetry.Probe { return t.probe }

// Clone creates a sibling thread (with its own probe, when attached).
func (t *Thread) Clone() sys.Sys { return t.p.NewThread() }

// AdviseBatch reports the process's static batch advice (>= 1). The
// RAKIS runtime overrides this with the live tuner width; here it only
// gives batching-aware workloads one question to ask everywhere.
func (t *Thread) AdviseBatch() int {
	if b := t.p.batchAdvice.Load(); b > 1 {
		return int(b)
	}
	return 1
}

// libosEntry charges the in-enclave syscall interception cost.
func (t *Thread) libosEntry() {
	if t.p.mode == Native {
		return
	}
	t.clk.Charge(vtime.CompAPI, t.p.model.LibOSCall)
	if t.p.counters != nil {
		t.p.counters.LibOSCalls.Add(1)
	}
}

// ocall charges one enclave exit plus the boundary copies for nbytes of
// payload crossing the trust boundary. Half of the exit cost is the
// serial hardware-transition portion, shared across the process.
func (t *Thread) ocall(nbytes int) {
	if t.p.mode != SGX {
		return
	}
	if t.p.counters != nil {
		t.p.counters.EnclaveExits.Add(1)
	}
	serial := t.p.model.EnclaveExit / 2
	t.clk.SyncAs(t.p.exitRes.Use(t.clk.Now(), serial), vtime.CompExit)
	t.clk.Charge(vtime.CompExit, t.p.model.EnclaveExit-serial)
	if nbytes > 0 {
		t.clk.Charge(vtime.CompCopy, vtime.Bytes(t.p.model.BoundaryCopyPerByte, nbytes))
	}
	t.probe.Emit(telemetry.EvEnclaveExit, t.clk.Now(), serial, uint64(nbytes))
}

// resultCopy charges the copy of n result bytes crossing back into the
// enclave after an OCALL.
func (t *Thread) resultCopy(n int) {
	if n <= 0 || t.p.mode != SGX {
		return
	}
	t.clk.Charge(vtime.CompCopy, vtime.Bytes(t.p.model.BoundaryCopyPerByte, n))
	t.probe.Emit(telemetry.EvBoundaryCopy, t.clk.Now(), uint64(n), 1)
}

// --- sockets ----------------------------------------------------------------

// Socket creates a socket.
func (t *Thread) Socket(typ sys.SockType) (int, error) {
	t.probe.Begin(telemetry.SpanSocket)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	st := hostos.SockUDP
	if typ == sys.TCP {
		st = hostos.SockTCP
	}
	return t.p.proc.Socket(st, &t.clk)
}

// Bind assigns the local port.
func (t *Thread) Bind(fd int, port uint16) error {
	t.probe.Begin(telemetry.SpanBind)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.Bind(fd, port, &t.clk)
}

// Connect connects a socket.
func (t *Thread) Connect(fd int, addr sys.Addr) error {
	t.probe.Begin(telemetry.SpanConnect)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.Connect(fd, addr, &t.clk)
}

// Listen marks a TCP socket as accepting.
func (t *Thread) Listen(fd int, backlog int) error {
	t.probe.Begin(telemetry.SpanListen)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.Listen(fd, backlog, &t.clk)
}

// Accept waits for a connection.
func (t *Thread) Accept(fd int, block bool) (int, sys.Addr, error) {
	t.probe.Begin(telemetry.SpanAccept)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.Accept(fd, &t.clk, block)
}

// SendTo transmits a datagram.
func (t *Thread) SendTo(fd int, p []byte, addr sys.Addr) (int, error) {
	t.probe.Begin(telemetry.SpanSendTo)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(len(p))
	return t.p.proc.SendTo(fd, p, addr, &t.clk)
}

// RecvFrom receives a datagram.
func (t *Thread) RecvFrom(fd int, p []byte, block bool) (int, sys.Addr, error) {
	t.probe.Begin(telemetry.SpanRecvFrom)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	n, src, err := t.p.proc.RecvFrom(fd, p, &t.clk, block)
	// Result payload crosses back into the enclave.
	t.resultCopy(n)
	return n, src, err
}

// SendToN transmits up to len(msgs) datagrams in one vectored call
// (sendmmsg): one LibOS interception and one OCALL — one enclave exit in
// SGX mode — cover the whole batch, with every payload crossing the
// boundary under that single exit. This is the batched amortization of
// the Figure 2 exit cost.
func (t *Thread) SendToN(fd int, msgs []sys.Mmsg) (int, error) {
	t.probe.Begin(telemetry.SpanSendToN)
	defer t.probe.End()
	t.libosEntry()
	total := 0
	for i := range msgs {
		total += len(msgs[i].Buf)
	}
	t.ocall(total)
	sent := 0
	var firstErr error
	for i := range msgs {
		n, err := t.p.proc.SendTo(fd, msgs[i].Buf, msgs[i].Addr, &t.clk)
		if err != nil {
			firstErr = err
			break
		}
		msgs[i].N = n
		sent++
	}
	if t.p.counters != nil {
		t.p.counters.BatchCalls.Add(1)
		t.p.counters.BatchedMsgs.Add(uint64(sent))
	}
	if sent == 0 {
		return 0, firstErr
	}
	return sent, nil
}

// RecvFromN receives up to len(msgs) datagrams in one vectored call
// (recvmmsg): one LibOS interception and one OCALL cover the batch, and
// the results cross back into the enclave in one copy. Blocking, when
// requested, applies only to the first message; the rest drain whatever
// is already queued.
func (t *Thread) RecvFromN(fd int, msgs []sys.Mmsg, block bool) (int, error) {
	t.probe.Begin(telemetry.SpanRecvFromN)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	got := 0
	total := 0
	var firstErr error
	for i := range msgs {
		n, src, err := t.p.proc.RecvFrom(fd, msgs[i].Buf, &t.clk, block && got == 0)
		if err != nil {
			firstErr = err
			break
		}
		msgs[i].N = n
		msgs[i].Addr = src
		total += n
		got++
	}
	t.resultCopy(total)
	if t.p.counters != nil {
		t.p.counters.BatchCalls.Add(1)
		t.p.counters.BatchedMsgs.Add(uint64(got))
	}
	if got == 0 {
		return 0, firstErr
	}
	return got, nil
}

// Send writes stream data.
func (t *Thread) Send(fd int, p []byte) (int, error) {
	t.probe.Begin(telemetry.SpanSend)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(len(p))
	return t.p.proc.Send(fd, p, &t.clk)
}

// Recv reads stream data.
func (t *Thread) Recv(fd int, p []byte, block bool) (int, error) {
	t.probe.Begin(telemetry.SpanRecv)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	n, err := t.p.proc.Recv(fd, p, &t.clk, block)
	t.resultCopy(n)
	return n, err
}

// --- files ------------------------------------------------------------------

// Open opens a file.
func (t *Thread) Open(path string, flags int) (int, error) {
	t.probe.Begin(telemetry.SpanOpen)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(len(path))
	return t.p.proc.Open(path, flags, &t.clk)
}

// Read reads at the cursor.
func (t *Thread) Read(fd int, p []byte) (int, error) {
	t.probe.Begin(telemetry.SpanRead)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	n, err := t.p.proc.Read(fd, p, &t.clk)
	t.resultCopy(n)
	return n, err
}

// Write writes at the cursor.
func (t *Thread) Write(fd int, p []byte) (int, error) {
	t.probe.Begin(telemetry.SpanWrite)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(len(p))
	return t.p.proc.Write(fd, p, &t.clk)
}

// Pread reads at an offset.
func (t *Thread) Pread(fd int, p []byte, off int64) (int, error) {
	t.probe.Begin(telemetry.SpanPread)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	n, err := t.p.proc.Pread(fd, p, off, &t.clk)
	t.resultCopy(n)
	return n, err
}

// Pwrite writes at an offset.
func (t *Thread) Pwrite(fd int, p []byte, off int64) (int, error) {
	t.probe.Begin(telemetry.SpanPwrite)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(len(p))
	return t.p.proc.Pwrite(fd, p, off, &t.clk)
}

// Lseek repositions the cursor. Gramine emulates lseek inside the
// enclave (the cursor is LibOS state), so no OCALL in SGX mode.
func (t *Thread) Lseek(fd int, off int64, whence int) (int64, error) {
	t.probe.Begin(telemetry.SpanLseek)
	defer t.probe.End()
	t.libosEntry()
	if t.p.mode == Native {
		return t.p.proc.Lseek(fd, off, whence, &t.clk)
	}
	// Emulated: host still consulted for the inode but without an exit
	// in this simulation's accounting.
	return t.p.proc.Lseek(fd, off, whence, &t.clk)
}

// Fstat returns the file size.
func (t *Thread) Fstat(fd int) (int64, error) {
	t.probe.Begin(telemetry.SpanFstat)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.Fstat(fd, &t.clk)
}

// Fsync flushes a file.
func (t *Thread) Fsync(fd int) error {
	t.probe.Begin(telemetry.SpanFsync)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.Fsync(fd, &t.clk)
}

// Poll multiplexes descriptors; under SGX each poll is an exit.
func (t *Thread) Poll(fds []sys.PollFD, timeout time.Duration) (int, error) {
	t.probe.Begin(telemetry.SpanPoll)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	hfds := make([]hostos.PollFD, len(fds))
	for i, f := range fds {
		hfds[i] = hostos.PollFD{FD: f.FD, Events: f.Events}
	}
	n, err := t.p.proc.Poll(hfds, timeout, &t.clk)
	for i := range fds {
		fds[i].Revents = hfds[i].Revents
	}
	return n, err
}

// EpollCreate installs a host epoll instance.
func (t *Thread) EpollCreate() (int, error) {
	t.probe.Begin(telemetry.SpanEpollCreate)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.EpollCreate(&t.clk)
}

// EpollCtl updates interest on a host epoll instance.
func (t *Thread) EpollCtl(epfd, op, fd int, events uint32) error {
	t.probe.Begin(telemetry.SpanEpollCtl)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.EpollCtl(epfd, op, fd, events, &t.clk)
}

// EpollWait reports ready descriptors; under SGX each wait is an exit.
func (t *Thread) EpollWait(epfd int, events []sys.EpollEvent, timeout time.Duration) (int, error) {
	t.probe.Begin(telemetry.SpanEpollWait)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	hev := make([]hostos.EpollEvent, len(events))
	n, err := t.p.proc.EpollWait(epfd, hev, timeout, &t.clk)
	for i := 0; i < n; i++ {
		events[i] = sys.EpollEvent{FD: hev[i].FD, Events: hev[i].Events}
	}
	return n, err
}

// Close releases a descriptor.
func (t *Thread) Close(fd int) error {
	t.probe.Begin(telemetry.SpanClose)
	defer t.probe.End()
	t.libosEntry()
	t.ocall(0)
	return t.p.proc.Close(fd, &t.clk)
}

// Futex: Native pays a host syscall; the LibOS modes handle it inside
// the enclave (§6.1's Gramine-Direct-beats-Native observation).
func (t *Thread) Futex() {
	t.probe.Begin(telemetry.SpanFutex)
	defer t.probe.End()
	if t.p.mode == Native {
		t.p.proc.Futex(&t.clk)
		return
	}
	t.libosEntry()
}
