package xsk

import (
	"errors"
	"testing"
	"testing/quick"

	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/vtime"
)

func TestDescRoundTrip(t *testing.T) {
	f := func(addr uint64, length, opts uint32) bool {
		b := make([]byte, DescBytes)
		PutDesc(b, Desc{Addr: addr, Len: length, Opts: opts})
		d := GetDesc(b)
		return d.Addr == addr && d.Len == length && d.Opts == opts
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// validSetup allocates a well-formed five-region setup.
func validSetup(t *testing.T, sp *mem.Space, ringSize, frameSize, frameCount uint32) Setup {
	t.Helper()
	alloc := func(n uint64) mem.Addr {
		a, err := sp.Alloc(mem.Untrusted, n, 64)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	return Setup{
		FD:        7,
		FillBase:  alloc(ring.TotalBytes(ringSize, FillEntryBytes)),
		RXBase:    alloc(ring.TotalBytes(ringSize, DescBytes)),
		TXBase:    alloc(ring.TotalBytes(ringSize, DescBytes)),
		ComplBase: alloc(ring.TotalBytes(ringSize, FillEntryBytes)),
		UMemBase:  alloc(uint64(frameSize) * uint64(frameCount)),
	}
}

func TestAttachValidSetup(t *testing.T) {
	sp := mem.NewSpace(1<<20, 1<<22)
	s := validSetup(t, sp, 64, 2048, 128)
	sock, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 128})
	if err != nil {
		t.Fatal(err)
	}
	if sock.FD() != 7 {
		t.Fatal("fd")
	}
	if sock.UMem.FrameCount() != 128 {
		t.Fatal("umem geometry")
	}
}

func TestAttachRejectsNegativeFD(t *testing.T) {
	// Table 2 initialization row: fd >= 0, else abort startup.
	sp := mem.NewSpace(1<<20, 1<<22)
	s := validSetup(t, sp, 64, 2048, 128)
	s.FD = -1
	if _, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 128}); !errors.Is(err, ErrSetup) {
		t.Fatalf("err = %v, want ErrSetup", err)
	}
}

func TestAttachRejectsOverlappingRegions(t *testing.T) {
	// Table 2: the five pointers must be non-overlapping — a hostile
	// setup overlapping the UMem with the RX ring would let the kernel
	// forge descriptors through packet payloads.
	sp := mem.NewSpace(1<<20, 1<<22)
	s := validSetup(t, sp, 64, 2048, 128)
	s.UMemBase = s.RXBase
	if _, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 128}); !errors.Is(err, ErrSetup) {
		t.Fatalf("err = %v, want ErrSetup", err)
	}
	// Partial overlap is also rejected.
	s = validSetup(t, sp, 64, 2048, 128)
	s.TXBase = s.ComplBase + 8
	if _, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 128}); !errors.Is(err, ErrSetup) {
		t.Fatalf("partial overlap err = %v, want ErrSetup", err)
	}
}

func TestAttachRejectsTrustedPointers(t *testing.T) {
	// Table 2: regions must live exclusively in untrusted memory — a
	// ring in enclave memory is the liburing exfiltration setup.
	sp := mem.NewSpace(1<<20, 1<<22)
	s := validSetup(t, sp, 64, 2048, 128)
	tr, err := sp.Alloc(mem.Trusted, ring.TotalBytes(64, DescBytes), 64)
	if err != nil {
		t.Fatal(err)
	}
	s.RXBase = tr
	if _, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 128}); !errors.Is(err, ErrSetup) {
		t.Fatalf("err = %v, want ErrSetup", err)
	}
}

func TestSendRejectsOversizedFrame(t *testing.T) {
	sp := mem.NewSpace(1<<20, 1<<22)
	s := validSetup(t, sp, 64, 2048, 16)
	sock, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 16})
	if err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	if err := sock.Send(make([]byte, 2049), &clk); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
}

func TestSendExhaustsFramesThenRecovers(t *testing.T) {
	sp := mem.NewSpace(1<<20, 1<<22)
	s := validSetup(t, sp, 64, 2048, 4)
	sock, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	frame := make([]byte, 512)
	for i := 0; i < 4; i++ {
		if err := sock.Send(frame, &clk); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := sock.Send(frame, &clk); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("err = %v, want ErrNoFrame", err)
	}
	// Kernel-side completion: consume xTX, produce xCompl.
	kTX, err := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.TXBase,
		Size: 64, EntrySize: DescBytes, Side: ring.Consumer})
	if err != nil {
		t.Fatal(err)
	}
	kCompl, err := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.ComplBase,
		Size: 64, EntrySize: FillEntryBytes, Side: ring.Producer})
	if err != nil {
		t.Fatal(err)
	}
	avail, _ := kTX.Available()
	for i := uint32(0); i < avail; i++ {
		slot, _ := kTX.SlotBytes(i)
		kCompl.WriteU64(i, GetDesc(slot).Addr)
	}
	kTX.Release(avail)
	kCompl.Submit(avail, 0)
	// Reap recycles the frames; sending works again.
	if n := sock.Reap(&clk); n != 4 {
		t.Fatalf("reaped %d, want 4", n)
	}
	if err := sock.Send(frame, &clk); err != nil {
		t.Fatalf("send after reap: %v", err)
	}
}

func TestRefillBoundedByRing(t *testing.T) {
	// More frames than ring slots: refill caps at ring capacity.
	sp := mem.NewSpace(1<<20, 1<<23)
	s := validSetup(t, sp, 64, 2048, 256)
	sock, err := Attach(Config{Space: sp, Setup: s, RingSize: 64, FrameSize: 2048, FrameCount: 256})
	if err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	if n := sock.Refill(&clk); n != 64 {
		t.Fatalf("refill = %d, want 64 (ring-bounded)", n)
	}
	if sock.UMem.FreeFrames() != 256-64 {
		t.Fatalf("pool = %d", sock.UMem.FreeFrames())
	}
	// A second refill with a full ring does nothing.
	if n := sock.Refill(&clk); n != 0 {
		t.Fatalf("second refill = %d, want 0", n)
	}
}

func TestRecvSkipsHostileDescriptors(t *testing.T) {
	sp := mem.NewSpace(1<<20, 1<<22)
	ctrs := &vtime.Counters{}
	// Ring smaller than the frame pool: frames 8..15 stay user-owned, so
	// a descriptor naming frame 15 is provably hostile.
	s := validSetup(t, sp, 8, 2048, 16)
	sock, err := Attach(Config{Space: sp, Setup: s, RingSize: 8, FrameSize: 2048,
		FrameCount: 16, Counters: ctrs})
	if err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	sock.Refill(&clk)

	kFill, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.FillBase,
		Size: 8, EntrySize: FillEntryBytes, Side: ring.Consumer})
	kRX, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.RXBase,
		Size: 8, EntrySize: DescBytes, Side: ring.Producer})

	// The kernel consumes two fill entries; returns one hostile desc
	// (offset it never got) and one legitimate one.
	avail, _ := kFill.Available()
	if avail < 2 {
		t.Fatal("fill not stocked")
	}
	legit, _ := kFill.ReadU64(0)
	kFill.Release(2)
	slot, _ := kRX.SlotBytes(0)
	PutDesc(slot, Desc{Addr: 15 * 2048, Len: 100}) // frame 15: never handed out
	slot, _ = kRX.SlotBytes(1)
	payload, _ := sp.Bytes(mem.RoleHost, s.UMemBase+mem.Addr(legit), 4)
	copy(payload, "good")
	PutDesc(slot, Desc{Addr: legit, Len: 4})
	kRX.Submit(2, 0)

	// Recv refuses the hostile one and yields the legitimate frame.
	got, ok := sock.Recv(&clk)
	if !ok || string(got) != "good" {
		t.Fatalf("recv = %q, %v", got, ok)
	}
	if ctrs.UMemViolations.Load() != 1 {
		t.Fatalf("violations = %d, want 1", ctrs.UMemViolations.Load())
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("invariant broken")
	}
}

// TestRecvSnapshotDefeatsDescriptorScribble pins the single-read
// discipline on the RX datapath. The enclave freezes a descriptor with
// SnapSlot, the host scribbles the live slot afterwards, and the frozen
// snapshot still decodes the fetched values while the live slot — what
// a read-it-again pattern would consult — has diverged. End to end,
// Recv then validates and uses the same frozen bytes: a descriptor
// scribbled hostile before the fetch is refused outright, never
// half-trusted.
func TestRecvSnapshotDefeatsDescriptorScribble(t *testing.T) {
	sp := mem.NewSpace(1<<20, 1<<22)
	ctrs := &vtime.Counters{}
	s := validSetup(t, sp, 8, 2048, 16)
	sock, err := Attach(Config{Space: sp, Setup: s, RingSize: 8, FrameSize: 2048,
		FrameCount: 16, Counters: ctrs})
	if err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	sock.Refill(&clk)

	kFill, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.FillBase,
		Size: 8, EntrySize: FillEntryBytes, Side: ring.Consumer})
	kRX, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.RXBase,
		Size: 8, EntrySize: DescBytes, Side: ring.Producer})

	legit, _ := kFill.ReadU64(0)
	kFill.Release(1)
	payload, _ := sp.Bytes(mem.RoleHost, s.UMemBase+mem.Addr(legit), 4)
	copy(payload, "good")
	slot, _ := kRX.SlotBytes(0)
	PutDesc(slot, Desc{Addr: legit, Len: 4})
	kRX.Submit(1, 0)

	// The enclave's single fetch freezes the descriptor.
	snap, err := sock.RX.SnapSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if d := SnapDesc(snap); d.Len != 4 || d.Addr != legit {
		t.Fatalf("snapshot desc = %+v", d)
	}

	// Host scribbles the live slot after the fetch: the length now runs
	// past the frame, a classic validate-small-use-big rewrite.
	live, err := sp.Bytes(mem.RoleHost, sock.RX.SlotAddr(0), DescBytes)
	if err != nil {
		t.Fatal(err)
	}
	PutDesc(live, Desc{Addr: legit, Len: 5000})

	// The frozen snapshot is unchanged; the live slot is not. The old
	// pattern decoded the live view, so what validation certified and
	// what a later read trusted could differ — exactly this divergence.
	if d := SnapDesc(snap); d.Len != 4 {
		t.Fatalf("snapshot changed under scribble: %+v", d)
	}
	enclaveLive, _ := sp.Bytes(mem.RoleEnclave, sock.RX.SlotAddr(0), DescBytes)
	if d := GetDesc(enclaveLive); d.Len != 5000 {
		t.Fatalf("live desc = %+v, want scribbled Len 5000", d)
	}

	// Recv fetches once and validates what it fetched: the scribbled
	// descriptor is seen whole, refused whole, and never half-used.
	if got, ok := sock.Recv(&clk); ok {
		t.Fatalf("recv accepted scribbled descriptor: %q", got)
	}
	if ctrs.UMemViolations.Load() != 1 {
		t.Fatalf("violations = %d, want 1", ctrs.UMemViolations.Load())
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("invariant broken")
	}
}
