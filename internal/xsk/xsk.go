// Package xsk implements the FastPath Module side of an XDP socket (§4.1,
// "Enabling the XDP primitive").
//
// An XSK comprises four RAKIS-certified rings and a UMem packet buffer,
// all in shared untrusted memory (Table 1):
//
//	xFill  (FM produces)  — supply the kernel with frames for RX packets
//	xRX    (FM consumes)  — frames populated with received packets
//	xTX    (FM produces)  — frames to transmit
//	xCompl (FM consumes)  — frames whose transmission completed
//
// Initialization runs outside the enclave (internal/hostos performs the
// setup "syscalls"); the FM receives five pointers plus a file descriptor
// and — before touching anything — verifies that the pointers are
// pairwise non-overlapping and reside exclusively in untrusted memory,
// and that the descriptor is non-negative (Table 2, initialization rows).
//
// In Go, enclave-trusted memory is ordinary heap memory; the simulated
// mem.Space segments exist so these placement checks are real and so the
// host kernel can only touch the shared segment.
//
//rakis:role enclave
package xsk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/telemetry"
	"rakis/internal/umem"
	"rakis/internal/vtime"
)

// DescBytes is the size of an xRX/xTX descriptor (addr, len, options).
const DescBytes = 16

// FillEntryBytes is the size of an xFill/xCompl entry (a UMem offset).
const FillEntryBytes = 8

// Desc is an XDP descriptor: a UMem offset plus the packet length.
type Desc struct {
	Addr uint64
	Len  uint32
	Opts uint32
}

// PutDesc encodes a descriptor into a 16-byte slot.
func PutDesc(b []byte, d Desc) {
	for i := 0; i < 8; i++ {
		b[i] = byte(d.Addr >> (8 * i))
	}
	b[8], b[9], b[10], b[11] = byte(d.Len), byte(d.Len>>8), byte(d.Len>>16), byte(d.Len>>24)
	b[12], b[13], b[14], b[15] = byte(d.Opts), byte(d.Opts>>8), byte(d.Opts>>16), byte(d.Opts>>24)
}

// GetDesc decodes a descriptor from a 16-byte slot. Slots live in
// shared memory, so the decoded offset and length are host-controlled
// until they pass UMem.ValidateConsumed.
//
//rakis:untrusted
func GetDesc(b []byte) Desc {
	var d Desc
	for i := 7; i >= 0; i-- {
		d.Addr = d.Addr<<8 | uint64(b[i])
	}
	d.Len = uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24
	d.Opts = uint32(b[12]) | uint32(b[13])<<8 | uint32(b[14])<<16 | uint32(b[15])<<24
	return d
}

// SnapDesc decodes a descriptor from a frozen 16-byte slot snapshot.
// Unlike GetDesc over a live slot alias, the fields cannot change after
// decoding — the enclave validates and uses the very bytes it fetched.
// The decoded offset and length are still host-chosen and remain
// unvalidated until UMem.ValidateConsumed passes them.
//
//rakis:untrusted
//rakis:snapshot
func SnapDesc(s mem.Snap) Desc { return GetDesc(s) }

// Setup is what the untrusted initialization hands the enclave: five
// pointers and a file descriptor.
type Setup struct {
	FD        int
	FillBase  mem.Addr
	RXBase    mem.Addr
	TXBase    mem.Addr
	ComplBase mem.Addr
	UMemBase  mem.Addr
}

// Config is the FM's trusted configuration for one XSK.
type Config struct {
	Space *mem.Space
	Setup Setup
	// RingSize is the trusted entry count for all four rings (the 2K of
	// §6.1); the masks are derived from it in-enclave.
	RingSize uint32
	// FrameSize and FrameCount are the trusted UMem geometry (16 MB of
	// 2048-byte frames in §6.1).
	FrameSize  uint32
	FrameCount uint32
	Counters   *vtime.Counters
	Model      *vtime.Model
	// Trace, when non-nil, receives ring/copy/refusal events for this
	// socket (shared by the pump thread and user send threads).
	Trace *telemetry.Buf
}

// Errors returned by Attach and socket operations.
var (
	// ErrSetup reports failed Table 2 initialization validation.
	ErrSetup = errors.New("xsk: untrusted setup rejected")
	// ErrNoFrame reports UMem exhaustion on the send path.
	ErrNoFrame = errors.New("xsk: no free UMem frame")
	// ErrTooBig reports a frame exceeding the UMem frame size.
	ErrTooBig = errors.New("xsk: frame exceeds UMem frame size")
	// ErrRingFull reports a full TX or fill ring.
	ErrRingFull = errors.New("xsk: ring full")
)

// Socket is the FM's trusted handle on one XSK.
//
// The RX pump thread and user send threads share the socket (§4.2: user
// threads copy straight into the XSK UMem for transmission), so its
// operations serialize on an internal lock protecting the UMem allocator
// and the single-producer/single-consumer ring disciplines.
type Socket struct {
	Fill  *ring.Ring
	RX    *ring.Ring
	TX    *ring.Ring
	Compl *ring.Ring
	UMem  *umem.UMem

	mu       sync.Mutex
	fd       int
	space    *mem.Space
	model    *vtime.Model
	counters *vtime.Counters
	trace    *telemetry.Buf

	// descRefusals counts RX descriptors this socket refused (failed
	// slot snapshot or UMem validation) — the descriptor-level half of
	// Refusals().
	descRefusals atomic.Uint64
}

// Attach validates the untrusted setup and constructs the trusted handle.
func Attach(cfg Config) (*Socket, error) {
	if cfg.Model == nil {
		cfg.Model = vtime.Default()
	}
	if cfg.Setup.FD < 0 {
		return nil, fmt.Errorf("%w: fd %d", ErrSetup, cfg.Setup.FD)
	}
	umemBytes := uint64(cfg.FrameSize) * uint64(cfg.FrameCount)
	regions := []struct {
		name string
		base mem.Addr
		size uint64
	}{
		{"xFill", cfg.Setup.FillBase, ring.TotalBytes(cfg.RingSize, FillEntryBytes)},
		{"xRX", cfg.Setup.RXBase, ring.TotalBytes(cfg.RingSize, DescBytes)},
		{"xTX", cfg.Setup.TXBase, ring.TotalBytes(cfg.RingSize, DescBytes)},
		{"xCompl", cfg.Setup.ComplBase, ring.TotalBytes(cfg.RingSize, FillEntryBytes)},
		{"UMem", cfg.Setup.UMemBase, umemBytes},
	}
	for i, r := range regions {
		if !cfg.Space.InUntrusted(r.base, r.size) {
			return nil, fmt.Errorf("%w: %s not exclusively in untrusted memory", ErrSetup, r.name)
		}
		for _, q := range regions[:i] {
			if mem.Overlaps(r.base, r.size, q.base, q.size) {
				return nil, fmt.Errorf("%w: %s overlaps %s", ErrSetup, r.name, q.name)
			}
		}
	}

	mk := func(base mem.Addr, entry uint32, side ring.Side) (*ring.Ring, error) {
		return ring.New(ring.Config{
			Space: cfg.Space, Access: mem.RoleEnclave, Base: base,
			Size: cfg.RingSize, EntrySize: entry, Side: side,
			Certified: true, Counters: cfg.Counters,
		})
	}
	s := &Socket{fd: cfg.Setup.FD, space: cfg.Space, model: cfg.Model, counters: cfg.Counters, trace: cfg.Trace}
	var err error
	if s.Fill, err = mk(cfg.Setup.FillBase, FillEntryBytes, ring.Producer); err != nil {
		return nil, err
	}
	if s.RX, err = mk(cfg.Setup.RXBase, DescBytes, ring.Consumer); err != nil {
		return nil, err
	}
	if s.TX, err = mk(cfg.Setup.TXBase, DescBytes, ring.Producer); err != nil {
		return nil, err
	}
	if s.Compl, err = mk(cfg.Setup.ComplBase, FillEntryBytes, ring.Consumer); err != nil {
		return nil, err
	}
	s.UMem, err = umem.New(umem.Config{
		Space: cfg.Space, Base: cfg.Setup.UMemBase,
		FrameSize: cfg.FrameSize, FrameCount: cfg.FrameCount,
		Counters: cfg.Counters, Trace: cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FD returns the socket's file descriptor (used by the Monitor Module).
func (s *Socket) FD() int { return s.fd }

// Counters returns the socket's statistics sink (may be nil).
func (s *Socket) Counters() *vtime.Counters { return s.counters }

// Refusals returns this socket's lifetime refusal count: RX descriptors
// refused (failed slot snapshot or UMem validation) plus certification
// violations detected on its four rings. Per-socket, so a sharded
// runtime can attribute host misbehavior to the queue it targeted.
func (s *Socket) Refusals() uint64 {
	return s.descRefusals.Load() +
		s.Fill.Violations() + s.RX.Violations() +
		s.TX.Violations() + s.Compl.Violations()
}

// TxPending reports whether xTX holds entries the kernel has not yet
// consumed. Sustained pending entries mean the sendto wakeup was lost —
// the pump thread uses this to drive the nudge/kick recovery ladder.
func (s *Socket) TxPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	free, _ := s.TX.Free()
	return free < s.TX.Size()
}

// RxQueued reports how many RX descriptors are waiting, via the same
// certified index read the receive path uses (a hostile index reads as
// zero). This is the trusted queue-depth sample the FM pump feeds the
// tuner's occupancy histograms.
func (s *Socket) RxQueued() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	avail, _ := s.RX.Available()
	return avail
}

// Refill produces as many free UMem frames into xFill as fit, keeping the
// kernel supplied with RX buffers (§4.1 "Quality of service assurance").
// It returns the number produced.
func (s *Socket) Refill(clk *vtime.Clock) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refillLocked(clk)
}

func (s *Socket) refillLocked(clk *vtime.Clock) int {
	free, _ := s.Fill.Free()
	n := 0
	for ; uint32(n) < free; n++ {
		idx, err := s.UMem.Alloc(umem.OwnerFill)
		if err != nil {
			break
		}
		s.Fill.WriteU64(uint32(n), s.UMem.FrameOffset(idx))
	}
	if n > 0 {
		clk.Charge(vtime.CompRing, s.model.RingOp)
		clk.Charge(vtime.CompValidate, uint64(n)*s.model.UMemOp)
		s.Fill.Submit(uint32(n), clk.Now())
		s.trace.Emit(telemetry.EvRingProduce, clk.Now(), telemetry.RingXskFill, uint64(n))
	}
	return n
}

// Recv consumes one packet from xRX, validating the descriptor against
// the UMem ownership map and copying the payload into trusted memory.
// It returns (nil, false) when the ring is empty. Hostile descriptors are
// refused and skipped ("refuse and advance consumer").
func (s *Socket) Recv(clk *vtime.Clock) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		avail, _ := s.RX.Available()
		if avail == 0 {
			return nil, false
		}
		clk.Sync(s.RX.SlotStamp(0))
		clk.Charge(vtime.CompRing, s.model.RingOp)
		clk.Charge(vtime.CompValidate, s.model.UMemOp)
		// Single fetch: the descriptor is frozen into trusted storage
		// before validation, so the length the copy below trusts is the
		// length ValidateConsumed certified — a host scribbling the live
		// slot between the two changes nothing.
		snap, err := s.RX.SnapSlot(0)
		if err != nil {
			s.descRefusals.Add(1)
			s.trace.Emit(telemetry.EvRingRefusal, clk.Now(), telemetry.RingXskRX, 1)
			s.RX.Release(1)
			continue
		}
		d := SnapDesc(snap)
		if _, err := s.UMem.ValidateConsumed(umem.OwnerFill, d.Addr, d.Len); err != nil {
			// Table 2 fail action: refuse the frame, advance the consumer.
			// (UMem emits the EvUMemRefusal with the hostile addr/len.)
			s.RX.Release(1)
			continue
		}
		src, err := s.UMem.FrameBytes(d.Addr, d.Len)
		if err != nil {
			s.RX.Release(1)
			continue
		}
		payload := make([]byte, d.Len)
		copy(payload, src)
		clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, int(d.Len)))
		s.RX.Release(1)
		s.trace.Emit(telemetry.EvRingConsume, clk.Now(), telemetry.RingXskRX, 1)
		s.trace.Emit(telemetry.EvBoundaryCopy, clk.Now(), uint64(d.Len), 1)
		if s.counters != nil {
			s.counters.PacketsRx.Add(1)
			s.counters.BytesRx.Add(uint64(d.Len))
		}
		return payload, true
	}
}

// Send copies one frame from trusted memory into a fresh UMem frame and
// produces it on xTX. The Monitor Module notices the producer advance and
// issues the sendto wakeup.
func (s *Socket) Send(frame []byte, clk *vtime.Clock) error {
	if uint32(len(frame)) > s.UMem.FrameSize() {
		return ErrTooBig
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(clk) // opportunistically reclaim completed TX frames
	free, _ := s.TX.Free()
	if free == 0 {
		return ErrRingFull
	}
	idx, err := s.UMem.Alloc(umem.OwnerTx)
	if err != nil {
		return ErrNoFrame
	}
	off := s.UMem.FrameOffset(idx)
	dst, err := s.UMem.FrameBytes(off, uint32(len(frame)))
	if err != nil {
		return err
	}
	copy(dst, frame)
	clk.Charge(vtime.CompRing, s.model.RingOp)
	clk.Charge(vtime.CompValidate, s.model.UMemOp)
	clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, len(frame)))
	slot, err := s.TX.SlotBytes(0)
	if err != nil {
		return err
	}
	PutDesc(slot, Desc{Addr: off, Len: uint32(len(frame))})
	s.TX.Submit(1, clk.Now())
	s.trace.Emit(telemetry.EvBoundaryCopy, clk.Now(), uint64(len(frame)), 0)
	s.trace.Emit(telemetry.EvRingProduce, clk.Now(), telemetry.RingXskTX, 1)
	if s.counters != nil {
		s.counters.PacketsTx.Add(1)
		s.counters.BytesTx.Add(uint64(len(frame)))
	}
	return nil
}

// RecvView consumes one packet from xRX as a certified zero-copy view:
// the descriptor is frozen (SnapSlot/SnapDesc single-fetch discipline),
// validated against the UMem ownership map, and the frame is handed to
// the caller in place — no boundary copy. The frame stays owned by the
// view (umem.OwnerView) until the consumer calls View.Release or splices
// it onto TX; until then the bytes remain host-writable shared memory,
// so every header decision downstream must go through View.Snap.
// It returns (zero View, false) when the ring is empty.
func (s *Socket) RecvView(clk *vtime.Clock) (mem.View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		avail, _ := s.RX.Available()
		if avail == 0 {
			return mem.View{}, false
		}
		clk.Sync(s.RX.SlotStamp(0))
		clk.Charge(vtime.CompRing, s.model.RingOp)
		clk.Charge(vtime.CompValidate, s.model.UMemOp)
		// Single fetch: freeze the descriptor, validate the frozen
		// fields, mint the view over the frozen fields. The host can
		// still scribble the payload — that is the view's contract —
		// but the certified bounds cannot move.
		snap, err := s.RX.SnapSlot(0)
		if err != nil {
			s.descRefusals.Add(1)
			s.trace.Emit(telemetry.EvRingRefusal, clk.Now(), telemetry.RingXskRX, 1)
			s.RX.Release(1)
			continue
		}
		d := SnapDesc(snap)
		idx, gen, err := s.UMem.ValidateView(d.Addr, d.Len)
		if err != nil {
			// Table 2 fail action: refuse the frame, advance the consumer.
			s.RX.Release(1)
			continue
		}
		v, err := s.UMem.MakeView(idx, gen, d.Addr, d.Len, s)
		if err != nil {
			s.UMem.ReleaseView(idx, gen)
			s.RX.Release(1)
			continue
		}
		s.RX.Release(1)
		s.trace.Emit(telemetry.EvRingConsume, clk.Now(), telemetry.RingXskRX, 1)
		if s.counters != nil {
			s.counters.PacketsRx.Add(1)
			s.counters.BytesRx.Add(uint64(d.Len))
			s.counters.CopyBytesSaved.Add(uint64(d.Len))
		}
		return v, true
	}
}

// RecvViews consumes up to max packets from xRX as certified zero-copy
// views: the batched analogue of RecvView, with RecvBatch's ring
// discipline (one lock, one available read, per-entry freeze+validate,
// one consumer advance) but no boundary copies. Refused entries are
// skipped; nil means the ring is empty.
func (s *Socket) RecvViews(clk *vtime.Clock, max int) []mem.View {
	if max <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	avail, _ := s.RX.Available()
	if avail == 0 {
		return nil
	}
	n := avail
	if uint32(max) < n {
		n = uint32(max)
	}
	clk.Charge(vtime.CompRing, s.model.RingOp)
	clk.Charge(vtime.CompValidate, uint64(n)*s.model.UMemOp)
	var out []mem.View
	totalBytes := 0
	for i := uint32(0); i < n; i++ {
		clk.Sync(s.RX.SlotStamp(i))
		// Single fetch per descriptor, as in RecvView.
		snap, err := s.RX.SnapSlot(i)
		if err != nil {
			s.descRefusals.Add(1)
			s.trace.Emit(telemetry.EvRingRefusal, clk.Now(), telemetry.RingXskRX, 1)
			continue
		}
		d := SnapDesc(snap)
		idx, gen, err := s.UMem.ValidateView(d.Addr, d.Len)
		if err != nil {
			continue
		}
		v, err := s.UMem.MakeView(idx, gen, d.Addr, d.Len, s)
		if err != nil {
			s.UMem.ReleaseView(idx, gen)
			continue
		}
		out = append(out, v)
		totalBytes += int(d.Len)
	}
	s.RX.Release(n)
	s.trace.Emit(telemetry.EvRingConsume, clk.Now(), telemetry.RingXskRX, uint64(n))
	if s.counters != nil {
		if len(out) > 0 {
			s.counters.PacketsRx.Add(uint64(len(out)))
			s.counters.BytesRx.Add(uint64(totalBytes))
			s.counters.CopyBytesSaved.Add(uint64(totalBytes))
		}
		s.counters.BatchCalls.Add(1)
		s.counters.BatchedMsgs.Add(uint64(len(out)))
	}
	return out
}

// ReleaseView returns a view-held frame to the UMem user pool. It is the
// mem.ViewOwner implementation the socket hands to MakeView: releases
// route through the socket lock because the allocator's trusted state is
// guarded by it.
func (s *Socket) ReleaseView(idx, gen uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.UMem.ReleaseView(idx, gen)
}

// SpliceFrame re-certifies a view-held RX frame for transmission and
// produces it on xTX without any payload copy: ownership moves
// OwnerView→OwnerTx under the validator, the view's generation is burned
// so no stale read can race the kernel, and the frame's own descriptor
// (offset unchanged, length n) is queued. The completion path reclaims
// the frame exactly like a copied send.
func (s *Socket) SpliceFrame(v *mem.View, n uint32, clk *vtime.Clock) error {
	if n > s.UMem.FrameSize() {
		return ErrTooBig
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(clk) // opportunistically reclaim completed TX frames
	free, _ := s.TX.Free()
	if free == 0 {
		return ErrRingFull
	}
	if err := s.UMem.SpliceTX(v.Frame(), v.Gen()); err != nil {
		return err
	}
	clk.Charge(vtime.CompRing, s.model.RingOp)
	clk.Charge(vtime.CompValidate, s.model.UMemOp)
	slot, err := s.TX.SlotBytes(0)
	if err != nil {
		return err
	}
	PutDesc(slot, Desc{Addr: v.Offset(), Len: n})
	s.TX.Submit(1, clk.Now())
	s.trace.Emit(telemetry.EvSpliceFrame, clk.Now(), v.Offset(), uint64(n))
	s.trace.Emit(telemetry.EvRingProduce, clk.Now(), telemetry.RingXskTX, 1)
	if s.counters != nil {
		s.counters.PacketsTx.Add(1)
		s.counters.BytesTx.Add(uint64(n))
		s.counters.SpliceFrames.Add(1)
		s.counters.CopyBytesSaved.Add(uint64(n))
	}
	return nil
}

// SendBatch copies up to len(frames) frames into fresh UMem frames and
// produces them on xTX as one run: one lock acquisition, one certified
// read of the ring's free space, one producer-index publish. The Monitor
// Module sees a single producer advance, so the whole batch costs at
// most one sendto wakeup. Per-frame UMem validation and copy accounting
// are unchanged from Send.
//
// Semantics follow sendmmsg: frames are sent in order, and the count of
// frames actually produced is returned. An error is reported only when
// the first frame cannot be sent; a short batch is success.
func (s *Socket) SendBatch(frames [][]byte, clk *vtime.Clock) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(clk) // opportunistically reclaim completed TX frames
	free, _ := s.TX.Free()
	if free == 0 {
		return 0, ErrRingFull
	}
	n := 0
	totalBytes := 0
	var firstErr error
	for _, frame := range frames {
		if uint32(n) == free {
			break
		}
		if uint32(len(frame)) > s.UMem.FrameSize() {
			firstErr = ErrTooBig
			break
		}
		idx, err := s.UMem.Alloc(umem.OwnerTx)
		if err != nil {
			firstErr = ErrNoFrame
			break
		}
		off := s.UMem.FrameOffset(idx)
		dst, err := s.UMem.FrameBytes(off, uint32(len(frame)))
		if err != nil {
			firstErr = err
			break
		}
		copy(dst, frame)
		slot, err := s.TX.SlotBytes(uint32(n))
		if err != nil {
			firstErr = err
			break
		}
		PutDesc(slot, Desc{Addr: off, Len: uint32(len(frame))})
		n++
		totalBytes += len(frame)
	}
	if n == 0 {
		return 0, firstErr
	}
	clk.Charge(vtime.CompRing, s.model.RingOp)
	clk.Charge(vtime.CompValidate, uint64(n)*s.model.UMemOp)
	clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, totalBytes))
	s.TX.Submit(uint32(n), clk.Now())
	s.trace.Emit(telemetry.EvBoundaryCopy, clk.Now(), uint64(totalBytes), 0)
	s.trace.Emit(telemetry.EvRingProduce, clk.Now(), telemetry.RingXskTX, uint64(n))
	if s.counters != nil {
		s.counters.PacketsTx.Add(uint64(n))
		s.counters.BytesTx.Add(uint64(totalBytes))
		s.counters.BatchCalls.Add(1)
		s.counters.BatchedMsgs.Add(uint64(n))
	}
	return n, nil
}

// RecvBatch consumes up to max packets from xRX as one run: one lock
// acquisition, one certified read of the available count, then per-entry
// descriptor validation against the UMem ownership map (hostile entries
// are refused and skipped exactly as in Recv), and finally one consumer
// advance covering the whole run. It returns the validated payloads in
// ring order — possibly fewer than the entries consumed when some were
// refused, and nil when the ring is empty.
func (s *Socket) RecvBatch(clk *vtime.Clock, max int) [][]byte {
	if max <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	avail, _ := s.RX.Available()
	if avail == 0 {
		return nil
	}
	n := avail
	if uint32(max) < n {
		n = uint32(max)
	}
	clk.Charge(vtime.CompRing, s.model.RingOp)
	clk.Charge(vtime.CompValidate, uint64(n)*s.model.UMemOp)
	var out [][]byte
	totalBytes := 0
	for i := uint32(0); i < n; i++ {
		clk.Sync(s.RX.SlotStamp(i))
		// Single fetch per descriptor, as in Recv: freeze, validate the
		// frozen fields, use the frozen fields.
		snap, err := s.RX.SnapSlot(i)
		if err != nil {
			s.descRefusals.Add(1)
			s.trace.Emit(telemetry.EvRingRefusal, clk.Now(), telemetry.RingXskRX, 1)
			continue
		}
		d := SnapDesc(snap)
		if _, err := s.UMem.ValidateConsumed(umem.OwnerFill, d.Addr, d.Len); err != nil {
			// Table 2 fail action: refuse the frame, advance past it.
			continue
		}
		src, err := s.UMem.FrameBytes(d.Addr, d.Len)
		if err != nil {
			continue
		}
		payload := make([]byte, d.Len)
		copy(payload, src)
		out = append(out, payload)
		totalBytes += int(d.Len)
	}
	s.RX.Release(n)
	s.trace.Emit(telemetry.EvRingConsume, clk.Now(), telemetry.RingXskRX, uint64(n))
	if totalBytes > 0 {
		clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, totalBytes))
		s.trace.Emit(telemetry.EvBoundaryCopy, clk.Now(), uint64(totalBytes), 1)
	}
	if s.counters != nil {
		if len(out) > 0 {
			s.counters.PacketsRx.Add(uint64(len(out)))
			s.counters.BytesRx.Add(uint64(totalBytes))
		}
		s.counters.BatchCalls.Add(1)
		s.counters.BatchedMsgs.Add(uint64(len(out)))
	}
	return out
}

// Reap consumes xCompl, validating ownership and returning frames to the
// pool. It returns the number reclaimed.
func (s *Socket) Reap(clk *vtime.Clock) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reapLocked(clk)
}

func (s *Socket) reapLocked(clk *vtime.Clock) int {
	n := 0
	for {
		avail, _ := s.Compl.Available()
		if avail == 0 {
			break
		}
		off, err := s.Compl.ReadU64(0)
		if err != nil {
			s.Compl.Release(1)
			continue
		}
		if _, err := s.UMem.ValidateConsumed(umem.OwnerTx, off, 0); err != nil {
			s.Compl.Release(1)
			continue
		}
		s.Compl.Release(1)
		n++
	}
	if n > 0 {
		clk.Charge(vtime.CompRing, s.model.RingOp)
		clk.Charge(vtime.CompValidate, uint64(n)*s.model.UMemOp)
		s.trace.Emit(telemetry.EvRingConsume, clk.Now(), telemetry.RingXskCompl, uint64(n))
	}
	return n
}
