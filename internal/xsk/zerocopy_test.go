package xsk

import (
	"errors"
	"testing"

	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/vtime"
)

// Adversarial coverage for the certified zero-copy RX primitives:
// RecvView must inherit every refusal Recv already had, pin its
// descriptor decisions to one frozen fetch, and SpliceFrame must move a
// frame RX→TX with the view's generation burned so nothing stale can
// race the kernel.

// zcSetup attaches a socket over an 8-slot ring and 16-frame UMem with
// kernel-side fill/RX rings ready, and delivers one legitimate packet
// descriptor pointing at frame bytes `payload`.
func zcSetup(t *testing.T) (*mem.Space, *Socket, *vtime.Counters, *ring.Ring, *ring.Ring, uint64) {
	t.Helper()
	sp := mem.NewSpace(1<<20, 1<<22)
	ctrs := &vtime.Counters{}
	s := validSetup(t, sp, 8, 2048, 16)
	sock, err := Attach(Config{Space: sp, Setup: s, RingSize: 8, FrameSize: 2048,
		FrameCount: 16, Counters: ctrs})
	if err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	sock.Refill(&clk)
	kFill, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.FillBase,
		Size: 8, EntrySize: FillEntryBytes, Side: ring.Consumer})
	kRX, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: s.RXBase,
		Size: 8, EntrySize: DescBytes, Side: ring.Producer})
	legit, _ := kFill.ReadU64(0)
	kFill.Release(1)
	return sp, sock, ctrs, kFill, kRX, legit
}

// TestRecvViewPinsDescriptorSnapshot is the RecvView edition of the
// descriptor-scribble regression: the host rewrites the live RX slot
// after producing it, and RecvView — which fetches the slot exactly once
// and validates the frozen bytes — sees the scribbled descriptor whole
// and refuses it whole. The negative control shows the live slot really
// did diverge from the originally produced descriptor, so a re-reading
// consumer would have certified Len 4 and then consumed Len 5000.
func TestRecvViewPinsDescriptorSnapshot(t *testing.T) {
	sp, sock, ctrs, _, kRX, legit := zcSetup(t)
	var clk vtime.Clock
	payload, _ := sp.Bytes(mem.RoleHost, sock.UMem.Base()+mem.Addr(legit), 4)
	copy(payload, "good")
	slot, _ := kRX.SlotBytes(0)
	PutDesc(slot, Desc{Addr: legit, Len: 4})
	kRX.Submit(1, 0)

	// The descriptor as produced.
	frozen, err := sock.RX.SnapSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	// Host scribbles the live slot: validate-small-use-big.
	live, _ := sp.Bytes(mem.RoleHost, sock.RX.SlotAddr(0), DescBytes)
	PutDesc(live, Desc{Addr: legit, Len: 5000})

	// Negative control: the live slot and the earlier fetch now
	// disagree — the double-fetch hazard is real in this schedule.
	enclaveLive, _ := sp.Bytes(mem.RoleEnclave, sock.RX.SlotAddr(0), DescBytes)
	if SnapDesc(frozen).Len != 4 || GetDesc(enclaveLive).Len != 5000 {
		t.Fatalf("scribble not in place: frozen=%d live=%d",
			SnapDesc(frozen).Len, GetDesc(enclaveLive).Len)
	}

	// RecvView fetches once, sees Len 5000 whole, refuses whole: no
	// view is minted and the frame never leaves the fill ring's custody.
	if v, ok := sock.RecvView(&clk); ok {
		t.Fatalf("RecvView accepted scribbled descriptor: %+v", v)
	}
	if ctrs.UMemViolations.Load() != 1 {
		t.Fatalf("violations = %d, want 1", ctrs.UMemViolations.Load())
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("invariant broken")
	}
}

// TestRecvViewRefusesHostileDescriptor mirrors Recv's hostile-descriptor
// refusal on the view path: a descriptor naming a frame the kernel never
// received is refused, and the adjacent legitimate frame is delivered as
// a certified view with in-place bytes.
func TestRecvViewRefusesHostileDescriptor(t *testing.T) {
	sp, sock, ctrs, kFill, kRX, legit := zcSetup(t)
	var clk vtime.Clock
	kFill.Release(1) // kernel consumes a second fill entry

	slot, _ := kRX.SlotBytes(0)
	PutDesc(slot, Desc{Addr: 15 * 2048, Len: 100}) // frame 15: never handed out
	payload, _ := sp.Bytes(mem.RoleHost, sock.UMem.Base()+mem.Addr(legit), 4)
	copy(payload, "good")
	slot, _ = kRX.SlotBytes(1)
	PutDesc(slot, Desc{Addr: legit, Len: 4})
	kRX.Submit(2, 0)

	v, ok := sock.RecvView(&clk)
	if !ok {
		t.Fatal("legitimate frame not delivered")
	}
	if v.Offset() != legit || v.Len() != 4 {
		t.Fatalf("view bounds = (%d, %d), want (%d, 4)", v.Offset(), v.Len(), legit)
	}
	snap, err := v.Snap(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "good" {
		t.Fatalf("view bytes = %q", snap)
	}
	if ctrs.UMemViolations.Load() != 1 {
		t.Fatalf("violations = %d, want 1", ctrs.UMemViolations.Load())
	}
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("invariant broken")
	}
}

// TestSpliceFrameRequeuesWithoutCopy drives the full splice lifecycle:
// RX frame arrives as a view, SpliceFrame queues the frame's own offset
// on xTX (no payload copy anywhere), the view's generation is burned so
// every later access through it fails stale, and the kernel's completion
// recycles the frame back to the pool via Reap.
func TestSpliceFrameRequeuesWithoutCopy(t *testing.T) {
	sp, sock, ctrs, _, kRX, legit := zcSetup(t)
	var clk vtime.Clock
	payload, _ := sp.Bytes(mem.RoleHost, sock.UMem.Base()+mem.Addr(legit), 8)
	copy(payload, "splice!!")
	slot, _ := kRX.SlotBytes(0)
	PutDesc(slot, Desc{Addr: legit, Len: 8})
	kRX.Submit(1, 0)

	v, ok := sock.RecvView(&clk)
	if !ok {
		t.Fatal("no view")
	}
	savedBefore := ctrs.CopyBytesSaved.Load()
	if err := sock.SpliceFrame(&v, 8, &clk); err != nil {
		t.Fatal(err)
	}

	// The TX descriptor names the RX frame itself: same offset, no copy.
	kTX, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: sock.TX.Base(),
		Size: 8, EntrySize: DescBytes, Side: ring.Consumer})
	avail, _ := kTX.Available()
	if avail != 1 {
		t.Fatalf("tx avail = %d", avail)
	}
	txSlot, _ := kTX.SlotBytes(0)
	d := GetDesc(txSlot)
	if d.Addr != legit || d.Len != 8 {
		t.Fatalf("tx desc = %+v, want Addr %d Len 8", d, legit)
	}
	txPayload, _ := sp.Bytes(mem.RoleHost, sock.UMem.Base()+mem.Addr(d.Addr), 8)
	if string(txPayload) != "splice!!" {
		t.Fatalf("tx payload = %q", txPayload)
	}
	if ctrs.SpliceFrames.Load() != 1 {
		t.Fatalf("splice frames = %d", ctrs.SpliceFrames.Load())
	}
	if saved := ctrs.CopyBytesSaved.Load() - savedBefore; saved != 8 {
		t.Fatalf("copy bytes saved by splice = %d, want 8", saved)
	}

	// The view is dead: its generation was burned at the splice, so a
	// stale consumer cannot race the kernel's transmit DMA.
	if v.Live() {
		t.Fatal("view still live after splice")
	}
	if _, err := v.Snap(0, 8); !errors.Is(err, mem.ErrStaleView) {
		t.Fatalf("snap after splice: %v, want ErrStaleView", err)
	}
	if err := v.Release(); !errors.Is(err, mem.ErrStaleView) {
		t.Fatalf("release after splice: %v, want reported no-op", err)
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("invariant broken with frame in flight")
	}

	// Kernel transmit completion recycles the frame like any other send.
	kCompl, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: sock.Compl.Base(),
		Size: 8, EntrySize: FillEntryBytes, Side: ring.Producer})
	kTX.Release(1)
	kCompl.WriteU64(0, d.Addr)
	kCompl.Submit(1, 0)
	if n := sock.Reap(&clk); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	if sock.UMem.FreeFrames() == 0 {
		t.Fatal("frame not recycled")
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("invariant broken after reap")
	}
}

// TestRecvViewsBatchSkipsHostileEntries: the batched view receive keeps
// per-entry refusal semantics — hostile entries inside a run are skipped
// without poisoning their neighbours, and each delivered view certifies
// its own bounds.
func TestRecvViewsBatchSkipsHostileEntries(t *testing.T) {
	sp, sock, ctrs, kFill, kRX, first := zcSetup(t)
	var clk vtime.Clock
	kFill.Release(2) // kernel consumes two more fill entries
	second, _ := kFill.ReadU64(1)

	for i, addr := range []uint64{first, second} {
		payload, _ := sp.Bytes(mem.RoleHost, sock.UMem.Base()+mem.Addr(addr), 4)
		copy(payload, []byte{'p', 'k', 't', byte('0' + i)})
	}
	slot, _ := kRX.SlotBytes(0)
	PutDesc(slot, Desc{Addr: first, Len: 4})
	slot, _ = kRX.SlotBytes(1)
	PutDesc(slot, Desc{Addr: 15 * 2048, Len: 64}) // hostile, mid-batch
	slot, _ = kRX.SlotBytes(2)
	PutDesc(slot, Desc{Addr: second, Len: 4})
	kRX.Submit(3, 0)

	views := sock.RecvViews(&clk, 8)
	if len(views) != 2 {
		t.Fatalf("views = %d, want 2", len(views))
	}
	for i, want := range []string{"pkt0", "pkt1"} {
		snap, err := views[i].Snap(0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if string(snap) != want {
			t.Fatalf("view %d = %q, want %q", i, snap, want)
		}
		if err := views[i].Release(); err != nil {
			t.Fatal(err)
		}
	}
	if ctrs.UMemViolations.Load() != 1 {
		t.Fatalf("violations = %d, want 1", ctrs.UMemViolations.Load())
	}
	if sock.UMem.FreeFrames() == 0 {
		t.Fatal("released views did not refill the pool")
	}
	if !sock.UMem.InvariantHolds() {
		t.Fatal("invariant broken")
	}
}
