// Package wgtun implements the layer-3 secure tunnel the paper's
// Discussion points at (§7, "Data protection"): because RAKIS places a
// UDP/IP stack *inside* the enclave, a WireGuard-style tunnel can
// terminate in trusted memory — packets are encrypted and authenticated
// before they ever touch the untrusted host, giving confidentiality and
// integrity for IO without trusting the OS, which plain RAKIS (like the
// exit-based LibOSes) does not provide by itself.
//
// The protocol is deliberately WireGuard-shaped but simplified to the
// Go standard library's primitives:
//
//   - Peers hold a 32-byte pre-shared key.
//   - A 1-RTT handshake exchanges 32-byte random salts; both sides derive
//     directional AES-256-GCM session keys with HMAC-SHA256 over the PSK
//     and both salts (initiator→responder and responder→initiator keys
//     differ).
//   - Transport messages carry a little-endian 64-bit counter used as the
//     GCM nonce (padded to 12 bytes) and as the anti-replay sequence; the
//     receiver tracks a 64-entry sliding window, as WireGuard does.
//   - Everything rides in UDP datagrams through whatever sys.Sys socket
//     the caller provides — under RAKIS, the XSK fast path.
package wgtun

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// Message types.
const (
	msgHandshakeInit  byte = 1
	msgHandshakeReply byte = 2
	msgTransport      byte = 4
)

// KeyBytes is the pre-shared key length.
const KeyBytes = 32

const (
	saltBytes    = 32
	counterBytes = 8
	headerBytes  = 1 + counterBytes
	gcmOverhead  = 16
	replayWindow = 64
	maxPlaintext = 65000
)

// Errors.
var (
	// ErrAuth reports a message that failed authentication.
	ErrAuth = errors.New("wgtun: authentication failed")
	// ErrReplay reports a replayed or too-old counter.
	ErrReplay = errors.New("wgtun: replayed message")
	// ErrNoSession reports transport data before the handshake.
	ErrNoSession = errors.New("wgtun: no established session")
	// ErrMsg reports a malformed message.
	ErrMsg = errors.New("wgtun: malformed message")
)

// Tunnel is one endpoint of the secure tunnel. It is transport-agnostic:
// the caller moves the produced datagrams (HandshakeInit/Reply outputs,
// Seal outputs) across any channel — under RAKIS, an enclave UDP socket.
type Tunnel struct {
	mu        sync.Mutex
	psk       [KeyBytes]byte
	initiator bool

	localSalt  [saltBytes]byte
	sendAEAD   cipher.AEAD
	recvAEAD   cipher.AEAD
	sendCtr    uint64
	recvMax    uint64
	recvBitmap uint64
	up         bool
}

// New creates a tunnel endpoint with the given pre-shared key.
func New(psk []byte) (*Tunnel, error) {
	if len(psk) != KeyBytes {
		return nil, fmt.Errorf("wgtun: key must be %d bytes, got %d", KeyBytes, len(psk))
	}
	t := &Tunnel{}
	copy(t.psk[:], psk)
	return t, nil
}

// Up reports whether a session is established.
func (t *Tunnel) Up() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.up
}

// HandshakeInit produces the initiator's first message.
func (t *Tunnel) HandshakeInit() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := rand.Read(t.localSalt[:]); err != nil {
		return nil, err
	}
	t.initiator = true
	msg := make([]byte, 1+saltBytes+sha256.Size)
	msg[0] = msgHandshakeInit
	copy(msg[1:], t.localSalt[:])
	mac := hmac.New(sha256.New, t.psk[:])
	mac.Write(msg[:1+saltBytes])
	copy(msg[1+saltBytes:], mac.Sum(nil))
	return msg, nil
}

// HandleMessage processes one received datagram. It returns:
//   - reply != nil: a datagram to send back (handshake progress);
//   - payload != nil: a decrypted layer-3 packet (transport data).
func (t *Tunnel) HandleMessage(msg []byte) (reply, payload []byte, err error) {
	if len(msg) < 1 {
		return nil, nil, ErrMsg
	}
	switch msg[0] {
	case msgHandshakeInit:
		return t.handleInit(msg)
	case msgHandshakeReply:
		return nil, nil, t.handleReply(msg)
	case msgTransport:
		payload, err = t.open(msg)
		return nil, payload, err
	default:
		return nil, nil, fmt.Errorf("%w: type %d", ErrMsg, msg[0])
	}
}

func (t *Tunnel) handleInit(msg []byte) ([]byte, []byte, error) {
	if len(msg) != 1+saltBytes+sha256.Size {
		return nil, nil, ErrMsg
	}
	mac := hmac.New(sha256.New, t.psk[:])
	mac.Write(msg[:1+saltBytes])
	if !hmac.Equal(mac.Sum(nil), msg[1+saltBytes:]) {
		return nil, nil, ErrAuth
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var peerSalt [saltBytes]byte
	copy(peerSalt[:], msg[1:])
	if _, err := rand.Read(t.localSalt[:]); err != nil {
		return nil, nil, err
	}
	t.initiator = false
	if err := t.deriveLocked(peerSalt); err != nil {
		return nil, nil, err
	}

	reply := make([]byte, 1+saltBytes+sha256.Size)
	reply[0] = msgHandshakeReply
	copy(reply[1:], t.localSalt[:])
	rm := hmac.New(sha256.New, t.psk[:])
	rm.Write(reply[:1+saltBytes])
	rm.Write(peerSalt[:]) // binds the reply to this exchange
	copy(reply[1+saltBytes:], rm.Sum(nil))
	return reply, nil, nil
}

func (t *Tunnel) handleReply(msg []byte) error {
	if len(msg) != 1+saltBytes+sha256.Size {
		return ErrMsg
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.initiator {
		return fmt.Errorf("%w: unexpected reply", ErrMsg)
	}
	mac := hmac.New(sha256.New, t.psk[:])
	mac.Write(msg[:1+saltBytes])
	mac.Write(t.localSalt[:])
	if !hmac.Equal(mac.Sum(nil), msg[1+saltBytes:]) {
		return ErrAuth
	}
	var peerSalt [saltBytes]byte
	copy(peerSalt[:], msg[1:])
	return t.deriveLocked(peerSalt)
}

// deriveLocked computes the directional session keys. Both sides order
// the salts (initiator's first) so the derivations agree.
func (t *Tunnel) deriveLocked(peerSalt [saltBytes]byte) error {
	initSalt, respSalt := t.localSalt, peerSalt
	if !t.initiator {
		initSalt, respSalt = peerSalt, t.localSalt
	}
	kdf := func(label string) []byte {
		mac := hmac.New(sha256.New, t.psk[:])
		mac.Write([]byte(label))
		mac.Write(initSalt[:])
		mac.Write(respSalt[:])
		return mac.Sum(nil)
	}
	i2r, err := newAEAD(kdf("wgtun v1 i2r"))
	if err != nil {
		return err
	}
	r2i, err := newAEAD(kdf("wgtun v1 r2i"))
	if err != nil {
		return err
	}
	if t.initiator {
		t.sendAEAD, t.recvAEAD = i2r, r2i
	} else {
		t.sendAEAD, t.recvAEAD = r2i, i2r
	}
	t.sendCtr, t.recvMax, t.recvBitmap = 0, 0, 0
	t.up = true
	return nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(blk)
}

// Seal encrypts one layer-3 packet into a transport datagram.
func (t *Tunnel) Seal(packet []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.up {
		return nil, ErrNoSession
	}
	if len(packet) > maxPlaintext {
		return nil, fmt.Errorf("%w: %d bytes", ErrMsg, len(packet))
	}
	t.sendCtr++
	out := make([]byte, headerBytes, headerBytes+len(packet)+gcmOverhead)
	out[0] = msgTransport
	putCounter(out[1:], t.sendCtr)
	nonce := make([]byte, 12)
	putCounter(nonce, t.sendCtr)
	return t.sendAEAD.Seal(out, nonce, packet, out[:headerBytes]), nil
}

// open decrypts one transport datagram with replay protection.
func (t *Tunnel) open(msg []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.up {
		return nil, ErrNoSession
	}
	if len(msg) < headerBytes+gcmOverhead {
		return nil, ErrMsg
	}
	ctr := getCounter(msg[1:])
	if !t.replayOKLocked(ctr) {
		return nil, ErrReplay
	}
	nonce := make([]byte, 12)
	putCounter(nonce, ctr)
	plain, err := t.recvAEAD.Open(nil, nonce, msg[headerBytes:], msg[:headerBytes])
	if err != nil {
		return nil, ErrAuth
	}
	t.acceptLocked(ctr)
	return plain, nil
}

// replayOKLocked implements the sliding-window check (RFC 6479 style).
func (t *Tunnel) replayOKLocked(ctr uint64) bool {
	if ctr == 0 {
		return false
	}
	if ctr > t.recvMax {
		return true
	}
	diff := t.recvMax - ctr
	if diff >= replayWindow {
		return false
	}
	return t.recvBitmap&(1<<diff) == 0
}

// acceptLocked records a verified counter in the window.
func (t *Tunnel) acceptLocked(ctr uint64) {
	if ctr > t.recvMax {
		shift := ctr - t.recvMax
		if shift >= replayWindow {
			t.recvBitmap = 0
		} else {
			t.recvBitmap <<= shift
		}
		t.recvBitmap |= 1
		t.recvMax = ctr
		return
	}
	t.recvBitmap |= 1 << (t.recvMax - ctr)
}

func putCounter(b []byte, v uint64) {
	for i := 0; i < counterBytes; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getCounter(b []byte) uint64 {
	var v uint64
	for i := counterBytes - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
