package wgtun

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func pair(t *testing.T) (*Tunnel, *Tunnel) {
	t.Helper()
	psk := bytes.Repeat([]byte{0x42}, KeyBytes)
	a, err := New(psk)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(psk)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func handshake(t *testing.T, a, b *Tunnel) {
	t.Helper()
	init, err := a.HandshakeInit()
	if err != nil {
		t.Fatal(err)
	}
	reply, _, err := b.HandleMessage(init)
	if err != nil || reply == nil {
		t.Fatalf("responder: %v", err)
	}
	if _, _, err := a.HandleMessage(reply); err != nil {
		t.Fatalf("initiator: %v", err)
	}
	if !a.Up() || !b.Up() {
		t.Fatal("session not established")
	}
}

func TestHandshakeAndTransport(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)

	packet := []byte("an entire layer-3 packet, confidential from the host OS")
	sealed, err := a.Seal(packet)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, []byte("confidential")) {
		t.Fatal("plaintext leaked into the datagram")
	}
	_, got, err := b.HandleMessage(sealed)
	if err != nil || !bytes.Equal(got, packet) {
		t.Fatalf("open = %q, %v", got, err)
	}

	// And the reverse direction uses the other key.
	back, _ := b.Seal([]byte("reply"))
	_, got, err = a.HandleMessage(back)
	if err != nil || string(got) != "reply" {
		t.Fatalf("reverse = %q, %v", got, err)
	}
}

func TestDirectionalKeysDiffer(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)
	sealed, _ := a.Seal([]byte("x"))
	// The sender cannot decrypt its own datagram: keys are directional.
	if _, _, err := a.HandleMessage(sealed); !errors.Is(err, ErrAuth) && !errors.Is(err, ErrReplay) {
		t.Fatalf("self-decrypt err = %v, want auth/replay failure", err)
	}
}

func TestWrongPSKFailsHandshake(t *testing.T) {
	a, _ := pair(t)
	evil, _ := New(bytes.Repeat([]byte{0x66}, KeyBytes))
	init, _ := a.HandshakeInit()
	if _, _, err := evil.HandleMessage(init); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)
	sealed, _ := a.Seal([]byte("integrity matters"))
	sealed[len(sealed)-1] ^= 1
	if _, _, err := b.HandleMessage(sealed); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	// Tampered counter (associated data) also fails.
	sealed2, _ := a.Seal([]byte("more"))
	sealed2[3] ^= 1
	if _, _, err := b.HandleMessage(sealed2); err == nil {
		t.Fatal("tampered header must fail")
	}
}

func TestReplayRejected(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)
	sealed, _ := a.Seal([]byte("once"))
	if _, _, err := b.HandleMessage(sealed); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.HandleMessage(sealed); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
}

func TestReplayWindowOutOfOrder(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)
	var msgs [][]byte
	for i := 0; i < 10; i++ {
		s, _ := a.Seal([]byte{byte(i)})
		msgs = append(msgs, s)
	}
	// Deliver out of order: 9 first, then the rest.
	if _, _, err := b.HandleMessage(msgs[9]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, got, err := b.HandleMessage(msgs[i]); err != nil || got[0] != byte(i) {
			t.Fatalf("ooo %d: %v", i, err)
		}
	}
	// All replays now fail.
	for i := 0; i < 10; i++ {
		if _, _, err := b.HandleMessage(msgs[i]); !errors.Is(err, ErrReplay) {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
}

func TestReplayWindowFarPast(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)
	old, _ := a.Seal([]byte("ancient"))
	for i := 0; i < replayWindow+8; i++ {
		s, _ := a.Seal([]byte("filler"))
		if _, _, err := b.HandleMessage(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.HandleMessage(old); !errors.Is(err, ErrReplay) {
		t.Fatalf("far-past err = %v, want ErrReplay", err)
	}
}

func TestSealBeforeHandshake(t *testing.T) {
	a, _ := pair(t)
	if _, err := a.Seal([]byte("x")); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

func TestMalformedMessages(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)
	for _, msg := range [][]byte{
		nil,
		{},
		{99},
		{msgHandshakeInit, 1, 2},
		{msgTransport, 1},
		make([]byte, headerBytes+3),
	} {
		m := msg
		if len(m) > 0 && m[0] == 0 {
			m[0] = msgTransport
		}
		if _, _, err := b.HandleMessage(m); err == nil {
			t.Fatalf("message %v must be rejected", msg)
		}
	}
	if _, err := New([]byte("short")); err == nil {
		t.Fatal("short key must be rejected")
	}
}

func TestSealOpenProperty(t *testing.T) {
	a, b := pair(t)
	handshake(t, a, b)
	f := func(payload []byte) bool {
		if len(payload) > maxPlaintext {
			payload = payload[:maxPlaintext]
		}
		sealed, err := a.Seal(payload)
		if err != nil {
			return false
		}
		_, got, err := b.HandleMessage(sealed)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := make([]byte, counterBytes)
		putCounter(b, v)
		return getCounter(b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
