// Package ring implements RAKIS-certified producer/consumer rings — the
// core mechanism of the paper's FastPath Module (§4.1).
//
// A FIOKP ring (the four XSK rings and the two io_uring rings of Table 1)
// lives entirely in shared untrusted memory so that the host kernel can
// operate its side without enclave exits. Its layout is:
//
//	+0   producer index (u32, free-running)
//	+4   consumer index (u32, free-running)
//	+8   flags          (u32, e.g. need-wakeup)
//	+12  reserved
//	+16  entries        (Size * EntrySize bytes; Size is a power of two)
//
// The enclave side keeps trusted shadows of every control value. The side
// that owns an index treats its shared copy as strictly write-only; the
// peer's index is read from untrusted memory and must pass the Table 2
// check before the trusted shadow is updated:
//
//	consumer side:  0 <= producer^u - consumer^t <= size^t
//	producer side:  0 <= producer^t - consumer^u <= size^t
//
// Indices are free-running u32 values that wrap; the checks are performed
// in modular arithmetic, so the single unsigned comparison (diff <= size)
// enforces both bounds even across wraparound — the edge case the paper's
// implementation section calls out. On a failed check the ring refuses the
// value: the trusted shadow is left unchanged, the violation counter is
// bumped, and the caller observes no progress — the "Do not update
// trusted producer/consumer" fail action of Table 2.
//
// The same type also serves as the kernel's (host's) handle when built
// with Certified=false, in which case peer values are trusted as the
// Linux kernel trusts its own memory.
package ring

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"rakis/internal/mem"
	"rakis/internal/vtime"
)

// Side says which index this handle owns.
type Side uint8

const (
	// Producer handles own the producer index (e.g. the FM on xFill,
	// xTX and iSub).
	Producer Side = iota
	// Consumer handles own the consumer index (e.g. the FM on xRX,
	// xCompl and iCompl).
	Consumer
)

// String returns the side name.
func (s Side) String() string {
	if s == Producer {
		return "producer"
	}
	return "consumer"
}

// HeaderBytes is the size of the ring control header.
const HeaderBytes = 16

// Errors reported by ring construction and operation.
var (
	// ErrConfig reports an invalid ring configuration.
	ErrConfig = errors.New("ring: invalid configuration")
	// ErrPlacement reports a certified ring whose memory is not
	// exclusively inside the untrusted segment (Table 2 init check).
	ErrPlacement = errors.New("ring: certified ring must live exclusively in untrusted memory")
	// ErrViolation reports an untrusted control value that failed its
	// certification check; the trusted state was not updated.
	ErrViolation = errors.New("ring: untrusted control value rejected")
)

// Config describes one side's view of a shared ring.
type Config struct {
	// Space is the address space holding the ring.
	Space *mem.Space
	// Access is the memory role used for all accesses (RoleEnclave for
	// FM handles, RoleHost for kernel handles).
	Access mem.Role
	// Base is the ring's base address in shared memory.
	Base mem.Addr
	// Size is the entry count; it must be a power of two. For certified
	// rings this is trusted user configuration: the mask is derived from
	// it in-enclave rather than accepted from the host.
	Size uint32
	// EntrySize is the bytes per entry (8 for xFill/xCompl, 16 for
	// xRX/xTX descriptors and CQEs, 64 for SQEs).
	EntrySize uint32
	// Side is which index this handle owns.
	Side Side
	// Certified enables the RAKIS validation of peer control values.
	Certified bool
	// Counters receives violation counts; it may be nil.
	Counters *vtime.Counters
}

// Ring is one side's handle on a shared ring.
type Ring struct {
	space     *mem.Space
	access    mem.Role
	base      mem.Addr
	size      uint32
	mask      uint32
	entrySize uint32
	side      Side
	certified bool
	counters  *vtime.Counters

	prodCell  *atomic.Uint32
	consCell  *atomic.Uint32
	flagsCell *atomic.Uint32
	stamp     *vtime.Stamp
	band      []vtime.Stamp

	// Trusted shadows: local is the index this side owns (authoritative);
	// peer is the last successfully validated value of the other index.
	local uint32
	peer  uint32

	// violStreak counts consecutive refused peer reads. Refusing is the
	// Table 2 fail action, but a scribbled cell whose legitimate writer
	// has gone idle would otherwise be refused forever; after
	// resyncThreshold consecutive refusals the last trusted value is
	// written back over the hostile one (quarantine-and-resync).
	violStreak uint32

	// viol is this ring's lifetime certification-failure count — the
	// per-ring slice of Counters.RingViolations, so a shard's refusals
	// can be told apart from its neighbours'.
	viol atomic.Uint64
}

// resyncThreshold is how many consecutive certification failures the ring
// tolerates before writing the last trusted peer value back over the
// shared cell. Low enough to recover promptly, high enough that a single
// transient scribble (healed by the legitimate writer's next store) does
// not trigger an unnecessary write.
const resyncThreshold = 4

// TotalBytes returns the shared-memory footprint of a ring with the given
// geometry.
func TotalBytes(size, entrySize uint32) uint64 {
	return HeaderBytes + uint64(size)*uint64(entrySize)
}

// New constructs a ring handle, validating the configuration and — for
// certified handles — the Table 2 initialization constraints.
func New(cfg Config) (*Ring, error) {
	if cfg.Space == nil {
		return nil, fmt.Errorf("%w: nil space", ErrConfig)
	}
	if cfg.Size == 0 || bits.OnesCount32(cfg.Size) != 1 {
		return nil, fmt.Errorf("%w: size %d is not a power of two", ErrConfig, cfg.Size)
	}
	if cfg.EntrySize == 0 {
		return nil, fmt.Errorf("%w: zero entry size", ErrConfig)
	}
	total := TotalBytes(cfg.Size, cfg.EntrySize)
	if cfg.Certified {
		// The mask is *derived* from the trusted size, never read from
		// the host (§4.1 "Validating the initialization data"), and the
		// whole ring must reside in shared untrusted memory.
		if !cfg.Space.InUntrusted(cfg.Base, total) {
			return nil, fmt.Errorf("%w: [%#x,+%d)", ErrPlacement, uint64(cfg.Base), total)
		}
	} else if err := cfg.Space.Check(cfg.Access, cfg.Base, total); err != nil {
		return nil, err
	}
	r := &Ring{
		space:     cfg.Space,
		access:    cfg.Access,
		base:      cfg.Base,
		size:      cfg.Size,
		mask:      cfg.Size - 1,
		entrySize: cfg.EntrySize,
		side:      cfg.Side,
		certified: cfg.Certified,
		counters:  cfg.Counters,
		stamp:     cfg.Space.StampCell(cfg.Base),
		band:      cfg.Space.StampBand(cfg.Base, cfg.Size),
	}
	var err error
	if r.prodCell, err = cfg.Space.Atomic32(cfg.Access, cfg.Base); err != nil {
		return nil, err
	}
	if r.consCell, err = cfg.Space.Atomic32(cfg.Access, cfg.Base+4); err != nil {
		return nil, err
	}
	if r.flagsCell, err = cfg.Space.Atomic32(cfg.Access, cfg.Base+8); err != nil {
		return nil, err
	}
	return r, nil
}

// Size returns the trusted entry count.
func (r *Ring) Size() uint32 { return r.size }

// Base returns the ring's base address.
func (r *Ring) Base() mem.Addr { return r.base }

// Stamp returns the ring's virtual-time stamp cell.
func (r *Ring) Stamp() *vtime.Stamp { return r.stamp }

// violation records a failed certification check.
func (r *Ring) violation() error {
	r.viol.Add(1)
	if r.counters != nil {
		r.counters.RingViolations.Add(1)
	}
	return ErrViolation
}

// Violations returns this ring's lifetime certification-failure count.
func (r *Ring) Violations() uint64 { return r.viol.Load() }

// refreshPeer loads the peer index from untrusted memory and, for
// certified rings, admits it only if the Table 2 constraint holds. It
// returns the number of entries between the two indices (produced but not
// yet consumed).
//
//rakis:validator
func (r *Ring) refreshPeer() (uint32, error) {
	var raw uint32
	if r.side == Producer {
		raw = r.consCell.Load()
	} else {
		raw = r.prodCell.Load()
	}
	var diff uint32
	if r.side == Producer {
		diff = r.local - raw // producer^t - consumer^u
	} else {
		diff = raw - r.local // producer^u - consumer^t
	}
	if r.certified && diff > r.size {
		// Constraint violated: keep the previous trusted value. Every
		// shared cell has exactly one legitimate writer that
		// unconditionally stores its private shadow, so a scribble heals
		// itself on that writer's next operation — but if the writer is
		// idle the refusal would repeat forever. After a streak of
		// refusals, quarantine the hostile value by writing the last
		// trusted one back (a pure recovery action: it restores state the
		// peer already published and the enclave already certified, so it
		// can never advance either index).
		r.violStreak++
		if r.violStreak >= resyncThreshold {
			r.writeBackPeer()
		}
		return r.pending(), r.violation()
	}
	r.violStreak = 0
	r.peer = raw
	return diff, nil
}

// writeBackPeer stores the trusted peer shadow over the peer-owned shared
// cell and counts the resync.
func (r *Ring) writeBackPeer() {
	if r.side == Producer {
		r.consCell.Store(r.peer)
	} else {
		r.prodCell.Store(r.peer)
	}
	r.violStreak = 0
	if r.counters != nil {
		r.counters.RingResyncs.Add(1)
	}
}

// ResyncPeer sets the trusted peer shadow to v and publishes it over the
// peer-owned shared cell. Callers must derive v from certified state only
// — e.g. the io_uring FM proves cons == prod when every submitted SQE has
// a validated completion — so the update is checked against the ring
// invariant and refused if it would not hold.
func (r *Ring) ResyncPeer(v uint32) error {
	var diff uint32
	if r.side == Producer {
		diff = r.local - v
	} else {
		diff = v - r.local
	}
	if diff > r.size {
		return r.violation()
	}
	r.peer = v
	r.writeBackPeer()
	return nil
}

// pending returns entries outstanding according to the trusted shadows.
func (r *Ring) pending() uint32 {
	if r.side == Producer {
		return r.local - r.peer
	}
	return r.peer - r.local
}

// Free returns the number of entries a producer may currently write. For
// certified rings a hostile consumer value is refused and the count from
// the last trusted state is returned alongside ErrViolation.
func (r *Ring) Free() (uint32, error) {
	if r.side != Producer {
		return 0, fmt.Errorf("%w: Free on consumer handle", ErrConfig)
	}
	used, err := r.refreshPeer()
	if err != nil {
		return r.size - used, err
	}
	return r.size - used, nil
}

// Available returns the number of entries a consumer may currently read.
// For certified rings a hostile producer value is refused and the count
// from the last trusted state is returned alongside ErrViolation.
func (r *Ring) Available() (uint32, error) {
	if r.side != Consumer {
		return 0, fmt.Errorf("%w: Available on producer handle", ErrConfig)
	}
	return r.refreshPeer()
}

// SlotAddr returns the address of the i-th entry from this side's trusted
// index: for producers, the i-th free slot about to be written; for
// consumers, the i-th pending entry about to be read.
func (r *Ring) SlotAddr(i uint32) mem.Addr {
	idx := (r.local + i) & r.mask
	return r.base + HeaderBytes + mem.Addr(uint64(idx)*uint64(r.entrySize))
}

// SlotBytes returns a view of the i-th slot's bytes. Slot contents live
// in shared memory: the host can rewrite them at any time, so enclave
// callers must validate anything they parse out of the slice.
//
//rakis:untrusted
func (r *Ring) SlotBytes(i uint32) ([]byte, error) {
	return r.space.Bytes(r.access, r.SlotAddr(i), uint64(r.entrySize))
}

// SnapSlot fetches the i-th slot into trusted storage in one pass and
// returns the frozen copy. Consumers parse descriptors and CQEs out of
// the Snap rather than the live slot, so validation and use see the
// same bytes no matter what the host scribbles in between — the
// single-read discipline the doublefetch analyzer enforces. Producers
// writing into a slot keep using SlotBytes: a snapshot of a slot about
// to be overwritten would be wasted work.
//
//rakis:untrusted
//rakis:snapshot
func (r *Ring) SnapSlot(i uint32) (mem.Snap, error) {
	return r.space.Snapshot(r.access, r.SlotAddr(i), uint64(r.entrySize))
}

// WriteU64 stores v into the i-th slot; the slot must be at least 8 bytes.
func (r *Ring) WriteU64(i uint32, v uint64) error {
	return r.space.PutU64(r.access, r.SlotAddr(i), v)
}

// ReadU64 loads the first 8 bytes of the i-th slot. The value comes
// straight from shared memory and is host-controlled.
//
//rakis:untrusted
func (r *Ring) ReadU64(i uint32) (uint64, error) {
	return r.space.U64(r.access, r.SlotAddr(i))
}

// Submit publishes n freshly written entries: the producer advances its
// trusted index, exposes it in shared memory, and raises the ring's
// virtual-time stamp to now.
func (r *Ring) Submit(n uint32, now uint64) error {
	if r.side != Producer {
		return fmt.Errorf("%w: Submit on consumer handle", ErrConfig)
	}
	for i := uint32(0); i < n; i++ {
		r.band[(r.local+i)&r.mask].Raise(now)
	}
	r.local += n
	r.prodCell.Store(r.local)
	r.stamp.Raise(now)
	return nil
}

// SlotStamp returns the virtual time at which the i-th pending entry was
// produced. Per-slot stamps preserve inter-arrival spacing, so consumers
// that fall behind in real time do not observe artificially compressed
// virtual gaps.
func (r *Ring) SlotStamp(i uint32) uint64 {
	return r.band[(r.local+i)&r.mask].Load()
}

// Release retires n consumed entries: the consumer advances its trusted
// index and exposes it in shared memory. Advancing past a hostile entry
// without processing it ("refuse and advance consumer", Table 2) is also
// done through Release.
func (r *Ring) Release(n uint32) error {
	if r.side != Consumer {
		return fmt.Errorf("%w: Release on producer handle", ErrConfig)
	}
	r.local += n
	r.consCell.Store(r.local)
	return nil
}

// Republish re-stores this side's trusted index over its owned shared
// cell without advancing it. The kernel side calls this on every wakeup:
// a scribble over a kernel-owned cell normally heals on the kernel's next
// Submit/Release, but an idle kernel makes no stores — republishing on
// wakeup lets the enclave's nudge ladder force the heal.
func (r *Ring) Republish() {
	if r.side == Producer {
		r.prodCell.Store(r.local)
	} else {
		r.consCell.Store(r.local)
	}
}

// Local returns this side's trusted index (for tests and the verifier).
func (r *Ring) Local() uint32 { return r.local }

// Peer returns the last validated peer index (for tests and the verifier).
func (r *Ring) Peer() uint32 { return r.peer }

// Seed initializes both trusted indices and the shared control words to
// base. It exists for the Testing Module, which explores ring behaviour
// from arbitrary starting indices — in particular near the u32
// wraparound boundary.
func (r *Ring) Seed(base uint32) {
	r.local, r.peer = base, base
	r.prodCell.Store(base)
	r.consCell.Store(base)
}

// InvariantHolds reports whether the §5.1 model constraint
// 0 <= Pt - Ct <= St currently holds on the trusted shadows. It is the
// assertion the Testing Module checks after every operation.
func (r *Ring) InvariantHolds() bool {
	var diff uint32
	if r.side == Producer {
		diff = r.local - r.peer
	} else {
		diff = r.peer - r.local
	}
	return diff <= r.size
}

// Flags returns the shared flags word (e.g. need-wakeup). The word is
// host-writable; only individual bits may be trusted, never derived
// sizes or offsets.
//
//rakis:untrusted
func (r *Ring) Flags() uint32 { return r.flagsCell.Load() }

// SetFlags stores the shared flags word.
func (r *Ring) SetFlags(v uint32) { r.flagsCell.Store(v) }

// ProducerValue returns the raw shared producer index. The Monitor Module
// watches this from outside the enclave (§4.3); it is also how tests
// inspect what the host sees. The raw value has not passed the Table 2
// check.
//
//rakis:untrusted
func (r *Ring) ProducerValue() uint32 { return r.prodCell.Load() }

// ConsumerValue returns the raw shared consumer index, unvalidated like
// ProducerValue.
//
//rakis:untrusted
func (r *Ring) ConsumerValue() uint32 { return r.consCell.Load() }

// Flag bits used by the simulated FIOKPs.
const (
	// FlagNeedWakeup is set by the kernel side when it has gone idle and
	// requires a syscall to resume processing (XDP_USE_NEED_WAKEUP /
	// IORING_SQ_NEED_WAKEUP).
	FlagNeedWakeup uint32 = 1 << 0
)
