package ring

import (
	"errors"
	"testing"
	"testing/quick"

	"rakis/internal/mem"
	"rakis/internal/vtime"
)

// pair builds a certified enclave handle and an uncertified host handle
// over the same shared ring, with the FM on the given side.
func pair(t *testing.T, size, entrySize uint32, fmSide Side) (fm, host *Ring, sp *mem.Space, ctrs *vtime.Counters) {
	t.Helper()
	sp = mem.NewSpace(1<<20, 1<<20)
	ctrs = &vtime.Counters{}
	base, err := sp.Alloc(mem.Untrusted, TotalBytes(size, entrySize), 64)
	if err != nil {
		t.Fatal(err)
	}
	hostSide := Consumer
	if fmSide == Consumer {
		hostSide = Producer
	}
	fm, err = New(Config{
		Space: sp, Access: mem.RoleEnclave, Base: base,
		Size: size, EntrySize: entrySize, Side: fmSide,
		Certified: true, Counters: ctrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err = New(Config{
		Space: sp, Access: mem.RoleHost, Base: base,
		Size: size, EntrySize: entrySize, Side: hostSide,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fm, host, sp, ctrs
}

func TestProduceConsumeRoundTrip(t *testing.T) {
	fm, host, _, _ := pair(t, 8, 8, Producer)

	free, err := fm.Free()
	if err != nil || free != 8 {
		t.Fatalf("initial Free = %d, %v; want 8, nil", free, err)
	}
	for i := uint32(0); i < 5; i++ {
		if err := fm.WriteU64(i, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fm.Submit(5, 1000); err != nil {
		t.Fatal(err)
	}

	avail, err := host.Available()
	if err != nil || avail != 5 {
		t.Fatalf("host Available = %d, %v; want 5, nil", avail, err)
	}
	for i := uint32(0); i < 5; i++ {
		v, err := host.ReadU64(i)
		if err != nil || v != uint64(100+i) {
			t.Fatalf("entry %d = %d, %v; want %d", i, v, err, 100+i)
		}
	}
	if err := host.Release(5); err != nil {
		t.Fatal(err)
	}

	free, err = fm.Free()
	if err != nil || free != 8 {
		t.Fatalf("Free after drain = %d, %v; want 8, nil", free, err)
	}
	if fm.Stamp().Load() != 1000 {
		t.Fatalf("stamp = %d, want 1000", fm.Stamp().Load())
	}
}

func TestConsumerSideFM(t *testing.T) {
	fm, host, _, _ := pair(t, 4, 8, Consumer)
	// Kernel produces three entries.
	if free, err := host.Free(); err != nil || free != 4 {
		t.Fatalf("host Free = %d, %v", free, err)
	}
	for i := uint32(0); i < 3; i++ {
		if err := host.WriteU64(i, uint64(i)*7); err != nil {
			t.Fatal(err)
		}
	}
	if err := host.Submit(3, 50); err != nil {
		t.Fatal(err)
	}
	avail, err := fm.Available()
	if err != nil || avail != 3 {
		t.Fatalf("FM Available = %d, %v; want 3", avail, err)
	}
	for i := uint32(0); i < 3; i++ {
		v, _ := fm.ReadU64(i)
		if v != uint64(i)*7 {
			t.Fatalf("entry %d = %d, want %d", i, v, i*7)
		}
	}
	if err := fm.Release(3); err != nil {
		t.Fatal(err)
	}
	if avail, _ := fm.Available(); avail != 0 {
		t.Fatalf("Available after release = %d, want 0", avail)
	}
}

func TestFullRingBlocksProducer(t *testing.T) {
	fm, host, _, _ := pair(t, 4, 8, Producer)
	if err := fm.Submit(4, 0); err != nil {
		t.Fatal(err)
	}
	free, err := fm.Free()
	if err != nil || free != 0 {
		t.Fatalf("Free on full ring = %d, %v; want 0", free, err)
	}
	if avail, _ := host.Available(); avail != 4 {
		t.Fatal("host must see 4 entries")
	}
	host.Release(1)
	if free, _ := fm.Free(); free != 1 {
		t.Fatalf("Free after one release = %d, want 1", free)
	}
}

func TestWraparoundU32(t *testing.T) {
	// Start both indices near the u32 maximum so that the producer wraps
	// before the consumer — the edge case §4.1 calls out.
	fm, host, _, _ := pair(t, 8, 8, Producer)
	start := uint32(0xFFFF_FFFC) // 4 below wrap
	fm.local, fm.peer = start, start
	fm.prodCell.Store(start)
	fm.consCell.Store(start)
	host.local, host.peer = start, start

	for round := 0; round < 4; round++ {
		free, err := fm.Free()
		if err != nil || free != 8 {
			t.Fatalf("round %d: Free = %d, %v; want 8", round, free, err)
		}
		fm.WriteU64(0, uint64(round))
		fm.WriteU64(1, uint64(round))
		if err := fm.Submit(2, 0); err != nil {
			t.Fatal(err)
		}
		avail, err := host.Available()
		if err != nil || avail != 2 {
			t.Fatalf("round %d: Available = %d, %v; want 2", round, avail, err)
		}
		host.Release(2)
	}
	// The producer index has wrapped past zero.
	if fm.Local() >= start {
		t.Fatalf("producer index %#x did not wrap", fm.Local())
	}
	if !fm.InvariantHolds() {
		t.Fatal("invariant must hold across wraparound")
	}
}

// Hostile consumer values against an FM producer (Table 2 row:
// "Consumer value rings where RAKIS is producer").
func TestHostileConsumerValueRejected(t *testing.T) {
	fm, _, _, ctrs := pair(t, 8, 8, Producer)
	fm.Submit(4, 0) // producer^t = 4, consumer = 0

	hostile := []uint32{
		5,           // consumer ahead of producer: Pt - Cu = -1 (mod 2^32)
		100,         // far ahead
		0xFFFF_FFFF, // Pt - Cu = 5, fine? 4 - (2^32-1) = 5 -> within size, tricky!
	}
	// Case consumer=5: diff = 4-5 wraps to 2^32-1 > 8 -> reject.
	fm.consCell.Store(hostile[0])
	free, err := fm.Free()
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("consumer=5: err = %v, want ErrViolation", err)
	}
	if free != 4 { // last trusted state: 4 in flight, 4 free
		t.Fatalf("consumer=5: free = %d, want 4 (trusted state)", free)
	}
	// Case consumer=100: diff wraps large -> reject.
	fm.consCell.Store(hostile[1])
	if _, err := fm.Free(); !errors.Is(err, ErrViolation) {
		t.Fatalf("consumer=100: err = %v, want ErrViolation", err)
	}
	// Case consumer=0xFFFFFFFF: diff = 4 - (2^32-1) = 5 <= 8. This value
	// *satisfies* the modular constraint (it is indistinguishable from a
	// legitimately wrapped consumer) and therefore is admitted — but the
	// admitted state still keeps the invariant, which is what the model
	// guarantees.
	fm.consCell.Store(hostile[2])
	if _, err := fm.Free(); err != nil {
		t.Fatalf("consumer=2^32-1: err = %v; modular-valid value must be admitted", err)
	}
	if !fm.InvariantHolds() {
		t.Fatal("invariant must hold after any admitted value")
	}
	if got := ctrs.RingViolations.Load(); got != 2 {
		t.Fatalf("violations = %d, want 2", got)
	}
}

// Hostile producer values against an FM consumer (Table 2 row:
// "Producer value in rings where RAKIS is consumer").
func TestHostileProducerValueRejected(t *testing.T) {
	fm, host, _, ctrs := pair(t, 8, 8, Consumer)
	host.Submit(3, 0)
	if avail, err := fm.Available(); err != nil || avail != 3 {
		t.Fatalf("legit Available = %d, %v", avail, err)
	}

	// Producer claims more entries than the ring holds.
	fm.prodCell.Store(fm.Local() + 9)
	avail, err := fm.Available()
	if !errors.Is(err, ErrViolation) {
		t.Fatalf("producer overrun: err = %v, want ErrViolation", err)
	}
	if avail != 3 {
		t.Fatalf("producer overrun: avail = %d, want trusted 3", avail)
	}

	// Producer runs backwards (behind the consumer).
	fm.prodCell.Store(fm.Local() - 1)
	if _, err := fm.Available(); !errors.Is(err, ErrViolation) {
		t.Fatalf("producer regression: err = %v, want ErrViolation", err)
	}

	if got := ctrs.RingViolations.Load(); got != 2 {
		t.Fatalf("violations = %d, want 2", got)
	}
	// Trusted state must be intact: draining the 3 real entries works.
	if err := fm.Release(3); err != nil {
		t.Fatal(err)
	}
	if !fm.InvariantHolds() {
		t.Fatal("invariant must hold after rejected values")
	}
}

// The libxdp case study (§5): xsk_prod_nb_free computes free entries from
// an unvalidated consumer value, which can exceed the ring size and cause
// a buffer overflow. The certified ring must never report free > size.
func TestFreeNeverExceedsSize(t *testing.T) {
	f := func(hostileConsumer uint32, produced uint8) bool {
		sp := mem.NewSpace(1<<16, 1<<16)
		base, err := sp.Alloc(mem.Untrusted, TotalBytes(8, 8), 64)
		if err != nil {
			return false
		}
		fm, err := New(Config{
			Space: sp, Access: mem.RoleEnclave, Base: base,
			Size: 8, EntrySize: 8, Side: Producer, Certified: true,
		})
		if err != nil {
			return false
		}
		fm.Submit(uint32(produced)%8, 0)
		fm.consCell.Store(hostileConsumer)
		free, _ := fm.Free()
		return free <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: whatever sequence of hostile peer values is presented, the
// trusted invariant 0 <= Pt-Ct <= St holds after every operation, and
// Available/Free never exceed the ring size.
func TestInvariantUnderAdversary(t *testing.T) {
	f := func(values []uint32, side bool) bool {
		sp := mem.NewSpace(1<<16, 1<<16)
		base, _ := sp.Alloc(mem.Untrusted, TotalBytes(16, 8), 64)
		s := Producer
		if side {
			s = Consumer
		}
		fm, err := New(Config{
			Space: sp, Access: mem.RoleEnclave, Base: base,
			Size: 16, EntrySize: 8, Side: s, Certified: true,
		})
		if err != nil {
			return false
		}
		for _, v := range values {
			if s == Producer {
				fm.consCell.Store(v)
				free, _ := fm.Free()
				if free > 16 || !fm.InvariantHolds() {
					return false
				}
				// Make legitimate progress with whatever room we have.
				if free > 0 {
					fm.Submit(1, 0)
				}
			} else {
				fm.prodCell.Store(v)
				avail, _ := fm.Available()
				if avail > 16 || !fm.InvariantHolds() {
					return false
				}
				if avail > 0 {
					fm.Release(1)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCertifiedRingRejectsTrustedPlacement(t *testing.T) {
	// The liburing case study (§5, Appendix A): ring pointers referencing
	// enclave memory would let the host exfiltrate enclave data. The
	// certified constructor must refuse them.
	sp := mem.NewSpace(1<<16, 1<<16)
	trBase, err := sp.Alloc(mem.Trusted, TotalBytes(8, 8), 64)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Space: sp, Access: mem.RoleEnclave, Base: trBase,
		Size: 8, EntrySize: 8, Side: Producer, Certified: true,
	})
	if !errors.Is(err, ErrPlacement) {
		t.Fatalf("certified ring in trusted memory: err = %v, want ErrPlacement", err)
	}
}

func TestHostHandleCannotUseTrustedMemory(t *testing.T) {
	// Even an *uncertified* host handle physically cannot operate on
	// enclave memory: SGX protection, not software checks.
	sp := mem.NewSpace(1<<16, 1<<16)
	trBase, _ := sp.Alloc(mem.Trusted, TotalBytes(8, 8), 64)
	_, err := New(Config{
		Space: sp, Access: mem.RoleHost, Base: trBase,
		Size: 8, EntrySize: 8, Side: Consumer,
	})
	if !errors.Is(err, mem.ErrProtected) {
		t.Fatalf("host handle on trusted memory: err = %v, want ErrProtected", err)
	}
}

func TestConfigValidation(t *testing.T) {
	sp := mem.NewSpace(1<<16, 1<<16)
	base, _ := sp.Alloc(mem.Untrusted, 4096, 64)
	cases := []Config{
		{Space: nil, Base: base, Size: 8, EntrySize: 8},
		{Space: sp, Base: base, Size: 0, EntrySize: 8},
		{Space: sp, Base: base, Size: 6, EntrySize: 8}, // not a power of two
		{Space: sp, Base: base, Size: 8, EntrySize: 0},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestSideMisuse(t *testing.T) {
	fm, host, _, _ := pair(t, 8, 8, Producer)
	if _, err := fm.Available(); !errors.Is(err, ErrConfig) {
		t.Fatal("Available on producer handle must fail")
	}
	if err := fm.Release(1); !errors.Is(err, ErrConfig) {
		t.Fatal("Release on producer handle must fail")
	}
	if _, err := host.Free(); !errors.Is(err, ErrConfig) {
		t.Fatal("Free on consumer handle must fail")
	}
	if err := host.Submit(1, 0); !errors.Is(err, ErrConfig) {
		t.Fatal("Submit on consumer handle must fail")
	}
}

func TestFlags(t *testing.T) {
	fm, host, _, _ := pair(t, 8, 8, Producer)
	host.SetFlags(FlagNeedWakeup)
	if fm.Flags()&FlagNeedWakeup == 0 {
		t.Fatal("need-wakeup flag set by host not visible to FM")
	}
	host.SetFlags(0)
	if fm.Flags() != 0 {
		t.Fatal("flag clear not visible")
	}
}

func TestSlotAddressing(t *testing.T) {
	fm, _, sp, _ := pair(t, 4, 16, Producer)
	// Slots must stay within the ring's entry area and wrap with the mask.
	seen := map[mem.Addr]bool{}
	for i := uint32(0); i < 8; i++ {
		a := fm.SlotAddr(i)
		if err := sp.Check(mem.RoleEnclave, a, 16); err != nil {
			t.Fatalf("slot %d out of bounds: %v", i, err)
		}
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 distinct slot addresses with wrap, got %d", len(seen))
	}
	b, err := fm.SlotBytes(0)
	if err != nil || len(b) != 16 {
		t.Fatalf("SlotBytes = %d bytes, %v; want 16", len(b), err)
	}
}

func TestProducerConsumerValuesVisible(t *testing.T) {
	fm, host, _, _ := pair(t, 8, 8, Producer)
	fm.Submit(3, 0)
	if host.ProducerValue() != 3 {
		t.Fatalf("host sees producer=%d, want 3", host.ProducerValue())
	}
	host.Available()
	host.Release(2)
	if fm.ConsumerValue() != 2 {
		t.Fatalf("FM sees consumer=%d, want 2", fm.ConsumerValue())
	}
}

func TestSideString(t *testing.T) {
	if Producer.String() != "producer" || Consumer.String() != "consumer" {
		t.Fatal("Side.String mismatch")
	}
}
