package ring

import (
	"testing"

	"rakis/internal/mem"
)

// TestSnapSlotFreezesAgainstScribble proves the single-read property at
// the ring layer: once a consumer snapshots a slot, the host rewriting
// the live slot cannot change what the snapshot decodes.
func TestSnapSlotFreezesAgainstScribble(t *testing.T) {
	fm, host, sp, _ := pair(t, 8, 16, Consumer)

	// Host produces one entry.
	if err := host.WriteU64(0, 64); err != nil {
		t.Fatal(err)
	}
	if err := host.Submit(1, 0); err != nil {
		t.Fatal(err)
	}

	snap, err := fm.SnapSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.U64(0); got != 64 {
		t.Fatalf("snapshot U64 = %d, want 64", got)
	}

	// Host scribbles the live slot after the fetch (raw store at the
	// consumer's absolute slot address — the producer index has moved on,
	// exactly how a hostile host rewrites in-flight entries).
	if err := sp.PutU64(mem.RoleHost, fm.SlotAddr(0), 1<<40); err != nil {
		t.Fatal(err)
	}

	// The frozen snapshot still decodes the fetched value, while the old
	// read-it-again pattern would now see the scribble.
	if got := snap.U64(0); got != 64 {
		t.Fatalf("snapshot changed under scribble: U64 = %d, want 64", got)
	}
	if live, _ := fm.ReadU64(0); live != 1<<40 {
		t.Fatalf("live slot = %d, want %d", live, uint64(1)<<40)
	}
}
