package tm

import (
	"strings"
	"testing"

	"rakis/internal/ring"
)

// TestVerifyRingBatched exhaustively enumerates batched produce/consume
// transitions for widths 1..4 over size-2 and size-4 rings, from a zero
// base and from a base two below the u32 maximum (every published run
// crosses the wrap), interleaved with the shared adversary partition.
func TestVerifyRingBatched(t *testing.T) {
	for _, side := range []ring.Side{ring.Producer, ring.Consumer} {
		for _, size := range []uint32{2, 4} {
			for _, base := range []uint32{0, ^uint32(0) - 2} {
				rep := VerifyRingBatched(side, size, base, 3)
				t.Log(rep.String())
				if !rep.OK() {
					t.Errorf("%s: %v", rep.Name, rep.Violations[:min(3, len(rep.Violations))])
				}
				if rep.Paths < 1000 {
					t.Errorf("%s: exploration too shallow: %d paths", rep.Name, rep.Paths)
				}
				if rep.States < 5 {
					t.Errorf("%s: exploration too narrow: %d states", rep.Name, rep.States)
				}
			}
		}
	}
}

// The batched explorer must reach wider runs than the scalar model's
// single-step advances: a width-4 batch over a size-4 ring publishes the
// full window in one index advance, which the state set must witness as
// a local-index jump of the whole ring size.
func TestVerifyRingBatchedReachesFullWindowPublish(t *testing.T) {
	m := &batchModel{
		size: 4, side: ring.Producer, base: 0, depth: 2,
		states: make(map[[3]uint32]bool),
	}
	m.explore(nil)
	full := false
	for s := range m.states {
		if s[0] == 4 { // local advanced by the whole window in ≤2 ops
			full = true
		}
	}
	if !full {
		t.Fatal("batched exploration never published a full-window run")
	}
	if !(Report{Violations: m.violations}).OK() {
		t.Fatalf("violations: %v", m.violations[:min(3, len(m.violations))])
	}
}

// A ring with the Table 2 checks disabled must FAIL batched verification
// — the batched model inherits the scalar model's obligation to catch
// the libxdp-style unchecked-index bug, now with whole runs sized by the
// hostile count.
func TestBatchedVerifierCatchesUncertifiedRing(t *testing.T) {
	m := &batchModel{
		size: 4, side: ring.Consumer, base: 0, depth: 2,
		states:      make(map[[3]uint32]bool),
		uncertified: true,
	}
	m.explore(nil)
	found := false
	for _, v := range m.violations {
		if strings.Contains(v, "count") || strings.Contains(v, "invariant") {
			found = true
		}
	}
	if !found {
		t.Fatal("batched verifier failed to flag the unchecked-ring vulnerability")
	}
}
