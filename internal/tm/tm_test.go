package tm

import (
	"strings"
	"testing"

	"rakis/internal/iouring"
	"rakis/internal/ring"
)

// The Table 2 ring check is a single modular comparison, 0 ≤ Pt−Ct ≤ St,
// so its outcome can only change at the window edges. The adversary
// partition must therefore include representatives with Pt−Ct exactly
// 0, St, and St+1 — and must keep including them when the indices sit
// at the u32 wraparound boundary, where a naive (non-modular) partition
// would miss them.
func TestAdversaryClassesCoverWindowEdges(t *testing.T) {
	const size = 4
	bases := []uint32{
		0,                 // fresh ring
		5,                 // mid-range
		^uint32(0) - 2,    // local+size wraps past zero
		^uint32(0) - size, // local+size lands exactly on max
		^uint32(0),        // local itself at max
	}
	for _, local := range bases {
		classes := AdversaryClasses(local, size)
		// diffs this partition reaches, in u32 modular arithmetic.
		diffs := make(map[uint32]bool, len(classes))
		for _, v := range classes {
			diffs[v-local] = true
		}
		for _, want := range []uint32{0, size, size + 1} {
			if !diffs[want] {
				t.Errorf("base %#x: partition misses Pt-Ct = %d", local, want)
			}
		}
		// The refusal edge must also be approached from below.
		if !diffs[size-1] {
			t.Errorf("base %#x: partition misses Pt-Ct = %d (last admissible)", local, size-1)
		}
	}
}

// A deliberately broken FM completion validator must FAIL verification:
// if the explorer cannot distinguish a validator that accepts everything
// from the real one, its CQE coverage is vacuous.
func TestVerifierCatchesBrokenCQEValidator(t *testing.T) {
	broken := []struct {
		name string
		fn   func(iouring.SQE, int32) bool
	}{
		{"accept-everything", func(iouring.SQE, int32) bool { return true }},
		{"missing-length-bound", func(req iouring.SQE, res int32) bool {
			if res < 0 {
				return res > -4096
			}
			// Forgets that a transfer may not claim more bytes than
			// requested — the exfiltration-length check of Table 2.
			return true
		}},
		{"reject-everything", func(iouring.SQE, int32) bool { return false }},
	}
	for _, b := range broken {
		rep := VerifyCQEAgainst(b.fn)
		if rep.OK() {
			t.Errorf("%s: explorer failed to flag the broken validator", b.name)
		}
	}
	// And the real validator still verifies, so the failures above are
	// attributable to the injected faults.
	if rep := VerifyCQEAgainst(iouring.ResPlausibleForTest); !rep.OK() {
		t.Errorf("real validator flagged: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
}

func TestVerifyRingProducer(t *testing.T) {
	rep := VerifyRing(ring.Producer, 4, 0, 4)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
	if rep.Paths < 1000 {
		t.Fatalf("exploration too shallow: %d paths", rep.Paths)
	}
	if rep.States < 5 {
		t.Fatalf("exploration too narrow: %d states", rep.States)
	}
}

func TestVerifyRingConsumer(t *testing.T) {
	rep := VerifyRing(ring.Consumer, 4, 0, 4)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
}

func TestVerifyRingWraparoundBase(t *testing.T) {
	// Start two below the u32 maximum: every produced entry crosses the
	// wrap, the implementation edge case §4.1 discusses.
	for _, side := range []ring.Side{ring.Producer, ring.Consumer} {
		rep := VerifyRing(side, 4, ^uint32(0)-2, 4)
		if !rep.OK() {
			t.Fatalf("%v wraparound: %v", side, rep.Violations[:min(3, len(rep.Violations))])
		}
	}
}

func TestVerifyUMem(t *testing.T) {
	rep := VerifyUMem(3, 3)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
	if rep.Paths < 1000 {
		t.Fatalf("exploration too shallow: %d paths", rep.Paths)
	}
}

func TestVerifyCQE(t *testing.T) {
	rep := VerifyCQE()
	if !rep.OK() {
		t.Fatalf("validator disagrees with oracle: %v", rep.Violations)
	}
}

func TestVerifyAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification sweep")
	}
	for _, rep := range VerifyAll(4) {
		t.Log(rep.String())
		if !rep.OK() {
			t.Errorf("%s: %v", rep.Name, rep.Violations[:min(3, len(rep.Violations))])
		}
	}
}

// A deliberately broken ring (checks disabled) must FAIL verification:
// the model checker's job is to catch exactly the libxdp-style bug.
func TestVerifierCatchesUncertifiedRing(t *testing.T) {
	m := &ringModel{
		size: 4, side: ring.Consumer, base: 0, depth: 2,
		states:      make(map[[3]uint32]bool),
		uncertified: true,
	}
	m.explore(nil)
	found := false
	for _, v := range m.violations {
		if strings.Contains(v, "count") || strings.Contains(v, "invariant") {
			found = true
		}
	}
	if !found {
		t.Fatal("verifier failed to flag the unchecked-ring vulnerability")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
