package tm

import (
	"strings"
	"testing"

	"rakis/internal/ring"
)

func TestVerifyRingProducer(t *testing.T) {
	rep := VerifyRing(ring.Producer, 4, 0, 4)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
	if rep.Paths < 1000 {
		t.Fatalf("exploration too shallow: %d paths", rep.Paths)
	}
	if rep.States < 5 {
		t.Fatalf("exploration too narrow: %d states", rep.States)
	}
}

func TestVerifyRingConsumer(t *testing.T) {
	rep := VerifyRing(ring.Consumer, 4, 0, 4)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
}

func TestVerifyRingWraparoundBase(t *testing.T) {
	// Start two below the u32 maximum: every produced entry crosses the
	// wrap, the implementation edge case §4.1 discusses.
	for _, side := range []ring.Side{ring.Producer, ring.Consumer} {
		rep := VerifyRing(side, 4, ^uint32(0)-2, 4)
		if !rep.OK() {
			t.Fatalf("%v wraparound: %v", side, rep.Violations[:min(3, len(rep.Violations))])
		}
	}
}

func TestVerifyUMem(t *testing.T) {
	rep := VerifyUMem(3, 3)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations[:min(3, len(rep.Violations))])
	}
	if rep.Paths < 1000 {
		t.Fatalf("exploration too shallow: %d paths", rep.Paths)
	}
}

func TestVerifyCQE(t *testing.T) {
	rep := VerifyCQE()
	if !rep.OK() {
		t.Fatalf("validator disagrees with oracle: %v", rep.Violations)
	}
}

func TestVerifyAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification sweep")
	}
	for _, rep := range VerifyAll(4) {
		t.Log(rep.String())
		if !rep.OK() {
			t.Errorf("%s: %v", rep.Name, rep.Violations[:min(3, len(rep.Violations))])
		}
	}
}

// A deliberately broken ring (checks disabled) must FAIL verification:
// the model checker's job is to catch exactly the libxdp-style bug.
func TestVerifierCatchesUncertifiedRing(t *testing.T) {
	m := &ringModel{
		size: 4, side: ring.Consumer, base: 0, depth: 2,
		states:      make(map[[3]uint32]bool),
		uncertified: true,
	}
	m.explore(nil)
	found := false
	for _, v := range m.violations {
		if strings.Contains(v, "count") || strings.Contains(v, "invariant") {
			found = true
		}
	}
	if !found {
		t.Fatal("verifier failed to flag the unchecked-ring vulnerability")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
