// Package tm is the Testing Module (§5): the verification side of RAKIS's
// security-by-design approach.
//
// The paper model-checks the FastPath Module with KLEE, marking all
// host-OS-provided memory symbolic and asserting that the trusted ring
// state satisfies
//
//	∀R : {Pt, Ct, St},  0 ≤ (Pt − Ct) ≤ St          (1)
//
// before and after every ring operation, and that every untrusted memory
// access lands inside a predeclared untrusted object. KLEE's contribution
// is exhaustively covering the adversary-controlled inputs; this package
// achieves the same coverage by explicit-state exploration: untrusted
// control words take every value in an equivalence-class partition of the
// u32 space (the classes are chosen so that within a class the FM's
// comparisons cannot change outcome — including the wraparound
// boundaries), interleaved with every FM operation, to a bounded depth.
// The UMem allocator and the CQE validator are explored the same way.
//
// cmd/rakis-verify is the verification binary; the tests in this package
// run the same exploration under `go test`.
package tm

import (
	"fmt"

	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/umem"
	"rakis/internal/vtime"
)

// Report is one exploration's outcome.
type Report struct {
	// Name identifies the model.
	Name string
	// Paths is the number of operation sequences explored.
	Paths int
	// States is the number of distinct post-states observed.
	States int
	// Violations lists every invariant breach found (empty on success).
	Violations []string
}

// OK reports whether the exploration found no violations.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// String summarizes the report.
func (r Report) String() string {
	status := "verified"
	if !r.OK() {
		status = fmt.Sprintf("%d VIOLATIONS", len(r.Violations))
	}
	return fmt.Sprintf("%-28s %8d paths %8d states  %s", r.Name, r.Paths, r.States, status)
}

// AdversaryClasses returns the u32 equivalence-class representatives for
// an untrusted index, relative to the trusted local index: in-window
// values, both window boundaries, off-by-one beyond them, wraparound
// boundary values, and extremes.
//
// This table is shared by the model checker (here and cmd/rakis-verify)
// and the chaos injector (internal/chaos), so the values the checker
// proves refused and the values chaos scribbles at runtime cannot drift
// apart.
func AdversaryClasses(local, size uint32) []uint32 {
	return []uint32{
		local,            // no progress
		local + 1,        // minimal progress
		local + size - 1, // just inside the window
		local + size,     // exactly the window
		local + size + 1, // one beyond: must be refused
		local - 1,        // regression: must be refused
		local - size,     // deep regression
		local + 1<<31,    // half-space away
		0,                // absolute zero
		^uint32(0),       // absolute max
	}
}

// ringModel explores one certified ring side.
type ringModel struct {
	size  uint32
	side  ring.Side
	base  uint32 // starting index value (to cover wraparound starts)
	depth int
	// uncertified disables the Table 2 checks: the negative control the
	// verifier must flag (the libxdp bug, §5).
	uncertified bool

	paths      int
	states     map[[3]uint32]bool
	violations []string
}

// VerifyRing explores the certified ring for one side and start base.
func VerifyRing(side ring.Side, size uint32, startBase uint32, depth int) Report {
	m := &ringModel{
		size: size, side: side, base: startBase, depth: depth,
		states: make(map[[3]uint32]bool),
	}
	m.explore(nil)
	name := fmt.Sprintf("ring/%v size=%d base=%#x", side, size, startBase)
	return Report{Name: name, Paths: m.paths, States: len(m.states), Violations: m.violations}
}

// step is one transition: either an adversary write or an FM operation.
type step struct {
	adversary bool
	value     uint32 // adversary: the untrusted index value written
	op        int    // FM: 0 = refresh counts, 1 = advance by 1, 2 = advance by max
}

// explore runs DFS over step sequences, replaying each path on a fresh
// ring (the FM code under test is the real implementation, not a model).
func (m *ringModel) explore(prefix []step) {
	if len(prefix) == int(m.depth) {
		return
	}
	// Enumerate next steps: adversary classes require the current local
	// index, so replay the prefix first to learn it.
	r, _, ok := m.replay(prefix)
	if !ok {
		return
	}
	local := r.Local()
	var nexts []step
	for _, v := range AdversaryClasses(local, m.size) {
		nexts = append(nexts, step{adversary: true, value: v})
	}
	for op := 0; op < 3; op++ {
		nexts = append(nexts, step{op: op})
	}
	for _, s := range nexts {
		path := append(append([]step(nil), prefix...), s)
		m.check(path)
		m.explore(path)
	}
}

// replay builds a fresh ring pair and applies the steps.
func (m *ringModel) replay(path []step) (*ring.Ring, *mem.Space, bool) {
	sp := mem.NewSpace(256, 4096)
	base, err := sp.Alloc(mem.Untrusted, ring.TotalBytes(m.size, 8), 64)
	if err != nil {
		m.violations = append(m.violations, "alloc: "+err.Error())
		return nil, nil, false
	}
	r, err := ring.New(ring.Config{
		Space: sp, Access: mem.RoleEnclave, Base: base,
		Size: m.size, EntrySize: 8, Side: m.side, Certified: !m.uncertified,
	})
	if err != nil {
		m.violations = append(m.violations, "new: "+err.Error())
		return nil, nil, false
	}
	// Start both indices at the chosen base (covers wrap starts).
	r.Seed(m.base)
	for _, s := range path {
		m.apply(r, sp, s)
	}
	return r, sp, true
}

// peerCellAddr returns the shared cell the adversary scribbles: the
// producer word when the FM consumes, the consumer word when it produces.
func (m *ringModel) peerCellAddr(r *ring.Ring) mem.Addr {
	if m.side == ring.Consumer {
		return r.Base() // producer index at +0
	}
	return r.Base() + 4 // consumer index at +4
}

// apply performs one step against the real implementation.
func (m *ringModel) apply(r *ring.Ring, sp *mem.Space, s step) {
	if s.adversary {
		cell, err := sp.Atomic32(mem.RoleHost, m.peerCellAddr(r))
		if err == nil {
			cell.Store(s.value)
		}
		return
	}
	// Slot loops touch at most one lap: beyond size the masked slot
	// addresses repeat, so extra iterations cover no new state — and an
	// uncertified ring (the negative control) can report counts in the
	// billions, which executed literally would stall the explorer. The
	// hostile count still advances the index in full via Submit/Release,
	// which is exactly what check() must flag.
	lap := func(n uint32) uint32 {
		if n > r.Size() {
			return r.Size()
		}
		return n
	}
	switch m.side {
	case ring.Producer:
		free, _ := r.Free()
		switch s.op {
		case 1:
			if free > 0 {
				r.WriteU64(0, 0xABCD)
				r.Submit(1, 0)
			}
		case 2:
			for i := uint32(0); i < lap(free); i++ {
				r.WriteU64(i, uint64(i))
			}
			if free > 0 {
				r.Submit(free, 0)
			}
		}
	case ring.Consumer:
		avail, _ := r.Available()
		switch s.op {
		case 1:
			if avail > 0 {
				r.ReadU64(0)
				r.Release(1)
			}
		case 2:
			for i := uint32(0); i < lap(avail); i++ {
				r.ReadU64(i)
			}
			if avail > 0 {
				r.Release(avail)
			}
		}
	}
}

// check replays a path and asserts the model constraints, recording the
// resulting state.
func (m *ringModel) check(path []step) {
	m.paths++
	r, sp, ok := m.replay(path)
	if !ok {
		return
	}
	// Constraint (1): the trusted invariant.
	if !r.InvariantHolds() {
		m.violations = append(m.violations,
			fmt.Sprintf("invariant broken after %v: local=%d peer=%d", path, r.Local(), r.Peer()))
	}
	// Counts must never exceed the trusted size.
	var count uint32
	if m.side == ring.Producer {
		count, _ = r.Free()
	} else {
		count, _ = r.Available()
	}
	if count > m.size {
		m.violations = append(m.violations,
			fmt.Sprintf("count %d exceeds size %d after %v", count, m.size, path))
	}
	// Memory-access constraint: every slot the FM could touch next lies
	// inside the untrusted ring object.
	for i := uint32(0); i < count && i < m.size; i++ {
		if err := sp.Check(mem.RoleEnclave, r.SlotAddr(i), 8); err != nil {
			m.violations = append(m.violations,
				fmt.Sprintf("slot %d escapes the ring object after %v: %v", i, path, err))
		}
		if !sp.InUntrusted(r.SlotAddr(i), 8) {
			m.violations = append(m.violations,
				fmt.Sprintf("slot %d not in untrusted memory after %v", i, path))
		}
	}
	m.states[[3]uint32{r.Local(), r.Peer(), count}] = true
}

// VerifyUMem explores the frame allocator against adversarial consumed
// offsets.
func VerifyUMem(frames uint32, depth int) Report {
	rep := Report{Name: fmt.Sprintf("umem frames=%d", frames)}
	states := map[string]bool{}

	type ustep struct {
		alloc   bool
		routine umem.Owner
		off     uint64
		length  uint32
	}
	offClasses := func(u *umem.UMem) []uint64 {
		fs := uint64(u.FrameSize())
		return []uint64{
			0,               // frame 0 start
			fs + fs/2,       // mid frame 1
			u.Size() - 1,    // last byte
			u.Size(),        // one past the end
			^uint64(0) - fs, // extreme
		}
	}
	lenClasses := func(u *umem.UMem) []uint32 {
		return []uint32{0, u.FrameSize() / 2, u.FrameSize() + 1}
	}

	var explore func(prefix []ustep)
	replay := func(path []ustep) *umem.UMem {
		sp := mem.NewSpace(256, 4096)
		base, _ := sp.Alloc(mem.Untrusted, uint64(frames)*128, 128)
		u, err := umem.New(umem.Config{Space: sp, Base: base, FrameSize: 128, FrameCount: frames})
		if err != nil {
			rep.Violations = append(rep.Violations, err.Error())
			return nil
		}
		for _, s := range path {
			if s.alloc {
				u.Alloc(s.routine)
			} else {
				u.ValidateConsumed(s.routine, s.off, s.length)
			}
		}
		return u
	}
	explore = func(prefix []ustep) {
		if len(prefix) == depth {
			return
		}
		u := replay(prefix)
		if u == nil {
			return
		}
		var nexts []ustep
		for _, rt := range []umem.Owner{umem.OwnerFill, umem.OwnerTx} {
			nexts = append(nexts, ustep{alloc: true, routine: rt})
			for _, off := range offClasses(u) {
				for _, l := range lenClasses(u) {
					nexts = append(nexts, ustep{routine: rt, off: off, length: l})
				}
			}
		}
		for _, s := range nexts {
			path := append(append([]ustep(nil), prefix...), s)
			rep.Paths++
			u2 := replay(path)
			if u2 == nil {
				continue
			}
			if !u2.InvariantHolds() {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("umem invariant broken after %+v", path))
			}
			if u2.FreeFrames() > int(frames) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("free pool %d exceeds %d after %+v", u2.FreeFrames(), frames, path))
			}
			key := fmt.Sprintf("%d", u2.FreeFrames())
			states[key] = true
			explore(path)
		}
	}
	explore(nil)
	rep.States = len(states)
	return rep
}

// VerifyCQE exhaustively checks the FM's completion validator against an
// independent statement of the Table 2 rule for every operation class.
func VerifyCQE() Report {
	return VerifyCQEAgainst(iouring.ResPlausibleForTest)
}

// VerifyCQEAgainst runs the CQE exploration against an arbitrary
// validator implementation. Substituting a deliberately broken validator
// lets the Testing Module's own tests confirm the explorer detects a
// defective FM check rather than vacuously passing (§5.1's
// fault-injection sanity check).
func VerifyCQEAgainst(validate func(iouring.SQE, int32) bool) Report {
	rep := Report{Name: "iouring CQE validation"}
	reqLens := []uint32{0, 1, 100, 65536}
	ops := []iouring.Op{
		iouring.OpNop, iouring.OpRead, iouring.OpWrite, iouring.OpSend,
		iouring.OpRecv, iouring.OpPollAdd, iouring.OpPollRemove, iouring.OpFsync,
	}
	for _, op := range ops {
		for _, l := range reqLens {
			for _, res := range ResultClasses(l) {
				rep.Paths++
				got := validate(iouring.SQE{Op: op, Len: l, OpFlags: uint32(iouring.PollIn)}, res)
				want := oracle(op, l, res)
				if got != want {
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("op=%v len=%d res=%d: validator=%v oracle=%v", op, l, res, got, want))
				}
			}
		}
	}
	rep.States = rep.Paths
	return rep
}

// ResultClasses returns the int32 equivalence-class representatives for a
// hostile CQE result field, relative to the request length: implausible
// and plausible errnos, zero, around-the-length boundaries, and extremes.
// Shared with the chaos injector the same way as AdversaryClasses.
func ResultClasses(reqLen uint32) []int32 {
	return []int32{
		-200000, -4096, -4095, -32, -1,
		0, 1, int32(reqLen) - 1, int32(reqLen), int32(reqLen) + 1,
		1 << 20, 1<<31 - 1,
	}
}

// oracle is the independent spec: errors must be sane errnos; transfer
// results must not exceed the request; poll may only report requested
// events plus error/hangup; control ops return zero.
func oracle(op iouring.Op, reqLen uint32, res int32) bool {
	if res < 0 {
		return res > -4096
	}
	switch op {
	case iouring.OpRead, iouring.OpWrite, iouring.OpSend, iouring.OpRecv:
		return uint32(res) <= reqLen
	case iouring.OpPollAdd:
		allowed := uint32(iouring.PollIn) | 0x18
		return uint32(res)&^allowed == 0
	default:
		return res == 0
	}
}

// VerifyAll runs the full §5.1 suite: both ring sides from both a zero
// base and a near-wraparound base, the UMem allocator, and the CQE
// validator.
func VerifyAll(depth int) []Report {
	if depth <= 0 {
		depth = 4
	}
	// The batched models run one level shallower: each of their steps is
	// a whole run (up to maxModelBatch sub-steps, each asserted), so the
	// same interleaving coverage costs fewer explicit steps.
	bdepth := depth - 1
	if bdepth < 2 {
		bdepth = 2
	}
	return []Report{
		VerifyRing(ring.Producer, 4, 0, depth),
		VerifyRing(ring.Consumer, 4, 0, depth),
		VerifyRing(ring.Producer, 4, ^uint32(0)-2, depth),
		VerifyRing(ring.Consumer, 4, ^uint32(0)-2, depth),
		VerifyRingBatched(ring.Producer, 4, 0, bdepth),
		VerifyRingBatched(ring.Consumer, 4, 0, bdepth),
		VerifyRingBatched(ring.Producer, 4, ^uint32(0)-2, bdepth),
		VerifyRingBatched(ring.Consumer, 4, ^uint32(0)-2, bdepth),
		VerifyUMem(3, 3),
		VerifyCQE(),
	}
}

// silence unused-import until vtime is needed by future models.
var _ = vtime.Default
