package tm

import (
	"fmt"

	"rakis/internal/mem"
	"rakis/internal/ring"
)

// This file extends the Testing Module to the batched ring discipline the
// SendBatch/RecvBatch/SubmitN fast paths follow (§4.1 applied to whole
// descriptor runs): ONE certified count read sizes the run, up to k slots
// are written or read against that one certification, and ONE index
// publish exposes the entire run. The scalar model's per-operation
// assertion points are not enough here — a batched path could hold the
// invariants at its operation boundaries while violating them between
// slot accesses — so this model asserts the certified-index invariant and
// the slot-placement constraint after every sub-step of every batched
// operation.

// maxModelBatch is the largest batch width the explorer enumerates.
// Widths beyond the ring size add no new slot-index states (the run is
// clamped to the certified count, itself bounded by the size), so 1..4
// over size-2 and size-4 rings covers every partition: partial runs,
// exact-fit runs, and clamped over-asks, on both sides of a wrap.
const maxModelBatch = 4

// batchStep is one transition: an adversary write to the peer-owned
// shared cell, or a batched FM operation of width k (k == 0 is a bare
// certified count refresh, the degenerate batch).
type batchStep struct {
	adversary bool
	value     uint32
	k         uint32
}

type batchModel struct {
	size uint32
	side ring.Side
	base uint32
	// depth bounds the explored step-sequence length.
	depth int
	// uncertified disables the Table 2 checks: the negative control the
	// batched verifier must flag, like the scalar model's.
	uncertified bool

	paths      int
	states     map[[3]uint32]bool
	violations []string
}

// VerifyRingBatched exhaustively explores batched produce/consume
// transitions for widths 1..4 over a small ring, interleaved with
// adversary writes from the shared AdversaryClasses partition, asserting
// the certified-index invariant at every intermediate state: after the
// certification read, between every pair of slot accesses, and after the
// single publish.
func VerifyRingBatched(side ring.Side, size, startBase uint32, depth int) Report {
	m := &batchModel{
		size: size, side: side, base: startBase, depth: depth,
		states: make(map[[3]uint32]bool),
	}
	m.explore(nil)
	name := fmt.Sprintf("ring-batched/%v size=%d base=%#x", side, size, startBase)
	return Report{Name: name, Paths: m.paths, States: len(m.states), Violations: m.violations}
}

// explore runs DFS over step sequences, mirroring ringModel.explore: the
// adversary classes depend on the current local index, so each prefix is
// replayed (without assertion recording) to learn it.
func (m *batchModel) explore(prefix []batchStep) {
	if len(prefix) == m.depth {
		return
	}
	r, _, ok := m.replay(prefix, false)
	if !ok {
		return
	}
	local := r.Local()
	var nexts []batchStep
	for _, v := range AdversaryClasses(local, m.size) {
		nexts = append(nexts, batchStep{adversary: true, value: v})
	}
	for k := uint32(0); k <= maxModelBatch; k++ {
		nexts = append(nexts, batchStep{k: k})
	}
	for _, s := range nexts {
		path := append(append([]batchStep(nil), prefix...), s)
		m.check(path)
		m.explore(path)
	}
}

// replay builds a fresh ring and applies the steps; with record set,
// every sub-step asserts the invariants into m.violations.
func (m *batchModel) replay(path []batchStep, record bool) (*ring.Ring, *mem.Space, bool) {
	sp := mem.NewSpace(256, 4096)
	base, err := sp.Alloc(mem.Untrusted, ring.TotalBytes(m.size, 8), 64)
	if err != nil {
		m.violations = append(m.violations, "alloc: "+err.Error())
		return nil, nil, false
	}
	r, err := ring.New(ring.Config{
		Space: sp, Access: mem.RoleEnclave, Base: base,
		Size: m.size, EntrySize: 8, Side: m.side, Certified: !m.uncertified,
	})
	if err != nil {
		m.violations = append(m.violations, "new: "+err.Error())
		return nil, nil, false
	}
	r.Seed(m.base)
	for i, s := range path {
		m.apply(r, sp, s, record, i)
	}
	return r, sp, true
}

// peerCell is the shared word the adversary scribbles: the producer index
// when the FM consumes, the consumer index when it produces.
func (m *batchModel) peerCell(r *ring.Ring) mem.Addr {
	if m.side == ring.Consumer {
		return r.Base()
	}
	return r.Base() + 4
}

// mid asserts the certified-index invariant at one intermediate state.
func (m *batchModel) mid(r *ring.Ring, record bool, idx int, stage string) {
	if !record {
		return
	}
	if !r.InvariantHolds() {
		m.violations = append(m.violations,
			fmt.Sprintf("step %d %s: invariant broken: local=%d peer=%d", idx, stage, r.Local(), r.Peer()))
	}
}

// apply performs one step against the real ring implementation, following
// the exact shape of the batched fast paths: one certification read, k
// slot accesses, one publish.
func (m *batchModel) apply(r *ring.Ring, sp *mem.Space, s batchStep, record bool, idx int) {
	if s.adversary {
		cell, err := sp.Atomic32(mem.RoleHost, m.peerCell(r))
		if err == nil {
			cell.Store(s.value)
		}
		return
	}
	// The one certified read that sizes the whole run. A refused hostile
	// value pins the count at the last trusted state — the batch must
	// shrink, never trust.
	var count uint32
	if m.side == ring.Producer {
		count, _ = r.Free()
	} else {
		count, _ = r.Available()
	}
	if record && count > m.size {
		m.violations = append(m.violations,
			fmt.Sprintf("step %d: certified count %d exceeds size %d", idx, count, m.size))
	}
	m.mid(r, record, idx, "after count read")
	n := s.k
	if n > count {
		n = count
	}
	if n > r.Size() {
		// Lap bound, as in the scalar model: an uncertified ring can
		// report counts in the billions; the slot addresses repeat after
		// one lap, so extra iterations cover no new state.
		n = r.Size()
	}
	for i := uint32(0); i < n; i++ {
		// Every slot in the run must lie inside the untrusted ring object
		// — the batch certifies the whole run in one pass, so a single
		// out-of-object slot poisons it.
		if record {
			if err := sp.Check(mem.RoleEnclave, r.SlotAddr(i), 8); err != nil {
				m.violations = append(m.violations,
					fmt.Sprintf("step %d slot %d escapes the ring object: %v", idx, i, err))
			}
			if !sp.InUntrusted(r.SlotAddr(i), 8) {
				m.violations = append(m.violations,
					fmt.Sprintf("step %d slot %d not in untrusted memory", idx, i))
			}
		}
		if m.side == ring.Producer {
			r.WriteU64(i, uint64(i))
		} else {
			r.ReadU64(i)
		}
		m.mid(r, record, idx, fmt.Sprintf("after slot %d", i))
	}
	if n > 0 {
		// One publish for the whole run — the single producer/consumer
		// index advance the batched paths perform.
		if m.side == ring.Producer {
			r.Submit(n, 0)
		} else {
			r.Release(n)
		}
	}
	m.mid(r, record, idx, "after publish")
}

// check replays one full path with assertions armed and records the
// resulting state.
func (m *batchModel) check(path []batchStep) {
	m.paths++
	r, _, ok := m.replay(path, true)
	if !ok {
		return
	}
	var count uint32
	if m.side == ring.Producer {
		count, _ = r.Free()
	} else {
		count, _ = r.Available()
	}
	if count > m.size {
		m.violations = append(m.violations,
			fmt.Sprintf("final count %d exceeds size %d after %v", count, m.size, path))
	}
	m.states[[3]uint32{r.Local(), r.Peer(), count}] = true
}
