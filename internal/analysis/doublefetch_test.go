package analysis

import "testing"

func TestDoublefetchFixture(t *testing.T) {
	RunFixture(t, Doublefetch, "doublefetch")
}

// TestDoublefetchCleanOnModule is the fixture-freshness gate for the
// production tree: every real read site either fetches once or carries
// an audited waiver.
func TestDoublefetchCleanOnModule(t *testing.T) {
	assertCleanModule(t, Doublefetch)
}
