// Package a exercises the rolecheck analyzer with Monitor-Module-shaped
// host code: it may watch shared untrusted memory but must never
// construct enclave roles or address the trusted segment.
//
//rakis:role host
package a

import "rakis/internal/mem"

func allocateTrusted(sp *mem.Space) (mem.Addr, error) {
	return sp.Alloc(mem.Trusted, 64, 8) // want `host-role package must not use mem.Trusted`
}

func sneakyEnclaveRead(sp *mem.Space, a mem.Addr) ([]byte, error) {
	return sp.Bytes(mem.RoleEnclave, a, 16) // want `host-role package must not use mem.RoleEnclave`
}

func trustedBaseProbe(sp *mem.Space) error {
	return sp.Check(mem.RoleHost, mem.TrustedBase, 8) // want `host-role package must not use mem.TrustedBase`
}

func launderedRole(sp *mem.Space, r mem.Role, a mem.Addr) ([]byte, error) {
	return sp.Bytes(r, a, 16) // want `host-role package must pass the literal mem.RoleHost`
}

func legitimateHostAccess(sp *mem.Space, a mem.Addr) ([]byte, error) {
	return sp.Bytes(mem.RoleHost, a, 16) // ok
}
