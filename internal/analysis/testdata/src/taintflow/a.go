// Package a exercises the taintflow analyzer with FastPath-Module-shaped
// code: control words read from untrusted shared memory must pass a
// //rakis:validator function before steering indices, lengths, bounds,
// or address arithmetic.
//
//rakis:role enclave
package a

import (
	"sync/atomic"

	"rakis/internal/mem"
)

// readCtrl models reading a ring control word from untrusted memory.
//
//rakis:untrusted
func readCtrl() uint32 { return 0 }

// slotBytes models a view of an untrusted ring slot.
//
//rakis:untrusted
func slotBytes() []byte { return make([]byte, 8) }

// checkCtrl is the Table 2 window check.
//
//rakis:validator
func checkCtrl(v uint32) (uint32, bool) { return v, v < 64 }

var buf [64]byte

func unvalidatedIndex() byte {
	n := readCtrl()
	return buf[n] // want `untrusted value used as slice index`
}

func validatedIndex() byte {
	n := readCtrl()
	m, ok := checkCtrl(n)
	if !ok {
		return 0
	}
	return buf[m] // ok: validated
}

func validatedInPlace() byte {
	n := readCtrl()
	if _, ok := checkCtrl(n); !ok {
		return 0
	}
	return buf[n] // ok: n itself was validated
}

func unvalidatedMake() []byte {
	sz := readCtrl()
	return make([]byte, sz) // want `untrusted value used as make length`
}

func unvalidatedLoop() int {
	limit := readCtrl()
	s := 0
	for i := uint32(0); i < limit; i++ { // want `untrusted value used as loop bound`
		s++
	}
	return s
}

func unvalidatedOffset(base mem.Addr) mem.Addr {
	off := readCtrl()
	return base + mem.Addr(off) // want `untrusted value used as address offset`
}

func atomicWordIndex(cell *atomic.Uint32) byte {
	return buf[cell.Load()] // want `untrusted value used as slice index`
}

func unvalidatedSliceBound(p []byte) []byte {
	n := readCtrl()
	return p[:n] // want `untrusted value used as slice bound`
}

func taintThroughArithmetic() byte {
	n := readCtrl()
	i := n/2 + 1
	return buf[i] // want `untrusted value used as slice index`
}

func taintThroughSlotContents() byte {
	slot := slotBytes()
	j := slot[0]  // reading an element of an untrusted slice taints j
	return buf[j] // want `untrusted value used as slice index`
}

func mapKeysAreLookupsNotAccesses(m map[uint32]int) int {
	n := readCtrl()
	return m[n] // ok: a hostile key can only miss
}

func reassignmentKillsTaint() byte {
	n := readCtrl()
	n = 3
	return buf[n] // ok: overwritten with a trusted constant
}

func closureCapture() byte {
	n := readCtrl()
	f := func() byte {
		return buf[n] // want `untrusted value used as slice index`
	}
	return f()
}

func methodValueLaunder(cell *atomic.Uint32) byte {
	// Storing the bound method does not launder the source: calling it
	// is still an untrusted read.
	load := cell.Load
	return buf[load()] // want `untrusted value used as slice index`
}

func resliceKeepsTaint() byte {
	slot := slotBytes()
	hdr := slot[:4]
	j := hdr[1]   // elements of a reslice of an untrusted view stay untrusted
	return buf[j] // want `untrusted value used as slice index`
}

func validatedMethodValue(cell *atomic.Uint32) byte {
	load := cell.Load
	n, ok := checkCtrl(load())
	if !ok {
		return 0
	}
	return buf[n] // ok: validated after the indirect read
}
