// Package a exercises the tunerinput analyzer with a control loop that
// tries to widen its input surface past the trusted telemetry registry:
// reaching into shared memory or unsafe would let a hostile host steer
// the knobs.
package a

import (
	"sync"   // ok: standard library
	"unsafe" // want `tuner package must not import unsafe`

	"rakis/internal/mem"       // want `tuner package must not import rakis/internal/mem`
	"rakis/internal/telemetry" // ok: the sanctioned trusted-side input
)

// hostSteeredInput sketches the attack the allowlist forbids: deciding a
// knob from a word the host can scribble.
func hostSteeredInput(sp *mem.Space, a mem.Addr) uint32 {
	v, _ := sp.U32(mem.RoleEnclave, a)
	return v
}

// trustedInput is the legitimate shape: counters accumulated inside the
// enclave.
func trustedInput(r *telemetry.Registry) (uint64, bool) {
	return r.Value("fm.batch.ops")
}

var mu sync.Mutex

var _ = unsafe.Sizeof(mu)
