// Package a exercises the doublefetch analyzer: untrusted locations
// must be fetched exactly once before validation or use.
//
//rakis:role enclave
package a

import (
	"sync/atomic"

	"rakis/internal/mem"
)

var cell atomic.Uint32
var buf [64]byte

//rakis:untrusted
func readCtrl() uint32 { return cell.Load() }

//rakis:untrusted
func slotBytes() []byte { return buf[:] }

//rakis:untrusted
func decode(b []byte) uint32 { return uint32(b[0]) }

//rakis:validator
func checkCtrl(v uint32) (uint32, bool) { return v % 64, v < 64 }

//rakis:validator
func checkSlot(b []byte) (uint32, bool) { return uint32(b[0]), true }

// snapSlot models a fetch-once helper: the single permitted read.
//
//rakis:untrusted
//rakis:snapshot
func snapSlot() []byte {
	out := make([]byte, 8)
	copy(out, buf[:8])
	return out
}

func sink(uint32) {}
func sinkB(byte)  {}
func put(b []byte, v uint32) { b[0] = byte(v) }

// --- rule 1: the same scalar location fetched at two sites ---

func doubleRead() {
	a := readCtrl()
	b := readCtrl() // want `untrusted location readCtrl\(\) fetched twice`
	sink(a + b)
}

func validateThenReRead() {
	v := cell.Load()
	if _, ok := checkCtrl(v); !ok {
		return
	}
	w := cell.Load() // want `re-read after a //rakis:validator call`
	sink(w)
}

func doubleSnap() {
	a := snapSlot()
	b := snapSlot() // want `untrusted location snapSlot\(\) fetched twice`
	sinkB(a[0] + b[0])
}

func methodValue() {
	load := cell.Load
	a := load()
	b := load() // want `untrusted location load\(\) fetched twice`
	sink(a + b)
}

func closureRead() {
	f := func() {
		a := readCtrl()
		b := readCtrl() // want `untrusted location readCtrl\(\) fetched twice`
		sink(a + b)
	}
	f()
}

// distinctLocations is clean: two different cells, one fetch each.
func distinctLocations(other *atomic.Uint32) {
	a := cell.Load()
	b := other.Load()
	sink(a + b)
}

// loopSingleSite is clean: one lexical fetch site, even if it executes
// many times.
func loopSingleSite() {
	for i := 0; i < 4; i++ {
		sink(readCtrl())
	}
}

// --- rule 2: live views read at conflicting sites ---

func doubleDecode() {
	s := slotBytes()
	x := decode(s)
	y := decode(s) // want `untrusted location slotBytes\(\) fetched twice`
	sink(x + y)
}

func decodeThenPeek() {
	s := slotBytes()
	v := decode(s)
	b := s[0] // want `untrusted location slotBytes\(\) fetched twice`
	sink(v + uint32(b))
}

func sameElementTwice() {
	s := slotBytes()
	a := s[3]
	b := s[3] // want `untrusted location slotBytes\(\) fetched twice`
	sinkB(a + b)
}

func resliceAlias() {
	s := slotBytes()
	hdr := s[:4]
	v := decode(hdr)
	w := decode(s) // want `untrusted location slotBytes\(\) fetched twice`
	sink(v + w)
}

func validateViewThenDecode() {
	s := slotBytes()
	if _, ok := checkSlot(s); !ok {
		return
	}
	v := decode(s) // want `re-read after a //rakis:validator call`
	sink(v)
}

// distinctElements is clean: different bytes, each fetched once.
func distinctElements() {
	s := slotBytes()
	a := s[0]
	b := s[1]
	sinkB(a + b)
}

// writePath is clean: stores into a view and handing it to an encoder
// are not fetches.
func writePath(v uint32) {
	s := slotBytes()
	s[0] = 1
	s[1] = byte(v)
	put(s, v)
}

// copyOnce is clean: one whole-view crossing into trusted memory.
func copyOnce() {
	var dst [8]byte
	s := slotBytes()
	copy(dst[:], s)
	sinkB(dst[0])
}

// --- rule 3: decisions taken directly on unsnapshotted reads ---

func unsnapshottedBranch() {
	if cell.Load()&1 != 0 { // want `branch condition decided by unsnapshotted untrusted read`
		sink(1)
	}
}

func unsnapshottedLoop() {
	for i := uint32(0); i < readCtrl(); i++ { // want `loop condition decided by unsnapshotted untrusted read`
		sink(i)
	}
}

func unsnapshottedIndex() {
	sinkB(buf[readCtrl()]) // want `slice index decided by unsnapshotted untrusted read`
}

func unsnapshottedMake() {
	b := make([]byte, readCtrl()) // want `make length decided by unsnapshotted untrusted read`
	_ = b
}

func unsnapshottedSwitch() {
	switch readCtrl() { // want `switch condition decided by unsnapshotted untrusted read`
	case 1:
		sink(1)
	}
}

// snapshottedBranch is clean: the fetch lands in a trusted local first
// and every later use reads the local.
func snapshottedBranch() {
	v := cell.Load()
	if v&1 != 0 {
		sink(v)
	}
}

// --- frozen snapshots and audited waivers ---

// frozenDecode is clean: mem.Snap decoders read the frozen trusted
// copy, so decoding twice is harmless.
func frozenDecode(s mem.Snap) uint32 {
	a := s.U32(0)
	b := s.U32(0)
	return a + b
}

// pollCell deliberately re-reads the shared word; the waiver carries
// its audit reason.
//
//rakis:singleread-ok spin loop re-polls the doorbell by design
func pollCell() {
	for cell.Load() == 0 {
	}
	sink(cell.Load())
}
