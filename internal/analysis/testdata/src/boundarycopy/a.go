// Package a exercises the boundarycopy analyzer with enclave-shaped
// code: shared-segment access must use the role-checked accessors with
// the literal enclave role, and exported entry points ingesting
// untrusted setup data must make a boundary-validation call.
//
//rakis:role enclave
package a

import (
	"unsafe" // want `enclave-role package imports unsafe`

	"rakis/internal/mem"
)

// Setup mirrors an untrusted FIOKP setup handoff.
type Setup struct {
	Base mem.Addr
}

// Config carries a Setup like the xsk/iouring configs do.
type Config struct {
	Space *mem.Space
	Setup Setup
}

// Attach ingests untrusted pointers without validating their placement.
func Attach(cfg Config) error { // want `exported boundary entry point Attach accepts untrusted setup`
	_, err := cfg.Space.Bytes(mem.RoleEnclave, cfg.Setup.Base, 16)
	return err
}

// AttachChecked performs the Table 2 placement validation first.
func AttachChecked(cfg Config) error {
	if !cfg.Space.InUntrusted(cfg.Setup.Base, 16) {
		return nil
	}
	_, err := cfg.Space.Bytes(mem.RoleEnclave, cfg.Setup.Base, 16)
	return err
}

// Peek reaches for shared memory with the wrong role constant.
func Peek(sp *mem.Space, a mem.Addr) ([]byte, error) { // want `exported boundary entry point Peek accepts untrusted setup`
	return sp.Bytes(mem.RoleHost, a, 16) // want `enclave-role package must pass the literal mem.RoleEnclave`
}

// EncodeWord is a pure encoder audited as boundary-safe.
//
//rakis:boundary-ok operates only on the caller-provided slot
func EncodeWord(b []byte, a mem.Addr) {
	b[0] = byte(a)
}

// helper is unexported: not an entry point.
func helper(sp *mem.Space, a mem.Addr) ([]byte, error) {
	return sp.Bytes(mem.RoleEnclave, a, 16)
}

// rawPeek bypasses the accessors entirely.
func rawPeek(p *byte) uintptr {
	return uintptr(unsafe.Pointer(p))
}
