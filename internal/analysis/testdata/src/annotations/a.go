// Package a exercises the annotations analyzer: the //rakis: directive
// surface must be well-formed.
//
//rakis:role enclave
package a

//rakis:trusted // want `unknown directive //rakis:trusted`

//rakis:role kernel // want `must be enclave or host`

// Bad waives the boundarycopy analyzer without an audit reason.
//
//rakis:boundary-ok // want `requires a reason`
func Bad() {}

// BadPoll waives the doublefetch analyzer without an audit reason.
//
//rakis:singleread-ok // want `requires a reason`
func BadPoll() {}

// Good carries its reason.
//
//rakis:boundary-ok encoder only writes; caller validates placement
func Good() {}

// GoodPoll carries its reason.
//
//rakis:singleread-ok spin loop re-polls the doorbell by design
func GoodPoll() {}

// Accessor directives on functions are effective and need no reason.
//
//rakis:untrusted
func readWord() uint32 { return 0 }

//rakis:validator
func check(v uint32) bool { return v < 64 }

//rakis:snapshot
func snap() []byte { return nil }

//rakis:validator // want `not in a function's doc comment`
type T struct{}

func body() {
	//rakis:untrusted // want `not in a function's doc comment`
	_ = readWord()
	_ = check(0)
	_ = snap()
	_ = T{}
}
