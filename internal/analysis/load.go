package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's import path (fixtures get a synthetic
	// one).
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's results for the files.
	Info *types.Info
	// Role is the package's trust role.
	Role Role

	imports []string
}

// World is a module-wide load: every in-module package parsed and
// type-checked, plus the annotation registries the analyzers consult.
// Cross-package annotations (e.g. umem.ValidateConsumed being a
// validator used from xsk) work because the whole module is loaded.
type World struct {
	// Fset is the file set shared by all packages.
	Fset *token.FileSet
	// Packages maps import path to loaded package.
	Packages map[string]*Package

	// Validators holds functions annotated //rakis:validator.
	Validators map[*types.Func]bool
	// Untrusted holds functions annotated //rakis:untrusted.
	Untrusted map[*types.Func]bool
	// BoundaryOK holds functions annotated //rakis:boundary-ok.
	BoundaryOK map[*types.Func]bool
	// Snapshots holds functions annotated //rakis:snapshot: they perform
	// the one permitted fetch of an untrusted location into trusted
	// storage (mem.Space.Snapshot, ring.SnapSlot) or decode a frozen
	// mem.Snap (xsk.SnapDesc, iouring.SnapCQE).
	Snapshots map[*types.Func]bool
	// SingleReadOK holds functions annotated //rakis:singleread-ok: the
	// doublefetch analyzer skips them (reason required, e.g. a polling
	// loop that re-checks a shared word by design).
	SingleReadOK map[*types.Func]bool

	std types.Importer
}

// worldImporter resolves imports during type checking: in-module
// packages from the world, everything else (the standard library) from
// the compiler's export data.
type worldImporter struct{ w *World }

func (wi worldImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := wi.w.Packages[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("import cycle or unchecked package %q", path)
		}
		return p.Types, nil
	}
	return wi.w.std.Import(path)
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// goList runs `go list -json` for the patterns in dir.
func goList(dir string, patterns ...string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package in the module rooted
// at (or above) dir and collects roles and annotations.
func LoadModule(dir string) (*World, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, "./...")
	if err != nil {
		return nil, err
	}
	w := &World{
		Fset:         token.NewFileSet(),
		Packages:     make(map[string]*Package),
		Validators:   make(map[*types.Func]bool),
		Untrusted:    make(map[*types.Func]bool),
		BoundaryOK:   make(map[*types.Func]bool),
		Snapshots:    make(map[*types.Func]bool),
		SingleReadOK: make(map[*types.Func]bool),
		std:          importer.Default(),
	}
	// Parse everything first so import resolution can topo-sort.
	for _, lp := range listed {
		pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, imports: lp.Imports}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(w.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Role = packageRole(pkg.ImportPath, pkg.Files)
		w.Packages[lp.ImportPath] = pkg
	}
	// Type-check in dependency order.
	for _, path := range w.topoOrder() {
		if err := w.check(w.Packages[path]); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// topoOrder returns module package paths with dependencies first.
func (w *World) topoOrder() []string {
	var paths []string
	for p := range w.Packages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	seen := make(map[string]bool)
	var order []string
	var visit func(string)
	visit = func(path string) {
		pkg, ok := w.Packages[path]
		if !ok || seen[path] {
			return
		}
		seen[path] = true
		for _, imp := range pkg.imports {
			visit(imp)
		}
		order = append(order, path)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}

// check type-checks one parsed package and registers its annotations.
func (w *World) check(pkg *Package) error {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer: worldImporter{w},
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(pkg.ImportPath, w.Fset, pkg.Files, pkg.Info)
	if len(errs) > 0 {
		return fmt.Errorf("typecheck %s: %v", pkg.ImportPath, errs[0])
	}
	if err != nil {
		return fmt.Errorf("typecheck %s: %v", pkg.ImportPath, err)
	}
	pkg.Types = tpkg
	w.registerAnnotations(pkg)
	return nil
}

// ResolvePatterns expands go list patterns (relative to dir) into the
// world's loaded packages, in stable order.
func ResolvePatterns(w *World, dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if p, ok := w.Packages[lp.ImportPath]; ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir loads a single out-of-module directory (an analysistest
// fixture) as a package with the given synthetic import path. The
// fixture may import module packages; its own annotations and role
// directive are honored.
func (w *World) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := w.Packages[importPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(w.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", e.Name(), err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg.Role = packageRole(importPath, pkg.Files)
	w.Packages[importPath] = pkg
	if err := w.check(pkg); err != nil {
		delete(w.Packages, importPath)
		return nil, err
	}
	return pkg, nil
}
