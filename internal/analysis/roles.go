package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Role is a package's position in the RAKIS trust model.
type Role uint8

const (
	// RoleNone marks packages outside the role discipline: dual-role
	// infrastructure (mem, ring, tm run code on both sides of the
	// boundary), tooling, and examples.
	RoleNone Role = iota
	// RoleEnclave marks trusted in-enclave code (the TCB): the FastPath
	// Modules, the Service Module, and the in-enclave stack.
	RoleEnclave
	// RoleHost marks untrusted host code: the simulated kernel and the
	// Monitor Module.
	RoleHost
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleEnclave:
		return "enclave"
	case RoleHost:
		return "host"
	default:
		return "none"
	}
}

// builtinRoles is the fallback classification for packages predating the
// //rakis:role directive. The directive, when present, wins.
var builtinRoles = map[string]Role{
	"rakis/internal/fm":       RoleEnclave,
	"rakis/internal/sm":       RoleEnclave,
	"rakis/internal/netstack": RoleEnclave,
	"rakis/internal/xsk":      RoleEnclave,
	"rakis/internal/iouring":  RoleEnclave,
	"rakis/internal/umem":     RoleEnclave,
	"rakis/internal/hostos":   RoleHost,
	"rakis/internal/mm":       RoleHost,
}

// directiveLines yields every //rakis: directive line in a comment group.
func directiveLines(g *ast.CommentGroup) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, c := range g.List {
		line := strings.TrimSpace(c.Text)
		if strings.HasPrefix(line, "//rakis:") {
			out = append(out, strings.TrimSpace(strings.TrimPrefix(line, "//")))
		}
	}
	return out
}

// fileRole extracts a //rakis:role directive from any comment in the
// file, conventionally placed in the package documentation.
func fileRole(f *ast.File) (Role, bool) {
	for _, g := range f.Comments {
		for _, d := range directiveLines(g) {
			switch d {
			case "rakis:role enclave":
				return RoleEnclave, true
			case "rakis:role host":
				return RoleHost, true
			}
		}
	}
	return RoleNone, false
}

// packageRole resolves a package's role: directive first, builtin table
// second.
func packageRole(importPath string, files []*ast.File) Role {
	for _, f := range files {
		if r, ok := fileRole(f); ok {
			return r
		}
	}
	return builtinRoles[importPath]
}

// funcAnnotation reports whether a function declaration's doc comment
// carries the given //rakis: directive (e.g. "rakis:validator").
func funcAnnotation(decl *ast.FuncDecl, directive string) bool {
	for _, d := range directiveLines(decl.Doc) {
		if d == directive || strings.HasPrefix(d, directive+" ") {
			return true
		}
	}
	return false
}

// annotationReason returns the text following a //rakis: directive in a
// function's doc comment — the audit reason required on escape-hatch
// annotations — and whether the directive is present at all.
func annotationReason(decl *ast.FuncDecl, directive string) (string, bool) {
	for _, d := range directiveLines(decl.Doc) {
		if d == directive {
			return "", true
		}
		if strings.HasPrefix(d, directive+" ") {
			return strings.TrimSpace(strings.TrimPrefix(d, directive+" ")), true
		}
	}
	return "", false
}

// registerAnnotations scans a type-checked package's declarations and
// records annotated functions into the world's registries.
func (w *World) registerAnnotations(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if funcAnnotation(fd, "rakis:validator") {
				w.Validators[obj] = true
			}
			if funcAnnotation(fd, "rakis:untrusted") {
				w.Untrusted[obj] = true
			}
			if funcAnnotation(fd, "rakis:boundary-ok") {
				w.BoundaryOK[obj] = true
			}
			if funcAnnotation(fd, "rakis:snapshot") {
				w.Snapshots[obj] = true
			}
			if funcAnnotation(fd, "rakis:singleread-ok") {
				w.SingleReadOK[obj] = true
			}
		}
	}
}

// memObject looks up a named object in rakis/internal/mem, or nil when
// the package is not loaded.
func (w *World) memObject(name string) types.Object {
	mem := w.Packages["rakis/internal/mem"]
	if mem == nil || mem.Types == nil {
		return nil
	}
	return mem.Types.Scope().Lookup(name)
}

// memAddrType returns the mem.Addr named type, or nil.
func (w *World) memAddrType() types.Type {
	obj := w.memObject("Addr")
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// isMemSpaceMethod reports whether fn is the named method on
// *mem.Space (or mem.Space).
func (w *World) isMemSpaceMethod(fn *types.Func, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "rakis/internal/mem" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Space" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return len(names) == 0
}
