// Package analysis statically enforces the RAKIS trust-boundary
// discipline: "never trust a value read from untrusted memory".
//
// The paper enforces the discipline dynamically — every untrusted ring
// control word passes a Table 2 check before use, and the Testing Module
// (internal/tm) model-checks those checks. Nothing, however, stops a
// future change from reading a producer index and using it as a copy
// length without validation. This package closes that gap at compile
// time with six analyzers, in the style of golang.org/x/tools/go/
// analysis (re-implemented on the standard library only, since this
// module is dependency-free):
//
//   - taintflow: in enclave-role packages, any value originating from an
//     untrusted-memory read must pass through a function annotated
//     //rakis:validator before being used as a slice index, make length,
//     loop bound, or address offset.
//   - doublefetch: untrusted shared-memory locations must be fetched
//     exactly once — into a trusted local or a mem.Snap — before
//     validation or use; re-reads (TOCTOU), validate-then-re-read, and
//     decisions taken directly on unsnapshotted reads are flagged.
//   - rolecheck: host-role packages must never construct
//     mem.RoleEnclave or reach for the trusted segment.
//   - boundarycopy: enclave-role packages must access shared memory
//     through the role-checked accessors with the literal
//     mem.RoleEnclave, never unsafe; and exported entry points that
//     ingest untrusted setup data (mem.Addr or Setup-typed parameters)
//     must perform a boundary-validation call.
//   - tunerinput: the self-tuning control loop (internal/tuner) may
//     consume only trusted-side telemetry — its imports are allowlisted
//     to the standard library plus rakis/internal/telemetry, so no host
//     scribble can ever become a tuner input.
//   - annotations: the //rakis: directive surface itself must be
//     well-formed — known directives only, valid role values, reasons on
//     every escape hatch, function directives placed where the loader
//     reads them.
//
// Packages and functions declare their part in the trust model with
// comment directives:
//
//	//rakis:role enclave    package runs inside the enclave (TCB)
//	//rakis:role host       package models the untrusted host
//	//rakis:untrusted       function result originates in untrusted memory
//	//rakis:validator       function validates untrusted values (Table 2)
//	//rakis:boundary-ok     exported boundary func audited as safe (reason required)
//	//rakis:snapshot        function performs the one permitted fetch of a location
//	//rakis:singleread-ok   function audited to re-read deliberately (reason required)
//
// cmd/rakis-lint is the multichecker driver; ci.sh runs it alongside the
// tier-1 tests.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one static check, mirroring the x/tools go/analysis shape.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the violation.
	Message string
}

// Pass carries one analyzer run over one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// World is the module-wide load (types, roles, annotations).
	World *World
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full trustlint suite.
func All() []*Analyzer {
	return []*Analyzer{Taintflow, Doublefetch, Rolecheck, Boundarycopy, Annotations, Tunerinput}
}

// Run applies the analyzers to the packages and returns the findings
// sorted by source position.
func Run(world *World, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, World: world, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := world.Fset.Position(diags[i].Pos), world.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// Format renders a diagnostic as file:line:col: message (analyzer).
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}
