package analysis

import "testing"

func TestTaintflowFixture(t *testing.T) {
	RunFixture(t, Taintflow, "taintflow")
}

// The linter must be quiet on the real tree: the FastPath Modules
// follow the dynamic discipline the pass encodes, so any diagnostic
// here is either a regression in the code or a false positive in the
// pass — both are bugs.
func TestTaintflowCleanOnModule(t *testing.T) {
	assertCleanModule(t, Taintflow)
}

// assertCleanModule runs one analyzer over every module package and
// fails on any finding.
func assertCleanModule(t *testing.T, a *Analyzer) {
	t.Helper()
	world, err := sharedWorld()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	var pkgs []*Package
	for path, p := range world.Packages {
		if len(path) >= 8 && path[:8] == "fixture/" {
			continue
		}
		pkgs = append(pkgs, p)
	}
	for _, d := range Run(world, pkgs, []*Analyzer{a}) {
		t.Errorf("unexpected finding in seed tree: %s", Format(world.Fset, d))
	}
}
