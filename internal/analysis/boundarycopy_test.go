package analysis

import "testing"

func TestBoundarycopyFixture(t *testing.T) {
	RunFixture(t, Boundarycopy, "boundarycopy")
}

func TestBoundarycopyCleanOnModule(t *testing.T) {
	assertCleanModule(t, Boundarycopy)
}

// The validator registry must contain the annotated Table 2 checks, or
// the entry-point rule would flag the real Attach functions.
func TestValidatorsRegistered(t *testing.T) {
	world, err := sharedWorld()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	want := map[string]bool{
		"InUntrusted":       false,
		"Check":             false,
		"Overlaps":          false,
		"ValidateConsumed":  false,
		"IntersectsTrusted": false,
	}
	for fn := range world.Validators {
		if _, ok := want[fn.Name()]; ok {
			want[fn.Name()] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("expected //rakis:validator annotation on %s", name)
		}
	}
	untrusted := map[string]bool{
		"GetDesc": false, "GetCQE": false, "ReadU64": false,
		"SlotBytes": false, "ProducerValue": false,
	}
	for fn := range world.Untrusted {
		if _, ok := untrusted[fn.Name()]; ok {
			untrusted[fn.Name()] = true
		}
	}
	for name, found := range untrusted {
		if !found {
			t.Errorf("expected //rakis:untrusted annotation on %s", name)
		}
	}
}
