package analysis

import (
	"go/ast"
	"go/types"
)

// Rolecheck enforces the host side of the SGX boundary statically: a
// host-role package models code the enclave must survive, so it may
// never construct mem.RoleEnclave, allocate or address the trusted
// segment, or pass a non-literal role to the mem.Space accessors. The
// dynamic analogue is mem.ErrProtected (the MEE abort page); this pass
// keeps the simulation honest by making such code unmergeable, not just
// unrunnable.
var Rolecheck = &Analyzer{
	Name: "rolecheck",
	Doc:  "host-role packages must not construct enclave roles or reach the trusted segment",
	Run:  runRolecheck,
}

func runRolecheck(pass *Pass) {
	if pass.Pkg.Role != RoleHost {
		return
	}
	banned := map[types.Object]string{}
	for _, name := range []string{"RoleEnclave", "Trusted", "TrustedBase"} {
		if obj := pass.World.memObject(name); obj != nil {
			banned[obj] = "mem." + name
		}
	}
	roleHost := pass.World.memObject("RoleHost")
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if name, ok := banned[info.Uses[n]]; ok {
					pass.Reportf(n.Pos(), "host-role package must not use %s", name)
				}
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if !pass.World.isMemSpaceMethod(fn) || len(n.Args) == 0 {
					return true
				}
				sig := fn.Type().(*types.Signature)
				if sig.Params().Len() == 0 {
					return true
				}
				// Role-mediated accessor: the role must be the literal
				// mem.RoleHost (RoleEnclave is reported by the ident
				// check above).
				first := sig.Params().At(0).Type()
				named, ok := first.(*types.Named)
				if !ok || named.Obj().Name() != "Role" || named.Obj().Pkg() == nil ||
					named.Obj().Pkg().Path() != "rakis/internal/mem" {
					return true
				}
				arg := ast.Unparen(n.Args[0])
				obj := usedObject(info, arg)
				if obj == roleHost {
					return true
				}
				if _, bannedConst := banned[obj]; bannedConst {
					return true // already reported at the ident
				}
				pass.Reportf(arg.Pos(), "host-role package must pass the literal mem.RoleHost to %s", fn.Name())
			}
			return true
		})
	}
}

// usedObject resolves an identifier or selector to its object.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
