package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Boundarycopy polices how enclave-role code touches the shared
// segments:
//
//  1. Every mem.Space accessor call must pass the literal
//     mem.RoleEnclave — a variable or host role would sidestep the
//     role-checked accessor discipline the trust argument rests on.
//  2. unsafe is banned in role-classified packages: raw pointer access
//     bypasses the segment bounds and role checks entirely.
//  3. Exported entry points that ingest untrusted setup data — a
//     parameter of type mem.Addr, a Setup struct, or a struct carrying
//     either — must perform a boundary-validation call (a
//     //rakis:validator function such as mem.Space.InUntrusted) in
//     their body, the Table 2 "initialization data" rule. Audited
//     exceptions carry //rakis:boundary-ok with a reason.
var Boundarycopy = &Analyzer{
	Name: "boundarycopy",
	Doc:  "segment access must go through role-checked accessors; boundary entry points must validate",
	Run:  runBoundarycopy,
}

func runBoundarycopy(pass *Pass) {
	if pass.Pkg.Role == RoleNone || pass.Pkg.ImportPath == "rakis/internal/mem" {
		return
	}
	checkUnsafeImports(pass)
	if pass.Pkg.Role == RoleEnclave {
		checkEnclaveRoleLiterals(pass)
		checkBoundaryEntryPoints(pass)
	}
}

// checkUnsafeImports flags unsafe in role-classified packages.
func checkUnsafeImports(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "unsafe" {
				pass.Reportf(imp.Pos(), "%s-role package imports unsafe, which bypasses the role-checked accessors", pass.Pkg.Role)
			}
		}
	}
}

// checkEnclaveRoleLiterals requires the literal mem.RoleEnclave in every
// role-mediated mem.Space accessor call.
func checkEnclaveRoleLiterals(pass *Pass) {
	info := pass.Pkg.Info
	roleEnclave := pass.World.memObject("RoleEnclave")
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if !pass.World.isMemSpaceMethod(fn) || len(call.Args) == 0 {
				return true
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 {
				return true
			}
			named, ok := sig.Params().At(0).Type().(*types.Named)
			if !ok || named.Obj().Name() != "Role" || named.Obj().Pkg() == nil ||
				named.Obj().Pkg().Path() != "rakis/internal/mem" {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			if usedObject(info, arg) != roleEnclave {
				pass.Reportf(arg.Pos(), "enclave-role package must pass the literal mem.RoleEnclave to %s", fn.Name())
			}
			return true
		})
	}
}

// paramIngestsBoundary reports whether a parameter type carries
// untrusted setup data: mem.Addr itself, a struct named Setup, or a
// struct with a field of either kind (one level deep, values only —
// handles like *iouring.Ring hold already-validated state).
func paramIngestsBoundary(w *World, tp types.Type) (string, bool) {
	addr := w.memAddrType()
	isAddr := func(t types.Type) bool { return addr != nil && types.Identical(t, addr) }
	isSetup := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Setup"
	}
	if isAddr(tp) {
		return "mem.Addr", true
	}
	if isSetup(tp) {
		return "a Setup struct", true
	}
	named, ok := tp.(*types.Named)
	if !ok {
		return "", false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isAddr(ft) || isSetup(ft) {
			return named.Obj().Name() + "." + st.Field(i).Name(), true
		}
	}
	return "", false
}

// checkBoundaryEntryPoints requires a validator call in exported
// enclave functions that accept untrusted setup parameters.
func checkBoundaryEntryPoints(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name == nil || !fd.Name.IsExported() {
				continue
			}
			if funcAnnotation(fd, "rakis:boundary-ok") || funcAnnotation(fd, "rakis:validator") {
				continue
			}
			if recv := receiverTypeName(fd); recv != "" && !ast.IsExported(recv) {
				continue // methods of unexported types are not entry points
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			var ingested string
			for i := 0; i < sig.Params().Len(); i++ {
				if what, ok := paramIngestsBoundary(pass.World, sig.Params().At(i).Type()); ok {
					ingested = what
					break
				}
			}
			if ingested == "" {
				continue
			}
			if bodyCallsValidator(pass, fd.Body) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"exported boundary entry point %s accepts untrusted setup (%s) but makes no //rakis:validator call",
				fd.Name.Name, ingested)
		}
	}
}

// receiverTypeName returns the receiver's type name, or "".
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	tp := fd.Recv.List[0].Type
	if star, ok := tp.(*ast.StarExpr); ok {
		tp = star.X
	}
	if id, ok := tp.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// bodyCallsValidator reports whether the body directly calls a
// //rakis:validator function.
func bodyCallsValidator(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.Pkg.Info, call); fn != nil && pass.World.Validators[fn] {
			found = true
		}
		return true
	})
	return found
}
