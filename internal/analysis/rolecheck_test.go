package analysis

import "testing"

func TestRolecheckFixture(t *testing.T) {
	RunFixture(t, Rolecheck, "rolecheck")
}

func TestRolecheckCleanOnModule(t *testing.T) {
	assertCleanModule(t, Rolecheck)
}

// The host packages must actually be classified — an empty role map
// would make rolecheck vacuously clean.
func TestHostPackagesClassified(t *testing.T) {
	world, err := sharedWorld()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, path := range []string{"rakis/internal/hostos", "rakis/internal/mm"} {
		pkg := world.Packages[path]
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		if pkg.Role != RoleHost {
			t.Errorf("%s: role = %v, want host", path, pkg.Role)
		}
	}
	for _, path := range []string{
		"rakis/internal/fm", "rakis/internal/sm", "rakis/internal/netstack",
		"rakis/internal/xsk", "rakis/internal/iouring", "rakis/internal/umem",
	} {
		pkg := world.Packages[path]
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		if pkg.Role != RoleEnclave {
			t.Errorf("%s: role = %v, want enclave", path, pkg.Role)
		}
	}
}
