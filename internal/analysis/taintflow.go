package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Taintflow enforces the Table 2 discipline statically: in enclave-role
// packages, values originating from untrusted memory — results of
// //rakis:untrusted functions (ring control-word and slot accessors,
// untrusted-segment reads) and of (*sync/atomic.Uint32).Load on shared
// cells — must pass through a //rakis:validator function before being
// used as a slice index, slice bound, make length, loop bound, or
// mem.Addr offset.
//
// The tracking is intentionally simple: function-local, flow in lexical
// order, no branch merging. A call to a validator with a tainted value
// among its arguments clears the taint of the argument roots (the
// refuse-paths of the seed code all `continue`/`return` before reuse,
// so straight-line clearing matches the real control flow). This trades
// soundness in contrived cases for zero-configuration precision on the
// patterns the FastPath Modules actually use.
var Taintflow = &Analyzer{
	Name: "taintflow",
	Doc:  "untrusted-memory reads must be validated before use as index, length, bound, or offset",
	Run:  runTaintflow,
}

func runTaintflow(pass *Pass) {
	if pass.Pkg.Role != RoleEnclave {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A validator's own body is the validation; untrusted
			// accessors decode raw bytes by design.
			if funcAnnotation(fd, "rakis:validator") || funcAnnotation(fd, "rakis:untrusted") {
				continue
			}
			t := &taintTracker{
				pass:     pass,
				info:     pass.Pkg.Info,
				tainted:  make(map[types.Object]bool),
				srcFuncs: make(map[types.Object]bool),
				reported: make(map[token.Pos]bool),
			}
			ast.Inspect(fd.Body, t.visit)
		}
	}
}

// taintTracker walks one function body in lexical order.
type taintTracker struct {
	pass    *Pass
	info    *types.Info
	tainted map[types.Object]bool
	// srcFuncs marks variables holding untrusted method values
	// (load := cell.Load): calling one is an untrusted read, so storing
	// the bound method does not launder the source.
	srcFuncs map[types.Object]bool
	reported map[token.Pos]bool
}

// report emits one finding per position.
func (t *taintTracker) report(pos token.Pos, sink string) {
	if t.reported[pos] {
		return
	}
	t.reported[pos] = true
	t.pass.Reportf(pos, "untrusted value used as %s without passing a //rakis:validator function", sink)
}

// calleeFunc resolves a call to its *types.Func, or nil for builtins,
// conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isAtomicU32Load reports whether fn is (*sync/atomic.Uint32).Load —
// the accessor for shared ring control cells handed out by
// mem.Space.Atomic32.
func isAtomicU32Load(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Load" || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Uint32"
}

// isSourceCall reports whether a call produces an untrusted value.
func (t *taintTracker) isSourceCall(call *ast.CallExpr) bool {
	fn := calleeFunc(t.info, call)
	if fn == nil {
		// Indirect call through a stored untrusted method value.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := t.info.Uses[id]; obj != nil && t.srcFuncs[obj] {
				return true
			}
		}
		return false
	}
	return t.pass.World.Untrusted[fn] || isAtomicU32Load(fn)
}

// isConversion reports whether a call expression is a type conversion
// and returns the target type.
func (t *taintTracker) isConversion(call *ast.CallExpr) (types.Type, bool) {
	tv, ok := t.info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// exprTainted reports whether any part of e carries untrusted taint.
func (t *taintTracker) exprTainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := t.info.Uses[e]; obj != nil {
			return t.tainted[obj]
		}
		if obj := t.info.Defs[e]; obj != nil {
			return t.tainted[obj]
		}
	case *ast.SelectorExpr:
		// x.f is tainted when its root variable is (coarse: field
		// granularity is the whole struct).
		if root := rootObject(t.info, e); root != nil {
			return t.tainted[root]
		}
	case *ast.CallExpr:
		if t.isSourceCall(e) {
			return true
		}
		if _, ok := t.isConversion(e); ok && len(e.Args) == 1 {
			return t.exprTainted(e.Args[0])
		}
		return false // results of ordinary calls are trusted
	case *ast.BinaryExpr:
		return t.exprTainted(e.X) || t.exprTainted(e.Y)
	case *ast.UnaryExpr:
		return t.exprTainted(e.X)
	case *ast.ParenExpr:
		return t.exprTainted(e.X)
	case *ast.StarExpr:
		return t.exprTainted(e.X)
	case *ast.IndexExpr:
		// An element of an untrusted slice is untrusted.
		return t.exprTainted(e.X)
	case *ast.SliceExpr:
		return t.exprTainted(e.X)
	case *ast.TypeAssertExpr:
		return t.exprTainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.exprTainted(el) {
				return true
			}
		}
	}
	return false
}

// rootObject returns the leftmost variable of a selector chain, or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}

// setTaint marks or clears the root object of an lvalue.
func (t *taintTracker) setTaint(lhs ast.Expr, tainted bool) {
	root := rootObject(t.info, lhs)
	if root == nil {
		return
	}
	if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex && !tainted {
		// arr[i] = clean does not launder the whole array.
		return
	}
	if tainted {
		t.tainted[root] = true
	} else if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		// Only a whole-variable assignment kills taint.
		delete(t.tainted, root)
	}
}

// isErrorType reports whether tp is the built-in error interface.
func isErrorType(tp types.Type) bool {
	return tp != nil && tp.String() == "error"
}

// clearValidatedArgs clears taint for every variable appearing in the
// arguments of a validator call.
func (t *taintTracker) clearValidatedArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := t.info.Uses[id]; obj != nil {
					delete(t.tainted, obj)
				}
			}
			return true
		})
	}
}

// visit handles one node in lexical (pre-)order.
func (t *taintTracker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(n.Lhs, n.Rhs)
	case *ast.GenDecl:
		for _, spec := range n.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			t.assign(lhs, vs.Values)
		}
	case *ast.RangeStmt:
		// Ranging over an untrusted slice yields untrusted elements;
		// the index is bounded by the (validated) slice length.
		if n.Value != nil {
			t.setTaint(n.Value, t.exprTainted(n.X))
		}
		if n.Key != nil {
			t.setTaint(n.Key, false)
		}
	case *ast.ForStmt:
		if n.Cond != nil {
			t.checkLoopBound(n.Cond)
		}
	case *ast.IndexExpr:
		// Sink: slice/array indexing (map keys are mere lookups).
		if tv, ok := t.info.Types[n.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				break
			}
		}
		if t.exprTainted(n.Index) {
			t.report(n.Index.Pos(), "slice index")
		}
	case *ast.SliceExpr:
		for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
			if bound != nil && t.exprTainted(bound) {
				t.report(bound.Pos(), "slice bound")
			}
		}
	case *ast.CallExpr:
		t.call(n)
	}
	return true
}

// assign applies taint transfer for an assignment.
func (t *taintTracker) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Tuple assignment from one call: every non-error result of an
		// untrusted source is tainted.
		src := t.exprTainted(rhs[0])
		for _, l := range lhs {
			tainted := src
			if tv, ok := t.info.Types[l]; ok && isErrorType(tv.Type) {
				tainted = false
			} else if id, ok := l.(*ast.Ident); ok {
				if obj := t.info.Defs[id]; obj != nil && isErrorType(obj.Type()) {
					tainted = false
				}
			}
			t.setTaint(l, tainted)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			t.setTaint(l, t.exprTainted(rhs[i]))
			t.trackMethodValue(l, rhs[i])
		}
	}
}

// trackMethodValue records whether l now holds an untrusted method
// value (load := cell.Load), so later indirect calls count as sources.
func (t *taintTracker) trackMethodValue(l, r ast.Expr) {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := t.info.Defs[id]
	if obj == nil {
		obj = t.info.Uses[id]
	}
	if obj == nil {
		return
	}
	delete(t.srcFuncs, obj)
	if se, ok := ast.Unparen(r).(*ast.SelectorExpr); ok {
		if sel, ok := t.info.Selections[se]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok &&
				(isAtomicU32Load(fn) || t.pass.World.Untrusted[fn]) {
				t.srcFuncs[obj] = true
			}
		}
	}
}

// checkLoopBound flags comparisons against tainted values in a for
// condition.
func (t *taintTracker) checkLoopBound(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
			if t.exprTainted(be.X) || t.exprTainted(be.Y) {
				t.report(be.Pos(), "loop bound")
			}
		}
		return true
	})
}

// call handles sinks and sanitizers at a call site.
func (t *taintTracker) call(call *ast.CallExpr) {
	// Sink: make([]T, n[, c]) with untrusted size.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := t.info.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args[1:] {
				if t.exprTainted(arg) {
					t.report(arg.Pos(), "make length")
				}
			}
			return
		}
	}
	// Sink: conversion of an untrusted integer to mem.Addr (address
	// offset arithmetic follows).
	if target, ok := t.isConversion(call); ok && len(call.Args) == 1 {
		if addr := t.pass.World.memAddrType(); addr != nil && types.Identical(target, addr) {
			if t.exprTainted(call.Args[0]) {
				t.report(call.Args[0].Pos(), "address offset")
			}
		}
		return
	}
	// Sanitizer: validator calls clear their argument roots.
	if fn := calleeFunc(t.info, call); fn != nil && t.pass.World.Validators[fn] {
		t.clearValidatedArgs(call)
	}
}
