package analysis

import (
	"path"
	"strings"
	"testing"
)

func TestTunerinputFixture(t *testing.T) {
	RunFixture(t, Tunerinput, "tunerinput")
}

func TestTunerinputCleanOnModule(t *testing.T) {
	assertCleanModule(t, Tunerinput)
}

// The real tuner package must be in the analyzer's scope — otherwise the
// clean-module assertion above is vacuous.
func TestTunerPackageCovered(t *testing.T) {
	world, err := sharedWorld()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	pkg := world.Packages["rakis/internal/tuner"]
	if pkg == nil {
		t.Fatal("package rakis/internal/tuner not loaded")
	}
	if !strings.Contains(path.Base(pkg.ImportPath), "tuner") {
		t.Fatalf("tuner package %s escapes the tunerinput scope match", pkg.ImportPath)
	}
}
