package analysis

import "testing"

func TestAnnotationsFixture(t *testing.T) {
	RunFixture(t, Annotations, "annotations")
}

// TestAnnotationsCleanOnModule keeps the production directive surface
// well-formed: known directives only, reasons on every escape hatch.
func TestAnnotationsCleanOnModule(t *testing.T) {
	assertCleanModule(t, Annotations)
}
