package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Doublefetch enforces the single-read discipline on untrusted shared
// memory: every location the host can scribble — ring control words,
// descriptor and CQE slots, UMem frames, wakeup flags — must be fetched
// exactly once into trusted storage (a local, a struct, a mem.Snap)
// before it is validated or used. The classic TOCTOU double-fetch reads
// a location, validates what it saw, then reads it again for use; the
// host wins the race by rewriting the bytes between the two reads.
//
// The analyzer is function-local and lexical, like taintflow, and
// reports three patterns:
//
//  1. The same untrusted location — identified by the source text of
//     its accessor call, e.g. `w.flags.Load()` or `r.Compl.SnapSlot(i)`
//     — fetched at two distinct sites in one function. When a
//     //rakis:validator call separates the sites, the message names the
//     validate-then-re-read TOCTOU explicitly.
//  2. A live untrusted view (a []byte returned by a //rakis:untrusted
//     accessor such as ring.SlotBytes or mem.Space.Bytes, possibly
//     resliced into derived variables) read at conflicting sites:
//     parsed whole more than once, parsed whole and then peeked at
//     element-wise, or the same element loaded twice. Reads are
//     whole-view consumptions (argument to an untrusted decoder or a
//     validator, the source of a copy, a range) and element loads;
//     writes into the view do not count.
//  3. A branch, loop, or switch condition, a slice index or bound, or
//     a make length decided directly by an untrusted fetch that was
//     never snapshotted into a trusted local — the decision and any
//     later use of "the same" value are separate fetches by
//     construction.
//
// Fetch-once helpers annotated //rakis:snapshot (mem.Space.Snapshot,
// ring.SnapSlot) count as single fetch sites; decoders over an already
// frozen mem.Snap (xsk.SnapDesc, iouring.SnapCQE, Snap.U32) read
// trusted storage and are exempt. Functions annotated
// //rakis:singleread-ok <reason> are skipped wholesale — the escape
// hatch for deliberate re-polling loops.
//
// Unlike taintflow, the pass runs on every role: the Monitor Module and
// the simulated kernel read shared words whose mid-decision change
// costs availability (a lost wakeup) even though it cannot cost
// integrity.
var Doublefetch = &Analyzer{
	Name: "doublefetch",
	Doc:  "untrusted shared-memory locations must be fetched exactly once before validation or use",
	Run:  runDoublefetch,
}

func runDoublefetch(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Untrusted accessors and snapshot helpers ARE the single
			// fetch; singleread-ok is the audited waiver.
			if funcAnnotation(fd, "rakis:untrusted") ||
				funcAnnotation(fd, "rakis:snapshot") ||
				funcAnnotation(fd, "rakis:singleread-ok") {
				continue
			}
			t := &fetchTracker{
				pass:     pass,
				info:     pass.Pkg.Info,
				fetches:  make(map[string]*readSite),
				aliases:  make(map[types.Object]string),
				views:    make(map[string][]readSite),
				srcFuncs: make(map[types.Object]bool),
				writes:   make(map[*ast.IndexExpr]bool),
				reported: make(map[token.Pos]bool),
			}
			t.collectWrites(fd.Body)
			ast.Inspect(fd.Body, t.visit)
		}
	}
}

// sourceKind classifies a call with respect to untrusted memory.
type sourceKind int

const (
	notSource    sourceKind = iota
	scalarFetch             // fetches a scalar or decoded struct from untrusted memory
	aliasProduce            // returns a live []byte alias of untrusted memory
)

// readSite is one lexical site that fetched or read a location.
type readSite struct {
	pos  token.Pos
	gen  int    // validator generation at the time of the read
	elem string // element key for view reads; "" means whole-view
}

// fetchTracker walks one function body in lexical order.
type fetchTracker struct {
	pass *Pass
	info *types.Info

	// fetches maps a scalar location key (call source text) to its
	// first fetch site.
	fetches map[string]*readSite
	// aliases maps variables to the location key of the live untrusted
	// view they alias (reslices share their root's key).
	aliases map[types.Object]string
	// views maps a location key to the read sites observed on it.
	views map[string][]readSite
	// srcFuncs marks variables holding untrusted method values
	// (load := cell.Load), whose calls are fetches.
	srcFuncs map[types.Object]bool
	// writes marks index expressions that are assignment targets.
	writes map[*ast.IndexExpr]bool
	// valGen counts validator calls seen so far; a re-read whose first
	// fetch predates the current generation is a validate-then-re-read.
	valGen int

	reported map[token.Pos]bool
}

// report emits at most one finding per position.
func (t *fetchTracker) report(pos token.Pos, format string, args ...any) {
	if t.reported[pos] {
		return
	}
	t.reported[pos] = true
	t.pass.Reportf(pos, format, args...)
}

// collectWrites records index expressions used as assignment targets,
// which are stores into a view, not fetches from it.
func (t *fetchTracker) collectWrites(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
					t.writes[ix] = true
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				t.writes[ix] = true
			}
		}
		return true
	})
}

// snapTyped reports whether tp is (a pointer to) mem.Snap.
func (t *fetchTracker) snapTyped(tp types.Type) bool {
	if ptr, ok := tp.(*types.Pointer); ok {
		tp = ptr.Elem()
	}
	named, ok := tp.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Snap" && obj.Pkg() != nil && obj.Pkg().Path() == "rakis/internal/mem"
}

// snapConsumer reports whether fn decodes an already-frozen mem.Snap
// (receiver or any parameter is Snap-typed): such functions read
// trusted storage, not untrusted memory.
func (t *fetchTracker) snapConsumer(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && t.snapTyped(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if t.snapTyped(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// byteSliceResult reports whether the call's results include a plain
// []byte — a live alias rather than a decoded value.
func (t *fetchTracker) byteSliceResult(call *ast.CallExpr) bool {
	tv, ok := t.info.Types[call]
	if !ok {
		return false
	}
	isByteSlice := func(tp types.Type) bool {
		sl, ok := tp.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isByteSlice(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isByteSlice(tv.Type)
}

// classify resolves a call's relationship to untrusted memory and its
// location key (the call's source text).
func (t *fetchTracker) classify(call *ast.CallExpr) (sourceKind, string) {
	fn := calleeFunc(t.info, call)
	if fn == nil {
		// Calls through a stored untrusted method value are fetches.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := t.info.Uses[id]; obj != nil && t.srcFuncs[obj] {
				return scalarFetch, types.ExprString(call)
			}
		}
		return notSource, ""
	}
	if isAtomicU32Load(fn) {
		return scalarFetch, types.ExprString(call)
	}
	if t.pass.World.Snapshots[fn] {
		if t.snapConsumer(fn) {
			return notSource, "" // decodes frozen trusted bytes
		}
		return scalarFetch, types.ExprString(call) // the one permitted fetch
	}
	if t.pass.World.Untrusted[fn] {
		if t.byteSliceResult(call) {
			return aliasProduce, types.ExprString(call)
		}
		return scalarFetch, types.ExprString(call)
	}
	return notSource, ""
}

// conversionTarget returns the target type when call is a conversion.
func conversionTarget(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// aliasRoot returns the location key when e denotes (a reslice of) a
// live untrusted view held in a variable.
func (t *fetchTracker) aliasRoot(e ast.Expr) string {
	e = ast.Unparen(e)
	for {
		se, ok := e.(*ast.SliceExpr)
		if !ok {
			break
		}
		e = ast.Unparen(se.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	obj := t.info.Uses[id]
	if obj == nil {
		obj = t.info.Defs[id]
	}
	if obj == nil {
		return ""
	}
	return t.aliases[obj]
}

// visit handles one node in lexical (pre-)order.
func (t *fetchTracker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(n.Lhs, n.Rhs)
	case *ast.GenDecl:
		for _, spec := range n.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			t.assign(lhs, vs.Values)
		}
	case *ast.RangeStmt:
		if key := t.aliasRoot(n.X); key != "" {
			t.viewRead(key, "", n.X.Pos())
		}
	case *ast.IfStmt:
		t.scanDecision(n.Cond, "branch condition")
	case *ast.ForStmt:
		if n.Cond != nil {
			t.scanDecision(n.Cond, "loop condition")
		}
	case *ast.SwitchStmt:
		if n.Tag != nil {
			t.scanDecision(n.Tag, "switch condition")
		}
	case *ast.CaseClause:
		for _, e := range n.List {
			t.scanDecision(e, "switch case")
		}
	case *ast.IndexExpr:
		if tv, ok := t.info.Types[n.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				break // a hostile map key can only miss
			}
		}
		if !t.writes[n] {
			if key := t.aliasRoot(n.X); key != "" {
				t.viewRead(key, types.ExprString(n.Index), n.Pos())
			}
		}
		t.scanDecision(n.Index, "slice index")
	case *ast.SliceExpr:
		for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
			if bound != nil {
				t.scanDecision(bound, "slice bound")
			}
		}
	case *ast.CallExpr:
		t.call(n)
	}
	return true
}

// assign tracks alias bindings and untrusted method values.
func (t *fetchTracker) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		key := t.rhsAliasKey(rhs[0])
		for _, l := range lhs {
			t.bind(l, key, rhs[0])
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			t.bind(l, t.rhsAliasKey(rhs[i]), rhs[i])
		}
	}
}

// rhsAliasKey resolves the view key an assignment's RHS carries: a
// fresh alias from an untrusted accessor, or a (reslice of a) variable
// already bound to one.
func (t *fetchTracker) rhsAliasKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if kind, key := t.classify(e); kind == aliasProduce {
			return key
		}
	case *ast.Ident, *ast.SliceExpr:
		return t.aliasRoot(e)
	}
	return ""
}

// bind updates one assignment target's alias/method-value state.
func (t *fetchTracker) bind(l ast.Expr, key string, rhs ast.Expr) {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := t.info.Defs[id]
	if obj == nil {
		obj = t.info.Uses[id]
	}
	if obj == nil || isErrorType(obj.Type()) {
		return
	}
	delete(t.aliases, obj)
	delete(t.srcFuncs, obj)
	if key != "" {
		t.aliases[obj] = key
		return
	}
	// load := cell.Load — an untrusted method value: calling it later is
	// a fetch.
	if se, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok {
		if sel, ok := t.info.Selections[se]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok &&
				(isAtomicU32Load(fn) || t.pass.World.Untrusted[fn]) {
				t.srcFuncs[obj] = true
			}
		}
	}
}

// scanDecision flags untrusted fetches steering a control or size
// decision directly, without first landing in trusted storage. The scan
// descends through operators and conversions but not into ordinary call
// arguments (a fetch passed to a validator is the discipline, not a
// violation).
func (t *fetchTracker) scanDecision(e ast.Expr, what string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if _, ok := conversionTarget(t.info, e); ok && len(e.Args) == 1 {
			t.scanDecision(e.Args[0], what)
			return
		}
		if kind, key := t.classify(e); kind != notSource {
			t.report(e.Pos(), "%s decided by unsnapshotted untrusted read %s; fetch it into a trusted local first", what, key)
		}
	case *ast.BinaryExpr:
		t.scanDecision(e.X, what)
		t.scanDecision(e.Y, what)
	case *ast.UnaryExpr:
		t.scanDecision(e.X, what)
	case *ast.StarExpr:
		t.scanDecision(e.X, what)
	case *ast.IndexExpr:
		t.scanDecision(e.X, what)
	case *ast.SliceExpr:
		t.scanDecision(e.X, what)
	case *ast.SelectorExpr:
		t.scanDecision(e.X, what)
	}
}

// call applies the fetch rules at a call site.
func (t *fetchTracker) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := t.info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				for _, arg := range call.Args[1:] {
					t.scanDecision(arg, "make length")
				}
			case "copy":
				// copy(dst, src): only the source position reads.
				if len(call.Args) == 2 {
					if key := t.aliasRoot(call.Args[1]); key != "" {
						t.viewRead(key, "", call.Pos())
					}
				}
			}
			return
		}
	}
	if _, ok := conversionTarget(t.info, call); ok {
		return
	}
	fn := calleeFunc(t.info, call)
	kind, key := t.classify(call)

	// A live view handed to an untrusted decoder or a validator is a
	// whole-view read of that location (recorded before the validator
	// bumps the generation, so validate-then-re-read is attributed
	// correctly).
	aliasArg := false
	if fn != nil && (t.pass.World.Untrusted[fn] || t.pass.World.Validators[fn]) {
		for _, arg := range call.Args {
			if k := t.aliasRoot(arg); k != "" {
				t.viewRead(k, "", call.Pos())
				aliasArg = true
			}
		}
	}
	if fn != nil && t.pass.World.Validators[fn] {
		t.valGen++
	}
	// Rule 1: a scalar fetch of a location already fetched elsewhere in
	// this function. Decoders consuming a live view are counted above.
	if kind == scalarFetch && !aliasArg {
		if prev, ok := t.fetches[key]; ok {
			if prev.pos != call.Pos() {
				t.reportSecond(call.Pos(), key, prev.gen)
			}
		} else {
			t.fetches[key] = &readSite{pos: call.Pos(), gen: t.valGen}
		}
	}
}

// viewRead records one read site on a live view and reports conflicts:
// two whole-view reads, a whole-view read mixed with element loads, or
// the same element loaded twice.
func (t *fetchTracker) viewRead(key, elem string, pos token.Pos) {
	for _, prev := range t.views[key] {
		if prev.pos == pos && prev.elem == elem {
			return
		}
		if prev.elem == "" || elem == "" || prev.elem == elem {
			t.reportSecond(pos, key, prev.gen)
			return
		}
	}
	t.views[key] = append(t.views[key], readSite{pos: pos, gen: t.valGen, elem: elem})
}

// reportSecond phrases a second fetch of the same location, naming the
// TOCTOU explicitly when a validator ran between the two.
func (t *fetchTracker) reportSecond(pos token.Pos, key string, firstGen int) {
	if firstGen < t.valGen {
		t.report(pos, "untrusted location %s re-read after a //rakis:validator call (validate-then-re-read TOCTOU); reuse the snapshot that was validated", key)
		return
	}
	t.report(pos, "untrusted location %s fetched twice; fetch it once into a trusted local or mem.Snap", key)
}
