package analysis

import (
	"go/ast"
	"strings"
)

// Annotations audits the //rakis: directive surface itself. The other
// analyzers trust the annotations; this one keeps the annotations
// trustworthy:
//
//   - every directive must be one the toolchain knows
//     (role, validator, untrusted, snapshot, boundary-ok, singleread-ok);
//   - //rakis:role must name enclave or host;
//   - the escape hatches //rakis:boundary-ok and //rakis:singleread-ok
//     must carry a reason string — a waiver nobody can audit is a hole,
//     not a waiver;
//   - function-level directives must sit in a function's doc comment,
//     where the loader actually reads them. A directive floating in a
//     body or above a type silently annotates nothing.
var Annotations = &Analyzer{
	Name: "annotations",
	Doc:  "//rakis: directives must be well-formed, known, and effective; escape hatches need reasons",
	Run:  runAnnotations,
}

// funcDirectives are the directives the loader only honors in a
// function declaration's doc comment.
var funcDirectives = map[string]bool{
	"validator":     true,
	"untrusted":     true,
	"snapshot":      true,
	"boundary-ok":   true,
	"singleread-ok": true,
}

// reasonRequired marks the escape hatches that waive an analyzer and so
// must say why.
var reasonRequired = map[string]bool{
	"boundary-ok":   true,
	"singleread-ok": true,
}

func runAnnotations(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		// Directives are effective only in FuncDecl doc comments (role is
		// file-scoped and may sit anywhere).
		funcDocs := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = true
			}
		}
		for _, g := range f.Comments {
			inFuncDoc := funcDocs[g]
			for _, c := range g.List {
				// Mirror directiveLines: only lines whose comment text begins
				// exactly //rakis: are directives (indented examples inside
				// prose are not).
				if !strings.HasPrefix(c.Text, "//rakis:") {
					continue
				}
				body := strings.TrimPrefix(c.Text, "//rakis:")
				name, rest, _ := strings.Cut(body, " ")
				// A nested // starts commentary on the directive itself
				// (fixtures put // want markers there).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				rest = strings.TrimSpace(rest)
				switch {
				case name == "role":
					if rest != "enclave" && rest != "host" {
						pass.Reportf(c.Slash, "//rakis:role must be enclave or host, got %q", rest)
					}
				case funcDirectives[name]:
					if !inFuncDoc {
						pass.Reportf(c.Slash, "//rakis:%s is not in a function's doc comment and annotates nothing", name)
						continue
					}
					if reasonRequired[name] && rest == "" {
						pass.Reportf(c.Slash, "//rakis:%s requires a reason: //rakis:%s <why this is safe>", name, name)
					}
				default:
					pass.Reportf(c.Slash, "unknown directive //rakis:%s", name)
				}
			}
		}
	}
}
