package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// This file is the fixture-test harness, modelled on
// golang.org/x/tools/go/analysis/analysistest: fixture packages under
// testdata/src/<name> carry expectations as trailing comments of the
// form
//
//	expr // want "regexp" "another regexp"
//
// and RunFixture checks that the analyzer reports exactly the expected
// diagnostics on exactly the expected lines. Fixtures are loaded with
// the shared module world, so they may import the real rakis packages
// (e.g. rakis/internal/mem) and their annotations behave as in
// production.

// TB is the subset of *testing.T the harness needs (avoids importing
// testing into non-test code).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var (
	worldOnce sync.Once
	worldVal  *World
	worldErr  error
)

// sharedWorld loads the module once per test binary.
func sharedWorld() (*World, error) {
	worldOnce.Do(func() {
		worldVal, worldErr = LoadModule(".")
	})
	return worldVal, worldErr
}

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// RunFixture loads testdata/src/<name> as a package and diffs the
// analyzer's diagnostics against its // want comments.
func RunFixture(t TB, a *Analyzer, name string) {
	t.Helper()
	world, err := sharedWorld()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := world.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := Run(world, []*Package{pkg}, []*Analyzer{a})

	// Collect expectations from every comment in the fixture.
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := world.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pattern := q
					if strings.HasPrefix(q, `"`) {
						if unq, err := strconv.Unquote(q); err == nil {
							pattern = unq
						}
					} else {
						pattern = strings.Trim(q, "`")
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename), line: pos.Line, re: re, raw: pattern,
					})
				}
			}
		}
	}

	// Every diagnostic must match a pending expectation on its line.
	for _, d := range diags {
		pos := world.Fset.Position(d.Pos)
		if !consume(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	// Every expectation must have been matched.
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// consume marks the first unmatched expectation that fits.
func consume(wants []*expectation, pos token.Position, msg string) bool {
	base := filepath.Base(pos.Filename)
	for _, w := range wants {
		if !w.matched && w.file == base && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// FixtureDiagnostics runs an analyzer over a fixture and returns the
// rendered findings (for driver-level tests).
func FixtureDiagnostics(a *Analyzer, name string) ([]string, error) {
	world, err := sharedWorld()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := world.LoadDir(dir, "fixture/"+name)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, d := range Run(world, []*Package{pkg}, []*Analyzer{a}) {
		out = append(out, Format(world.Fset, d))
	}
	return out, nil
}
