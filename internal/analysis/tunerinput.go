package analysis

import (
	"path"
	"strconv"
	"strings"
)

// Tunerinput keeps the self-tuning control loop's input surface trusted:
// the tuner decides batch widths, poll modes, and ring geometry, so a
// hostile host that could feed it fabricated signals would steer those
// knobs (park latency behind giant gather windows, burn cycles in
// busy-poll, shrink rings until traffic drops). The defense is that the
// tuner consumes only trusted-side telemetry counters — values
// accumulated inside the enclave — and this pass makes that structural:
// a tuner package may import the standard library and
// rakis/internal/telemetry, nothing else. In particular it can never
// import mem/xsk/hostos and read a shared untrusted word, and it can
// never use unsafe to sidestep the accessors.
var Tunerinput = &Analyzer{
	Name: "tunerinput",
	Doc:  "tuner packages may consume only trusted-side telemetry (import allowlist)",
	Run:  runTunerinput,
}

func runTunerinput(pass *Pass) {
	if !strings.Contains(path.Base(pass.Pkg.ImportPath), "tuner") {
		return
	}
	// Imports are read from the files' ASTs, not the go-list metadata:
	// fixture packages are loaded directly from a directory and carry no
	// list entry, and the AST is authoritative either way.
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if tunerImportAllowed(p) {
				continue
			}
			pass.Reportf(imp.Pos(), "tuner package must not import %s: tuner inputs are trusted-side telemetry only", p)
		}
	}
}

// tunerImportAllowed permits the standard library (minus unsafe) and the
// telemetry registry the tuner is defined to consume.
func tunerImportAllowed(importPath string) bool {
	if importPath == "unsafe" {
		return false
	}
	if !strings.HasPrefix(importPath, "rakis/") {
		return true // standard library
	}
	return importPath == "rakis/internal/telemetry"
}
