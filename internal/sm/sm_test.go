package sm

import (
	"testing"
	"time"

	"rakis/internal/fm"
	"rakis/internal/hostos"
	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/mm"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/vtime"
)

type fixture struct {
	kern  *hostos.Kernel
	ns    *hostos.NetNS
	proc  *hostos.Proc
	mon   *mm.Monitor
	proxy *SyncProxy
	clk   vtime.Clock
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	m := vtime.Default()
	kern := hostos.NewKernel(mem.NewSpace(1<<20, 1<<24), m)
	a, b := netsim.NewPair(m, netsim.Config{Name: "a"}, netsim.Config{Name: "b"})
	ns, err := kern.AddNetNS("a", a, netstack.IP4{10, 0, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kern.AddNetNS("b", b, netstack.IP4{10, 0, 0, 2}, nil, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(kern.Close)
	f := &fixture{kern: kern, ns: ns, proc: kern.NewProc(ns, &vtime.Counters{})}

	setup, err := f.proc.IoUringSetup(64, &f.clk)
	if err != nil {
		t.Fatal(err)
	}
	ringFM, err := iouring.Attach(iouring.Config{Space: kern.Space, Setup: setup, Entries: 64})
	if err != nil {
		t.Fatal(err)
	}
	ufm, err := fm.NewUringFM(ringFM, kern.Space, m, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	f.proxy = NewSyncProxy(ufm, m)
	f.mon = mm.New(f.proc)
	f.mon.WatchUring(kern.Space, setup)
	f.mon.Start()
	t.Cleanup(f.mon.Close)
	return f
}

func TestSyncProxyFileOps(t *testing.T) {
	f := newFixture(t)
	f.kern.VFS().WriteFile("/f", []byte("0123456789"))
	fd, err := f.proc.Open("/f", hostos.ORdwr, &f.clk)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := f.proxy.Pread(fd, buf, 3, &f.clk)
	if err != nil || n != 4 || string(buf) != "3456" {
		t.Fatalf("pread = %d %q %v", n, buf, err)
	}
	if n, err := f.proxy.Pwrite(fd, []byte("XY"), 0, &f.clk); err != nil || n != 2 {
		t.Fatalf("pwrite = %d %v", n, err)
	}
	if err := f.proxy.Fsync(fd, &f.clk); err != nil {
		t.Fatal(err)
	}
	data, _ := f.kern.VFS().ReadFile("/f")
	if string(data) != "XY23456789" {
		t.Fatalf("file = %q", data)
	}
	// Cursor-based sequential reads hit EOF cleanly.
	big := make([]byte, 64)
	n, err = f.proxy.Read(fd, big, &f.clk)
	if err != nil || n != 10 {
		t.Fatalf("read = %d %v", n, err)
	}
	n, err = f.proxy.Read(fd, big, &f.clk)
	if err != nil || n != 0 {
		t.Fatalf("EOF read = %d %v", n, err)
	}
}

func TestSyncProxyLargeTransferChunks(t *testing.T) {
	// Larger than the 64 KiB bounce buffer: must chunk and still be
	// byte-exact.
	f := newFixture(t)
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	fd, err := f.proc.Open("/big", hostos.OCreate|hostos.ORdwr, &f.clk)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.proxy.Write(fd, payload, &f.clk); err != nil || n != len(payload) {
		t.Fatalf("write = %d %v", n, err)
	}
	got := make([]byte, len(payload))
	if n, err := f.proxy.Pread(fd, got, 0, &f.clk); err != nil || n != len(payload) {
		t.Fatalf("read = %d %v", n, err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestPollAggregatesUDPAndHost(t *testing.T) {
	f := newFixture(t)
	// An enclave-side UDP socket (plain netstack socket here) and a host
	// file (always readable).
	link := sinkLink{}
	encl, err := netstack.New(netstack.Config{Name: "encl", Dev: link, IP: netstack.IP4{10, 9, 9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	usock, err := encl.UDPBind(9)
	if err != nil {
		t.Fatal(err)
	}
	ffd, err := f.proc.Open("/pollfile", hostos.OCreate|hostos.ORdwr, &f.clk)
	if err != nil {
		t.Fatal(err)
	}

	// Host file is immediately ready.
	srcs := []PollSource{
		{UDP: usock, Events: PollIn},
		{HostFD: ffd, Events: PollIn | PollOut},
	}
	n, err := Poll(srcs, 2*time.Second, f.proxy, nil, &f.clk)
	if err != nil || n != 1 {
		t.Fatalf("poll = %d %v", n, err)
	}
	if srcs[1].Revents == 0 || srcs[0].Revents != 0 {
		t.Fatalf("revents = %v/%v", srcs[0].Revents, srcs[1].Revents)
	}

	// Now only the UDP socket, with a datagram injected mid-poll.
	go func() {
		time.Sleep(5 * time.Millisecond)
		var clk vtime.Clock
		frame := buildUDPFrame(netstack.IP4{10, 0, 0, 1}, netstack.IP4{10, 9, 9, 9}, 1234, 9, []byte("wake"))
		encl.Input(frame, &clk)
	}()
	srcs = []PollSource{{UDP: usock, Events: PollIn}}
	n, err = Poll(srcs, 2*time.Second, f.proxy, nil, &f.clk)
	if err != nil || n != 1 || srcs[0].Revents&PollIn == 0 {
		t.Fatalf("udp poll = %d %v %v", n, err, srcs[0].Revents)
	}

	// Timeout path with nothing ready.
	var drainClk vtime.Clock
	usock.RecvFrom(&drainClk, true)
	srcs[0].Revents = 0
	n, err = Poll(srcs, 30*time.Millisecond, f.proxy, nil, &f.clk)
	if err != nil || n != 0 {
		t.Fatalf("empty poll = %d %v", n, err)
	}
	// The armed host polls were cancelled; nothing stays outstanding for
	// long (poll_remove is asynchronous, so allow the kernel a moment).
	deadline := time.Now().Add(time.Second)
	for f.proxy.FM.Ring().Outstanding() > 0 && time.Now().Before(deadline) {
		var clk vtime.Clock
		f.proxy.FM.Ring().Drain(&clk)
		time.Sleep(time.Millisecond)
	}
}

// sinkLink drops outbound frames.
type sinkLink struct{}

func (sinkLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) { return clk.Now(), nil }
func (sinkLink) MAC() [6]byte                                            { return [6]byte{2, 0, 0, 0, 0, 3} }
func (sinkLink) MTU() int                                                { return 1500 }

// buildUDPFrame assembles a raw Ethernet+IPv4+UDP frame.
func buildUDPFrame(src, dst netstack.IP4, sport, dport uint16, payload []byte) []byte {
	udp := make([]byte, netstack.UDPHeaderBytes+len(payload))
	udp[0], udp[1] = byte(sport>>8), byte(sport)
	udp[2], udp[3] = byte(dport>>8), byte(dport)
	udp[4], udp[5] = byte(len(udp)>>8), byte(len(udp))
	copy(udp[netstack.UDPHeaderBytes:], payload)
	ip := netstack.MarshalIPv4(netstack.IPv4Header{
		TTL: 64, Proto: netstack.ProtoUDP, Src: src, Dst: dst,
	}, udp)
	return netstack.MarshalEth(netstack.EthHeader{
		Dst: [6]byte{2, 0, 0, 0, 0, 3}, Src: [6]byte{2, 0, 0, 0, 0, 1},
		Type: netstack.EtherTypeIPv4,
	}, ip)
}
