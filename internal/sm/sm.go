// Package sm implements the Service Module (§4.2): the layer that bridges
// the gap between what the FIOKPs deliver (layer-2 frames, raw CQEs) and
// what unmodified applications expect (POSIX socket and file syscalls).
//
// It has three parts, as in the paper:
//
//   - The in-enclave UDP/IP stack: a trimmed netstack configuration
//     (UDP-only — the LWIP 80K→5K cut) whose link device round-robins
//     outgoing frames across the XSK FastPath Modules.
//   - The SyncProxy: a thin per-thread stub that forwards the five
//     io_uring-served syscalls to a UringFM and blocks for the result.
//   - The API submodule: routes syscalls to the right IO provider and
//     aggregates poll across providers by arming asynchronous io_uring
//     polls for host descriptors while busy-watching enclave UDP sockets.
//
//rakis:role enclave
package sm

import (
	"sync/atomic"
	"time"

	"rakis/internal/fm"
	"rakis/internal/netstack"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// XskLink exposes a set of XSK FastPath Modules as the enclave stack's
// layer-2 device. Sends round-robin across the sockets; the sockets
// themselves serialize concurrent users internally.
type XskLink struct {
	socks []*xsk.Socket
	next  atomic.Uint32
	mac   [6]byte
	mtu   int
}

// NewXskLink bundles the XSKs behind one link device.
func NewXskLink(socks []*xsk.Socket, mac [6]byte, mtu int) *XskLink {
	return &XskLink{
		socks: socks,
		mac:   mac,
		mtu:   mtu,
	}
}

// sendRetryMax bounds SendFrame's retries on a full ring. Transient
// fullness has two causes: genuine wire backpressure (completions land
// within the backoff) and a scribbled shared control word quarantining
// the ring — each retry's certified refresh counts toward the
// quarantine-and-resync threshold, so the ring heals within the first
// few attempts. Fullness that survives all retries means the wire really
// is the bottleneck, and the frame drops like a NIC queue overflow.
const sendRetryMax = 8

// SendFrame copies the frame into a UMem slot and publishes it on xTX;
// the Monitor Module's sendto wakeup makes the kernel transmit it.
func (l *XskLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	i := int(l.next.Add(1)) % len(l.socks)
	s := l.socks[i]
	err := s.Send(data, clk)
	backoff := 10 * time.Microsecond
	for attempt := 0; (err == xsk.ErrRingFull || err == xsk.ErrNoFrame) && attempt < sendRetryMax; attempt++ {
		s.Reap(clk)
		if err = s.Send(data, clk); err == nil {
			break
		}
		time.Sleep(backoff)
		if backoff < 320*time.Microsecond {
			backoff *= 2
		}
	}
	return clk.Now(), err
}

// MAC returns the interface hardware address.
func (l *XskLink) MAC() [6]byte { return l.mac }

// MTU returns the link MTU.
func (l *XskLink) MTU() int { return l.mtu }

// NewEnclaveStack builds the trimmed in-enclave UDP/IP stack over the
// given XSK link.
func NewEnclaveStack(link *XskLink, ip netstack.IP4, model *vtime.Model, counters *vtime.Counters, globalLock bool) (*netstack.Stack, error) {
	if model == nil {
		model = vtime.Default()
	}
	return netstack.New(netstack.Config{
		Name:          "enclave",
		Dev:           link,
		IP:            ip,
		Model:         model,
		Counters:      counters,
		EnableTCP:     false, // §7: no TCP stack inside the enclave
		EnableICMP:    false,
		PerPacketCost: model.EnclaveStackPerPacket,
		GlobalLock:    globalLock,
	})
}

// SyncProxy forwards synchronous IO requests to a per-thread io_uring FM
// and waits for completion (§4.2). It is per-thread, like its FM.
type SyncProxy struct {
	FM    *fm.UringFM
	model *vtime.Model
}

// NewSyncProxy wraps a UringFM.
func NewSyncProxy(u *fm.UringFM, model *vtime.Model) *SyncProxy {
	if model == nil {
		model = vtime.Default()
	}
	return &SyncProxy{FM: u, model: model}
}

func (sp *SyncProxy) charge(clk *vtime.Clock) {
	clk.Charge(vtime.CompAPI, sp.model.SyncProxyOp)
}

// Read reads from a host file through io_uring.
func (sp *SyncProxy) Read(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.ReadAt(fd, p, fm.CursorOff, clk)
}

// Pread reads at an offset.
func (sp *SyncProxy) Pread(fd int, p []byte, off int64, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.ReadAt(fd, p, uint64(off), clk)
}

// Write writes to a host file through io_uring.
func (sp *SyncProxy) Write(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.WriteAt(fd, p, fm.CursorOff, clk)
}

// Pwrite writes at an offset.
func (sp *SyncProxy) Pwrite(fd int, p []byte, off int64, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.WriteAt(fd, p, uint64(off), clk)
}

// Send sends on a host TCP socket through io_uring.
func (sp *SyncProxy) Send(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.Send(fd, p, clk)
}

// Recv receives from a host TCP socket through io_uring.
func (sp *SyncProxy) Recv(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.Recv(fd, p, clk)
}

// Fsync flushes a host file through io_uring.
func (sp *SyncProxy) Fsync(fd int, clk *vtime.Clock) error {
	sp.charge(clk)
	return sp.FM.Fsync(fd, clk)
}

// PollSource is one descriptor in a cross-provider poll: either an
// enclave UDP socket or a host descriptor reached through io_uring.
type PollSource struct {
	// UDP, when non-nil, is an enclave-stack socket.
	UDP *netstack.UDPSocket
	// HostFD is a host descriptor (TCP socket or file), used when UDP is
	// nil.
	HostFD int
	// Events is the interest mask (PollIn/PollOut as in iouring).
	Events uint32
	// Revents receives the ready mask.
	Revents uint32
}

// PollCache keeps io_uring polls armed across Poll calls, the way an
// event loop wants: a descriptor that stayed quiet through one select
// need not be re-armed (two ring operations plus a kernel wakeup) on the
// next. The cache is per-thread, like the io_uring FM it feeds.
type PollCache struct {
	armed map[int]pollArm
}

type pollArm struct {
	token  uint64
	events uint32
}

// NewPollCache returns an empty cache.
func NewPollCache() *PollCache {
	return &PollCache{armed: make(map[int]pollArm)}
}

// Drop cancels any armed poll for fd (call on close).
func (c *PollCache) Drop(fd int, sp *SyncProxy, clk *vtime.Clock) {
	if c == nil {
		return
	}
	if arm, ok := c.armed[fd]; ok {
		sp.FM.CancelPoll(arm.token, clk)
		delete(c.armed, fd)
	}
}

// Poll is the API submodule's cross-provider aggregation (§4.2): host
// descriptors get asynchronous io_uring poll operations; enclave UDP
// sockets are watched directly; the caller busy-waits over both so no
// provider's events starve the other's. timeout < 0 blocks indefinitely.
// Armed polls are cancelled before returning.
func Poll(srcs []PollSource, timeout time.Duration, sp *SyncProxy, model *vtime.Model, clk *vtime.Clock) (int, error) {
	return PollCached(srcs, timeout, sp, model, clk, nil)
}

// PollCached is Poll with an optional armed-poll cache: with a cache,
// un-fired polls stay armed across calls instead of being cancelled.
func PollCached(srcs []PollSource, timeout time.Duration, sp *SyncProxy, model *vtime.Model, clk *vtime.Clock, cache *PollCache) (int, error) {
	if model == nil {
		model = vtime.Default()
	}
	// The per-descriptor cost is paid for work actually done: arming a
	// poll, checking an enclave socket, or consuming a completion.
	// Descriptors left armed in the cache cost nothing while quiet —
	// that is the epoll-shaped O(ready) advantage over re-scanned poll.
	clk.Charge(vtime.CompAPI, model.APIHook)

	// Arm async polls for host descriptors, reusing cached arms whose
	// interest mask matches.
	tokens := make([]uint64, len(srcs))
	armed := make([]bool, len(srcs))
	arm := func(i int) error {
		clk.Charge(vtime.CompAPI, model.PollPerFD)
		tok, err := sp.FM.SubmitPoll(srcs[i].HostFD, srcs[i].Events, clk)
		if err != nil {
			return err
		}
		tokens[i] = tok
		armed[i] = true
		if cache != nil {
			cache.armed[srcs[i].HostFD] = pollArm{token: tok, events: srcs[i].Events}
		}
		return nil
	}
	for i := range srcs {
		srcs[i].Revents = 0
		if srcs[i].UDP != nil {
			clk.Charge(vtime.CompAPI, model.PollPerFD)
			continue
		}
		if cache != nil {
			if prev, ok := cache.armed[srcs[i].HostFD]; ok {
				if prev.events == srcs[i].Events {
					tokens[i] = prev.token
					armed[i] = true
					continue
				}
				sp.FM.CancelPoll(prev.token, clk)
				delete(cache.armed, srcs[i].HostFD)
			}
		}
		if err := arm(i); err != nil {
			return 0, err
		}
	}
	cancelRest := func() {
		if cache != nil {
			return // keep un-fired polls armed for the next call
		}
		for i := range srcs {
			if armed[i] {
				sp.FM.CancelPoll(tokens[i], clk)
			}
		}
	}

	// A zero timeout still needs one kernel round trip for armed polls:
	// the completion of an already-ready descriptor takes a Monitor
	// Module sweep plus the SQ worker. Bound that wait instead of
	// reporting a false not-ready.
	anyArmed := false
	for i := range srcs {
		if armed[i] {
			anyArmed = true
		}
	}
	if timeout == 0 && anyArmed {
		timeout = time.Millisecond
	}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	// Escalation for the spin: TryPoll never blocks, so unlike Wait it has
	// no built-in nudge ladder — yet a completion the kernel already
	// posted can be hidden behind a scribbled producer cell, and an idle
	// kernel makes no store that would heal it. Periodically force a
	// consumption wakeup so the kernel republishes its indices.
	lastEscalate := time.Now()
	for {
		n := 0
		for i := range srcs {
			if srcs[i].Revents != 0 {
				n++
				continue
			}
			if srcs[i].UDP != nil {
				if srcs[i].Events&PollIn != 0 && srcs[i].UDP.Readable() {
					srcs[i].Revents |= PollIn
				}
				if srcs[i].Events&PollOut != 0 {
					srcs[i].Revents |= PollOut // enclave UDP is always writable
				}
				if srcs[i].Revents != 0 {
					n++
				}
				continue
			}
			if armed[i] {
				res, done, err := sp.FM.TryPoll(tokens[i], clk)
				if err != nil {
					srcs[i].Revents |= PollErr
					armed[i] = false
					if cache != nil {
						delete(cache.armed, srcs[i].HostFD)
					}
					n++
					continue
				}
				if done {
					armed[i] = false
					if cache != nil {
						delete(cache.armed, srcs[i].HostFD)
					}
					if res > 0 {
						srcs[i].Revents = uint32(res)
						n++
					} else if res == 0 {
						// The kernel-side wait expired; re-arm.
						arm(i)
					} else {
						// The kernel refused to poll this descriptor
						// (closed fd, hostile errno): report it, as epoll
						// reports EPOLLERR — swallowing it would leave the
						// descriptor silently unwatched for the rest of
						// this wait.
						srcs[i].Revents |= PollErr
						n++
					}
				}
			}
		}
		if n > 0 {
			cancelRest()
			return n, nil
		}
		if timeout == 0 || (!deadline.IsZero() && time.Now().After(deadline)) {
			cancelRest()
			return 0, nil
		}
		if anyArmed && time.Since(lastEscalate) >= 2*time.Millisecond {
			sp.FM.Escalate()
			lastEscalate = time.Now()
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// Poll event bits, re-exported for API users.
const (
	PollIn  = uint32(1) << 0
	PollOut = uint32(1) << 2
	PollErr = uint32(1) << 3
)
