// Package sm implements the Service Module (§4.2): the layer that bridges
// the gap between what the FIOKPs deliver (layer-2 frames, raw CQEs) and
// what unmodified applications expect (POSIX socket and file syscalls).
//
// It has three parts, as in the paper:
//
//   - The in-enclave UDP/IP stack: a trimmed netstack configuration
//     (UDP-only — the LWIP 80K→5K cut) whose link device round-robins
//     outgoing frames across the XSK FastPath Modules.
//   - The SyncProxy: a thin per-thread stub that forwards the five
//     io_uring-served syscalls to a UringFM and blocks for the result.
//   - The API submodule: routes syscalls to the right IO provider and
//     aggregates poll across providers by arming asynchronous io_uring
//     polls for host descriptors while busy-watching enclave UDP sockets.
//
//rakis:role enclave
package sm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/fm"
	"rakis/internal/mem"
	"rakis/internal/netstack"
	"rakis/internal/tuner"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// XskLink exposes a set of XSK FastPath Modules as the enclave stack's
// layer-2 device. Sends round-robin across the sockets; the sockets
// themselves serialize concurrent users internally.
//
// Scalar SendFrame calls from unmodified callers fan into opportunistic
// batches: each call enqueues its frame and whichever caller wins the
// flush lock drains everything queued into one SendBatch run — so an
// uncontended caller flushes a batch of one immediately (scalar-identical
// behaviour), while concurrent senders amortize the ring lock,
// certification pass, and MM wakeup without anyone ever blocking to wait
// for a batch to fill.
type XskLink struct {
	socks []*xsk.Socket
	next  atomic.Uint32
	mac   [6]byte
	mtu   int

	txq     chan txReq
	flushMu sync.Mutex

	// tuning, when non-nil, tells the send ladder which wakeup mode is
	// in effect: under busy-poll the kernel worker drains xTX every few
	// microseconds, so a full-ring retry sleeps at poll scale instead of
	// climbing the long need-wakeup backoff.
	tuning *tuner.State
}

// txReq is one queued scalar SendFrame awaiting a batched flush.
type txReq struct {
	data []byte
	res  chan error
}

// txQueueCap bounds the scalar-call coalescing queue. Enqueuers double as
// flushers, so a full queue only ever means a flush is in progress.
const txQueueCap = 256

// NewXskLink bundles the XSKs behind one link device.
func NewXskLink(socks []*xsk.Socket, mac [6]byte, mtu int) *XskLink {
	return &XskLink{
		socks: socks,
		mac:   mac,
		mtu:   mtu,
		txq:   make(chan txReq, txQueueCap),
	}
}

// sendRetryMax bounds SendFrame's retries on a full ring. Transient
// fullness has two causes: genuine wire backpressure (completions land
// within the backoff) and a scribbled shared control word quarantining
// the ring — each retry's certified refresh counts toward the
// quarantine-and-resync threshold, so the ring heals within the first
// few attempts. Fullness that survives all retries means the wire really
// is the bottleneck, and the frame drops like a NIC queue overflow.
const sendRetryMax = 8

// SendFrame publishes one frame on xTX through the opportunistic batch
// coalescer: the frame is queued, and the caller either wins the flush
// lock and drains the whole queue in one SendBatch run, or spins briefly
// while a concurrent flusher carries its frame out. Either way the call
// returns once this frame's outcome is known — it never waits for more
// frames to accumulate.
func (l *XskLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	req := txReq{data: data, res: make(chan error, 1)}
	l.txq <- req
	for {
		select {
		case err := <-req.res:
			return clk.Now(), err
		default:
		}
		if l.flushMu.TryLock() {
			l.flushQueued(clk)
			l.flushMu.Unlock()
		}
		select {
		case err := <-req.res:
			return clk.Now(), err
		case <-time.After(20 * time.Microsecond):
		}
	}
}

// SendFrames transmits a run of frames as one batched publish per ring
// pass, implementing netstack.BatchLinkDevice for the stack's batched IP
// path. An error is reported only when the first frame fails.
func (l *XskLink) SendFrames(frames [][]byte, clk *vtime.Clock) (uint64, error) {
	errs := l.sendBatchRetry(frames, clk)
	for i, err := range errs {
		if err != nil {
			if i == 0 {
				return clk.Now(), err
			}
			break
		}
	}
	return clk.Now(), nil
}

// flushQueued drains every queued scalar frame into batched sends,
// delivering each frame's outcome on its result channel. Caller holds
// flushMu.
func (l *XskLink) flushQueued(clk *vtime.Clock) {
	for {
		var batch []txReq
	drain:
		for len(batch) < txQueueCap {
			select {
			case r := <-l.txq:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if len(batch) == 0 {
			return
		}
		frames := make([][]byte, len(batch))
		for i, r := range batch {
			frames[i] = r.data
		}
		errs := l.sendBatchRetry(frames, clk)
		for i, r := range batch {
			r.res <- errs[i]
		}
	}
}

// sendBatchRetry pushes a frame run through one socket's SendBatch,
// riding out transient fullness with the same reap-and-backoff ladder as
// the old scalar path (each retry's certified refresh also counts toward
// quarantine-and-resync, healing a scribbled control word). Frames still
// unsent after the ladder drop like a NIC queue overflow; per-frame
// outcomes are returned positionally.
func (l *XskLink) sendBatchRetry(frames [][]byte, clk *vtime.Clock) []error {
	errs := make([]error, len(frames))
	s := l.socks[int(l.next.Add(1))%len(l.socks)]
	sent := 0
	backoff := 10 * time.Microsecond
	maxBackoff := 320 * time.Microsecond
	if l.tuning.BusyPoll() {
		maxBackoff = 20 * time.Microsecond
	}
	attempt := 0
	for sent < len(frames) {
		n, err := s.SendBatch(frames[sent:], clk)
		sent += n
		if sent == len(frames) {
			break
		}
		if err != nil && err != xsk.ErrRingFull && err != xsk.ErrNoFrame {
			// A frame the ring can never take (e.g. oversized): record
			// its error and move past it.
			errs[sent] = err
			sent++
			continue
		}
		if attempt >= sendRetryMax {
			for i := sent; i < len(frames); i++ {
				if err != nil {
					errs[i] = err
				} else {
					errs[i] = xsk.ErrRingFull
				}
			}
			break
		}
		attempt++
		s.Reap(clk)
		time.Sleep(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
	return errs
}

// SetTuning couples the link's send ladder to the shared tuner state.
// Call before traffic starts.
func (l *XskLink) SetTuning(st *tuner.State) { l.tuning = st }

// SpliceFrame re-queues a certified RX frame view onto the TX ring of
// the socket that owns its UMem frame — a frame can only be spliced
// within its own XSK, never across the round-robin set — riding out
// transient TX fullness with the same reap-and-backoff ladder as the
// copied send path. It implements netstack.SpliceDevice for the
// in-place echo path.
func (l *XskLink) SpliceFrame(v *mem.View, n uint32, clk *vtime.Clock) error {
	sock, ok := v.Owner().(*xsk.Socket)
	if !ok {
		return fmt.Errorf("sm: view not backed by an XSK socket")
	}
	backoff := 10 * time.Microsecond
	var err error
	for attempt := 0; attempt <= sendRetryMax; attempt++ {
		if err = sock.SpliceFrame(v, n, clk); err != xsk.ErrRingFull {
			return err
		}
		sock.Reap(clk)
		time.Sleep(backoff)
		if backoff < 320*time.Microsecond {
			backoff *= 2
		}
	}
	return err
}

// MAC returns the interface hardware address.
func (l *XskLink) MAC() [6]byte { return l.mac }

// MTU returns the link MTU.
func (l *XskLink) MTU() int { return l.mtu }

// NewEnclaveStack builds the trimmed in-enclave UDP/IP stack over the
// given XSK link.
func NewEnclaveStack(link *XskLink, ip netstack.IP4, model *vtime.Model, counters *vtime.Counters, globalLock bool) (*netstack.Stack, error) {
	if model == nil {
		model = vtime.Default()
	}
	return netstack.New(netstack.Config{
		Name:          "enclave",
		Dev:           link,
		IP:            ip,
		Model:         model,
		Counters:      counters,
		EnableTCP:     false, // §7: no TCP stack inside the enclave
		EnableICMP:    false,
		PerPacketCost: model.EnclaveStackPerPacket,
		GlobalLock:    globalLock,
	})
}

// SyncProxy forwards synchronous IO requests to a per-thread io_uring FM
// and waits for completion (§4.2). It is per-thread, like its FM.
type SyncProxy struct {
	FM    *fm.UringFM
	model *vtime.Model
}

// NewSyncProxy wraps a UringFM.
func NewSyncProxy(u *fm.UringFM, model *vtime.Model) *SyncProxy {
	if model == nil {
		model = vtime.Default()
	}
	return &SyncProxy{FM: u, model: model}
}

func (sp *SyncProxy) charge(clk *vtime.Clock) {
	clk.Charge(vtime.CompAPI, sp.model.SyncProxyOp)
}

// Read reads from a host file through io_uring.
func (sp *SyncProxy) Read(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.ReadAt(fd, p, fm.CursorOff, clk)
}

// Pread reads at an offset.
func (sp *SyncProxy) Pread(fd int, p []byte, off int64, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.ReadAt(fd, p, uint64(off), clk)
}

// Write writes to a host file through io_uring.
func (sp *SyncProxy) Write(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.WriteAt(fd, p, fm.CursorOff, clk)
}

// Pwrite writes at an offset.
func (sp *SyncProxy) Pwrite(fd int, p []byte, off int64, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.WriteAt(fd, p, uint64(off), clk)
}

// Send sends on a host TCP socket through io_uring.
func (sp *SyncProxy) Send(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.Send(fd, p, clk)
}

// Recv receives from a host TCP socket through io_uring.
func (sp *SyncProxy) Recv(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.Recv(fd, p, clk)
}

// Fsync flushes a host file through io_uring.
func (sp *SyncProxy) Fsync(fd int, clk *vtime.Clock) error {
	sp.charge(clk)
	return sp.FM.Fsync(fd, clk)
}

// PollSource is one descriptor in a cross-provider poll: either an
// enclave UDP socket or a host descriptor reached through io_uring.
type PollSource struct {
	// UDP, when non-nil, is an enclave-stack socket.
	UDP *netstack.UDPSocket
	// HostFD is a host descriptor (TCP socket or file), used when UDP is
	// nil.
	HostFD int
	// Events is the interest mask (PollIn/PollOut as in iouring).
	Events uint32
	// Revents receives the ready mask.
	Revents uint32
}

// PollCache keeps io_uring polls armed across Poll calls, the way an
// event loop wants: a descriptor that stayed quiet through one select
// need not be re-armed (two ring operations plus a kernel wakeup) on the
// next. The cache is per-thread, like the io_uring FM it feeds.
type PollCache struct {
	armed map[int]pollArm
}

type pollArm struct {
	token  uint64
	events uint32
}

// NewPollCache returns an empty cache.
func NewPollCache() *PollCache {
	return &PollCache{armed: make(map[int]pollArm)}
}

// Drop cancels any armed poll for fd (call on close).
func (c *PollCache) Drop(fd int, sp *SyncProxy, clk *vtime.Clock) {
	if c == nil {
		return
	}
	if arm, ok := c.armed[fd]; ok {
		sp.FM.CancelPoll(arm.token, clk)
		delete(c.armed, fd)
	}
}

// Poll is the API submodule's cross-provider aggregation (§4.2): host
// descriptors get asynchronous io_uring poll operations; enclave UDP
// sockets are watched directly; the caller busy-waits over both so no
// provider's events starve the other's. timeout < 0 blocks indefinitely.
// Armed polls are cancelled before returning.
func Poll(srcs []PollSource, timeout time.Duration, sp *SyncProxy, model *vtime.Model, clk *vtime.Clock) (int, error) {
	return PollCached(srcs, timeout, sp, model, clk, nil)
}

// PollCached is Poll with an optional armed-poll cache: with a cache,
// un-fired polls stay armed across calls instead of being cancelled.
func PollCached(srcs []PollSource, timeout time.Duration, sp *SyncProxy, model *vtime.Model, clk *vtime.Clock, cache *PollCache) (int, error) {
	if model == nil {
		model = vtime.Default()
	}
	// The per-descriptor cost is paid for work actually done: arming a
	// poll, checking an enclave socket, or consuming a completion.
	// Descriptors left armed in the cache cost nothing while quiet —
	// that is the epoll-shaped O(ready) advantage over re-scanned poll.
	clk.Charge(vtime.CompAPI, model.APIHook)

	// Arm async polls for host descriptors, reusing cached arms whose
	// interest mask matches. Fresh arms are batched: every descriptor
	// that needs one goes out in a single SubmitPollN run, so N cold
	// descriptors cost one producer publish and at most one MM wakeup.
	tokens := make([]uint64, len(srcs))
	armed := make([]bool, len(srcs))
	arm := func(i int) error {
		clk.Charge(vtime.CompAPI, model.PollPerFD)
		tok, err := sp.FM.SubmitPoll(srcs[i].HostFD, srcs[i].Events, clk)
		if err != nil {
			return err
		}
		tokens[i] = tok
		armed[i] = true
		if cache != nil {
			cache.armed[srcs[i].HostFD] = pollArm{token: tok, events: srcs[i].Events}
		}
		return nil
	}
	var needArm []int
	for i := range srcs {
		srcs[i].Revents = 0
		if srcs[i].UDP != nil {
			clk.Charge(vtime.CompAPI, model.PollPerFD)
			continue
		}
		if cache != nil {
			if prev, ok := cache.armed[srcs[i].HostFD]; ok {
				if prev.events == srcs[i].Events {
					tokens[i] = prev.token
					armed[i] = true
					continue
				}
				sp.FM.CancelPoll(prev.token, clk)
				delete(cache.armed, srcs[i].HostFD)
			}
		}
		needArm = append(needArm, i)
	}
	if len(needArm) > 0 {
		reqs := make([]fm.PollReq, len(needArm))
		for j, i := range needArm {
			clk.Charge(vtime.CompAPI, model.PollPerFD)
			reqs[j] = fm.PollReq{FD: srcs[i].HostFD, Events: srcs[i].Events}
		}
		toks, err := sp.FM.SubmitPollN(reqs, clk)
		for j := range toks {
			i := needArm[j]
			tokens[i] = toks[j]
			armed[i] = true
			if cache != nil {
				cache.armed[srcs[i].HostFD] = pollArm{token: toks[j], events: srcs[i].Events}
			}
		}
		if err != nil {
			return 0, err
		}
	}
	cancelRest := func() {
		if cache != nil {
			return // keep un-fired polls armed for the next call
		}
		for i := range srcs {
			if armed[i] {
				sp.FM.CancelPoll(tokens[i], clk)
			}
		}
	}

	// A zero timeout still needs one kernel round trip for armed polls:
	// the completion of an already-ready descriptor takes a Monitor
	// Module sweep plus the SQ worker. Bound that wait instead of
	// reporting a false not-ready.
	anyArmed := false
	for i := range srcs {
		if armed[i] {
			anyArmed = true
		}
	}
	if timeout == 0 && anyArmed {
		timeout = time.Millisecond
	}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	// Escalation for the spin: TryPoll never blocks, so unlike Wait it has
	// no built-in nudge ladder — yet a completion the kernel already
	// posted can be hidden behind a scribbled producer cell, and an idle
	// kernel makes no store that would heal it. Periodically force a
	// consumption wakeup so the kernel republishes its indices.
	lastEscalate := time.Now()
	for {
		n := 0
		for i := range srcs {
			if srcs[i].Revents != 0 {
				n++
				continue
			}
			if srcs[i].UDP != nil {
				if srcs[i].Events&PollIn != 0 && srcs[i].UDP.Readable() {
					srcs[i].Revents |= PollIn
				}
				if srcs[i].Events&PollOut != 0 {
					srcs[i].Revents |= PollOut // enclave UDP is always writable
				}
				if srcs[i].Revents != 0 {
					n++
				}
				continue
			}
			if armed[i] {
				res, done, err := sp.FM.TryPoll(tokens[i], clk)
				if err != nil {
					srcs[i].Revents |= PollErr
					armed[i] = false
					if cache != nil {
						delete(cache.armed, srcs[i].HostFD)
					}
					n++
					continue
				}
				if done {
					armed[i] = false
					if cache != nil {
						delete(cache.armed, srcs[i].HostFD)
					}
					if res > 0 {
						srcs[i].Revents = uint32(res)
						n++
					} else if res == 0 {
						// The kernel-side wait expired; re-arm.
						arm(i)
					} else {
						// The kernel refused to poll this descriptor
						// (closed fd, hostile errno): report it, as epoll
						// reports EPOLLERR — swallowing it would leave the
						// descriptor silently unwatched for the rest of
						// this wait.
						srcs[i].Revents |= PollErr
						n++
					}
				}
			}
		}
		if n > 0 {
			cancelRest()
			return n, nil
		}
		if timeout == 0 || (!deadline.IsZero() && time.Now().After(deadline)) {
			cancelRest()
			return 0, nil
		}
		if anyArmed && time.Since(lastEscalate) >= 2*time.Millisecond {
			sp.FM.Escalate()
			lastEscalate = time.Now()
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// Poll event bits, re-exported for API users.
const (
	PollIn  = uint32(1) << 0
	PollOut = uint32(1) << 2
	PollErr = uint32(1) << 3
)
