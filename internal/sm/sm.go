// Package sm implements the Service Module (§4.2): the layer that bridges
// the gap between what the FIOKPs deliver (layer-2 frames, raw CQEs) and
// what unmodified applications expect (POSIX socket and file syscalls).
//
// It has three parts, as in the paper:
//
//   - The in-enclave UDP/IP stack: a trimmed netstack configuration
//     (UDP-only — the LWIP 80K→5K cut) whose link device round-robins
//     outgoing frames across the XSK FastPath Modules.
//   - The SyncProxy: a thin per-thread stub that forwards the five
//     io_uring-served syscalls to a UringFM and blocks for the result.
//   - The API submodule: routes syscalls to the right IO provider and
//     aggregates poll across providers by arming asynchronous io_uring
//     polls for host descriptors while busy-watching enclave UDP sockets.
//
//rakis:role enclave
package sm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/fm"
	"rakis/internal/mem"
	"rakis/internal/netstack"
	"rakis/internal/tuner"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// XskLink exposes a set of XSK FastPath Modules as the enclave stack's
// layer-2 device. TX is flow-affine: each outgoing IPv4/UDP frame is
// hashed with the reversed netstack.FlowHash tuple, which by the RSS
// consistency invariant is exactly the queue its flow's inbound packets
// arrive on — so a flow's RX, stack processing, and TX all stay on one
// shard and the per-shard TX queues and flush locks never see
// cross-shard traffic. Frames with no flow identity (ARP, non-IPv4)
// hand off to shard 0, matching the steering program's ARP-on-queue-0
// rule. The retained round-robin mode is the pre-shard ablation.
//
// Scalar SendFrame calls from unmodified callers fan into opportunistic
// batches: each call enqueues its frame on its shard and whichever
// caller wins that shard's flush lock drains everything queued there
// into one SendBatch run — so an uncontended caller flushes a batch of
// one immediately (scalar-identical behaviour), while concurrent
// senders of the same shard amortize the ring lock, certification pass,
// and MM wakeup without anyone ever blocking to wait for a batch to
// fill.
type XskLink struct {
	socks []*xsk.Socket
	next  atomic.Uint32
	mac   [6]byte
	mtu   int

	shards     []linkShard
	roundRobin bool

	// tuning, when non-nil, tells the send ladder which wakeup mode is
	// in effect: under busy-poll the kernel worker drains xTX every few
	// microseconds, so a full-ring retry sleeps at poll scale instead of
	// climbing the long need-wakeup backoff.
	tuning *tuner.State
	// shardTuning, when set, gives each shard's ladder its own mode
	// cell so a busy-polled hot queue backs off at poll scale while its
	// idle neighbours keep the long need-wakeup ladder.
	shardTuning []*tuner.State
}

// linkShard is one XSK queue's TX state: its coalescing queue, its
// flush lock, and its transmit counter.
type linkShard struct {
	txq     chan txReq
	flushMu sync.Mutex
	txPkts  atomic.Uint64
}

// txReq is one queued scalar SendFrame awaiting a batched flush.
type txReq struct {
	data []byte
	res  chan error
}

// txQueueCap bounds each shard's scalar-call coalescing queue.
// Enqueuers double as flushers, so a full queue only ever means a flush
// is in progress.
const txQueueCap = 256

// NewXskLink bundles the XSKs behind one link device.
func NewXskLink(socks []*xsk.Socket, mac [6]byte, mtu int) *XskLink {
	l := &XskLink{
		socks:  socks,
		mac:    mac,
		mtu:    mtu,
		shards: make([]linkShard, len(socks)),
	}
	for i := range l.shards {
		l.shards[i].txq = make(chan txReq, txQueueCap)
	}
	return l
}

// SetRoundRobin reverts TX queue selection to the pre-shard round-robin
// (the flow-affinity ablation). Call before traffic starts.
func (l *XskLink) SetRoundRobin(on bool) { l.roundRobin = on }

// SetShardTuning installs per-shard tuner states (index-aligned with
// the sockets). Call before traffic starts.
func (l *XskLink) SetShardTuning(states []*tuner.State) { l.shardTuning = states }

// ShardTx returns the number of frames shard i has transmitted.
func (l *XskLink) ShardTx(i int) uint64 {
	if i < 0 || i >= len(l.shards) {
		return 0
	}
	return l.shards[i].txPkts.Load()
}

// shardState returns the tuner cell steering shard i's send ladder.
func (l *XskLink) shardState(i int) *tuner.State {
	if i >= 0 && i < len(l.shardTuning) {
		return l.shardTuning[i]
	}
	return l.tuning
}

// txShard picks the TX queue for one frame. Flow-affine mode parses the
// IPv4 L4 header the enclave stack just built and hashes the reversed
// flow tuple — the shard the peer's packets arrive on. UDP and TCP both
// carry their port pair at the same offsets, so a TCP connection's
// entire output (handshake replies, data, ACKs, retransmits) rides the
// same lane its inbound segments arrive on. Anything without a flow
// identity (ARP, other protocols) goes to shard 0, whose queue also
// carries inbound ARP. Round-robin mode rotates, as the pre-shard link
// did.
func (l *XskLink) txShard(frame []byte) int {
	n := len(l.socks)
	if n <= 1 {
		return 0
	}
	if l.roundRobin {
		return int(l.next.Add(1)) % n
	}
	const ethHdr = 14
	if len(frame) < ethHdr+20 || frame[12] != 0x08 || frame[13] != 0x00 {
		return 0
	}
	ip := frame[ethHdr:]
	if ip[0]>>4 != 4 {
		return 0
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < 20 || (ip[9] != 17 && ip[9] != 6) || len(frame) < ethHdr+ihl+4 {
		return 0
	}
	var src, dst netstack.IP4
	copy(src[:], ip[12:16])
	copy(dst[:], ip[16:20])
	sport := uint16(ip[ihl])<<8 | uint16(ip[ihl+1])
	dport := uint16(ip[ihl+2])<<8 | uint16(ip[ihl+3])
	return netstack.TXShard(src, dst, sport, dport, n)
}

// sendRetryMax bounds SendFrame's retries on a full ring. Transient
// fullness has two causes: genuine wire backpressure (completions land
// within the backoff) and a scribbled shared control word quarantining
// the ring — each retry's certified refresh counts toward the
// quarantine-and-resync threshold, so the ring heals within the first
// few attempts. Fullness that survives all retries means the wire really
// is the bottleneck, and the frame drops like a NIC queue overflow.
const sendRetryMax = 8

// SendFrame publishes one frame on xTX through the opportunistic batch
// coalescer: the frame is queued, and the caller either wins the flush
// lock and drains the whole queue in one SendBatch run, or spins briefly
// while a concurrent flusher carries its frame out. Either way the call
// returns once this frame's outcome is known — it never waits for more
// frames to accumulate.
func (l *XskLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	shard := l.txShard(data)
	sh := &l.shards[shard]
	req := txReq{data: data, res: make(chan error, 1)}
	sh.txq <- req
	for {
		select {
		case err := <-req.res:
			return clk.Now(), err
		default:
		}
		if sh.flushMu.TryLock() {
			l.flushQueued(shard, clk)
			sh.flushMu.Unlock()
		}
		select {
		case err := <-req.res:
			return clk.Now(), err
		case <-time.After(20 * time.Microsecond):
		}
	}
}

// SendFrames transmits a run of frames as one batched publish per ring
// pass, implementing netstack.BatchLinkDevice for the stack's batched IP
// path. The run is partitioned by TX shard first — a batched send from
// one socket is a single flow, so the common case is one partition — and
// each partition goes out through its own queue's ring. An error is
// reported only when the first frame fails.
func (l *XskLink) SendFrames(frames [][]byte, clk *vtime.Clock) (uint64, error) {
	errs := make([]error, len(frames))
	if l.roundRobin || len(l.socks) == 1 {
		// Ablation/single-queue: whole run on one rotating socket, as
		// the pre-shard link sent it.
		shard := 0
		if l.roundRobin && len(l.socks) > 1 {
			shard = int(l.next.Add(1)) % len(l.socks)
		}
		l.sendBatchRetry(shard, frames, errs, clk)
	} else {
		first := l.txShard(frames[0])
		uniform := true
		var shards []int
		for i := 1; i < len(frames); i++ {
			s := l.txShard(frames[i])
			if s != first {
				if uniform {
					shards = make([]int, len(frames))
					for j := 0; j < i; j++ {
						shards[j] = first
					}
					uniform = false
				}
			}
			if !uniform {
				shards[i] = s
			}
		}
		if uniform {
			l.sendBatchRetry(first, frames, errs, clk)
		} else {
			// Mixed run: send each shard's subsequence as its own batch,
			// preserving per-flow order (a flow only ever has one shard).
			for sh := 0; sh < len(l.socks); sh++ {
				var sub [][]byte
				var idx []int
				for i, s := range shards {
					if s == sh {
						sub = append(sub, frames[i])
						idx = append(idx, i)
					}
				}
				if len(sub) == 0 {
					continue
				}
				subErrs := make([]error, len(sub))
				l.sendBatchRetry(sh, sub, subErrs, clk)
				for j, i := range idx {
					errs[i] = subErrs[j]
				}
			}
		}
	}
	for i, err := range errs {
		if err != nil {
			if i == 0 {
				return clk.Now(), err
			}
			break
		}
	}
	return clk.Now(), nil
}

// flushQueued drains every scalar frame queued on one shard into
// batched sends, delivering each frame's outcome on its result channel.
// Caller holds that shard's flushMu.
func (l *XskLink) flushQueued(shard int, clk *vtime.Clock) {
	sh := &l.shards[shard]
	for {
		var batch []txReq
	drain:
		for len(batch) < txQueueCap {
			select {
			case r := <-sh.txq:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if len(batch) == 0 {
			return
		}
		frames := make([][]byte, len(batch))
		for i, r := range batch {
			frames[i] = r.data
		}
		errs := make([]error, len(frames))
		l.sendBatchRetry(shard, frames, errs, clk)
		for i, r := range batch {
			r.res <- errs[i]
		}
	}
}

// sendBatchRetry pushes a frame run through one shard's SendBatch,
// riding out transient fullness with the same reap-and-backoff ladder as
// the old scalar path (each retry's certified refresh also counts toward
// quarantine-and-resync, healing a scribbled control word). Frames still
// unsent after the ladder drop like a NIC queue overflow; per-frame
// outcomes land positionally in errs.
func (l *XskLink) sendBatchRetry(shard int, frames [][]byte, errs []error, clk *vtime.Clock) {
	s := l.socks[shard]
	st := l.shardState(shard)
	sent := 0
	backoff := 10 * time.Microsecond
	maxBackoff := 320 * time.Microsecond
	if st.BusyPoll() {
		maxBackoff = 20 * time.Microsecond
	}
	attempt := 0
	for sent < len(frames) {
		n, err := s.SendBatch(frames[sent:], clk)
		if n > 0 {
			l.shards[shard].txPkts.Add(uint64(n))
		}
		sent += n
		if sent == len(frames) {
			break
		}
		if err != nil && err != xsk.ErrRingFull && err != xsk.ErrNoFrame {
			// A frame the ring can never take (e.g. oversized): record
			// its error and move past it.
			errs[sent] = err
			sent++
			continue
		}
		if attempt >= sendRetryMax {
			for i := sent; i < len(frames); i++ {
				if err != nil {
					errs[i] = err
				} else {
					errs[i] = xsk.ErrRingFull
				}
			}
			break
		}
		attempt++
		s.Reap(clk)
		time.Sleep(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// SetTuning couples the link's send ladder to the shared tuner state.
// Call before traffic starts.
func (l *XskLink) SetTuning(st *tuner.State) { l.tuning = st }

// SpliceFrame re-queues a certified RX frame view onto the TX ring of
// the socket that owns its UMem frame — a frame can only be spliced
// within its own XSK, never across the round-robin set — riding out
// transient TX fullness with the same reap-and-backoff ladder as the
// copied send path. It implements netstack.SpliceDevice for the
// in-place echo path.
func (l *XskLink) SpliceFrame(v *mem.View, n uint32, clk *vtime.Clock) error {
	sock, ok := v.Owner().(*xsk.Socket)
	if !ok {
		return fmt.Errorf("sm: view not backed by an XSK socket")
	}
	backoff := 10 * time.Microsecond
	var err error
	for attempt := 0; attempt <= sendRetryMax; attempt++ {
		if err = sock.SpliceFrame(v, n, clk); err != xsk.ErrRingFull {
			if err == nil {
				// A splice is inherently shard-affine (the frame never
				// leaves its owning XSK); find the shard for its counter.
				for i, s := range l.socks {
					if s == sock {
						l.shards[i].txPkts.Add(1)
						break
					}
				}
			}
			return err
		}
		sock.Reap(clk)
		time.Sleep(backoff)
		if backoff < 320*time.Microsecond {
			backoff *= 2
		}
	}
	return err
}

// MAC returns the interface hardware address.
func (l *XskLink) MAC() [6]byte { return l.mac }

// MTU returns the link MTU.
func (l *XskLink) MTU() int { return l.mtu }

// NewEnclaveStack builds the trimmed in-enclave UDP/IP stack over the
// given XSK link, with one demux shard per XSK queue so the pump
// threads share no hot-path lock. enableTCP opts in to the in-enclave
// TCP layer (beyond the paper, which kept the enclave UDP-only per §7
// and proxied TCP through io_uring); when enabled the listen path runs
// stateless SYN cookies, since an enclave port is open-internet-facing
// and must hold no state for unproven peers.
func NewEnclaveStack(link *XskLink, ip netstack.IP4, model *vtime.Model, counters *vtime.Counters, globalLock, enableTCP bool) (*netstack.Stack, error) {
	if model == nil {
		model = vtime.Default()
	}
	return netstack.New(netstack.Config{
		Name:          "enclave",
		Dev:           link,
		IP:            ip,
		Model:         model,
		Counters:      counters,
		EnableTCP:     enableTCP,
		TCPCookies:    enableTCP,
		EnableICMP:    false,
		PerPacketCost: model.EnclaveStackPerPacket,
		GlobalLock:    globalLock,
		Shards:        len(link.socks),
	})
}

// SyncProxy forwards synchronous IO requests to a per-thread io_uring FM
// and waits for completion (§4.2). It is per-thread, like its FM.
type SyncProxy struct {
	FM    *fm.UringFM
	model *vtime.Model
}

// NewSyncProxy wraps a UringFM.
func NewSyncProxy(u *fm.UringFM, model *vtime.Model) *SyncProxy {
	if model == nil {
		model = vtime.Default()
	}
	return &SyncProxy{FM: u, model: model}
}

func (sp *SyncProxy) charge(clk *vtime.Clock) {
	clk.Charge(vtime.CompAPI, sp.model.SyncProxyOp)
}

// Read reads from a host file through io_uring.
func (sp *SyncProxy) Read(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.ReadAt(fd, p, fm.CursorOff, clk)
}

// Pread reads at an offset.
func (sp *SyncProxy) Pread(fd int, p []byte, off int64, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.ReadAt(fd, p, uint64(off), clk)
}

// Write writes to a host file through io_uring.
func (sp *SyncProxy) Write(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.WriteAt(fd, p, fm.CursorOff, clk)
}

// Pwrite writes at an offset.
func (sp *SyncProxy) Pwrite(fd int, p []byte, off int64, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.WriteAt(fd, p, uint64(off), clk)
}

// Send sends on a host TCP socket through io_uring.
func (sp *SyncProxy) Send(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.Send(fd, p, clk)
}

// Recv receives from a host TCP socket through io_uring.
func (sp *SyncProxy) Recv(fd int, p []byte, clk *vtime.Clock) (int, error) {
	sp.charge(clk)
	return sp.FM.Recv(fd, p, clk)
}

// Fsync flushes a host file through io_uring.
func (sp *SyncProxy) Fsync(fd int, clk *vtime.Clock) error {
	sp.charge(clk)
	return sp.FM.Fsync(fd, clk)
}

// PollSource is one descriptor in a cross-provider poll: an enclave UDP
// socket, an enclave TCP socket, or a host descriptor reached through
// io_uring.
type PollSource struct {
	// UDP, when non-nil, is an enclave-stack UDP socket.
	UDP *netstack.UDPSocket
	// TCP, when non-nil, is an enclave-stack TCP socket (connection or
	// listener; a listener's readability is backlog occupancy).
	TCP *netstack.TCPSocket
	// HostFD is a host descriptor (TCP socket or file), used when UDP
	// and TCP are nil.
	HostFD int
	// Events is the interest mask (PollIn/PollOut as in iouring).
	Events uint32
	// Revents receives the ready mask.
	Revents uint32
}

// PollCache keeps io_uring polls armed across Poll calls, the way an
// event loop wants: a descriptor that stayed quiet through one select
// need not be re-armed (two ring operations plus a kernel wakeup) on the
// next. The cache is per-thread, like the io_uring FM it feeds.
type PollCache struct {
	armed map[int]pollArm
}

type pollArm struct {
	token  uint64
	events uint32
}

// NewPollCache returns an empty cache.
func NewPollCache() *PollCache {
	return &PollCache{armed: make(map[int]pollArm)}
}

// Drop cancels any armed poll for fd (call on close).
func (c *PollCache) Drop(fd int, sp *SyncProxy, clk *vtime.Clock) {
	if c == nil {
		return
	}
	if arm, ok := c.armed[fd]; ok {
		sp.FM.CancelPoll(arm.token, clk)
		delete(c.armed, fd)
	}
}

// Poll is the API submodule's cross-provider aggregation (§4.2): host
// descriptors get asynchronous io_uring poll operations; enclave UDP
// sockets are watched directly; the caller busy-waits over both so no
// provider's events starve the other's. timeout < 0 blocks indefinitely.
// Armed polls are cancelled before returning.
func Poll(srcs []PollSource, timeout time.Duration, sp *SyncProxy, model *vtime.Model, clk *vtime.Clock) (int, error) {
	return PollCached(srcs, timeout, sp, model, clk, nil)
}

// PollCached is Poll with an optional armed-poll cache: with a cache,
// un-fired polls stay armed across calls instead of being cancelled.
func PollCached(srcs []PollSource, timeout time.Duration, sp *SyncProxy, model *vtime.Model, clk *vtime.Clock, cache *PollCache) (int, error) {
	if model == nil {
		model = vtime.Default()
	}
	// The per-descriptor cost is paid for work actually done: arming a
	// poll, checking an enclave socket, or consuming a completion.
	// Descriptors left armed in the cache cost nothing while quiet —
	// that is the epoll-shaped O(ready) advantage over re-scanned poll.
	clk.Charge(vtime.CompAPI, model.APIHook)

	// Arm async polls for host descriptors, reusing cached arms whose
	// interest mask matches. Fresh arms are batched: every descriptor
	// that needs one goes out in a single SubmitPollN run, so N cold
	// descriptors cost one producer publish and at most one MM wakeup.
	tokens := make([]uint64, len(srcs))
	armed := make([]bool, len(srcs))
	arm := func(i int) error {
		clk.Charge(vtime.CompAPI, model.PollPerFD)
		tok, err := sp.FM.SubmitPoll(srcs[i].HostFD, srcs[i].Events, clk)
		if err != nil {
			return err
		}
		tokens[i] = tok
		armed[i] = true
		if cache != nil {
			cache.armed[srcs[i].HostFD] = pollArm{token: tok, events: srcs[i].Events}
		}
		return nil
	}
	var needArm []int
	for i := range srcs {
		srcs[i].Revents = 0
		if srcs[i].UDP != nil || srcs[i].TCP != nil {
			clk.Charge(vtime.CompAPI, model.PollPerFD)
			continue
		}
		if cache != nil {
			if prev, ok := cache.armed[srcs[i].HostFD]; ok {
				if prev.events == srcs[i].Events {
					tokens[i] = prev.token
					armed[i] = true
					continue
				}
				sp.FM.CancelPoll(prev.token, clk)
				delete(cache.armed, srcs[i].HostFD)
			}
		}
		needArm = append(needArm, i)
	}
	if len(needArm) > 0 {
		reqs := make([]fm.PollReq, len(needArm))
		for j, i := range needArm {
			clk.Charge(vtime.CompAPI, model.PollPerFD)
			reqs[j] = fm.PollReq{FD: srcs[i].HostFD, Events: srcs[i].Events}
		}
		toks, err := sp.FM.SubmitPollN(reqs, clk)
		for j := range toks {
			i := needArm[j]
			tokens[i] = toks[j]
			armed[i] = true
			if cache != nil {
				cache.armed[srcs[i].HostFD] = pollArm{token: toks[j], events: srcs[i].Events}
			}
		}
		if err != nil {
			return 0, err
		}
	}
	cancelRest := func() {
		if cache != nil {
			return // keep un-fired polls armed for the next call
		}
		for i := range srcs {
			if armed[i] {
				sp.FM.CancelPoll(tokens[i], clk)
			}
		}
	}

	// A zero timeout still needs one kernel round trip for armed polls:
	// the completion of an already-ready descriptor takes a Monitor
	// Module sweep plus the SQ worker. Bound that wait instead of
	// reporting a false not-ready.
	anyArmed := false
	for i := range srcs {
		if armed[i] {
			anyArmed = true
		}
	}
	if timeout == 0 && anyArmed {
		timeout = time.Millisecond
	}
	var deadline time.Time
	if timeout >= 0 {
		deadline = time.Now().Add(timeout)
	}
	// Escalation for the spin: TryPoll never blocks, so unlike Wait it has
	// no built-in nudge ladder — yet a completion the kernel already
	// posted can be hidden behind a scribbled producer cell, and an idle
	// kernel makes no store that would heal it. Periodically force a
	// consumption wakeup so the kernel republishes its indices.
	lastEscalate := time.Now()
	for {
		n := 0
		for i := range srcs {
			if srcs[i].Revents != 0 {
				n++
				continue
			}
			if srcs[i].UDP != nil {
				if srcs[i].Events&PollIn != 0 && srcs[i].UDP.Readable() {
					srcs[i].Revents |= PollIn
				}
				if srcs[i].Events&PollOut != 0 {
					srcs[i].Revents |= PollOut // enclave UDP is always writable
				}
				if srcs[i].Revents != 0 {
					n++
				}
				continue
			}
			if srcs[i].TCP != nil {
				if srcs[i].Events&PollIn != 0 && srcs[i].TCP.Readable() {
					srcs[i].Revents |= PollIn
				}
				if srcs[i].Events&PollOut != 0 && srcs[i].TCP.Writable() {
					srcs[i].Revents |= PollOut
				}
				if srcs[i].Revents != 0 {
					n++
				}
				continue
			}
			if armed[i] {
				res, done, err := sp.FM.TryPoll(tokens[i], clk)
				if err != nil {
					srcs[i].Revents |= PollErr
					armed[i] = false
					if cache != nil {
						delete(cache.armed, srcs[i].HostFD)
					}
					n++
					continue
				}
				if done {
					armed[i] = false
					if cache != nil {
						delete(cache.armed, srcs[i].HostFD)
					}
					if res > 0 {
						srcs[i].Revents = uint32(res)
						n++
					} else if res == 0 {
						// The kernel-side wait expired; re-arm.
						arm(i)
					} else {
						// The kernel refused to poll this descriptor
						// (closed fd, hostile errno): report it, as epoll
						// reports EPOLLERR — swallowing it would leave the
						// descriptor silently unwatched for the rest of
						// this wait.
						srcs[i].Revents |= PollErr
						n++
					}
				}
			}
		}
		if n > 0 {
			cancelRest()
			return n, nil
		}
		if timeout == 0 || (!deadline.IsZero() && time.Now().After(deadline)) {
			cancelRest()
			return 0, nil
		}
		if anyArmed && time.Since(lastEscalate) >= 2*time.Millisecond {
			sp.FM.Escalate()
			lastEscalate = time.Now()
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// Poll event bits, re-exported for API users.
const (
	PollIn  = uint32(1) << 0
	PollOut = uint32(1) << 2
	PollErr = uint32(1) << 3
)
