package workloads

import (
	"fmt"
	"time"

	"rakis/internal/sys"
)

// IperfParams configures one iperf3-style UDP throughput test (§6.1:
// 10-second runs, packet sizes up to 1460 bytes, 25 Gbps offered load —
// here the duration is expressed as a datagram count).
type IperfParams struct {
	// PacketSize is the UDP payload size in bytes.
	PacketSize int
	// Count is the number of datagrams the client offers.
	Count int
	// Port is the server port (default 5201, iperf3's default).
	Port uint16
}

// IperfResult is one measurement.
type IperfResult struct {
	// Received is the datagram count that survived to the application.
	Received int
	// Bytes is the payload volume received.
	Bytes uint64
	// Cycles is the virtual span from first to last datagram at the
	// server.
	Cycles uint64
	// Gbps is the computed application-level throughput.
	Gbps float64
}

// IperfUDP runs the server in the environment under test and blasts it
// with datagrams from the native client, mirroring the §6.1 methodology.
// Throughput is received bytes over the server's virtual receive span.
func IperfUDP(env Env, p IperfParams) (IperfResult, error) {
	if p.Port == 0 {
		p.Port = 5201
	}
	if p.PacketSize <= 0 {
		p.PacketSize = 1460
	}
	if p.Count <= 0 {
		p.Count = 2000
	}
	srv, err := env.ServerThread()
	if err != nil {
		return IperfResult{}, err
	}
	sfd, err := srv.Socket(sys.UDP)
	if err != nil {
		return IperfResult{}, err
	}
	if err := srv.Bind(sfd, p.Port); err != nil {
		return IperfResult{}, err
	}

	go func() {
		cli := env.ClientThread()
		cfd, err := cli.Socket(sys.UDP)
		if err != nil {
			return
		}
		dst := sys.Addr{IP: env.ServerIP, Port: p.Port}
		payload := make([]byte, p.PacketSize)
		for i := 0; i < p.Count; i++ {
			putU32(payload, uint32(i))
			cli.SendTo(cfd, payload, dst)
		}
	}()

	var res IperfResult
	buf := make([]byte, 65536)
	var first, last uint64
	clk := srv.Clock()
	for {
		n, _, ok := pollRecv(srv, sfd, buf, 300*time.Millisecond)
		if !ok {
			break // stream over: the client stopped offering load
		}
		if res.Received == 0 {
			first = clk.Now()
		}
		last = clk.Now()
		res.Received++
		res.Bytes += uint64(n)
		if res.Received == p.Count {
			break
		}
	}
	if res.Received < 2 {
		return res, fmt.Errorf("iperf: only %d datagrams arrived", res.Received)
	}
	res.Cycles = last - first
	seconds := env.Model.Seconds(res.Cycles)
	// The span covers Received-1 inter-arrival gaps.
	res.Gbps = float64(res.Bytes-uint64(p.PacketSize)) * 8 / seconds / 1e9
	return res, nil
}
