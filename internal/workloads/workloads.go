// Package workloads contains faithful mini-implementations of the six
// programs in the paper's evaluation (§6): iperf3, Curl-over-QUIC,
// Memcached (with a memaslap-style load generator), fstime, Redis (with
// a redis-benchmark-style load generator), and MCrypt — plus the
// HelloWorld baseline of Figure 2.
//
// Every workload is written against the sys.Sys syscall surface and runs
// unmodified on all five environments; only the bound implementation
// differs. Application-level compute (request parsing, hash lookups,
// encryption) is charged to the calling thread's virtual clock with the
// constants below, so environment comparisons include realistic
// userspace work between syscalls.
package workloads

import (
	"time"

	"rakis/internal/sys"
	"rakis/internal/vtime"
)

// Application-level cycle costs (per operation unless stated otherwise).
const (
	// MemcachedOpCycles is request parsing plus one hash-table op.
	MemcachedOpCycles = 4000
	// MemaslapClientOpCycles is the load generator's own per-request
	// work (request build, response check) — identical across
	// environments, so it dilutes rather than biases ratios.
	MemaslapClientOpCycles = 1000
	// RedisOpCycles is RESP parsing plus one dict op: Redis does more
	// userspace work per command than memcached.
	RedisOpCycles = 6000
	// CryptPerByteCycles is MCrypt's per-byte encryption cost (Rijndael
	// in CBC as mcrypt configures it; dominated by the cipher).
	CryptPerByteCycles = 5.0
	// QuicPerPacketCycles is the client-side QUIC framing cost.
	QuicPerPacketCycles = 400
	// QuicServerPacePerPacket is the native web server's per-packet cost
	// (QUIC encryption, pacing, HTTP/3 framing): it bounds the stream at
	// ~6 Gbps, which is what a single QUIC stream achieves in practice —
	// the download is server-paced unless the client is slower, exactly
	// the Figure 4(b) regime (only Gramine-SGX is slower).
	QuicServerPacePerPacket = 3900
)

// Env bundles what a networked workload needs: thread factories for both
// sides, the server address, and the cost model for unit conversion.
type Env struct {
	// ServerThread creates an application thread in the environment
	// under test.
	ServerThread func() (sys.Sys, error)
	// ClientThread creates an uncosted native load-generator thread.
	ClientThread func() sys.Sys
	// ServerIP is where servers listen in this environment.
	ServerIP sys.IP4
	// ClientIP is the load generator's address. Sharded workloads need
	// it to pin flows to RSS shards by source-port choice.
	ClientIP sys.IP4
	// KernelIP is the server host's kernel address (TCP servers under
	// RAKIS listen here, since RAKIS uses the host TCP stack).
	KernelIP sys.IP4
	// TCPIP, when non-zero, overrides where TCP servers listen: the
	// in-enclave XSK TCP environment terminates TCP at the enclave
	// stack's address instead of the host kernel's.
	TCPIP sys.IP4
	// Model converts cycles to seconds.
	Model *vtime.Model
	// SpliceUDPEcho, when non-nil, can register a zero-copy in-stack UDP
	// echo on a port (RAKIS environments only). It reports whether the
	// splice is active; environments without the capability leave it nil.
	SpliceUDPEcho func(port uint16, enable bool) bool
}

// TCPServerIP returns the address TCP servers are reachable at. The
// paper's RAKIS terminates TCP in the host kernel stack (§7, "TCP Stack
// Considerations"), so the default is the kernel address; the in-enclave
// XSK TCP environment overrides it with the enclave stack's address via
// TCPIP.
func (e Env) TCPServerIP() sys.IP4 {
	if e.TCPIP != (sys.IP4{}) {
		return e.TCPIP
	}
	return e.KernelIP
}

// span measures virtual elapsed time over a thread's clock.
type span struct {
	clk   *vtime.Clock
	start uint64
}

func startSpan(clk *vtime.Clock) span { return span{clk: clk, start: clk.Now()} }

func (s span) cycles() uint64 { return s.clk.Now() - s.start }

// pollRecv waits (poll + non-blocking recv, as the real tools' event
// loops do) for one datagram, returning false when the real-time timeout
// expires — the workloads' end-of-stream signal.
func pollRecv(t sys.Sys, fd int, buf []byte, timeout time.Duration) (int, sys.Addr, bool) {
	deadline := time.Now().Add(timeout)
	for {
		n, src, err := t.RecvFrom(fd, buf, false)
		if err == nil {
			return n, src, true
		}
		fds := []sys.PollFD{{FD: fd, Events: sys.PollIn}}
		remain := time.Until(deadline)
		if remain <= 0 {
			return 0, sys.Addr{}, false
		}
		if remain > 50*time.Millisecond {
			remain = 50 * time.Millisecond
		}
		if _, err := t.Poll(fds, remain); err != nil {
			return 0, sys.Addr{}, false
		}
	}
}

// be32 helpers for workload wire formats.
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v>>32))
	putU32(b[4:], uint32(v))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b))<<32 | uint64(getU32(b[4:]))
}
