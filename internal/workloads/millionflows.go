package workloads

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/sys"
)

// MillionFlows is the flow-scale load generator: it offers datagrams
// from a million distinct flows to one server socket without a million
// client sockets, goroutines, or per-flow state. Flows are derived, not
// stored — flow i's (source IP, source port) is computed from i — and
// the frames are injected raw on the client NIC, so the only per-flow
// memory anywhere in the run is whatever the server side keeps. The
// point of the workload is that the sharded demux keeps that at zero:
// delivery stays flat from the first flow to the millionth, and the
// (bounded) enclave ARP cache is the only state that even notices.

// FloodParams configures one run.
type FloodParams struct {
	// Flows is the number of distinct flows offered (default 1<<20).
	// Each flow sends exactly one datagram.
	Flows int
	// PacketSize is the UDP payload size (default 64, min 8: the
	// payload leads with the flow id).
	PacketSize int
	// Port is the server port (default 9, the discard service).
	Port uint16
	// Window bounds injected-minus-delivered frames in flight (default
	// 1024): the generator self-paces against the server's consumption
	// so the socket queues never overflow on a healthy host. Outstanding
	// frames that stop draining (a quarantined shard eating its flows)
	// are written off after a stall so the flood still completes.
	Window int
	// Shards is the server runtime's shard count, for the per-shard
	// delivery accounting (default 1).
	Shards int
	// EchoEvery makes the server echo every Nth delivered datagram
	// (default 1024; 0 disables): a sampled proof that the TX path stays
	// live under flood, without doubling the wire load.
	EchoEvery int
	// ServerThreads is the sink thread count (default Shards).
	ServerThreads int
	// Dev is the client NIC the generator injects raw frames on
	// (required — see experiments.World.ClientDev).
	Dev *netsim.Device
}

func (p *FloodParams) fill() {
	if p.Flows <= 0 {
		p.Flows = 1 << 20
	}
	if p.PacketSize < 8 {
		p.PacketSize = 64
	}
	if p.Port == 0 {
		p.Port = 9
	}
	if p.Window <= 0 {
		p.Window = 1024
	}
	if p.Shards <= 0 {
		p.Shards = 1
	}
	if p.EchoEvery == 0 {
		p.EchoEvery = 1024
	}
	if p.ServerThreads <= 0 {
		p.ServerThreads = p.Shards
	}
}

// FloodResult is one measurement.
type FloodResult struct {
	// Injected is how many frames went onto the wire.
	Injected int
	// Delivered is how many datagrams the server socket handed to the
	// sink threads.
	Delivered int
	// Echoed is how many sampled echoes the server transmitted.
	Echoed int
	// PerShard is Delivered split by the RSS shard each datagram's flow
	// hashes to (length Shards).
	PerShard []int
	// FirstHalf and SecondHalf are the wall-clock times to inject each
	// half of the flows: a demux that degrades with flow count shows up
	// as a second half much slower than the first.
	FirstHalf, SecondHalf time.Duration
}

// floodFlow is the derived per-flow identity — computed, never stored.
// 16384 ports across 64 source IPs cover 2^20 flows; larger floods wrap
// onto more IPs.
type floodFlow struct {
	ip   sys.IP4
	port uint16
}

func floodFlowAt(i int) floodFlow {
	return floodFlow{
		ip:   sys.IP4{10, 1, byte(i >> 22), byte(i >> 14)},
		port: uint16(20000 + (i & 0x3FFF)),
	}
}

// floodSink drains the server socket, counting per-shard deliveries and
// echoing every EchoEvery-th datagram.
func floodSink(t sys.Sys, fd int, p FloodParams, serverIP sys.IP4,
	delivered *atomic.Int64, echoed *atomic.Int64, perShard []atomic.Int64, stop <-chan struct{}) {
	buf := make([]byte, p.PacketSize+64)
	for {
		n, src, err := t.RecvFrom(fd, buf, false)
		if err != nil {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := t.Poll([]sys.PollFD{{FD: fd, Events: sys.PollIn}}, 20*time.Millisecond); err != nil {
				return
			}
			continue
		}
		d := delivered.Add(1)
		sh := netstack.RXShard(src.IP, serverIP, src.Port, p.Port, p.Shards)
		perShard[sh].Add(1)
		if p.EchoEvery > 0 && d%int64(p.EchoEvery) == 0 {
			if _, err := t.SendTo(fd, buf[:n], src); err == nil {
				echoed.Add(1)
			}
		}
	}
}

// MillionFlows runs the flood: a sink server in the environment under
// test, loaded by raw-injected frames from Flows distinct derived flows.
func MillionFlows(env Env, p FloodParams) (FloodResult, error) {
	p.fill()
	res := FloodResult{PerShard: make([]int, p.Shards)}
	if p.Dev == nil {
		return res, fmt.Errorf("millionflows: no client device to inject on")
	}

	first, err := env.ServerThread()
	if err != nil {
		return res, err
	}
	sfd, err := first.Socket(sys.UDP)
	if err != nil {
		return res, err
	}
	if err := first.Bind(sfd, p.Port); err != nil {
		return res, err
	}
	var delivered, echoed atomic.Int64
	perShard := make([]atomic.Int64, p.Shards)
	stop := make(chan struct{})
	var srvWG sync.WaitGroup
	threads := make([]sys.Sys, p.ServerThreads)
	threads[0] = first
	for i := 1; i < p.ServerThreads; i++ {
		threads[i] = first.Clone()
	}
	for _, st := range threads {
		srvWG.Add(1)
		go func(st sys.Sys) {
			defer srvWG.Done()
			floodSink(st, sfd, p, env.ServerIP, &delivered, &echoed, perShard, stop)
		}(st)
	}

	// One frame buffer for the whole flood: the NIC copies on Transmit,
	// so each injection only mutates the flow-dependent fields in place
	// — source IP and port, the payload's flow tag, the IP checksum.
	dstMAC := p.Dev.Peer().MAC()
	srcMAC := p.Dev.MAC()
	udp := make([]byte, netstack.UDPHeaderBytes+p.PacketSize)
	be16put(udp[2:4], p.Port)
	be16put(udp[4:6], uint16(len(udp)))
	// UDP checksum 0 = "not computed": legal for UDP/IPv4, and the
	// receive path honors it, so per-frame mutation skips the pseudo
	// header sum. The IP header checksum below is still real.
	frame := netstack.MarshalEth(
		netstack.EthHeader{Dst: dstMAC, Src: srcMAC, Type: netstack.EtherTypeIPv4},
		netstack.MarshalIPv4(netstack.IPv4Header{Proto: netstack.ProtoUDP, Dst: env.ServerIP}, udp))
	const (
		ipOff  = 14      // IP header offset in frame
		udpOff = 14 + 20 // UDP header offset (no IP options)
	)

	// Windowed self-pacing with stall write-off: outstanding frames a
	// dead shard will never deliver must not wedge the generator.
	const stallAfter = 250 * time.Millisecond
	writtenOff := int64(0)
	lastSeen := int64(0)
	lastProgress := time.Now()
	wait := func() {
		for {
			d := delivered.Load()
			if d != lastSeen {
				lastSeen, lastProgress = d, time.Now()
			}
			if int64(res.Injected)-d-writtenOff < int64(p.Window) {
				return
			}
			if time.Since(lastProgress) > stallAfter {
				writtenOff = int64(res.Injected) - d
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	startWall := time.Now()
	var halfWall time.Time
	var vt uint64
	for i := 0; i < p.Flows; i++ {
		wait()
		f := floodFlowAt(i)
		copy(frame[ipOff+12:ipOff+16], f.ip[:])
		be16put(frame[udpOff:udpOff+2], f.port)
		putU32(frame[udpOff+8:], uint32(i))
		frame[ipOff+10], frame[ipOff+11] = 0, 0
		ck := netstack.Checksum(frame[ipOff : ipOff+20])
		be16put(frame[ipOff+10:ipOff+12], ck)
		end, err := p.Dev.Transmit(frame, vt)
		if err != nil {
			close(stop)
			srvWG.Wait()
			return res, fmt.Errorf("millionflows: inject %d: %w", i, err)
		}
		vt = end
		res.Injected++
		if i == p.Flows/2 {
			halfWall = time.Now()
		}
	}
	// Drain: the flood is done when delivery stops moving.
	for {
		d := delivered.Load()
		time.Sleep(20 * time.Millisecond)
		if delivered.Load() == d {
			break
		}
	}
	close(stop)
	srvWG.Wait()

	res.Delivered = int(delivered.Load())
	res.Echoed = int(echoed.Load())
	for i := range perShard {
		res.PerShard[i] = int(perShard[i].Load())
	}
	if halfWall.IsZero() {
		halfWall = time.Now()
	}
	res.FirstHalf = halfWall.Sub(startWall)
	res.SecondHalf = time.Since(halfWall)
	return res, nil
}

// be16put writes a big-endian uint16 (the workloads' wire order).
func be16put(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
