package workloads

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rakis/internal/sys"
	"rakis/internal/vtime"
)

// Memcached is a UDP key-value cache in the style of the §6.1 experiment:
// a multi-threaded server (1..8 threads all receiving on one socket) and
// a memaslap-style load generator with 4 threads driving 32 concurrent
// connections at a 9:1 GET:SET mix over 1 KB values.

// Wire format: 'G' keyLen key | 'S' keyLen key value | 'Q' (poison pill).
// Replies:     'V' value | 'N' (miss) | 'O' (stored).

// MemcachedParams configures one run.
type MemcachedParams struct {
	// ServerThreads is the memcached -t value under sweep (Figure 4c).
	ServerThreads int
	// ClientThreads and Connections mirror memaslap's 4 threads / 32
	// concurrent connections (§6.1).
	ClientThreads int
	Connections   int
	// Ops is the total request count.
	Ops int
	// ValueBytes is the stored value size.
	ValueBytes int
	// Keys is the key-space size.
	Keys int
	// Port is the server port (default 11211).
	Port uint16
}

func (p *MemcachedParams) fill() {
	if p.ServerThreads <= 0 {
		p.ServerThreads = 4
	}
	if p.ClientThreads <= 0 {
		p.ClientThreads = 4
	}
	if p.Connections <= 0 {
		p.Connections = 32
	}
	if p.Ops <= 0 {
		p.Ops = 4000
	}
	if p.ValueBytes <= 0 {
		p.ValueBytes = 1024
	}
	if p.Keys <= 0 {
		p.Keys = 512
	}
	if p.Port == 0 {
		p.Port = 11211
	}
}

// MemcachedResult is one measurement.
type MemcachedResult struct {
	// Ops completed.
	Ops int
	// Cycles is the client-side virtual makespan.
	Cycles uint64
	// OpsPerSec is the reported throughput, Figure 4(c)'s unit.
	OpsPerSec float64
}

// kvStore is the sharded in-memory table; shard locking emulates
// memcached's item locks, with a futex charge per access (§6.1's
// Gramine-Direct futex observation).
type kvStore struct {
	shards [16]struct {
		mu sync.Mutex
		m  map[string][]byte
	}
}

func newKVStore() *kvStore {
	s := &kvStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func (s *kvStore) shard(key string) *struct {
	mu sync.Mutex
	m  map[string][]byte
} {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &s.shards[h%16]
}

func (s *kvStore) get(key string) ([]byte, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[key]
	return v, ok
}

func (s *kvStore) set(key string, val []byte) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cp := make([]byte, len(val))
	copy(cp, val)
	sh.m[key] = cp
}

// memcachedServe runs one server thread until it receives a poison pill
// — or, under fault injection, until the socket has been idle long
// enough that every pill must have been lost on the wire: the thread
// gives up so the run still terminates when the host denies service.
func memcachedServe(t sys.Sys, fd int, store *kvStore) {
	const idleMax = 30 * time.Second
	buf := make([]byte, 65536)
	reply := make([]byte, 0, 65536)
	ops := 0
	idle := time.Now().Add(idleMax)
	for {
		n, src, err := t.RecvFrom(fd, buf, false)
		if err != nil {
			if time.Now().After(idle) {
				return
			}
			// No datagram (or a sibling thread won the race for it):
			// wait for readiness and retry. A poll error means the
			// socket itself is gone.
			if _, err := t.Poll([]sys.PollFD{{FD: fd, Events: sys.PollIn}}, 50*time.Millisecond); err != nil {
				return
			}
			continue
		}
		idle = time.Now().Add(idleMax)
		if n < 1 {
			continue
		}
		t.Clock().Advance(MemcachedOpCycles)
		ops++
		switch buf[0] {
		case 'Q':
			return
		case 'G':
			if n < 2 {
				continue
			}
			kl := int(buf[1])
			if n < 2+kl {
				continue
			}
			key := string(buf[2 : 2+kl])
			if ops%8 == 0 {
				t.Futex() // item-lock contention, occasionally
			}
			v, ok := store.get(key)
			if ok {
				reply = append(reply[:0], 'V')
				reply = append(reply, v...)
			} else {
				reply = append(reply[:0], 'N')
			}
			t.SendTo(fd, reply, src)
			// Yield so sibling server threads share the socket queue:
			// on a single-core host one goroutine would otherwise drain
			// it alone and the virtual clocks would report a
			// single-threaded server.
			runtime.Gosched()
		case 'S':
			if n < 2 {
				continue
			}
			kl := int(buf[1])
			if n < 2+kl {
				continue
			}
			key := string(buf[2 : 2+kl])
			if ops%8 == 0 {
				t.Futex()
			}
			store.set(key, buf[2+kl:n])
			t.SendTo(fd, []byte{'O'}, src)
			runtime.Gosched()
		}
	}
}

// Memcached runs the full experiment: a ServerThreads-wide server in the
// environment under test, loaded by the memaslap-style client, reporting
// client-observed throughput.
func Memcached(env Env, p MemcachedParams) (MemcachedResult, error) {
	p.fill()
	store := newKVStore()

	first, err := env.ServerThread()
	if err != nil {
		return MemcachedResult{}, err
	}
	sfd, err := first.Socket(sys.UDP)
	if err != nil {
		return MemcachedResult{}, err
	}
	if err := first.Bind(sfd, p.Port); err != nil {
		return MemcachedResult{}, err
	}
	var srvWG sync.WaitGroup
	srvThreads := make([]sys.Sys, p.ServerThreads)
	srvThreads[0] = first
	for i := 1; i < p.ServerThreads; i++ {
		srvThreads[i] = first.Clone()
	}
	for _, st := range srvThreads {
		srvWG.Add(1)
		go func(st sys.Sys) {
			defer srvWG.Done()
			memcachedServe(st, sfd, store)
		}(st)
	}

	// memaslap: ClientThreads threads, Connections sockets.
	value := make([]byte, p.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	dst := sys.Addr{IP: env.ServerIP, Port: p.Port}
	opsPerThread := p.Ops / p.ClientThreads
	connsPerThread := p.Connections / p.ClientThreads
	if connsPerThread == 0 {
		connsPerThread = 1
	}

	var cliWG sync.WaitGroup
	clocks := make([]*vtime.Clock, p.ClientThreads)
	errs := make(chan error, p.ClientThreads)
	for ct := 0; ct < p.ClientThreads; ct++ {
		cli := env.ClientThread()
		clocks[ct] = cli.Clock()
		cliWG.Add(1)
		go func(ct int, cli sys.Sys) {
			defer cliWG.Done()
			fds := make([]int, connsPerThread)
			for i := range fds {
				fd, err := cli.Socket(sys.UDP)
				if err != nil {
					errs <- err
					return
				}
				fds[i] = fd
			}
			req := make([]byte, 0, 2048)
			buf := make([]byte, 65536)
			rng := uint32(ct*2654435761 + 12345)
			for op := 0; op < opsPerThread; op++ {
				rng = rng*1664525 + 1013904223
				key := fmt.Sprintf("key-%06d", int(rng)%p.Keys)
				fd := fds[op%connsPerThread]
				rng = rng*1664525 + 1013904223
				if rng%10 == 0 { // 10% SETs
					req = append(req[:0], 'S', byte(len(key)))
					req = append(req, key...)
					req = append(req, value...)
				} else {
					req = append(req[:0], 'G', byte(len(key)))
					req = append(req, key...)
				}
				cli.Clock().Advance(MemaslapClientOpCycles)
				// UDP carries no delivery guarantee: like a real load
				// generator, retransmit a few times before declaring the
				// server unreachable. On a clean host the first attempt
				// always answers within milliseconds.
				got := false
				for attempt := 0; attempt < 5 && !got; attempt++ {
					if _, err := cli.SendTo(fd, req, dst); err != nil {
						errs <- err
						return
					}
					_, _, got = pollRecv(cli, fd, buf, time.Second)
				}
				if !got {
					errs <- fmt.Errorf("memaslap: reply timeout (thread %d op %d)", ct, op)
					return
				}
			}
		}(ct, cli)
	}
	cliWG.Wait()
	select {
	case err := <-errs:
		return MemcachedResult{}, err
	default:
	}

	// Poison the server threads and wait them out.
	killer := env.ClientThread()
	kfd, _ := killer.Socket(sys.UDP)
	for i := 0; i < p.ServerThreads*4; i++ {
		killer.SendTo(kfd, []byte{'Q'}, dst)
	}
	srvWG.Wait()

	var makespan uint64
	for _, c := range clocks {
		if c.Now() > makespan {
			makespan = c.Now()
		}
	}
	ops := opsPerThread * p.ClientThreads
	return MemcachedResult{
		Ops:       ops,
		Cycles:    makespan,
		OpsPerSec: float64(ops) / env.Model.Seconds(makespan),
	}, nil
}
