package workloads

// Unit tests for workload internals; the workloads' end-to-end behaviour
// across environments is covered by internal/experiments.

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestKVStoreRoundTrip(t *testing.T) {
	s := newKVStore()
	if _, ok := s.get("missing"); ok {
		t.Fatal("empty store must miss")
	}
	s.set("k1", []byte("v1"))
	v, ok := s.get("k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	// Stored values are copies: mutating the source must not leak in.
	src := []byte("mutable")
	s.set("k2", src)
	src[0] = 'X'
	v, _ = s.get("k2")
	if string(v) != "mutable" {
		t.Fatalf("stored value aliased caller memory: %q", v)
	}
}

func TestKVStoreSharding(t *testing.T) {
	s := newKVStore()
	hit := map[*struct {
		mu sync.Mutex
		m  map[string][]byte
	}]bool{}
	for i := 0; i < 200; i++ {
		hit[s.shard(string(rune('a'+i%26))+string(rune(i)))] = true
	}
	if len(hit) < 8 {
		t.Fatalf("only %d of 16 shards used", len(hit))
	}
}

func TestRedisExec(t *testing.T) {
	store := make(map[string][]byte)
	if r, _ := redisExec(store, []byte("PING")); string(r) != "+PONG\r\n" {
		t.Fatalf("ping = %q", r)
	}
	if r, _ := redisExec(store, []byte("SET key hello")); string(r) != "+OK\r\n" {
		t.Fatalf("set = %q", r)
	}
	if r, _ := redisExec(store, []byte("GET key")); string(r) != "$5\r\nhello\r\n" {
		t.Fatalf("get = %q", r)
	}
	if r, _ := redisExec(store, []byte("GET nope")); string(r) != "$-1\r\n" {
		t.Fatalf("miss = %q", r)
	}
	if r, _ := redisExec(store, []byte("WAT")); !bytes.HasPrefix(r, []byte("-ERR")) {
		t.Fatalf("unknown = %q", r)
	}
	if _, shutdown := redisExec(store, []byte("SHUTDOWN")); !shutdown {
		t.Fatal("shutdown not recognized")
	}
	// Values are copied out of the parse buffer.
	line := []byte("SET k2 abc")
	redisExec(store, line)
	line[len(line)-1] = 'X'
	if r, _ := redisExec(store, []byte("GET k2")); string(r) != "$3\r\nabc\r\n" {
		t.Fatalf("aliased value: %q", r)
	}
}

func TestRedisReplyComplete(t *testing.T) {
	cases := []struct {
		in       string
		complete bool
		rest     string
	}{
		{"", false, ""},
		{"+OK", false, "+OK"},
		{"+OK\r\n", true, ""},
		{"+OK\r\nNEXT", true, "NEXT"},
		{"-ERR x\r\n", true, ""},
		{"$5\r\nhel", false, "$5\r\nhel"},
		{"$5\r\nhello\r\n", true, ""},
		{"$5\r\nhello\r\n+OK\r\n", true, "+OK\r\n"},
		{"$-1\r\n", true, ""},
	}
	for _, c := range cases {
		done, rest := redisReplyComplete([]byte(c.in))
		if done != c.complete || string(rest) != c.rest {
			t.Errorf("%q: got (%v, %q), want (%v, %q)", c.in, done, rest, c.complete, c.rest)
		}
	}
}

func TestRedisReplyCompleteNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		redisReplyComplete(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestU32Helpers(t *testing.T) {
	f := func(v uint32) bool {
		b := make([]byte, 4)
		putU32(b, v)
		return getU32(b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareMcryptInputDeterministic(t *testing.T) {
	a := PrepareMcryptInput(4096)
	b := PrepareMcryptInput(4096)
	if !bytes.Equal(a, b) {
		t.Fatal("input must be deterministic")
	}
	if len(a) != 4096 {
		t.Fatal("size")
	}
	// Not all-zero, so encryption tests mean something.
	if bytes.Equal(a, make([]byte, 4096)) {
		t.Fatal("input must be non-trivial")
	}
}
