package workloads

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"rakis/internal/sys"
	"rakis/internal/vtime"
)

// Redis is a TCP in-memory store in the style of the §6.2 experiment: a
// single-threaded event-loop server multiplexing connections with the
// select/poll syscall (the paper compiled Redis with select because
// RAKIS lacks epoll), benchmarked per command (PING, SET, GET) by a
// redis-benchmark-style client with 50 parallel connections.
//
// Protocol (inline commands, like real Redis accepts):
//
//	PING\r\n            -> +PONG\r\n
//	SET key value\r\n   -> +OK\r\n
//	GET key\r\n         -> $<len>\r\n<value>\r\n  or  $-1\r\n
//	SHUTDOWN\r\n        -> server exits

// RedisParams configures one run.
type RedisParams struct {
	// Command is PING, SET, or GET.
	Command string
	// Ops is the total request count.
	Ops int
	// Connections is the parallel client count (50 in §6.2).
	Connections int
	// ValueBytes is the SET/GET payload size (redis-benchmark default 3;
	// use something visible).
	ValueBytes int
	// Port is the server port (default 6379).
	Port uint16
	// UseEpoll selects the epoll event loop instead of poll/select —
	// the extension the paper's prototype lacked (§6.2).
	UseEpoll bool
}

func (p *RedisParams) fill() {
	if p.Command == "" {
		p.Command = "PING"
	}
	if p.Ops <= 0 {
		p.Ops = 2000
	}
	if p.Connections <= 0 {
		p.Connections = 50
	}
	if p.ValueBytes <= 0 {
		p.ValueBytes = 64
	}
	if p.Port == 0 {
		p.Port = 6379
	}
}

// RedisResult is one measurement.
type RedisResult struct {
	Ops       int
	Cycles    uint64
	OpsPerSec float64
}

// redisConn is one client connection's server-side state.
type redisConn struct {
	fd  int
	buf []byte
}

// RedisServer runs the event loop until SHUTDOWN, multiplexing with
// poll (the paper's select) over the listener and every live connection.
func RedisServer(t sys.Sys, port uint16, ready chan<- struct{}) error {
	return redisServer(t, port, ready, false)
}

// RedisServerEpoll is the epoll-based event loop — the variant the
// paper could not run (§6.2: "RAKIS does not currently support epoll").
func RedisServerEpoll(t sys.Sys, port uint16, ready chan<- struct{}) error {
	return redisServer(t, port, ready, true)
}

func redisServer(t sys.Sys, port uint16, ready chan<- struct{}, useEpoll bool) error {
	lfd, err := t.Socket(sys.TCP)
	if err != nil {
		return err
	}
	if err := t.Bind(lfd, port); err != nil {
		return err
	}
	if err := t.Listen(lfd, 128); err != nil {
		return err
	}
	var epfd int
	if useEpoll {
		epfd, err = t.EpollCreate()
		if err != nil {
			return err
		}
		if err := t.EpollCtl(epfd, sys.EpollCtlAdd, lfd, sys.PollIn); err != nil {
			return err
		}
	}
	if ready != nil {
		close(ready)
	}
	store := make(map[string][]byte)
	conns := make(map[int]*redisConn)
	// fail tears the server down on an event-loop error: every live
	// connection gets a close (so blocked clients see EOF rather than
	// hanging on a reply that will never come) before the error surfaces.
	fail := func(err error) error {
		for fd := range conns {
			t.Close(fd)
		}
		t.Close(lfd)
		if useEpoll {
			t.Close(epfd)
		}
		return err
	}
	rbuf := make([]byte, 65536)
	evs := make([]sys.EpollEvent, 128)
	// The event loop normally exits via SHUTDOWN; the wall-clock cap only
	// matters under fault injection, where the host may deny service
	// indefinitely and the run must still terminate.
	giveUp := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(giveUp) {
			return fail(fmt.Errorf("redis server: no shutdown within 60s"))
		}
		var fds []sys.PollFD
		if useEpoll {
			n, err := t.EpollWait(epfd, evs, time.Second)
			if err != nil {
				return fail(err)
			}
			fds = fds[:0]
			for i := 0; i < n; i++ {
				fds = append(fds, sys.PollFD{FD: evs[i].FD, Revents: evs[i].Events})
			}
		} else {
			fds = make([]sys.PollFD, 0, len(conns)+1)
			fds = append(fds, sys.PollFD{FD: lfd, Events: sys.PollIn})
			for fd := range conns {
				fds = append(fds, sys.PollFD{FD: fd, Events: sys.PollIn})
			}
			if _, err := t.Poll(fds, time.Second); err != nil {
				return fail(err)
			}
		}
		for _, pf := range fds {
			if pf.Revents == 0 {
				continue
			}
			if pf.FD == lfd {
				nfd, _, err := t.Accept(lfd, false)
				if err == nil {
					conns[nfd] = &redisConn{fd: nfd}
					if useEpoll {
						t.EpollCtl(epfd, sys.EpollCtlAdd, nfd, sys.PollIn)
					}
				}
				continue
			}
			c := conns[pf.FD]
			if c == nil {
				continue
			}
			n, err := t.Recv(c.fd, rbuf, false)
			if err != nil || n == 0 {
				if err == nil && n == 0 { // EOF
					if useEpoll {
						t.EpollCtl(epfd, sys.EpollCtlDel, c.fd, 0)
					}
					t.Close(c.fd)
					delete(conns, c.fd)
				}
				continue
			}
			c.buf = append(c.buf, rbuf[:n]...)
			for {
				nl := bytes.Index(c.buf, []byte("\r\n"))
				if nl < 0 {
					break
				}
				line := c.buf[:nl]
				c.buf = c.buf[nl+2:]
				t.Clock().Advance(RedisOpCycles)
				reply, shutdown := redisExec(store, line)
				if shutdown {
					t.Close(c.fd)
					t.Close(lfd)
					if useEpoll {
						t.Close(epfd)
					}
					return nil
				}
				if _, err := t.Send(c.fd, reply); err != nil {
					t.Close(c.fd)
					delete(conns, c.fd)
					break
				}
			}
		}
	}
}

// redisExec applies one command to the store.
func redisExec(store map[string][]byte, line []byte) (reply []byte, shutdown bool) {
	parts := bytes.SplitN(line, []byte(" "), 3)
	switch {
	case bytes.EqualFold(parts[0], []byte("PING")):
		return []byte("+PONG\r\n"), false
	case bytes.EqualFold(parts[0], []byte("SET")) && len(parts) == 3:
		v := make([]byte, len(parts[2]))
		copy(v, parts[2])
		store[string(parts[1])] = v
		return []byte("+OK\r\n"), false
	case bytes.EqualFold(parts[0], []byte("GET")) && len(parts) >= 2:
		v, ok := store[string(parts[1])]
		if !ok {
			return []byte("$-1\r\n"), false
		}
		return []byte(fmt.Sprintf("$%d\r\n%s\r\n", len(v), v)), false
	case bytes.EqualFold(parts[0], []byte("SHUTDOWN")):
		return nil, true
	default:
		return []byte("-ERR unknown command\r\n"), false
	}
}

// redisClientTimeout bounds one reply wait: under fault injection the
// server may be denied service entirely, and the benchmark client must
// report that rather than block forever on a reply that never comes.
const redisClientTimeout = 10 * time.Second

// redisReadReply reads one complete reply from the stream, giving up
// after redisClientTimeout.
func redisReadReply(t sys.Sys, fd int, buf *[]byte, scratch []byte) error {
	deadline := time.Now().Add(redisClientTimeout)
	for {
		if complete, rest := redisReplyComplete(*buf); complete {
			*buf = rest
			return nil
		}
		n, err := t.Recv(fd, scratch, false)
		if err == nil {
			if n == 0 {
				return fmt.Errorf("redis: connection closed mid-reply")
			}
			*buf = append(*buf, scratch[:n]...)
			continue
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("redis: no reply within %v", redisClientTimeout)
		}
		if remain > 50*time.Millisecond {
			remain = 50 * time.Millisecond
		}
		t.Poll([]sys.PollFD{{FD: fd, Events: sys.PollIn}}, remain)
	}
}

// redisReplyComplete reports whether buf starts with one full reply and
// returns the remainder.
func redisReplyComplete(buf []byte) (bool, []byte) {
	if len(buf) == 0 {
		return false, buf
	}
	nl := bytes.Index(buf, []byte("\r\n"))
	if nl < 0 {
		return false, buf
	}
	switch buf[0] {
	case '+', '-':
		return true, buf[nl+2:]
	case '$':
		var n int
		fmt.Sscanf(string(buf[1:nl]), "%d", &n)
		if n < 0 {
			return true, buf[nl+2:]
		}
		need := nl + 2 + n + 2
		if len(buf) >= need {
			return true, buf[need:]
		}
		return false, buf
	default:
		return true, buf[nl+2:]
	}
}

// Redis runs the full experiment for one command type and reports
// client-observed throughput.
func Redis(env Env, p RedisParams) (RedisResult, error) {
	p.fill()
	srv, err := env.ServerThread()
	if err != nil {
		return RedisResult{}, err
	}
	ready := make(chan struct{})
	serverErr := make(chan error, 1)
	go func() { serverErr <- redisServer(srv, p.Port, ready, p.UseEpoll) }()
	<-ready

	dst := sys.Addr{IP: env.TCPServerIP(), Port: p.Port}
	value := bytes.Repeat([]byte("v"), p.ValueBytes)
	opsPerConn := p.Ops / p.Connections
	if opsPerConn == 0 {
		opsPerConn = 1
	}

	var wg sync.WaitGroup
	clocks := make([]*vtime.Clock, p.Connections)
	errs := make(chan error, p.Connections)
	for ci := 0; ci < p.Connections; ci++ {
		cli := env.ClientThread()
		clocks[ci] = cli.Clock()
		wg.Add(1)
		go func(ci int, cli sys.Sys) {
			defer wg.Done()
			fd, err := cli.Socket(sys.TCP)
			if err != nil {
				errs <- err
				return
			}
			if err := cli.Connect(fd, dst); err != nil {
				errs <- fmt.Errorf("redis conn %d: %w", ci, err)
				return
			}
			var cmd []byte
			key := fmt.Sprintf("key:%04d", ci)
			switch p.Command {
			case "SET":
				cmd = []byte(fmt.Sprintf("SET %s %s\r\n", key, value))
			case "GET":
				cmd = []byte(fmt.Sprintf("GET %s\r\n", key))
			default:
				cmd = []byte("PING\r\n")
			}
			if p.Command == "GET" {
				// Seed the key so GETs hit.
				seed := []byte(fmt.Sprintf("SET %s %s\r\n", key, value))
				cli.Send(fd, seed)
				var rb []byte
				if err := redisReadReply(cli, fd, &rb, make([]byte, 4096)); err != nil {
					errs <- err
					return
				}
			}
			var rb []byte
			scratch := make([]byte, 8192)
			for op := 0; op < opsPerConn; op++ {
				if _, err := cli.Send(fd, cmd); err != nil {
					errs <- fmt.Errorf("redis conn %d send: %w", ci, err)
					return
				}
				if err := redisReadReply(cli, fd, &rb, scratch); err != nil {
					errs <- fmt.Errorf("redis conn %d reply: %w", ci, err)
					return
				}
			}
			cli.Close(fd)
		}(ci, cli)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return RedisResult{}, err
	default:
	}

	// Shut the server down.
	stopper := env.ClientThread()
	sfd, _ := stopper.Socket(sys.TCP)
	if err := stopper.Connect(sfd, dst); err == nil {
		stopper.Send(sfd, []byte("SHUTDOWN\r\n"))
	}
	if err := <-serverErr; err != nil {
		return RedisResult{}, fmt.Errorf("redis server: %w", err)
	}

	var makespan uint64
	for _, c := range clocks {
		if c.Now() > makespan {
			makespan = c.Now()
		}
	}
	ops := opsPerConn * p.Connections
	return RedisResult{
		Ops:       ops,
		Cycles:    makespan,
		OpsPerSec: float64(ops) / env.Model.Seconds(makespan),
	}, nil
}
