package workloads

import (
	"fmt"

	"rakis/internal/sys"
)

// FstimeParams configures one fstime-style file-write test (UnixBench's
// fstime, §6.2: repeated write syscalls of a given block size).
type FstimeParams struct {
	// BlockSize is the bytes per write call.
	BlockSize int
	// TotalBytes is the volume written (fstime runs for a fixed wall
	// time; the simulation fixes volume instead).
	TotalBytes int
	// Path is the target file.
	Path string
}

// FstimeResult is one measurement.
type FstimeResult struct {
	// Bytes written.
	Bytes uint64
	// Cycles of virtual time on the writing thread.
	Cycles uint64
	// KBps is the reported write throughput in KB/s, fstime's unit.
	KBps float64
}

// Fstime writes TotalBytes in BlockSize chunks and reports KB/s over the
// writer's virtual span.
func Fstime(env Env, p FstimeParams) (FstimeResult, error) {
	if p.BlockSize <= 0 {
		p.BlockSize = 4096
	}
	if p.TotalBytes <= 0 {
		p.TotalBytes = 4 << 20
	}
	if p.Path == "" {
		p.Path = "/tmp/fstime.dat"
	}
	srv, err := env.ServerThread()
	if err != nil {
		return FstimeResult{}, err
	}
	fd, err := srv.Open(p.Path, sys.OCreate|sys.OWronly|sys.OTrunc)
	if err != nil {
		return FstimeResult{}, err
	}
	defer srv.Close(fd)

	block := make([]byte, p.BlockSize)
	for i := range block {
		block[i] = byte(i)
	}
	sp := startSpan(srv.Clock())
	var written uint64
	for written < uint64(p.TotalBytes) {
		n, err := srv.Write(fd, block)
		if err != nil {
			return FstimeResult{}, fmt.Errorf("fstime write: %w", err)
		}
		if n != len(block) {
			return FstimeResult{}, fmt.Errorf("fstime short write: %d", n)
		}
		written += uint64(n)
	}
	cycles := sp.cycles()
	return FstimeResult{
		Bytes:  written,
		Cycles: cycles,
		KBps:   float64(written) / 1024 / env.Model.Seconds(cycles),
	}, nil
}
