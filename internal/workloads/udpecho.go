package workloads

import (
	"fmt"
	"time"

	"rakis/internal/sys"
)

// EchoParams configures one UDP echo run: the client offers Count
// datagrams in windows of Batch, and the server echoes each window back
// using the vectored RecvFromN/SendToN calls when Batch > 1, or the
// scalar RecvFrom/SendTo pair when Batch == 1. Everything else about the
// two modes is identical, which makes this the workload under both the
// batched-vs-scalar figure and the differential tests.
type EchoParams struct {
	// PacketSize is the UDP payload size in bytes.
	PacketSize int
	// Count is the total number of datagrams to echo.
	Count int
	// Batch is the vector width; <= 1 selects the scalar path.
	Batch int
	// Port is the server port (default 7, the echo service).
	Port uint16
}

// EchoResult is one measurement.
type EchoResult struct {
	// Echoed is how many datagrams made the full round trip.
	Echoed int
	// Cycles is the server's virtual busy span over the run.
	Cycles uint64
	// Payloads, when Record was set, holds every echoed payload in
	// arrival order at the client — the byte stream the differential
	// tests compare.
	Payloads [][]byte
}

// echoTimeout bounds each real-time wait so a lost datagram fails the
// run instead of hanging it.
const echoTimeout = 5 * time.Second

// UDPEcho runs an echo server in the environment under test and drives
// it with a windowed native client: the client sends one window of Batch
// datagrams, waits for all of them to come back, then sends the next —
// so the server always has a full window queued for its vectored recv
// and the wire never drops for lack of buffers. When record is true the
// client's received payloads are returned in order.
func UDPEcho(env Env, p EchoParams, record bool) (EchoResult, error) {
	if p.Port == 0 {
		p.Port = 7
	}
	if p.PacketSize <= 0 {
		p.PacketSize = 256
	}
	if p.Count <= 0 {
		p.Count = 256
	}
	if p.Batch <= 0 {
		p.Batch = 1
	}
	srv, err := env.ServerThread()
	if err != nil {
		return EchoResult{}, err
	}
	sfd, err := srv.Socket(sys.UDP)
	if err != nil {
		return EchoResult{}, err
	}
	if err := srv.Bind(sfd, p.Port); err != nil {
		return EchoResult{}, err
	}

	srvErr := make(chan error, 1)
	go func() { srvErr <- echoServer(srv, sfd, p) }()

	res := EchoResult{}
	cli := env.ClientThread()
	cfd, err := cli.Socket(sys.UDP)
	if err != nil {
		return res, err
	}
	dst := sys.Addr{IP: env.ServerIP, Port: p.Port}
	buf := make([]byte, p.PacketSize+64)
	seq := uint32(0)
	for sent := 0; sent < p.Count; {
		w := p.Batch
		if rem := p.Count - sent; w > rem {
			w = rem
		}
		for i := 0; i < w; i++ {
			payload := make([]byte, p.PacketSize)
			putU32(payload, seq)
			seq++
			if _, err := cli.SendTo(cfd, payload, dst); err != nil {
				return res, err
			}
		}
		sent += w
		for i := 0; i < w; i++ {
			n, _, ok := pollRecv(cli, cfd, buf, echoTimeout)
			if !ok {
				return res, fmt.Errorf("udpecho: echo %d/%d never returned", res.Echoed+1, p.Count)
			}
			if record {
				res.Payloads = append(res.Payloads, append([]byte(nil), buf[:n]...))
			}
			res.Echoed++
		}
	}
	if err := <-srvErr; err != nil {
		return res, err
	}
	res.Cycles = srv.Clock().Now()
	return res, nil
}

// echoServer echoes Count datagrams back to their senders, vectored when
// the window is wider than one.
func echoServer(srv sys.Sys, sfd int, p EchoParams) error {
	if p.Batch <= 1 {
		buf := make([]byte, p.PacketSize+64)
		for done := 0; done < p.Count; done++ {
			n, src, err := srv.RecvFrom(sfd, buf, true)
			if err != nil {
				return err
			}
			if _, err := srv.SendTo(sfd, buf[:n], src); err != nil {
				return err
			}
		}
		return nil
	}
	msgs := make([]sys.Mmsg, p.Batch)
	for i := range msgs {
		msgs[i].Buf = make([]byte, p.PacketSize+64)
	}
	for done := 0; done < p.Count; {
		got, err := srv.RecvFromN(sfd, msgs, true)
		if err != nil {
			return err
		}
		out := make([]sys.Mmsg, got)
		for i := 0; i < got; i++ {
			out[i] = sys.Mmsg{Buf: msgs[i].Buf[:msgs[i].N], Addr: msgs[i].Addr}
		}
		sent := 0
		for sent < got {
			n, err := srv.SendToN(sfd, out[sent:])
			if err != nil {
				return err
			}
			sent += n
		}
		done += got
	}
	return nil
}
