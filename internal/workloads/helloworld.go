package workloads

import (
	"fmt"

	"rakis/internal/sys"
)

// HelloWorld is the Figure 2 baseline: a trivial program whose only
// enclave exits are startup plus a handful of file-IO syscalls. It
// writes a greeting to a file and reads it back.
func HelloWorld(env Env) error {
	t, err := env.ServerThread()
	if err != nil {
		return err
	}
	fd, err := t.Open("/tmp/hello.txt", sys.OCreate|sys.ORdwr)
	if err != nil {
		return err
	}
	msg := []byte("hello, world\n")
	if n, err := t.Write(fd, msg); err != nil || n != len(msg) {
		return fmt.Errorf("helloworld write: %d, %v", n, err)
	}
	if _, err := t.Lseek(fd, 0, 0); err != nil {
		return err
	}
	buf := make([]byte, 64)
	n, err := t.Read(fd, buf)
	if err != nil {
		return err
	}
	if string(buf[:n]) != string(msg) {
		return fmt.Errorf("helloworld read back %q", buf[:n])
	}
	return t.Close(fd)
}
