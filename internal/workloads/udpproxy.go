package workloads

import (
	"fmt"
	"time"

	"rakis/internal/sys"
)

// ProxyParams configures one UDP proxy/echo service run. The service
// reflects every datagram back to its sender; under RAKIS with the
// zero-copy datapath the reflection happens inside the enclave stack by
// re-queuing the RX frame on TX (a splice — no payload copy, no socket,
// no application thread), and everywhere else a plain socket echo loop
// serves the port.
type ProxyParams struct {
	// PacketSize is the UDP payload size in bytes.
	PacketSize int
	// Count is the total number of datagrams to reflect.
	Count int
	// Window is how many datagrams the client keeps in flight (default
	// 32); it bounds ring occupancy on the server.
	Window int
	// Port is the service port (default 9099).
	Port uint16
	// ForceSocket skips the splice registration even when the
	// environment offers it, pinning the run to the socket echo loop.
	ForceSocket bool
}

// ProxyResult is one measurement.
type ProxyResult struct {
	// Echoed is how many datagrams made the full round trip.
	Echoed int
	// Bytes is the echoed payload volume.
	Bytes uint64
	// Spliced reports whether the zero-copy in-stack path served the
	// run (false: socket echo loop).
	Spliced bool
	// Cycles is the client's virtual span over the run (the client is
	// uncosted; the wire paces it).
	Cycles uint64
	// Payloads, when record was set, holds every echoed payload in
	// arrival order — the byte stream the differential tests compare.
	Payloads [][]byte
}

// UDPProxy runs the echo/forward service in the environment under test
// and drives it with a windowed native client. When the environment can
// splice (RAKIS, zero-copy RX) the service is the in-stack reflector and
// no server thread exists; otherwise a scalar socket echo loop serves
// the port, so the workload runs unmodified on all five environments.
func UDPProxy(env Env, p ProxyParams, record bool) (ProxyResult, error) {
	if p.Port == 0 {
		p.Port = 9099
	}
	if p.PacketSize <= 0 {
		p.PacketSize = 1024
	}
	if p.Count <= 0 {
		p.Count = 512
	}
	if p.Window <= 0 {
		p.Window = 32
	}
	res := ProxyResult{}
	srvErr := make(chan error, 1)
	if !p.ForceSocket && env.SpliceUDPEcho != nil && env.SpliceUDPEcho(p.Port, true) {
		res.Spliced = true
		defer env.SpliceUDPEcho(p.Port, false)
		srvErr <- nil
	} else {
		srv, err := env.ServerThread()
		if err != nil {
			return res, err
		}
		sfd, err := srv.Socket(sys.UDP)
		if err != nil {
			return res, err
		}
		if err := srv.Bind(sfd, p.Port); err != nil {
			return res, err
		}
		go func() {
			buf := make([]byte, p.PacketSize+64)
			for done := 0; done < p.Count; done++ {
				n, src, err := srv.RecvFrom(sfd, buf, true)
				if err != nil {
					srvErr <- err
					return
				}
				if _, err := srv.SendTo(sfd, buf[:n], src); err != nil {
					srvErr <- err
					return
				}
			}
			srvErr <- nil
		}()
	}

	cli := env.ClientThread()
	cfd, err := cli.Socket(sys.UDP)
	if err != nil {
		return res, err
	}
	dst := sys.Addr{IP: env.ServerIP, Port: p.Port}
	buf := make([]byte, p.PacketSize+64)
	clk := cli.Clock()
	start := clk.Now()
	seq := uint32(0)
	for sent := 0; sent < p.Count; {
		w := p.Window
		if rem := p.Count - sent; w > rem {
			w = rem
		}
		for i := 0; i < w; i++ {
			payload := make([]byte, p.PacketSize)
			putU32(payload, seq)
			seq++
			if _, err := cli.SendTo(cfd, payload, dst); err != nil {
				return res, err
			}
		}
		sent += w
		for i := 0; i < w; i++ {
			n, _, ok := pollRecv(cli, cfd, buf, echoTimeout)
			if !ok {
				return res, fmt.Errorf("udpproxy: echo %d/%d never returned", res.Echoed+1, p.Count)
			}
			if record {
				res.Payloads = append(res.Payloads, append([]byte(nil), buf[:n]...))
			}
			res.Echoed++
			res.Bytes += uint64(n)
		}
	}
	select {
	case err := <-srvErr:
		if err != nil {
			return res, err
		}
	case <-time.After(echoTimeout):
		return res, fmt.Errorf("udpproxy: server never finished")
	}
	res.Cycles = clk.Now() - start
	return res, nil
}
