package workloads

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/netstack"
	"rakis/internal/sys"
	"rakis/internal/vtime"
)

// ShardedEcho is the shard-scaling workload: many concurrent UDP flows
// ping-ponging against a multi-threaded echo server that shares one
// socket. Each flow's client source port is chosen so the flow hashes to
// a designated RSS shard — the same netstack.FlowHash the kernel's
// steering, the enclave demux, and the flow-affine TX path all compute —
// so the flow's entire round trip stays on one shard and the run loads
// every shard evenly.

// ShardedEchoParams configures one run.
type ShardedEchoParams struct {
	// Flows is the number of concurrent client flows (default 8).
	Flows int
	// PerFlow is how many datagrams each flow ping-pongs (default 64).
	PerFlow int
	// Window is the per-flow pipelining depth (default 1). At 1 flows
	// are strict stop-and-wait — one outstanding datagram, so per-flow
	// payload order is deterministic in every TX-selection mode, which
	// is what the affinity differential test compares. The scaling
	// figure raises it so the measurement is bound by the shared data
	// path, not by each flow's round-trip latency (which no amount of
	// sharding can shrink).
	Window int
	// PacketSize is the UDP payload size (default 256, min 8).
	PacketSize int
	// Port is the server port (default 7).
	Port uint16
	// Shards is the server runtime's shard count; flow i is pinned to
	// shard i % Shards by source-port search (default 1).
	Shards int
	// ServerThreads is the receiver thread count sharing the server
	// socket (default Shards).
	ServerThreads int
	// BestEffort tolerates per-flow loss: a flow whose echo times out is
	// marked incomplete instead of failing the run. The chaos quarantine
	// scenario uses it — flows on the scribbled shard are expected to
	// die while every other flow completes.
	BestEffort bool
	// Record keeps each flow's echoed payloads in per-flow order.
	Record bool
}

func (p *ShardedEchoParams) fill() {
	if p.Flows <= 0 {
		p.Flows = 8
	}
	if p.PerFlow <= 0 {
		p.PerFlow = 64
	}
	if p.Window <= 0 {
		p.Window = 1
	}
	if p.PacketSize < 8 {
		p.PacketSize = 256
	}
	if p.Port == 0 {
		p.Port = 7
	}
	if p.Shards <= 0 {
		p.Shards = 1
	}
	if p.ServerThreads <= 0 {
		p.ServerThreads = p.Shards
	}
}

// FlowResult is one flow's outcome.
type FlowResult struct {
	// Shard is the RSS shard the flow was pinned to.
	Shard int
	// Port is the searched client source port that pins it.
	Port uint16
	// Echoed is how many of the flow's datagrams made the round trip.
	Echoed int
	// Stream holds the flow's echoed payloads in arrival order when
	// Record was set.
	Stream [][]byte
}

// ShardedEchoResult is one measurement.
type ShardedEchoResult struct {
	// Flows holds per-flow outcomes, indexed by flow id.
	Flows []FlowResult
	// Echoed is the total round trips across all flows.
	Echoed int
	// Cycles is the client-side virtual makespan (max client clock).
	Cycles uint64
}

// PinFlowPort searches for a client source port that makes the flow
// (src:port -> dst:dstPort) hash to the target shard. The search space
// starts above the ephemeral ranges the other workloads use; taken
// guards against handing out one port twice.
func PinFlowPort(src, dst sys.IP4, dstPort uint16, shard, shards int, taken map[uint16]bool) (uint16, error) {
	for p := uint16(21000); p < 60000; p++ {
		if taken[p] {
			continue
		}
		if netstack.RXShard(src, dst, p, dstPort, shards) == shard {
			taken[p] = true
			return p, nil
		}
	}
	return 0, fmt.Errorf("shardedecho: no free port hashes to shard %d/%d", shard, shards)
}

// shardedEchoPill is the server-thread poison byte. Flow payloads start
// with a big-endian flow id, and flow ids stay far below 2^24, so a
// first byte of 0xFF can only be a pill.
const shardedEchoPill = 0xFF

// shardedEchoServe echoes datagrams until it eats a pill or the socket
// has been idle long enough that every pill must have been lost (the
// quarantined-shard case: pills steered onto a dead queue never arrive).
func shardedEchoServe(t sys.Sys, fd int) {
	const idleMax = 15 * time.Second
	buf := make([]byte, 65536)
	idle := time.Now().Add(idleMax)
	for {
		n, src, err := t.RecvFrom(fd, buf, false)
		if err != nil {
			if time.Now().After(idle) {
				return
			}
			if _, err := t.Poll([]sys.PollFD{{FD: fd, Events: sys.PollIn}}, 50*time.Millisecond); err != nil {
				return
			}
			continue
		}
		idle = time.Now().Add(idleMax)
		if n >= 1 && buf[0] == shardedEchoPill {
			return
		}
		t.SendTo(fd, buf[:n], src)
		// Share the socket queue with sibling server threads (see the
		// memcached server's identical yield).
		runtime.Gosched()
	}
}

// ShardedEcho runs the full workload and reports per-flow outcomes plus
// the client-clock makespan the throughput figures divide by.
func ShardedEcho(env Env, p ShardedEchoParams) (ShardedEchoResult, error) {
	p.fill()
	res := ShardedEchoResult{Flows: make([]FlowResult, p.Flows)}

	// Pin every flow's source port before anything runs, so a search
	// failure is a clean error rather than a half-started world.
	taken := make(map[uint16]bool)
	for i := range res.Flows {
		res.Flows[i].Shard = i % p.Shards
		port, err := PinFlowPort(env.ClientIP, env.ServerIP, p.Port, res.Flows[i].Shard, p.Shards, taken)
		if err != nil {
			return res, err
		}
		res.Flows[i].Port = port
	}

	first, err := env.ServerThread()
	if err != nil {
		return res, err
	}
	sfd, err := first.Socket(sys.UDP)
	if err != nil {
		return res, err
	}
	if err := first.Bind(sfd, p.Port); err != nil {
		return res, err
	}
	var srvWG sync.WaitGroup
	srvThreads := make([]sys.Sys, p.ServerThreads)
	srvThreads[0] = first
	for i := 1; i < p.ServerThreads; i++ {
		srvThreads[i] = first.Clone()
	}
	for _, st := range srvThreads {
		srvWG.Add(1)
		go func(st sys.Sys) {
			defer srvWG.Done()
			shardedEchoServe(st, sfd)
		}(st)
	}

	var echoed atomic.Int64
	var cliWG sync.WaitGroup
	clocks := make([]*vtime.Clock, p.Flows)
	errs := make(chan error, p.Flows)
	dst := sys.Addr{IP: env.ServerIP, Port: p.Port}
	for f := 0; f < p.Flows; f++ {
		cli := env.ClientThread()
		clocks[f] = cli.Clock()
		cliWG.Add(1)
		go func(f int, cli sys.Sys) {
			defer cliWG.Done()
			fr := &res.Flows[f]
			cfd, err := cli.Socket(sys.UDP)
			if err != nil {
				errs <- err
				return
			}
			if err := cli.Bind(cfd, fr.Port); err != nil {
				errs <- fmt.Errorf("flow %d bind %d: %w", f, fr.Port, err)
				return
			}
			buf := make([]byte, p.PacketSize+64)
			payload := make([]byte, p.PacketSize)
			sent, inflight := 0, 0
			for recvd := 0; recvd < p.PerFlow; recvd++ {
				for sent < p.PerFlow && inflight < p.Window {
					putU32(payload, uint32(f))
					putU32(payload[4:], uint32(sent))
					if _, err := cli.SendTo(cfd, payload, dst); err != nil {
						errs <- fmt.Errorf("flow %d: %w", f, err)
						return
					}
					sent++
					inflight++
				}
				n, _, ok := pollRecv(cli, cfd, buf, echoTimeout)
				if !ok {
					if p.BestEffort {
						return
					}
					errs <- fmt.Errorf("flow %d (shard %d): echo %d/%d never returned",
						f, fr.Shard, recvd+1, p.PerFlow)
					return
				}
				inflight--
				if p.Record {
					fr.Stream = append(fr.Stream, append([]byte(nil), buf[:n]...))
				}
				fr.Echoed++
				echoed.Add(1)
			}
		}(f, cli)
	}
	cliWG.Wait()
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Poison the server threads from many distinct ephemeral ports so
	// the pills spread across shards — under a quarantined shard, any
	// pill reaching a healthy queue can retire any thread (the MPMC
	// socket lets every thread pop every shard queue).
	killer := env.ClientThread()
	for i := 0; i < p.ServerThreads*4; i++ {
		kfd, err := killer.Socket(sys.UDP)
		if err != nil {
			break
		}
		killer.SendTo(kfd, []byte{shardedEchoPill}, dst)
	}
	srvWG.Wait()

	for _, c := range clocks {
		if c.Now() > res.Cycles {
			res.Cycles = c.Now()
		}
	}
	res.Echoed = int(echoed.Load())
	return res, nil
}
