package workloads

import (
	"fmt"
	"sort"
	"time"

	"rakis/internal/netsim"
	"rakis/internal/sys"
)

// ShapedParams configures a shaped-traffic echo run: the client replays
// a netsim.Shape schedule (each datagram departs at its scheduled
// virtual time, real-time paced to match), and the server echoes in
// gather windows of the advised width. This is the workload under the
// adaptive figure: per-datagram virtual round-trip latency against the
// server-side cycle bill, across load phases a static configuration
// cannot be right for all of.
type ShapedParams struct {
	// Shape is the departure schedule.
	Shape netsim.Shape
	// PacketSize is the UDP payload size (min 16: seq, phase, departure
	// stamp ride in the payload).
	PacketSize int
	// Port is the server port (default 7).
	Port uint16
	// Width fixes the server's gather width; 0 follows the runtime's
	// AdviseBatch — static configurations pin it, the adaptive runtime
	// moves it.
	Width int
}

// PhaseStat is one phase's delivery and latency accounting.
type PhaseStat struct {
	Name    string
	Sent    int
	Echoed  int
	MeanLat float64 // virtual cycles
	P99Lat  uint64
}

// ShapedResult is one shaped run's measurement.
type ShapedResult struct {
	Sent      int
	Delivered int
	MeanLat   float64 // virtual cycles over delivered echoes
	P99Lat    uint64
	Phases    []PhaseStat
}

// batchAdviser is the optional per-thread interface the self-tuning
// runtime implements; environments without a tuner report their static
// hint.
type batchAdviser interface{ AdviseBatch() int }

const (
	finSeq = ^uint32(0)
	// finCount redundantly signals end-of-stream past a lossy wire.
	finCount = 8
	// shapedGatherMax bounds the server's gather window.
	shapedGatherMax = 64
	// roundWait bounds how long a gather round waits in real time with
	// no traffic at all before giving the termination check a chance.
	roundWait = 150 * time.Millisecond
	// flushCycles is the gather window's coalescing budget in virtual
	// cycles (50us at 2.4 GHz): a partial window flushes once the span
	// from its first arrival reaches this, like recvmmsg's timeout. The
	// latency cost of a too-wide width is therefore min((w-1)*gap,
	// flushCycles) of parking — a deterministic, virtual-time quantity.
	flushCycles = 120_000
	// paceFloor is the smallest sleep worth issuing when real-pacing
	// the schedule; sub-floor gaps accumulate as debt and are slept in
	// chunks, so the real send rate tracks the virtual schedule at any
	// gap instead of decoupling below timer resolution.
	paceFloor = 50 * time.Microsecond
	// dispatchCycles is the server's fixed per-wake cost (
	// ~0.8us at 2.4 GHz): an event-driven server pays one event-loop
	// iteration — readiness return, dispatch, bookkeeping — per gather
	// round regardless of how many datagrams the round carries. This is
	// the cost the width knob amortizes: a scalar server pays it per
	// datagram, a 32-wide gather splits it 32 ways.
	dispatchCycles = 2_000
)

// ShapedEcho replays the shape through the environment and returns
// per-phase latency statistics. The server-side cycle bill is read by
// the caller from the environment's telemetry.
func ShapedEcho(env Env, p ShapedParams) (ShapedResult, error) {
	if p.Port == 0 {
		p.Port = 7
	}
	if p.PacketSize < 16 {
		p.PacketSize = 16
	}
	sched := p.Shape.Schedule()
	res := ShapedResult{Sent: len(sched)}
	if len(sched) == 0 {
		return res, nil
	}

	srv, err := env.ServerThread()
	if err != nil {
		return res, err
	}
	sfd, err := srv.Socket(sys.UDP)
	if err != nil {
		return res, err
	}
	if err := srv.Bind(sfd, p.Port); err != nil {
		return res, err
	}
	srvErr := make(chan error, 1)
	go func() { srvErr <- shapedServer(srv, sfd, p) }()

	// Sender and receiver are separate client threads sharing one
	// socket: the sender's clock paces scheduled departures, the
	// receiver's clock syncs to echo arrivals, so RTT = receiver now −
	// embedded departure stamp.
	sender := env.ClientThread()
	cfd, err := sender.Socket(sys.UDP)
	if err != nil {
		return res, err
	}
	dst := sys.Addr{IP: env.ServerIP, Port: p.Port}

	type echo struct {
		phase int
		rtt   uint64
	}
	echoes := make(chan echo, len(sched))
	recvDone := make(chan int, 1)
	go func() {
		rcv := env.ClientThread()
		rclk := rcv.Clock()
		buf := make([]byte, p.PacketSize+64)
		got := 0
		for got < len(sched) {
			n, _, ok := pollRecv(rcv, cfd, buf, time.Second)
			if !ok {
				break // drops: the stream went quiet short of the total
			}
			if n < 16 {
				continue
			}
			seq := getU32(buf)
			if seq == finSeq {
				break // FIFO per flow: everything echoed is already here
			}
			phase := int(getU32(buf[4:]))
			depart := getU64(buf[8:])
			var rtt uint64
			if now := rclk.Now(); now > depart {
				rtt = now - depart
			}
			echoes <- echo{phase: phase, rtt: rtt}
			got++
		}
		recvDone <- got
	}()

	clk := sender.Clock()
	base := clk.Now()
	var prevAt uint64
	var debt time.Duration
	payload := make([]byte, p.PacketSize)
	for i, d := range sched {
		clk.Sync(base + d.At)
		// Real-time pacing keeps the physical run aligned with the
		// virtual schedule, so real-time-driven machinery (MM sweep
		// cadence, ring backlogs, the tuner's windows) sees the load
		// shape too.
		if gap := d.At - prevAt; i > 0 && gap > 0 {
			debt += time.Duration(env.Model.Seconds(gap) * float64(time.Second))
			if debt >= paceFloor {
				time.Sleep(debt)
				debt = 0
			}
		}
		prevAt = d.At
		putU32(payload, uint32(i))
		putU32(payload[4:], uint32(d.Phase))
		putU64(payload[8:], clk.Now())
		if _, err := sender.SendTo(cfd, payload, dst); err != nil {
			return res, err
		}
	}
	for i := 0; i < finCount; i++ {
		putU32(payload, finSeq)
		if _, err := sender.SendTo(cfd, payload, dst); err != nil {
			return res, err
		}
		time.Sleep(200 * time.Microsecond)
	}

	res.Delivered = <-recvDone
	close(echoes)
	if err := <-srvErr; err != nil {
		return res, err
	}
	if err := shapedSanity(res); err != nil {
		return res, err
	}

	// Fold echoes into totals and per-phase stats.
	type acc struct {
		n    int
		sum  uint64
		rtts []uint64
	}
	perPhase := make([]acc, len(p.Shape.Phases))
	var total acc
	for e := range echoes {
		total.n++
		total.sum += e.rtt
		total.rtts = append(total.rtts, e.rtt)
		if e.phase >= 0 && e.phase < len(perPhase) {
			perPhase[e.phase].n++
			perPhase[e.phase].sum += e.rtt
			perPhase[e.phase].rtts = append(perPhase[e.phase].rtts, e.rtt)
		}
	}
	p99 := func(rtts []uint64) uint64 {
		if len(rtts) == 0 {
			return 0
		}
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		return rtts[len(rtts)*99/100]
	}
	if total.n > 0 {
		res.MeanLat = float64(total.sum) / float64(total.n)
		res.P99Lat = p99(total.rtts)
	}
	sent := make([]int, len(p.Shape.Phases))
	for _, d := range sched {
		sent[d.Phase]++
	}
	for i, ph := range p.Shape.Phases {
		st := PhaseStat{Name: ph.Name, Sent: sent[i], Echoed: perPhase[i].n, P99Lat: p99(perPhase[i].rtts)}
		if perPhase[i].n > 0 {
			st.MeanLat = float64(perPhase[i].sum) / float64(perPhase[i].n)
		}
		res.Phases = append(res.Phases, st)
	}
	return res, nil
}

// shapedServer echoes in gather windows: it collects up to the advised
// width (or until the flush deadline) and replies with one vectored
// send. The width knob's whole trade lives here — a wide window
// amortizes per-call costs under load and parks early arrivals at
// trickle.
func shapedServer(srv sys.Sys, sfd int, p ShapedParams) error {
	adviser, _ := srv.(batchAdviser)
	width := func() int {
		w := p.Width
		if w <= 0 && adviser != nil {
			w = adviser.AdviseBatch()
		}
		if w < 1 {
			w = 1
		}
		if w > shapedGatherMax {
			w = shapedGatherMax
		}
		return w
	}
	msgs := make([]sys.Mmsg, shapedGatherMax)
	for i := range msgs {
		msgs[i].Buf = make([]byte, p.PacketSize+64)
	}
	sawFin := false
	lastTraffic := time.Now()
	clk := srv.Clock()
	for {
		w := width()
		got := 0
		var windowStart uint64
		deadline := time.Now().Add(roundWait)
		for got < w {
			n, err := srv.RecvFromN(sfd, msgs[got:w], false)
			if err == nil && n > 0 {
				if got == 0 {
					// The clock just synced to the first arrival: the
					// window's coalescing budget starts here.
					windowStart = clk.Now()
				}
				got += n
				if clk.Now()-windowStart >= flushCycles {
					break
				}
				continue
			}
			if got > 0 && clk.Now()-windowStart >= flushCycles {
				break
			}
			if time.Now().After(deadline) {
				break
			}
			if _, err := srv.Poll([]sys.PollFD{{FD: sfd, Events: sys.PollIn}}, 5*time.Millisecond); err != nil {
				return err
			}
		}
		if got == 0 {
			// Exit on FIN, or on a long quiet stretch in case every FIN
			// was dropped on a lossy run.
			if sawFin || time.Since(lastTraffic) > echoTimeout {
				return nil
			}
			continue
		}
		lastTraffic = time.Now()
		// One event-loop iteration per gather round, however many
		// datagrams it carried.
		clk.Advance(dispatchCycles)
		out := make([]sys.Mmsg, 0, got)
		for i := 0; i < got; i++ {
			if msgs[i].N >= 4 && getU32(msgs[i].Buf) == finSeq {
				sawFin = true
			}
			out = append(out, sys.Mmsg{Buf: msgs[i].Buf[:msgs[i].N], Addr: msgs[i].Addr})
		}
		sent := 0
		for sent < len(out) {
			n, err := srv.SendToN(sfd, out[sent:])
			if err != nil {
				return err
			}
			sent += n
		}
	}
}

// shapedSanity guards against schedule/result bookkeeping drift.
func shapedSanity(r ShapedResult) error {
	if r.Delivered > r.Sent {
		return fmt.Errorf("shaped: delivered %d > sent %d", r.Delivered, r.Sent)
	}
	return nil
}
