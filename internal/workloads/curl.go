package workloads

import (
	"fmt"
	"time"

	"rakis/internal/sys"
)

// The Curl experiment (§6.1) downloads files over QUIC: UDP datagrams
// carrying a reliable stream. This is a deliberately small QUIC-like
// protocol ("sQUIC") with connection-less requests, sequenced 1200-byte
// data packets, cumulative ACKs every ackEvery packets, and a 64-packet
// flow-control window — enough to reproduce the experiment's shape: the
// *client* (curl) runs in the environment under test, the web server
// runs natively, and the measured quantity is total download time.
const (
	quicDataBytes = 1200
	quicWindow    = 64
	quicAckEvery  = 16
	quicHdrBytes  = 8
	quicFlagEOF   = 1
)

// CurlParams configures one download.
type CurlParams struct {
	// Path is the file served from the native host's VFS via the server
	// callback below.
	Path string
	// Port is the server port (default 4433).
	Port uint16
}

// CurlResult is one measurement.
type CurlResult struct {
	// Bytes downloaded.
	Bytes uint64
	// Cycles of virtual time on the curl thread, request to EOF.
	Cycles uint64
	// Seconds is the download duration, Figure 4(b)'s unit.
	Seconds float64
}

// QuicFileServer runs the native web server: it answers each "REQ path"
// datagram by streaming the file contents (fetched through the provided
// reader) with sQUIC flow control. It returns when stop is closed.
func QuicFileServer(cli sys.Sys, port uint16, readFile func(string) ([]byte, error), stop <-chan struct{}) error {
	fd, err := cli.Socket(sys.UDP)
	if err != nil {
		return err
	}
	if err := cli.Bind(fd, port); err != nil {
		return err
	}
	defer cli.Close(fd)
	buf := make([]byte, 2048)
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		n, src, ok := pollRecv(cli, fd, buf, 50*time.Millisecond)
		if !ok {
			continue
		}
		if n < 4 || string(buf[:4]) != "REQ " {
			continue
		}
		data, err := readFile(string(buf[4:n]))
		if err != nil {
			continue
		}
		streamFile(cli, fd, src, data)
	}
}

// streamFile pushes one file to a client with windowed delivery.
func streamFile(t sys.Sys, fd int, dst sys.Addr, data []byte) {
	total := (len(data) + quicDataBytes - 1) / quicDataBytes
	pkt := make([]byte, quicHdrBytes+quicDataBytes)
	acked := 0
	next := 0
	ackBuf := make([]byte, 64)
	deadline := time.Now().Add(30 * time.Second)
	for acked < total+1 { // +1 for the EOF packet
		for next < total+1 && next-acked < quicWindow {
			t.Clock().Advance(QuicServerPacePerPacket)
			if next < total {
				off := next * quicDataBytes
				end := off + quicDataBytes
				if end > len(data) {
					end = len(data)
				}
				putU32(pkt[0:4], uint32(next))
				putU32(pkt[4:8], 0)
				copy(pkt[quicHdrBytes:], data[off:end])
				t.SendTo(fd, pkt[:quicHdrBytes+end-off], dst)
			} else {
				putU32(pkt[0:4], uint32(next))
				putU32(pkt[4:8], quicFlagEOF)
				t.SendTo(fd, pkt[:quicHdrBytes], dst)
			}
			next++
		}
		n, _, ok := pollRecv(t, fd, ackBuf, 2*time.Second)
		if !ok || time.Now().After(deadline) {
			return // client went away
		}
		if n >= 4 {
			a := int(getU32(ackBuf[0:4]))
			if a > acked {
				acked = a
			}
		}
	}
}

// Curl downloads Path from the native sQUIC server, running the client
// inside the environment under test, and reports the download duration.
func Curl(env Env, p CurlParams, readFile func(string) ([]byte, error)) (CurlResult, error) {
	if p.Port == 0 {
		p.Port = 4433
	}
	stop := make(chan struct{})
	defer close(stop)
	go QuicFileServer(env.ClientThread(), p.Port, readFile, stop)

	curl, err := env.ServerThread()
	if err != nil {
		return CurlResult{}, err
	}
	fd, err := curl.Socket(sys.UDP)
	if err != nil {
		return CurlResult{}, err
	}
	defer curl.Close(fd)

	// The server address here is the *native* side: curl runs in the
	// environment and reaches out.
	dst := sys.Addr{IP: env.ClientIP, Port: p.Port}
	sp := startSpan(curl.Clock())
	if _, err := curl.SendTo(fd, []byte("REQ "+p.Path), dst); err != nil {
		return CurlResult{}, err
	}

	var got uint64
	nextSeq := 0
	retries := 0
	buf := make([]byte, 4096)
	ack := make([]byte, 4)
	for {
		var n int
		var src sys.Addr
		if got == 0 {
			// The handshake phase polls so the request can be
			// retransmitted, like a QUIC Initial, until the server is up.
			var ok bool
			n, src, ok = pollRecv(curl, fd, buf, 2*time.Second)
			if !ok {
				if retries < 5 {
					retries++
					if _, err := curl.SendTo(fd, []byte("REQ "+p.Path), dst); err != nil {
						return CurlResult{}, err
					}
					continue
				}
				return CurlResult{}, fmt.Errorf("curl: stream stalled at %d bytes", got)
			}
		} else {
			// Established stream on a lossless wire: blocking receive,
			// terminated by the EOF packet.
			var err error
			n, src, err = curl.RecvFrom(fd, buf, true)
			if err != nil {
				return CurlResult{}, err
			}
		}
		if n < quicHdrBytes {
			continue
		}
		seq := int(getU32(buf[0:4]))
		flags := getU32(buf[4:8])
		curl.Clock().Advance(QuicPerPacketCycles)
		consumed := false
		if seq == nextSeq { // the wire is in-order and lossless
			nextSeq++
			got += uint64(n - quicHdrBytes)
			consumed = true
		}
		if flags&quicFlagEOF != 0 || nextSeq%quicAckEvery == 0 {
			putU32(ack, uint32(nextSeq))
			curl.SendTo(fd, ack, src)
		}
		if flags&quicFlagEOF != 0 && consumed {
			break
		}
	}
	cycles := sp.cycles()
	return CurlResult{
		Bytes:   got,
		Cycles:  cycles,
		Seconds: env.Model.Seconds(cycles),
	}, nil
}
