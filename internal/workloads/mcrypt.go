package workloads

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"

	"rakis/internal/sys"
	"rakis/internal/vtime"
)

// McryptParams configures one MCrypt-style file encryption run (§6.2:
// encrypt a 1 GB file with varying read block sizes).
type McryptParams struct {
	// InPath is the plaintext input (created by PrepareMcryptInput).
	InPath string
	// OutPath is the ciphertext output.
	OutPath string
	// BlockSize is the read block size under sweep.
	BlockSize int
	// Key is the 16/24/32-byte cipher key.
	Key []byte
}

// McryptResult is one measurement.
type McryptResult struct {
	// Bytes encrypted.
	Bytes uint64
	// Cycles is the virtual duration of the whole run.
	Cycles uint64
	// Seconds is the reported execution time, Figure 5(c)'s unit.
	Seconds float64
}

// Mcrypt reads the input in BlockSize chunks, encrypts each with AES-CTR
// (real encryption — the ciphertext is verifiable), and writes the
// result, charging the per-byte cipher cost to the thread's clock.
func Mcrypt(env Env, p McryptParams) (McryptResult, error) {
	if p.BlockSize <= 0 {
		p.BlockSize = 65536
	}
	if p.InPath == "" {
		p.InPath = "/data/mcrypt.in"
	}
	if p.OutPath == "" {
		p.OutPath = "/data/mcrypt.out"
	}
	if len(p.Key) == 0 {
		p.Key = []byte("0123456789abcdef")
	}
	srv, err := env.ServerThread()
	if err != nil {
		return McryptResult{}, err
	}
	in, err := srv.Open(p.InPath, sys.ORdonly)
	if err != nil {
		return McryptResult{}, err
	}
	defer srv.Close(in)
	out, err := srv.Open(p.OutPath, sys.OCreate|sys.OWronly|sys.OTrunc)
	if err != nil {
		return McryptResult{}, err
	}
	defer srv.Close(out)

	blk, err := aes.NewCipher(p.Key)
	if err != nil {
		return McryptResult{}, err
	}
	iv := make([]byte, aes.BlockSize)
	stream := cipher.NewCTR(blk, iv)

	sp := startSpan(srv.Clock())
	buf := make([]byte, p.BlockSize)
	var total uint64
	for {
		n, err := srv.Read(in, buf)
		if err != nil {
			return McryptResult{}, fmt.Errorf("mcrypt read: %w", err)
		}
		if n == 0 {
			break
		}
		stream.XORKeyStream(buf[:n], buf[:n])
		srv.Clock().Advance(vtime.Bytes(CryptPerByteCycles, n))
		if w, err := srv.Write(out, buf[:n]); err != nil || w != n {
			return McryptResult{}, fmt.Errorf("mcrypt write: %d, %w", w, err)
		}
		total += uint64(n)
	}
	if err := srv.Fsync(out); err != nil {
		return McryptResult{}, err
	}
	cycles := sp.cycles()
	return McryptResult{
		Bytes:   total,
		Cycles:  cycles,
		Seconds: env.Model.Seconds(cycles),
	}, nil
}

// PrepareMcryptInput materializes the plaintext input file; the caller
// owns the VFS, so this just returns the bytes to install.
func PrepareMcryptInput(size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*31 + i>>9)
	}
	return data
}
