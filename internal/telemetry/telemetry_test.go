package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"rakis/internal/vtime"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1<<32 - 1, 32}, {1 << 32, 33}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		lo, hi := BucketBounds(BucketIndex(c.v))
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside its bucket bounds [%d, %d]", c.v, lo, hi)
		}
	}
	// Buckets tile the uint64 range with no gaps or overlaps.
	prevHi := uint64(0)
	for i := 1; i < HistBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Errorf("bucket %d inverted: [%d, %d]", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != ^uint64(0) {
		t.Errorf("buckets end at %d, want 2^64-1", prevHi)
	}
}

func TestHistogramObserveAndMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for v := uint64(0); v < 100; v++ {
		a.Observe(v)
	}
	for v := uint64(1000); v < 1010; v++ {
		b.Observe(v)
	}
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 110 {
		t.Fatalf("merged count = %d, want 110", s.Count)
	}
	wantSum := uint64(99*100/2) + (1000+1009)*10/2
	if s.Sum != wantSum {
		t.Fatalf("merged sum = %d, want %d", s.Sum, wantSum)
	}
	var bucketTotal uint64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, s.Count)
	}
	if q := s.Quantile(0.5); q < 32 || q > 2048 {
		t.Fatalf("median upper bound %d implausible", q)
	}
	if q := s.Quantile(1.0); q < 1009 {
		t.Fatalf("p100 upper bound %d below max sample", q)
	}
}

func TestTraceRingWraparoundConcurrent(t *testing.T) {
	const (
		slots   = 64
		writers = 4
		perG    = 5000
	)
	tr := NewTracer(slots)
	tr.Enable()
	shared := tr.NewBuf("shared")
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				shared.Emit(EvBoundaryCopy, uint64(g)<<32|uint64(i), uint64(i), uint64(g))
			}
		}(g)
	}
	wg.Wait()
	if got := shared.Emitted(); got != writers*perG {
		t.Fatalf("Emitted = %d, want %d", got, writers*perG)
	}
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > slots {
		t.Fatalf("retained %d events, want 1..%d", len(evs), slots)
	}
	for i, e := range evs {
		if e.Kind != EvBoundaryCopy {
			t.Fatalf("event %d has kind %v, want boundary_copy", i, e.Kind)
		}
		if i > 0 && e.Stamp < evs[i-1].Stamp {
			t.Fatalf("events out of stamp order at %d", i)
		}
	}
	// The ring wrapped many times: only recent sequence numbers survive.
	minSeq := evs[0].Seq
	for _, e := range evs {
		if e.Seq < minSeq {
			minSeq = e.Seq
		}
	}
	if minSeq < writers*perG-2*slots {
		t.Fatalf("retained sequence %d is older than two ring generations", minSeq)
	}
}

func TestDisabledPathAllocatesZero(t *testing.T) {
	// Fully disabled: nil sink-derived handles, as benchmarks see them.
	var (
		nilSink *Sink
		buf     = nilSink.NewBuf("x")
		probe   = nilSink.NewProbe("x", nil)
		ctr     *Counter
	)
	clk := &vtime.Clock{}
	if n := testing.AllocsPerRun(1000, func() {
		buf.Emit(EvEnclaveExit, 1, 2, 3)
		probe.Begin(SpanRead)
		probe.Emit(EvBoundaryCopy, 4, 5, 6)
		probe.End()
		ctr.Add(1)
		clk.Charge(vtime.CompCopy, 10)
		clk.Sync(5)
	}); n != 0 {
		t.Fatalf("disabled telemetry path allocates %.1f per op, want 0", n)
	}

	// Present but disabled tracer: the ≤1-atomic-load path.
	tr := NewTracer(64)
	live := tr.NewBuf("live")
	if n := testing.AllocsPerRun(1000, func() {
		live.Emit(EvEnclaveExit, 1, 2, 3)
	}); n != 0 {
		t.Fatalf("disabled-tracer Emit allocates %.1f per op, want 0", n)
	}
	if got := live.Emitted(); got != 0 {
		t.Fatalf("disabled tracer recorded %d events", got)
	}
}

func TestProbeSpansAndConservation(t *testing.T) {
	s := NewSink()
	s.Trace.Enable()
	clk := &vtime.Clock{}
	p := s.NewProbe("app.0", clk)

	p.Begin(SpanRead)
	clk.Charge(vtime.CompExit, 100)
	clk.Charge(vtime.CompCopy, 40)
	p.Begin(SpanFstat) // nested: folds into the outer read span
	clk.Advance(10)
	p.End()
	clk.Sync(200) // 50 cycles of wait
	p.End()

	p.Begin(SpanWrite)
	clk.SyncAs(260, vtime.CompRing)
	p.End()

	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := p.Attribution().Total(); got != clk.Now() {
		t.Fatalf("attributed %d, clock %d", got, clk.Now())
	}
	bd := s.Breakdown()
	if len(bd.Spans) != 2 {
		t.Fatalf("got %d span rows, want 2 (read, write)", len(bd.Spans))
	}
	var read SpanRow
	for _, r := range bd.Spans {
		if r.Syscall == "read" {
			read = r
		}
	}
	if read.Count != 1 || read.Cycles != 200 {
		t.Fatalf("read span = %+v, want count 1 cycles 200", read)
	}
	if read.Comp["exit"] != 100 || read.Comp["copy"] != 40 || read.Comp["other"] != 10 || read.Comp["wait"] != 50 {
		t.Fatalf("read decomposition wrong: %v", read.Comp)
	}

	// Exporters run on the recorded events.
	evs := s.Trace.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 span ends", len(evs))
	}
	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, evs, vtime.Default()); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(chrome.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("span_end")) {
		t.Fatalf("csv missing span_end rows:\n%s", csv.String())
	}
	var bdJSON bytes.Buffer
	if err := bd.WriteJSON(&bdJSON); err != nil {
		t.Fatal(err)
	}
	var back Breakdown
	if err := json.Unmarshal(bdJSON.Bytes(), &back); err != nil {
		t.Fatalf("breakdown JSON round-trip: %v", err)
	}
	if back.Schema != BreakdownSchema {
		t.Fatalf("schema = %q", back.Schema)
	}
}

func TestRegistryBindCountersAndValue(t *testing.T) {
	r := NewRegistry()
	var c vtime.Counters
	BindCounters(r, &c)
	c.EnclaveExits.Add(42)
	if v, ok := r.Value("vtime.enclave_exits"); !ok || v != 42 {
		t.Fatalf("vtime.enclave_exits = %d,%v want 42,true", v, ok)
	}
	r.Counter("custom").Add(7)
	if v, ok := r.Value("custom"); !ok || v != 7 {
		t.Fatalf("custom = %d,%v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Fatal("missing metric reported present")
	}
	snap := r.Snapshot()
	found := 0
	for _, m := range snap {
		if m.Name == "vtime.enclave_exits" && m.Value == 42 {
			found++
		}
		if m.Name == "custom" && m.Value == 7 {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("snapshot missing bound metrics: %v", snap)
	}
}
