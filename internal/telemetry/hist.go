package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the bucket count of a log2 histogram: bucket 0 holds
// the value 0, bucket i (i ≥ 1) holds values in [2^(i-1), 2^i).
const HistBuckets = 65

// Histogram is a lock-free log2-bucket histogram of uint64 samples —
// cycle latencies and byte sizes. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// BucketIndex returns the bucket a value falls in.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<i - 1
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketIndex(v)].Add(1)
}

// Merge folds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range h.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// HistSnapshot is a plain-value copy of a histogram.
type HistSnapshot struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Snapshot returns a point-in-time copy.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge returns the bucket-wise sum of two snapshots.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	return s
}

// Sub returns the bucket-wise difference s−o, for windowed views over a
// cumulative histogram: Sub of an earlier snapshot of the same
// histogram yields exactly the samples observed in between. Counts are
// clamped at zero so a stale baseline cannot underflow.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	s.Count = sub(s.Count, o.Count)
	s.Sum = sub(s.Sum, o.Sum)
	for i := range s.Buckets {
		s.Buckets[i] = sub(s.Buckets[i], o.Buckets[i])
	}
	return s
}

// Mean returns the average sample, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1): the
// high edge of the bucket the quantile sample falls in.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			_, hi := BucketBounds(i)
			return hi
		}
	}
	_, hi := BucketBounds(HistBuckets - 1)
	return hi
}
