package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is a trace event type. Events are typed rather than stringly so
// a disabled emit never formats anything.
type Kind uint8

const (
	// EvNone marks an empty slot.
	EvNone Kind = iota
	// EvEnclaveExit is one OCALL: A = serialized transition cycles,
	// B = payload bytes crossing the boundary.
	EvEnclaveExit
	// EvBoundaryCopy is data crossing the trust boundary outside an
	// exit: A = bytes, B = direction (0 = out of the enclave, 1 = in).
	EvBoundaryCopy
	// EvRingProduce is a submission onto a certified ring: A = ring tag
	// (RingXskFill..RingUringSub), B = entries.
	EvRingProduce
	// EvRingConsume is a reap from a certified ring: A = ring tag,
	// B = entries.
	EvRingConsume
	// EvRingRefusal is a Table 2 refusal of a hostile ring value:
	// A = ring tag, B = the refused raw value (opaque, untrusted).
	EvRingRefusal
	// EvUMemRefusal is a UMem ownership refusal: A = the refused frame
	// address (opaque, untrusted), B = length.
	EvUMemRefusal
	// EvCQEComplete is a validated CQE: A = user-data token, B = result.
	EvCQEComplete
	// EvMMWakeup is a Monitor Module wakeup syscall issued on behalf of
	// the enclave: A = watched fd, B = watch kind (0 XSK TX, 1 XSK fill,
	// 2 io_uring).
	EvMMWakeup
	// EvSoftirqFrame is one frame through a NIC softirq worker:
	// A = queue id, B = frame bytes.
	EvSoftirqFrame
	// EvSyscall is one host syscall boundary crossing: A = 1 when paid
	// (costed process), B = 0.
	EvSyscall
	// EvChaosFault is one injected fault: A = chaos site index.
	EvChaosFault
	// EvSpanEnd closes a POSIX-call span: A = SpanKind, B = span cycles.
	EvSpanEnd
	// EvSpliceFrame is a zero-copy RX→TX frame splice: A = UMem offset,
	// B = spliced length in bytes (no boundary copy occurred).
	EvSpliceFrame

	// NumKinds is the number of event kinds.
	NumKinds = int(EvSpliceFrame) + 1
)

// Ring tags for EvRingProduce/Consume/Refusal events.
const (
	RingXskFill uint64 = iota
	RingXskRX
	RingXskTX
	RingXskCompl
	RingUringSub
	RingUringCompl
)

var kindNames = [NumKinds]string{
	"none", "enclave_exit", "boundary_copy", "ring_produce", "ring_consume",
	"ring_refusal", "umem_refusal", "cqe_complete", "mm_wakeup",
	"softirq_frame", "syscall", "chaos_fault", "span_end", "splice_frame",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return "invalid"
}

// Tracer is the run-wide event recorder: per-thread lock-free ring
// buffers behind one enable bit. It starts disabled.
type Tracer struct {
	on   atomic.Bool
	size uint64

	mu   sync.Mutex
	bufs []*Buf
}

// DefaultRingSlots is the per-thread ring capacity when NewTracer is
// given no size.
const DefaultRingSlots = 4096

// NewTracer returns a tracer whose per-thread rings hold `slots` events
// (rounded up to a power of two; ≤ 0 selects DefaultRingSlots).
func NewTracer(slots int) *Tracer {
	n := uint64(DefaultRingSlots)
	if slots > 0 {
		n = 1
		for n < uint64(slots) {
			n <<= 1
		}
	}
	return &Tracer{size: n}
}

// Enable starts recording.
func (t *Tracer) Enable() {
	if t != nil {
		t.on.Store(true)
	}
}

// Disable stops recording; already-captured events remain readable.
func (t *Tracer) Disable() {
	if t != nil {
		t.on.Store(false)
	}
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// slotWords is the flat atomic words per event slot: packed
// sequence+kind, virtual-time stamp, and two opaque arguments. The
// sequence word is stored last, so a fully published slot always has a
// nonzero meta word; a slot caught mid-overwrite can pair a new stamp
// with an old argument, which the decoder tolerates (torn events are
// possible only once the ring has wrapped, and carry valid kinds).
const slotWords = 4

// Buf is one thread's trace ring. Writers reserve a slot with a single
// atomic add and publish with plain atomic stores — no locks, no
// allocation — so concurrent writers (a shared XSK socket) stay
// race-clean and wrap by overwriting the oldest slots.
type Buf struct {
	t     *Tracer
	id    int
	label string
	mask  uint64
	pos   atomic.Uint64
	words []atomic.Uint64
}

// NewBuf registers a new per-thread ring with the tracer. Nil-safe.
func (t *Tracer) NewBuf(label string) *Buf {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &Buf{
		t:     t,
		id:    len(t.bufs),
		label: label,
		mask:  t.size - 1,
		words: make([]atomic.Uint64, t.size*slotWords),
	}
	t.bufs = append(t.bufs, b)
	return b
}

// Label returns the ring's thread label.
func (b *Buf) Label() string {
	if b == nil {
		return ""
	}
	return b.label
}

// Emit records one event stamped with the emitting thread's virtual
// time. When the ring is nil or the tracer disabled it returns after at
// most one atomic load, allocating nothing.
func (b *Buf) Emit(k Kind, stamp, a, arg2 uint64) {
	if b == nil || !b.t.on.Load() {
		return
	}
	i := b.pos.Add(1) - 1
	base := (i & b.mask) * slotWords
	b.words[base+1].Store(stamp)
	b.words[base+2].Store(a)
	b.words[base+3].Store(arg2)
	b.words[base].Store((i+1)<<8 | uint64(k))
}

// Emitted returns the total events emitted into this ring, including
// those already overwritten.
func (b *Buf) Emitted() uint64 {
	if b == nil {
		return 0
	}
	return b.pos.Load()
}

// Event is one decoded trace event.
type Event struct {
	Thread string `json:"thread"`
	TID    int    `json:"tid"`
	Seq    uint64 `json:"seq"`
	Kind   Kind   `json:"-"`
	Name   string `json:"kind"`
	Stamp  uint64 `json:"stamp"`
	A      uint64 `json:"a"`
	B      uint64 `json:"b"`
}

// String renders one event line.
func (e Event) String() string {
	return fmt.Sprintf("%12d %-14s %-12s a=%d b=%d", e.Stamp, e.Thread, e.Name, e.A, e.B)
}

// events decodes this ring's currently retained slots.
func (b *Buf) events() []Event {
	out := make([]Event, 0, b.mask+1)
	for slot := uint64(0); slot <= b.mask; slot++ {
		meta := b.words[slot*slotWords].Load()
		if meta == 0 {
			continue
		}
		k := Kind(meta & 0xff)
		if int(k) >= NumKinds || k == EvNone {
			continue
		}
		out = append(out, Event{
			Thread: b.label,
			TID:    b.id,
			Seq:    meta>>8 - 1,
			Kind:   k,
			Name:   k.String(),
			Stamp:  b.words[slot*slotWords+1].Load(),
			A:      b.words[slot*slotWords+2].Load(),
			B:      b.words[slot*slotWords+3].Load(),
		})
	}
	return out
}

// Events decodes every ring's retained events, ordered by virtual time
// (then thread, then sequence).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	bufs := append([]*Buf(nil), t.bufs...)
	t.mu.Unlock()
	var out []Event
	for _, b := range bufs {
		out = append(out, b.events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stamp != out[j].Stamp {
			return out[i].Stamp < out[j].Stamp
		}
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Tail returns the last n events in virtual-time order — the final
// trace window a failing chaos cell dumps next to its seed.
func (t *Tracer) Tail(n int) []Event {
	evs := t.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}
