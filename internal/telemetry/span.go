package telemetry

import (
	"sync/atomic"

	"rakis/internal/vtime"
)

// SpanKind names one POSIX call intercepted at the Service Module's API
// submodule — the unit of the per-syscall cost breakdown.
type SpanKind uint8

const (
	SpanSocket SpanKind = iota
	SpanBind
	SpanConnect
	SpanListen
	SpanAccept
	SpanSendTo
	SpanRecvFrom
	SpanSend
	SpanRecv
	SpanOpen
	SpanRead
	SpanWrite
	SpanPread
	SpanPwrite
	SpanLseek
	SpanFstat
	SpanFsync
	SpanPoll
	SpanEpollCreate
	SpanEpollCtl
	SpanEpollWait
	SpanClose
	SpanFutex
	SpanSendToN
	SpanRecvFromN

	// NumSpanKinds is the number of span kinds.
	NumSpanKinds = int(SpanRecvFromN) + 1
)

var spanNames = [NumSpanKinds]string{
	"socket", "bind", "connect", "listen", "accept",
	"sendto", "recvfrom", "send", "recv",
	"open", "read", "write", "pread", "pwrite",
	"lseek", "fstat", "fsync", "poll",
	"epoll_create", "epoll_ctl", "epoll_wait",
	"close", "futex",
	"sendmmsg", "recvmmsg",
}

// String returns the syscall name.
func (k SpanKind) String() string {
	if int(k) < NumSpanKinds {
		return spanNames[k]
	}
	return "invalid"
}

// spanAgg accumulates one span kind on one probe. Written only by the
// probe's own thread; read by exporters after quiesce.
type spanAgg struct {
	count  atomic.Uint64
	cycles atomic.Uint64
	comp   [vtime.NumComp]atomic.Uint64
}

// Probe decomposes one simulated thread's POSIX calls into vtime.Comp
// components. Begin/End bracket each call; the probe's Attribution is
// bound to the thread's clock, so component deltas over the bracket are
// exact and sum to the span's cycle count by construction.
//
// All methods are nil-receiver safe: a nil probe is the disabled state
// and costs a pointer test per call.
type Probe struct {
	sink  *Sink
	buf   *Buf
	clk   *vtime.Clock
	attr  vtime.Attribution
	label string

	// Span-in-progress state, touched only by the owning thread.
	depth     int
	kind      SpanKind
	startT    uint64
	startComp [vtime.NumComp]uint64

	agg [NumSpanKinds]spanAgg
}

// Label returns the probe's thread label.
func (p *Probe) Label() string {
	if p == nil {
		return ""
	}
	return p.label
}

// Attribution returns the probe's cycle ledger (nil on a nil probe).
func (p *Probe) Attribution() *vtime.Attribution {
	if p == nil {
		return nil
	}
	return &p.attr
}

// TraceBuf returns the probe's trace ring (nil on a nil probe).
func (p *Probe) TraceBuf() *Buf {
	if p == nil {
		return nil
	}
	return p.buf
}

// Emit records an event on the probe's trace ring.
func (p *Probe) Emit(k Kind, stamp, a, b uint64) {
	if p == nil {
		return
	}
	p.buf.Emit(k, stamp, a, b)
}

// Begin opens a span of the given kind. Nested Begins (a RAKIS call
// falling back to the LibOS path) fold into the outermost span.
func (p *Probe) Begin(k SpanKind) {
	if p == nil {
		return
	}
	p.depth++
	if p.depth > 1 {
		return
	}
	p.kind = k
	p.startT = p.clk.Now()
	p.startComp = p.attr.Snapshot()
}

// End closes the current span, folding its cycle and component deltas
// into the per-kind aggregates, the sink's latency histogram, and the
// trace.
func (p *Probe) End() {
	if p == nil {
		return
	}
	p.depth--
	if p.depth > 0 {
		return
	}
	now := p.clk.Now()
	dur := now - p.startT
	cur := p.attr.Snapshot()
	a := &p.agg[p.kind]
	a.count.Add(1)
	a.cycles.Add(dur)
	for c := range cur {
		a.comp[c].Add(cur[c] - p.startComp[c])
	}
	p.sink.spanHist[p.kind].Observe(dur)
	p.buf.Emit(EvSpanEnd, now, uint64(p.kind), dur)
}
