package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"rakis/internal/vtime"
)

// Counter is a named monotonic counter. A nil *Counter (from a nil
// registry) is a no-op, so instrumented code never branches on
// telemetry being present.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the counter's value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is the run-wide metrics namespace: counters owned by the
// registry, reader gauges that sample external state (the vtime.Counters
// fields, netsim queue drops), and log2 histograms.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	readers  map[string]func() uint64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		readers:  make(map[string]func() uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a nil registry yields a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Reader registers a gauge whose value is sampled by calling fn at
// snapshot time. Registering a name twice replaces the reader.
//
// Contract: fn must be cheap (an atomic load or a short uncontended
// lock over foreign state) and must never re-enter the registry.
// Snapshot and Values sample readers while holding the registry lock so
// one snapshot is a single coherent cut across every metric; a reader
// that blocks or calls back into the registry deadlocks.
func (r *Registry) Reader(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.readers[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Value looks a scalar metric up by name — counter or reader gauge —
// and reports whether it exists.
func (r *Registry) Value(name string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	c := r.counters[name]
	fn := r.readers[name]
	r.mu.Unlock()
	if c != nil {
		return c.Load(), true
	}
	if fn != nil {
		return fn(), true
	}
	return 0, false
}

// Metric is one registry entry at snapshot time.
type Metric struct {
	Name  string        `json:"name"`
	Kind  string        `json:"kind"` // "counter", "gauge", or "histogram"
	Value uint64        `json:"value"`
	Hist  *HistSnapshot `json:"hist,omitempty"`
}

// Snapshot samples every metric under one hold of the registry lock —
// a coherent cut: no metric in the result can postdate another by more
// than the sampling loop itself. Readers are sampled inside the lock
// (see the Reader contract), which is what makes the cut safe for the
// tuner and rakis-trace to difference against a previous snapshot
// without torn multi-counter reads. Histograms with no observations are
// omitted; the result is sorted by name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.readers)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.Load()})
	}
	for name, fn := range r.readers {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: fn()})
	}
	for name, h := range r.hists {
		if s := h.Snapshot(); s.Count > 0 {
			hs := s
			out = append(out, Metric{Name: name, Kind: "histogram", Value: s.Count, Hist: &hs})
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Values returns every scalar metric (counters and reader gauges) as
// one coherent name→value cut, sampled under a single hold of the
// registry lock. This is the tuner's input read: differencing two
// Values cuts yields window deltas with no torn reads.
func (r *Registry) Values() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters)+len(r.readers))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, fn := range r.readers {
		out[name] = fn()
	}
	return out
}

// BindCounters registers every vtime.Counters field as a reader gauge
// under a stable "vtime." name, making the registry the single source of
// truth for the legacy sinks (Figure 2 reads exits through it).
func BindCounters(r *Registry, c *vtime.Counters) {
	if r == nil || c == nil {
		return
	}
	r.Reader("vtime.enclave_exits", c.EnclaveExits.Load)
	r.Reader("vtime.syscalls", c.Syscalls.Load)
	r.Reader("vtime.libos_calls", c.LibOSCalls.Load)
	r.Reader("vtime.ring_violations", c.RingViolations.Load)
	r.Reader("vtime.umem_violations", c.UMemViolations.Load)
	r.Reader("vtime.cqe_violations", c.CQEViolations.Load)
	r.Reader("vtime.packets_rx", c.PacketsRx.Load)
	r.Reader("vtime.packets_tx", c.PacketsTx.Load)
	r.Reader("vtime.packets_dropped", c.PacketsDropped.Load)
	r.Reader("vtime.bytes_rx", c.BytesRx.Load)
	r.Reader("vtime.bytes_tx", c.BytesTx.Load)
	r.Reader("vtime.iouring_ops", c.IoUringOps.Load)
	r.Reader("vtime.wakeups", c.Wakeups.Load)
	r.Reader("vtime.faults_injected", c.FaultsInjected.Load)
	r.Reader("vtime.wakeup_retries", c.WakeupRetries.Load)
	r.Reader("vtime.submit_retries", c.SubmitRetries.Load)
	r.Reader("vtime.fallback_exits", c.FallbackExits.Load)
	r.Reader("vtime.ring_resyncs", c.RingResyncs.Load)
	r.Reader("vtime.poll_cancels", c.PollCancels.Load)
	r.Reader("vtime.batch_calls", c.BatchCalls.Load)
	r.Reader("vtime.batched_msgs", c.BatchedMsgs.Load)
	r.Reader("vtime.wakeups_coalesced", c.WakeupsCoalesced.Load)
	r.Reader("vtime.copy_bytes_saved", c.CopyBytesSaved.Load)
	r.Reader("vtime.splice_frames", c.SpliceFrames.Load)
	r.Reader("vtime.tcp_cookies_sent", c.TCPCookiesSent.Load)
	r.Reader("vtime.tcp_cookies_accepted", c.TCPCookiesAccepted.Load)
	r.Reader("vtime.tcp_refused", c.TCPRefused.Load)
}
