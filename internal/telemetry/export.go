package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"rakis/internal/vtime"
)

// SpanRow is one syscall's aggregated cost decomposition across every
// probe: how many calls, their total cycles, and where those cycles
// went.
type SpanRow struct {
	Syscall string            `json:"syscall"`
	Count   uint64            `json:"count"`
	Cycles  uint64            `json:"cycles"`
	Comp    map[string]uint64 `json:"comp"`
}

// ThreadRow is one simulated thread's whole-run cycle ledger.
type ThreadRow struct {
	Thread string            `json:"thread"`
	Cycles uint64            `json:"cycles"`
	Comp   map[string]uint64 `json:"comp"`
}

// Breakdown is the machine-readable cost accounting of one run — the
// §6 decomposition cmd/rakis-trace emits.
type Breakdown struct {
	Schema  string      `json:"schema"`
	Spans   []SpanRow   `json:"spans"`
	Threads []ThreadRow `json:"threads"`
	Metrics []Metric    `json:"metrics"`
}

// BreakdownSchema identifies the breakdown JSON layout.
const BreakdownSchema = "rakis-breakdown/v1"

// Breakdown aggregates the sink's probes and registry into the
// per-syscall and per-thread cost decomposition.
func (s *Sink) Breakdown() Breakdown {
	bd := Breakdown{Schema: BreakdownSchema}
	if s == nil {
		return bd
	}
	var spans [NumSpanKinds]SpanRow
	for _, p := range s.Probes() {
		for k := 0; k < NumSpanKinds; k++ {
			a := &p.agg[k]
			n := a.count.Load()
			if n == 0 {
				continue
			}
			row := &spans[k]
			if row.Comp == nil {
				row.Syscall = SpanKind(k).String()
				row.Comp = make(map[string]uint64, vtime.NumComp)
			}
			row.Count += n
			row.Cycles += a.cycles.Load()
			for c := 0; c < vtime.NumComp; c++ {
				if v := a.comp[c].Load(); v != 0 {
					row.Comp[vtime.Comp(c).String()] += v
				}
			}
		}
		tr := ThreadRow{Thread: p.label, Comp: make(map[string]uint64, vtime.NumComp)}
		for c := 0; c < vtime.NumComp; c++ {
			if v := p.attr.Load(vtime.Comp(c)); v != 0 {
				tr.Comp[vtime.Comp(c).String()] = v
				tr.Cycles += v
			}
		}
		bd.Threads = append(bd.Threads, tr)
	}
	for k := 0; k < NumSpanKinds; k++ {
		if spans[k].Count > 0 {
			bd.Spans = append(bd.Spans, spans[k])
		}
	}
	bd.Metrics = s.Reg.Snapshot()
	return bd
}

// WriteJSON writes the breakdown as indented JSON.
func (bd Breakdown) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bd)
}

// Format renders the breakdown as the human-readable tables
// cmd/rakis-trace prints: the per-syscall decomposition, the per-thread
// ledgers, and the nonzero metrics.
func (bd Breakdown) Format(model *vtime.Model) string {
	var sb strings.Builder
	comps := make([]string, 0, vtime.NumComp)
	for c := 0; c < vtime.NumComp; c++ {
		comps = append(comps, vtime.Comp(c).String())
	}

	sb.WriteString("per-syscall cost breakdown (cycles):\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "syscall\tcount\tcycles\tper-call")
	for _, c := range comps {
		fmt.Fprintf(tw, "\t%s%%", c)
	}
	fmt.Fprintln(tw)
	for _, row := range bd.Spans {
		per := uint64(0)
		if row.Count > 0 {
			per = row.Cycles / row.Count
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d", row.Syscall, row.Count, row.Cycles, per)
		for _, c := range comps {
			fmt.Fprintf(tw, "\t%.1f", pct(row.Comp[c], row.Cycles))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	sb.WriteString("\nper-thread cycle ledger:\n")
	tw = tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "thread\tcycles")
	if model != nil {
		fmt.Fprintf(tw, "\tms")
	}
	for _, c := range comps {
		fmt.Fprintf(tw, "\t%s%%", c)
	}
	fmt.Fprintln(tw)
	for _, row := range bd.Threads {
		fmt.Fprintf(tw, "%s\t%d", row.Thread, row.Cycles)
		if model != nil {
			fmt.Fprintf(tw, "\t%.3f", model.Seconds(row.Cycles)*1e3)
		}
		for _, c := range comps {
			fmt.Fprintf(tw, "\t%.1f", pct(row.Comp[c], row.Cycles))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	sb.WriteString("\nmetrics:\n")
	tw = tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	for _, m := range bd.Metrics {
		if m.Value == 0 {
			continue
		}
		if m.Hist != nil {
			fmt.Fprintf(tw, "%s\t%d\tmean=%.0f p99≤%d\n", m.Name, m.Value, m.Hist.Mean(), m.Hist.Quantile(0.99))
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\n", m.Name, m.Value)
	}
	tw.Flush()
	return sb.String()
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// chromeEvent is one entry of the Chrome trace-event JSON array
// (about://tracing, Perfetto).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders events as a Chrome about://tracing JSON
// document. Span-end events become complete ("X") slices; everything
// else becomes a thread-scoped instant. The model converts virtual
// cycles to wall microseconds; thread names arrive as metadata records.
func WriteChromeTrace(w io.Writer, events []Event, model *vtime.Model) error {
	us := func(cycles uint64) float64 {
		if model == nil {
			return float64(cycles)
		}
		return model.Seconds(cycles) * 1e6
	}
	var out []chromeEvent
	named := map[int]string{}
	for _, e := range events {
		if _, ok := named[e.TID]; !ok {
			named[e.TID] = e.Thread
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: e.TID,
				Args: map[string]any{"name": e.Thread},
			})
		}
		switch e.Kind {
		case EvSpanEnd:
			out = append(out, chromeEvent{
				Name: SpanKind(e.A).String(), Ph: "X",
				TS: us(e.Stamp - e.B), Dur: us(e.B),
				PID: 1, TID: e.TID,
			})
		default:
			out = append(out, chromeEvent{
				Name: e.Name, Ph: "i", TS: us(e.Stamp), PID: 1, TID: e.TID, S: "t",
				Args: map[string]any{"a": e.A, "b": e.B},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteCSV renders events as a CSV log: thread,seq,kind,stamp,a,b.
func WriteCSV(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintln(w, "thread,seq,kind,stamp,a,b"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%d,%d,%d\n",
			e.Thread, e.Seq, e.Name, e.Stamp, e.A, e.B); err != nil {
			return err
		}
	}
	return nil
}
