// Package telemetry is the boundary-crossing observability subsystem:
// it turns any run into the paper's cost accounting — Figure 2's exit
// counts and §6's decomposition of where time goes (exits vs boundary
// copies vs ring validation vs stack work).
//
// Three layers, all optional and all nil-receiver safe so the
// instrumented hot paths cost nothing when telemetry is off:
//
//   - a metrics Registry of named counters, reader gauges, and
//     log2-bucket histograms, which absorbs the ad-hoc vtime.Counters
//     sinks (BindCounters) and the netsim per-queue drop counters;
//   - a lock-free per-thread ring-buffer Tracer of typed events stamped
//     with virtual time (enclave exits, boundary copies, certified ring
//     traffic, refusals, MM wakeups, CQE completions, softirq frames,
//     chaos faults). A disabled Emit costs one atomic load and zero
//     allocations;
//   - per-thread Probes that decompose each POSIX call crossing the
//     Service Module into vtime.Comp components and assert conservation
//     against the vtime clocks.
//
// Exporters render the result as a Chrome about://tracing JSON file, a
// CSV event log, or the stable machine-readable breakdown consumed by
// cmd/rakis-trace and the BENCH trajectory.
//
// Trust placement: the registry, trace rings, and span tables live in
// trusted memory and are written only by the side that owns each
// instrumented thread. Event arguments may carry untrusted-origin values
// (a hostile CQE result, a refused descriptor address); telemetry treats
// them as opaque payloads — they are stored and printed, never used as
// an index, bound, length, or address.
//
//rakis:role enclave
package telemetry

import (
	"fmt"
	"sync"

	"rakis/internal/vtime"
)

// Sink bundles the three telemetry layers for one run. A nil *Sink is
// the disabled state: every constructor and hook degrades to a no-op.
type Sink struct {
	// Reg is the run's metrics registry.
	Reg *Registry
	// Trace is the run's event tracer (created disabled; call
	// Trace.Enable to start recording).
	Trace *Tracer

	mu       sync.Mutex
	probes   []*Probe
	nprobe   int
	spanHist [NumSpanKinds]*Histogram
}

// NewSink returns a ready sink: registry, a tracer with the default ring
// size, and per-span-kind latency histograms pre-registered.
func NewSink() *Sink {
	s := &Sink{Reg: NewRegistry(), Trace: NewTracer(0)}
	for k := 0; k < NumSpanKinds; k++ {
		s.spanHist[k] = s.Reg.Histogram("span." + SpanKind(k).String() + ".cycles")
	}
	return s
}

// NewProbe creates a span probe for one simulated thread, binds its
// cycle ledger to the thread's clock, and gives it a trace ring. Safe on
// a nil sink (returns a nil probe, itself a no-op).
func (s *Sink) NewProbe(label string, clk *vtime.Clock) *Probe {
	if s == nil {
		return nil
	}
	p := &Probe{sink: s, buf: s.Trace.NewBuf(label), clk: clk, label: label}
	if clk != nil {
		clk.SetAttribution(&p.attr)
	}
	s.mu.Lock()
	s.probes = append(s.probes, p)
	s.mu.Unlock()
	return p
}

// ProbeLabel derives a unique probe label "prefix.N" for the Nth thread
// of a family.
func (s *Sink) ProbeLabel(prefix string) string {
	if s == nil {
		return prefix
	}
	s.mu.Lock()
	n := s.nprobe
	s.nprobe++
	s.mu.Unlock()
	return fmt.Sprintf("%s.%d", prefix, n)
}

// NewBuf returns a trace ring for a thread that records events but has
// no span lifecycle (the MM, softirq workers, chaos). Nil-safe.
func (s *Sink) NewBuf(label string) *Buf {
	if s == nil {
		return nil
	}
	return s.Trace.NewBuf(label)
}

// Probes returns the probes created so far.
func (s *Sink) Probes() []*Probe {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Probe(nil), s.probes...)
}

// CheckConservation verifies the accounting invariant on every probe:
// the per-component cycle totals sum exactly to the bound clock's time,
// and each span kind's component sums equal its recorded cycles. Call it
// after the run has quiesced (world closed, workload joined).
func (s *Sink) CheckConservation() error {
	if s == nil {
		return nil
	}
	for _, p := range s.Probes() {
		if p.clk != nil {
			if got, want := p.attr.Total(), p.clk.Now(); got != want {
				return fmt.Errorf("telemetry: probe %s attributed %d cycles, clock at %d", p.label, got, want)
			}
		}
		for k := 0; k < NumSpanKinds; k++ {
			a := &p.agg[k]
			var sum uint64
			for c := range a.comp {
				sum += a.comp[c].Load()
			}
			if cyc := a.cycles.Load(); sum != cyc {
				return fmt.Errorf("telemetry: probe %s span %s components sum to %d, span cycles %d",
					p.label, SpanKind(k), sum, cyc)
			}
		}
	}
	return nil
}
