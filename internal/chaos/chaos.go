// Package chaos is the hostile-host fault-injection subsystem: a
// deterministic, seeded adversary that wraps the untrusted side of the
// simulation and exercises exactly the attack surface the paper's threat
// model grants the host (§3, Table 2).
//
// The injector is wired into the untrusted components via small hooks —
// the simulated kernel's io_uring and XSK workers (hostos), the Monitor
// Module loop (mm), and the NIC (netsim) — plus a scribbler goroutine
// that corrupts shared-memory ring control words and descriptors
// mid-run. Fault classes:
//
//   - ring control words: hostile index values drawn from the same
//     equivalence-class table the Testing Module verifies against
//     (tm.AdversaryClasses), bit-flips, and stale replays;
//   - ring flags words and unpublished descriptor slots;
//   - wakeup syscalls dropped, delayed, or duplicated; kernel-side CQE
//     postings forged, duplicated, or result-corrupted
//     (tm.ResultClasses);
//   - kernel workers and the MM thread stalled or killed outright;
//
// Every decision comes from a single seeded stream, so a failing run is
// reproducible by replaying its printed seed (statistically: goroutine
// interleaving still varies, but the fault pattern per site does not).
//
// The injector is host-role code: it may only ever touch untrusted
// memory, with the same mem.RoleHost access checks the kernel itself is
// subject to — the chaos suite asserts the trusted segment stayed
// untouched even while the injector was scribbling.
//
//rakis:role host
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/telemetry"
	"rakis/internal/tm"
	"rakis/internal/vtime"
)

// Site identifies one fault-injection point.
type Site int

// The fault sites, grouped by the hook layer that consults them.
const (
	// Scribbler sites (shared-memory corruption).
	SiteRingCtrl Site = iota
	SiteRingData
	SiteRingFlags
	// Wakeup-syscall sites (hostos XSK/io_uring entry points).
	SiteWakeDrop
	SiteWakeDelay
	SiteWakeDup
	// Completion sites (hostos io_uring worker).
	SiteCQEForge
	SiteCQEDup
	SiteCQERes
	// Kernel worker sites.
	SiteWorkerStall
	SiteWorkerKill
	SiteSoftirqStall
	// Monitor Module sites.
	SiteMMStall
	SiteMMKill
	// NIC sites (netsim).
	SiteNetDrop
	SiteNetCorrupt
	SiteNetDup
	siteMax
)

var siteNames = [...]string{
	"ring-ctrl", "ring-data", "ring-flags",
	"wake-drop", "wake-delay", "wake-dup",
	"cqe-forge", "cqe-dup", "cqe-res",
	"worker-stall", "worker-kill", "softirq-stall",
	"mm-stall", "mm-kill",
	"net-drop", "net-corrupt", "net-dup",
}

// String returns the site name.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", int(s))
}

// ForgedUserDataBase is the low end of the token range forged CQEs use.
// FM tokens count up from 1; keeping forgeries far above any reachable
// token means a forged completion can never collide with an in-flight
// request and "complete" it with attacker data — the forgery must be
// refused as unknown, which is the behaviour under test.
const ForgedUserDataBase = uint64(1) << 48

// RingRegion describes one shared ring the scribbler may attack.
type RingRegion struct {
	// Name labels the ring in diagnostics (e.g. "xsk0-rx", "uring5-compl").
	Name string
	// Base is the ring's base address (header at +0).
	Base mem.Addr
	// Size is the entry count (power of two).
	Size uint32
	// EntrySize is bytes per entry.
	EntrySize uint32
	// KernelSide is the index the kernel owns — the cell the enclave
	// reads through certification, and therefore the scribble target.
	// The enclave-owned cell is never scribbled: the kernel trusts it
	// raw, and a host corrupting its own input models nothing.
	KernelSide ring.Side
	// Flags marks rings whose flags word is kernel-written (the fill
	// ring's need-wakeup bit) and may be scribbled too.
	Flags bool
}

// Profile is one named fault mix. Probabilities are per hook
// consultation; zero (or absence) disables a site.
type Profile struct {
	// Name identifies the profile (rakis-chaos -profile).
	Name string
	// Prob holds the per-site fault probabilities.
	Prob map[Site]float64
	// ScribbleEvery is the scribbler period; zero disables the
	// scribbler goroutine.
	ScribbleEvery time.Duration
	// DelayMax bounds injected wakeup delays.
	DelayMax time.Duration
	// StallMax bounds injected worker/MM stalls.
	StallMax time.Duration
	// MMKillAfter kills the Monitor Module once, this long after
	// Start; zero keeps it alive.
	MMKillAfter time.Duration
	// DisableKernelScan turns off the io_uring worker's periodic
	// safety-net scan so lost wakeups actually stall (otherwise the
	// scan masks them within milliseconds).
	DisableKernelScan bool
	// TargetOneXSK restricts the scribbler to the rings of a single XSK:
	// the last-registered one, i.e. the highest queue. Queue 0 is never
	// the target because ARP and other unbound traffic ride it — killing
	// it would sever steering for every shard instead of exactly one.
	// Combined with ScribbleBeyondOwner this models a host that denies
	// service on one queue of a sharded runtime; the quarantine scenario
	// asserts the damage stays confined to that shard's flows.
	TargetOneXSK bool
	// ScribbleBeyondOwner lets the control-word scribbler forge index
	// values ahead of the owner's true position. Such values pass
	// certification — they are indistinguishable from genuine progress —
	// and permanently desync the ring: the consumer eats entries that
	// were never published and ends up ahead of the producer's truth,
	// which no trusted-side defence can repair. That is a pure
	// availability attack (Table 2 promises safety, not liveness), so
	// only termination-only profiles may enable it.
	ScribbleBeyondOwner bool
	// Adaptive arms the self-tuning runtime in this profile's worlds.
	// The property under test: a hostile host steering the tuner's
	// load-following inputs (scribbled rings, dropped wakeups) can waste
	// cycles but can never push an applied decision outside the safety
	// envelope or make the wakeup mode flap inside its dwell guard.
	Adaptive bool
	// RequireCompletion says whether the chaos suite must see every
	// workload complete successfully under this profile, or merely
	// terminate cleanly (no panic, no breach, no hang).
	RequireCompletion bool
	// ExpectCounters names vtime.Snapshot fields the suite asserts
	// nonzero across the profile's whole workload sweep.
	ExpectCounters []string
}

// Injector is the seeded fault source. A nil *Injector is a valid
// "chaos off" injector: every hook method is nil-receiver-safe and
// reports no fault, so the hooks cost one predictable branch when chaos
// is disabled.
type Injector struct {
	profile  Profile
	seed     uint64
	space    *mem.Space
	counters *vtime.Counters

	mu  sync.Mutex
	rng *rand.Rand

	// trace, when non-nil, records each injected fault. Fault hooks run
	// on host threads with no virtual clock in scope, so fault events
	// carry a zero stamp; the site is the payload.
	trace *telemetry.Buf

	counts [siteMax]atomic.Uint64

	start    time.Time
	mmKilled atomic.Bool

	regionMu sync.Mutex
	regions  []RingRegion

	stop chan struct{}
	done chan struct{}
}

// New builds an injector for the given profile and seed. space is the
// shared address space the scribbler attacks (host role only); counters
// receives FaultsInjected.
func New(p Profile, seed uint64, space *mem.Space, counters *vtime.Counters) *Injector {
	return &Injector{
		profile:  p,
		seed:     seed,
		space:    space,
		counters: counters,
		rng:      rand.New(rand.NewSource(int64(seed))),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Bind attaches the injector to an address space and counters sink after
// construction — the world that owns them is usually built later than
// the injector. Nil arguments leave the current binding in place.
func (in *Injector) Bind(space *mem.Space, counters *vtime.Counters) {
	if in == nil {
		return
	}
	if space != nil {
		in.space = space
	}
	if counters != nil {
		in.counters = counters
	}
}

// SetTrace routes fault events to the given trace buffer. Call before
// Start.
func (in *Injector) SetTrace(b *telemetry.Buf) {
	if in == nil {
		return
	}
	in.trace = b
}

// Seed returns the replay seed.
func (in *Injector) Seed() uint64 { return in.seed }

// ProfileName returns the active profile's name ("" when nil).
func (in *Injector) ProfileName() string {
	if in == nil {
		return ""
	}
	return in.profile.Name
}

// KernelScanDisabled reports whether the kernel worker's periodic
// safety-net scan should be suppressed for this run.
func (in *Injector) KernelScanDisabled() bool {
	return in != nil && in.profile.DisableKernelScan
}

// RegisterRing makes a shared ring available to the scribbler. The
// untrusted setup paths in hostos call this as they allocate rings.
func (in *Injector) RegisterRing(rg RingRegion) {
	if in == nil {
		return
	}
	in.regionMu.Lock()
	in.regions = append(in.regions, rg)
	in.regionMu.Unlock()
}

// Start records the run origin and launches the scribbler goroutine if
// the profile asks for one.
func (in *Injector) Start() {
	if in == nil {
		return
	}
	// Hook goroutines (the MM loop) may already be consulting MMKillNow:
	// the start stamp is mutex-published, and a zero stamp means "not
	// armed yet".
	in.mu.Lock()
	in.start = time.Now()
	in.mu.Unlock()
	if in.profile.ScribbleEvery > 0 {
		go in.scribbler()
	} else {
		close(in.done)
	}
}

// Stop terminates the scribbler and waits for it.
func (in *Injector) Stop() {
	if in == nil {
		return
	}
	select {
	case <-in.stop:
	default:
		close(in.stop)
	}
	<-in.done
}

// Counts returns the per-site injection counts.
func (in *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64, int(siteMax))
	if in == nil {
		return out
	}
	for s := Site(0); s < siteMax; s++ {
		if n := in.counts[s].Load(); n > 0 {
			out[s.String()] = n
		}
	}
	return out
}

// hit records one injected fault at site.
func (in *Injector) hit(s Site) {
	in.counts[s].Add(1)
	if in.counters != nil {
		in.counters.FaultsInjected.Add(1)
	}
	in.trace.Emit(telemetry.EvChaosFault, 0, uint64(s), 0)
}

// roll decides whether site fires this consultation.
func (in *Injector) roll(s Site) bool {
	if in == nil {
		return false
	}
	p := in.profile.Prob[s]
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	ok := in.rng.Float64() < p
	in.mu.Unlock()
	if ok {
		in.hit(s)
	}
	return ok
}

// randN returns a deterministic value in [0, n).
func (in *Injector) randN(n int64) int64 {
	in.mu.Lock()
	v := in.rng.Int63n(n)
	in.mu.Unlock()
	return v
}

// --- wakeup-syscall hooks (hostos) ---

// WakeDrop reports whether this wakeup syscall should be swallowed.
func (in *Injector) WakeDrop() bool { return in.roll(SiteWakeDrop) }

// WakeDelay returns how long to defer delivery of this wakeup (zero:
// deliver immediately).
func (in *Injector) WakeDelay() time.Duration {
	if !in.roll(SiteWakeDelay) || in.profile.DelayMax <= 0 {
		return 0
	}
	return time.Duration(in.randN(int64(in.profile.DelayMax)))
}

// WakeDup reports whether this wakeup should be delivered twice.
func (in *Injector) WakeDup() bool { return in.roll(SiteWakeDup) }

// --- completion hooks (hostos io_uring worker) ---

// CQEForge returns a completion for a request the enclave never made.
func (in *Injector) CQEForge() (userData uint64, res int32, ok bool) {
	if !in.roll(SiteCQEForge) {
		return 0, 0, false
	}
	return ForgedUserDataBase | uint64(in.randN(1<<20)), int32(in.randN(1 << 16)), true
}

// CQEDup reports whether the CQE just posted should be posted again.
func (in *Injector) CQEDup() bool { return in.roll(SiteCQEDup) }

// CQERes replaces a genuine completion's result with a hostile value
// drawn from the shared tm.ResultClasses table (the host returning
// arbitrary errno/short-count results, Table 2 "IO operations status
// codes").
func (in *Injector) CQERes(reqLen uint32) (int32, bool) {
	if !in.roll(SiteCQERes) {
		return 0, false
	}
	classes := tm.ResultClasses(reqLen)
	return classes[in.randN(int64(len(classes)))], true
}

// --- kernel worker hooks ---

// WorkerStall returns how long the io_uring worker should freeze (zero:
// keep running).
func (in *Injector) WorkerStall() time.Duration { return in.stall(SiteWorkerStall) }

// SoftirqStall returns how long a NIC softirq worker should freeze.
func (in *Injector) SoftirqStall() time.Duration { return in.stall(SiteSoftirqStall) }

// WorkerKill reports whether the io_uring worker should terminate.
func (in *Injector) WorkerKill() bool { return in.roll(SiteWorkerKill) }

func (in *Injector) stall(s Site) time.Duration {
	if !in.roll(s) || in.profile.StallMax <= 0 {
		return 0
	}
	return time.Duration(in.randN(int64(in.profile.StallMax)))
}

// --- Monitor Module hooks ---

// MMStall returns how long the MM loop should freeze this iteration.
func (in *Injector) MMStall() time.Duration { return in.stall(SiteMMStall) }

// MMKillNow reports, exactly once, that the MM should die (profile's
// MMKillAfter elapsed).
func (in *Injector) MMKillNow() bool {
	if in == nil || in.profile.MMKillAfter <= 0 {
		return false
	}
	in.mu.Lock()
	start := in.start
	in.mu.Unlock()
	if start.IsZero() || time.Since(start) < in.profile.MMKillAfter {
		return false
	}
	if !in.mmKilled.CompareAndSwap(false, true) {
		return false
	}
	in.hit(SiteMMKill)
	return true
}

// --- NIC hooks (netsim) ---

// NetDrop reports whether this frame should vanish on the wire.
func (in *Injector) NetDrop() bool { return in.roll(SiteNetDrop) }

// NetDup reports whether this frame should arrive twice.
func (in *Injector) NetDup() bool { return in.roll(SiteNetDup) }

// NetCorrupt flips one random bit of the frame in place, reporting
// whether it did.
func (in *Injector) NetCorrupt(frame []byte) bool {
	if len(frame) == 0 || !in.roll(SiteNetCorrupt) {
		return false
	}
	bit := in.randN(int64(len(frame)) * 8)
	frame[bit/8] ^= 1 << (bit % 8)
	return true
}

// --- the scribbler ---

// scribbler periodically corrupts registered shared rings: hostile
// control-word values from the shared adversary-class table, flags-word
// garbage, and descriptor bytes in unpublished slots. All writes go
// through host-role access checks — the scribbler is physically unable
// to reach trusted memory.
func (in *Injector) scribbler() {
	defer close(in.done)
	tick := time.NewTicker(in.profile.ScribbleEvery)
	defer tick.Stop()
	for {
		select {
		case <-in.stop:
			return
		case <-tick.C:
			in.scribbleOnce()
		}
	}
}

// scribbleOnce attacks one randomly chosen registered ring — or, with
// TargetOneXSK, one ring of the quarantine target's four.
func (in *Injector) scribbleOnce() {
	in.regionMu.Lock()
	cands := in.regions
	if in.profile.TargetOneXSK {
		cands = targetXSKRegions(in.regions)
	}
	n := len(cands)
	var rg RingRegion
	if n > 0 {
		rg = cands[in.randN(int64(n))]
	}
	in.regionMu.Unlock()
	if n == 0 {
		return
	}
	if in.roll(SiteRingCtrl) {
		in.scribbleCtrl(rg)
	}
	if rg.Flags && in.roll(SiteRingFlags) {
		in.scribbleFlags(rg)
	}
	if rg.KernelSide == ring.Producer && in.roll(SiteRingData) {
		in.scribbleData(rg)
	}
}

// targetXSKRegions selects the quarantine target's rings: the four
// regions sharing the name prefix ("xsk<fd>") of the last-registered
// XSK region. Setup registers XSKs in queue order, so this is the
// highest queue — never queue 0.
func targetXSKRegions(regions []RingRegion) []RingRegion {
	owner := ""
	for _, rg := range regions {
		if strings.HasPrefix(rg.Name, "xsk") {
			owner, _, _ = strings.Cut(rg.Name, "-")
		}
	}
	if owner == "" {
		return nil
	}
	var out []RingRegion
	for _, rg := range regions {
		if name, _, _ := strings.Cut(rg.Name, "-"); name == owner {
			out = append(out, rg)
		}
	}
	return out
}

// cells loads the raw producer and consumer words of a ring, host-role.
func (in *Injector) cells(rg RingRegion) (prod, cons *atomic.Uint32, ok bool) {
	p, err := in.space.Atomic32(mem.RoleHost, rg.Base)
	if err != nil {
		return nil, nil, false
	}
	c, err := in.space.Atomic32(mem.RoleHost, rg.Base+4)
	if err != nil {
		return nil, nil, false
	}
	return p, c, true
}

// scribbleCtrl overwrites the kernel-owned index cell with a hostile
// value. With ScribbleBeyondOwner the value comes from the full
// adversary table (the model checker's classes anchored at the
// enclave-owned index, a bit-flip, or a lap-old replay) — including
// forward forgeries that pass certification and desync the ring for
// good. Without it, the value is always at or behind the cell's current
// content, which the owner only ever moves forward, so every scribble is
// recoverable: in-window stale values heal on the owner's next publish
// or republish, and beyond-a-lap regressions are certification-refused,
// exercising the quarantine-and-resync path.
func (in *Injector) scribbleCtrl(rg RingRegion) {
	prod, cons, ok := in.cells(rg)
	if !ok {
		return
	}
	target, anchor := prod, cons
	if rg.KernelSide == ring.Consumer {
		target, anchor = cons, prod
	}
	cur := target.Load()
	var v uint32
	if in.profile.ScribbleBeyondOwner {
		classes := tm.AdversaryClasses(anchor.Load(), rg.Size)
		pick := in.randN(int64(len(classes)) + 2)
		switch {
		case pick < int64(len(classes)):
			v = classes[pick]
		case pick == int64(len(classes)):
			v = cur ^ 1<<uint(in.randN(32)) // bit-flip
		default:
			v = cur - (rg.Size + 1) // stale replay from more than a lap back
		}
	} else {
		// Regressions only, measured from the cell itself rather than the
		// anchor: the anchor cell moves concurrently, and a value computed
		// from a stale anchor read can land ahead of the owner — the
		// unrecoverable case this mode must exclude.
		back := [...]uint32{
			1,                                    // minimal stale step
			uint32(in.randN(int64(rg.Size))) + 1, // stale, within the window
			rg.Size + 1,                          // one past a lap: must be refused
			2*rg.Size + 1,                        // deep regression
			1 << 31,                              // half-space away
		}
		v = cur - back[in.randN(int64(len(back)))]
	}
	target.Store(v)
}

// scribbleFlags overwrites the flags word with garbage bit patterns.
func (in *Injector) scribbleFlags(rg RingRegion) {
	cell, err := in.space.Atomic32(mem.RoleHost, rg.Base+8)
	if err != nil {
		return
	}
	patterns := []uint32{0, ring.FlagNeedWakeup, ^uint32(0), 0xA5A5A5A5}
	cell.Store(patterns[in.randN(int64(len(patterns)))])
}

// scribbleData corrupts an unpublished descriptor slot of a
// kernel-produced ring: slots in (prod, cons+size) have been retired by
// the enclave consumer and not yet rewritten by the kernel producer, so
// the enclave must never read them — and the kernel rewrites a slot in
// full before publishing it. Slot prod itself is skipped because the
// kernel may be writing it concurrently (kernel producers in this
// simulation publish one slot at a time).
func (in *Injector) scribbleData(rg RingRegion) {
	prodCell, consCell, ok := in.cells(rg)
	if !ok {
		return
	}
	p, c := prodCell.Load(), consCell.Load()
	diff := p - c
	if diff > rg.Size { // mid-scribble nonsense state: nothing safe
		return
	}
	free := rg.Size - diff
	if free < 2 {
		return
	}
	k := uint32(in.randN(int64(free-1))) + 1 // [1, free): skip slot prod
	idx := (p + k) & (rg.Size - 1)
	addr := rg.Base + ring.HeaderBytes + mem.Addr(uint64(idx)*uint64(rg.EntrySize))
	b, err := in.space.Bytes(mem.RoleHost, addr, uint64(rg.EntrySize))
	if err != nil {
		return
	}
	for i := range b {
		b[i] = byte(in.randN(256))
	}
}
