package chaos

import "time"

// Built-in fault profiles. Two regimes:
//
// Completion profiles (RequireCompletion) inject only faults the trusted
// side provably recovers from — refused ring values heal via the
// quarantine/resync and republish paths, lost wakeups via the nudge/kick
// ladder, forged and duplicated CQEs are refused while the genuine
// completion still arrives, MM death degrades to paid exits. Workloads
// must finish correctly.
//
// The hostile profile additionally enables availability and semantic
// attacks (result corruption, worker kills, packet loss, and
// forward-forged ring indices that desync a ring permanently): there the
// host is allowed to deny service, so the suite only requires that every
// run terminates cleanly — no panic, no hang past its deadline, and no
// trusted-memory access by host-role code (Table 2: refuse, don't
// crash, don't trust).

// Profiles returns the built-in profile set keyed by name.
func Profiles() map[string]Profile {
	m := make(map[string]Profile)
	for _, p := range ProfileList() {
		m[p.Name] = p
	}
	return m
}

// ProfileList returns the built-in profiles in matrix order.
func ProfileList() []Profile {
	return []Profile{
		{
			Name:              "off",
			RequireCompletion: true,
		},
		{
			Name: "smoke",
			Prob: map[Site]float64{
				SiteRingCtrl:  0.6,
				SiteRingFlags: 0.3,
				SiteRingData:  0.3,
				SiteWakeDrop:  0.25,
				SiteWakeDelay: 0.2,
				SiteWakeDup:   0.2,
				SiteCQEForge:  0.1,
				SiteCQEDup:    0.1,
			},
			ScribbleEvery:     200 * time.Microsecond,
			DelayMax:          time.Millisecond,
			DisableKernelScan: true,
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected", "RingViolations"},
		},
		{
			Name: "ring",
			Prob: map[Site]float64{
				SiteRingCtrl:  0.8,
				SiteRingFlags: 0.4,
				SiteRingData:  0.4,
			},
			ScribbleEvery:     50 * time.Microsecond,
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected", "RingViolations", "RingResyncs"},
		},
		{
			Name: "wakeups",
			Prob: map[Site]float64{
				SiteWakeDrop:  0.5,
				SiteWakeDelay: 0.3,
				SiteWakeDup:   0.3,
				SiteMMStall:   0.05,
			},
			DelayMax:          2 * time.Millisecond,
			StallMax:          2 * time.Millisecond,
			DisableKernelScan: true,
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected", "WakeupRetries"},
		},
		{
			Name: "cqe",
			Prob: map[Site]float64{
				SiteCQEForge: 0.4,
				SiteCQEDup:   0.4,
			},
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected", "CQEViolations"},
		},
		{
			Name:              "mmdeath",
			MMKillAfter:       2 * time.Millisecond,
			DisableKernelScan: true,
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected", "FallbackExits"},
		},
		{
			Name: "net",
			Prob: map[Site]float64{
				SiteNetDrop:    0.02,
				SiteNetCorrupt: 0.02,
				SiteNetDup:     0.05,
			},
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected"},
		},
		{
			// faketel: the host attacks the self-tuning runtime's inputs.
			// It cannot write the telemetry registry (trusted memory, and
			// the tunerinput analyzer keeps untrusted reads out of the
			// tuner), so the best it can do is steer what the trusted side
			// observes: scribbled ring words distort certified depth reads,
			// dropped and delayed wakeups distort the load the pumps see.
			// The suite asserts the tuner still never leaves its safety
			// envelope and never flaps inside its dwell guard.
			Name: "faketel",
			Prob: map[Site]float64{
				SiteRingCtrl:  0.8,
				SiteRingFlags: 0.6,
				SiteRingData:  0.4,
				SiteWakeDrop:  0.3,
				SiteWakeDelay: 0.2,
			},
			ScribbleEvery:     100 * time.Microsecond,
			DelayMax:          time.Millisecond,
			Adaptive:          true,
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected", "RingViolations"},
		},
		{
			// shardq: the host denies service on exactly one XSK queue of
			// a sharded runtime — beyond-owner forgeries permanently
			// desync the target's rings while every other queue stays
			// clean. Pure availability attack on one shard; the
			// quarantine scenario asserts flows on healthy shards still
			// complete and refusals stay confined to the target.
			Name: "shardq",
			Prob: map[Site]float64{
				SiteRingCtrl:  0.9,
				SiteRingFlags: 0.4,
				SiteRingData:  0.4,
			},
			ScribbleEvery:       50 * time.Microsecond,
			TargetOneXSK:        true,
			ScribbleBeyondOwner: true,
			DisableKernelScan:   true,
			RequireCompletion:   false,
			ExpectCounters:      []string{"FaultsInjected"},
		},
		{
			// synflood: the wire regime of the SYN-flood scenario
			// (harness.RunSynFlood drives the flood itself — 10^5
			// spoofed handshakes/s against the in-enclave TCP listener).
			// Light loss and duplication keep the RTO and cookie paths
			// honest without corruption, so the scenario's cookie and
			// refusal accounting stays exact. Completion-safe: healthy
			// established flows must deliver in full.
			Name: "synflood",
			Prob: map[Site]float64{
				SiteNetDrop: 0.01,
				SiteNetDup:  0.02,
			},
			RequireCompletion: true,
			ExpectCounters:    []string{"FaultsInjected"},
		},
		{
			Name: "hostile",
			Prob: map[Site]float64{
				SiteRingCtrl:     0.8,
				SiteRingFlags:    0.5,
				SiteRingData:     0.5,
				SiteWakeDrop:     0.5,
				SiteWakeDelay:    0.3,
				SiteWakeDup:      0.3,
				SiteCQEForge:     0.3,
				SiteCQEDup:       0.3,
				SiteCQERes:       0.2,
				SiteWorkerStall:  0.05,
				SiteWorkerKill:   0.002,
				SiteSoftirqStall: 0.02,
				SiteMMStall:      0.1,
				SiteNetDrop:      0.05,
				SiteNetCorrupt:   0.05,
				SiteNetDup:       0.05,
			},
			ScribbleEvery:       100 * time.Microsecond,
			DelayMax:            2 * time.Millisecond,
			StallMax:            5 * time.Millisecond,
			MMKillAfter:         50 * time.Millisecond,
			DisableKernelScan:   true,
			ScribbleBeyondOwner: true,
			RequireCompletion:   false,
			ExpectCounters:      []string{"FaultsInjected"},
		},
	}
}
