// Package harness runs the chaos matrix: every workload of the paper's
// evaluation (§6) against a RAKIS world whose host side is armed with a
// fault-injection profile. It is shared by the go-test chaos suite and
// the cmd/rakis-chaos driver.
//
// One cell = one profile × one workload × one seed. The harness builds a
// fresh Rakis-SGX world per cell, arms the injector, runs the workload
// with small fixed parameters, and reports: the workload outcome, any
// panic, the counter deltas, the injector's per-site fault counts, and
// the trusted-memory tripwire (host-role accesses that the access check
// let through — always zero, or the simulation's trust boundary is
// broken).
package harness

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"rakis"
	"rakis/internal/chaos"
	"rakis/internal/experiments"
	"rakis/internal/netstack"
	"rakis/internal/telemetry"
	"rakis/internal/tuner"
	"rakis/internal/vtime"
	"rakis/internal/workloads"
)

// Workloads lists the matrix workloads in run order.
func Workloads() []string {
	return []string{"helloworld", "iperf", "memcached", "curl", "redis", "fstime", "mcrypt"}
}

// Excluded reports whether a workload must be skipped under a profile,
// with the reason. The only exclusion: curl's established-stream client
// blocks forever on a lost data packet (its QUIC-style reliability layer
// is out of scope, §6.1 runs it on a lossless wire), so profiles that
// drop or corrupt frames on the wire cannot run it to completion.
func Excluded(p chaos.Profile, workload string) (bool, string) {
	if workload == "curl" && (p.Prob[chaos.SiteNetDrop] > 0 || p.Prob[chaos.SiteNetCorrupt] > 0) {
		return true, "curl assumes a lossless wire in its established stream"
	}
	// The matrix runs single-queue worlds, where a one-XSK quarantine is
	// total UDP denial; memcached's multi-thread teardown then waits out
	// its full idle window — minutes of wall clock for no coverage iperf
	// doesn't already provide. The sharded quarantine scenario covers
	// memcached-style traffic on multi-queue worlds instead.
	if workload == "memcached" && p.TargetOneXSK && p.ScribbleBeyondOwner {
		return true, "one-XSK quarantine on a single-queue world denies all UDP; teardown waits out the idle window"
	}
	return false, ""
}

// Result is one cell's outcome.
type Result struct {
	Profile  string
	Workload string
	Seed     uint64

	// Err is the workload outcome (nil: completed correctly).
	Err error
	// PanicVal is a recovered panic (always a failure).
	PanicVal any
	// Counters is the world's counter state at teardown.
	Counters vtime.Snapshot
	// Injected is the injector's per-site fault count.
	Injected map[string]uint64
	// Granted is the trusted-memory tripwire: host-role accesses to the
	// trusted segment that were allowed through. Must be zero.
	Granted uint64
	// Adaptive records whether the cell ran with the self-tuning runtime
	// armed (Profile.Adaptive).
	Adaptive bool
	// Tuner is the control loop's own accounting for adaptive cells: the
	// suite asserts EnvelopeViolations stayed zero and the mode never
	// flapped inside the dwell guard, whatever the injector did.
	Tuner tuner.Stats
	// TunerGuard is the dwell guard the cell's tuner ran with, for the
	// flap check.
	TunerGuard uint64
	// TraceTail is the final trace window of a failed cell — the last
	// events before the panic or error, in virtual-time order — so a
	// failure report carries the reproducing seed AND what the run was
	// doing when it died. Empty for passing cells.
	TraceTail []string
}

// Failed reports whether the cell violated its profile's requirements.
func (r Result) Failed(requireCompletion bool) bool {
	if r.PanicVal != nil || r.Granted != 0 {
		return true
	}
	if r.Adaptive {
		if r.Tuner.EnvelopeViolations != 0 {
			return true
		}
		if r.Tuner.ModeSwitches > 1 && r.Tuner.MinSwitchGap < r.TunerGuard {
			return true
		}
	}
	return requireCompletion && r.Err != nil
}

// String renders one result line.
func (r Result) String() string {
	status := "ok"
	switch {
	case r.PanicVal != nil:
		status = fmt.Sprintf("PANIC: %v", r.PanicVal)
	case r.Granted != 0:
		status = fmt.Sprintf("BREACH: %d trusted accesses granted to host role", r.Granted)
	case r.Adaptive && r.Tuner.EnvelopeViolations != 0:
		status = fmt.Sprintf("STEERED: %d tuner decisions left the safety envelope", r.Tuner.EnvelopeViolations)
	case r.Adaptive && r.Tuner.ModeSwitches > 1 && r.Tuner.MinSwitchGap < r.TunerGuard:
		status = fmt.Sprintf("FLAP: mode switches %d steps apart, dwell guard %d", r.Tuner.MinSwitchGap, r.TunerGuard)
	case r.Err != nil:
		status = fmt.Sprintf("error: %v", r.Err)
	}
	return fmt.Sprintf("%-8s %-10s seed=%-#x faults=%d %s",
		r.Profile, r.Workload, r.Seed, r.Counters.FaultsInjected, status)
}

// TraceTailEvents is how many final trace events a failed cell keeps.
const TraceTailEvents = 40

// RunCell executes one matrix cell. Every cell runs with the tracer
// armed: if the cell fails, the result carries the final trace window
// next to the reproducing seed.
func RunCell(p chaos.Profile, workload string, seed uint64) (res Result) {
	res = Result{Profile: p.Name, Workload: workload, Seed: seed}
	inj := chaos.New(p, seed, nil, nil)
	sink := telemetry.NewSink()
	sink.Trace.Enable()
	tail := func() {
		if res.PanicVal != nil || res.Granted != 0 || res.Err != nil {
			for _, e := range sink.Trace.Tail(TraceTailEvents) {
				res.TraceTail = append(res.TraceTail, e.String())
			}
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res.PanicVal = r
			tail()
		}
	}()
	w, err := experiments.NewWorld(experiments.Options{
		Env:       experiments.RakisSGX,
		Chaos:     inj,
		Telemetry: sink,
		Adaptive:  p.Adaptive,
	})
	if err != nil {
		res.Err = fmt.Errorf("world boot: %w", err)
		tail()
		return res
	}
	res.Adaptive = p.Adaptive
	res.Err = func() error {
		defer func() {
			// Tuner accounting is read before teardown stops the loop.
			res.Tuner = w.Rakis().TunerStats()
			res.TunerGuard = uint64(tuner.DefaultParams().Guard)
			w.Close()
		}()
		return RunWorkload(w, workload)
	}()
	res.Counters = w.Counters.Snapshot()
	res.Injected = inj.Counts()
	res.Granted = w.Space.HostTrustedGranted()
	tail()
	return res
}

// QuarantineResult is the sharded-quarantine scenario's outcome: a
// four-shard world whose host denies service on exactly one XSK queue
// (the shardq profile scribbles only the last-registered XSK's rings)
// while pinned flows load every shard.
type QuarantineResult struct {
	// Shards is the world's shard count; Target is the quarantined shard
	// (always the highest — queue 0 carries ARP and is never targeted).
	Shards, Target int
	// FlowEchoed[i] is flow i's completed round trips; FlowShard[i] is
	// the shard it was pinned to.
	FlowEchoed []int
	FlowShard  []int
	// PerFlow is the round trips a completed flow must show.
	PerFlow int
	// Stats is the runtime's per-shard counter rollup at teardown — the
	// per-shard refusal counters the suite asserts confinement on.
	Stats []rakis.ShardStat
	// Granted is the trusted-memory tripwire (must be zero).
	Granted uint64
	// Injected is the injector's per-site fault count.
	Injected map[string]uint64
}

// RunShardQuarantine runs the sharded-quarantine scenario: boot a
// four-shard RAKIS-SGX world, arm the shardq profile, pin two flows to
// every shard with best-effort completion, and report per-flow outcomes
// next to the per-shard refusal counters. The suite asserts the blast
// radius: flows on healthy shards complete in full (node liveness),
// refusals stay confined to the target shard, and the trust boundary
// holds throughout.
func RunShardQuarantine(seed uint64) (QuarantineResult, error) {
	const (
		shards  = 4
		flows   = 8
		perFlow = 24
	)
	res := QuarantineResult{Shards: shards, Target: shards - 1, PerFlow: perFlow}
	p := chaos.Profiles()["shardq"]
	inj := chaos.New(p, seed, nil, nil)
	sink := telemetry.NewSink()
	w, err := experiments.NewWorld(experiments.Options{
		Env:          experiments.RakisSGX,
		NumXSKs:      shards,
		ServerQueues: shards,
		Chaos:        inj,
		Telemetry:    sink,
	})
	if err != nil {
		return res, fmt.Errorf("world boot: %w", err)
	}
	echo, err := workloads.ShardedEcho(w.WorkloadEnv(), workloads.ShardedEchoParams{
		Flows: flows, PerFlow: perFlow, PacketSize: 128,
		Shards: shards, ServerThreads: shards,
		BestEffort: true,
	})
	res.Stats = w.Rakis().ShardStats()
	res.Granted = w.Space.HostTrustedGranted()
	res.Injected = inj.Counts()
	w.Close()
	if err != nil {
		return res, err
	}
	for _, f := range echo.Flows {
		res.FlowEchoed = append(res.FlowEchoed, f.Echoed)
		res.FlowShard = append(res.FlowShard, f.Shard)
	}
	return res, nil
}

// SynFloodResult is the SYN-flood scenario's outcome: a world running
// the in-enclave XSK TCP environment whose wire carries 10^5 spoofed
// handshakes per second at a listener, on top of the synflood profile's
// light loss and duplication, while healthy Redis-style flows and
// connection churn share the stack.
type SynFloodResult struct {
	// FloodSYNs is the spoofed SYN count injected; FloodRate the
	// achieved injection rate in SYNs per second of real time.
	FloodSYNs int
	FloodRate float64
	// Cookie and refusal accounting over the whole run (deltas from
	// post-boot). CookiesSent is the stateless answer bill — it tracks
	// the flood. CookiesAccepted tracks only genuine handshakes.
	CookiesSent, CookiesAccepted, Refused uint64
	// ConnsAfter and ListenersAfter are the connection-table sizes at
	// the end — the bounded-memory claim: a stateless listen path holds
	// no per-SYN state, so the table never scales with the flood.
	ConnsAfter, ListenersAfter int
	// HealthyOps is the op count the concurrent Redis run completed
	// (HealthyWant is the target: the gate requires 100% delivery);
	// HealthyErr its outcome.
	HealthyOps, HealthyWant int
	HealthyErr              error
	// ChurnRounds is how many connect-use-close churn rounds completed;
	// ChurnErr the first churn failure, if any.
	ChurnRounds int
	ChurnErr    error
	// Granted is the trusted-memory tripwire (must be zero).
	Granted uint64
	// Injected is the injector's per-site fault count.
	Injected map[string]uint64
}

// RunSynFlood runs the SYN-flood scenario: boot the in-enclave XSK TCP
// world with the synflood profile armed, open a sacrificial enclave
// listener, and spray it with spoofed-source SYNs from the load
// generator's NIC at well over 10^5 handshakes per second — while a
// Redis-style workload serves healthy flows and a churn loop opens and
// closes connections through the same sharded stack. The suite asserts
// the statelessness bargain: the flood moves only the cookie-sent
// counter, never the connection table; healthy flows keep 100% delivery;
// refusals stay confined to stray teardown segments.
func RunSynFlood(seed uint64) (SynFloodResult, error) {
	const (
		floodSYNs  = 25000
		floodBurst = 500
		floodPort  = 7777
		healthyOps = 120
		churnGoal  = 3
	)
	res := SynFloodResult{FloodSYNs: floodSYNs, HealthyWant: healthyOps}
	p := chaos.Profiles()["synflood"]
	inj := chaos.New(p, seed, nil, nil)
	sink := telemetry.NewSink()
	w, err := experiments.NewWorld(experiments.Options{
		Env:       experiments.RakisSGXXskTCP,
		NumXSKs:   2,
		Chaos:     inj,
		Telemetry: sink,
	})
	if err != nil {
		return res, fmt.Errorf("world boot: %w", err)
	}
	defer w.Close()
	stack := w.Rakis().Stack
	stats0 := stack.TCPStats()

	// The sacrificial listener the flood aims at. Nothing ever accepts
	// from it during the flood — with stateless cookies that is free;
	// with a stateful listen path it would be a memory bomb.
	floodL, err := stack.TCPListen(floodPort, 8)
	if err != nil {
		return res, fmt.Errorf("flood listener: %w", err)
	}

	env := w.WorkloadEnv()
	var wg sync.WaitGroup

	// Healthy flows: a Redis-style TCP echo that must deliver in full.
	var healthy workloads.RedisResult
	wg.Add(1)
	go func() {
		defer wg.Done()
		healthy, res.HealthyErr = workloads.Redis(env, workloads.RedisParams{
			Command: "SET", Ops: healthyOps, Connections: 4, UseEpoll: true,
		})
	}()

	// Connection churn: repeated short-lived Redis rounds on their own
	// port — every round opens, uses, and closes fresh connections
	// through the flooded stack.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < churnGoal; r++ {
			if _, err := workloads.Redis(env, workloads.RedisParams{
				Command: "SET", Ops: 24, Connections: 2, Port: 6380,
			}); err != nil {
				res.ChurnErr = fmt.Errorf("churn round %d: %w", r, err)
				return
			}
			res.ChurnRounds++
		}
	}()

	// The flood: spoofed sources across 10.1.0.0/16, spread over the RSS
	// shards by their own 4-tuples, fired from the load generator's NIC
	// in bursts. Frames are prebuilt so the timed loop measures offered
	// load at the XSK path, not the generator's marshalling speed.
	cli := w.ClientDev()
	dstMAC := [6]byte{2, 0, 0, 0, 0, 2}
	srcMAC := cli.MAC()
	frames := make([][]byte, floodSYNs)
	for i := range frames {
		src := netstack.IP4{10, 1, byte(i >> 8), byte(i)}
		seg := netstack.MarshalTCP(src, experiments.RakisIP,
			uint16(20000+i%30000), floodPort, uint32(i)*2654435761, 0,
			netstack.TCPFlagSYN, 65535, nil)
		pkt := netstack.MarshalIPv4(netstack.IPv4Header{
			TTL: 64, Proto: netstack.ProtoTCP, Src: src, Dst: experiments.RakisIP,
		}, seg)
		frames[i] = netstack.MarshalEth(netstack.EthHeader{
			Dst: dstMAC, Src: srcMAC, Type: netstack.EtherTypeIPv4,
		}, pkt)
	}
	// Pacing is closed-loop, not a fixed sleep: after each burst, wait
	// until the stack has answered most of it before offering the next,
	// so the flood runs at the stack's genuine stateless answer rate
	// instead of open-loop tail-dropping at the RX ring. The wait is on
	// per-burst *progress* with a bounded deadline — injected loss and
	// ring overflow eat absolute counts, so an absolute outstanding
	// window would never drain.
	const floodBurstWait = 50 * time.Millisecond
	start := time.Now()
	last := stats0.CookiesSent
	for i := 0; i < floodSYNs; i++ {
		cli.Transmit(frames[i], 0)
		if (i+1)%floodBurst == 0 {
			deadline := time.Now().Add(floodBurstWait)
			for stack.TCPStats().CookiesSent-last < floodBurst*9/10 &&
				time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
			last = stack.TCPStats().CookiesSent
		}
	}
	res.FloodRate = float64(floodSYNs) / time.Since(start).Seconds()

	wg.Wait()
	res.HealthyOps = healthy.Ops

	// Let in-flight teardowns settle before reading the table: healthy
	// connections close asynchronously after the workloads return.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := stack.TCPStats(); st.Conns == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	floodL.Close(nil)

	stats1 := stack.TCPStats()
	res.CookiesSent = stats1.CookiesSent - stats0.CookiesSent
	res.CookiesAccepted = stats1.CookiesAccepted - stats0.CookiesAccepted
	res.Refused = stats1.Refused - stats0.Refused
	res.ConnsAfter = stats1.Conns
	res.ListenersAfter = stats1.Listeners
	res.Granted = w.Space.HostTrustedGranted()
	res.Injected = inj.Counts()
	return res, nil
}

// CellSeed derives a cell's default seed deterministically from the base
// seed and the cell's coordinates, so every cell sees a distinct but
// replayable fault stream.
func CellSeed(base uint64, profile, workload string) uint64 {
	h := base ^ 0xcbf29ce484222325
	for _, s := range []string{profile, "\x00", workload} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	return h
}

// CounterValue looks up a Snapshot field named in a profile's
// ExpectCounters list.
func CounterValue(s vtime.Snapshot, name string) (uint64, bool) {
	f := reflect.ValueOf(s).FieldByName(name)
	if !f.IsValid() {
		return 0, false
	}
	return f.Uint(), true
}

// RunWorkload runs one named workload with small fixed parameters: large
// enough to exercise every data path (XSK RX/TX, io_uring file and TCP,
// poll and epoll), small enough that a full matrix stays test-sized.
// Shared with cmd/rakis-trace, which drives the same cells under any
// environment with telemetry armed.
func RunWorkload(w *experiments.World, name string) error {
	env := w.WorkloadEnv()
	switch name {
	case "helloworld":
		return workloads.HelloWorld(env)
	case "iperf":
		res, err := workloads.IperfUDP(env, workloads.IperfParams{PacketSize: 1024, Count: 300})
		if err != nil {
			return err
		}
		if res.Received < 2 {
			return fmt.Errorf("iperf: only %d datagrams survived", res.Received)
		}
		return nil
	case "memcached":
		_, err := workloads.Memcached(env, workloads.MemcachedParams{
			ServerThreads: 2, ClientThreads: 2, Connections: 4,
			Ops: 120, ValueBytes: 256,
		})
		return err
	case "curl":
		data := workloads.PrepareMcryptInput(64 << 10)
		res, err := workloads.Curl(env, workloads.CurlParams{Path: "/f"},
			func(string) ([]byte, error) { return data, nil })
		if err != nil {
			return err
		}
		if res.Bytes != uint64(len(data)) {
			return fmt.Errorf("curl: downloaded %d of %d bytes", res.Bytes, len(data))
		}
		return nil
	case "redis":
		_, err := workloads.Redis(env, workloads.RedisParams{
			Command: "SET", Ops: 100, Connections: 4, UseEpoll: true,
		})
		return err
	case "fstime":
		_, err := workloads.Fstime(env, workloads.FstimeParams{
			BlockSize: 4096, TotalBytes: 256 << 10,
		})
		return err
	case "mcrypt":
		w.VFS().WriteFile("/data/mcrypt.in", workloads.PrepareMcryptInput(128<<10))
		_, err := workloads.Mcrypt(env, workloads.McryptParams{BlockSize: 16384})
		return err
	}
	return fmt.Errorf("harness: unknown workload %q", name)
}
