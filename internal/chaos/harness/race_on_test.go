//go:build race

package harness_test

// raceDetectorEnabled reports whether this binary was built with -race.
// See race_off_test.go; the -race pass still runs the wakeup, CQE, and
// MM-death profiles, whose faults flow through atomic cells and syscall
// hooks only — those runs are load-bearing for the recovery ladders'
// happens-before edges.
const raceDetectorEnabled = true
