package harness_test

import (
	"testing"

	"rakis/internal/chaos/harness"
)

// TestShardQuarantine asserts the blast radius of a one-queue denial on
// a sharded runtime: the shardq profile permanently desyncs the last
// XSK's rings, and the suite requires that (a) every flow pinned to a
// healthy shard completes in full — the node stays live, (b) the
// per-shard refusal counters show defence activity on the target shard
// and nowhere else, and (c) the trusted-memory tripwire stays zero.
// The scribbler is an intentional data race, so like the scribbling
// matrix profiles this scenario only runs uninstrumented.
func TestShardQuarantine(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("shardq scribbles shared memory by design; covered by the uninstrumented pass")
	}
	seed := baseSeed(t)
	res, err := harness.RunShardQuarantine(seed)
	if err != nil {
		t.Fatalf("scenario error (replay with RAKIS_CHAOS_SEED=%#x): %v", seed, err)
	}
	if res.Granted != 0 {
		t.Errorf("host role breached trusted memory %d times", res.Granted)
	}
	t.Logf("per-flow echoes: %v (shards %v), target shard %d", res.FlowEchoed, res.FlowShard, res.Target)
	for i, sh := range res.FlowShard {
		if sh == res.Target {
			continue // the quarantined shard's flows may die; that is the point
		}
		if res.FlowEchoed[i] != res.PerFlow {
			t.Errorf("flow %d on healthy shard %d: %d/%d echoes (seed %#x)",
				i, sh, res.FlowEchoed[i], res.PerFlow, seed)
		}
	}
	if len(res.Stats) != res.Shards {
		t.Fatalf("ShardStats has %d entries, want %d", len(res.Stats), res.Shards)
	}
	for _, s := range res.Stats {
		t.Logf("shard %d: rx=%d tx=%d wakeups=%d suppressed=%d refusals=%d",
			s.Shard, s.RxPkts, s.TxPkts, s.Wakeups, s.Suppressed, s.Refusals)
		if s.Shard == res.Target {
			if s.Refusals == 0 {
				t.Errorf("target shard %d: no ring refusals despite 0.9-prob ctrl scribbles (seed %#x)",
					s.Shard, seed)
			}
			continue
		}
		if s.Refusals != 0 {
			t.Errorf("healthy shard %d: %d refusals — quarantine leaked across shards (seed %#x)",
				s.Shard, s.Refusals, seed)
		}
	}
}
