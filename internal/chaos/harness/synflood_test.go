package harness_test

import (
	"testing"

	"rakis/internal/chaos/harness"
)

// TestSynFlood is the SYN-flood gate for the in-enclave TCP listen path.
// The scenario sprays spoofed SYNs at 10^5+ handshakes/s while healthy
// Redis flows and connection churn share the sharded stack; the gate
// asserts the statelessness bargain end to end:
//
//   - Bounded enclave memory: the flood moves the cookies-sent counter,
//     never the connection table — no per-SYN state exists until a
//     cookie round-trips.
//   - Healthy flows keep 100% delivery and churn completes.
//   - Refusal counters stay confined to stray teardown segments — they
//     do not scale with the flood.
//   - The trust boundary holds (zero host-role trusted accesses).
//
// The suite runs under -race: the synflood profile carries no
// shared-memory scribbler, so every fault flows through race-clean
// sites.
func TestSynFlood(t *testing.T) {
	res, err := harness.RunSynFlood(baseSeed(t))
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	t.Logf("flood: %d SYNs at %.0f/s; cookies sent=%d accepted=%d refused=%d; conns after=%d; healthy %d/%d ops; churn %d rounds",
		res.FloodSYNs, res.FloodRate, res.CookiesSent, res.CookiesAccepted,
		res.Refused, res.ConnsAfter, res.HealthyOps, res.HealthyWant, res.ChurnRounds)

	// The 10^5/s load spec is proven by the uninstrumented pass; under
	// the race detector the whole simulated machine runs several times
	// slower (and the -race CI pass runs packages in parallel), so the
	// instrumented pass validates the invariants at a floor that only
	// catches a stalled flood (same precedent as raceWorkloads).
	rateFloor := 1e5
	if raceDetectorEnabled {
		rateFloor = 2e3
	}
	if res.FloodRate < rateFloor {
		t.Errorf("flood rate %.0f SYNs/s below the %.0f/s load floor", res.FloodRate, rateFloor)
	}
	// Statelessness: the overwhelming majority of delivered SYNs were
	// answered from stack memory alone (NIC-queue overflow may drop some
	// of the offered load; none may mint state).
	if res.CookiesSent < uint64(res.FloodSYNs)/4 {
		t.Errorf("cookies sent = %d for %d SYNs offered: the flood never reached the cookie path",
			res.CookiesSent, res.FloodSYNs)
	}
	if res.ConnsAfter > 16 {
		t.Errorf("connection table holds %d conns after the flood: per-SYN state leaked", res.ConnsAfter)
	}
	// Cookie acceptances belong to genuine handshakes (healthy + churn +
	// shutdown connections), bounded far below the flood.
	if res.CookiesAccepted < 6 || res.CookiesAccepted > 128 {
		t.Errorf("cookies accepted = %d, want the healthy-flow handful (6..128)", res.CookiesAccepted)
	}
	// Refusals stay confined: stray segments after teardown, never a
	// flood-proportional bill.
	if res.Refused > uint64(res.FloodSYNs)/50 {
		t.Errorf("refused = %d scales with the %d-SYN flood", res.Refused, res.FloodSYNs)
	}
	if res.HealthyErr != nil {
		t.Errorf("healthy flows failed under flood: %v", res.HealthyErr)
	}
	if res.HealthyOps != res.HealthyWant {
		t.Errorf("healthy flows delivered %d of %d ops", res.HealthyOps, res.HealthyWant)
	}
	if res.ChurnErr != nil {
		t.Errorf("connection churn failed under flood: %v", res.ChurnErr)
	}
	if res.Granted != 0 {
		t.Errorf("host role breached trusted memory %d times", res.Granted)
	}
}
