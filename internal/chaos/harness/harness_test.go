package harness_test

import (
	"os"
	"strconv"
	"testing"

	"rakis/internal/chaos"
	"rakis/internal/chaos/harness"
)

// baseSeed is the matrix's default seed. Override with RAKIS_CHAOS_SEED
// to replay a failure whose seed the suite printed.
func baseSeed(t *testing.T) uint64 {
	if s := os.Getenv("RAKIS_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			t.Fatalf("RAKIS_CHAOS_SEED: %v", err)
		}
		return v
	}
	return 0x7261_6b69_73 // deterministic default
}

// scribbles reports whether the profile runs the shared-memory scribbler
// (an intentional data race — skipped under -race, see race_on_test.go).
func scribbles(p chaos.Profile) bool { return p.ScribbleEvery > 0 }

// raceWorkloads is the reduced per-profile workload set for the -race
// pass: one XSK-path, one io_uring-path, and the baseline. The race
// detector's ~10x slowdown makes the full matrix disproportionate; the
// uninstrumented pass covers it.
var raceWorkloads = map[string]bool{"helloworld": true, "iperf": true, "fstime": true}

// TestChaosMatrix runs every workload under every fault profile and
// asserts the three suite invariants per cell — no panic, no
// trusted-memory breach, completion where the profile requires it — plus
// each profile's expected-counter set on the aggregate across its sweep.
func TestChaosMatrix(t *testing.T) {
	seed := baseSeed(t)
	for _, p := range chaos.ProfileList() {
		p := p
		if raceDetectorEnabled && scribbles(p) {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			var agg map[string]uint64
			var tunerSteps uint64
			ran := 0
			for _, wl := range harness.Workloads() {
				if skip, why := harness.Excluded(p, wl); skip {
					t.Logf("skip %s: %s", wl, why)
					continue
				}
				if raceDetectorEnabled && !raceWorkloads[wl] {
					continue
				}
				cellSeed := harness.CellSeed(seed, p.Name, wl)
				res := harness.RunCell(p, wl, cellSeed)
				if res.Failed(p.RequireCompletion) {
					t.Errorf("cell failed (replay with RAKIS_CHAOS_SEED=%#x):\n  %s",
						seed, res)
				}
				if res.Granted != 0 {
					t.Errorf("%s/%s: host role breached trusted memory %d times",
						p.Name, wl, res.Granted)
				}
				tunerSteps += res.Tuner.Steps
				ran++
				if agg == nil {
					agg = make(map[string]uint64)
				}
				for _, name := range p.ExpectCounters {
					v, ok := harness.CounterValue(res.Counters, name)
					if !ok {
						t.Fatalf("profile %s expects unknown counter %q", p.Name, name)
					}
					agg[name] += v
				}
			}
			if ran == 0 {
				t.Skip("no cells in this build mode")
			}
			// Counter expectations hold on the profile's aggregate, not
			// per cell: a single fast workload may legitimately see none
			// of a given fault, but a whole sweep that never trips the
			// expected defence means the profile isn't reaching it.
			for _, name := range p.ExpectCounters {
				if agg[name] == 0 {
					t.Errorf("profile %s: expected counter %s stayed zero across %d cells (seed %#x)",
						p.Name, name, ran, seed)
				}
			}
			// An adaptive profile whose tuner never took a loaded step
			// proves nothing about envelope safety under attack.
			if p.Adaptive && tunerSteps == 0 {
				t.Errorf("profile %s: tuner took no loaded steps across %d cells", p.Name, ran)
			}
		})
	}
}

// TestChaosSeedReplay asserts determinism of the fault stream: two
// injectors with the same profile and seed make identical decisions.
func TestChaosSeedReplay(t *testing.T) {
	p := chaos.Profiles()["wakeups"]
	a := chaos.New(p, 42, nil, nil)
	b := chaos.New(p, 42, nil, nil)
	for i := 0; i < 10000; i++ {
		if a.WakeDrop() != b.WakeDrop() || a.WakeDelay() != b.WakeDelay() || a.WakeDup() != b.WakeDup() {
			t.Fatalf("fault streams diverged at consultation %d", i)
		}
	}
	c := chaos.New(p, 43, nil, nil)
	diverged := false
	for i := 0; i < 1000; i++ {
		if a.WakeDrop() != c.WakeDrop() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical fault streams")
	}
}

// TestChaosOffIsFree asserts the nil injector reports no faults — the
// production configuration must be byte-identical to a chaos-free build.
func TestChaosOffIsFree(t *testing.T) {
	var in *chaos.Injector
	if in.WakeDrop() || in.WakeDup() || in.NetDrop() || in.NetDup() || in.WorkerKill() {
		t.Fatal("nil injector injected a fault")
	}
	if d := in.WakeDelay(); d != 0 {
		t.Fatalf("nil injector delayed %v", d)
	}
	if _, _, ok := in.CQEForge(); ok {
		t.Fatal("nil injector forged a CQE")
	}
	if in.KernelScanDisabled() {
		t.Fatal("nil injector disabled the kernel scan")
	}
	in.RegisterRing(chaos.RingRegion{})
	in.Start()
	in.Stop()
}
