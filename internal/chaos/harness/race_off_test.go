//go:build !race

package harness_test

// raceDetectorEnabled reports whether this binary was built with -race.
// Scribbler profiles write shared ring slots concurrently with enclave
// reads — intentional data races modelling host tampering on real SGX
// hardware — and must skip themselves under the race detector, which
// would (correctly, but unhelpfully) flag every one.
const raceDetectorEnabled = false
