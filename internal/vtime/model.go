package vtime

// Model holds the cycle-cost constants of the simulated machine. The
// defaults model the paper's testbed: an Intel Xeon Gold 6312U at 2.4 GHz
// with a 25 Gbps NIC pair wired in loopback. All values are CPU cycles
// unless stated otherwise; per-byte values are cycles per byte.
//
// The constants were calibrated (see internal/experiments/calibrate_test.go)
// so that the relative results of the six evaluation workloads land inside
// the bands the paper reports; absolute values are simulator output, not
// testbed measurements.
type Model struct {
	// GHz is the simulated core frequency used to convert cycles to
	// seconds for reporting.
	GHz float64

	// LinkGbps is the NIC link capacity; the wire resource serializes
	// frames at this rate.
	LinkGbps float64

	// Syscall is the cost of entering and leaving the kernel for one
	// system call, excluding the work the call performs.
	Syscall uint64

	// EnclaveExit is the full cost of an SGX enclave exit and re-entry
	// (EEXIT + OCALL dispatch + EENTER), the >=8200-cycle figure from
	// Weisse et al. that the paper cites, plus marshalling overhead.
	EnclaveExit uint64

	// EnclaveStartupExits is the number of enclave exits charged at
	// process startup in SGX modes (enclave creation, loading, and the
	// LibOS boot syscalls), visible in the Figure 2 baseline.
	EnclaveStartupExits uint64

	// LibOSCall is the in-enclave LibOS syscall-interception and
	// emulation overhead paid on every syscall in Gramine modes.
	LibOSCall uint64

	// BoundaryCopyPerByte is the cost of copying one byte between
	// encrypted enclave memory and shared untrusted memory.
	BoundaryCopyPerByte float64

	// KernelCopyPerByte is the cost of an in-kernel copy (NIC buffer to
	// socket buffer, user buffer to page cache, ...).
	KernelCopyPerByte float64

	// UserCopyPerByte is the cost of a copy_to_user/copy_from_user byte.
	UserCopyPerByte float64

	// NicPerFrame is the per-frame DMA/descriptor cost on the NIC.
	NicPerFrame uint64

	// XdpRun is the cost of running the attached XDP program on a frame.
	XdpRun uint64

	// XskKernelPerFrame is the kernel-side cost of moving one frame
	// through an XSK ring pair (consume fill + produce rx, or consume tx
	// + produce completion), excluding byte copies.
	XskKernelPerFrame uint64

	// KernelNetPerPacket is the kernel network-stack cost (eth + IP +
	// UDP demux, or the reverse) for one packet on the regular path.
	KernelNetPerPacket uint64

	// KernelTCPPerSegment is the kernel TCP cost per segment
	// (congestion/window bookkeeping, ACK processing).
	KernelTCPPerSegment uint64

	// SocketOp is the in-kernel socket-layer cost of one send/recv
	// operation excluding stack traversal and copies.
	SocketOp uint64

	// VfsOp is the in-kernel filesystem cost of one read/write call
	// excluding byte copies.
	VfsOp uint64

	// PollPerFD is the kernel cost of examining one file descriptor in
	// poll/select.
	PollPerFD uint64

	// IoUringDispatch is the kernel-side cost of consuming one SQE,
	// dispatching the operation, and producing its CQE, excluding the
	// operation itself.
	IoUringDispatch uint64

	// IoUringWakeLatency is the virtual-time lag between a producer
	// advancing iSub and the kernel worker picking the request up (the
	// Monitor Module poll period plus kernel scheduling). This is the
	// asynchronous-wait overhead §6.2 attributes RAKIS's fstime gap to.
	IoUringWakeLatency uint64

	// XskWakeLatency is the equivalent lag for xFill/xTX wakeups issued
	// by the Monitor Module when the kernel side went idle.
	XskWakeLatency uint64

	// RingOp is the RAKIS certified-ring cost of one produce or consume
	// batch operation, including the Table 2 validation.
	RingOp uint64

	// UMemOp is the cost of one UMem frame allocation, release, or
	// ownership validation.
	UMemOp uint64

	// FMPerPacket is the FastPath Module bookkeeping cost per packet.
	FMPerPacket uint64

	// EnclaveStackPerPacket is the trimmed in-enclave UDP/IP stack cost
	// per packet (the paper's 5K-LoC LWIP cut).
	EnclaveStackPerPacket uint64

	// APIHook is the Service Module API-submodule cost of intercepting
	// and routing one syscall inside the enclave.
	APIHook uint64

	// SyncProxyOp is the SyncProxy cost of forwarding one synchronous
	// request to an io_uring FM and parking until completion.
	SyncProxyOp uint64
}

// Default returns the calibrated cost model described in DESIGN.md.
func Default() *Model {
	return &Model{
		GHz:                   2.4,
		LinkGbps:              25.0,
		Syscall:               950,
		EnclaveExit:           8800,
		EnclaveStartupExits:   42,
		LibOSCall:             450,
		BoundaryCopyPerByte:   0.15,
		KernelCopyPerByte:     0.10,
		UserCopyPerByte:       0.05,
		NicPerFrame:           60,
		XdpRun:                120,
		XskKernelPerFrame:     180,
		KernelNetPerPacket:    600,
		KernelTCPPerSegment:   800,
		SocketOp:              250,
		VfsOp:                 250,
		PollPerFD:             120,
		IoUringDispatch:       350,
		IoUringWakeLatency:    1500,
		XskWakeLatency:        1200,
		RingOp:                40,
		UMemOp:                25,
		FMPerPacket:           120,
		EnclaveStackPerPacket: 350,
		APIHook:               120,
		SyncProxyOp:           150,
	}
}

// Bytes converts a per-byte cost rate into whole cycles for n bytes.
func Bytes(rate float64, n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(rate * float64(n))
}

// WireCycles returns the serialization time of a frame of n bytes on the
// link, in cycles, including a minimal Ethernet overhead of 24 bytes
// (preamble + FCS + IFG).
func (m *Model) WireCycles(n int) uint64 {
	bits := float64(n+24) * 8
	seconds := bits / (m.LinkGbps * 1e9)
	return uint64(seconds * m.GHz * 1e9)
}

// Seconds converts cycles to seconds at the model's clock rate.
func (m *Model) Seconds(cycles uint64) float64 {
	return float64(cycles) / (m.GHz * 1e9)
}

// Cycles converts seconds to cycles at the model's clock rate.
func (m *Model) Cycles(seconds float64) uint64 {
	return uint64(seconds * m.GHz * 1e9)
}
