package vtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %d, want 0", c.Now())
	}
	if got := c.Advance(100); got != 100 {
		t.Fatalf("Advance returned %d, want 100", got)
	}
	if got := c.Advance(50); got != 150 {
		t.Fatalf("Advance returned %d, want 150", got)
	}
}

func TestClockSync(t *testing.T) {
	var c Clock
	c.Advance(100)
	if got := c.Sync(50); got != 100 {
		t.Fatalf("Sync(50) on clock@100 = %d, want 100 (no rollback)", got)
	}
	if got := c.Sync(200); got != 200 {
		t.Fatalf("Sync(200) = %d, want 200", got)
	}
	if got := c.SyncAdvance(150, 30); got != 230 {
		t.Fatalf("SyncAdvance(150, 30) on clock@200 = %d, want 230", got)
	}
	if got := c.SyncAdvance(500, 30); got != 530 {
		t.Fatalf("SyncAdvance(500, 30) = %d, want 530", got)
	}
}

func TestClockSyncConcurrent(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for j := uint64(0); j < 1000; j++ {
				c.Sync(base + j)
			}
		}(uint64(i * 1000))
	}
	wg.Wait()
	if got := c.Now(); got != 7999 {
		t.Fatalf("concurrent Sync final = %d, want 7999", got)
	}
}

func TestStampMonotonic(t *testing.T) {
	var s Stamp
	s.Raise(10)
	s.Raise(5)
	if got := s.Load(); got != 10 {
		t.Fatalf("Stamp after Raise(10), Raise(5) = %d, want 10", got)
	}
	s.Raise(20)
	if got := s.Load(); got != 20 {
		t.Fatalf("Stamp after Raise(20) = %d, want 20", got)
	}
}

func TestStampMonotonicProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		var s Stamp
		max := uint64(0)
		for _, v := range vals {
			s.Raise(v)
			if v > max {
				max = v
			}
			if s.Load() != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	// Back-to-back uses queue behind each other.
	if end := r.Use(0, 100); end != 100 {
		t.Fatalf("first Use end = %d, want 100", end)
	}
	if end := r.Use(0, 100); end != 200 {
		t.Fatalf("second Use end = %d, want 200 (queued)", end)
	}
	// A use starting after the resource frees begins at its start time.
	if end := r.Use(1000, 100); end != 1100 {
		t.Fatalf("late Use end = %d, want 1100", end)
	}
}

func TestResourceThroughputCap(t *testing.T) {
	// A resource used N times for d cycles each, always available-from-0,
	// must finish at exactly N*d: it enforces a rate cap.
	var r Resource
	const n, d = 1000, 7
	for i := 0; i < n; i++ {
		r.Use(0, d)
	}
	if got := r.Now(); got != n*d {
		t.Fatalf("resource end = %d, want %d", got, n*d)
	}
}

func TestResourceConcurrent(t *testing.T) {
	var r Resource
	var wg sync.WaitGroup
	const workers, uses, d = 4, 500, 3
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < uses; j++ {
				r.Use(0, d)
			}
		}()
	}
	wg.Wait()
	if got := r.Now(); got != workers*uses*d {
		t.Fatalf("resource end = %d, want %d", got, workers*uses*d)
	}
}

func TestGroupMax(t *testing.T) {
	g := NewGroup()
	a := g.AddClock()
	b := g.AddClock()
	a.Advance(10)
	b.Advance(25)
	if got := g.Max(); got != 25 {
		t.Fatalf("Group.Max = %d, want 25", got)
	}
	var ext Clock
	ext.Advance(99)
	g.Add(&ext)
	if got := g.Max(); got != 99 {
		t.Fatalf("Group.Max with external clock = %d, want 99", got)
	}
}

func TestModelWireCycles(t *testing.T) {
	m := Default()
	// A 1500-byte frame at 25 Gbps takes (1524*8)/25e9 s ~= 487.7 ns,
	// which is ~1170 cycles at 2.4 GHz.
	got := m.WireCycles(1500)
	if got < 1100 || got > 1250 {
		t.Fatalf("WireCycles(1500) = %d, want ~1170", got)
	}
	if m.WireCycles(0) == 0 {
		t.Fatal("WireCycles(0) must include framing overhead")
	}
}

func TestModelSecondsRoundTrip(t *testing.T) {
	m := Default()
	s := m.Seconds(2_400_000_000)
	if s < 0.999 || s > 1.001 {
		t.Fatalf("Seconds(2.4e9 cycles) = %v, want ~1s", s)
	}
	if c := m.Cycles(1.0); c != 2_400_000_000 {
		t.Fatalf("Cycles(1s) = %d, want 2.4e9", c)
	}
}

func TestBytesRate(t *testing.T) {
	if got := Bytes(0.5, 1000); got != 500 {
		t.Fatalf("Bytes(0.5, 1000) = %d, want 500", got)
	}
	if got := Bytes(2.0, -5); got != 0 {
		t.Fatalf("Bytes with negative n = %d, want 0", got)
	}
	if got := Bytes(2.0, 0); got != 0 {
		t.Fatalf("Bytes with zero n = %d, want 0", got)
	}
}

func TestCountersSnapshotSub(t *testing.T) {
	var c Counters
	c.Syscalls.Add(10)
	c.EnclaveExits.Add(3)
	before := c.Snapshot()
	c.Syscalls.Add(5)
	c.PacketsRx.Add(7)
	diff := c.Snapshot().Sub(before)
	if diff.Syscalls != 5 || diff.PacketsRx != 7 || diff.EnclaveExits != 0 {
		t.Fatalf("Sub = %+v, want syscalls=5 rx=7 exits=0", diff)
	}
	if diff.String() == "" {
		t.Fatal("String() must not be empty")
	}
}
