// Package vtime provides the virtual-time machinery the simulation runs on.
//
// Every simulated thread of execution (an application thread, a kernel
// softirq worker, a RAKIS FastPath Module thread, the Monitor Module, an
// io_uring kernel worker, the network wire) owns a Clock: a monotonically
// increasing cycle counter. Performing work advances the owner's clock.
// Items that cross a queue or a shared ring carry the producer's timestamp;
// the consumer first raises its own clock to that stamp and then pays its
// processing cost. Synchronous round-trips propagate the responder's
// completion stamp back to the blocked requester.
//
// The result is a conservative co-simulation: pipeline stages overlap,
// parallel threads scale, serial round-trips accumulate, and the bottleneck
// stage determines throughput — regardless of how many physical cores the
// host has. All figures in EXPERIMENTS.md are computed from virtual time.
package vtime

import (
	"sync"
	"sync/atomic"
)

// Clock is a per-thread virtual cycle counter.
//
// A Clock is owned by exactly one simulated thread, which is the only
// caller of Advance and Sync; other threads may concurrently read it with
// Now. The zero value is a clock at cycle zero, ready to use.
//
// A Clock may carry an Attribution (SetAttribution): every cycle the
// clock gains is then charged to a cost component — Charge and SyncAs
// name one explicitly, Advance books to CompOther, Sync to CompWait — so
// component totals always sum to the clock's time.
type Clock struct {
	now  atomic.Uint64
	attr atomic.Pointer[Attribution]
}

// Now returns the clock's current virtual cycle count.
func (c *Clock) Now() uint64 { return c.now.Load() }

// SetAttribution attaches a cycle ledger to the clock. Attach while the
// clock is still at zero for the Total()==Now() invariant to hold.
func (c *Clock) SetAttribution(a *Attribution) { c.attr.Store(a) }

// Attribution returns the attached ledger, or nil.
func (c *Clock) Attribution() *Attribution { return c.attr.Load() }

// Advance moves the clock forward by the given number of cycles and
// returns the new time. The cycles are attributed to CompOther.
func (c *Clock) Advance(cycles uint64) uint64 {
	return c.Charge(CompOther, cycles)
}

// Charge moves the clock forward by cycles attributed to the given cost
// component, and returns the new time.
func (c *Clock) Charge(comp Comp, cycles uint64) uint64 {
	if a := c.attr.Load(); a != nil {
		a.comp[comp].Add(cycles)
	}
	return c.now.Add(cycles)
}

// Sync raises the clock to stamp if stamp is ahead of it. It models the
// idle time spent waiting for an event produced at the given virtual time
// and returns the (possibly unchanged) current time. The raised cycles
// are attributed to CompWait.
func (c *Clock) Sync(stamp uint64) uint64 {
	return c.SyncAs(stamp, CompWait)
}

// SyncAs raises the clock to stamp like Sync, attributing the raised
// cycles to the given component — for waits that are really serialized
// work, such as the shared portion of an enclave exit.
func (c *Clock) SyncAs(stamp uint64, comp Comp) uint64 {
	for {
		cur := c.now.Load()
		if stamp <= cur {
			return cur
		}
		if c.now.CompareAndSwap(cur, stamp) {
			if a := c.attr.Load(); a != nil {
				a.comp[comp].Add(stamp - cur)
			}
			return stamp
		}
	}
}

// SyncAdvance raises the clock to stamp, then advances it by cycles.
// It is the common "receive an item, then process it" step.
func (c *Clock) SyncAdvance(stamp, cycles uint64) uint64 {
	c.Sync(stamp)
	return c.Advance(cycles)
}

// Stamp is a shared monotonic timestamp cell. Producers Raise it with
// their clock when publishing items into a queue or ring; consumers Load
// it and Sync their own clock. It is conservative: a consumer of an older
// item syncs to the newest published stamp, never to an earlier one.
type Stamp struct {
	v atomic.Uint64
}

// Raise lifts the cell to t if t is ahead of the stored value.
func (s *Stamp) Raise(t uint64) {
	for {
		cur := s.v.Load()
		if t <= cur {
			return
		}
		if s.v.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Load returns the current stamp value.
func (s *Stamp) Load() uint64 { return s.v.Load() }

// Resource is a serial shared resource, such as the network wire: only
// one user occupies it at a time.
//
// Uses arrive in *real* execution order, which under virtual time is not
// the same as virtual order: a thread that is virtually early may call
// Use after a virtually later one. Strict FIFO-on-the-frontier would then
// falsely queue the early use behind the late one and — through stamp
// feedback loops — serialize unrelated threads. Instead the resource
// keeps both a frontier (the latest completion) and a cumulative busy
// total: a use starting before the frontier is allowed to pass without
// delay as long as total busy time still fits below the frontier (the
// capacity demonstrably existed in the virtual past); once cumulative
// utilization saturates, uses queue at the frontier, which is what paces
// a saturating sender at exactly the resource's rate.
type Resource struct {
	mu   sync.Mutex
	now  uint64 // frontier: when the resource last becomes free
	busy uint64 // total cycles of use granted
}

// Use occupies the resource for dur cycles starting no earlier than
// start, and returns the virtual time at which the use completes.
func (r *Resource) Use(start, dur uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.busy += dur
	if start >= r.now {
		// Arrives when the resource is free: occupy [start, start+dur].
		r.now = start + dur
		return r.now
	}
	if r.busy <= r.now {
		// Virtually-past arrival, and the resource had spare capacity
		// back then: pass through without queueing delay.
		return start + dur
	}
	// Saturated: queue at the frontier.
	r.now += dur
	return r.now
}

// Now returns the virtual time at which the resource last becomes free.
func (r *Resource) Now() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.now
}

// Group tracks a set of clocks so a run can be measured as the span
// between its start time and the maximum final clock of any participant.
type Group struct {
	clocks []*Clock
	start  uint64
}

// NewGroup returns a group measuring from virtual time zero.
func NewGroup() *Group { return &Group{} }

// Add registers an existing clock with the group.
func (g *Group) Add(c *Clock) {
	g.clocks = append(g.clocks, c)
}

// AddClock creates a fresh clock, registers it, and returns it.
func (g *Group) AddClock() *Clock {
	c := &Clock{}
	g.clocks = append(g.clocks, c)
	return c
}

// Max returns the maximum current time across the group's clocks, or the
// group start time if it has no clocks.
func (g *Group) Max() uint64 {
	m := g.start
	for _, c := range g.clocks {
		if t := c.Now(); t > m {
			m = t
		}
	}
	return m
}
