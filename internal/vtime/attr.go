package vtime

import "sync/atomic"

// Comp classifies where a thread's virtual cycles go — the §6 cost
// decomposition the paper's performance argument rests on. Every cycle a
// Clock advances is attributed to exactly one component, so the
// components of any interval sum to the clock delta (conservation).
type Comp uint8

const (
	// CompOther is uncategorized work: application compute, LibOS
	// bookkeeping, in-enclave copies between trusted buffers.
	CompOther Comp = iota
	// CompExit is SGX enclave transition cost (EEXIT/EENTER, OCALL
	// marshalling) — the Figure 2 subject.
	CompExit
	// CompCopy is data crossing the trust boundary: OCALL payloads,
	// bounce-buffer traffic, UMem frame copies.
	CompCopy
	// CompValidate is Table 2 validation of untrusted-origin values:
	// descriptor and CQE checks, UMem ownership tracking.
	CompValidate
	// CompRing is certified-ring manipulation: producer/consumer index
	// maintenance on the shared XSK and io_uring rings.
	CompRing
	// CompStack is the in-enclave UDP/IP stack and kernel network stack
	// packet work.
	CompStack
	// CompAPI is the Service Module's API submodule: syscall
	// interception hooks, SyncProxy dispatch, poll fan-out.
	CompAPI
	// CompWait is idle time: the clock raised to a producer's stamp
	// while blocked on an event.
	CompWait

	// NumComp is the number of components.
	NumComp = int(CompWait) + 1
)

var compNames = [NumComp]string{
	"other", "exit", "copy", "validate", "ring", "stack", "api", "wait",
}

// String returns the component's short name.
func (c Comp) String() string {
	if int(c) < NumComp {
		return compNames[c]
	}
	return "invalid"
}

// Attribution is a per-clock cycle ledger: one counter per component.
// All methods are nil-receiver safe so unattributed clocks pay only a
// pointer test.
type Attribution struct {
	comp [NumComp]atomic.Uint64
}

// Add charges cycles to a component.
func (a *Attribution) Add(c Comp, cycles uint64) {
	if a != nil {
		a.comp[c].Add(cycles)
	}
}

// Load returns one component's total.
func (a *Attribution) Load(c Comp) uint64 {
	if a == nil {
		return 0
	}
	return a.comp[c].Load()
}

// Snapshot returns a point-in-time copy of all components.
func (a *Attribution) Snapshot() [NumComp]uint64 {
	var s [NumComp]uint64
	if a == nil {
		return s
	}
	for i := range s {
		s[i] = a.comp[i].Load()
	}
	return s
}

// Total returns the sum over all components. For an attribution that has
// been attached to a clock since cycle zero, Total equals the clock's
// current time — the conservation invariant telemetry asserts.
func (a *Attribution) Total() uint64 {
	var t uint64
	if a == nil {
		return 0
	}
	for i := range a.comp {
		t += a.comp[i].Load()
	}
	return t
}
