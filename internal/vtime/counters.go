package vtime

import (
	"fmt"
	"sync/atomic"
)

// Counters aggregates the observable event counts of one simulated
// environment run: enclave exits (Figure 2), syscalls, ring and UMem
// validation failures (Table 2 fail actions), and data-plane statistics.
type Counters struct {
	EnclaveExits   atomic.Uint64
	Syscalls       atomic.Uint64
	LibOSCalls     atomic.Uint64
	RingViolations atomic.Uint64
	UMemViolations atomic.Uint64
	CQEViolations  atomic.Uint64
	PacketsRx      atomic.Uint64
	PacketsTx      atomic.Uint64
	PacketsDropped atomic.Uint64
	BytesRx        atomic.Uint64
	BytesTx        atomic.Uint64
	IoUringOps     atomic.Uint64
	Wakeups        atomic.Uint64
	// Chaos-era counters: fault-injection accounting on the untrusted
	// side, and the hardened recovery paths they exercise on the
	// trusted side (see DESIGN.md, "Chaos testing").
	FaultsInjected atomic.Uint64
	WakeupRetries  atomic.Uint64
	SubmitRetries  atomic.Uint64
	FallbackExits  atomic.Uint64
	RingResyncs    atomic.Uint64
	PollCancels    atomic.Uint64
	// Batched fast-path counters: vectored calls taken, messages moved
	// through them, and MM wakeups that were folded into an already
	// pending nudge instead of firing their own syscall.
	BatchCalls       atomic.Uint64
	BatchedMsgs      atomic.Uint64
	WakeupsCoalesced atomic.Uint64
	// Zero-copy datapath counters: boundary-copy bytes the view/splice
	// paths avoided, and RX frames re-queued onto TX without a payload
	// copy (see DESIGN.md, "Zero-copy datapath").
	CopyBytesSaved atomic.Uint64
	SpliceFrames   atomic.Uint64
	// In-enclave TCP counters: stateless SYN cookies minted and
	// round-tripped by the enclave listen path, and segments refused
	// deterministically (invalid cookie, full accept queue, no matching
	// endpoint) — the confinement counters the SYN-flood gate asserts on.
	TCPCookiesSent     atomic.Uint64
	TCPCookiesAccepted atomic.Uint64
	TCPRefused         atomic.Uint64
}

// Snapshot is a plain-value copy of a Counters, safe to store and print.
type Snapshot struct {
	EnclaveExits   uint64
	Syscalls       uint64
	LibOSCalls     uint64
	RingViolations uint64
	UMemViolations uint64
	CQEViolations  uint64
	PacketsRx      uint64
	PacketsTx      uint64
	PacketsDropped uint64
	BytesRx        uint64
	BytesTx        uint64
	IoUringOps     uint64
	Wakeups        uint64
	FaultsInjected uint64
	WakeupRetries  uint64
	SubmitRetries  uint64
	FallbackExits  uint64
	RingResyncs    uint64
	PollCancels    uint64

	BatchCalls       uint64
	BatchedMsgs      uint64
	WakeupsCoalesced uint64

	CopyBytesSaved uint64
	SpliceFrames   uint64

	TCPCookiesSent     uint64
	TCPCookiesAccepted uint64
	TCPRefused         uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		EnclaveExits:   c.EnclaveExits.Load(),
		Syscalls:       c.Syscalls.Load(),
		LibOSCalls:     c.LibOSCalls.Load(),
		RingViolations: c.RingViolations.Load(),
		UMemViolations: c.UMemViolations.Load(),
		CQEViolations:  c.CQEViolations.Load(),
		PacketsRx:      c.PacketsRx.Load(),
		PacketsTx:      c.PacketsTx.Load(),
		PacketsDropped: c.PacketsDropped.Load(),
		BytesRx:        c.BytesRx.Load(),
		BytesTx:        c.BytesTx.Load(),
		IoUringOps:     c.IoUringOps.Load(),
		Wakeups:        c.Wakeups.Load(),
		FaultsInjected: c.FaultsInjected.Load(),
		WakeupRetries:  c.WakeupRetries.Load(),
		SubmitRetries:  c.SubmitRetries.Load(),
		FallbackExits:  c.FallbackExits.Load(),
		RingResyncs:    c.RingResyncs.Load(),
		PollCancels:    c.PollCancels.Load(),

		BatchCalls:       c.BatchCalls.Load(),
		BatchedMsgs:      c.BatchedMsgs.Load(),
		WakeupsCoalesced: c.WakeupsCoalesced.Load(),

		CopyBytesSaved: c.CopyBytesSaved.Load(),
		SpliceFrames:   c.SpliceFrames.Load(),

		TCPCookiesSent:     c.TCPCookiesSent.Load(),
		TCPCookiesAccepted: c.TCPCookiesAccepted.Load(),
		TCPRefused:         c.TCPRefused.Load(),
	}
}

// Sub returns the per-field difference s - prev.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		EnclaveExits:   s.EnclaveExits - prev.EnclaveExits,
		Syscalls:       s.Syscalls - prev.Syscalls,
		LibOSCalls:     s.LibOSCalls - prev.LibOSCalls,
		RingViolations: s.RingViolations - prev.RingViolations,
		UMemViolations: s.UMemViolations - prev.UMemViolations,
		CQEViolations:  s.CQEViolations - prev.CQEViolations,
		PacketsRx:      s.PacketsRx - prev.PacketsRx,
		PacketsTx:      s.PacketsTx - prev.PacketsTx,
		PacketsDropped: s.PacketsDropped - prev.PacketsDropped,
		BytesRx:        s.BytesRx - prev.BytesRx,
		BytesTx:        s.BytesTx - prev.BytesTx,
		IoUringOps:     s.IoUringOps - prev.IoUringOps,
		Wakeups:        s.Wakeups - prev.Wakeups,
		FaultsInjected: s.FaultsInjected - prev.FaultsInjected,
		WakeupRetries:  s.WakeupRetries - prev.WakeupRetries,
		SubmitRetries:  s.SubmitRetries - prev.SubmitRetries,
		FallbackExits:  s.FallbackExits - prev.FallbackExits,
		RingResyncs:    s.RingResyncs - prev.RingResyncs,
		PollCancels:    s.PollCancels - prev.PollCancels,

		BatchCalls:       s.BatchCalls - prev.BatchCalls,
		BatchedMsgs:      s.BatchedMsgs - prev.BatchedMsgs,
		WakeupsCoalesced: s.WakeupsCoalesced - prev.WakeupsCoalesced,

		CopyBytesSaved: s.CopyBytesSaved - prev.CopyBytesSaved,
		SpliceFrames:   s.SpliceFrames - prev.SpliceFrames,

		TCPCookiesSent:     s.TCPCookiesSent - prev.TCPCookiesSent,
		TCPCookiesAccepted: s.TCPCookiesAccepted - prev.TCPCookiesAccepted,
		TCPRefused:         s.TCPRefused - prev.TCPRefused,
	}
}

// String renders the snapshot as a compact single-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"exits=%d syscalls=%d ringviol=%d umemviol=%d cqeviol=%d rx=%d tx=%d drop=%d uring=%d wake=%d"+
			" faults=%d wretry=%d sretry=%d fbexit=%d resync=%d pollcancel=%d"+
			" batch=%d batchmsg=%d wcoalesce=%d"+
			" zcsaved=%d splice=%d",
		s.EnclaveExits, s.Syscalls, s.RingViolations, s.UMemViolations,
		s.CQEViolations, s.PacketsRx, s.PacketsTx, s.PacketsDropped,
		s.IoUringOps, s.Wakeups,
		s.FaultsInjected, s.WakeupRetries, s.SubmitRetries,
		s.FallbackExits, s.RingResyncs, s.PollCancels,
		s.BatchCalls, s.BatchedMsgs, s.WakeupsCoalesced,
		s.CopyBytesSaved, s.SpliceFrames)
}
