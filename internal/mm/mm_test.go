package mm

import (
	"sync/atomic"
	"testing"
	"time"

	"rakis/internal/hostos"
	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/ring"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

type fixture struct {
	kern *hostos.Kernel
	ns   *hostos.NetNS
	proc *hostos.Proc
	ctrs *vtime.Counters
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	m := vtime.Default()
	kern := hostos.NewKernel(mem.NewSpace(1<<20, 1<<24), m)
	a, b := netsim.NewPair(m, netsim.Config{Name: "a"}, netsim.Config{Name: "b"})
	ns, err := kern.AddNetNS("a", a, netstack.IP4{10, 0, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kern.AddNetNS("b", b, netstack.IP4{10, 0, 0, 2}, nil, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(kern.Close)
	ctrs := &vtime.Counters{}
	return &fixture{kern: kern, ns: ns, proc: kern.NewProc(ns, ctrs), ctrs: ctrs}
}

func TestMonitorFiresUringEnter(t *testing.T) {
	f := newFixture(t)
	var clk vtime.Clock
	setup, err := f.proc.IoUringSetup(8, &clk)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := iouring.Attach(iouring.Config{Space: f.kern.Space, Setup: setup, Entries: 8})
	if err != nil {
		t.Fatal(err)
	}

	mon := New(f.proc)
	if err := mon.WatchUring(f.kern.Space, setup); err != nil {
		t.Fatal(err)
	}
	// No producer movement: sweep fires nothing.
	if n := mon.Sweep(); n != 0 {
		t.Fatalf("idle sweep fired %d", n)
	}
	// Submit a NOP; the sweep must notice and issue io_uring_enter.
	tok, err := fm.Submit(iouring.SQE{Op: iouring.OpNop}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	if n := mon.Sweep(); n != 1 {
		t.Fatalf("sweep fired %d, want 1", n)
	}
	if res, err := fm.Wait(tok, &clk); err != nil || res != 0 {
		t.Fatalf("nop result %d, %v", res, err)
	}
	// Same producer value again: no duplicate wakeup.
	if n := mon.Sweep(); n != 0 {
		t.Fatal("sweep must not refire without producer movement")
	}
}

func TestMonitorFiresXSKWakeups(t *testing.T) {
	f := newFixture(t)
	var clk vtime.Clock
	res, err := f.proc.XSKSetup(f.ns, 0, 64, 2048, 64, &clk)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := xsk.Attach(xsk.Config{
		Space: f.kern.Space, Setup: res.Setup,
		RingSize: 64, FrameSize: 2048, FrameCount: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := New(f.proc)
	if err := mon.WatchXSK(f.kern.Space, res.Setup); err != nil {
		t.Fatal(err)
	}

	// A TX produce must trigger sendto; the frame reaches the wire.
	frame := make([]byte, 64)
	if err := sock.Send(frame, &clk); err != nil {
		t.Fatal(err)
	}
	before := f.ctrs.Wakeups.Load()
	if n := mon.Sweep(); n != 1 {
		t.Fatalf("TX sweep fired %d, want 1", n)
	}
	if f.ctrs.Wakeups.Load() != before+1 {
		t.Fatal("sendto wakeup not issued")
	}

	// Setting need-wakeup on the fill ring triggers recvfrom.
	sock.Fill.SetFlags(ring.FlagNeedWakeup)
	sock.Refill(&clk) // move the producer so the watch notices
	if n := mon.Sweep(); n != 1 {
		t.Fatalf("fill sweep fired %d, want 1", n)
	}
	if sock.Fill.Flags() != 0 {
		t.Fatal("recvfrom wakeup must clear need-wakeup")
	}
}

func TestMonitorRunsAsThread(t *testing.T) {
	f := newFixture(t)
	var clk vtime.Clock
	setup, err := f.proc.IoUringSetup(8, &clk)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := iouring.Attach(iouring.Config{Space: f.kern.Space, Setup: setup, Entries: 8})
	if err != nil {
		t.Fatal(err)
	}
	mon := New(f.proc)
	mon.WatchUring(f.kern.Space, setup)
	mon.Start()
	defer mon.Close()

	// Submit and rely on the background monitor alone for the wakeup.
	tok, _ := fm.Submit(iouring.SQE{Op: iouring.OpNop}, &clk)
	done := make(chan struct{})
	go func() {
		fm.Wait(tok, &clk)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("monitor never woke the kernel")
	}
}

// oldFillSweep replicates the pre-single-fetch shape of the
// watchXskFill pass: the shared need-wakeup flag was loaded once in the
// edge test and again in the firing test. between runs after the first
// load — the window in which the host (or a concurrent servicing path)
// can rewrite the flag.
func oldFillSweep(w *watch, force bool, between func()) bool {
	p := w.prod.Load()
	if p != w.last || force || w.flags.Load()&ring.FlagNeedWakeup != 0 {
		w.last = p
		between()
		if force || w.flags.Load()&ring.FlagNeedWakeup != 0 {
			return true
		}
	}
	return false
}

// TestSweepSingleFetchOfNeedWakeupFlag pins the double-fetch fix in
// Sweep's fill-ring pass. The old shape could enter the branch because
// the flag was set, lose the flag to a mid-decision rewrite, consume
// the producer edge, and fire nothing — a recvfrom wakeup lost until an
// unrelated event re-arms the edge. The fixed pass samples the flag
// once, so a sampled-set flag always fires.
func TestSweepSingleFetchOfNeedWakeupFlag(t *testing.T) {
	var prod, flags atomic.Uint32
	w := &watch{kind: watchXskFill, fd: 3, prod: &prod, flags: &flags}

	// The exploit interleaving against the old shape: flag set and a
	// fresh producer edge, flag scribbled clear between the two loads.
	prod.Store(5)
	flags.Store(ring.FlagNeedWakeup)
	if oldFillSweep(w, false, func() { flags.Store(0) }) {
		t.Fatal("replica fired; the lost-wakeup interleaving should suppress it")
	}
	if w.last != 5 {
		t.Fatalf("replica left last=%d; the edge must be consumed for the loss", w.last)
	}
	// The edge is gone and the flag reads clear: later passes stay
	// silent even though the wakeup was never issued.
	if oldFillSweep(w, false, func() {}) {
		t.Fatal("replica refired without an edge")
	}

	// The fixed Sweep cannot lose that race: the flag is fetched once,
	// and a sampled-set flag fires unconditionally.
	f := newFixture(t)
	var clk vtime.Clock
	res, err := f.proc.XSKSetup(f.ns, 0, 64, 2048, 64, &clk)
	if err != nil {
		t.Fatal(err)
	}
	sock, err := xsk.Attach(xsk.Config{
		Space: f.kern.Space, Setup: res.Setup,
		RingSize: 64, FrameSize: 2048, FrameCount: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := New(f.proc)
	if err := mon.WatchXSK(f.kern.Space, res.Setup); err != nil {
		t.Fatal(err)
	}
	if n := mon.Sweep(); n != 0 {
		t.Fatalf("idle sweep fired %d", n)
	}
	// Need-wakeup with no producer movement must still fire recvfrom:
	// the single sampled flag is both the branch reason and the firing
	// reason.
	sock.Fill.SetFlags(ring.FlagNeedWakeup)
	before := f.ctrs.Wakeups.Load()
	if n := mon.Sweep(); n != 1 {
		t.Fatalf("need-wakeup sweep fired %d, want 1", n)
	}
	if f.ctrs.Wakeups.Load() != before+1 {
		t.Fatal("recvfrom wakeup not issued")
	}
}
