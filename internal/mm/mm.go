// Package mm implements the Monitor Module (§4.3): a single dedicated
// thread running *outside* the enclave that watches the shared producer
// indices of the rings where RAKIS is the producer — xFill and xTX of
// every XSK, and iSub of every io_uring — and issues the residual
// syscalls (recvfrom, sendto, io_uring_enter) on the FastPath Modules'
// behalf, so no FM ever pays an enclave exit.
//
// The MM holds no trusted state and touches only untrusted memory; its
// failure affects availability, never integrity (§5: it is outside the
// TCB and excluded from the security analysis).
//
//rakis:role host
package mm

import (
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/hostos"
	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// watchKind selects the wakeup syscall for a ring.
type watchKind int

const (
	watchXskTX watchKind = iota
	watchXskFill
	watchUring
)

type watch struct {
	kind  watchKind
	fd    int
	prod  *atomic.Uint32
	flags *atomic.Uint32
	last  uint32

	// suppressed counts producer edges this watch consumed without
	// firing a wakeup syscall: fill edges the kernel never flagged
	// need-wakeup for, and any XSK edge absorbed while the busy-poll
	// worker owns the ring. Exported per shard (the tuner reads it per
	// queue; the aggregate alone cannot tell a hot shard from ten warm
	// ones).
	suppressed atomic.Uint64

	// issued counts wakeup syscalls this watch actually fired — the
	// per-shard half of the single-multiplexer story: one MM thread
	// serves every shard, and this shows which shard's flags it fired
	// for.
	issued atomic.Uint64
}

// Monitor is the Monitor Module thread.
type Monitor struct {
	proc *hostos.Proc
	clk  vtime.Clock

	mu      sync.Mutex
	watches []*watch

	// force requests one unconditional sweep: every watch fires its
	// wakeup syscall regardless of edge detection. This is the enclave's
	// exit-free recovery doorbell — a wakeup the host swallowed leaves
	// the producer index unchanged, so the normal edge-triggered sweep
	// would never re-fire it.
	force atomic.Bool

	// busyDesired is the wakeup mode the tuner asked for; busyApplied is
	// what the sweep has actually switched the kernel to. The MM applies
	// mode changes itself — it is the syscall proxy, so flipping kernel
	// busy-poll on or off costs a host-thread syscall, never an enclave
	// exit. While busy-poll is applied the sweep skips XSK watches
	// (the kernel worker drains those rings), absorbing their edges into
	// the per-shard suppressed counters.
	busyDesired atomic.Bool
	busyApplied atomic.Bool

	// Chaos, when non-nil, lets the fault injector stall or kill this
	// thread (§4.3: the MM is untrusted; its death may cost availability
	// only). Set it before Start.
	Chaos *chaos.Injector

	// Trace, when non-nil, receives one wakeup event per fired residual
	// syscall. Set it before Start.
	Trace *telemetry.Buf

	// Counters, when non-nil, records wakeup coalescing: nudges that
	// arrived while a forced sweep was already pending fold into it
	// instead of scheduling another. Set it before Start.
	Counters *vtime.Counters

	stop chan struct{}
	done chan struct{}
	// Interval is the real-time poll period of the monitor loop.
	Interval time.Duration
}

// New creates a Monitor issuing syscalls through the given host process
// (which runs outside the enclave: its syscalls are not exits).
func New(proc *hostos.Proc) *Monitor {
	return &Monitor{
		proc:     proc,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		Interval: 5 * time.Microsecond,
	}
}

// Clock returns the monitor thread's virtual clock.
func (m *Monitor) Clock() *vtime.Clock { return &m.clk }

// WatchXSK registers both producer-side rings of an XSK: xTX (sendto
// wakeups) and xFill (recvfrom wakeups when the kernel flagged
// need-wakeup). The shared cells are read with host role — the MM lives
// outside the enclave.
func (m *Monitor) WatchXSK(space *mem.Space, setup xsk.Setup) error {
	txProd, err := space.Atomic32(mem.RoleHost, setup.TXBase)
	if err != nil {
		return err
	}
	fillProd, err := space.Atomic32(mem.RoleHost, setup.FillBase)
	if err != nil {
		return err
	}
	fillFlags, err := space.Atomic32(mem.RoleHost, setup.FillBase+8)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watches = append(m.watches,
		&watch{kind: watchXskTX, fd: setup.FD, prod: txProd},
		&watch{kind: watchXskFill, fd: setup.FD, prod: fillProd, flags: fillFlags},
	)
	return nil
}

// WatchUring registers an io_uring's iSub producer for io_uring_enter
// wakeups.
func (m *Monitor) WatchUring(space *mem.Space, setup iouring.Setup) error {
	prod, err := space.Atomic32(mem.RoleHost, setup.SubBase)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watches = append(m.watches, &watch{kind: watchUring, fd: setup.FD, prod: prod})
	return nil
}

// Start launches the monitor thread.
func (m *Monitor) Start() {
	go m.run()
}

func (m *Monitor) run() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		if m.Chaos.MMKillNow() {
			// Fault site (c): the MM thread dies. Dead() flips true and
			// the enclave-side watchdog degrades to paid exits.
			return
		}
		if d := m.Chaos.MMStall(); d > 0 {
			time.Sleep(d)
		}
		m.Sweep()
		time.Sleep(m.Interval)
	}
}

// Nudge requests one forced sweep: the next pass issues every watched
// ring's wakeup syscall unconditionally. The enclave writes only this
// process-local flag — no syscall, no exit — making Nudge the free rung
// of the lost-wakeup recovery ladder.
//
// Duplicate pending nudges coalesce: while a forced sweep is already
// scheduled, further nudges (several threads escalating at once, or one
// thread climbing its backoff ladder faster than the sweep period) fold
// into it, so a nudge storm costs one sweep, not one sweep each.
func (m *Monitor) Nudge() {
	if m.force.Swap(true) && m.Counters != nil {
		m.Counters.WakeupsCoalesced.Add(1)
	}
}

// Dead reports whether the monitor thread has terminated (killed by
// chaos or closed). The enclave consults this to decide between nudging
// and paying direct exits.
func (m *Monitor) Dead() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// Sweep performs one pass over all watched rings, issuing wakeups where
// producers moved — or on every watch when a Nudge is pending, since a
// swallowed wakeup leaves the producer index exactly where the last
// (lost) firing recorded it. Exported so tests (and the verification
// binary) can drive the monitor deterministically.
func (m *Monitor) Sweep() int {
	force := m.force.Swap(false)
	m.mu.Lock()
	watches := make([]*watch, len(m.watches))
	copy(watches, m.watches)
	m.mu.Unlock()
	m.applyMode(watches)
	busy := m.busyApplied.Load()
	fired := 0
	for _, w := range watches {
		p := w.prod.Load()
		if busy && (w.kind == watchXskTX || w.kind == watchXskFill) {
			// The kernel busy-poll worker owns the XSK rings: consume the
			// edge so a later mode switch back does not replay stale
			// producer movement as a wakeup burst, and book the syscall we
			// did not need to issue.
			if p != w.last || force {
				w.last = p
				w.suppressed.Add(1)
			}
			continue
		}
		switch w.kind {
		case watchXskTX:
			if p != w.last || force {
				w.last = p
				m.proc.XSKSendto(w.fd, &m.clk)
				m.Trace.Emit(telemetry.EvMMWakeup, m.clk.Now(), uint64(w.fd), 0)
				w.issued.Add(1)
				fired++
			}
		case watchXskFill:
			// Single fetch of the shared need-wakeup flag. The old shape
			// read w.flags.Load() in the outer edge test and again in the
			// inner firing test; a flag cleared between the two reads made
			// the pass enter the branch, consume the producer edge
			// (w.last = p), and then fire nothing — a lost recvfrom wakeup
			// the edge-triggered sweep never re-issues.
			needWake := w.flags.Load()&ring.FlagNeedWakeup != 0
			if p != w.last || force || needWake {
				w.last = p
				if force || needWake {
					m.proc.XSKRecvfrom(w.fd, &m.clk)
					m.Trace.Emit(telemetry.EvMMWakeup, m.clk.Now(), uint64(w.fd), 1)
					w.issued.Add(1)
					fired++
				} else {
					// Producer edge with the need-wakeup flag clear: the
					// kernel is still consuming, so the recvfrom was not
					// needed — the duplicate-wakeup coalescing this watch
					// exists for, now accounted per shard.
					w.suppressed.Add(1)
				}
			}
		case watchUring:
			if p != w.last || force {
				w.last = p
				m.proc.IoUringEnter(w.fd, &m.clk)
				m.Trace.Emit(telemetry.EvMMWakeup, m.clk.Now(), uint64(w.fd), 2)
				w.issued.Add(1)
				fired++
			}
		}
	}
	return fired
}

// RequestBusyPoll asks the monitor to switch every watched XSK to (or
// from) kernel busy-poll on its next sweep. The caller (the tuner, from
// inside the enclave) writes only this process-local flag — the actual
// setsockopt-style syscalls are issued by the MM thread, so a mode
// switch never costs an enclave exit. Untrusted like everything else
// here: a dead or stalled MM delays the switch, which costs cycles,
// never safety.
func (m *Monitor) RequestBusyPoll(on bool) { m.busyDesired.Store(on) }

// BusyPollApplied reports the mode the sweep last applied.
func (m *Monitor) BusyPollApplied() bool { return m.busyApplied.Load() }

// applyMode reconciles the applied wakeup mode with the requested one,
// issuing one busy-poll toggle per distinct XSK fd.
func (m *Monitor) applyMode(watches []*watch) {
	want := m.busyDesired.Load()
	if m.busyApplied.Load() == want {
		return
	}
	seen := make(map[int]bool)
	for _, w := range watches {
		if w.kind == watchUring || seen[w.fd] {
			continue
		}
		seen[w.fd] = true
		m.proc.XSKBusyPoll(w.fd, want, &m.clk)
	}
	m.busyApplied.Store(want)
}

// WatchStat is one watched ring's identity, suppression count, and
// issued-wakeup count.
type WatchStat struct {
	FD         int
	Kind       string
	Suppressed uint64
	Issued     uint64
}

// WatchStats returns a snapshot of every watch's per-shard suppression
// and issued-wakeup counters.
func (m *Monitor) WatchStats() []WatchStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	kinds := map[watchKind]string{watchXskTX: "tx", watchXskFill: "fill", watchUring: "uring"}
	out := make([]WatchStat, 0, len(m.watches))
	for _, w := range m.watches {
		out = append(out, WatchStat{FD: w.fd, Kind: kinds[w.kind], Suppressed: w.suppressed.Load(), Issued: w.issued.Load()})
	}
	return out
}

// Suppressed returns the total wakeups suppressed for one XSK fd (tx
// and fill watches summed) — the per-shard gauge the registry exports
// as mm.xsk<N>.wakeups_suppressed.
func (m *Monitor) Suppressed(fd int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, w := range m.watches {
		if w.fd == fd {
			n += w.suppressed.Load()
		}
	}
	return n
}

// Wakeups returns the total wakeup syscalls actually issued for one fd
// (all its watches summed) — the per-shard gauge the registry exports
// as mm.xsk<N>.wakeups.
func (m *Monitor) Wakeups(fd int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, w := range m.watches {
		if w.fd == fd {
			n += w.issued.Load()
		}
	}
	return n
}

// Close stops the monitor thread.
func (m *Monitor) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}
