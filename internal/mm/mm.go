// Package mm implements the Monitor Module (§4.3): a single dedicated
// thread running *outside* the enclave that watches the shared producer
// indices of the rings where RAKIS is the producer — xFill and xTX of
// every XSK, and iSub of every io_uring — and issues the residual
// syscalls (recvfrom, sendto, io_uring_enter) on the FastPath Modules'
// behalf, so no FM ever pays an enclave exit.
//
// The MM holds no trusted state and touches only untrusted memory; its
// failure affects availability, never integrity (§5: it is outside the
// TCB and excluded from the security analysis).
//
//rakis:role host
package mm

import (
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/hostos"
	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// watchKind selects the wakeup syscall for a ring.
type watchKind int

const (
	watchXskTX watchKind = iota
	watchXskFill
	watchUring
)

type watch struct {
	kind  watchKind
	fd    int
	prod  *atomic.Uint32
	flags *atomic.Uint32
	last  uint32
}

// Monitor is the Monitor Module thread.
type Monitor struct {
	proc *hostos.Proc
	clk  vtime.Clock

	mu      sync.Mutex
	watches []*watch

	// force requests one unconditional sweep: every watch fires its
	// wakeup syscall regardless of edge detection. This is the enclave's
	// exit-free recovery doorbell — a wakeup the host swallowed leaves
	// the producer index unchanged, so the normal edge-triggered sweep
	// would never re-fire it.
	force atomic.Bool

	// Chaos, when non-nil, lets the fault injector stall or kill this
	// thread (§4.3: the MM is untrusted; its death may cost availability
	// only). Set it before Start.
	Chaos *chaos.Injector

	// Trace, when non-nil, receives one wakeup event per fired residual
	// syscall. Set it before Start.
	Trace *telemetry.Buf

	// Counters, when non-nil, records wakeup coalescing: nudges that
	// arrived while a forced sweep was already pending fold into it
	// instead of scheduling another. Set it before Start.
	Counters *vtime.Counters

	stop chan struct{}
	done chan struct{}
	// Interval is the real-time poll period of the monitor loop.
	Interval time.Duration
}

// New creates a Monitor issuing syscalls through the given host process
// (which runs outside the enclave: its syscalls are not exits).
func New(proc *hostos.Proc) *Monitor {
	return &Monitor{
		proc:     proc,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		Interval: 5 * time.Microsecond,
	}
}

// Clock returns the monitor thread's virtual clock.
func (m *Monitor) Clock() *vtime.Clock { return &m.clk }

// WatchXSK registers both producer-side rings of an XSK: xTX (sendto
// wakeups) and xFill (recvfrom wakeups when the kernel flagged
// need-wakeup). The shared cells are read with host role — the MM lives
// outside the enclave.
func (m *Monitor) WatchXSK(space *mem.Space, setup xsk.Setup) error {
	txProd, err := space.Atomic32(mem.RoleHost, setup.TXBase)
	if err != nil {
		return err
	}
	fillProd, err := space.Atomic32(mem.RoleHost, setup.FillBase)
	if err != nil {
		return err
	}
	fillFlags, err := space.Atomic32(mem.RoleHost, setup.FillBase+8)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watches = append(m.watches,
		&watch{kind: watchXskTX, fd: setup.FD, prod: txProd},
		&watch{kind: watchXskFill, fd: setup.FD, prod: fillProd, flags: fillFlags},
	)
	return nil
}

// WatchUring registers an io_uring's iSub producer for io_uring_enter
// wakeups.
func (m *Monitor) WatchUring(space *mem.Space, setup iouring.Setup) error {
	prod, err := space.Atomic32(mem.RoleHost, setup.SubBase)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watches = append(m.watches, &watch{kind: watchUring, fd: setup.FD, prod: prod})
	return nil
}

// Start launches the monitor thread.
func (m *Monitor) Start() {
	go m.run()
}

func (m *Monitor) run() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		if m.Chaos.MMKillNow() {
			// Fault site (c): the MM thread dies. Dead() flips true and
			// the enclave-side watchdog degrades to paid exits.
			return
		}
		if d := m.Chaos.MMStall(); d > 0 {
			time.Sleep(d)
		}
		m.Sweep()
		time.Sleep(m.Interval)
	}
}

// Nudge requests one forced sweep: the next pass issues every watched
// ring's wakeup syscall unconditionally. The enclave writes only this
// process-local flag — no syscall, no exit — making Nudge the free rung
// of the lost-wakeup recovery ladder.
//
// Duplicate pending nudges coalesce: while a forced sweep is already
// scheduled, further nudges (several threads escalating at once, or one
// thread climbing its backoff ladder faster than the sweep period) fold
// into it, so a nudge storm costs one sweep, not one sweep each.
func (m *Monitor) Nudge() {
	if m.force.Swap(true) && m.Counters != nil {
		m.Counters.WakeupsCoalesced.Add(1)
	}
}

// Dead reports whether the monitor thread has terminated (killed by
// chaos or closed). The enclave consults this to decide between nudging
// and paying direct exits.
func (m *Monitor) Dead() bool {
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

// Sweep performs one pass over all watched rings, issuing wakeups where
// producers moved — or on every watch when a Nudge is pending, since a
// swallowed wakeup leaves the producer index exactly where the last
// (lost) firing recorded it. Exported so tests (and the verification
// binary) can drive the monitor deterministically.
func (m *Monitor) Sweep() int {
	force := m.force.Swap(false)
	m.mu.Lock()
	watches := make([]*watch, len(m.watches))
	copy(watches, m.watches)
	m.mu.Unlock()
	fired := 0
	for _, w := range watches {
		p := w.prod.Load()
		switch w.kind {
		case watchXskTX:
			if p != w.last || force {
				w.last = p
				m.proc.XSKSendto(w.fd, &m.clk)
				m.Trace.Emit(telemetry.EvMMWakeup, m.clk.Now(), uint64(w.fd), 0)
				fired++
			}
		case watchXskFill:
			// Single fetch of the shared need-wakeup flag. The old shape
			// read w.flags.Load() in the outer edge test and again in the
			// inner firing test; a flag cleared between the two reads made
			// the pass enter the branch, consume the producer edge
			// (w.last = p), and then fire nothing — a lost recvfrom wakeup
			// the edge-triggered sweep never re-issues.
			needWake := w.flags.Load()&ring.FlagNeedWakeup != 0
			if p != w.last || force || needWake {
				w.last = p
				if force || needWake {
					m.proc.XSKRecvfrom(w.fd, &m.clk)
					m.Trace.Emit(telemetry.EvMMWakeup, m.clk.Now(), uint64(w.fd), 1)
					fired++
				}
			}
		case watchUring:
			if p != w.last || force {
				w.last = p
				m.proc.IoUringEnter(w.fd, &m.clk)
				m.Trace.Emit(telemetry.EvMMWakeup, m.clk.Now(), uint64(w.fd), 2)
				fired++
			}
		}
	}
	return fired
}

// Close stops the monitor thread.
func (m *Monitor) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}
