package fm

// Boundary tests for the submitRetry/submitRetryN backoff ladder: a full
// iSub at every rung, the escalation trigger on each retry, the give-up
// path after submitRetryMax rungs, mid-ladder recovery when the kernel
// consumer frees the ring, and vectored partial success. The "kernel" is
// a bare host-role ring handle driven by the test — no worker, no rescue
// scan — so each scenario is exactly the one constructed.

import (
	"errors"
	"testing"
	"time"

	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/vtime"
)

type ladderFixture struct {
	sp    *mem.Space
	u     *UringFM
	kSub  *ring.Ring // kernel-side consumer handle of iSub
	kCpl  *ring.Ring // kernel-side producer handle of iCompl
	ctr   *vtime.Counters
	clk   vtime.Clock
	nudge int
	kick  int
	dead  bool
}

func newLadderFixture(t *testing.T, entries uint32) *ladderFixture {
	t.Helper()
	f := &ladderFixture{sp: mem.NewSpace(1<<16, 1<<20), ctr: &vtime.Counters{}}
	subB, err := f.sp.Alloc(mem.Untrusted, ring.TotalBytes(entries, iouring.SQEBytes), 64)
	if err != nil {
		t.Fatal(err)
	}
	cplB, err := f.sp.Alloc(mem.Untrusted, ring.TotalBytes(entries, iouring.CQEBytes), 64)
	if err != nil {
		t.Fatal(err)
	}
	r, err := iouring.Attach(iouring.Config{
		Space: f.sp, Setup: iouring.Setup{FD: 3, SubBase: subB, ComplBase: cplB},
		Entries: entries, Counters: f.ctr,
		Waker: iouring.Waker{
			Nudge: func() { f.nudge++ },
			Kick:  func() { f.kick++ },
			Dead:  func() bool { return f.dead },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.u, err = NewUringFM(r, f.sp, nil, 4096); err != nil {
		t.Fatal(err)
	}
	if f.kSub, err = ring.New(ring.Config{
		Space: f.sp, Access: mem.RoleHost, Base: subB,
		Size: entries, EntrySize: iouring.SQEBytes, Side: ring.Consumer,
	}); err != nil {
		t.Fatal(err)
	}
	if f.kCpl, err = ring.New(ring.Config{
		Space: f.sp, Access: mem.RoleHost, Base: cplB,
		Size: entries, EntrySize: iouring.CQEBytes, Side: ring.Producer,
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// fill occupies the whole submission ring with nops nobody consumes.
func (f *ladderFixture) fill(t *testing.T, entries int) {
	t.Helper()
	for i := 0; i < entries; i++ {
		if _, err := f.u.submitRetry(iouring.SQE{Op: iouring.OpNop}, &f.clk); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if f.nudge != 0 {
		t.Fatalf("filling a free ring escalated %d times", f.nudge)
	}
}

// consume retires n SQEs kernel-side without producing completions.
func (f *ladderFixture) consume(t *testing.T, n uint32) {
	t.Helper()
	avail, err := f.kSub.Available()
	if err != nil || avail < n {
		t.Fatalf("kernel sees %d pending (err %v), want >= %d", avail, err, n)
	}
	if err := f.kSub.Release(n); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitRetryGiveUp: the ring stays full at every rung, so the ladder
// must climb all submitRetryMax rungs — escalating on each — and then
// surface ErrFull rather than spin forever.
func TestSubmitRetryGiveUp(t *testing.T) {
	f := newLadderFixture(t, 8)
	f.fill(t, 8)
	start := time.Now()
	_, err := f.u.submitRetry(iouring.SQE{Op: iouring.OpNop}, &f.clk)
	if !errors.Is(err, iouring.ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	if got := f.ctr.SubmitRetries.Load(); got != submitRetryMax {
		t.Fatalf("SubmitRetries = %d, want %d (one per rung)", got, submitRetryMax)
	}
	if f.nudge != submitRetryMax {
		t.Fatalf("escalated %d times, want %d (every rung must escalate)", f.nudge, submitRetryMax)
	}
	if f.kick != 0 {
		t.Fatalf("paid %d kicks with the MM alive", f.kick)
	}
	// The backoff ladder doubles 20us -> 2ms (capped); riding it to the
	// give-up rung takes tens of milliseconds of real sleep.
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("ladder gave up after only %v; backoff rungs not slept", el)
	}
}

// TestSubmitRetryRecoversMidLadder: the kernel consumer frees the ring
// during the Nth escalation, and the ladder must succeed on the next
// rung instead of giving up.
func TestSubmitRetryRecoversMidLadder(t *testing.T) {
	f := newLadderFixture(t, 8)
	f.fill(t, 8)
	recoverAt := 3
	f.u.ring.SetWaker(iouring.Waker{Nudge: func() {
		f.nudge++
		if f.nudge == recoverAt {
			f.consume(t, 4)
		}
	}})
	tok, err := f.u.submitRetry(iouring.SQE{Op: iouring.OpNop}, &f.clk)
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if tok == 0 {
		t.Fatal("recovered submit returned no token")
	}
	if got := f.ctr.SubmitRetries.Load(); got != uint64(recoverAt) {
		t.Fatalf("SubmitRetries = %d, want %d (recovered on rung %d)", got, recoverAt, recoverAt)
	}
	// The submitted SQE must be visible kernel-side as the next pending
	// entry.
	if avail, _ := f.kSub.Available(); avail != 5 { // 4 old + 1 new
		t.Fatalf("kernel sees %d pending, want 5", avail)
	}
}

// TestSubmitRetryKicksWhenMMDead: with the Monitor Module dead the nudge
// rung is pointless; every escalation must pay the direct kick instead.
func TestSubmitRetryKicksWhenMMDead(t *testing.T) {
	f := newLadderFixture(t, 8)
	f.fill(t, 8)
	f.dead = true
	kickAt := 2
	f.u.ring.SetWaker(iouring.Waker{
		Dead: func() bool { return f.dead },
		Kick: func() {
			f.kick++
			if f.kick == kickAt {
				f.consume(t, 2)
			}
		},
		Nudge: func() { f.nudge++ },
	})
	if _, err := f.u.submitRetry(iouring.SQE{Op: iouring.OpNop}, &f.clk); err != nil {
		t.Fatalf("ladder did not recover via kick: %v", err)
	}
	if f.kick != kickAt {
		t.Fatalf("kicked %d times, want %d", f.kick, kickAt)
	}
	if f.nudge != 0 {
		t.Fatalf("nudged a dead MM %d times", f.nudge)
	}
}

// TestSubmitRetryNPartialGiveUp: a batch wider than the ring submits its
// prefix, rides the full ladder for the tail, and reports how far it got
// alongside ErrFull.
func TestSubmitRetryNPartialGiveUp(t *testing.T) {
	f := newLadderFixture(t, 8)
	es := make([]iouring.SQE, 12)
	for i := range es {
		es[i] = iouring.SQE{Op: iouring.OpNop}
	}
	tokens, err := f.u.submitRetryN(es, &f.clk)
	if !errors.Is(err, iouring.ErrFull) {
		t.Fatalf("want ErrFull for the unsubmittable tail, got %v", err)
	}
	if len(tokens) != 8 {
		t.Fatalf("submitted prefix %d, want 8 (the ring size)", len(tokens))
	}
	for i, tok := range tokens {
		if tok == 0 || (i > 0 && tok != tokens[i-1]+1) {
			t.Fatalf("tokens not sequential: %v", tokens)
		}
	}
	if got := f.ctr.SubmitRetries.Load(); got != submitRetryMax {
		t.Fatalf("SubmitRetries = %d, want %d", got, submitRetryMax)
	}
	if avail, _ := f.kSub.Available(); avail != 8 {
		t.Fatalf("kernel sees %d pending, want 8", avail)
	}
}

// TestSubmitRetryNRecoversTail: the whole batch lands once the kernel
// frees space mid-ladder, with one retry rung counted per re-offer.
func TestSubmitRetryNRecoversTail(t *testing.T) {
	f := newLadderFixture(t, 8)
	recoverAt := 2
	f.u.ring.SetWaker(iouring.Waker{Nudge: func() {
		f.nudge++
		if f.nudge == recoverAt {
			f.consume(t, 8)
		}
	}})
	es := make([]iouring.SQE, 12)
	for i := range es {
		es[i] = iouring.SQE{Op: iouring.OpNop}
	}
	tokens, err := f.u.submitRetryN(es, &f.clk)
	if err != nil {
		t.Fatalf("batch did not land after recovery: %v", err)
	}
	if len(tokens) != 12 {
		t.Fatalf("submitted %d of 12", len(tokens))
	}
	if got := f.ctr.SubmitRetries.Load(); got != uint64(recoverAt) {
		t.Fatalf("SubmitRetries = %d, want %d", got, recoverAt)
	}
	// 8 + 4 across two runs, all pending kernel-side minus the 8 consumed.
	if avail, _ := f.kSub.Available(); avail != 4 {
		t.Fatalf("kernel sees %d pending, want 4", avail)
	}
	// Exactly two batch publishes (the prefix run and the tail run).
	if got := f.ctr.BatchCalls.Load(); got != 2 {
		t.Fatalf("BatchCalls = %d, want 2", got)
	}
	if got := f.ctr.BatchedMsgs.Load(); got != 12 {
		t.Fatalf("BatchedMsgs = %d, want 12", got)
	}
}

// TestSubmitRetryNNonRetryableError: a hard error (an SQE naming enclave
// memory) must surface immediately — no rungs, no backoff.
func TestSubmitRetryNNonRetryableError(t *testing.T) {
	f := newLadderFixture(t, 8)
	trusted, err := f.sp.Alloc(mem.Trusted, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	es := []iouring.SQE{{Op: iouring.OpRead, Addr: trusted, Len: 64}}
	tokens, err := f.u.submitRetryN(es, &f.clk)
	if !errors.Is(err, iouring.ErrBufferPlacement) {
		t.Fatalf("want ErrBufferPlacement, got %v", err)
	}
	if len(tokens) != 0 {
		t.Fatalf("tokens for a rejected batch: %v", tokens)
	}
	if got := f.ctr.SubmitRetries.Load(); got != 0 {
		t.Fatalf("retried a non-retryable error %d times", got)
	}
	if f.nudge != 0 {
		t.Fatal("escalated on a non-retryable error")
	}
}
