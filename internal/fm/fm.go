// Package fm implements the FastPath Module orchestration (§4.1): the
// per-XSK receive pump threads and the per-user-thread io_uring FMs with
// their trusted bounce-buffer management.
//
// The XSK pump is the paper's "distinct SGX enclave thread assigned to
// each XSK": it moves incoming frames from untrusted UMem into trusted
// memory and invokes the in-enclave UDP/IP stack, keeping the fill ring
// stocked so the kernel never runs out of RX frames (§4.1 "Quality of
// service assurance").
//
// The io_uring FM owns a bounce buffer in untrusted shared memory: write
// payloads are copied out of the enclave before submission, read results
// are copied in only after the completion passes validation. RAKIS never
// places enclave pointers in SQEs — the inverse of the liburing flaw in
// Appendix A.
//
//rakis:role enclave
package fm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"rakis/internal/iouring"
	"rakis/internal/mem"
	"rakis/internal/netstack"
	"rakis/internal/telemetry"
	"rakis/internal/tuner"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

// Errno converts a negative CQE result into an error.
func Errno(res int32) error {
	if res >= 0 {
		return nil
	}
	switch res {
	case -9:
		return errors.New("fm: EBADF")
	case -14:
		return errors.New("fm: EFAULT")
	case -22:
		return errors.New("fm: EINVAL")
	case -32:
		return errors.New("fm: EPIPE")
	default:
		return fmt.Errorf("fm: errno %d", -res)
	}
}

// CursorOff is the Off value requesting cursor-relative file IO.
const CursorOff = ^uint64(0)

// txNudgeAfter and txKickAfter shape the pump's lost-wakeup ladder for
// xTX, mirroring the io_uring ladder: the Monitor Module sweeps every few
// microseconds, so entries still pending after txNudgeAfter mean the
// sendto wakeup was swallowed. A free nudge re-fires it; only if entries
// remain stranded past txKickAfter does the enclave pay a direct exit.
const (
	txNudgeAfter = 2 * time.Millisecond
	txKickAfter  = 250 * time.Millisecond
)

// XskPump is the dedicated enclave thread driving one XSK.
type XskPump struct {
	sock  *xsk.Socket
	stack *netstack.Stack
	model *vtime.Model

	// copyRX selects the classic copying RX path (frame copied into a
	// trusted buffer before the stack parses it) instead of the default
	// zero-copy path (certified views parsed in place). Set before
	// Start; the differential suite runs both and asserts they differ
	// only in cost.
	copyRX bool

	// waker is the lost-wakeup recovery ladder for the TX direction
	// (xTX is edge-triggered: a swallowed sendto never re-fires on its
	// own). Optional; set before Start.
	waker iouring.Waker

	// tuning, when non-nil, couples the pump to the self-tuning runtime:
	// the advised vector width caps the per-pass drain, and busy-poll
	// mode parks the TX nudge ladder (the kernel worker drains xTX, so a
	// pending entry is not a lost wakeup). A nil state means static
	// full-width behaviour.
	tuning *tuner.State

	// depth, when non-nil, receives one sample per active pass: the
	// certified RX backlog found before draining. This is the trusted
	// queue-depth histogram the tuner steps on.
	depth *telemetry.Histogram

	// shard is the demux shard this pump feeds — its own XSK queue
	// index. RSS steered every frame on this queue with the shard hash,
	// so the stack takes only this shard's locks for the pump's frames.
	shard int

	// moved counts frames this pump has handed to the stack (the
	// per-shard RX throughput rollup).
	moved atomic.Uint64

	clk  vtime.Clock
	stop chan struct{}
	done chan struct{}
}

// NewXskPump wires an XSK to the in-enclave stack.
func NewXskPump(sock *xsk.Socket, stack *netstack.Stack, model *vtime.Model) *XskPump {
	if model == nil {
		model = vtime.Default()
	}
	return &XskPump{
		sock:  sock,
		stack: stack,
		model: model,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Clock returns the pump thread's virtual clock.
func (p *XskPump) Clock() *vtime.Clock { return &p.clk }

// Socket returns the underlying XSK.
func (p *XskPump) Socket() *xsk.Socket { return p.sock }

// SetWaker installs the TX lost-wakeup recovery ladder. Call before
// Start.
func (p *XskPump) SetWaker(w iouring.Waker) { p.waker = w }

// SetCopyRX selects the copying RX path instead of zero-copy views.
// Call before Start.
func (p *XskPump) SetCopyRX(on bool) { p.copyRX = on }

// SetTuning couples the pump to the shared tuner state. Call before
// Start.
func (p *XskPump) SetTuning(st *tuner.State) { p.tuning = st }

// SetDepthHist installs the queue-depth histogram the pump samples on
// every active pass. Call before Start.
func (p *XskPump) SetDepthHist(h *telemetry.Histogram) { p.depth = h }

// SetShard binds the pump to its demux shard (its XSK queue index).
// Call before Start.
func (p *XskPump) SetShard(i int) { p.shard = i }

// Moved returns the number of frames the pump has fed into the stack.
func (p *XskPump) Moved() uint64 { return p.moved.Load() }

// Start launches the pump thread.
func (p *XskPump) Start() {
	go p.run()
}

// pumpBatchMax caps how many RX descriptors the pump consumes per ring
// pass. Batching is opportunistic: the pump drains what is queued in one
// certified run and never waits for a batch to fill.
const pumpBatchMax = 32

func (p *XskPump) run() {
	defer close(p.done)
	p.sock.Refill(&p.clk)
	idle := 0
	var stallSince, nudgeAt, kickAt time.Time
	nudgeBackoff := txNudgeAfter
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		moved := p.pumpOnce()
		// Service this shard's TCP retransmission wheel on the pump's
		// clock: due retransmits are charged here and leave on this
		// shard's flow-affine TX lane. A single atomic load when idle.
		p.stack.TickTCP(&p.clk, p.shard)
		if moved == 0 {
			p.sock.Reap(&p.clk)
			p.sock.Refill(&p.clk)
			idle++
			if idle > 16 {
				time.Sleep(20 * time.Microsecond)
			}
			// TX recovery ladder: entries stranded on xTX mean a lost
			// sendto wakeup (edge-triggered — nothing re-fires it). In
			// busy-poll mode the ladder parks: the kernel worker drains
			// xTX on its own, so pending entries are just in flight.
			if p.tuning.BusyPoll() {
				stallSince = time.Time{}
			} else if p.waker.Nudge != nil || p.waker.Kick != nil {
				if p.sock.TxPending() {
					now := time.Now()
					if stallSince.IsZero() {
						stallSince = now
						nudgeBackoff = txNudgeAfter
						nudgeAt = now.Add(nudgeBackoff)
						kickAt = now.Add(txKickAfter)
					}
					dead := p.waker.Dead != nil && p.waker.Dead()
					switch {
					case p.waker.Kick != nil && (dead || now.After(kickAt)):
						p.waker.Kick()
						p.retry()
						kickAt = now.Add(txKickAfter)
					case p.waker.Nudge != nil && !dead && now.After(nudgeAt):
						p.waker.Nudge()
						p.retry()
						nudgeBackoff *= 2
						nudgeAt = now.Add(nudgeBackoff)
					}
				} else {
					stallSince = time.Time{}
				}
			}
			continue
		}
		idle = 0
		p.sock.Refill(&p.clk)
	}
}

// pumpOnce drains one certified RX run into the stack and returns the
// number of frames moved. The default zero-copy path hands each frame to
// the stack as a certified in-place view; the copying path materializes
// a trusted payload first (the pre-zero-copy shape, kept as the
// differential baseline and the CopyRX ablation).
func (p *XskPump) pumpOnce() int {
	if q := p.sock.RxQueued(); q > 0 {
		p.depth.Observe(uint64(q))
	}
	width := pumpBatchMax
	if p.tuning != nil {
		if b := p.tuning.Batch(); b < width {
			width = b
		}
	}
	if p.copyRX {
		payloads := p.sock.RecvBatch(&p.clk, width)
		for _, payload := range payloads {
			p.clk.Advance(p.model.FMPerPacket)
			p.stack.InputShard(payload, &p.clk, p.shard)
		}
		p.moved.Add(uint64(len(payloads)))
		return len(payloads)
	}
	views := p.sock.RecvViews(&p.clk, width)
	for i := range views {
		p.clk.Advance(p.model.FMPerPacket)
		p.stack.InputViewShard(views[i], &p.clk, p.shard)
	}
	p.moved.Add(uint64(len(views)))
	return len(views)
}

// retry records one rung of the recovery ladder.
func (p *XskPump) retry() {
	if c := p.sock.Counters(); c != nil {
		c.WakeupRetries.Add(1)
	}
}

// Close stops the pump and waits for it to exit.
func (p *XskPump) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

// UringFM is one user thread's io_uring FastPath Module. It is not safe
// for concurrent use: RAKIS gives every user thread its own instance to
// avoid contention (§4.1).
type UringFM struct {
	ring  *iouring.Ring
	space *mem.Space
	model *vtime.Model

	bounce    mem.Addr
	bounceLen int
	trace     *telemetry.Buf
}

// NewUringFM attaches the FM to a validated ring and allocates its
// untrusted bounce buffer.
func NewUringFM(ring *iouring.Ring, space *mem.Space, model *vtime.Model, bounceLen int) (*UringFM, error) {
	if model == nil {
		model = vtime.Default()
	}
	if bounceLen <= 0 {
		bounceLen = 256 * 1024
	}
	addr, err := space.Alloc(mem.Untrusted, uint64(bounceLen), 64)
	if err != nil {
		return nil, err
	}
	return &UringFM{
		ring:   ring,
		space:  space,
		model:  model,
		bounce: addr, bounceLen: bounceLen,
	}, nil
}

// Ring returns the underlying certified ring pair.
func (u *UringFM) Ring() *iouring.Ring { return u.ring }

// SetTrace routes this FM's boundary-copy events (and its ring's
// produce/refusal/completion events) to the given trace buffer.
func (u *UringFM) SetTrace(b *telemetry.Buf) {
	u.trace = b
	u.ring.SetTrace(b)
}

// copied charges one bounce-buffer crossing (dir 0 = out of the
// enclave, 1 = into it) and emits the copy event.
func (u *UringFM) copied(n int, dir uint64, clk *vtime.Clock) {
	clk.Charge(vtime.CompCopy, vtime.Bytes(u.model.BoundaryCopyPerByte, n))
	u.trace.Emit(telemetry.EvBoundaryCopy, clk.Now(), uint64(n), dir)
}

// submitRetryMax bounds how often submitWait retries a full submission
// ring before surfacing ErrFull: the kernel consuming slowly (or a lost
// wakeup stalling consumption entirely) is an availability problem the
// FM rides out with bounded backoff, not an error on the first try.
const submitRetryMax = 25

// submitRetry submits one SQE, riding out a full iSub with doubling
// backoff: each retry drains any parked completions (emptying the
// outstanding set is what re-enables the ring's cons==prod
// reconciliation) and escalates through the waker so a lost consumption
// wakeup gets re-issued. A full ring is also how a scribbled consumer
// cell presents — the refused read pins Free at its last trusted value —
// so the retries double as the window in which quarantine-and-resync
// heals the cell.
func (u *UringFM) submitRetry(e iouring.SQE, clk *vtime.Clock) (uint64, error) {
	backoff := 20 * time.Microsecond
	for attempt := 0; ; attempt++ {
		tok, err := u.ring.Submit(e, clk)
		if err == nil || !errors.Is(err, iouring.ErrFull) || attempt >= submitRetryMax {
			return tok, err
		}
		u.ring.Drain(clk)
		u.ring.Escalate()
		if c := u.ring.Counters(); c != nil {
			c.SubmitRetries.Add(1)
		}
		time.Sleep(backoff)
		if backoff < 2*time.Millisecond {
			backoff *= 2
		}
	}
}

// submitRetryN is the vectored form of submitRetry: it pushes the whole
// batch through SubmitN, re-offering the unsubmitted tail through the
// same drain/escalate/backoff ladder when the ring fills mid-batch. It
// returns the tokens for the submitted prefix; the error is non-nil only
// when the ladder gave up (ErrFull) or a non-retryable error struck, in
// which case len(tokens) tells the caller how far the batch got.
func (u *UringFM) submitRetryN(es []iouring.SQE, clk *vtime.Clock) ([]uint64, error) {
	if len(es) == 0 {
		return nil, nil
	}
	tokens := make([]uint64, 0, len(es))
	backoff := 20 * time.Microsecond
	for attempt := 0; ; attempt++ {
		got, err := u.ring.SubmitN(es[len(tokens):], clk)
		tokens = append(tokens, got...)
		if len(tokens) == len(es) {
			return tokens, nil
		}
		if err != nil && !errors.Is(err, iouring.ErrFull) {
			return tokens, err
		}
		if attempt >= submitRetryMax {
			return tokens, iouring.ErrFull
		}
		u.ring.Drain(clk)
		u.ring.Escalate()
		if c := u.ring.Counters(); c != nil {
			c.SubmitRetries.Add(1)
		}
		time.Sleep(backoff)
		if backoff < 2*time.Millisecond {
			backoff *= 2
		}
	}
}

// submitWait is the synchronous submit-then-wait core.
func (u *UringFM) submitWait(e iouring.SQE, clk *vtime.Clock) (int32, error) {
	tok, err := u.submitRetry(e, clk)
	if err != nil {
		return 0, err
	}
	return u.ring.Wait(tok, clk)
}

// bounceView returns the enclave's view of the first n bounce bytes.
// The bounce buffer lives in shared memory, so the view is a live alias
// the host can rewrite at any instant: callers must cross it exactly
// once (one copy in or one copy out) and never parse values from it.
//
//rakis:untrusted
func (u *UringFM) bounceView(n int) ([]byte, error) {
	return u.space.Bytes(mem.RoleEnclave, u.bounce, uint64(n))
}

// ReadAt reads into trusted p through the bounce buffer. off == CursorOff
// reads at the file cursor.
func (u *UringFM) ReadAt(fd int, p []byte, off uint64, clk *vtime.Clock) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := len(p)
		if chunk > u.bounceLen {
			chunk = u.bounceLen
		}
		res, err := u.submitWait(iouring.SQE{
			Op: iouring.OpRead, FD: int32(fd), Off: off,
			Addr: u.bounce, Len: uint32(chunk),
		}, clk)
		if err != nil {
			return total, err
		}
		if res < 0 {
			return total, Errno(res)
		}
		n := int(res)
		if n > 0 {
			src, err := u.bounceView(n)
			if err != nil {
				return total, err
			}
			copy(p, src[:n])
			u.copied(n, 1, clk)
		}
		total += n
		if n < chunk {
			break // EOF
		}
		p = p[n:]
		if off != CursorOff {
			off += uint64(n)
		}
	}
	return total, nil
}

// WriteAt writes trusted p through the bounce buffer. off == CursorOff
// writes at the file cursor.
func (u *UringFM) WriteAt(fd int, p []byte, off uint64, clk *vtime.Clock) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := len(p)
		if chunk > u.bounceLen {
			chunk = u.bounceLen
		}
		dst, err := u.bounceView(chunk)
		if err != nil {
			return total, err
		}
		copy(dst, p[:chunk])
		u.copied(chunk, 0, clk)
		res, err := u.submitWait(iouring.SQE{
			Op: iouring.OpWrite, FD: int32(fd), Off: off,
			Addr: u.bounce, Len: uint32(chunk),
		}, clk)
		if err != nil {
			return total, err
		}
		if res < 0 {
			return total, Errno(res)
		}
		n := int(res)
		total += n
		if n < chunk {
			break
		}
		p = p[n:]
		if off != CursorOff {
			off += uint64(n)
		}
	}
	return total, nil
}

// Send transmits trusted p on a kernel TCP socket.
func (u *UringFM) Send(fd int, p []byte, clk *vtime.Clock) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := len(p)
		if chunk > u.bounceLen {
			chunk = u.bounceLen
		}
		dst, err := u.bounceView(chunk)
		if err != nil {
			return total, err
		}
		copy(dst, p[:chunk])
		u.copied(chunk, 0, clk)
		res, err := u.submitWait(iouring.SQE{
			Op: iouring.OpSend, FD: int32(fd),
			Addr: u.bounce, Len: uint32(chunk),
		}, clk)
		if err != nil {
			return total, err
		}
		if res < 0 {
			return total, Errno(res)
		}
		total += int(res)
		p = p[res:]
	}
	return total, nil
}

// Recv receives into trusted p from a kernel TCP socket.
func (u *UringFM) Recv(fd int, p []byte, clk *vtime.Clock) (int, error) {
	chunk := len(p)
	if chunk > u.bounceLen {
		chunk = u.bounceLen
	}
	res, err := u.submitWait(iouring.SQE{
		Op: iouring.OpRecv, FD: int32(fd),
		Addr: u.bounce, Len: uint32(chunk),
	}, clk)
	if err != nil {
		return 0, err
	}
	if res < 0 {
		return 0, Errno(res)
	}
	n := int(res)
	if n > 0 {
		src, err := u.bounceView(n)
		if err != nil {
			return 0, err
		}
		copy(p, src[:n])
		u.copied(n, 1, clk)
	}
	return n, nil
}

// Fsync flushes a file.
func (u *UringFM) Fsync(fd int, clk *vtime.Clock) error {
	res, err := u.submitWait(iouring.SQE{Op: iouring.OpFsync, FD: int32(fd)}, clk)
	if err != nil {
		return err
	}
	return Errno(res)
}

// SubmitPoll arms an asynchronous poll on a host descriptor and returns
// its token; the API submodule aggregates it with enclave-side sources.
func (u *UringFM) SubmitPoll(fd int, events uint32, clk *vtime.Clock) (uint64, error) {
	return u.submitRetry(iouring.SQE{
		Op: iouring.OpPollAdd, FD: int32(fd), OpFlags: events,
	}, clk)
}

// PollReq names one descriptor to arm in a batched SubmitPollN.
type PollReq struct {
	FD     int
	Events uint32
}

// SubmitPollN arms asynchronous polls for every request in one batched
// submission run (one producer publish, at most one MM wakeup) and
// returns their tokens in request order. Partial arming surfaces as a
// short token slice plus the error that stopped it.
func (u *UringFM) SubmitPollN(reqs []PollReq, clk *vtime.Clock) ([]uint64, error) {
	es := make([]iouring.SQE, len(reqs))
	for i, q := range reqs {
		es[i] = iouring.SQE{Op: iouring.OpPollAdd, FD: int32(q.FD), OpFlags: q.Events}
	}
	return u.submitRetryN(es, clk)
}

// TryPoll checks an armed poll without blocking.
func (u *UringFM) TryPoll(token uint64, clk *vtime.Clock) (int32, bool, error) {
	return u.ring.TryWait(token, clk)
}

// Escalate forces a consumption wakeup for completions the kernel may
// have produced while a scribbled index cell hides them. The blocking
// Wait path rides its own nudge→kick ladder, but polls parked in the
// API submodule's aggregation loop only ever TryPoll — an idle kernel
// would never republish the cell and the loop would spin forever, so
// the aggregation escalates explicitly after a stall.
func (u *UringFM) Escalate() {
	u.ring.Escalate()
	if c := u.ring.Counters(); c != nil {
		c.WakeupRetries.Add(1)
	}
}

// CancelPoll abandons an armed poll: a poll_remove operation cancels the
// kernel-side wait, and both completions are silently discarded.
func (u *UringFM) CancelPoll(token uint64, clk *vtime.Clock) {
	if rm, err := u.ring.Submit(iouring.SQE{Op: iouring.OpPollRemove, Off: token}, clk); err == nil {
		u.ring.Forget(rm)
	}
	u.ring.Forget(token)
}
