package fm

import (
	"testing"
	"time"

	"rakis/internal/mem"
	"rakis/internal/netstack"
	"rakis/internal/ring"
	"rakis/internal/vtime"
	"rakis/internal/xsk"
)

func TestErrno(t *testing.T) {
	if Errno(0) != nil || Errno(42) != nil {
		t.Fatal("non-negative results are not errors")
	}
	for _, res := range []int32{-9, -14, -22, -32, -99} {
		if Errno(res) == nil {
			t.Fatalf("res %d must be an error", res)
		}
	}
}

// sinkStack builds a trimmed stack whose output is discarded.
type sinkLink struct{}

func (sinkLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) { return clk.Now(), nil }
func (sinkLink) MAC() [6]byte                                            { return [6]byte{2, 0, 0, 0, 0, 5} }
func (sinkLink) MTU() int                                                { return 1500 }

// TestXskPumpDeliversToStack drives the pump with a hand-operated kernel
// side: frames placed via the fill/RX rings must surface in the stack's
// UDP socket, and the consumed frames must be recycled.
func TestXskPumpDeliversToStack(t *testing.T) {
	sp := mem.NewSpace(1<<20, 1<<22)
	alloc := func(n uint64) mem.Addr {
		a, err := sp.Alloc(mem.Untrusted, n, 64)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	setup := xsk.Setup{
		FD:        5,
		FillBase:  alloc(ring.TotalBytes(64, xsk.FillEntryBytes)),
		RXBase:    alloc(ring.TotalBytes(64, xsk.DescBytes)),
		TXBase:    alloc(ring.TotalBytes(64, xsk.DescBytes)),
		ComplBase: alloc(ring.TotalBytes(64, xsk.FillEntryBytes)),
		UMemBase:  alloc(2048 * 32),
	}
	sock, err := xsk.Attach(xsk.Config{Space: sp, Setup: setup, RingSize: 64, FrameSize: 2048, FrameCount: 32})
	if err != nil {
		t.Fatal(err)
	}
	stack, err := netstack.New(netstack.Config{Name: "encl", Dev: sinkLink{}, IP: netstack.IP4{10, 9, 9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	usock, err := stack.UDPBind(4242)
	if err != nil {
		t.Fatal(err)
	}

	pump := NewXskPump(sock, stack, nil)
	pump.Start()
	defer pump.Close()

	// Kernel side: wait for fill entries, then deliver a frame.
	kFill, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: setup.FillBase,
		Size: 64, EntrySize: xsk.FillEntryBytes, Side: ring.Consumer})
	kRX, _ := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: setup.RXBase,
		Size: 64, EntrySize: xsk.DescBytes, Side: ring.Producer})

	deadline := time.Now().Add(2 * time.Second)
	for {
		if avail, _ := kFill.Available(); avail > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pump never stocked the fill ring")
		}
		time.Sleep(time.Millisecond)
	}
	off, _ := kFill.ReadU64(0)
	kFill.Release(1)

	// Write a UDP frame into the UMem slot and publish the descriptor.
	udp := make([]byte, 8+5)
	udp[0], udp[1] = 0x30, 0x39 // sport 12345
	udp[2], udp[3] = 0x10, 0x92 // dport 4242
	udp[4], udp[5] = 0, 13
	copy(udp[8:], "hello")
	ip := netstack.MarshalIPv4(netstack.IPv4Header{TTL: 64, Proto: netstack.ProtoUDP,
		Src: netstack.IP4{10, 0, 0, 1}, Dst: netstack.IP4{10, 9, 9, 9}}, udp)
	frame := netstack.MarshalEth(netstack.EthHeader{Dst: sinkLink{}.MAC(),
		Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: netstack.EtherTypeIPv4}, ip)
	dst, err := sp.Bytes(mem.RoleHost, setup.UMemBase+mem.Addr(off), uint64(len(frame)))
	if err != nil {
		t.Fatal(err)
	}
	copy(dst, frame)
	slot, _ := kRX.SlotBytes(0)
	xsk.PutDesc(slot, xsk.Desc{Addr: off, Len: uint32(len(frame))})
	kRX.Submit(1, 777)

	var clk vtime.Clock
	d, err := usock.RecvTimeout(&clk, 2*time.Second)
	if err != nil || string(d.Bytes()) != "hello" {
		t.Fatalf("pump delivery = %q, %v", d.Bytes(), err)
	}
	if d.Stamp < 777 {
		t.Fatalf("stamp %d must include the RX submit time", d.Stamp)
	}
	if clk.Now() == 0 {
		t.Fatal("receiver clock must advance")
	}
	// The consumed frame returns to the pool and the fill ring is
	// restocked for the kernel.
	deadline = time.Now().Add(time.Second)
	for {
		if avail, _ := kFill.Available(); avail > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fill ring never restocked")
		}
		time.Sleep(time.Millisecond)
	}
}
