package mem

import (
	"errors"
	"testing"
)

func TestSnapshotDecodes(t *testing.T) {
	sp := NewSpace(1<<16, 1<<16)
	a, err := sp.Alloc(Untrusted, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.PutU32(RoleEnclave, a, 0x11223344); err != nil {
		t.Fatal(err)
	}
	if err := sp.PutU64(RoleEnclave, a+8, 0x8877665544332211); err != nil {
		t.Fatal(err)
	}
	s, err := sp.Snapshot(RoleEnclave, a, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 16 {
		t.Fatalf("len = %d, want 16", s.Len())
	}
	if got := s.U32(0); got != 0x11223344 {
		t.Fatalf("U32 = %#x", got)
	}
	if got := s.U64(8); got != 0x8877665544332211 {
		t.Fatalf("U64 = %#x", got)
	}
}

// TestSnapshotFrozenAgainstScribble is the core single-read property: a
// host rewriting the live location after the snapshot cannot change
// what the enclave decodes.
func TestSnapshotFrozenAgainstScribble(t *testing.T) {
	sp := NewSpace(1<<16, 1<<16)
	a, err := sp.Alloc(Untrusted, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.PutU32(RoleEnclave, a, 64); err != nil {
		t.Fatal(err)
	}
	s, err := sp.Snapshot(RoleEnclave, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Host scribbles the live word after the fetch.
	if err := sp.PutU32(RoleHost, a, 1<<30); err != nil {
		t.Fatal(err)
	}
	if got := s.U32(0); got != 64 {
		t.Fatalf("snapshot changed under scribble: U32 = %d, want 64", got)
	}
	// The live location really did change — the snapshot diverged from
	// it, which is the point.
	if live, _ := sp.U32(RoleEnclave, a); live != 1<<30 {
		t.Fatalf("live word = %d, want %d", live, 1<<30)
	}
}

func TestSnapshotBoundsError(t *testing.T) {
	sp := NewSpace(1<<16, 1<<16)
	end := UntrustedBase + Addr(1<<16)
	if _, err := sp.Snapshot(RoleEnclave, end-4, 64); !errors.Is(err, ErrBounds) {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
}
