package mem

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrStaleView reports an access through a view whose frame has been
// released or respun since certification.
var ErrStaleView = errors.New("mem: stale view")

// ViewOwner releases a certified frame view back to its allocator. The
// (idx, gen) pair names the exact certification the view was minted
// under; a release with a stale generation is a no-op error, which makes
// double-release idempotent and use-after-splice detectable.
type ViewOwner interface {
	ReleaseView(idx, gen uint32) error
}

// View is a certified window over one untrusted UMem frame. It is the
// zero-copy analogue of the trusted bounce buffer: the frame was
// validated (bounds + ownership, Table 2) before the view was minted,
// but the bytes it exposes still live in shared memory a hostile host
// can scribble concurrently. The single-read discipline therefore
// applies to every access: multi-use header fields must be frozen with
// Snap before any decision is taken on them, and the payload may be
// traversed at most once per consumer (checksum, copy-out).
//
// The generation cell ties the view to its certification: the allocator
// bumps the cell when the frame is released or respun onto TX, after
// which Live reports false and accessors refuse.
type View struct {
	b     []byte
	off   uint64
	idx   uint32
	gen   uint32
	cell  *atomic.Uint32
	owner ViewOwner
}

// NewView wraps an untrusted byte window as a certified view. The
// window b must already be the role-checked alias for the frame
// (obtained via Space.Bytes under the enclave role); off is the frame's
// UMem offset, idx its frame index, gen the validator generation at
// certification time, and cell the allocator's generation cell for the
// frame.
func NewView(b []byte, off uint64, idx, gen uint32, cell *atomic.Uint32, owner ViewOwner) View {
	return View{b: b, off: off, idx: idx, gen: gen, cell: cell, owner: owner}
}

// Len returns the certified length of the view in bytes.
func (v *View) Len() int { return len(v.b) }

// Offset returns the view's UMem offset (frame base plus headroom).
func (v *View) Offset() uint64 { return v.off }

// Frame returns the UMem frame index backing the view.
func (v *View) Frame() uint32 { return v.idx }

// Gen returns the validator generation the view was certified under.
func (v *View) Gen() uint32 { return v.gen }

// Owner returns the allocator that minted the view (nil for derived or
// synthetic views).
func (v *View) Owner() ViewOwner { return v.owner }

// Live reports whether the view's certification is still current: the
// frame has not been released or respun since the view was minted.
func (v *View) Live() bool { return v.cell == nil || v.cell.Load() == v.gen }

// Snap freezes n bytes at off into trusted storage and returns the
// frozen copy. This is the one sanctioned way to read a header field
// that feeds a decision: the copy is taken once, so later reads see the
// frozen value no matter what the host scribbles afterwards.
//
//rakis:untrusted
//rakis:snapshot
func (v *View) Snap(off, n int) (Snap, error) {
	if !v.Live() {
		return nil, fmt.Errorf("%w: frame %d gen %d", ErrStaleView, v.idx, v.gen)
	}
	if off < 0 || n < 0 || off+n > len(v.b) {
		return nil, fmt.Errorf("mem: snap [%d:%d) outside view of %d bytes", off, off+n, len(v.b))
	}
	s := make(Snap, n)
	copy(s, v.b[off:off+n])
	return s, nil
}

// CopyOut copies the view's bytes starting at off into dst, returning
// the byte count. This is the explicit one-shot copy at the app-payload
// boundary: the only full traversal of the untrusted bytes, and the
// caller charges it as the single boundary copy.
//
//rakis:untrusted
func (v *View) CopyOut(dst []byte, off int) (int, error) {
	if !v.Live() {
		return 0, fmt.Errorf("%w: frame %d gen %d", ErrStaleView, v.idx, v.gen)
	}
	if off < 0 || off > len(v.b) {
		return 0, fmt.Errorf("mem: copy-out offset %d outside view of %d bytes", off, len(v.b))
	}
	return copy(dst, v.b[off:]), nil
}

// CopyIn writes src into the view starting at off. Writes to untrusted
// memory are always safe under the single-read discipline (the host can
// already write there); the splice path uses this to apply the rewritten
// header before re-queuing the frame.
//
//rakis:untrusted
func (v *View) CopyIn(off int, src []byte) (int, error) {
	if !v.Live() {
		return 0, fmt.Errorf("%w: frame %d gen %d", ErrStaleView, v.idx, v.gen)
	}
	if off < 0 || off+len(src) > len(v.b) {
		return 0, fmt.Errorf("mem: copy-in [%d:%d) outside view of %d bytes", off, off+len(src), len(v.b))
	}
	return copy(v.b[off:], src), nil
}

// Range returns the live subslice [off, off+n). The caller owns the
// single-read obligation: the slice may be traversed at most once
// (checksum pass, copy source) and no decision may be taken on bytes
// read through it — decisions come from Snap.
//
//rakis:untrusted
func (v *View) Range(off, n int) ([]byte, error) {
	if !v.Live() {
		return nil, fmt.Errorf("%w: frame %d gen %d", ErrStaleView, v.idx, v.gen)
	}
	if off < 0 || n < 0 || off+n > len(v.b) {
		return nil, fmt.Errorf("mem: range [%d:%d) outside view of %d bytes", off, off+n, len(v.b))
	}
	return v.b[off : off+n], nil
}

// Slice derives a subview over [off, off+n) sharing the parent's
// certification. The derived view releases the same frame, so exactly
// one of parent and child may be released.
func (v *View) Slice(off, n int) (View, error) {
	if off < 0 || n < 0 || off+n > len(v.b) {
		return View{}, fmt.Errorf("mem: subview [%d:%d) outside view of %d bytes", off, off+n, len(v.b))
	}
	return View{
		b:     v.b[off : off+n],
		off:   v.off + uint64(off),
		idx:   v.idx,
		gen:   v.gen,
		cell:  v.cell,
		owner: v.owner,
	}, nil
}

// Release returns the frame to its allocator. Safe to call more than
// once: the generation check makes the second release a reported no-op.
func (v *View) Release() error {
	if v.owner == nil {
		return nil
	}
	return v.owner.ReleaseView(v.idx, v.gen)
}
