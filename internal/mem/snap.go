package mem

// Snap is a frozen copy of untrusted shared memory: the bytes were
// fetched exactly once into freshly allocated trusted storage (an
// ordinary Go heap slice, the enclave-memory analogue in this
// simulation) and can never change underneath the enclave afterwards.
//
// The type exists to make the single-read discipline checkable: the
// doublefetch analyzer treats a //rakis:snapshot call as the one
// permitted fetch of a location, and anything decoded *from the Snap* —
// however many times — is a read of trusted memory, not a second fetch.
// Contrast Space.Bytes, which returns a live alias of the shared
// segment: every read through that alias is another fetch the host can
// race.
//
// A Snap's contents are still host-chosen (the host wrote them before
// the fetch), so decoded values remain tainted until they pass a
// //rakis:validator function — snapshotting defeats TOCTOU, not bad
// input.
type Snap []byte

// Len returns the number of frozen bytes.
func (s Snap) Len() int { return len(s) }

// U32 decodes the little-endian uint32 at byte offset off. The value is
// stable across calls — the defining property of a snapshot — but still
// host-chosen and therefore unvalidated.
//
//rakis:untrusted
//rakis:snapshot
func (s Snap) U32(off int) uint32 {
	b := s[off : off+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 decodes the little-endian uint64 at byte offset off, with the
// same stability/taint contract as U32.
//
//rakis:untrusted
//rakis:snapshot
func (s Snap) U64(off int) uint64 {
	b := s[off : off+8]
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Snapshot fetches the n bytes at a into a fresh trusted buffer in one
// pass and returns them as a Snap. It is the canonical single fetch of
// an untrusted location: validate the Snap's fields, then use those same
// fields — the host cannot change them between the two.
//
//rakis:untrusted
//rakis:snapshot
func (sp *Space) Snapshot(role Role, a Addr, n uint64) (Snap, error) {
	src, err := sp.Bytes(role, a, n)
	if err != nil {
		return nil, err
	}
	out := make(Snap, n)
	copy(out, src)
	return out, nil
}
