package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	return NewSpace(1<<20, 1<<20)
}

func TestAllocBasic(t *testing.T) {
	sp := newTestSpace(t)
	a, err := sp.Alloc(Untrusted, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.InUntrusted(a, 128) {
		t.Fatalf("allocation %#x not in untrusted segment", uint64(a))
	}
	b, err := sp.Alloc(Untrusted, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if Overlaps(a, 128, b, 64) {
		t.Fatalf("allocations overlap: %#x/%d and %#x/%d", uint64(a), 128, uint64(b), 64)
	}
}

func TestAllocAlignment(t *testing.T) {
	sp := newTestSpace(t)
	if _, err := sp.Alloc(Trusted, 3, 0); err != nil {
		t.Fatal(err)
	}
	a, err := sp.Alloc(Trusted, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a)%64 != 0 {
		t.Fatalf("aligned alloc at %#x, want 64-byte alignment", uint64(a))
	}
}

func TestAllocExhaustion(t *testing.T) {
	sp := NewSpace(64, 64)
	if _, err := sp.Alloc(Trusted, 65, 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("oversized alloc error = %v, want ErrNoSpace", err)
	}
	if _, err := sp.Alloc(Trusted, 64, 1); err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	if _, err := sp.Alloc(Trusted, 1, 1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-exhaustion alloc error = %v, want ErrNoSpace", err)
	}
}

func TestHostCannotTouchEnclaveMemory(t *testing.T) {
	sp := newTestSpace(t)
	a, err := sp.Alloc(Trusted, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Bytes(RoleHost, a, 64); !errors.Is(err, ErrProtected) {
		t.Fatalf("host read of trusted memory error = %v, want ErrProtected", err)
	}
	if err := sp.PutU32(RoleHost, a, 0xdead); !errors.Is(err, ErrProtected) {
		t.Fatalf("host write of trusted memory error = %v, want ErrProtected", err)
	}
	if _, err := sp.Atomic32(RoleHost, a); !errors.Is(err, ErrProtected) {
		t.Fatalf("host atomic on trusted memory error = %v, want ErrProtected", err)
	}
	// The enclave itself can access its own memory.
	if _, err := sp.Bytes(RoleEnclave, a, 64); err != nil {
		t.Fatalf("enclave read of trusted memory failed: %v", err)
	}
}

func TestEnclaveCanTouchUntrusted(t *testing.T) {
	sp := newTestSpace(t)
	a, err := sp.Alloc(Untrusted, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.PutU64(RoleEnclave, a, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	// The host sees the same bytes: it is shared memory.
	v, err := sp.U64(RoleHost, a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("host read %#x, want the enclave-written value", v)
	}
}

func TestBoundsChecks(t *testing.T) {
	sp := newTestSpace(t)
	a, _ := sp.Alloc(Untrusted, 16, 0)
	if _, err := sp.Bytes(RoleHost, a, 1<<21); !errors.Is(err, ErrBounds) {
		t.Fatalf("oversized read error = %v, want ErrBounds", err)
	}
	if _, err := sp.Bytes(RoleHost, Addr(0x42), 4); !errors.Is(err, ErrBounds) {
		t.Fatalf("unmapped read error = %v, want ErrBounds", err)
	}
	// A range straddling the end of the untrusted segment must fail even
	// if its start is valid.
	end := UntrustedBase + Addr(1<<20) - 4
	if _, err := sp.Bytes(RoleHost, end, 8); !errors.Is(err, ErrBounds) {
		t.Fatalf("straddling read error = %v, want ErrBounds", err)
	}
}

func TestU32RoundTrip(t *testing.T) {
	sp := newTestSpace(t)
	a, _ := sp.Alloc(Untrusted, 8, 4)
	f := func(v uint32) bool {
		if err := sp.PutU32(RoleEnclave, a, v); err != nil {
			return false
		}
		got, err := sp.U32(RoleHost, a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU64RoundTrip(t *testing.T) {
	sp := newTestSpace(t)
	a, _ := sp.Alloc(Untrusted, 8, 8)
	f := func(v uint64) bool {
		if err := sp.PutU64(RoleHost, a, v); err != nil {
			return false
		}
		got, err := sp.U64(RoleEnclave, a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtomic32Shared(t *testing.T) {
	sp := newTestSpace(t)
	a, _ := sp.Alloc(Untrusted, 4, 4)
	host, err := sp.Atomic32(RoleHost, a)
	if err != nil {
		t.Fatal(err)
	}
	encl, err := sp.Atomic32(RoleEnclave, a)
	if err != nil {
		t.Fatal(err)
	}
	if host != encl {
		t.Fatal("both roles must receive the same atomic cell")
	}
	host.Store(7)
	if encl.Load() != 7 {
		t.Fatal("store through one handle not visible through the other")
	}
}

func TestAtomic32Unaligned(t *testing.T) {
	sp := newTestSpace(t)
	a, _ := sp.Alloc(Untrusted, 8, 4)
	if _, err := sp.Atomic32(RoleHost, a+1); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned atomic error = %v, want ErrUnaligned", err)
	}
}

func TestStampCellShared(t *testing.T) {
	sp := newTestSpace(t)
	a, _ := sp.Alloc(Untrusted, 16, 0)
	s1 := sp.StampCell(a)
	s2 := sp.StampCell(a)
	if s1 != s2 {
		t.Fatal("StampCell must return the same cell for the same address")
	}
	s1.Raise(42)
	if s2.Load() != 42 {
		t.Fatal("stamp written through one handle not visible through the other")
	}
}

func TestInUntrustedInTrusted(t *testing.T) {
	sp := newTestSpace(t)
	u, _ := sp.Alloc(Untrusted, 32, 0)
	tr, _ := sp.Alloc(Trusted, 32, 0)
	if !sp.InUntrusted(u, 32) || sp.InTrusted(u, 32) {
		t.Fatal("untrusted allocation misclassified")
	}
	if !sp.InTrusted(tr, 32) || sp.InUntrusted(tr, 32) {
		t.Fatal("trusted allocation misclassified")
	}
	// A range that starts in-bounds but runs past the end is not "in".
	if sp.InUntrusted(u, 1<<21) {
		t.Fatal("overlong range must not classify as in-untrusted")
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a      Addr
		an     uint64
		b      Addr
		bn     uint64
		expect bool
	}{
		{100, 10, 110, 10, false}, // adjacent
		{100, 10, 109, 10, true},  // one byte shared
		{100, 10, 90, 10, false},  // adjacent below
		{100, 10, 90, 11, true},
		{100, 10, 100, 10, true}, // identical
		{100, 10, 102, 2, true},  // contained
		{100, 0, 100, 10, false}, // empty range
		{100, 10, 105, 0, false}, // empty range
	}
	for _, c := range cases {
		if got := Overlaps(c.a, c.an, c.b, c.bn); got != c.expect {
			t.Errorf("Overlaps(%d,%d,%d,%d) = %v, want %v", c.a, c.an, c.b, c.bn, got, c.expect)
		}
	}
}

func TestCopyAcrossBoundary(t *testing.T) {
	sp := newTestSpace(t)
	u, _ := sp.Alloc(Untrusted, 64, 0)
	tr, _ := sp.Alloc(Trusted, 64, 0)
	ub, _ := sp.Bytes(RoleHost, u, 64)
	for i := range ub {
		ub[i] = byte(i)
	}
	// The enclave pulls untrusted bytes into trusted memory.
	if err := sp.Copy(RoleEnclave, tr, u, 64); err != nil {
		t.Fatal(err)
	}
	tb, _ := sp.Bytes(RoleEnclave, tr, 64)
	for i := range tb {
		if tb[i] != byte(i) {
			t.Fatalf("byte %d = %d after copy, want %d", i, tb[i], i)
		}
	}
	// The host cannot copy out of trusted memory.
	if err := sp.Copy(RoleHost, u, tr, 64); !errors.Is(err, ErrProtected) {
		t.Fatalf("host copy from trusted error = %v, want ErrProtected", err)
	}
}

func TestCheckRole(t *testing.T) {
	sp := newTestSpace(t)
	tr, _ := sp.Alloc(Trusted, 8, 0)
	if err := sp.Check(RoleEnclave, tr, 8); err != nil {
		t.Fatal(err)
	}
	if err := sp.Check(RoleHost, tr, 8); !errors.Is(err, ErrProtected) {
		t.Fatalf("Check host/trusted = %v, want ErrProtected", err)
	}
}

func TestKindRoleStrings(t *testing.T) {
	if Trusted.String() != "trusted" || Untrusted.String() != "untrusted" {
		t.Fatal("Kind.String mismatch")
	}
	if RoleEnclave.String() != "enclave" || RoleHost.String() != "host" {
		t.Fatal("Role.String mismatch")
	}
}
