// Package mem simulates the SGX-partitioned address space the RAKIS trust
// model is built on.
//
// A Space holds two byte-addressable segments: a trusted segment standing
// in for encrypted enclave memory (EPC) and an untrusted segment standing
// in for ordinary shared memory. Access is mediated by a Role:
//
//   - RoleEnclave models code running inside the enclave, which — like a
//     real SGX enclave — may access both its own memory and untrusted
//     memory.
//   - RoleHost models the OS/kernel and any other code outside the
//     enclave; attempts to touch the trusted segment fail with
//     ErrProtected, which is the software analogue of the SGX memory
//     encryption engine returning an abort page.
//
// FIOKP shared data structures (XSK rings, UMem, io_uring rings) are
// allocated in the untrusted segment so that both the simulated kernel and
// the in-enclave FastPath Modules operate on the very same bytes — and so
// that a malicious host can scribble on them in tests.
//
// Ring control words (producer/consumer/flags) need cross-thread atomic
// semantics; Atomic32 hands out shared atomic cells backed by the segment
// address so both sides synchronize exactly as the lockless rings of
// AF_XDP and io_uring do.
package mem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rakis/internal/vtime"
)

// Addr is an address in the simulated flat address space.
type Addr uint64

// Kind distinguishes the two memory segments.
type Kind uint8

const (
	// Trusted is encrypted enclave memory.
	Trusted Kind = iota
	// Untrusted is ordinary shared memory visible to the host OS.
	Untrusted
)

// String returns the segment name.
func (k Kind) String() string {
	if k == Trusted {
		return "trusted"
	}
	return "untrusted"
}

// Role identifies who is performing a memory access.
type Role uint8

const (
	// RoleEnclave is code running inside the SGX enclave.
	RoleEnclave Role = iota
	// RoleHost is the OS, the Monitor Module, or any other code outside
	// the enclave.
	RoleHost
)

// String returns the role name.
func (r Role) String() string {
	if r == RoleEnclave {
		return "enclave"
	}
	return "host"
}

// Segment base addresses. The bases are far apart so that accidental
// pointer arithmetic cannot wander from one segment into the other.
const (
	TrustedBase   Addr = 0x0000_1000_0000
	UntrustedBase Addr = 0x0000_8000_0000
)

// Errors returned by Space accessors.
var (
	// ErrProtected reports a host-role access to trusted memory: the SGX
	// hardware protection firing.
	ErrProtected = errors.New("mem: host access to enclave memory denied")
	// ErrBounds reports an access outside any mapped segment.
	ErrBounds = errors.New("mem: access out of mapped bounds")
	// ErrNoSpace reports an exhausted segment allocator.
	ErrNoSpace = errors.New("mem: segment exhausted")
	// ErrUnaligned reports a misaligned atomic-cell address.
	ErrUnaligned = errors.New("mem: unaligned atomic access")
)

type segment struct {
	base Addr
	buf  []byte
	kind Kind

	mu   sync.Mutex
	next uint64 // bump-allocation watermark
}

func (s *segment) contains(a Addr, n uint64) bool {
	if a < s.base {
		return false
	}
	off := uint64(a - s.base)
	return off <= uint64(len(s.buf)) && n <= uint64(len(s.buf))-off
}

// Space is one simulated machine's memory: a trusted and an untrusted
// segment plus the shared atomic cells and virtual-time stamp cells that
// ride along with them.
type Space struct {
	trusted   segment
	untrusted segment

	mu      sync.Mutex
	atomics map[Addr]*atomic.Uint32
	stamps  map[Addr]*vtime.Stamp
	bands   map[Addr][]vtime.Stamp

	// hostTrustedDenied counts host-role accesses to trusted memory that
	// the protection refused (the abort-page analogue firing).
	hostTrustedDenied atomic.Uint64
	// hostTrustedGranted is the chaos suite's tripwire: it counts
	// host-role accesses to trusted memory that were GRANTED. The guard
	// in check makes this unreachable by construction; the counter exists
	// so that a future regression weakening the guard turns into a loud
	// nonzero assertion failure instead of a silent integrity hole.
	hostTrustedGranted atomic.Uint64
}

// NewSpace creates a Space with the given segment sizes in bytes.
func NewSpace(trustedSize, untrustedSize int) *Space {
	return &Space{
		trusted:   segment{base: TrustedBase, buf: make([]byte, trustedSize), kind: Trusted},
		untrusted: segment{base: UntrustedBase, buf: make([]byte, untrustedSize), kind: Untrusted},
		atomics:   make(map[Addr]*atomic.Uint32),
		stamps:    make(map[Addr]*vtime.Stamp),
		bands:     make(map[Addr][]vtime.Stamp),
	}
}

func (sp *Space) seg(kind Kind) *segment {
	if kind == Trusted {
		return &sp.trusted
	}
	return &sp.untrusted
}

// Alloc reserves n bytes in the given segment with the given alignment
// (which must be a power of two; 0 means 8) and returns the base address.
func (sp *Space) Alloc(kind Kind, n, align uint64) (Addr, error) {
	if align == 0 {
		align = 8
	}
	s := sp.seg(kind)
	s.mu.Lock()
	defer s.mu.Unlock()
	start := (s.next + align - 1) &^ (align - 1)
	if start+n > uint64(len(s.buf)) || start+n < start {
		return 0, fmt.Errorf("%w: %s segment: need %d bytes at %d of %d",
			ErrNoSpace, kind, n, start, len(s.buf))
	}
	s.next = start + n
	return s.base + Addr(start), nil
}

// check validates an access of n bytes at a for the given role and
// returns the resolved segment.
func (sp *Space) check(role Role, a Addr, n uint64) (*segment, error) {
	var s *segment
	switch {
	case sp.trusted.contains(a, n):
		s = &sp.trusted
	case sp.untrusted.contains(a, n):
		s = &sp.untrusted
	default:
		return nil, fmt.Errorf("%w: [%#x,+%d)", ErrBounds, uint64(a), n)
	}
	if s.kind == Trusted && role == RoleHost {
		sp.hostTrustedDenied.Add(1)
		return nil, fmt.Errorf("%w: [%#x,+%d)", ErrProtected, uint64(a), n)
	}
	if s.kind == Trusted && role == RoleHost {
		// Unreachable: the tripwire only fires if the guard above is ever
		// weakened.
		sp.hostTrustedGranted.Add(1)
	}
	return s, nil
}

// HostTrustedDenied returns how many host-role accesses to trusted memory
// were refused.
func (sp *Space) HostTrustedDenied() uint64 { return sp.hostTrustedDenied.Load() }

// HostTrustedGranted returns how many host-role accesses to trusted
// memory were granted. The chaos suite asserts this stays zero under
// every fault profile.
func (sp *Space) HostTrustedGranted() uint64 { return sp.hostTrustedGranted.Load() }

// Check validates that role may access the n bytes at a.
//
//rakis:validator
func (sp *Space) Check(role Role, a Addr, n uint64) error {
	_, err := sp.check(role, a, n)
	return err
}

// Bytes returns a mutable view of the n bytes at a, after validating the
// access for role. The returned slice aliases the segment; callers must
// respect the ring synchronization discipline when sharing it across
// goroutines. When a resolves into the untrusted segment the contents
// are host-controlled, so enclave-role callers must treat values read
// from the slice as tainted.
//
//rakis:untrusted
func (sp *Space) Bytes(role Role, a Addr, n uint64) ([]byte, error) {
	s, err := sp.check(role, a, n)
	if err != nil {
		return nil, err
	}
	off := uint64(a - s.base)
	return s.buf[off : off+n : off+n], nil
}

// U32 reads a little-endian uint32 at a. The value is host-controlled
// when a is in the untrusted segment.
//
//rakis:untrusted
func (sp *Space) U32(role Role, a Addr) (uint32, error) {
	b, err := sp.Bytes(role, a, 4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// PutU32 writes a little-endian uint32 at a.
func (sp *Space) PutU32(role Role, a Addr, v uint32) error {
	b, err := sp.Bytes(role, a, 4)
	if err != nil {
		return err
	}
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// U64 reads a little-endian uint64 at a. The value is host-controlled
// when a is in the untrusted segment.
//
//rakis:untrusted
func (sp *Space) U64(role Role, a Addr) (uint64, error) {
	b, err := sp.Bytes(role, a, 8)
	if err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// PutU64 writes a little-endian uint64 at a.
func (sp *Space) PutU64(role Role, a Addr, v uint64) error {
	b, err := sp.Bytes(role, a, 8)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return nil
}

// Atomic32 returns the shared atomic cell backing the 4-byte-aligned word
// at a, creating it on first use. Both sides of a ring obtain the same
// cell, giving them the acquire/release semantics lockless FIOKP rings
// rely on. The access is validated for role at acquisition time.
func (sp *Space) Atomic32(role Role, a Addr) (*atomic.Uint32, error) {
	if a%4 != 0 {
		return nil, fmt.Errorf("%w: %#x", ErrUnaligned, uint64(a))
	}
	if err := sp.Check(role, a, 4); err != nil {
		return nil, err
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	c, ok := sp.atomics[a]
	if !ok {
		c = new(atomic.Uint32)
		sp.atomics[a] = c
	}
	return c, nil
}

// StampCell returns the virtual-time stamp cell associated with address a
// (typically a ring base), creating it on first use. Stamp cells are
// simulation metadata, not simulated memory: they are not readable or
// writable through Bytes and carry no trust semantics.
func (sp *Space) StampCell(a Addr) *vtime.Stamp {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	s, ok := sp.stamps[a]
	if !ok {
		s = new(vtime.Stamp)
		sp.stamps[a] = s
	}
	return s
}

// StampBand returns the per-slot virtual-time stamp array associated
// with address a (a ring base), creating it with n slots on first use.
// Like StampCell, bands are simulation metadata with no trust semantics;
// both sides of a ring share the same band.
func (sp *Space) StampBand(a Addr, n uint32) []vtime.Stamp {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	b, ok := sp.bands[a]
	if !ok || uint32(len(b)) < n {
		b = make([]vtime.Stamp, n)
		sp.bands[a] = b
	}
	return b
}

// InUntrusted reports whether the whole range [a, a+n) lies inside the
// untrusted segment. This is the FM initialization check from Table 2:
// pointers handed to the enclave must reference shared memory
// exclusively, never enclave memory.
//
//rakis:validator
func (sp *Space) InUntrusted(a Addr, n uint64) bool {
	return sp.untrusted.contains(a, n)
}

// InTrusted reports whether the whole range [a, a+n) lies inside the
// trusted segment.
//
//rakis:validator
func (sp *Space) InTrusted(a Addr, n uint64) bool {
	return sp.trusted.contains(a, n)
}

// IntersectsTrusted reports whether any byte of [a, a+n) lies inside the
// trusted segment. It is the check the enclave applies to buffer
// addresses it is about to hand to the host (e.g. in io_uring SQEs):
// such a buffer must never expose enclave memory, mirroring the Table 2
// placement rule in the outbound direction.
//
//rakis:validator
func (sp *Space) IntersectsTrusted(a Addr, n uint64) bool {
	return Overlaps(a, n, sp.trusted.base, uint64(len(sp.trusted.buf)))
}

// Overlaps reports whether the ranges [a, a+an) and [b, b+bn) intersect.
//
//rakis:validator
func Overlaps(a Addr, an uint64, b Addr, bn uint64) bool {
	if an == 0 || bn == 0 {
		return false
	}
	return uint64(a) < uint64(b)+bn && uint64(b) < uint64(a)+an
}

// Copy moves n bytes from src to dst, validating both accesses for role.
// The ranges may be in different segments; this is how the enclave copies
// packet payloads across the trust boundary.
func (sp *Space) Copy(role Role, dst, src Addr, n uint64) error {
	d, err := sp.Bytes(role, dst, n)
	if err != nil {
		return err
	}
	s, err := sp.Bytes(role, src, n)
	if err != nil {
		return err
	}
	copy(d, s)
	return nil
}
