package umem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rakis/internal/mem"
	"rakis/internal/vtime"
)

func newUMem(t *testing.T, frameSize, frameCount uint32) (*UMem, *vtime.Counters) {
	t.Helper()
	sp := mem.NewSpace(1<<20, 1<<22)
	ctrs := &vtime.Counters{}
	base, err := sp.Alloc(mem.Untrusted, uint64(frameSize)*uint64(frameCount), uint64(frameSize))
	if err != nil {
		t.Fatal(err)
	}
	u, err := New(Config{Space: sp, Base: base, FrameSize: frameSize, FrameCount: frameCount, Counters: ctrs})
	if err != nil {
		t.Fatal(err)
	}
	return u, ctrs
}

func TestAllFramesInitiallyUser(t *testing.T) {
	u, _ := newUMem(t, 2048, 16)
	if u.FreeFrames() != 16 {
		t.Fatalf("FreeFrames = %d, want 16", u.FreeFrames())
	}
	for i := uint32(0); i < 16; i++ {
		if u.Owner(i) != OwnerUser {
			t.Fatalf("frame %d owner = %v, want user", i, u.Owner(i))
		}
	}
	if !u.InvariantHolds() {
		t.Fatal("fresh UMem must satisfy the invariant")
	}
}

func TestAllocReturnRoundTrip(t *testing.T) {
	u, _ := newUMem(t, 2048, 4)
	idx, err := u.Alloc(OwnerFill)
	if err != nil {
		t.Fatal(err)
	}
	if u.Owner(idx) != OwnerFill {
		t.Fatalf("owner after Alloc = %v, want fill", u.Owner(idx))
	}
	if u.FreeFrames() != 3 {
		t.Fatalf("FreeFrames = %d, want 3", u.FreeFrames())
	}
	// Kernel returns the frame with a packet at a small headroom offset.
	off := u.FrameOffset(idx) + 64
	got, err := u.ValidateConsumed(OwnerFill, off, 1400)
	if err != nil || got != idx {
		t.Fatalf("ValidateConsumed = %d, %v; want %d, nil", got, err, idx)
	}
	if u.FreeFrames() != 4 || u.Owner(idx) != OwnerUser {
		t.Fatal("frame did not return to user pool")
	}
	if !u.InvariantHolds() {
		t.Fatal("invariant broken after round trip")
	}
}

func TestExhaustion(t *testing.T) {
	u, _ := newUMem(t, 2048, 2)
	if _, err := u.Alloc(OwnerTx); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Alloc(OwnerFill); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Alloc(OwnerFill); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestRejectOffsetBeyondUMem(t *testing.T) {
	u, ctrs := newUMem(t, 2048, 4)
	u.Alloc(OwnerFill)
	if _, err := u.ValidateConsumed(OwnerFill, u.Size(), 100); !errors.Is(err, ErrViolation) {
		t.Fatalf("err = %v, want ErrViolation", err)
	}
	if _, err := u.ValidateConsumed(OwnerFill, 1<<40, 100); !errors.Is(err, ErrViolation) {
		t.Fatalf("err = %v, want ErrViolation", err)
	}
	if ctrs.UMemViolations.Load() != 2 {
		t.Fatalf("violations = %d, want 2", ctrs.UMemViolations.Load())
	}
}

func TestRejectFrameBoundaryCrossing(t *testing.T) {
	u, _ := newUMem(t, 2048, 4)
	idx, _ := u.Alloc(OwnerFill)
	// A length that runs past the end of the frame could let a hostile
	// offset alias the next frame's contents.
	off := u.FrameOffset(idx) + 2000
	if _, err := u.ValidateConsumed(OwnerFill, off, 100); !errors.Is(err, ErrViolation) {
		t.Fatalf("boundary crossing err = %v, want ErrViolation", err)
	}
	// The frame stays owned by the kernel routine: it was refused, not
	// recycled.
	if u.Owner(idx) != OwnerFill {
		t.Fatalf("owner after refusal = %v, want fill", u.Owner(idx))
	}
}

func TestRejectWrongRoutine(t *testing.T) {
	u, _ := newUMem(t, 2048, 4)
	idx, _ := u.Alloc(OwnerTx)
	// The host returns a TX frame through the receive routine.
	if _, err := u.ValidateConsumed(OwnerFill, u.FrameOffset(idx), 64); !errors.Is(err, ErrViolation) {
		t.Fatalf("cross-routine err = %v, want ErrViolation", err)
	}
	// Proper completion works.
	if _, err := u.ValidateConsumed(OwnerTx, u.FrameOffset(idx), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRejectDoubleReturn(t *testing.T) {
	// The attack from §4.1: the host returns the same frame twice, trying
	// to seed the free pool with duplicates so two future packets share
	// one buffer.
	u, _ := newUMem(t, 2048, 4)
	idx, _ := u.Alloc(OwnerFill)
	off := u.FrameOffset(idx)
	if _, err := u.ValidateConsumed(OwnerFill, off, 128); err != nil {
		t.Fatal(err)
	}
	if _, err := u.ValidateConsumed(OwnerFill, off, 128); !errors.Is(err, ErrViolation) {
		t.Fatalf("double return err = %v, want ErrViolation", err)
	}
	if !u.InvariantHolds() {
		t.Fatal("free pool corrupted by double return")
	}
}

func TestRejectForeignFrame(t *testing.T) {
	// The host returns a frame the FM never handed out.
	u, _ := newUMem(t, 2048, 4)
	u.Alloc(OwnerFill) // frame with the kernel, but a *different* one is returned
	if _, err := u.ValidateConsumed(OwnerFill, u.FrameOffset(2), 64); !errors.Is(err, ErrViolation) {
		t.Fatalf("foreign frame err = %v, want ErrViolation", err)
	}
	if !u.InvariantHolds() {
		t.Fatal("invariant broken by foreign frame")
	}
}

func TestConfigValidation(t *testing.T) {
	sp := mem.NewSpace(1<<16, 1<<20)
	base, _ := sp.Alloc(mem.Untrusted, 1<<16, 2048)
	if _, err := New(Config{Space: nil, Base: base, FrameSize: 2048, FrameCount: 4}); !errors.Is(err, ErrConfig) {
		t.Fatal("nil space must be rejected")
	}
	if _, err := New(Config{Space: sp, Base: base, FrameSize: 0, FrameCount: 4}); !errors.Is(err, ErrConfig) {
		t.Fatal("zero frame size must be rejected")
	}
	if _, err := New(Config{Space: sp, Base: base, FrameSize: 2048, FrameCount: 0}); !errors.Is(err, ErrConfig) {
		t.Fatal("zero frame count must be rejected")
	}
	// Placement: UMem in trusted memory is the liburing-style leak.
	trBase, _ := sp.Alloc(mem.Trusted, 1<<14, 2048)
	if _, err := New(Config{Space: sp, Base: trBase, FrameSize: 2048, FrameCount: 8}); !errors.Is(err, ErrPlacement) {
		t.Fatalf("trusted placement err = %v, want ErrPlacement", err)
	}
	// Placement: UMem overflowing the untrusted segment.
	if _, err := New(Config{Space: sp, Base: base, FrameSize: 2048, FrameCount: 1 << 20}); !errors.Is(err, ErrPlacement) {
		t.Fatal("overflowing area must be rejected")
	}
}

func TestAllocIntoUserRoutineRejected(t *testing.T) {
	u, _ := newUMem(t, 2048, 4)
	if _, err := u.Alloc(OwnerUser); !errors.Is(err, ErrConfig) {
		t.Fatal("Alloc(OwnerUser) must be rejected")
	}
	if _, err := u.ValidateConsumed(OwnerUser, 0, 0); !errors.Is(err, ErrConfig) {
		t.Fatal("ValidateConsumed(OwnerUser) must be rejected")
	}
}

func TestFrameBytes(t *testing.T) {
	u, _ := newUMem(t, 2048, 4)
	b, err := u.FrameBytes(u.FrameOffset(1)+10, 100)
	if err != nil || len(b) != 100 {
		t.Fatalf("FrameBytes = %d bytes, %v", len(b), err)
	}
	b[0] = 0xAB
	b2, _ := u.FrameBytes(u.FrameOffset(1)+10, 1)
	if b2[0] != 0xAB {
		t.Fatal("FrameBytes views must alias the same memory")
	}
}

// Property: under an arbitrary interleaving of legitimate allocations and
// hostile returns (random offsets, lengths, and routines), the allocator
// invariant always holds and the pool never grows beyond the frame count.
func TestAllocatorInvariantUnderAdversary(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := mem.NewSpace(1<<16, 1<<20)
		base, _ := sp.Alloc(mem.Untrusted, 8*2048, 2048)
		u, err := New(Config{Space: sp, Base: base, FrameSize: 2048, FrameCount: 8})
		if err != nil {
			return false
		}
		for i := 0; i < int(steps); i++ {
			switch rng.Intn(3) {
			case 0: // legitimate alloc
				routine := OwnerFill
				if rng.Intn(2) == 0 {
					routine = OwnerTx
				}
				u.Alloc(routine)
			case 1: // legitimate-looking or hostile return
				routine := OwnerFill
				if rng.Intn(2) == 0 {
					routine = OwnerTx
				}
				off := rng.Uint64() % (u.Size() + 4096)
				u.ValidateConsumed(routine, off, uint32(rng.Intn(4096)))
			case 2: // hostile return far out of range
				u.ValidateConsumed(OwnerFill, rng.Uint64(), uint32(rng.Intn(1<<16)))
			}
			if !u.InvariantHolds() || u.FreeFrames() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerString(t *testing.T) {
	if OwnerUser.String() != "user" || OwnerFill.String() != "fill" || OwnerTx.String() != "tx" {
		t.Fatal("Owner.String mismatch")
	}
	if Owner(9).String() == "" {
		t.Fatal("unknown owner must still render")
	}
}
