// Package umem implements the XSK UMem packet-buffer area and the RAKIS
// frame allocator with ownership tracking (§4.1, "UMem frames allocator").
//
// The UMem is a contiguous area of shared untrusted memory divided into
// fixed-size frames; each frame holds one network packet. Ownership of
// frames is exchanged with the kernel through the xFill/xRX rings (receive
// routine) and the xTX/xCompl rings (send routine). The FM must only ever
// accept back frames it previously handed out *in the same routine*; a
// malicious host OS that returns an unexpected, overlapping, or foreign
// frame could otherwise corrupt the allocator's free pool and trick the
// enclave into reading or writing through hostile offsets.
//
// RAKIS therefore keeps a per-frame ownership map in trusted memory and
// validates every offset consumed from xRX or xCompl: the offset must lie
// inside the UMem, the referenced range must not cross a frame boundary,
// and the frame must currently be owned by the routine that is returning
// it. On violation the frame is refused and the ring consumer is advanced
// past it (Table 2, "Refuse and advance consumer").
//
//rakis:role enclave
package umem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"rakis/internal/mem"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
)

// Owner is the trusted ownership state of one UMem frame.
type Owner uint8

const (
	// OwnerUser means the frame is in the FM's free pool.
	OwnerUser Owner = iota
	// OwnerFill means the frame was produced into xFill and is with the
	// kernel awaiting an incoming packet.
	OwnerFill
	// OwnerTx means the frame was produced into xTX and is with the
	// kernel awaiting transmission.
	OwnerTx
	// OwnerView means the frame was validated off xRX and is held by a
	// live zero-copy view in the enclave; it returns to the user pool
	// when the view is released, or moves to OwnerTx when spliced.
	OwnerView
)

// String returns the owner name.
func (o Owner) String() string {
	switch o {
	case OwnerUser:
		return "user"
	case OwnerFill:
		return "fill"
	case OwnerTx:
		return "tx"
	case OwnerView:
		return "view"
	default:
		return fmt.Sprintf("owner(%d)", uint8(o))
	}
}

// Errors reported by the allocator.
var (
	// ErrConfig reports an invalid UMem geometry.
	ErrConfig = errors.New("umem: invalid configuration")
	// ErrPlacement reports a UMem area not exclusively in untrusted
	// memory (Table 2 init check).
	ErrPlacement = errors.New("umem: area must live exclusively in untrusted memory")
	// ErrExhausted reports an empty free pool.
	ErrExhausted = errors.New("umem: no free frames")
	// ErrViolation reports a hostile frame offset from xRX/xCompl; the
	// frame was refused.
	ErrViolation = errors.New("umem: untrusted frame offset rejected")
)

// UMem is the FM's trusted handle on the shared packet-buffer area.
type UMem struct {
	space      *mem.Space
	base       mem.Addr
	frameSize  uint32
	frameCount uint32
	counters   *vtime.Counters
	trace      *telemetry.Buf

	// Trusted state.
	owner []Owner
	free  []uint32 // stack of frame indices in the user pool
	// gens holds one validator generation per frame. A zero-copy view
	// minted off xRX records the generation it was certified under;
	// releasing or splicing the frame bumps the cell, so a stale view
	// can be detected without any shared-memory read. The cells live in
	// trusted memory and are atomic only so stale-view probes need no
	// allocator lock.
	gens []atomic.Uint32
}

// Config describes a UMem area.
type Config struct {
	// Space is the address space holding the area.
	Space *mem.Space
	// Base is the area's base address in shared untrusted memory.
	Base mem.Addr
	// FrameSize is bytes per frame (2048 in the evaluation setup).
	FrameSize uint32
	// FrameCount is the number of frames.
	FrameCount uint32
	// Counters receives violation counts; it may be nil.
	Counters *vtime.Counters
	// Trace, when non-nil, receives a refusal event per rejected offset.
	Trace *telemetry.Buf
}

// New validates the geometry and placement and returns a UMem handle with
// all frames initially owned by the user, as in §2.3.
func New(cfg Config) (*UMem, error) {
	if cfg.Space == nil {
		return nil, fmt.Errorf("%w: nil space", ErrConfig)
	}
	if cfg.FrameSize == 0 || cfg.FrameCount == 0 {
		return nil, fmt.Errorf("%w: %d frames of %d bytes", ErrConfig, cfg.FrameCount, cfg.FrameSize)
	}
	total := uint64(cfg.FrameSize) * uint64(cfg.FrameCount)
	if !cfg.Space.InUntrusted(cfg.Base, total) {
		return nil, fmt.Errorf("%w: [%#x,+%d)", ErrPlacement, uint64(cfg.Base), total)
	}
	u := &UMem{
		space:      cfg.Space,
		base:       cfg.Base,
		frameSize:  cfg.FrameSize,
		frameCount: cfg.FrameCount,
		counters:   cfg.Counters,
		trace:      cfg.Trace,
		owner:      make([]Owner, cfg.FrameCount),
		free:       make([]uint32, 0, cfg.FrameCount),
		gens:       make([]atomic.Uint32, cfg.FrameCount),
	}
	for i := cfg.FrameCount; i > 0; i-- {
		u.free = append(u.free, i-1)
	}
	return u, nil
}

// Base returns the area's base address.
func (u *UMem) Base() mem.Addr { return u.base }

// FrameSize returns the bytes per frame.
func (u *UMem) FrameSize() uint32 { return u.frameSize }

// FrameCount returns the number of frames.
func (u *UMem) FrameCount() uint32 { return u.frameCount }

// Size returns the total byte size of the area.
func (u *UMem) Size() uint64 { return uint64(u.frameSize) * uint64(u.frameCount) }

// FreeFrames returns the number of frames in the user pool.
func (u *UMem) FreeFrames() int { return len(u.free) }

// FrameOffset returns the UMem-relative offset of frame idx.
func (u *UMem) FrameOffset(idx uint32) uint64 { return uint64(idx) * uint64(u.frameSize) }

// FrameAddr returns the absolute address of frame idx.
func (u *UMem) FrameAddr(idx uint32) mem.Addr {
	return u.base + mem.Addr(u.FrameOffset(idx))
}

// Alloc takes a frame from the user pool for use in the given routine
// (OwnerFill for the receive path, OwnerTx for the send path) and returns
// its index.
func (u *UMem) Alloc(routine Owner) (uint32, error) {
	if routine != OwnerFill && routine != OwnerTx {
		return 0, fmt.Errorf("%w: cannot allocate into routine %v", ErrConfig, routine)
	}
	if len(u.free) == 0 {
		return 0, ErrExhausted
	}
	idx := u.free[len(u.free)-1]
	u.free = u.free[:len(u.free)-1]
	u.owner[idx] = routine
	return idx, nil
}

// violation records a refused offset. The trace event carries the
// hostile offset and length; its stamp is zero because the validator
// deliberately takes no clock (the caller charges validation cost).
func (u *UMem) violation(offset uint64, length uint32, format string, args ...any) error {
	if u.counters != nil {
		u.counters.UMemViolations.Add(1)
	}
	u.trace.Emit(telemetry.EvUMemRefusal, 0, offset, uint64(length))
	return fmt.Errorf("%w: "+format, append([]any{ErrViolation}, args...)...)
}

// ValidateConsumed checks an (offset, length) pair consumed from xRX or
// xCompl against the Table 2 constraints: the range must lie fully within
// the UMem, must not cross out of its frame, and the frame must currently
// be owned by the given routine. On success the frame's index is returned
// and ownership returns to the user pool; the caller must copy the
// payload out (receive) or simply reuse the frame (send completion)
// before the next Alloc hands it out again.
//
//rakis:validator
func (u *UMem) ValidateConsumed(routine Owner, offset uint64, length uint32) (uint32, error) {
	if routine != OwnerFill && routine != OwnerTx {
		return 0, fmt.Errorf("%w: routine %v", ErrConfig, routine)
	}
	if offset >= u.Size() {
		return 0, u.violation(offset, length, "offset %d beyond UMem size %d", offset, u.Size())
	}
	idx := uint32(offset / uint64(u.frameSize))
	within := offset - u.FrameOffset(idx)
	if uint64(length) > uint64(u.frameSize)-within {
		return 0, u.violation(offset, length, "range [+%d,%d) crosses frame %d boundary", offset, length, idx)
	}
	if u.owner[idx] != routine {
		return 0, u.violation(offset, length, "frame %d owned by %v, returned via %v routine",
			idx, u.owner[idx], routine)
	}
	u.owner[idx] = OwnerUser
	u.free = append(u.free, idx)
	return idx, nil
}

// ValidateView checks an (offset, length) pair consumed from xRX against
// the same Table 2 constraints as ValidateConsumed, but instead of
// returning the frame to the user pool it transfers ownership to a
// zero-copy view (OwnerView) and returns the frame index together with
// the validator generation the view is certified under. The frame stays
// out of the free pool until ReleaseView or SpliceTX retires the view.
//
//rakis:validator
func (u *UMem) ValidateView(offset uint64, length uint32) (uint32, uint32, error) {
	if offset >= u.Size() {
		return 0, 0, u.violation(offset, length, "offset %d beyond UMem size %d", offset, u.Size())
	}
	idx := uint32(offset / uint64(u.frameSize))
	within := offset - u.FrameOffset(idx)
	if uint64(length) > uint64(u.frameSize)-within {
		return 0, 0, u.violation(offset, length, "range [+%d,%d) crosses frame %d boundary", offset, length, idx)
	}
	if u.owner[idx] != OwnerFill {
		return 0, 0, u.violation(offset, length, "frame %d owned by %v, returned via %v routine",
			idx, u.owner[idx], OwnerFill)
	}
	u.owner[idx] = OwnerView
	return idx, u.gens[idx].Load(), nil
}

// ReleaseView retires a view and returns its frame to the user pool. The
// generation check makes the call idempotent: a second release (or a
// release after SpliceTX consumed the frame) reports ErrViolation-free
// staleness and leaves the allocator untouched.
func (u *UMem) ReleaseView(idx, gen uint32) error {
	if idx >= u.frameCount {
		return fmt.Errorf("%w: frame %d out of range", ErrConfig, idx)
	}
	cur := u.gens[idx].Load()
	if u.owner[idx] != OwnerView || cur != gen {
		return fmt.Errorf("%w: frame %d gen %d", mem.ErrStaleView, idx, gen)
	}
	u.gens[idx].Add(1)
	u.owner[idx] = OwnerUser
	u.free = append(u.free, idx)
	return nil
}

// SpliceTX re-certifies a view-held frame for transmission: ownership
// moves OwnerView→OwnerTx without the frame ever visiting the free pool,
// and the generation bump invalidates the view so no further reads can
// race the kernel's TX consumption. The caller queues the frame's
// descriptor onto xTX; the completion path retires it exactly like a
// copied send.
func (u *UMem) SpliceTX(idx, gen uint32) error {
	if idx >= u.frameCount {
		return fmt.Errorf("%w: frame %d out of range", ErrConfig, idx)
	}
	cur := u.gens[idx].Load()
	if u.owner[idx] != OwnerView || cur != gen {
		return fmt.Errorf("%w: frame %d gen %d", mem.ErrStaleView, idx, gen)
	}
	u.gens[idx].Add(1)
	u.owner[idx] = OwnerTx
	return nil
}

// MakeView mints a certified view over the validated range. The (idx,
// gen) pair must come from ValidateView; owner is the object that routes
// the eventual release back to this allocator under its own lock
// (typically the owning xsk.Socket, not the UMem itself, because the
// allocator's trusted state is guarded by the socket's mutex).
//
//rakis:untrusted
func (u *UMem) MakeView(idx, gen uint32, offset uint64, length uint32, owner mem.ViewOwner) (mem.View, error) {
	b, err := u.space.Bytes(mem.RoleEnclave, u.base+mem.Addr(offset), uint64(length))
	if err != nil {
		return mem.View{}, err
	}
	return mem.NewView(b, offset, idx, gen, &u.gens[idx], owner), nil
}

// Owner returns frame idx's current trusted ownership state.
func (u *UMem) Owner(idx uint32) Owner { return u.owner[idx] }

// Gen returns frame idx's current validator generation.
func (u *UMem) Gen(idx uint32) uint32 { return u.gens[idx].Load() }

// FrameBytes returns an enclave-role view of length bytes at the given
// UMem offset, for copying payloads across the trust boundary. The range
// must already have been validated; the bytes themselves remain
// host-writable shared memory.
//
//rakis:untrusted
func (u *UMem) FrameBytes(offset uint64, length uint32) ([]byte, error) {
	return u.space.Bytes(mem.RoleEnclave, u.base+mem.Addr(offset), uint64(length))
}

// InvariantHolds verifies the allocator's trusted-state invariant: the
// free pool contains no duplicates, and exactly the frames whose owner is
// OwnerUser. The Testing Module asserts this after adversarial runs.
func (u *UMem) InvariantHolds() bool {
	seen := make(map[uint32]bool, len(u.free))
	for _, idx := range u.free {
		if idx >= u.frameCount || seen[idx] || u.owner[idx] != OwnerUser {
			return false
		}
		seen[idx] = true
	}
	for idx := uint32(0); idx < u.frameCount; idx++ {
		if u.owner[idx] == OwnerUser && !seen[idx] {
			return false
		}
	}
	return true
}
