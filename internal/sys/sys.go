// Package sys defines the POSIX-ish syscall interface the evaluation
// workloads are written against. One workload binary runs unmodified on
// all five environments (§6: Native, Gramine-Direct, Gramine-SGX,
// RAKIS-Direct, RAKIS-SGX) — only the Sys implementation bound at startup
// differs, which is precisely the paper's "unmodified applications" claim
// translated to Go.
//
// A Sys value represents one application *thread*: it carries the
// thread's virtual clock, and for RAKIS its per-thread io_uring FastPath
// Module (§4.1). Additional threads are created with Clone.
package sys

import (
	"time"

	"rakis/internal/netstack"
	"rakis/internal/vtime"
)

// SockType mirrors hostos socket types at the workload level.
type SockType int

const (
	// UDP is SOCK_DGRAM.
	UDP SockType = iota
	// TCP is SOCK_STREAM.
	TCP
)

// Open flags (matching hostos).
const (
	ORdonly = 0
	OWronly = 1
	ORdwr   = 2
	OCreate = 1 << 6
	OTrunc  = 1 << 9
)

// Poll events.
const (
	PollIn  uint32 = 1 << 0
	PollOut uint32 = 1 << 2
	PollErr uint32 = 1 << 3
)

// PollFD is one poll slot.
type PollFD struct {
	FD      int
	Events  uint32
	Revents uint32
}

// Epoll ctl ops.
const (
	EpollCtlAdd = 1
	EpollCtlDel = 2
	EpollCtlMod = 3
)

// EpollEvent is one epoll readiness report.
type EpollEvent struct {
	FD     int
	Events uint32
}

// Addr re-exports the network address type workloads use.
type Addr = netstack.Addr

// IP4 re-exports the address type.
type IP4 = netstack.IP4

// Mmsg is one message slot of a vectored SendToN/RecvFromN call,
// mirroring struct mmsghdr: the caller supplies Buf (and Addr for
// sends); the implementation fills N (bytes moved) and, for receives,
// Addr (the datagram source).
type Mmsg struct {
	Buf  []byte
	Addr Addr
	N    int
}

// Sys is the syscall surface available to workloads.
type Sys interface {
	// Clock returns this thread's virtual clock.
	Clock() *vtime.Clock
	// Clone creates a Sys for a new application thread sharing this
	// one's process state (fd namespace, runtime) with a fresh clock.
	Clone() Sys

	// Sockets.
	Socket(typ SockType) (int, error)
	Bind(fd int, port uint16) error
	Connect(fd int, addr Addr) error
	Listen(fd int, backlog int) error
	Accept(fd int, block bool) (int, Addr, error)
	SendTo(fd int, p []byte, addr Addr) (int, error)
	RecvFrom(fd int, p []byte, block bool) (int, Addr, error)

	// Vectored datagram I/O with sendmmsg/recvmmsg semantics: up to
	// len(msgs) messages move in one call, amortizing the per-call
	// boundary cost (one enclave exit instead of len(msgs) on the
	// LibOS path). Both return the number of messages completed and
	// report an error only when the first message fails; a partial
	// batch is success. RecvFromN blocks (if requested) only for the
	// first message, then drains whatever is queued without waiting.
	SendToN(fd int, msgs []Mmsg) (int, error)
	RecvFromN(fd int, msgs []Mmsg, block bool) (int, error)
	Send(fd int, p []byte) (int, error)
	Recv(fd int, p []byte, block bool) (int, error)

	// Files.
	Open(path string, flags int) (int, error)
	Read(fd int, p []byte) (int, error)
	Write(fd int, p []byte) (int, error)
	Pread(fd int, p []byte, off int64) (int, error)
	Pwrite(fd int, p []byte, off int64) (int, error)
	Lseek(fd int, off int64, whence int) (int64, error)
	Fstat(fd int) (int64, error)
	Fsync(fd int) error

	// Multiplexing. Timeout is real time; <0 blocks indefinitely.
	Poll(fds []PollFD, timeout time.Duration) (int, error)

	// Epoll-style readiness notification: the extension beyond the
	// paper's prototype (§6.2 notes RAKIS lacked epoll; this build adds
	// it, implemented over armed io_uring polls in the RAKIS case).
	EpollCreate() (int, error)
	EpollCtl(epfd, op, fd int, events uint32) error
	EpollWait(epfd int, events []EpollEvent, timeout time.Duration) (int, error)

	// Misc.
	Close(fd int) error
	Futex()
}
