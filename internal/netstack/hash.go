package netstack

// This file is the single definition of the flow hash shared by the RSS
// steering program and the sharded data path. Shard consistency is an
// invariant, not a convention: the XDP/RSS program picks the RX queue
// with exactly this hash over exactly these bytes, so a stack that
// partitions its demux tables by the same hash is guaranteed that a
// flow's receive, socket processing, and (reversed-argument) transmit
// all land on the queue's own shard and never touch another shard's
// locks. Every shard decision in the repo must route through FlowHash —
// a second, drifting copy of the FNV loop is how cross-shard traffic
// sneaks back in.

// fnvBasis/fnvPrime are the 32-bit FNV-1a constants, matching what real
// NIC indirection tables seed their Toeplitz surrogate with in the
// simulator.
const (
	fnvBasis uint32 = 2166136261
	fnvPrime uint32 = 16777619
)

// FlowHash is the FNV-1a hash over a flow's addressing 12-tuple bytes in
// wire order: first IP a, then IP b, then port ap, then port bp (both
// ports big-endian, as they sit in the UDP header). The argument order
// is significant and mirrors packet direction: for a received frame the
// RSS program hashes (src IP, dst IP, src port, dst port); for a frame
// being transmitted, hashing the reversed tuple (dst IP, src IP, dst
// port, src port) yields the hash the peer's packets arrive under —
// which is what flow-affine TX steering needs, statelessly.
func FlowHash(a, b IP4, ap, bp uint16) uint32 {
	h := fnvBasis
	for _, x := range a {
		h = (h ^ uint32(x)) * fnvPrime
	}
	for _, x := range b {
		h = (h ^ uint32(x)) * fnvPrime
	}
	h = (h ^ uint32(ap>>8)) * fnvPrime
	h = (h ^ uint32(ap&0xFF)) * fnvPrime
	h = (h ^ uint32(bp>>8)) * fnvPrime
	h = (h ^ uint32(bp&0xFF)) * fnvPrime
	return h
}

// RXShard returns the shard (== RSS queue) a received packet with the
// given header fields is steered to, for n shards.
func RXShard(src, dst IP4, sport, dport uint16, n int) int {
	if n <= 1 {
		return 0
	}
	return int(FlowHash(src, dst, sport, dport) % uint32(n))
}

// TXShard returns the shard whose XSK queue a transmitted packet must
// leave on so it stays on the same shard its flow's inbound packets
// arrive on: the hash of the reversed tuple. For n <= 1 it is 0.
func TXShard(src, dst IP4, sport, dport uint16, n int) int {
	return RXShard(dst, src, dport, sport, n)
}
