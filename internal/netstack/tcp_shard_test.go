package netstack

// The -race TCP shard suite: TCP connections demuxing through the same
// RSS-sharded replicas the UDP battery covers, but with connection
// lifecycle on top — concurrent accept/close/rebind across shard widths
// 1..64, cross-shard port collisions, retransmit-timer vs. close races
// over a lossy wire, and the hostile-scribble certification test. The
// race detector is the oracle for the churn tests; the invariants
// asserted here are the ones the detector cannot see: home-shard
// affinity, byte-exact streams, and deterministic refusal of scribbled
// frames.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rakis/internal/netsim"
	"rakis/internal/vtime"
)

// tcpShardWorld wires a 1-shard client stack to a width-sharded server
// stack (enclave configuration: SYN cookies on) across a netsim pair
// whose RSS function is the demux hash — the same steering contract
// installRSS gives the XSK queues, so a flow's frames always enter the
// stack through its home shard.
type tcpShardWorld struct {
	client, server *Stack
	serverIP       IP4
}

func newTCPShardWorld(t testing.TB, width int, dropEvery int64) *tcpShardWorld {
	t.Helper()
	m := vtime.Default()
	da, db := netsim.NewPair(m,
		netsim.Config{Name: "tca", MAC: [6]byte{2, 0, 0, 0, 3, 1}},
		netsim.Config{Name: "tcb", MAC: [6]byte{2, 0, 0, 0, 3, 2}, Queues: width},
	)
	clientIP, serverIP := IP4{10, 3, 0, 1}, IP4{10, 3, 0, 2}
	var dev LinkDevice = devLink{da}
	if dropEvery > 0 {
		dev = &periodicLossLink{devLink: devLink{da}, every: dropEvery}
	}
	sa, err := New(Config{Name: "tc-client", Dev: dev, IP: clientIP, Model: m, EnableTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := New(Config{Name: "tc-server", Dev: devLink{db}, IP: serverIP, Model: m,
		EnableTCP: true, TCPCookies: true, Shards: width})
	if err != nil {
		t.Fatal(err)
	}
	// RSS = the demux hash over the parsed 4-tuple, exactly as installRSS
	// steers the XSK queues.
	db.SetRSS(func(data []byte, queues int) int {
		if len(data) < EthHeaderBytes+IPv4HeaderBytes+4 {
			return 0
		}
		ihl := int(data[EthHeaderBytes]&0x0F) * 4
		if data[EthHeaderBytes+9] != ProtoTCP || len(data) < EthHeaderBytes+ihl+4 {
			return 0
		}
		var src, dst IP4
		copy(src[:], data[EthHeaderBytes+12:EthHeaderBytes+16])
		copy(dst[:], data[EthHeaderBytes+16:EthHeaderBytes+20])
		sport := be16(data[EthHeaderBytes+ihl : EthHeaderBytes+ihl+2])
		dport := be16(data[EthHeaderBytes+ihl+2 : EthHeaderBytes+ihl+4])
		return RXShard(src, dst, sport, dport, queues)
	})
	da.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sa.Input(f.Data, clk) })
	db.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sb.InputShard(f.Data, clk, q) })
	t.Cleanup(func() { sa.Close(); sb.Close(); da.Close(); db.Close() })
	return &tcpShardWorld{client: sa, server: sb, serverIP: serverIP}
}

// periodicLossLink drops every Nth outbound frame — steady loss, so the
// RTO engine stays busy for the whole test instead of healing once.
type periodicLossLink struct {
	devLink
	every   int64
	counter atomic.Int64
}

func (l *periodicLossLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	if l.counter.Add(1)%l.every == 0 {
		return clk.Now(), nil
	}
	return l.devLink.SendFrame(data, clk)
}

// TestTCPShardWidths runs concurrent echo connections at every width
// 1..64 and checks the home-shard invariant: the shard a connection is
// published on equals the RSS queue its frames arrive through, so the
// handshake, data, ACKs, and close of one flow all stay on one shard.
func TestTCPShardWidths(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8, 16, 32, 64} {
		width := width
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			t.Parallel()
			const conns = 8
			w := newTCPShardWorld(t, width, 0)
			l, err := w.server.TCPListen(7000, conns)
			if err != nil {
				t.Fatal(err)
			}
			// Server: accept and echo until the listener closes.
			var swg sync.WaitGroup
			swg.Add(1)
			go func() {
				defer swg.Done()
				var clk vtime.Clock
				var ewg sync.WaitGroup
				defer ewg.Wait()
				for {
					c, err := l.Accept(&clk, true)
					if err != nil {
						return
					}
					want := RXShard(c.RemoteAddr().IP, w.serverIP,
						c.RemoteAddr().Port, c.LocalAddr().Port, width)
					if c.Shard() != want {
						t.Errorf("conn %v published on shard %d, home shard %d",
							c.RemoteAddr(), c.Shard(), want)
					}
					ewg.Add(1)
					go func(c *TCPSocket) {
						defer ewg.Done()
						var eclk vtime.Clock
						buf := make([]byte, 2048)
						for {
							n, err := c.Recv(buf, &eclk, true)
							if err != nil || n == 0 {
								c.Close(&eclk)
								return
							}
							if _, err := c.Send(buf[:n], &eclk); err != nil {
								return
							}
						}
					}(c)
				}
			}()
			var cwg sync.WaitGroup
			for i := 0; i < conns; i++ {
				cwg.Add(1)
				go func(i int) {
					defer cwg.Done()
					var clk vtime.Clock
					c, err := w.client.TCPConnect(Addr{w.serverIP, 7000}, &clk)
					if err != nil {
						t.Errorf("conn %d: %v", i, err)
						return
					}
					msg := bytes.Repeat([]byte{byte(i)}, 1500+37*i)
					if _, err := c.Send(msg, &clk); err != nil {
						t.Errorf("conn %d send: %v", i, err)
						return
					}
					got := make([]byte, 0, len(msg))
					buf := make([]byte, 2048)
					for len(got) < len(msg) {
						n, err := c.Recv(buf, &clk, true)
						if err != nil || n == 0 {
							t.Errorf("conn %d recv: n=%d err=%v", i, n, err)
							return
						}
						got = append(got, buf[:n]...)
					}
					if !bytes.Equal(got, msg) {
						t.Errorf("conn %d: echo differs", i)
					}
					c.Close(&clk)
				}(i)
			}
			cwg.Wait()
			l.Close(nil)
			swg.Wait()
		})
	}
}

// TestTCPShardPortCollision pins global port ownership across shard
// replicas: a port can be listened on exactly once no matter which
// shard's replica a contender consults, and under concurrent contention
// exactly one listen wins.
func TestTCPShardPortCollision(t *testing.T) {
	w := newTCPShardWorld(t, 8, 0)
	l, err := w.server.TCPListen(7100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.server.TCPListen(7100, 4); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("second listen = %v, want ErrPortInUse", err)
	}
	l.Close(nil)

	const contenders = 16
	var wins atomic.Int32
	var wg sync.WaitGroup
	winners := make(chan *TCPSocket, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if lw, err := w.server.TCPListen(7101, 4); err == nil {
				wins.Add(1)
				winners <- lw
			} else if !errors.Is(err, ErrPortInUse) {
				t.Errorf("listen: %v", err)
			}
		}()
	}
	wg.Wait()
	close(winners)
	if wins.Load() != 1 {
		t.Fatalf("%d concurrent listens won port 7101, want exactly 1", wins.Load())
	}
	// The surviving listener is reachable through every shard: a connect
	// (whose SYN lands on the flow's RSS queue) must succeed repeatedly,
	// with different ephemeral ports steering to different shards.
	lw := <-winners
	go func() {
		var clk vtime.Clock
		for {
			if _, err := lw.Accept(&clk, true); err != nil {
				return
			}
		}
	}()
	var clk vtime.Clock
	for i := 0; i < 8; i++ {
		c, err := w.client.TCPConnect(Addr{w.serverIP, 7101}, &clk)
		if err != nil {
			t.Fatalf("connect %d through sharded replicas: %v", i, err)
		}
		c.Close(&clk)
	}
	lw.Close(nil)
}

// TestTCPShardAcceptCloseRebindRace churns listeners while clients
// connect: each port is repeatedly listened, accepted from, closed, and
// rebound while connects race against the lifecycle from the other
// stack. Connects may be refused (the port is down between rounds) but
// must never hang past their timeout, and the stack must survive under
// the race detector.
func TestTCPShardAcceptCloseRebindRace(t *testing.T) {
	const (
		width  = 16
		ports  = 3
		rounds = 6
	)
	w := newTCPShardWorld(t, width, 0)
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	// Clients: hammer every churned port with connects; refusals and
	// timeouts are expected outcomes, hangs and races are not.
	for p := 0; p < ports; p++ {
		cwg.Add(1)
		go func(p int) {
			defer cwg.Done()
			var clk vtime.Clock
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c, err := w.client.TCPConnect(Addr{w.serverIP, uint16(7200 + p)}, &clk); err == nil {
					c.Send([]byte("ping"), &clk)
					c.Close(&clk)
				}
			}
		}(p)
	}
	var lwg sync.WaitGroup
	for p := 0; p < ports; p++ {
		lwg.Add(1)
		go func(p int) {
			defer lwg.Done()
			var clk vtime.Clock
			for r := 0; r < rounds; r++ {
				l, err := w.server.TCPListen(uint16(7200+p), 2)
				if err != nil {
					t.Errorf("port %d round %d: %v", 7200+p, r, err)
					return
				}
				deadline := time.Now().Add(50 * time.Millisecond)
				for time.Now().Before(deadline) {
					c, err := l.Accept(&clk, false)
					if errors.Is(err, ErrWouldBlock) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						break
					}
					c.Close(&clk)
				}
				l.Close(&clk)
			}
		}(p)
	}
	lwg.Wait()
	close(stop)
	cwg.Wait()
}

// TestTCPShardRetransmitCloseRace keeps the RTO engine busy (a steadily
// lossy wire arms and fires retransmit timers throughout) while the
// application closes connections from another goroutine — the
// timer-wheel service path and teardown race the detector watches.
// Streams that complete before close must be byte-exact.
func TestTCPShardRetransmitCloseRace(t *testing.T) {
	const (
		width = 8
		conns = 6
	)
	w := newTCPShardWorld(t, width, 9) // drop every 9th frame
	l, err := w.server.TCPListen(7300, conns)
	if err != nil {
		t.Fatal(err)
	}
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		var clk vtime.Clock
		var ewg sync.WaitGroup
		defer ewg.Wait()
		for {
			c, err := l.Accept(&clk, true)
			if err != nil {
				return
			}
			ewg.Add(1)
			go func(c *TCPSocket) {
				defer ewg.Done()
				var eclk vtime.Clock
				buf := make([]byte, 4096)
				var total int
				for {
					n, err := c.Recv(buf, &eclk, true)
					if err != nil || n == 0 {
						break
					}
					total += n
				}
				c.Close(&eclk)
			}(c)
		}
	}()
	var cwg sync.WaitGroup
	for i := 0; i < conns; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			var clk vtime.Clock
			c, err := w.client.TCPConnect(Addr{w.serverIP, 7300}, &clk)
			if err != nil {
				return // SYN/SYN|ACK losses can exhaust the handshake; fine
			}
			payload := bytes.Repeat([]byte{byte(i + 1)}, 30000)
			done := make(chan struct{})
			go func() {
				defer close(done)
				c.Send(payload, &clk)
			}()
			// Half the connections close mid-stream — racing teardown
			// against in-flight retransmit timers.
			if i%2 == 0 {
				time.Sleep(time.Duration(5+i) * time.Millisecond)
				var cclk vtime.Clock
				c.Close(&cclk)
			}
			<-done
			if i%2 != 0 {
				var cclk vtime.Clock
				c.Close(&cclk)
			}
		}(i)
	}
	cwg.Wait()
	l.Close(nil)
	swg.Wait()
}

// TestTCPViewScribbleRefusal is the certification pin for the TCP view
// path: a host that rewrites a queued segment after the enclave
// certified it gets a deterministic refusal — the single trusted-copy
// checksum no longer verifies, the frame returns to the pool, and the
// stream never sees a corrupt byte. The unmodified retransmission of the
// same segment is then delivered exactly once.
func TestTCPViewScribbleRefusal(t *testing.T) {
	h, l := fuzzTCPWorld(t)
	var clk vtime.Clock

	// Handshake, playing the client by hand: SYN in, cookie SYN|ACK out.
	syn := tcpSeg{srcPort: 45000, dstPort: fuzzTCPPort, seq: 0x7000, flags: flagSYN, wnd: rcvBufCap}
	v, _ := h.mintView(t, buildTCPFrame(peerIP, harnessIP, syn))
	h.stack.InputView(v, &clk)
	h.link.mu.Lock()
	if len(h.link.frames) != 1 {
		h.link.mu.Unlock()
		t.Fatalf("SYN answered with %d frames, want 1 cookie SYN|ACK", len(h.link.frames))
	}
	synack := h.link.frames[0]
	h.link.frames = h.link.frames[:0]
	h.link.mu.Unlock()
	seg, ok := parseTCP(synack[EthHeaderBytes+IPv4HeaderBytes:])
	if !ok || seg.flags&(flagSYN|flagACK) != flagSYN|flagACK {
		t.Fatalf("reply is not a SYN|ACK: flags=%02x", seg.flags)
	}
	// Third segment: ACK the cookie; the connection is minted now.
	ack := tcpSeg{srcPort: 45000, dstPort: fuzzTCPPort, seq: 0x7001, ack: seg.seq + 1,
		flags: flagACK, wnd: rcvBufCap}
	v, _ = h.mintView(t, buildTCPFrame(peerIP, harnessIP, ack))
	h.stack.InputView(v, &clk)
	c, err := l.Accept(&clk, false)
	if err != nil {
		t.Fatalf("cookie ACK minted no connection: %v", err)
	}

	// A data segment, certified — then scribbled by the host before the
	// parse. The frozen header's checksum no longer covers the rewritten
	// payload: deterministic refusal.
	data := tcpSeg{srcPort: 45000, dstPort: fuzzTCPPort, seq: 0x7001, ack: seg.seq + 1,
		flags: flagACK | flagPSH, wnd: rcvBufCap, payload: []byte("SET k honest-value")}
	frame := buildTCPFrame(peerIP, harnessIP, data)
	v, idx := h.mintView(t, frame)
	h.scribble(t, idx, EthHeaderBytes+IPv4HeaderBytes+TCPHeaderBytes, []byte("SET k EVIL"))
	h.stack.InputView(v, &clk)
	buf := make([]byte, 64)
	if n, err := c.Recv(buf, &clk, false); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("scribbled segment reached the stream: n=%d err=%v buf=%q", n, err, buf[:n])
	}
	if free := h.u.FreeFrames(); free != int(h.u.FrameCount()) {
		t.Fatalf("refused frame not released: free=%d want %d", free, h.u.FrameCount())
	}

	// The honest retransmission of the same segment delivers exactly the
	// original bytes — the drop was a refusal, not a corruption.
	v, _ = h.mintView(t, buildTCPFrame(peerIP, harnessIP, data))
	h.stack.InputView(v, &clk)
	n, err := c.Recv(buf, &clk, false)
	if err != nil {
		t.Fatalf("honest retransmission not delivered: %v", err)
	}
	if got := string(buf[:n]); got != "SET k honest-value" {
		t.Fatalf("stream corrupted: %q", got)
	}
	if free := h.u.FreeFrames(); free != int(h.u.FrameCount()) {
		t.Fatalf("delivered frame not released: free=%d want %d", free, h.u.FrameCount())
	}
}
