package netstack

// Edge-case TCP tests: loss recovery via the RTO safety net, receive-
// window stalls and window-update wakeups, handshake retransmission, and
// state-machine corners that the happy-path tests never touch.

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"rakis/internal/netsim"
	"rakis/internal/vtime"
)

// lossyLink wraps a devLink and drops the Nth outbound frame once.
type lossyLink struct {
	devLink
	dropAt  int64
	counter atomic.Int64
}

func (l *lossyLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	if l.counter.Add(1) == l.dropAt {
		return clk.Now(), nil // swallowed: the wire "lost" it
	}
	return l.devLink.SendFrame(data, clk)
}

// lossyWorld wires a stack with a frame-dropping link on side a.
func lossyWorld(t *testing.T, dropAt int64) (*Stack, *Stack) {
	t.Helper()
	m := vtime.Default()
	da, db := netsim.NewPair(m,
		netsim.Config{Name: "la", MAC: [6]byte{2, 0, 0, 0, 1, 1}},
		netsim.Config{Name: "lb", MAC: [6]byte{2, 0, 0, 0, 1, 2}},
	)
	ll := &lossyLink{devLink: devLink{da}, dropAt: dropAt}
	sa, err := New(Config{Name: "a", Dev: ll, IP: IP4{10, 1, 0, 1}, Model: m, EnableTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := New(Config{Name: "b", Dev: devLink{db}, IP: IP4{10, 1, 0, 2}, Model: m, EnableTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	da.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sa.Input(f.Data, clk) })
	db.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sb.Input(f.Data, clk) })
	t.Cleanup(func() { sa.Close(); sb.Close(); da.Close(); db.Close() })
	return sa, sb
}

func TestTCPRetransmitsLostData(t *testing.T) {
	// Drop one data frame mid-stream; the RTO safety net must recover.
	sa, sb := lossyWorld(t, 8)
	l, _ := sb.TCPListen(9100, 4)
	got := make(chan []byte, 1)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err != nil {
			return
		}
		var data []byte
		buf := make([]byte, 4096)
		for len(data) < 20000 {
			n, err := c.Recv(buf, &clk, true)
			if err != nil || n == 0 {
				break
			}
			data = append(data, buf[:n]...)
		}
		got <- data
	}()

	var clk vtime.Clock
	c, err := sa.TCPConnect(Addr{IP4{10, 1, 0, 2}, 9100}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 20000)
	for i := range want {
		want[i] = byte(i * 3)
	}
	if _, err := c.Send(want, &clk); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if !bytes.Equal(data, want) {
			t.Fatalf("stream corrupted after loss: %d bytes", len(data))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retransmission never recovered the stream")
	}
}

func TestTCPHandshakeSYNLoss(t *testing.T) {
	// Drop the very first frame (the SYN): the connect must still
	// succeed via SYN retransmission.
	sa, sb := lossyWorld(t, 1)
	l, _ := sb.TCPListen(9101, 4)
	go func() {
		var clk vtime.Clock
		l.Accept(&clk, true)
	}()
	var clk vtime.Clock
	c, err := sa.TCPConnect(Addr{IP4{10, 1, 0, 2}, 9101}, &clk)
	if err != nil {
		t.Fatalf("connect after SYN loss: %v", err)
	}
	if c.State() != "ESTABLISHED" {
		t.Fatalf("state = %s", c.State())
	}
}

func TestTCPZeroWindowStallAndRecovery(t *testing.T) {
	// The receiver stops reading: the sender must fill the 64 KB window
	// and stall rather than overrun; when the reader drains, the window
	// update un-stalls it.
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9102, 4)
	acc := make(chan *TCPSocket, 1)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err == nil {
			acc <- c
		}
	}()
	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9102}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acc

	// Push 300 KB without any reader; Send must complete (buffered +
	// windowed) while the unread portion stays bounded by window+buffer.
	payload := make([]byte, 300*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	sendDone := make(chan error, 1)
	go func() {
		_, err := c.Send(payload, &clk)
		sendDone <- err
	}()

	// Give the transfer a moment: the receive buffer must cap at the
	// advertised window, proving flow control engaged.
	time.Sleep(100 * time.Millisecond)
	srv.mu.Lock()
	buffered := len(srv.rcvBuf)
	srv.mu.Unlock()
	if buffered > rcvBufCap {
		t.Fatalf("receiver buffered %d > window %d", buffered, rcvBufCap)
	}

	// Drain; the stalled sender resumes and the bytes are exact.
	var sclk vtime.Clock
	var got []byte
	buf := make([]byte, 32768)
	for len(got) < len(payload) {
		n, err := srv.Recv(buf, &sclk, true)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if err := <-sendDone; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("flow-controlled stream corrupted")
	}
}

func TestTCPListenerBacklogOverflow(t *testing.T) {
	w := newWorld(t, nil)
	l, err := w.b.TCPListen(9103, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two connects without an accept: the first fills the backlog; the
	// second client may believe it connected (its handshake completed
	// before the overflow was detected, as with a real kernel), but the
	// server side must have dropped it — only one accept is possible.
	var clk vtime.Clock
	if _, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9103}, &clk); err != nil {
		t.Fatalf("first connect: %v", err)
	}
	w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9103}, &clk) // may or may not error
	time.Sleep(20 * time.Millisecond)
	if _, err := l.Accept(&clk, false); err != nil {
		t.Fatalf("first accept: %v", err)
	}
	if _, err := l.Accept(&clk, false); err != ErrWouldBlock {
		t.Fatalf("second accept = %v, want ErrWouldBlock (child dropped)", err)
	}
}

func TestTCPSimultaneousClose(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9104, 4)
	acc := make(chan *TCPSocket, 1)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err == nil {
			acc <- c
		}
	}()
	var cclk, sclk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9104}, &cclk)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acc
	// Close both ends at once; both must reach EOF cleanly.
	c.Close(&cclk)
	srv.Close(&sclk)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		cs, ss := c.State(), srv.State()
		if (cs == "CLOSED" || cs == "TIME_WAIT") && (ss == "CLOSED" || ss == "TIME_WAIT") {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("close never settled: client=%s server=%s", c.State(), srv.State())
}

func TestTCPRecvAfterPeerReset(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9105, 4)
	acc := make(chan *TCPSocket, 1)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err == nil {
			acc <- c
		}
	}()
	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9105}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-acc
	srv.abort(ErrReset) // hard kill, like a process dying
	// Any blocking receive on the peer eventually errors or EOFs; it
	// must not hang. (The abort is silent — no RST is emitted by the
	// test hook — so rely on the retransmit path erroring out or the
	// nonblocking state check.)
	if srv.State() != "CLOSED" {
		t.Fatalf("aborted socket state = %s", srv.State())
	}
	buf := make([]byte, 8)
	if _, err := srv.Recv(buf, &clk, false); err == nil {
		t.Fatal("recv on aborted socket must error")
	}
	_ = c
}
