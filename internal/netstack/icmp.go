package netstack

import "rakis/internal/vtime"

// ICMP types handled by the full stack configuration.
const (
	icmpEchoReply      byte = 0
	icmpUnreachable    byte = 3
	icmpEchoRequest    byte = 8
	icmpCodePortUnrch  byte = 3
	icmpMinBytes            = 8                   // type, code, checksum, rest-of-header
	icmpUnreachPayload      = IPv4HeaderBytes + 8 // original header + 8 bytes
)

// marshalICMP builds an ICMP message: type, code, checksum, then body
// (body includes the 4 rest-of-header bytes: id/seq or unused).
func marshalICMP(typ, code byte, body []byte) []byte {
	b := make([]byte, 4+len(body))
	b[0], b[1] = typ, code
	copy(b[4:], body)
	put16(b[2:4], Checksum(b))
	return b
}

// handleICMP implements echo replies. Other types are accepted silently;
// the trimmed enclave stack never reaches this code.
func (s *Stack) handleICMP(ip IPv4Header, payload []byte, clk *vtime.Clock) {
	if len(payload) < icmpMinBytes {
		return
	}
	if Checksum(payload) != 0 {
		return
	}
	switch payload[0] {
	case icmpEchoRequest:
		reply := make([]byte, len(payload))
		copy(reply, payload)
		reply[0] = icmpEchoReply
		put16(reply[2:4], 0)
		put16(reply[2:4], Checksum(reply))
		s.sendIP(ProtoICMP, ip.Src, reply, clk)
	default:
	}
}

// sendPortUnreachable notifies the sender of a datagram that hit a closed
// port, as the Linux kernel does.
func (s *Stack) sendPortUnreachable(origHdr IPv4Header, origPkt []byte, clk *vtime.Clock) {
	if !s.cfg.EnableICMP {
		return
	}
	n := icmpUnreachPayload
	if n > len(origPkt) {
		n = len(origPkt)
	}
	body := make([]byte, 4+n) // 4 unused bytes, then original datagram
	copy(body[4:], origPkt[:n])
	msg := marshalICMP(icmpUnreachable, icmpCodePortUnrch, body)
	s.sendIP(ProtoICMP, origHdr.Src, msg, clk)
}
