package netstack

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rakis/internal/vtime"
)

// These tests exercise the sharded UDP demux directly — the per-shard
// replica maps, per-socket shard queues, and the MPMC receiver protocol
// — under the race detector, across shard widths 1..64. They drive
// inputUDP straight (no device, no rings) so the only moving parts are
// the demux data structures themselves.

// nullLink is a sink device for stacks that only receive.
type nullLink struct{}

func (nullLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) { return clk.Now(), nil }
func (nullLink) MAC() [6]byte                                            { return [6]byte{2, 0, 0, 0, 0, 9} }
func (nullLink) MTU() int                                                { return 1500 }

func newShardStack(t *testing.T, shards int) *Stack {
	t.Helper()
	s, err := New(Config{
		Name:   fmt.Sprintf("shards%d", shards),
		Dev:    nullLink{},
		IP:     IP4{10, 9, 0, 2},
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// injectUDP feeds one datagram into the stack through the given shard,
// exactly as an FM pump bound to that queue would after RSS steering.
func injectUDP(s *Stack, shard int, src Addr, dport uint16, data []byte, clk *vtime.Clock) {
	p := make([]byte, UDPHeaderBytes+len(data))
	put16(p[0:2], src.Port)
	put16(p[2:4], dport)
	put16(p[4:6], uint16(len(p)))
	// checksum 0: legal for UDP/IPv4, and keeps the focus on the demux.
	copy(p[UDPHeaderBytes:], data)
	h := IPv4Header{Src: src.IP, Dst: s.IP()}
	s.inputUDP(h, p, nil, clk, shard)
}

// shardFlow picks a source port that RSS-steers (srcIP -> stack, port ->
// dport) onto the wanted shard.
func shardFlow(t *testing.T, s *Stack, srcIP IP4, dport uint16, shard int) Addr {
	t.Helper()
	for p := uint16(20000); p < 65000; p++ {
		if RXShard(srcIP, s.IP(), p, dport, s.Shards()) == shard {
			return Addr{IP: srcIP, Port: p}
		}
	}
	t.Fatalf("no port steers to shard %d/%d", shard, s.Shards())
	return Addr{}
}

// TestShardDemuxWidths runs one injector pump per shard at every width
// 1..64 and checks, with a single receiver, that every datagram arrives
// and each flow's sequence numbers stay in order — the per-flow FIFO
// guarantee RSS steering is supposed to buy.
func TestShardDemuxWidths(t *testing.T) {
	const perShard = 200
	for _, width := range []int{1, 2, 3, 4, 7, 8, 16, 32, 64} {
		width := width
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			t.Parallel()
			s := newShardStack(t, width)
			if s.Shards() != width {
				t.Fatalf("Shards() = %d, want %d", s.Shards(), width)
			}
			sock, err := s.UDPBind(7)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for sh := 0; sh < width; sh++ {
				src := shardFlow(t, s, IP4{10, 9, 0, 100}, 7, sh)
				wg.Add(1)
				go func(sh int, src Addr) {
					defer wg.Done()
					var clk vtime.Clock
					buf := make([]byte, 4)
					for i := 0; i < perShard; i++ {
						put16(buf[0:2], uint16(sh))
						put16(buf[2:4], uint16(i))
						injectUDP(s, sh, src, 7, buf, &clk)
					}
				}(sh, src)
			}
			next := make([]int, width)
			var clk vtime.Clock
			for n := 0; n < width*perShard; n++ {
				d, err := sock.RecvFrom(&clk, true)
				if err != nil {
					t.Fatal(err)
				}
				b := d.Bytes()
				if len(b) != 4 {
					t.Fatalf("payload len %d", len(b))
				}
				sh, seq := int(be16(b[0:2])), int(be16(b[2:4]))
				if seq != next[sh] {
					t.Fatalf("shard %d: got seq %d, want %d (per-flow FIFO broken)", sh, seq, next[sh])
				}
				next[sh]++
			}
			wg.Wait()
			if _, err := sock.RecvFrom(&clk, false); !errors.Is(err, ErrWouldBlock) {
				t.Fatalf("queue not empty after full drain: %v", err)
			}
		})
	}
}

// TestShardDemuxMPMC floods all shards while several receivers share the
// socket — the multi-producer multi-consumer protocol (coalesced wakeup
// channel plus baton re-signal) must deliver every datagram with no lost
// wakeups and no duplicates.
func TestShardDemuxMPMC(t *testing.T) {
	const (
		width     = 16
		perShard  = 300
		receivers = 8
	)
	s := newShardStack(t, width)
	sock, err := s.UDPBind(7)
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	seen := make([]atomic.Int32, width*perShard)
	var rwg sync.WaitGroup
	for r := 0; r < receivers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var clk vtime.Clock
			for {
				d, err := sock.RecvFrom(&clk, true)
				if err != nil {
					return // closed: every datagram must already be counted
				}
				b := d.Bytes()
				id := int(be16(b[0:2]))*perShard + int(be16(b[2:4]))
				if seen[id].Add(1) != 1 {
					t.Errorf("datagram %d delivered twice", id)
				}
				got.Add(1)
			}
		}()
	}
	var iwg sync.WaitGroup
	for sh := 0; sh < width; sh++ {
		src := shardFlow(t, s, IP4{10, 9, 0, 101}, 7, sh)
		iwg.Add(1)
		go func(sh int, src Addr) {
			defer iwg.Done()
			var clk vtime.Clock
			buf := make([]byte, 4)
			for i := 0; i < perShard; i++ {
				put16(buf[0:2], uint16(sh))
				put16(buf[2:4], uint16(i))
				injectUDP(s, sh, src, 7, buf, &clk)
			}
		}(sh, src)
	}
	iwg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < width*perShard && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != width*perShard {
		t.Fatalf("delivered %d of %d", got.Load(), width*perShard)
	}
	sock.Close()
	rwg.Wait()
}

// TestShardRebindDifferentShard closes a bound port and rebinds it, then
// delivers through a different shard than the first socket ever used:
// the rebind must be visible in every shard replica, and nothing from
// the old socket may linger.
func TestShardRebindDifferentShard(t *testing.T) {
	const width = 8
	s := newShardStack(t, width)
	first, err := s.UDPBind(7)
	if err != nil {
		t.Fatal(err)
	}
	var clk vtime.Clock
	src0 := shardFlow(t, s, IP4{10, 9, 0, 102}, 7, 0)
	injectUDP(s, 0, src0, 7, []byte("old"), &clk)
	if d, err := first.RecvFrom(&clk, true); err != nil || string(d.Bytes()) != "old" {
		t.Fatalf("first socket recv: %v", err)
	}
	first.Close()
	for sh := 0; sh < width; sh++ {
		if s.lookupUDPShard(7, sh) != nil {
			t.Fatalf("shard %d replica still maps port 7 after close", sh)
		}
	}
	second, err := s.UDPBind(7)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	for sh := 0; sh < width; sh++ {
		if s.lookupUDPShard(7, sh) != second {
			t.Fatalf("shard %d replica does not map the rebound socket", sh)
		}
	}
	// Deliver through a different shard than the first socket ever saw.
	src5 := shardFlow(t, s, IP4{10, 9, 0, 103}, 7, 5)
	injectUDP(s, 5, src5, 7, []byte("new"), &clk)
	d, err := second.RecvFrom(&clk, true)
	if err != nil || string(d.Bytes()) != "new" {
		t.Fatalf("rebound socket recv: %q, %v", d.Bytes(), err)
	}
	if _, err := first.RecvFrom(&clk, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed socket recv = %v, want ErrClosed", err)
	}
}

// TestShardPortCollision checks that port ownership stays global across
// shards: two flows hashing to different shards still cannot bind the
// same port, and under concurrent contention exactly one bind wins.
func TestShardPortCollision(t *testing.T) {
	s := newShardStack(t, 8)
	sock, err := s.UDPBind(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.UDPBind(7); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("second bind = %v, want ErrPortInUse", err)
	}
	sock.Close()

	const contenders = 16
	var wins atomic.Int32
	var wg sync.WaitGroup
	winners := make(chan *UDPSocket, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w, err := s.UDPBind(4242); err == nil {
				wins.Add(1)
				winners <- w
			} else if !errors.Is(err, ErrPortInUse) {
				t.Errorf("bind: %v", err)
			}
		}()
	}
	wg.Wait()
	close(winners)
	if wins.Load() != 1 {
		t.Fatalf("%d concurrent binds won port 4242, want exactly 1", wins.Load())
	}
	w := <-winners
	for sh := 0; sh < s.Shards(); sh++ {
		if s.lookupUDPShard(4242, sh) != w {
			t.Fatalf("shard %d replica disagrees about port 4242's owner", sh)
		}
	}
}

// TestShardBindCloseRecvRace hammers bind/close/inject/recv on the same
// ports from every direction at width 64. The assertions are weak on
// purpose — the race detector is the real oracle; the invariant checked
// here is only that a datagram is never delivered to a closed socket's
// caller and the stack survives. Injection volume is bounded (not a
// spin loop) so the test stays fair on a single-core runner.
func TestShardBindCloseRecvRace(t *testing.T) {
	const (
		width    = 64
		ports    = 4
		rounds   = 12
		perShard = 40
	)
	s := newShardStack(t, width)
	var wg sync.WaitGroup
	// Injectors: one pump per shard, spraying all contested ports a
	// bounded number of times, yielding between bursts.
	for sh := 0; sh < width; sh++ {
		src := shardFlow(t, s, IP4{10, 9, 0, 104}, 9000, sh)
		wg.Add(1)
		go func(sh int, src Addr) {
			defer wg.Done()
			var clk vtime.Clock
			buf := []byte{0xAB}
			for i := 0; i < perShard; i++ {
				for p := 0; p < ports; p++ {
					injectUDP(s, sh, src, uint16(9000+p), buf, &clk)
				}
				runtime.Gosched()
			}
		}(sh, src)
	}
	// Churners: each owns one port, repeatedly binding, receiving a
	// little, and closing.
	var cwg sync.WaitGroup
	for p := 0; p < ports; p++ {
		cwg.Add(1)
		go func(p int) {
			defer cwg.Done()
			var clk vtime.Clock
			for r := 0; r < rounds; r++ {
				sock, err := s.UDPBind(uint16(9000 + p))
				if err != nil {
					t.Errorf("port %d round %d: %v", 9000+p, r, err)
					return
				}
				for i := 0; i < 4; i++ {
					if _, err := sock.RecvTimeout(&clk, 20*time.Millisecond); err != nil && !errors.Is(err, ErrTimeout) {
						t.Errorf("port %d: recv: %v", 9000+p, err)
					}
				}
				sock.Close()
				if _, err := sock.RecvFrom(&clk, false); !errors.Is(err, ErrClosed) {
					t.Errorf("port %d: recv on closed = %v", 9000+p, err)
				}
			}
		}(p)
	}
	cwg.Wait()
	wg.Wait()
}
