package netstack

import (
	"errors"
	"sync"
)

// IPv4HeaderBytes is the length of an IPv4 header without options.
const IPv4HeaderBytes = 20

// IPv4Header is a decoded IPv4 header (options are validated but not
// retained).
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	DF       bool
	MF       bool
	FragOff  uint16 // in bytes
	TTL      byte
	Proto    byte
	Src      IP4
	Dst      IP4
	HdrLen   int
}

// IPv4 parsing errors, distinguished for fuzzing triage.
var (
	ErrIPVersion  = errors.New("netstack: not IPv4")
	ErrIPHeader   = errors.New("netstack: bad IPv4 header")
	ErrIPChecksum = errors.New("netstack: bad IPv4 checksum")
	ErrIPTTL      = errors.New("netstack: TTL expired")
)

// ParseIPv4 decodes and validates an IPv4 header, returning the header
// and the L4 payload (trimmed to TotalLen).
func ParseIPv4(pkt []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(pkt) < IPv4HeaderBytes {
		return h, nil, ErrIPHeader
	}
	if pkt[0]>>4 != 4 {
		return h, nil, ErrIPVersion
	}
	hdrLen := int(pkt[0]&0x0F) * 4
	if hdrLen < IPv4HeaderBytes || len(pkt) < hdrLen {
		return h, nil, ErrIPHeader
	}
	h.HdrLen = hdrLen
	h.TotalLen = be16(pkt[2:4])
	if int(h.TotalLen) < hdrLen || int(h.TotalLen) > len(pkt) {
		return h, nil, ErrIPHeader
	}
	if Checksum(pkt[:hdrLen]) != 0 {
		return h, nil, ErrIPChecksum
	}
	h.ID = be16(pkt[4:6])
	fl := be16(pkt[6:8])
	h.DF = fl&0x4000 != 0
	h.MF = fl&0x2000 != 0
	h.FragOff = (fl & 0x1FFF) * 8
	h.TTL = pkt[8]
	if h.TTL == 0 {
		return h, nil, ErrIPTTL
	}
	h.Proto = pkt[9]
	copy(h.Src[:], pkt[12:16])
	copy(h.Dst[:], pkt[16:20])
	return h, pkt[hdrLen:h.TotalLen], nil
}

// MarshalIPv4 encodes an IPv4 packet (20-byte header, no options) around
// the payload.
func MarshalIPv4(h IPv4Header, payload []byte) []byte {
	pkt := make([]byte, IPv4HeaderBytes+len(payload))
	pkt[0] = 0x45
	total := IPv4HeaderBytes + len(payload)
	put16(pkt[2:4], uint16(total))
	put16(pkt[4:6], h.ID)
	var fl uint16
	if h.DF {
		fl |= 0x4000
	}
	if h.MF {
		fl |= 0x2000
	}
	fl |= (h.FragOff / 8) & 0x1FFF
	put16(pkt[6:8], fl)
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	pkt[8] = ttl
	pkt[9] = h.Proto
	copy(pkt[12:16], h.Src[:])
	copy(pkt[16:20], h.Dst[:])
	put16(pkt[10:12], Checksum(pkt[:IPv4HeaderBytes]))
	copy(pkt[IPv4HeaderBytes:], payload)
	return pkt
}

// fragKey identifies one in-progress reassembly.
type fragKey struct {
	src, dst IP4
	id       uint16
	proto    byte
}

type fragBuf struct {
	parts   map[uint16][]byte // offset -> data
	gotLast bool
	lastEnd int
	bytes   int
	seq     uint64 // insertion order for eviction
}

// reassembler rebuilds fragmented IPv4 datagrams. It caps both the number
// of concurrent reassemblies and the per-datagram size to bound memory
// under hostile fragment floods.
type reassembler struct {
	mu    sync.Mutex
	bufs  map[fragKey]*fragBuf
	seq   uint64
	limit int
	max   int
}

func newReassembler() *reassembler {
	return &reassembler{bufs: make(map[fragKey]*fragBuf), limit: 32, max: 1 << 16}
}

// add feeds one fragment. It returns the full payload once complete, or
// nil while the datagram is still partial (or invalid).
func (r *reassembler) add(h IPv4Header, payload []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := fragKey{h.Src, h.Dst, h.ID, h.Proto}
	fb := r.bufs[key]
	if fb == nil {
		if len(r.bufs) >= r.limit {
			r.evictOldest()
		}
		r.seq++
		fb = &fragBuf{parts: make(map[uint16][]byte), seq: r.seq}
		r.bufs[key] = fb
	}
	end := int(h.FragOff) + len(payload)
	if end > r.max {
		delete(r.bufs, key)
		return nil
	}
	if !h.MF {
		// Non-final fragments must be multiples of 8; the final fragment
		// fixes the datagram length.
		fb.gotLast = true
		fb.lastEnd = end
	} else if len(payload)%8 != 0 {
		delete(r.bufs, key)
		return nil
	}
	if _, dup := fb.parts[h.FragOff]; !dup {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		fb.parts[h.FragOff] = cp
		fb.bytes += len(payload)
		if fb.bytes > r.max {
			delete(r.bufs, key)
			return nil
		}
	}
	if !fb.gotLast {
		return nil
	}
	// Check hole-freeness from 0 to lastEnd.
	full := make([]byte, fb.lastEnd)
	covered := 0
	for covered < fb.lastEnd {
		part, ok := fb.parts[uint16(covered)]
		if !ok {
			return nil // hole remains
		}
		copy(full[covered:], part)
		covered += len(part)
		if len(part) == 0 {
			return nil
		}
	}
	delete(r.bufs, key)
	return full
}

func (r *reassembler) evictOldest() {
	var oldKey fragKey
	oldSeq := uint64(1<<63 - 1)
	for k, v := range r.bufs {
		if v.seq < oldSeq {
			oldSeq, oldKey = v.seq, k
		}
	}
	delete(r.bufs, oldKey)
}

// fragmentIPv4 splits an L4 payload into IPv4 packets that fit the MTU.
func fragmentIPv4(h IPv4Header, payload []byte, mtu int) [][]byte {
	maxData := (mtu - IPv4HeaderBytes) &^ 7
	if len(payload)+IPv4HeaderBytes <= mtu || maxData <= 0 {
		return [][]byte{MarshalIPv4(h, payload)}
	}
	var pkts [][]byte
	for off := 0; off < len(payload); off += maxData {
		end := off + maxData
		mf := true
		if end >= len(payload) {
			end = len(payload)
			mf = false
		}
		fh := h
		fh.FragOff = uint16(off)
		fh.MF = mf
		pkts = append(pkts, MarshalIPv4(fh, payload[off:end]))
	}
	return pkts
}
