package netstack

import (
	"bytes"
	"sync"
	"testing"

	"rakis/internal/mem"
	"rakis/internal/umem"
	"rakis/internal/vtime"
)

// The adversarial harness for the certify-in-place RX path: a hostile
// host scribbles UMem frames around and between the enclave's certified
// reads, and the parse must stay deterministic — stale-but-consistent
// delivery or outright refusal, never a header parsed from two different
// byte generations.

// capLink is a LinkDevice that captures transmitted frames.
type capLink struct {
	mu     sync.Mutex
	frames [][]byte
}

func (l *capLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frames = append(l.frames, append([]byte(nil), data...))
	return clk.Now(), nil
}
func (l *capLink) MAC() [6]byte { return [6]byte{2, 0, 0, 0, 0, 9} }
func (l *capLink) MTU() int     { return 1500 }

// viewHarness is one stack wired over a UMem whose frames can be minted
// into certified views and scribbled from the host role.
type viewHarness struct {
	sp    *mem.Space
	u     *umem.UMem
	stack *Stack
	link  *capLink
	ctrs  *vtime.Counters
}

var harnessIP = IP4{10, 9, 9, 9}

func newViewHarness(t testing.TB) *viewHarness {
	t.Helper()
	sp := mem.NewSpace(1<<20, 1<<22)
	base, err := sp.Alloc(mem.Untrusted, 16*2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	ctrs := &vtime.Counters{}
	u, err := umem.New(umem.Config{Space: sp, Base: base, FrameSize: 2048, FrameCount: 16, Counters: ctrs})
	if err != nil {
		t.Fatal(err)
	}
	link := &capLink{}
	stack, err := New(Config{Name: "enclave", Dev: link, IP: harnessIP, Counters: ctrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	return &viewHarness{sp: sp, u: u, stack: stack, link: link, ctrs: ctrs}
}

// mintView writes frame into a fresh UMem frame and certifies a view
// over it, exactly as the XSK RX path would after descriptor validation.
func (h *viewHarness) mintView(t testing.TB, frame []byte) (mem.View, uint32) {
	t.Helper()
	idx, err := h.u.Alloc(umem.OwnerFill)
	if err != nil {
		t.Fatal(err)
	}
	off := h.u.FrameOffset(idx)
	dst, err := h.sp.Bytes(mem.RoleHost, h.u.Base()+mem.Addr(off), uint64(len(frame)))
	if err != nil {
		t.Fatal(err)
	}
	copy(dst, frame)
	vidx, gen, err := h.u.ValidateView(off, uint32(len(frame)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.u.MakeView(vidx, gen, off, uint32(len(frame)), h.u)
	if err != nil {
		t.Fatal(err)
	}
	return v, idx
}

// scribble rewrites frame bytes from the host role — the hostile write.
func (h *viewHarness) scribble(t testing.TB, idx uint32, off int, b []byte) {
	t.Helper()
	raw, err := h.sp.Bytes(mem.RoleHost, h.u.FrameAddr(idx)+mem.Addr(off), uint64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	copy(raw, b)
}

// buildUDPFrame assembles a checksummed Ethernet/IPv4/UDP frame.
func buildUDPFrame(src, dst IP4, sport, dport uint16, payload []byte) []byte {
	dgram := make([]byte, UDPHeaderBytes+len(payload))
	put16(dgram[0:2], sport)
	put16(dgram[2:4], dport)
	put16(dgram[4:6], uint16(len(dgram)))
	copy(dgram[UDPHeaderBytes:], payload)
	sum := pseudoHeaderSum(src, dst, ProtoUDP, len(dgram))
	ck := checksumFold(checksumPartial(sum, dgram))
	if ck == 0 {
		ck = 0xFFFF
	}
	put16(dgram[6:8], ck)
	pkt := MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoUDP, Src: src, Dst: dst}, dgram)
	return MarshalEth(EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 9}, Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}, pkt)
}

var peerIP = IP4{10, 0, 0, 1}

// TestInputViewDeliversInPlace: a mainstream frame arrives as a view,
// stays a view through the socket queue, and pays its single copy at the
// app boundary; the frame returns to the pool afterwards.
func TestInputViewDeliversInPlace(t *testing.T) {
	h := newViewHarness(t)
	sock, err := h.stack.UDPBind(4242)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("certify in place")
	v, idx := h.mintView(t, buildUDPFrame(peerIP, harnessIP, 12345, 4242, payload))
	var clk vtime.Clock
	h.stack.InputView(v, &clk)
	d, err := sock.RecvFrom(&clk, false)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsView() {
		t.Fatal("datagram should still be view-backed at the socket queue")
	}
	if got := d.Bytes(); !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}
	if h.u.Owner(idx) != umem.OwnerUser {
		t.Fatalf("frame owner = %v after consumption, want user", h.u.Owner(idx))
	}
	if h.u.FreeFrames() != int(h.u.FrameCount()) {
		t.Fatalf("free frames = %d, want %d", h.u.FreeFrames(), h.u.FrameCount())
	}
	if d.Src.IP != peerIP || d.Src.Port != 12345 {
		t.Fatalf("src = %v", d.Src)
	}
}

// TestInputViewFallbackMatchesCopyPath: non-mainstream shapes (here IP
// fragments, which need reassembly) fall back to one boundary copy plus
// the classic Input path and behave exactly like a copied delivery.
func TestInputViewFallbackMatchesCopyPath(t *testing.T) {
	h := newViewHarness(t)
	sock, err := h.stack.UDPBind(4242)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2000) // forces fragmentation at the sender
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	dgram := make([]byte, UDPHeaderBytes+len(payload))
	put16(dgram[0:2], 12345)
	put16(dgram[2:4], 4242)
	put16(dgram[4:6], uint16(len(dgram)))
	copy(dgram[UDPHeaderBytes:], payload)
	h9 := IPv4Header{TTL: 64, Proto: ProtoUDP, Src: peerIP, Dst: harnessIP, ID: 9}
	var clk vtime.Clock
	for _, pkt := range fragmentIPv4(h9, dgram, 1500) {
		frame := MarshalEth(EthHeader{Dst: h.link.MAC(), Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}, pkt)
		v, _ := h.mintView(t, frame)
		h.stack.InputView(v, &clk)
	}
	d, err := sock.RecvFrom(&clk, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsView() {
		t.Fatal("reassembled datagram cannot be view-backed")
	}
	if !bytes.Equal(d.Bytes(), payload) {
		t.Fatal("reassembled payload differs")
	}
	if h.u.FreeFrames() != int(h.u.FrameCount()) {
		t.Fatalf("fragment frames leaked: free = %d", h.u.FreeFrames())
	}
}

// TestViewScribbleAfterCertifyIsDeterministic: the hostile host rewrites
// the frame between certification and the parse. Every header decision
// comes from one frozen snapshot, so the outcome is deterministic: the
// scribbled checksum no longer verifies and the datagram is refused —
// never a parse mixing pre- and post-scribble bytes.
func TestViewScribbleAfterCertifyIsDeterministic(t *testing.T) {
	h := newViewHarness(t)
	sock, err := h.stack.UDPBind(4242)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("scribble target!")
	v, idx := h.mintView(t, buildUDPFrame(peerIP, harnessIP, 12345, 4242, payload))

	// Hostile write after certification, before the parse: flip payload
	// bytes. The UDP checksum in the (equally frozen) header no longer
	// matches, so the parse refuses the datagram.
	h.scribble(t, idx, EthHeaderBytes+IPv4HeaderBytes+UDPHeaderBytes, []byte("SCRIBBLE"))
	var clk vtime.Clock
	h.stack.InputView(v, &clk)
	if _, err := sock.RecvFrom(&clk, false); err != ErrWouldBlock {
		t.Fatal("checksum-scribbled datagram was delivered")
	}
	if h.u.Owner(idx) != umem.OwnerUser || h.u.FreeFrames() != int(h.u.FrameCount()) {
		t.Fatalf("refused frame not released: owner=%v free=%d", h.u.Owner(idx), h.u.FreeFrames())
	}

	// Scribble after enqueue: the view-backed datagram is queued, then
	// the host rewrites the payload before the app copies it out. The
	// delivery is stale-but-consistent: the certified length holds, the
	// content is whatever single generation the one copy observed.
	v2, idx2 := h.mintView(t, buildUDPFrame(peerIP, harnessIP, 12345, 4242, []byte("aaaaaaaa")))
	h.stack.InputView(v2, &clk)
	h.scribble(t, idx2, EthHeaderBytes+IPv4HeaderBytes+UDPHeaderBytes, []byte("bbbbbbbb"))
	d, err := sock.RecvFrom(&clk, false)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Bytes()
	if len(got) != 8 {
		t.Fatalf("certified length violated: got %d bytes", len(got))
	}
	if !bytes.Equal(got, []byte("bbbbbbbb")) {
		t.Fatalf("expected the post-scribble generation, got %q", got)
	}
}

// TestNegativeControlLiveRereadDiverges is the proof that the Snap
// discipline is load-bearing: a copy-free parser that re-read the live
// frame for each decision — the shape this refactor forbids — observes
// two different values for the same header field across a scribble,
// while the frozen snapshot observes one.
func TestNegativeControlLiveRereadDiverges(t *testing.T) {
	h := newViewHarness(t)
	v, idx := h.mintView(t, buildUDPFrame(peerIP, harnessIP, 12345, 4242, []byte("pinned?!")))

	ulenOff := EthHeaderBytes + IPv4HeaderBytes + 4 // UDP length field
	snap, err := v.Snap(ulenOff, 2)
	if err != nil {
		t.Fatal(err)
	}
	live, err := v.Range(ulenOff, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := be16(live)
	h.scribble(t, idx, ulenOff, []byte{0xFF, 0xFF})

	// The old shape: two live reads of one field, two different values.
	if second := be16(live); second == first {
		t.Fatalf("scribble not visible through live alias: %d == %d", second, first)
	}
	// The new shape: the snapshot still holds the certified value.
	if be16(snap) != first {
		t.Fatalf("snapshot diverged: %d != %d", be16(snap), first)
	}
	v.Release()
}

// fakeSplice captures the spliced view instead of queuing it on TX.
type fakeSplice struct {
	n    uint32
	view *mem.View
}

func (f *fakeSplice) SpliceFrame(v *mem.View, n uint32, clk *vtime.Clock) error {
	f.n = n
	f.view = v
	return nil
}

// TestSpliceEchoRewritesInPlace: the splice path rewrites the frame
// header in untrusted memory (MAC, IP, port swaps), hands the view to
// the splice device with the full frame length, and never touches the
// payload; both checksums still verify after the swap.
func TestSpliceEchoRewritesInPlace(t *testing.T) {
	h := newViewHarness(t)
	fs := &fakeSplice{}
	h.stack.SpliceUDPEcho(7, fs)
	payload := []byte("splice me back home")
	v, idx := h.mintView(t, buildUDPFrame(peerIP, harnessIP, 40000, 7, payload))
	var clk vtime.Clock
	h.stack.InputView(v, &clk)
	if fs.view == nil {
		t.Fatal("splice device never received the frame")
	}
	wantLen := EthHeaderBytes + IPv4HeaderBytes + UDPHeaderBytes + len(payload)
	if int(fs.n) != wantLen {
		t.Fatalf("splice length = %d, want %d", fs.n, wantLen)
	}
	raw, err := h.sp.Bytes(mem.RoleHost, h.u.FrameAddr(idx), uint64(wantLen))
	if err != nil {
		t.Fatal(err)
	}
	eth, pkt, err := ParseEth(raw)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Src != h.link.MAC() || eth.Dst != [6]byte{2, 0, 0, 0, 0, 1} {
		t.Fatalf("MACs not swapped: %v -> %v", eth.Src, eth.Dst)
	}
	iph, dgram, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatalf("rewritten IP header does not verify: %v", err)
	}
	if iph.Src != harnessIP || iph.Dst != peerIP {
		t.Fatalf("IPs not swapped: %v -> %v", iph.Src, iph.Dst)
	}
	if be16(dgram[0:2]) != 7 || be16(dgram[2:4]) != 40000 {
		t.Fatalf("ports not swapped: %d -> %d", be16(dgram[0:2]), be16(dgram[2:4]))
	}
	sum := pseudoHeaderSum(iph.Src, iph.Dst, ProtoUDP, len(dgram))
	if checksumFold(checksumPartial(sum, dgram)) != 0 {
		t.Fatal("UDP checksum does not survive the 16-bit-aligned swaps")
	}
	if !bytes.Equal(dgram[UDPHeaderBytes:], payload) {
		t.Fatal("payload bytes were touched")
	}
}
