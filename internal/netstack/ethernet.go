package netstack

import "errors"

// EthHeaderBytes is the length of an Ethernet II header.
const EthHeaderBytes = 14

// Broadcast is the Ethernet broadcast address.
var Broadcast = [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// EthHeader is an Ethernet II header.
type EthHeader struct {
	Dst  [6]byte
	Src  [6]byte
	Type uint16
}

// ErrShortFrame reports a frame too short for the claimed headers.
var ErrShortFrame = errors.New("netstack: short frame")

// ParseEth decodes an Ethernet header and returns it with the payload.
func ParseEth(frame []byte) (EthHeader, []byte, error) {
	if len(frame) < EthHeaderBytes {
		return EthHeader{}, nil, ErrShortFrame
	}
	var h EthHeader
	copy(h.Dst[:], frame[0:6])
	copy(h.Src[:], frame[6:12])
	h.Type = be16(frame[12:14])
	return h, frame[EthHeaderBytes:], nil
}

// MarshalEth encodes an Ethernet header followed by payload into a fresh
// frame buffer.
func MarshalEth(h EthHeader, payload []byte) []byte {
	frame := make([]byte, EthHeaderBytes+len(payload))
	copy(frame[0:6], h.Dst[:])
	copy(frame[6:12], h.Src[:])
	put16(frame[12:14], h.Type)
	copy(frame[EthHeaderBytes:], payload)
	return frame
}
