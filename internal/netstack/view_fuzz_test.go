package netstack

// Fuzz target for the certify-in-place RX parser: InputView is the one
// routine that makes protocol decisions over host-writable frame bytes,
// so it gets its own campaign beside FuzzStackInput. Every iteration
// mints a certified view over a UMem frame, parses it in place, drains
// the socket, and then asserts the frame economy balanced — whatever the
// parser decided (in-place delivery, splice, fallback copy, refusal),
// the frame must be back in the pool. The committed seed corpus
// (testdata/fuzz/FuzzInputView, table below) pins the shapes that pick
// each branch: split headers with IP options out to ihl=60, a frame at
// the exact UMem frame size, and 0xFFFF length-field wraparounds.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rakis/internal/mem"
	"rakis/internal/vtime"
)

// releaseSplice is a SpliceDevice that retires the frame immediately, so
// the splice branch is reachable without a full XSK socket.
type releaseSplice struct{}

func (releaseSplice) SpliceFrame(v *mem.View, n uint32, clk *vtime.Clock) error {
	return v.Release()
}

// fuzzViewWorld builds the long-lived view-fuzzing harness: one bound
// socket for the in-place delivery branch and one spliced port for the
// echo-rewrite branch.
func fuzzViewWorld(t testing.TB) (*viewHarness, *UDPSocket) {
	h := newViewHarness(t)
	sock, err := h.stack.UDPBind(4242)
	if err != nil {
		t.Fatal(err)
	}
	h.stack.SpliceUDPEcho(7, releaseSplice{})
	return h, sock
}

// fuzzViewInject runs one frame through the in-place parser and checks
// the frame-economy invariant.
func fuzzViewInject(t testing.TB, h *viewHarness, sock *UDPSocket, data []byte) {
	if len(data) > int(h.u.FrameSize()) {
		data = data[:h.u.FrameSize()]
	}
	v, _ := h.mintView(t, data)
	var clk vtime.Clock
	h.stack.InputView(v, &clk)
	for {
		d, err := sock.RecvFrom(&clk, false)
		if err != nil {
			break
		}
		d.Bytes() // materialize: the single app-boundary copy, releases the view
	}
	if free := h.u.FreeFrames(); free != int(h.u.FrameCount()) {
		t.Fatalf("frame leaked: free = %d, want %d", free, h.u.FrameCount())
	}
}

// viewHostileFrames is the canonical seed table; the corpus files on
// disk are its rendering (see TestViewFuzzCorpus, same contract as
// hostileFrames/TestFuzzCorpus).
func viewHostileFrames() map[string][]byte {
	frames := map[string][]byte{}

	// The mainstream in-place delivery, and the splice-echo branch.
	frames["view-valid-udp"] = buildUDPFrame(peerIP, harnessIP, 1111, 4242, []byte("in place"))
	frames["view-splice-echo"] = buildUDPFrame(peerIP, harnessIP, 40000, 7, []byte("reflect me"))

	// Split header: IP options push the UDP header out to byte 74 —
	// ihl=15 (60-byte IP header), the farthest the header snapshot must
	// reach. Built by hand since MarshalIPv4 always emits ihl=5.
	optPayload := []byte("options!")
	optDgram := make([]byte, UDPHeaderBytes+len(optPayload))
	put16(optDgram[0:2], 1111)
	put16(optDgram[2:4], 4242)
	put16(optDgram[4:6], uint16(len(optDgram)))
	copy(optDgram[UDPHeaderBytes:], optPayload)
	sum := pseudoHeaderSum(peerIP, harnessIP, ProtoUDP, len(optDgram))
	ck := checksumFold(checksumPartial(sum, optDgram))
	if ck == 0 {
		ck = 0xFFFF
	}
	put16(optDgram[6:8], ck)
	iph := make([]byte, 60)
	iph[0] = 0x4F // version 4, ihl 15 words
	put16(iph[2:4], uint16(60+len(optDgram)))
	iph[8] = 64
	iph[9] = ProtoUDP
	copy(iph[12:16], peerIP[:])
	copy(iph[16:20], harnessIP[:])
	for i := IPv4HeaderBytes; i < 60; i++ {
		iph[i] = 0x01 // NOP options
	}
	put16(iph[10:12], Checksum(iph))
	frames["view-split-header"] = MarshalEth(
		EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 9}, Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4},
		append(iph, optDgram...))

	// Max length: the frame fills its 2048-byte UMem frame exactly.
	frames["view-max-length"] = buildUDPFrame(peerIP, harnessIP, 1111, 4242,
		bytes.Repeat([]byte{0xA5}, 2048-EthHeaderBytes-IPv4HeaderBytes-UDPHeaderBytes))

	// Wraparound lies: both 16-bit length fields pushed to 0xFFFF. The
	// IP checksum is refreshed so the parser reaches the length gates.
	wrapTotal := buildUDPFrame(peerIP, harnessIP, 1111, 4242, []byte("wrap"))
	put16(wrapTotal[EthHeaderBytes+2:], 0xFFFF)
	put16(wrapTotal[EthHeaderBytes+10:], 0)
	put16(wrapTotal[EthHeaderBytes+10:], Checksum(wrapTotal[EthHeaderBytes:EthHeaderBytes+IPv4HeaderBytes]))
	frames["view-wrap-totallen"] = wrapTotal
	wrapULen := buildUDPFrame(peerIP, harnessIP, 1111, 4242, []byte("wrap"))
	put16(wrapULen[EthHeaderBytes+IPv4HeaderBytes+4:], 0xFFFF)
	frames["view-wrap-ulen"] = wrapULen

	// A UDP length below its own header size.
	runt := buildUDPFrame(peerIP, harnessIP, 1111, 4242, []byte("wrap"))
	put16(runt[EthHeaderBytes+IPv4HeaderBytes+4:], 0)
	frames["view-ulen-runt"] = runt

	// Checksum elided (legal for UDP/IPv4): the no-verify branch.
	noCk := buildUDPFrame(peerIP, harnessIP, 1111, 4242, []byte("nocksum"))
	put16(noCk[EthHeaderBytes+IPv4HeaderBytes+6:], 0)
	frames["view-no-csum"] = noCk

	// Non-mainstream shapes that must take the one-copy fallback: an IP
	// fragment and an ARP request.
	frames["view-frag"] = MarshalEth(
		EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 9}, Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4},
		MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoUDP, MF: true, ID: 77, Src: peerIP, Dst: harnessIP}, make([]byte, 16)))
	frames["view-arp"] = MarshalEth(
		EthHeader{Dst: Broadcast, Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeARP},
		marshalARP(arpPacket{op: arpOpRequest, sha: [6]byte{2, 0, 0, 0, 0, 1}, spa: peerIP, tpa: harnessIP}))

	return frames
}

func FuzzInputView(f *testing.F) {
	for _, data := range viewHostileFrames() {
		f.Add(data)
	}
	h, sock := fuzzViewWorld(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzViewInject(t, h, sock, data)
	})
}

// TestViewFuzzCorpus pins the committed corpus to the table, exactly as
// TestFuzzCorpus does for FuzzStackInput. Regenerate after editing:
//
//	RAKIS_WRITE_CORPUS=1 go test ./internal/netstack -run TestViewFuzzCorpus
func TestViewFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzInputView")
	frames := viewHostileFrames()

	if os.Getenv("RAKIS_WRITE_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range frames {
			if err := os.WriteFile(filepath.Join(dir, name), corpusEntry(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus files to %s", len(frames), dir)
		return
	}

	h, sock := fuzzViewWorld(t)
	for name, data := range frames {
		fuzzViewInject(t, h, sock, data)
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: corpus file missing (regenerate with RAKIS_WRITE_CORPUS=1): %v", name, err)
			continue
		}
		if !bytes.Equal(got, corpusEntry(data)) {
			t.Errorf("%s: corpus file stale (regenerate with RAKIS_WRITE_CORPUS=1)", name)
		}
	}
}
