package netstack

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/mem"
	"rakis/internal/vtime"
)

// UDPHeaderBytes is the UDP header length.
const UDPHeaderBytes = 8

// MaxUDPPayload is the largest datagram payload the stack accepts.
const MaxUDPPayload = 65507

// Datagram is one received UDP payload with its source and stamp.
//
// A datagram is either copy-backed (Payload holds trusted bytes, the
// classic path) or view-backed (the payload still lives in the untrusted
// UMem frame behind a certified mem.View, the zero-copy path). Consumers
// go through Len/CopyOut/Bytes so both shapes behave identically; the
// one explicit copy for a view-backed datagram happens at CopyOut — the
// app-payload boundary — and releases the frame.
type Datagram struct {
	Payload []byte
	Src     Addr
	Stamp   uint64

	view    mem.View
	hasView bool
}

// ViewDatagram wraps a certified payload view as a datagram. The view
// must cover exactly the UDP payload bytes.
func ViewDatagram(v mem.View, src Addr, stamp uint64) Datagram {
	return Datagram{Src: src, Stamp: stamp, view: v, hasView: true}
}

// Len returns the payload length in bytes.
func (d *Datagram) Len() int {
	if d.hasView {
		return d.view.Len()
	}
	return len(d.Payload)
}

// IsView reports whether the payload still lives in untrusted memory.
func (d *Datagram) IsView() bool { return d.hasView }

// CopyOut copies the payload into p, truncating to len(p), and returns
// the byte count. For a view-backed datagram this is the single
// app-boundary copy: the frame is released afterwards, whether or not
// the copy succeeded (a stale view yields 0 bytes). The caller charges
// the copy at the rate its trust boundary demands.
//
//rakis:untrusted
func (d *Datagram) CopyOut(p []byte) int {
	if !d.hasView {
		return copy(p, d.Payload)
	}
	n, err := d.view.CopyOut(p, 0)
	if err != nil {
		n = 0
	}
	d.view.Release()
	d.hasView = false
	return n
}

// Bytes returns the payload as trusted bytes, copying a view-backed
// payload out (and releasing its frame) on first call.
func (d *Datagram) Bytes() []byte {
	if d.hasView {
		b := make([]byte, d.view.Len())
		n := d.CopyOut(b)
		if n != len(b) {
			b = nil // stale view: the frame is gone
		}
		d.Payload = b
	}
	return d.Payload
}

// Release drops a view-backed payload without consuming it, returning
// the frame to the pool. No-op for copy-backed datagrams.
func (d *Datagram) Release() {
	if d.hasView {
		d.view.Release()
		d.hasView = false
	}
}

// udpTable holds the bound UDP sockets. The port→socket demux map is
// replicated once per shard, each replica under its own RWMutex: a
// shard's pump thread only ever touches its own replica, so the hot
// demux path of one queue never bounces another queue's lock cache line
// — the scale-out version of the paper's move away from a single global
// stack lock. Bind-time bookkeeping (collision detection, the ephemeral
// counter) lives under one cold global mutex and fans the entry into
// every replica.
type udpTable struct {
	mu        sync.Mutex
	ports     map[uint16]*UDPSocket
	ephemeral uint16
	closed    bool

	demux []demuxShard
}

// demuxShard is one shard's replica of the port→socket map. The padding
// keeps neighbouring shards' locks off one cache line.
type demuxShard struct {
	mu    sync.RWMutex
	ports map[uint16]*UDPSocket
	_     [32]byte
}

func newUDPTable(shards int) *udpTable {
	if shards < 1 {
		shards = 1
	}
	t := &udpTable{ports: make(map[uint16]*UDPSocket), ephemeral: 32768}
	t.demux = make([]demuxShard, shards)
	for i := range t.demux {
		t.demux[i].ports = make(map[uint16]*UDPSocket)
	}
	return t
}

// publish fans a bind into every shard replica. Caller holds t.mu.
func (t *udpTable) publish(port uint16, sock *UDPSocket) {
	for i := range t.demux {
		d := &t.demux[i]
		d.mu.Lock()
		d.ports[port] = sock
		d.mu.Unlock()
	}
}

// retract removes sock's binding from every shard replica if it still
// owns the port. Caller holds t.mu.
func (t *udpTable) retract(port uint16, sock *UDPSocket) {
	for i := range t.demux {
		d := &t.demux[i]
		d.mu.Lock()
		if d.ports[port] == sock {
			delete(d.ports, port)
		}
		d.mu.Unlock()
	}
}

func (t *udpTable) closeAll() {
	t.mu.Lock()
	socks := make([]*UDPSocket, 0, len(t.ports))
	for _, s := range t.ports {
		socks = append(socks, s)
	}
	t.closed = true
	t.mu.Unlock()
	for _, s := range socks {
		s.Close()
	}
}

// UDPSocket is a bound UDP endpoint with a per-shard receive queue and
// its own virtual-time serialization resource (the fine-grained-locking
// design of §4.2, extended per-queue for the sharded data path).
//
// Receive queues are per-shard so concurrent pump threads enqueue
// without sharing a lock: RSS steers every packet of a flow to one
// queue, so per-flow FIFO order is preserved within its shard queue
// while cross-flow order relaxes — which UDP permits. Receivers scan the
// shard queues round-robin under a coalesced wakeup channel, so any mix
// of blocking receivers drains any mix of shards without lost wakeups.
type UDPSocket struct {
	stack *Stack
	local Addr

	mu        sync.Mutex
	connected *Addr
	closed    bool

	// closing flips before the per-shard drain in Close; enqueuers check
	// it under the shard lock, so no datagram can land after the drain
	// has swept its shard (the frame-economy invariant for view-backed
	// payloads).
	closing atomic.Bool

	shardQ  []sockQ
	pending atomic.Int64
	wake    chan struct{} // cap 1: coalesced data-available signal
	rr      atomic.Uint32 // receiver scan origin, rotated per pop
	closeC  chan struct{}
}

// sockQ is one shard's slice-backed FIFO of queued datagrams.
type sockQ struct {
	mu   sync.Mutex
	buf  []Datagram
	head int
	_    [32]byte
}

// RecvQueueCap is the per-shard receive queue capacity in datagrams,
// sized like the 16 MB / 2K-ring memory budget of §6.1.
const RecvQueueCap = 2048

// UDPBind creates a socket bound to (stack IP, port); port 0 picks an
// ephemeral port. The socket gets one receive queue per stack shard.
func (s *Stack) UDPBind(port uint16) (*UDPSocket, error) {
	t := s.udp
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		for i := 0; i < 65536; i++ {
			t.ephemeral++
			if t.ephemeral < 32768 {
				t.ephemeral = 32768
			}
			if _, used := t.ports[t.ephemeral]; !used {
				port = t.ephemeral
				break
			}
		}
		if port == 0 {
			return nil, fmt.Errorf("%w: no ephemeral UDP ports", ErrPortInUse)
		}
	} else if _, used := t.ports[port]; used {
		return nil, fmt.Errorf("%w: udp/%d", ErrPortInUse, port)
	}
	sock := &UDPSocket{
		stack:  s,
		local:  Addr{IP: s.ip, Port: port},
		shardQ: make([]sockQ, len(t.demux)),
		wake:   make(chan struct{}, 1),
		closeC: make(chan struct{}),
	}
	t.ports[port] = sock
	t.publish(port, sock)
	return sock, nil
}

// lookupUDP finds the socket for a destination port on shard 0 (the
// single-shard demux path).
func (s *Stack) lookupUDP(port uint16) *UDPSocket {
	return s.lookupUDPShard(port, 0)
}

// lookupUDPShard finds the socket for a destination port through the
// shard's own demux replica — the only lock the hot path touches, and
// one no other shard's pump ever takes.
func (s *Stack) lookupUDPShard(port uint16, shard int) *UDPSocket {
	d := &s.udp.demux[shard]
	d.mu.RLock()
	sock := d.ports[port]
	d.mu.RUnlock()
	return sock
}

// inputUDP demuxes one UDP datagram to its socket's shard queue.
func (s *Stack) inputUDP(h IPv4Header, payload, origPkt []byte, clk *vtime.Clock, shard int) {
	if len(payload) < UDPHeaderBytes {
		return
	}
	srcPort := be16(payload[0:2])
	dstPort := be16(payload[2:4])
	ulen := int(be16(payload[4:6]))
	if ulen < UDPHeaderBytes || ulen > len(payload) {
		return
	}
	if be16(payload[6:8]) != 0 { // checksum present
		sum := pseudoHeaderSum(h.Src, h.Dst, ProtoUDP, ulen)
		if checksumFold(checksumPartial(sum, payload[:ulen])) != 0 {
			return
		}
	}
	sock := s.lookupUDPShard(dstPort, shard)
	if sock == nil {
		s.sendPortUnreachable(h, origPkt, clk)
		return
	}
	// Socket-layer work. Per-socket locks are held for far less than a
	// scheduling quantum, so sharded mode charges plain time; only the
	// global-lock ablation serializes through a shared resource (via
	// Stack.charge).
	if s.globalRes == nil {
		clk.Charge(vtime.CompStack, s.model.SocketOp)
	}
	data := make([]byte, ulen-UDPHeaderBytes)
	copy(data, payload[UDPHeaderBytes:ulen])
	clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.KernelCopyPerByte, len(data)))
	d := Datagram{Payload: data, Src: Addr{IP: h.Src, Port: srcPort}, Stamp: clk.Now()}
	sock.enqueue(d, s, shard)
}

// enqueue delivers one datagram to the socket's shard queue, dropping
// (and releasing any view) when that queue is full, like Linux. The
// closing check happens under the shard lock, so an enqueue can never
// race past Close's drain and strand a view-backed frame.
func (u *UDPSocket) enqueue(d Datagram, s *Stack, shard int) {
	q := &u.shardQ[shard%len(u.shardQ)]
	q.mu.Lock()
	if u.closing.Load() || len(q.buf)-q.head >= RecvQueueCap {
		q.mu.Unlock()
		d.Release()
		if s.cfg.Counters != nil {
			s.cfg.Counters.PacketsDropped.Add(1)
		}
		return
	}
	q.buf = append(q.buf, d)
	q.mu.Unlock()
	u.pending.Add(1)
	select {
	case u.wake <- struct{}{}:
	default:
	}
}

// pop takes the oldest datagram from the first non-empty shard queue,
// scanning from a rotating origin so no shard starves. After a
// successful pop with datagrams still pending it re-signals the wakeup
// channel: the signal is coalesced on enqueue, so a waking receiver
// passes the baton to the next blocked receiver (no lost wakeups with
// multiple concurrent receivers).
func (u *UDPSocket) pop() (Datagram, bool) {
	n := len(u.shardQ)
	start := int(u.rr.Add(1))
	for i := 0; i < n; i++ {
		q := &u.shardQ[(start+i)%n]
		q.mu.Lock()
		if q.head >= len(q.buf) {
			q.mu.Unlock()
			continue
		}
		d := q.buf[q.head]
		q.buf[q.head] = Datagram{}
		q.head++
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		}
		q.mu.Unlock()
		if u.pending.Add(-1) > 0 {
			select {
			case u.wake <- struct{}{}:
			default:
			}
		}
		return d, true
	}
	return Datagram{}, false
}

// LocalAddr returns the socket's bound address.
func (u *UDPSocket) LocalAddr() Addr { return u.local }

// Connect fixes the default peer for Send/Recv.
func (u *UDPSocket) Connect(dst Addr) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.connected = &dst
}

// RemoteAddr returns the connected peer, if any.
func (u *UDPSocket) RemoteAddr() (Addr, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.connected == nil {
		return Addr{}, false
	}
	return *u.connected, true
}

// buildDatagram encapsulates one payload into a checksummed UDP datagram
// headed for dst.
func (u *UDPSocket) buildDatagram(payload []byte, dst Addr) []byte {
	s := u.stack
	dgram := make([]byte, UDPHeaderBytes+len(payload))
	put16(dgram[0:2], u.local.Port)
	put16(dgram[2:4], dst.Port)
	put16(dgram[4:6], uint16(len(dgram)))
	copy(dgram[UDPHeaderBytes:], payload)
	sum := pseudoHeaderSum(s.ip, dst.IP, ProtoUDP, len(dgram))
	ck := checksumFold(checksumPartial(sum, dgram))
	if ck == 0 {
		ck = 0xFFFF
	}
	put16(dgram[6:8], ck)
	return dgram
}

// SendTo transmits one datagram to dst, charging the caller's clock for
// socket and stack work and pacing on the wire.
func (u *UDPSocket) SendTo(payload []byte, dst Addr, clk *vtime.Clock) error {
	if len(payload) > MaxUDPPayload {
		return ErrMsgSize
	}
	u.mu.Lock()
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return ErrClosed
	}
	s := u.stack
	s.charge(clk, s.cfg.PerPacketCost)
	if s.globalRes == nil {
		clk.Charge(vtime.CompStack, s.model.SocketOp)
	}
	_, err := s.sendIP(ProtoUDP, dst.IP, u.buildDatagram(payload, dst), clk)
	return err
}

// SendToN transmits up to len(payloads) datagrams to dst as one batched
// run through the stack's batched IP path. Per-datagram stack and socket
// work is charged exactly as in SendTo — only the link-layer call count
// is amortized. Semantics follow sendmmsg: it returns the number of
// datagrams sent, reporting an error only when the first fails.
func (u *UDPSocket) SendToN(payloads [][]byte, dst Addr, clk *vtime.Clock) (int, error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	n := len(payloads)
	for i, p := range payloads {
		if len(p) > MaxUDPPayload {
			if i == 0 {
				return 0, ErrMsgSize
			}
			n = i
			break
		}
	}
	u.mu.Lock()
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	s := u.stack
	dgrams := make([][]byte, n)
	for i, p := range payloads[:n] {
		s.charge(clk, s.cfg.PerPacketCost)
		if s.globalRes == nil {
			clk.Charge(vtime.CompStack, s.model.SocketOp)
		}
		dgrams[i] = u.buildDatagram(p, dst)
	}
	return s.sendIPBatch(ProtoUDP, dst.IP, dgrams, clk)
}

// Send transmits to the connected peer.
func (u *UDPSocket) Send(payload []byte, clk *vtime.Clock) error {
	dst, ok := u.RemoteAddr()
	if !ok {
		return fmt.Errorf("%w: socket not connected", ErrNoRoute)
	}
	return u.SendTo(payload, dst, clk)
}

// RecvFrom returns the next datagram. With block=false it returns
// ErrWouldBlock when the queue is empty; with block=true it waits until
// data arrives or the socket closes. The caller's clock is synced to the
// datagram's arrival stamp (idle waiting costs no virtual busy time).
func (u *UDPSocket) RecvFrom(clk *vtime.Clock, block bool) (Datagram, error) {
	if d, ok := u.pop(); ok {
		u.finishRecv(&d, clk)
		return d, nil
	}
	if !block {
		select {
		case <-u.closeC:
			return Datagram{}, ErrClosed
		default:
		}
		return Datagram{}, ErrWouldBlock
	}
	for {
		select {
		case <-u.wake:
			if d, ok := u.pop(); ok {
				u.finishRecv(&d, clk)
				return d, nil
			}
		case <-u.closeC:
			// Drain anything that raced with close.
			if d, ok := u.pop(); ok {
				u.finishRecv(&d, clk)
				return d, nil
			}
			return Datagram{}, ErrClosed
		}
	}
}

// RecvTimeout is RecvFrom with a real-time cap on the wait, used by
// workload drivers to detect quiescence.
func (u *UDPSocket) RecvTimeout(clk *vtime.Clock, d time.Duration) (Datagram, error) {
	if dg, ok := u.pop(); ok {
		u.finishRecv(&dg, clk)
		return dg, nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	for {
		select {
		case <-u.wake:
			if dg, ok := u.pop(); ok {
				u.finishRecv(&dg, clk)
				return dg, nil
			}
		case <-u.closeC:
			if dg, ok := u.pop(); ok {
				u.finishRecv(&dg, clk)
				return dg, nil
			}
			return Datagram{}, ErrClosed
		case <-timer.C:
			return Datagram{}, ErrTimeout
		}
	}
}

func (u *UDPSocket) finishRecv(d *Datagram, clk *vtime.Clock) {
	s := u.stack
	clk.Sync(d.Stamp)
	s.charge(clk, s.model.SocketOp)
}

// Readable reports whether a datagram is queued (poll support).
func (u *UDPSocket) Readable() bool { return u.pending.Load() > 0 }

// QueueLen returns the number of queued datagrams across all shards.
func (u *UDPSocket) QueueLen() int {
	if n := u.pending.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// Close unbinds the socket; blocked receivers return ErrClosed.
func (u *UDPSocket) Close() {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	u.closed = true
	u.mu.Unlock()
	t := u.stack.udp
	t.mu.Lock()
	if t.ports[u.local.Port] == u {
		delete(t.ports, u.local.Port)
	}
	t.retract(u.local.Port, u)
	t.mu.Unlock()
	// Flip closing before sweeping the shard queues: enqueuers observe
	// it under the shard lock, so anything not drained here was never
	// queued. Views go back to the frame pool either way.
	u.closing.Store(true)
	var drained int64
	for i := range u.shardQ {
		q := &u.shardQ[i]
		q.mu.Lock()
		for q.head < len(q.buf) {
			q.buf[q.head].Release()
			q.buf[q.head] = Datagram{}
			q.head++
			drained++
		}
		q.buf, q.head = nil, 0
		q.mu.Unlock()
	}
	if drained > 0 {
		u.pending.Add(-drained)
	}
	close(u.closeC)
}
