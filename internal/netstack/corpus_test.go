package netstack

// The committed fuzz seed corpus (testdata/fuzz/FuzzStackInput) carries
// the hostile frames the §5.2-style campaign has surfaced so far: each
// one once reached a parser edge worth keeping in every future run.
// hostileFrames is the canonical table; the corpus files on disk are its
// rendering in Go's fuzz-corpus format. TestFuzzCorpus feeds every frame
// through the fuzz harness (they must all be survived) and checks the
// files match the table, so the two cannot drift apart. Regenerate after
// editing the table:
//
//	RAKIS_WRITE_CORPUS=1 go test ./internal/netstack -run TestFuzzCorpus
//
// ci.sh then runs `go test -fuzz=FuzzStackInput -fuzztime=30s` over the
// corpus as a smoke leg.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func hostileFrames() map[string][]byte {
	self := IP4{10, 0, 0, 9}
	peer := IP4{10, 0, 0, 1}
	mac := [6]byte{2, 0, 0, 0, 0, 9}
	peerMAC := [6]byte{2, 0, 0, 0, 0, 1}
	eth := func(typ uint16, payload []byte) []byte {
		return MarshalEth(EthHeader{Dst: mac, Src: peerMAC, Type: typ}, payload)
	}
	ip := func(h IPv4Header, payload []byte) []byte {
		h.Src, h.Dst = peer, self
		if h.TTL == 0 {
			h.TTL = 64
		}
		return eth(EtherTypeIPv4, MarshalIPv4(h, payload))
	}

	frames := map[string][]byte{}

	// ARP: a spoof claiming the stack's own address, a truncated packet,
	// and an unsolicited reply aimed at the broadcast MAC.
	frames["arp-self-spoof"] = eth(EtherTypeARP,
		marshalARP(arpPacket{op: arpOpRequest, sha: peerMAC, spa: self, tpa: self}))
	frames["arp-truncated"] = eth(EtherTypeARP,
		marshalARP(arpPacket{op: arpOpRequest, sha: peerMAC, spa: peer, tpa: self})[:11])
	frames["arp-unsolicited-reply"] = eth(EtherTypeARP,
		marshalARP(arpPacket{op: arpOpReply, sha: peerMAC, spa: peer,
			tha: [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, tpa: self}))

	// IPv4 header damage: an IHL pointing past the frame, a TotalLen
	// larger than the bytes on the wire, and one smaller than the header
	// itself. Built from a valid packet, then scribbled — checksum is
	// refreshed for the length lies so the parser reaches the length
	// checks rather than dying at the sum.
	udp := make([]byte, UDPHeaderBytes+4)
	put16(udp[0:2], 1111)
	put16(udp[2:4], 4242)
	put16(udp[4:6], uint16(len(udp)))
	badIHL := ip(IPv4Header{Proto: ProtoUDP}, udp)
	badIHL[EthHeaderBytes] = 0x4F // IHL = 15 words, frame is far shorter
	frames["ipv4-ihl-past-end"] = badIHL
	longLen := ip(IPv4Header{Proto: ProtoUDP}, udp)
	put16(longLen[EthHeaderBytes+2:], 1400)
	put16(longLen[EthHeaderBytes+10:], 0)
	put16(longLen[EthHeaderBytes+10:], Checksum(longLen[EthHeaderBytes:EthHeaderBytes+IPv4HeaderBytes]))
	frames["ipv4-totallen-long"] = longLen
	shortLen := ip(IPv4Header{Proto: ProtoUDP}, udp)
	put16(shortLen[EthHeaderBytes+2:], uint16(IPv4HeaderBytes-1))
	put16(shortLen[EthHeaderBytes+10:], 0)
	put16(shortLen[EthHeaderBytes+10:], Checksum(shortLen[EthHeaderBytes:EthHeaderBytes+IPv4HeaderBytes]))
	frames["ipv4-totallen-short"] = shortLen

	// Fragments: an overlapping pair, a tail at the maximum offset
	// (reassembly-size probe), and a head whose MF chain never ends.
	frames["frag-head"] = ip(IPv4Header{Proto: ProtoUDP, MF: true, ID: 77}, make([]byte, 16))
	frames["frag-overlap"] = ip(IPv4Header{Proto: ProtoUDP, MF: true, ID: 77, FragOff: 8}, make([]byte, 16))
	frames["frag-max-offset"] = ip(IPv4Header{Proto: ProtoUDP, ID: 78, FragOff: 0x1FFF * 8}, make([]byte, 32))
	frames["frag-never-ends"] = ip(IPv4Header{Proto: ProtoUDP, MF: true, ID: 79, FragOff: 8 * 512}, make([]byte, 8))

	// TCP: a SYN whose data offset points past the segment, a
	// SYN|FIN|RST combination, and a blind RST at the listening port.
	badOff := marshalTCP(peer, self, tcpSeg{srcPort: 5555, dstPort: 4243, seq: 1, flags: flagSYN, wnd: 1024})
	badOff[12] = 0xF0 // data offset = 15 words
	frames["tcp-dataoff-past-end"] = ip(IPv4Header{Proto: ProtoTCP}, badOff)
	frames["tcp-syn-fin-rst"] = ip(IPv4Header{Proto: ProtoTCP},
		marshalTCP(peer, self, tcpSeg{srcPort: 5555, dstPort: 4243, seq: 1, flags: flagSYN | flagFIN | flagRST, wnd: 1024}))
	frames["tcp-blind-rst"] = ip(IPv4Header{Proto: ProtoTCP},
		marshalTCP(peer, self, tcpSeg{srcPort: 5555, dstPort: 4243, seq: 0xDEAD, flags: flagRST}))

	// UDP with a length field lying in both directions.
	zeroLen := make([]byte, UDPHeaderBytes+4)
	put16(zeroLen[0:2], 1111)
	put16(zeroLen[2:4], 4242)
	frames["udp-len-zero"] = ip(IPv4Header{Proto: ProtoUDP}, zeroLen)
	overLen := make([]byte, UDPHeaderBytes+4)
	put16(overLen[0:2], 1111)
	put16(overLen[2:4], 4242)
	put16(overLen[4:6], 9999)
	frames["udp-len-over"] = ip(IPv4Header{Proto: ProtoUDP}, overLen)

	// Truncation at the outer layers.
	frames["eth-runt"] = eth(EtherTypeIPv4, []byte{0x45})
	frames["icmp-truncated"] = ip(IPv4Header{Proto: ProtoICMP}, []byte{icmpEchoRequest, 0, 0})

	return frames
}

// corpusEntry renders data in Go's fuzz-corpus file format for a single
// []byte argument.
func corpusEntry(data []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
}

func TestFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStackInput")
	frames := hostileFrames()

	if os.Getenv("RAKIS_WRITE_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range frames {
			if err := os.WriteFile(filepath.Join(dir, name), corpusEntry(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus files to %s", len(frames), dir)
		return
	}

	// Every table frame must be survivable — same property the fuzzer
	// asserts, pinned here so `go test` alone covers the known corpus.
	trimmedStack, trimmedSock := fuzzStack(true)
	fullStack, fullSock := fuzzStack(false)
	for name, data := range frames {
		fuzzInject(trimmedStack, trimmedSock, data)
		fuzzInject(fullStack, fullSock, data)
		// And the committed file must match the table.
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: corpus file missing (regenerate with RAKIS_WRITE_CORPUS=1): %v", name, err)
			continue
		}
		if !bytes.Equal(got, corpusEntry(data)) {
			t.Errorf("%s: corpus file stale (regenerate with RAKIS_WRITE_CORPUS=1)", name)
		}
	}
}
