package netstack

import (
	"sync"
	"time"
)

// arpPacketBytes is the size of an Ethernet/IPv4 ARP packet.
const arpPacketBytes = 28

// ARP opcodes.
const (
	arpOpRequest uint16 = 1
	arpOpReply   uint16 = 2
)

type arpPacket struct {
	op  uint16
	sha [6]byte
	spa IP4
	tha [6]byte
	tpa IP4
}

func parseARP(b []byte) (arpPacket, bool) {
	var p arpPacket
	if len(b) < arpPacketBytes {
		return p, false
	}
	if be16(b[0:2]) != 1 || be16(b[2:4]) != EtherTypeIPv4 || b[4] != 6 || b[5] != 4 {
		return p, false
	}
	p.op = be16(b[6:8])
	copy(p.sha[:], b[8:14])
	copy(p.spa[:], b[14:18])
	copy(p.tha[:], b[18:24])
	copy(p.tpa[:], b[24:28])
	return p, true
}

func marshalARP(p arpPacket) []byte {
	b := make([]byte, arpPacketBytes)
	put16(b[0:2], 1)
	put16(b[2:4], EtherTypeIPv4)
	b[4], b[5] = 6, 4
	put16(b[6:8], p.op)
	copy(b[8:14], p.sha[:])
	copy(b[14:18], p.spa[:])
	copy(b[18:24], p.tha[:])
	copy(b[24:28], p.tpa[:])
	return b
}

// arpTable is the stack's neighbour cache. Static entries (from the RAKIS
// configuration, which carries the peer MAC as §7 "Deployment Simplicity"
// describes) never expire; learned entries are kept until the stack dies —
// the simulated segment has no mobility.
type arpTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[IP4][6]byte
}

func newARPTable(static map[IP4][6]byte) *arpTable {
	t := &arpTable{entries: make(map[IP4][6]byte)}
	t.cond = sync.NewCond(&t.mu)
	for ip, mac := range static {
		t.entries[ip] = mac
	}
	return t
}

func (t *arpTable) lookup(ip IP4) ([6]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	mac, ok := t.entries[ip]
	return mac, ok
}

func (t *arpTable) learn(ip IP4, mac [6]byte) {
	t.mu.Lock()
	t.entries[ip] = mac
	t.mu.Unlock()
	t.cond.Broadcast()
}

// waitFor blocks until ip resolves or the real-time deadline passes.
func (t *arpTable) waitFor(ip IP4, deadline time.Time) ([6]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	timedOut := false
	timer := time.AfterFunc(time.Until(deadline), func() {
		t.mu.Lock()
		timedOut = true
		t.mu.Unlock()
		t.cond.Broadcast()
	})
	defer timer.Stop()
	for {
		if mac, ok := t.entries[ip]; ok {
			return mac, true
		}
		if timedOut {
			return [6]byte{}, false
		}
		t.cond.Wait()
	}
}
