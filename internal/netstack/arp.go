package netstack

import (
	"sync"
	"time"
)

// arpPacketBytes is the size of an Ethernet/IPv4 ARP packet.
const arpPacketBytes = 28

// ARP opcodes.
const (
	arpOpRequest uint16 = 1
	arpOpReply   uint16 = 2
)

type arpPacket struct {
	op  uint16
	sha [6]byte
	spa IP4
	tha [6]byte
	tpa IP4
}

func parseARP(b []byte) (arpPacket, bool) {
	var p arpPacket
	if len(b) < arpPacketBytes {
		return p, false
	}
	if be16(b[0:2]) != 1 || be16(b[2:4]) != EtherTypeIPv4 || b[4] != 6 || b[5] != 4 {
		return p, false
	}
	p.op = be16(b[6:8])
	copy(p.sha[:], b[8:14])
	copy(p.spa[:], b[14:18])
	copy(p.tha[:], b[18:24])
	copy(p.tpa[:], b[24:28])
	return p, true
}

func marshalARP(p arpPacket) []byte {
	b := make([]byte, arpPacketBytes)
	put16(b[0:2], 1)
	put16(b[2:4], EtherTypeIPv4)
	b[4], b[5] = 6, 4
	put16(b[6:8], p.op)
	copy(b[8:14], p.sha[:])
	copy(b[14:18], p.spa[:])
	copy(b[18:24], p.tha[:])
	copy(b[24:28], p.tpa[:])
	return b
}

// arpLearnedCap bounds the learned half of the neighbour cache. Learned
// entries used to be kept until the stack died, which was fine for a
// handful of simulated hosts but is a memory hole once a load generator
// throws 10^6 distinct source IPs at the stack (~100 MB of map). The cap
// is sized far above any in-flight window — a reply always resolves the
// entry learned when its request arrived a queue-depth ago — so eviction
// only ever trims flows that have long since gone quiet.
const arpLearnedCap = 32768

// arpTable is the stack's neighbour cache. Static entries (from the
// RAKIS configuration, which carries the peer MAC as §7 "Deployment
// Simplicity" describes) never expire and never count against the cap;
// learned entries are bounded by arpLearnedCap with FIFO eviction — the
// simulated segment has no mobility, so recency is all that matters.
type arpTable struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[IP4][6]byte
	static  map[IP4]struct{}
	order   []IP4 // learned insertion order, oldest first
	evict   int   // next eviction cursor into order
}

func newARPTable(static map[IP4][6]byte) *arpTable {
	t := &arpTable{
		entries: make(map[IP4][6]byte),
		static:  make(map[IP4]struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	for ip, mac := range static {
		t.entries[ip] = mac
		t.static[ip] = struct{}{}
	}
	return t
}

func (t *arpTable) lookup(ip IP4) ([6]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	mac, ok := t.entries[ip]
	return mac, ok
}

func (t *arpTable) learn(ip IP4, mac [6]byte) {
	t.mu.Lock()
	if _, isStatic := t.static[ip]; !isStatic {
		if _, known := t.entries[ip]; !known {
			t.order = append(t.order, ip)
			if len(t.order)-t.evict > arpLearnedCap {
				delete(t.entries, t.order[t.evict])
				t.order[t.evict] = IP4{}
				t.evict++
				if t.evict > arpLearnedCap {
					// Compact the consumed prefix so order stays O(cap).
					t.order = append(t.order[:0], t.order[t.evict:]...)
					t.evict = 0
				}
			}
		}
	}
	t.entries[ip] = mac
	t.mu.Unlock()
	t.cond.Broadcast()
}

// waitFor blocks until ip resolves or the real-time deadline passes.
func (t *arpTable) waitFor(ip IP4, deadline time.Time) ([6]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	timedOut := false
	timer := time.AfterFunc(time.Until(deadline), func() {
		t.mu.Lock()
		timedOut = true
		t.mu.Unlock()
		t.cond.Broadcast()
	})
	defer timer.Stop()
	for {
		if mac, ok := t.entries[ip]; ok {
			return mac, true
		}
		if timedOut {
			return [6]byte{}, false
		}
		t.cond.Wait()
	}
}
