package netstack

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"rakis/internal/vtime"
)

func TestTCPConnectAcceptEcho(t *testing.T) {
	w := newWorld(t, nil)
	l, err := w.b.TCPListen(6379, 8)
	if err != nil {
		t.Fatal(err)
	}

	serverErr := make(chan error, 1)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err != nil {
			serverErr <- err
			return
		}
		buf := make([]byte, 64)
		n, err := c.Recv(buf, &clk, true)
		if err != nil {
			serverErr <- err
			return
		}
		if _, err := c.Send(buf[:n], &clk); err != nil {
			serverErr <- err
			return
		}
		serverErr <- nil
	}()

	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 6379}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != "ESTABLISHED" {
		t.Fatalf("client state = %s", c.State())
	}
	if _, err := c.Send([]byte("PING"), &clk); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := c.Recv(buf, &clk, true)
	if err != nil || string(buf[:n]) != "PING" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	if clk.Now() == 0 {
		t.Fatal("client clock did not advance")
	}
}

func TestTCPLargeTransfer(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9000, 4)

	const total = 2 << 20 // 2 MiB: forces many windows
	want := make([]byte, total)
	for i := range want {
		want[i] = byte(i*31 + i>>11)
	}

	recvDone := make(chan []byte, 1)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err != nil {
			t.Errorf("accept: %v", err)
			recvDone <- nil
			return
		}
		var got []byte
		buf := make([]byte, 32768)
		for {
			n, err := c.Recv(buf, &clk, true)
			if err != nil {
				t.Errorf("recv: %v", err)
				break
			}
			if n == 0 {
				break // EOF
			}
			got = append(got, buf[:n]...)
		}
		recvDone <- got
	}()

	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9000}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.Send(want, &clk); err != nil || n != total {
		t.Fatalf("send = %d, %v", n, err)
	}
	c.Close(&clk)
	got := <-recvDone
	if !bytes.Equal(got, want) {
		t.Fatalf("transfer corrupted: got %d bytes, want %d", len(got), total)
	}
}

func TestTCPBidirectional(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9001, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		// Server both reads and writes concurrently.
		var inner sync.WaitGroup
		inner.Add(2)
		go func() {
			defer inner.Done()
			var k vtime.Clock
			buf := make([]byte, 1024)
			total := 0
			for total < 100*1024 {
				n, err := c.Recv(buf, &k, true)
				if err != nil || n == 0 {
					t.Errorf("server recv: n=%d err=%v", n, err)
					return
				}
				total += n
			}
		}()
		go func() {
			defer inner.Done()
			var k vtime.Clock
			chunk := make([]byte, 4096)
			for i := 0; i < 25; i++ {
				if _, err := c.Send(chunk, &k); err != nil {
					t.Errorf("server send: %v", err)
					return
				}
			}
		}()
		inner.Wait()
	}()

	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9001}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	var inner sync.WaitGroup
	inner.Add(2)
	go func() {
		defer inner.Done()
		var k vtime.Clock
		chunk := make([]byte, 4096)
		for i := 0; i < 25; i++ {
			if _, err := c.Send(chunk, &k); err != nil {
				t.Errorf("client send: %v", err)
				return
			}
		}
	}()
	go func() {
		defer inner.Done()
		var k vtime.Clock
		buf := make([]byte, 1024)
		total := 0
		for total < 100*1024 {
			n, err := c.Recv(buf, &k, true)
			if err != nil || n == 0 {
				t.Errorf("client recv: n=%d err=%v", n, err)
				return
			}
			total += n
		}
	}()
	inner.Wait()
	wg.Wait()
}

func TestTCPConnectRefused(t *testing.T) {
	w := newWorld(t, nil)
	var clk vtime.Clock
	_, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 81}, &clk)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("connect to closed port = %v, want ErrRefused", err)
	}
}

func TestTCPCloseEOF(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9002, 4)
	accepted := make(chan *TCPSocket, 1)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err == nil {
			accepted <- c
		}
	}()
	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9002}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	c.Send([]byte("bye"), &clk)
	c.Close(&clk)

	var sclk vtime.Clock
	buf := make([]byte, 16)
	n, err := srv.Recv(buf, &sclk, true)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("final data = %q, %v", buf[:n], err)
	}
	// Next read is EOF.
	n, err = srv.Recv(buf, &sclk, true)
	if err != nil || n != 0 {
		t.Fatalf("EOF read = %d, %v; want 0, nil", n, err)
	}
	srv.Close(&sclk)
	// Client eventually reaches a terminal state; sends now fail.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Send([]byte("x"), &clk); err == nil {
		t.Fatal("send after close must fail")
	}
}

func TestTCPNonblockingRecv(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9003, 4)
	go func() {
		var clk vtime.Clock
		l.Accept(&clk, true)
	}()
	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9003}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := c.Recv(buf, &clk, false); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty nonblocking recv = %v, want ErrWouldBlock", err)
	}
	if c.Readable() {
		t.Fatal("Readable on empty connection")
	}
	if !c.Writable() {
		t.Fatal("fresh connection must be writable")
	}
}

func TestTCPAcceptNonblocking(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9004, 4)
	var clk vtime.Clock
	if _, err := l.Accept(&clk, false); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty accept = %v, want ErrWouldBlock", err)
	}
	if l.Readable() {
		t.Fatal("listener with empty backlog must not be readable")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cclk vtime.Clock
		if _, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9004}, &cclk); err != nil {
			t.Errorf("connect: %v", err)
		}
	}()
	<-done
	if !l.WaitReadable(time.Second) {
		t.Fatal("listener must become readable after connect")
	}
	if _, err := l.Accept(&clk, false); err != nil {
		t.Fatalf("accept after connect = %v", err)
	}
}

func TestTCPListenConflictAndClose(t *testing.T) {
	w := newWorld(t, nil)
	l, err := w.b.TCPListen(9005, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.b.TCPListen(9005, 4); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("dup listen = %v, want ErrPortInUse", err)
	}
	var clk vtime.Clock
	acceptErr := make(chan error, 1)
	go func() {
		_, err := l.Accept(&clk, true)
		acceptErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close(&clk)
	if err := <-acceptErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("accept on closed listener = %v, want ErrClosed", err)
	}
	// Port is free again.
	if _, err := w.b.TCPListen(9005, 4); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

func TestTCPManyConnections(t *testing.T) {
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9006, 64)
	const conns = 50 // the redis-benchmark parallelism
	go func() {
		var clk vtime.Clock
		for i := 0; i < conns; i++ {
			c, err := l.Accept(&clk, true)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			go func(c *TCPSocket) {
				var k vtime.Clock
				buf := make([]byte, 64)
				for {
					n, err := c.Recv(buf, &k, true)
					if err != nil || n == 0 {
						return
					}
					c.Send(buf[:n], &k)
				}
			}(c)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var clk vtime.Clock
			c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9006}, &clk)
			if err != nil {
				t.Errorf("connect %d: %v", i, err)
				return
			}
			msg := []byte{byte(i), byte(i >> 8), 7, 7}
			for round := 0; round < 10; round++ {
				if _, err := c.Send(msg, &clk); err != nil {
					t.Errorf("conn %d send: %v", i, err)
					return
				}
				buf := make([]byte, 8)
				n, err := c.Recv(buf, &clk, true)
				if err != nil || !bytes.Equal(buf[:n], msg) {
					t.Errorf("conn %d echo: %q %v", i, buf[:n], err)
					return
				}
			}
			c.Close(&clk)
		}(i)
	}
	wg.Wait()
}

func TestTCPVirtualTimeAccumulates(t *testing.T) {
	// A request/response exchange accumulates client virtual time: each
	// round trip includes wire + kernel segments in both directions.
	w := newWorld(t, nil)
	l, _ := w.b.TCPListen(9007, 4)
	go func() {
		var clk vtime.Clock
		c, err := l.Accept(&clk, true)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			n, err := c.Recv(buf, &clk, true)
			if err != nil || n == 0 {
				return
			}
			c.Send(buf[:n], &clk)
		}
	}()
	var clk vtime.Clock
	c, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 9007}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	after1 := uint64(0)
	buf := make([]byte, 8)
	for i := 0; i < 100; i++ {
		c.Send([]byte("req"), &clk)
		if _, err := c.Recv(buf, &clk, true); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			after1 = clk.Now()
		}
	}
	if clk.Now() < after1*50 {
		t.Fatalf("100 RTTs = %d cycles, first = %d; time must accumulate per round trip",
			clk.Now(), after1)
	}
}
