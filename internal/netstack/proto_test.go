package netstack

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 example: the checksum of this sequence is 0xDDF2.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %#x, want 0x220d (complement of 0xddf2)", got)
	}
	// A packet including its own correct checksum folds to zero.
	withSum := append([]byte{}, data...)
	withSum = append(withSum, 0x22, 0x0d)
	if got := Checksum(withSum); got != 0 {
		t.Fatalf("self-checksummed data = %#x, want 0", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xAB}) != ^uint16(0xAB00) {
		t.Fatal("odd-length checksum must pad with zero")
	}
}

func TestEthRoundTrip(t *testing.T) {
	h := EthHeader{
		Dst:  [6]byte{1, 2, 3, 4, 5, 6},
		Src:  [6]byte{6, 5, 4, 3, 2, 1},
		Type: EtherTypeIPv4,
	}
	payload := []byte("hello ethernet")
	frame := MarshalEth(h, payload)
	got, pl, err := ParseEth(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(pl, payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, _, err := ParseEth(frame[:13]); !errors.Is(err, ErrShortFrame) {
		t.Fatal("short frame must be rejected")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		ID:    42,
		TTL:   64,
		Proto: ProtoUDP,
		Src:   IP4{10, 0, 0, 1},
		Dst:   IP4{10, 0, 0, 2},
	}
	payload := []byte("payload bytes here")
	pkt := MarshalIPv4(h, payload)
	got, pl, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.Proto != h.Proto || got.ID != 42 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestIPv4Rejections(t *testing.T) {
	good := MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoUDP, Src: IP4{1, 2, 3, 4}, Dst: IP4{5, 6, 7, 8}}, []byte("x"))

	short := good[:10]
	if _, _, err := ParseIPv4(short); !errors.Is(err, ErrIPHeader) {
		t.Fatal("short header must be rejected")
	}

	v6 := append([]byte{}, good...)
	v6[0] = 0x65
	if _, _, err := ParseIPv4(v6); !errors.Is(err, ErrIPVersion) {
		t.Fatal("version 6 must be rejected")
	}

	badSum := append([]byte{}, good...)
	badSum[10] ^= 0xFF
	if _, _, err := ParseIPv4(badSum); !errors.Is(err, ErrIPChecksum) {
		t.Fatal("bad checksum must be rejected")
	}

	badLen := append([]byte{}, good...)
	put16(badLen[2:4], uint16(len(badLen)+100))
	put16(badLen[10:12], 0)
	put16(badLen[10:12], Checksum(badLen[:20]))
	if _, _, err := ParseIPv4(badLen); !errors.Is(err, ErrIPHeader) {
		t.Fatal("overlong TotalLen must be rejected")
	}

	ttl0 := append([]byte{}, good...)
	ttl0[8] = 0
	put16(ttl0[10:12], 0)
	put16(ttl0[10:12], Checksum(ttl0[:20]))
	if _, _, err := ParseIPv4(ttl0); !errors.Is(err, ErrIPTTL) {
		t.Fatal("TTL 0 must be rejected")
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	h := IPv4Header{ID: 7, TTL: 64, Proto: ProtoUDP, Src: IP4{1, 1, 1, 1}, Dst: IP4{2, 2, 2, 2}}
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	pkts := fragmentIPv4(h, payload, 1500)
	if len(pkts) != 3 {
		t.Fatalf("4000 bytes over MTU 1500 -> %d fragments, want 3", len(pkts))
	}
	r := newReassembler()
	var full []byte
	for i, pkt := range pkts {
		fh, pl, err := ParseIPv4(pkt)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		full = r.add(fh, pl)
		if i < len(pkts)-1 && full != nil {
			t.Fatal("reassembly completed early")
		}
	}
	if !bytes.Equal(full, payload) {
		t.Fatal("reassembled payload mismatch")
	}
}

func TestFragmentsOutOfOrder(t *testing.T) {
	h := IPv4Header{ID: 9, TTL: 64, Proto: ProtoUDP, Src: IP4{1, 1, 1, 1}, Dst: IP4{2, 2, 2, 2}}
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	pkts := fragmentIPv4(h, payload, 1500)
	r := newReassembler()
	// Deliver in reverse.
	var full []byte
	for i := len(pkts) - 1; i >= 0; i-- {
		fh, pl, _ := ParseIPv4(pkts[i])
		full = r.add(fh, pl)
	}
	if !bytes.Equal(full, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassemblerHostileFragments(t *testing.T) {
	r := newReassembler()
	// Duplicate offsets must not double-count.
	h := IPv4Header{ID: 1, MF: true, FragOff: 0, Proto: ProtoUDP}
	if r.add(h, make([]byte, 16)) != nil {
		t.Fatal("incomplete must be nil")
	}
	if r.add(h, make([]byte, 16)) != nil {
		t.Fatal("duplicate must be nil")
	}
	// Oversized reassembly is abandoned.
	big := IPv4Header{ID: 2, MF: false, FragOff: 65528, Proto: ProtoUDP}
	if r.add(big, make([]byte, 5000)) != nil {
		t.Fatal("oversize must be nil")
	}
	// Non-final fragment not a multiple of 8 is abandoned.
	odd := IPv4Header{ID: 3, MF: true, FragOff: 0, Proto: ProtoUDP}
	if r.add(odd, make([]byte, 13)) != nil {
		t.Fatal("odd-length non-final must be nil")
	}
	// Flooding with distinct IDs evicts old entries without growth.
	for id := uint16(10); id < 200; id++ {
		r.add(IPv4Header{ID: id, MF: true, FragOff: 0, Proto: ProtoUDP}, make([]byte, 8))
	}
	r.mu.Lock()
	n := len(r.bufs)
	r.mu.Unlock()
	if n > 32 {
		t.Fatalf("reassembler grew to %d entries, cap is 32", n)
	}
}

func TestARPRoundTrip(t *testing.T) {
	p := arpPacket{
		op:  arpOpRequest,
		sha: [6]byte{1, 2, 3, 4, 5, 6},
		spa: IP4{10, 0, 0, 1},
		tha: [6]byte{0, 0, 0, 0, 0, 0},
		tpa: IP4{10, 0, 0, 2},
	}
	got, ok := parseARP(marshalARP(p))
	if !ok || got != p {
		t.Fatalf("ARP round trip mismatch: %+v", got)
	}
	if _, ok := parseARP(make([]byte, 10)); ok {
		t.Fatal("short ARP must be rejected")
	}
	bad := marshalARP(p)
	bad[0] = 9 // wrong htype
	if _, ok := parseARP(bad); ok {
		t.Fatal("wrong htype must be rejected")
	}
}

func TestTCPSegmentRoundTrip(t *testing.T) {
	src, dst := IP4{10, 0, 0, 1}, IP4{10, 0, 0, 2}
	seg := tcpSeg{
		srcPort: 40000, dstPort: 6379,
		seq: 0xDEADBEEF, ack: 0xFEEDFACE,
		flags: flagACK | flagPSH, wnd: 65535,
		payload: []byte("PING\r\n"),
	}
	b := marshalTCP(src, dst, seg)
	got, ok := parseTCP(b)
	if !ok {
		t.Fatal("parse failed")
	}
	if got.srcPort != seg.srcPort || got.seq != seg.seq || got.ack != seg.ack ||
		got.flags != seg.flags || got.wnd != seg.wnd || !bytes.Equal(got.payload, seg.payload) {
		t.Fatalf("mismatch: %+v", got)
	}
	// Checksum must validate.
	sum := pseudoHeaderSum(src, dst, ProtoTCP, len(b))
	if checksumFold(checksumPartial(sum, b)) != 0 {
		t.Fatal("TCP checksum invalid")
	}
}

func TestIPStrings(t *testing.T) {
	if (IP4{10, 1, 2, 3}).String() != "10.1.2.3" {
		t.Fatal("IP4.String")
	}
	if (Addr{IP4{1, 2, 3, 4}, 80}).String() != "1.2.3.4:80" {
		t.Fatal("Addr.String")
	}
	if stateEstablished.String() != "ESTABLISHED" {
		t.Fatal("state string")
	}
}

func TestIPv4ParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		ParseIPv4(b)
		parseTCP(b)
		parseARP(b)
		ParseEth(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
