package netstack

import (
	"sync"

	"rakis/internal/mem"
	"rakis/internal/vtime"
)

// viewHeaderSnapMax is the header prefix frozen from an untrusted frame
// before any parsing decision: Ethernet, a maximal IPv4 header (options
// included), and a maximal L4 header — 60 bytes covers the largest TCP
// header (data offset 15) and, a fortiori, the 8-byte UDP header.
const viewHeaderSnapMax = EthHeaderBytes + 60 + tcpHeaderMax

// SpliceDevice re-queues a certified RX frame view onto the transmit
// path without copying the payload. n is the frame length to transmit.
type SpliceDevice interface {
	SpliceFrame(v *mem.View, n uint32, clk *vtime.Clock) error
}

// spliceTable maps UDP destination ports to splice devices for the
// in-place echo path.
type spliceTable struct {
	mu    sync.RWMutex
	ports map[uint16]SpliceDevice
}

// SpliceUDPEcho registers an in-place UDP echo on port: mainstream
// datagrams addressed to it are reflected to their sender by rewriting
// the frame header in place (MAC, IP, and port swaps — both checksums
// survive 16-bit-aligned swaps unchanged) and re-queuing the RX frame on
// TX with zero payload copies. Passing a nil device unregisters.
func (s *Stack) SpliceUDPEcho(port uint16, dev SpliceDevice) {
	s.splice.mu.Lock()
	defer s.splice.mu.Unlock()
	if s.splice.ports == nil {
		s.splice.ports = make(map[uint16]SpliceDevice)
	}
	if dev == nil {
		delete(s.splice.ports, port)
		return
	}
	s.splice.ports[port] = dev
}

// spliceFor returns the splice device registered for port, if any.
func (s *Stack) spliceFor(port uint16) SpliceDevice {
	s.splice.mu.RLock()
	defer s.splice.mu.RUnlock()
	return s.splice.ports[port]
}

// InputView feeds one received frame into the stack as a certified
// zero-copy view. The mainstream shape — unfragmented IPv4/UDP addressed
// to this stack, headers intact, a consumer registered — is parsed in
// place: every header decision comes from one frozen Snap of the header
// prefix, the payload is traversed at most once (checksum), and the
// frame is handed on still in untrusted memory (socket queue view or TX
// splice). Everything else falls back to a single boundary copy followed
// by the classic Input path, so ARP, fragments, ICMP, TCP, and hostile
// shapes behave exactly as they always did.
func (s *Stack) InputView(v mem.View, clk *vtime.Clock) {
	s.InputViewShard(v, clk, 0)
}

// InputViewShard is InputView through the given demux shard: the
// in-place path demuxes via the shard's own table replica and queues on
// the socket's shard queue, and the copying fallback stays on the same
// shard — so a pump's frames never leave its shard however they parse.
func (s *Stack) InputViewShard(v mem.View, clk *vtime.Clock, shard int) {
	if s.closed.Load() {
		return
	}
	if s.inputViewInPlace(&v, clk, shard) {
		return
	}
	// A full-length CopyOut either fills the buffer or fails stale.
	frame := make([]byte, v.Len())
	_, err := v.CopyOut(frame, 0)
	v.Release()
	if err != nil {
		return
	}
	clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, len(frame)))
	s.InputShard(frame, clk, shard)
}

// viewFrameInfo is the trusted digest of a mainstream frame header,
// produced by validateViewHeader from the frozen snapshot.
type viewFrameInfo struct {
	proto    byte
	ihl      int // IPv4 header length in bytes
	totalLen int // IPv4 total length
	ulen     int // UDP length field (header + payload)
	l4len    int // L4 segment length (totalLen - ihl)
	dataOff  int // TCP data offset in bytes
	srcIP    IP4
	dstIP    IP4
	srcPort  uint16
	dstPort  uint16
	ethSrc   [6]byte
	hasCsum  bool
}

// validateViewHeader runs every gating check of the in-place parse on
// the frozen header snapshot: Ethernet type, IPv4 version/ihl/total
// length/header checksum, no fragmentation, live TTL, a UDP or TCP
// protocol field, and an L4 header consistent with the IP envelope —
// all against frameLen, the certified frame length. A true return means
// the header fields in the digest are safe to use as offsets and bounds
// within the snapshot and the frame; for TCP it additionally means the
// whole TCP header (options included) lies inside the snapshot, so
// every handshake and sequencing decision reads frozen bytes.
//
//rakis:validator
func validateViewHeader(hdr mem.Snap, frameLen int) (viewFrameInfo, bool) {
	var fi viewFrameInfo
	hn := len(hdr)
	if hn < EthHeaderBytes+IPv4HeaderBytes+UDPHeaderBytes {
		return fi, false
	}
	if be16(hdr[12:14]) != EtherTypeIPv4 {
		return fi, false
	}
	ip := hdr[EthHeaderBytes:]
	if ip[0]>>4 != 4 {
		return fi, false
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderBytes || EthHeaderBytes+ihl+UDPHeaderBytes > hn {
		return fi, false
	}
	totalLen := int(be16(ip[2:4]))
	if totalLen < ihl+UDPHeaderBytes || EthHeaderBytes+totalLen > frameLen {
		return fi, false
	}
	if Checksum(ip[:ihl]) != 0 {
		return fi, false
	}
	fl := be16(ip[6:8])
	if fl&0x2000 != 0 || fl&0x1FFF != 0 { // fragment: reassembly copies anyway
		return fi, false
	}
	if ip[8] == 0 { // TTL expired
		return fi, false
	}
	copy(fi.srcIP[:], ip[12:16])
	copy(fi.dstIP[:], ip[16:20])
	copy(fi.ethSrc[:], hdr[6:12])
	fi.proto = ip[9]
	fi.ihl, fi.totalLen = ihl, totalLen
	fi.l4len = totalLen - ihl
	switch fi.proto {
	case ProtoUDP:
		udp := hdr[EthHeaderBytes+ihl:]
		fi.srcPort = be16(udp[0:2])
		fi.dstPort = be16(udp[2:4])
		fi.ulen = int(be16(udp[4:6]))
		if fi.ulen < UDPHeaderBytes || fi.ulen > fi.l4len {
			return fi, false
		}
		fi.hasCsum = be16(udp[6:8]) != 0
		return fi, true
	case ProtoTCP:
		if fi.l4len < TCPHeaderBytes {
			return fi, false
		}
		tcp := hdr[EthHeaderBytes+ihl:]
		if EthHeaderBytes+ihl+TCPHeaderBytes > hn {
			return fi, false
		}
		fi.srcPort = be16(tcp[0:2])
		fi.dstPort = be16(tcp[2:4])
		fi.dataOff = int(tcp[12]>>4) * 4
		// The option field must fit both the IP envelope and the frozen
		// snapshot (ihl ≤ 60 and dataOff ≤ 60 keep the sum under
		// viewHeaderSnapMax whenever it is inside the frame).
		if fi.dataOff < TCPHeaderBytes || fi.dataOff > fi.l4len ||
			EthHeaderBytes+ihl+fi.dataOff > hn {
			return fi, false
		}
		fi.hasCsum = true // TCP checksum is mandatory
		return fi, true
	default:
		return fi, false
	}
}

// inputViewInPlace handles the mainstream UDP shape in place and reports
// whether it consumed the view. A false return means the caller must run
// the copying fallback; the view is still live. All gating decisions are
// taken on the frozen header snapshot before any cost is charged, so a
// fallen-back packet is charged once, by Input.
func (s *Stack) inputViewInPlace(v *mem.View, clk *vtime.Clock, shard int) bool {
	hn := v.Len()
	if hn > viewHeaderSnapMax {
		hn = viewHeaderSnapMax
	}
	hdr, err := v.Snap(0, hn)
	if err != nil {
		// Stale view: the frame is already gone; nothing to deliver.
		return true
	}
	fi, ok := validateViewHeader(hdr, v.Len())
	if !ok {
		return false
	}
	if fi.dstIP != s.ip {
		return false
	}
	if fi.proto == ProtoTCP {
		return s.inputViewTCP(v, hdr, fi, clk, shard)
	}
	udpOff := EthHeaderBytes + fi.ihl
	spliceDev := s.spliceFor(fi.dstPort)
	var sock *UDPSocket
	if spliceDev == nil {
		if sock = s.lookupUDPShard(fi.dstPort, shard); sock == nil {
			return false // port unreachable: the copy path answers it
		}
	}

	// Mainstream: parse in place. From here on the packet is consumed
	// exactly as the copy path would consume it — same charges, same
	// counters, same drop points — minus the copies.
	s.charge(clk, s.cfg.PerPacketCost)
	s.arp.learn(fi.srcIP, fi.ethSrc)
	if s.cfg.Counters != nil {
		s.cfg.Counters.PacketsRx.Add(1)
		s.cfg.Counters.BytesRx.Add(uint64(fi.totalLen - fi.ihl))
	}
	if fi.hasCsum {
		sum := pseudoHeaderSum(fi.srcIP, fi.dstIP, ProtoUDP, fi.ulen)
		sum = checksumPartial(sum, hdr[udpOff:udpOff+UDPHeaderBytes])
		if fi.ulen > UDPHeaderBytes {
			// The single sanctioned payload traversal: one pass, no
			// decisions on individual bytes, 16-bit alignment preserved
			// by splitting at the even UDP-header boundary.
			live, rerr := v.Range(udpOff+UDPHeaderBytes, fi.ulen-UDPHeaderBytes)
			if rerr != nil {
				v.Release()
				return true
			}
			sum = checksumPartial(sum, live)
		}
		if checksumFold(sum) != 0 {
			v.Release()
			return true
		}
	}
	if spliceDev != nil {
		s.spliceEcho(v, hdr, fi.ihl, fi.totalLen, clk, spliceDev)
		return true
	}
	if s.globalRes == nil {
		clk.Charge(vtime.CompStack, s.model.SocketOp)
	}
	pv, err := v.Slice(udpOff+UDPHeaderBytes, fi.ulen-UDPHeaderBytes)
	if err != nil {
		v.Release()
		return true
	}
	sock.enqueue(ViewDatagram(pv, Addr{IP: fi.srcIP, Port: fi.srcPort}, clk.Now()), s, shard)
	return true
}

// inputViewTCP ingests one mainstream TCP segment from a certified view.
// The trust discipline is stricter than the UDP path's, because TCP
// bytes drive a state machine: every header decision (ports, sequence
// numbers, flags, window, data offset) reads the frozen snapshot, and
// the payload is copied into trusted memory in a single pass *before*
// the checksum is verified over pseudo-header + frozen header + trusted
// copy. Untrusted frame bytes are therefore read exactly once each — a
// host rewriting the frame after certification can only produce a
// checksum mismatch (deterministic drop), never a byte stream that
// differs from what was verified.
func (s *Stack) inputViewTCP(v *mem.View, hdr mem.Snap, fi viewFrameInfo, clk *vtime.Clock, shard int) bool {
	if s.tcp == nil {
		return false // trimmed UDP-only build: fallback path drops it
	}
	l4Off := EthHeaderBytes + fi.ihl
	s.charge(clk, s.cfg.PerPacketCost)
	if s.cfg.Counters != nil {
		s.cfg.Counters.PacketsRx.Add(1)
		s.cfg.Counters.BytesRx.Add(uint64(fi.l4len))
	}

	// One boundary copy of the payload, charged like every app-boundary
	// crossing. (The TCP receive buffer is trusted memory; unlike a UDP
	// datagram a segment cannot be parked in untrusted memory awaiting
	// recv, because ACKing it promises the bytes are safely ours.)
	var payload []byte
	if n := fi.l4len - fi.dataOff; n > 0 {
		payload = make([]byte, n)
		if _, err := v.CopyOut(payload, l4Off+fi.dataOff); err != nil {
			v.Release()
			return true // stale view
		}
		clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, n))
	}

	// Checksum over pseudo-header, the frozen TCP header, and the
	// trusted payload copy — never over live untrusted bytes. dataOff is
	// a multiple of 4, so 16-bit alignment is preserved at the split.
	sum := pseudoHeaderSum(fi.srcIP, fi.dstIP, ProtoTCP, fi.l4len)
	sum = checksumPartial(sum, hdr[l4Off:l4Off+fi.dataOff])
	sum = checksumPartial(sum, payload)
	if checksumFold(sum) != 0 {
		v.Release()
		return true
	}

	tcp := hdr[l4Off:]
	seg := tcpSeg{
		srcPort: fi.srcPort,
		dstPort: fi.dstPort,
		seq:     be32(tcp[4:8]),
		ack:     be32(tcp[8:12]),
		flags:   tcp[13] & 0x3F,
		wnd:     be16(tcp[14:16]),
		payload: payload,
	}
	v.Release() // frame economy: the segment now lives in trusted memory
	s.tcp.inputSeg(fi.srcIP, seg, clk, shard, &fi.ethSrc)
	return true
}

// spliceEcho reflects a checksum-verified UDP frame back to its sender
// in place: the header rewrite (MAC swap, IP src/dst swap, port swap) is
// built in trusted scratch from the frozen snapshot and applied with one
// small CopyIn; both the IPv4 and UDP checksums are invariant under
// 16-bit-aligned field swaps, so nothing is recomputed and the payload
// is never read. The frame then moves RX→TX through the splice device.
func (s *Stack) spliceEcho(v *mem.View, hdr mem.Snap, ihl, totalLen int, clk *vtime.Clock, dev SpliceDevice) {
	udpOff := EthHeaderBytes + ihl
	hlen := udpOff + UDPHeaderBytes
	rew := make([]byte, hlen)
	copy(rew, hdr[:hlen])
	copy(rew[0:6], hdr[6:12]) // eth dst ← src
	copy(rew[6:12], hdr[0:6]) // eth src ← dst
	copy(rew[EthHeaderBytes+12:EthHeaderBytes+16], hdr[EthHeaderBytes+16:EthHeaderBytes+20])
	copy(rew[EthHeaderBytes+16:EthHeaderBytes+20], hdr[EthHeaderBytes+12:EthHeaderBytes+16])
	copy(rew[udpOff:udpOff+2], hdr[udpOff+2:udpOff+4])
	copy(rew[udpOff+2:udpOff+4], hdr[udpOff:udpOff+2])
	if _, err := v.CopyIn(0, rew); err != nil {
		v.Release()
		return
	}
	clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, len(rew)))
	frameLen := uint32(EthHeaderBytes + totalLen)
	if err := dev.SpliceFrame(v, frameLen, clk); err != nil {
		// TX saturated (or frame not spliceable): degrade to one copied
		// send of the already-rewritten frame. frameLen is within the
		// certified view, so the CopyOut either fills frame or fails
		// stale.
		frame := make([]byte, frameLen)
		_, cerr := v.CopyOut(frame, 0)
		v.Release()
		if cerr != nil {
			return
		}
		clk.Charge(vtime.CompCopy, vtime.Bytes(s.model.BoundaryCopyPerByte, len(frame)))
		if _, serr := s.dev.SendFrame(frame, clk); serr != nil {
			return
		}
	}
	if s.cfg.Counters != nil {
		s.cfg.Counters.PacketsTx.Add(1)
	}
}
