package netstack

// Fuzz target for the TCP leg of the certify-in-place RX parser. The
// enclave TCP configuration makes every protocol decision — data offset,
// flags, sequence numbers, cookie validation — over a single frozen
// header snapshot plus one trusted payload copy, so hostile segments
// must always land on a deterministic outcome: delivery, a stateless
// cookie reply, a RST, or a counted refusal. Every iteration mints a
// certified view over a UMem frame, runs it through the in-place
// parser, and asserts the frame economy balanced. The committed seed
// corpus (testdata/fuzz/FuzzInputTCP, table below) pins the hostile
// shapes: bad data offsets, option-field overruns, SYN+FIN, wrapped
// sequence numbers, checksum scribbles, and cookie-path ACK replays.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rakis/internal/vtime"
)

const fuzzTCPPort = 6379

// fuzzTCPWorld builds the long-lived TCP view-fuzzing harness: the
// trimmed enclave configuration (SYN-cookie listen path) with one
// listener, so SYNs, cookie ACKs, RST-provoking strays, and established-
// flow shapes are all reachable from a single frame.
func fuzzTCPWorld(t testing.TB) (*viewHarness, *TCPSocket) {
	t.Helper()
	h := newViewHarness(t)
	tcpStack, err := New(Config{
		Name: "enclave-tcp", Dev: h.link, IP: harnessIP,
		Counters: h.ctrs, EnableTCP: true, TCPCookies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcpStack.Close)
	h.stack = tcpStack
	l, err := tcpStack.TCPListen(fuzzTCPPort, 4)
	if err != nil {
		t.Fatal(err)
	}
	return h, l
}

// fuzzTCPInject runs one frame through the in-place parser and checks
// the frame-economy invariant: whatever the TCP layer decided (cookie
// reply, refusal, RST, drop, or — if the fuzzer ever forges a cookie —
// a minted connection), the UMem frame must be back in the pool.
func fuzzTCPInject(t testing.TB, h *viewHarness, l *TCPSocket, data []byte) {
	if len(data) > int(h.u.FrameSize()) {
		data = data[:h.u.FrameSize()]
	}
	v, _ := h.mintView(t, data)
	var clk vtime.Clock
	h.stack.InputView(v, &clk)
	// Drain any connection a forged cookie ACK managed to mint, so state
	// cannot accumulate across the campaign.
	for {
		c, err := l.Accept(&clk, false)
		if err != nil {
			break
		}
		c.Close(&clk)
	}
	if free := h.u.FreeFrames(); free != int(h.u.FrameCount()) {
		t.Fatalf("frame leaked: free = %d, want %d", free, h.u.FrameCount())
	}
	// The harness link captures replies (SYN|ACK cookies, RSTs); drop
	// them so a long campaign holds steady memory.
	h.link.mu.Lock()
	h.link.frames = h.link.frames[:0]
	h.link.mu.Unlock()
}

// buildTCPFrame assembles a checksummed Ethernet/IPv4/TCP frame.
func buildTCPFrame(src, dst IP4, seg tcpSeg) []byte {
	pkt := MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoTCP, Src: src, Dst: dst},
		marshalTCP(src, dst, seg))
	return MarshalEth(EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 9},
		Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}, pkt)
}

// buildRawTCPFrame wraps hand-built TCP bytes (hostile headers that
// marshalTCP refuses to produce) in a well-formed Ethernet/IPv4 frame,
// refreshing the TCP checksum when asked so the parse reaches the gate
// under test instead of dying at checksum verification.
func buildRawTCPFrame(src, dst IP4, l4 []byte, fixCsum bool) []byte {
	if fixCsum && len(l4) >= TCPHeaderBytes {
		put16(l4[16:18], 0)
		sum := pseudoHeaderSum(src, dst, ProtoTCP, len(l4))
		put16(l4[16:18], checksumFold(checksumPartial(sum, l4)))
	}
	pkt := MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoTCP, Src: src, Dst: dst}, l4)
	return MarshalEth(EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 9},
		Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}, pkt)
}

// rawTCPHeader builds a 20-byte TCP header plus payload with an
// arbitrary (possibly hostile) data-offset nibble.
func rawTCPHeader(sport, dport uint16, seq, ack uint32, dataOffWords byte, flags byte, payload []byte) []byte {
	b := make([]byte, TCPHeaderBytes+len(payload))
	put16(b[0:2], sport)
	put16(b[2:4], dport)
	put32(b[4:8], seq)
	put32(b[8:12], ack)
	b[12] = dataOffWords << 4
	b[13] = flags
	put16(b[14:16], 4096)
	copy(b[TCPHeaderBytes:], payload)
	return b
}

// tcpHostileFrames is the canonical seed table; the corpus files on disk
// are its rendering (see TestTCPFuzzCorpus, same contract as
// viewHostileFrames/TestViewFuzzCorpus).
func tcpHostileFrames() map[string][]byte {
	frames := map[string][]byte{}

	// The mainstream listen-path shapes: a clean SYN (answered with a
	// stateless cookie SYN|ACK) and a bare ACK on the cookie path. The
	// ACK's cookie cannot validate against a randomly keyed secret, so it
	// is the deterministic-refusal shape; a mutated ack field is exactly
	// a cookie replay/forgery attempt.
	frames["tcp-valid-syn"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x1000, flags: flagSYN, wnd: 4096})
	frames["tcp-cookie-garbage-ack"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x1001, ack: 0xDEADBEEF, flags: flagACK, wnd: 4096})
	// A replayed third segment: same flow, same forged cookie, with
	// ride-along data — the shape a replaying middlebox produces.
	frames["tcp-cookie-replay"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x1001, ack: 0xDEADBEEF,
			flags: flagACK | flagPSH, wnd: 4096, payload: []byte("GET replay")})

	// Bad data offsets: zero (below the 20-byte minimum) and one pointing
	// past the end of the segment.
	frames["tcp-dataoff-zero"] = buildRawTCPFrame(peerIP, harnessIP,
		rawTCPHeader(1111, fuzzTCPPort, 0x1000, 0, 0, flagSYN, nil), true)
	frames["tcp-dataoff-past-end"] = buildRawTCPFrame(peerIP, harnessIP,
		rawTCPHeader(1111, fuzzTCPPort, 0x1000, 0, 15, flagSYN, nil), true)

	// Option-field overrun: data offset claims 8 words (12 option bytes)
	// but only 4 option bytes follow the header — the option region runs
	// past the segment end.
	frames["tcp-options-overrun"] = buildRawTCPFrame(peerIP, harnessIP,
		rawTCPHeader(1111, fuzzTCPPort, 0x1000, 0, 8, flagSYN, []byte{1, 1, 1, 0}), true)
	// Options within bounds: data offset 6, four NOP option bytes, then
	// payload — the parse must skip options and take the payload after
	// them, not from byte 20.
	frames["tcp-options-valid"] = buildRawTCPFrame(peerIP, harnessIP,
		rawTCPHeader(1111, fuzzTCPPort, 0x1000, 0, 6, flagSYN, []byte{1, 1, 1, 1}), true)

	// Illegal flag combination: SYN+FIN in one segment.
	frames["tcp-syn-fin"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x1000, flags: flagSYN | flagFIN, wnd: 4096})

	// Wrapped sequence number: data straddling the 2^32 boundary.
	frames["tcp-wrapped-seq"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0xFFFFFFF0, ack: 1,
			flags: flagACK | flagPSH, wnd: 4096, payload: bytes.Repeat([]byte{0x55}, 32)})

	// Checksum scribble: a valid segment whose checksum bytes the host
	// flipped after building — the single-copy checksum must refuse it.
	scribbled := buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x1000, flags: flagSYN, wnd: 4096})
	scribbled[EthHeaderBytes+IPv4HeaderBytes+16] ^= 0xFF
	frames["tcp-bad-checksum"] = scribbled

	// Truncated header: IP total length admits only 8 TCP bytes.
	frames["tcp-truncated"] = buildRawTCPFrame(peerIP, harnessIP,
		rawTCPHeader(1111, fuzzTCPPort, 0x1000, 0, 5, flagSYN, nil)[:8], false)

	// Blind RST at a connection that does not exist.
	frames["tcp-blind-rst"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 2222, dstPort: fuzzTCPPort, seq: 0x9999, flags: flagRST})

	// SYN at a closed port: the deterministic RST-refusal path.
	frames["tcp-syn-closed-port"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: 9, seq: 0x1000, flags: flagSYN, wnd: 4096})

	// Data with no ACK flag aimed at the listener: matches no connection
	// and is not a handshake segment.
	frames["tcp-data-to-listener"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x1000, flags: flagPSH,
			wnd: 4096, payload: []byte("no handshake")})

	// IP options push the TCP header deep into the frame: ihl=15 (60-byte
	// IP header), the farthest the header snapshot must reach.
	tcpBytes := marshalTCP(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x1000, flags: flagSYN, wnd: 4096})
	iph := make([]byte, 60)
	iph[0] = 0x4F // version 4, ihl 15 words
	put16(iph[2:4], uint16(60+len(tcpBytes)))
	iph[8] = 64
	iph[9] = ProtoTCP
	copy(iph[12:16], peerIP[:])
	copy(iph[16:20], harnessIP[:])
	for i := IPv4HeaderBytes; i < 60; i++ {
		iph[i] = 0x01 // NOP options
	}
	put16(iph[10:12], Checksum(iph))
	frames["tcp-ihl-options"] = MarshalEth(
		EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 9}, Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4},
		append(iph, tcpBytes...))

	// Max length: the segment fills its 2048-byte UMem frame exactly.
	frames["tcp-max-length"] = buildTCPFrame(peerIP, harnessIP,
		tcpSeg{srcPort: 1111, dstPort: fuzzTCPPort, seq: 0x2000, ack: 1, flags: flagACK, wnd: 4096,
			payload: bytes.Repeat([]byte{0xA5}, 2048-EthHeaderBytes-IPv4HeaderBytes-TCPHeaderBytes)})

	return frames
}

func FuzzInputTCP(f *testing.F) {
	for _, data := range tcpHostileFrames() {
		f.Add(data)
	}
	h, l := fuzzTCPWorld(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzTCPInject(t, h, l, data)
	})
}

// TestTCPFuzzCorpus pins the committed corpus to the table, exactly as
// TestViewFuzzCorpus does for FuzzInputView. Regenerate after editing:
//
//	RAKIS_WRITE_CORPUS=1 go test ./internal/netstack -run TestTCPFuzzCorpus
func TestTCPFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzInputTCP")
	frames := tcpHostileFrames()
	if len(frames) < 12 {
		t.Fatalf("seed table holds %d frames, battery requires >= 12", len(frames))
	}

	if os.Getenv("RAKIS_WRITE_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range frames {
			if err := os.WriteFile(filepath.Join(dir, name), corpusEntry(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus files to %s", len(frames), dir)
		return
	}

	h, l := fuzzTCPWorld(t)
	for name, data := range frames {
		fuzzTCPInject(t, h, l, data)
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: corpus file missing (regenerate with RAKIS_WRITE_CORPUS=1): %v", name, err)
			continue
		}
		if !bytes.Equal(got, corpusEntry(data)) {
			t.Errorf("%s: corpus file stale (regenerate with RAKIS_WRITE_CORPUS=1)", name)
		}
	}
	// The battery must have driven deterministic refusals, observable
	// through the shared counters.
	if h.ctrs.TCPRefused.Load() == 0 {
		t.Error("hostile battery drove no TCPRefused counts")
	}
}
