package netstack

// Stateless SYN cookies for the enclave listen path.
//
// A hostile internet peer can spray SYNs at 10^5/s with spoofed source
// addresses; a stateful listener would mint a SYN_RCVD socket (and an
// ARP-cache entry, and a timer) for each one, growing enclave memory
// without bound. The cookie listen path holds *zero* per-SYN state: the
// listener answers every SYN with a SYN|ACK whose initial sequence
// number is a keyed hash of the flow's 4-tuple and a coarse time epoch.
// Only when the third handshake segment arrives — an ACK whose
// acknowledgment number round-trips that exact cookie — does the stack
// allocate a connection. Everything an attacker can send without
// completing the round trip is answered from stack memory alone.
//
// Cookie layout (32 bits of ISS):
//
//	bits 31..30  epoch & 3       — which 64 s window minted the cookie
//	bits 29..0   keyed hash      — FNV-1a over (secret, 4-tuple, epoch)
//
// Validation accepts the current epoch and the previous one, giving a
// client between 64 and 128 seconds to complete the handshake. MSS is
// not encoded: both ends of the simulation use the fixed 1460-byte MSS,
// so the usual 3-bit MSS table would carry no information.
//
// The epoch advances with host real time (time.Now), matching the RTO
// engine's pacing domain: virtual clocks only advance when threads do
// work, so a virtual-time epoch would never expire cookies on an idle
// stack.

import (
	"time"

	"rakis/internal/vtime"
)

const (
	// cookieEpochShift makes one epoch 2^6 = 64 seconds.
	cookieEpochShift = 6
	cookieHashBits   = 30
	cookieHashMask   = 1<<cookieHashBits - 1
)

func cookieEpoch() uint32 { return uint32(time.Now().Unix() >> cookieEpochShift) }

// cookieHash is FNV-1a over the secret, the flow 4-tuple, and the epoch,
// truncated to the cookie's hash field.
func (t *tcpTable) cookieHash(key connKey, epoch uint32) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xFF
			h *= prime32
			v >>= 8
		}
	}
	mix(t.cookieSecret[0])
	mix(uint32(key.remoteIP[0])<<24 | uint32(key.remoteIP[1])<<16 |
		uint32(key.remoteIP[2])<<8 | uint32(key.remoteIP[3]))
	mix(uint32(key.remotePort)<<16 | uint32(key.localPort))
	mix(epoch)
	mix(t.cookieSecret[1])
	return h & cookieHashMask
}

// cookieISS mints the initial sequence number for a SYN|ACK answering
// the given flow's SYN in the current epoch.
func (t *tcpTable) cookieISS(key connKey) uint32 {
	e := cookieEpoch()
	return (e&3)<<cookieHashBits | t.cookieHash(key, e)
}

// validCookie reports whether iss is a cookie this stack minted for the
// flow within the last two epochs.
func (t *tcpTable) validCookie(key connKey, iss uint32) bool {
	tag := iss >> cookieHashBits
	h := iss & cookieHashMask
	e := cookieEpoch()
	for _, epoch := range [2]uint32{e, e - 1} {
		if epoch&3 == tag && t.cookieHash(key, epoch) == h {
			return true
		}
	}
	return false
}

// acceptCookie handles the third handshake segment on the cookie listen
// path: an ACK (no SYN, no RST) that matches a listener but no
// connection. seg.ack-1 must be a cookie we minted; if it is, this is
// the moment — and the only moment — connection state is created. An
// invalid cookie is refused with a deterministic RST, and so is a valid
// one that arrives while the accept queue is full: under backpressure
// the client sees a clean connection reset, never a half-open mystery.
func (t *tcpTable) acceptCookie(l *TCPSocket, key connKey, seg tcpSeg, clk *vtime.Clock, ethSrc *[6]byte) {
	iss := seg.ack - 1
	if !t.validCookie(key, iss) {
		t.refuse()
		t.sendRST(key.remoteIP, ethSrc, seg, clk)
		return
	}

	c := newTCPSocket(t)
	c.key = key
	c.local = Addr{IP: t.stack.ip, Port: key.localPort}
	c.remote = Addr{IP: key.remoteIP, Port: key.remotePort}
	// Reconstruct the state the SYN|ACK implied: our ISS was the cookie,
	// the client's ACK covers it, and seg.seq is the byte after its SYN.
	c.sndUna, c.sndNxt = seg.ack, seg.ack
	c.rcvNxt = seg.seq
	c.sndWnd = uint32(seg.wnd)
	c.state = stateEstablished
	if err := t.register(key, c); err != nil {
		// A concurrent ACK (duplicate or retransmitted) won the race and
		// registered the connection; this copy carries nothing new.
		return
	}
	c.noteMAC(ethSrc)

	if !l.offerBacklog(c) {
		// Accept-queue backpressure (or a listener that closed under
		// us): deterministic refusal. The cookie was honest, but the
		// application is not draining accepts; a RST now is strictly
		// kinder than a connection that would stall.
		t.refuse()
		c.mu.Lock()
		c.teardownLocked(ErrRefused)
		c.mu.Unlock()
		t.sendRST(key.remoteIP, ethSrc, seg, clk)
		return
	}
	if ctr := t.stack.cfg.Counters; ctr != nil {
		ctr.TCPCookiesAccepted.Add(1)
	}
	c.stamp.Raise(clk.Now())

	// The ACK may carry ride-along data (TCP fast open is out of scope,
	// but a client that pipelines its first request with the handshake
	// ACK is normal); run it through the ordinary segment processor.
	if len(seg.payload) > 0 || seg.flags&flagFIN != 0 {
		c.segArrives(seg, clk)
	}
}
