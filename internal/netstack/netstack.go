// Package netstack is a from-scratch network stack: Ethernet framing, ARP,
// IPv4 with fragmentation and reassembly, ICMP, UDP, and TCP, plus a
// socket layer with per-socket receive queues.
//
// It is used in two configurations, mirroring the paper:
//
//   - Full (EnableTCP, EnableICMP): the simulated Linux kernel's stack in
//     internal/hostos, serving the Native and Gramine baselines and the
//     kernel TCP sockets RAKIS reaches through io_uring.
//   - Trimmed (UDP/IP only): the in-enclave Service Module stack — the
//     paper's LWIP cut from >80K LoC down to <5K (§4.2). The trimmed
//     configuration compiles the same code but refuses to register TCP or
//     ICMP handling, keeping the enclave attack surface minimal.
//
// Concurrency follows §4.2's implementation note: instead of one global
// stack lock, shared state uses fine-grained per-socket and per-table
// locks. The ablation benchmark can re-enable the global-lock behaviour
// via Config.GlobalLock, which also routes every packet's processing cost
// through a single virtual-time Resource so the contention is visible in
// simulated time.
//
//rakis:role enclave
package netstack

import (
	"errors"
	"fmt"

	"rakis/internal/vtime"
)

// IP4 is an IPv4 address.
type IP4 [4]byte

// String renders the address in dotted-quad form.
func (ip IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Addr is a UDP/TCP endpoint.
type Addr struct {
	IP   IP4
	Port uint16
}

// String renders the endpoint as ip:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// LinkDevice is the layer-2 output the stack transmits frames on. The
// kernel stack binds a netsim device; the enclave stack binds the XSK
// FastPath Module's transmit path.
type LinkDevice interface {
	// SendFrame transmits one Ethernet frame, charging transmit work to
	// the caller's clock, and returns the virtual time the frame
	// finished serializing.
	SendFrame(data []byte, clk *vtime.Clock) (uint64, error)
	// MAC returns the interface hardware address.
	MAC() [6]byte
	// MTU returns the link MTU (IP payload capacity).
	MTU() int
}

// BatchLinkDevice is a LinkDevice that can also transmit a run of frames
// in one call, letting the device amortize its per-call costs (ring lock,
// certification pass, wakeup) across the run. The stack's batched send
// path uses it when present and falls back to per-frame SendFrame
// otherwise.
type BatchLinkDevice interface {
	LinkDevice
	// SendFrames transmits the frames in order and returns the virtual
	// time the last frame finished serializing. An error is reported
	// only when the first frame fails; a partial run is success.
	SendFrames(frames [][]byte, clk *vtime.Clock) (uint64, error)
}

// Protocol numbers and EtherTypes used by the stack.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806

	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// Common errors.
var (
	// ErrTrimmed reports use of a protocol compiled out of the trimmed
	// enclave configuration.
	ErrTrimmed = errors.New("netstack: protocol not present in trimmed stack")
	// ErrPortInUse reports a bind conflict.
	ErrPortInUse = errors.New("netstack: port in use")
	// ErrClosed reports an operation on a closed socket or stack.
	ErrClosed = errors.New("netstack: closed")
	// ErrNoRoute reports an unresolvable destination.
	ErrNoRoute = errors.New("netstack: no route to host")
	// ErrTimeout reports a timed-out blocking operation.
	ErrTimeout = errors.New("netstack: timed out")
	// ErrRefused reports a connection refused by the peer.
	ErrRefused = errors.New("netstack: connection refused")
	// ErrWouldBlock reports a non-blocking operation that found no data.
	ErrWouldBlock = errors.New("netstack: operation would block")
	// ErrMsgSize reports a datagram too large for the socket or link.
	ErrMsgSize = errors.New("netstack: message too long")
)

// checksum computes the Internet checksum (RFC 1071) over data, starting
// from the given partial sum.
func checksumPartial(sum uint32, data []byte) uint32 {
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < n {
		sum += uint32(data[i]) << 8
	}
	return sum
}

func checksumFold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Checksum computes the Internet checksum of data.
func Checksum(data []byte) uint16 {
	return checksumFold(checksumPartial(0, data))
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header partial sum.
func pseudoHeaderSum(src, dst IP4, proto byte, length int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

func be16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func put16(b []byte, v uint16) {
	b[0], b[1] = byte(v>>8), byte(v)
}
func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
