package netstack

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"rakis/internal/netsim"
	"rakis/internal/vtime"
)

// devLink adapts a netsim.Device to the stack's LinkDevice.
type devLink struct{ dev *netsim.Device }

func (l devLink) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) {
	return l.dev.Transmit(data, clk.Now())
}
func (l devLink) MAC() [6]byte { return l.dev.MAC() }
func (l devLink) MTU() int     { return l.dev.MTU() }

type world struct {
	a, b *Stack
}

// newWorld wires two full stacks across a simulated 25 Gbps link.
func newWorld(t *testing.T, mutate func(a, b *Config)) *world {
	t.Helper()
	m := vtime.Default()
	da, db := netsim.NewPair(m,
		netsim.Config{Name: "eth0", MAC: [6]byte{2, 0, 0, 0, 0, 1}},
		netsim.Config{Name: "eth1", MAC: [6]byte{2, 0, 0, 0, 0, 2}},
	)
	ca := Config{Name: "a", Dev: devLink{da}, IP: IP4{10, 0, 0, 1}, Model: m, EnableTCP: true, EnableICMP: true}
	cb := Config{Name: "b", Dev: devLink{db}, IP: IP4{10, 0, 0, 2}, Model: m, EnableTCP: true, EnableICMP: true}
	if mutate != nil {
		mutate(&ca, &cb)
	}
	sa, err := New(ca)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := New(cb)
	if err != nil {
		t.Fatal(err)
	}
	da.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sa.Input(f.Data, clk) })
	db.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sb.Input(f.Data, clk) })
	t.Cleanup(func() {
		sa.Close()
		sb.Close()
		da.Close()
		db.Close()
	})
	return &world{a: sa, b: sb}
}

func TestUDPEndToEnd(t *testing.T) {
	w := newWorld(t, nil)
	srv, err := w.b.UDPBind(5000)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := w.a.UDPBind(0)
	if err != nil {
		t.Fatal(err)
	}

	var cclk, sclk vtime.Clock
	msg := []byte("hello over simulated udp")
	if err := cli.SendTo(msg, Addr{IP4{10, 0, 0, 2}, 5000}, &cclk); err != nil {
		t.Fatal(err)
	}
	d, err := srv.RecvFrom(&sclk, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Payload, msg) {
		t.Fatalf("payload = %q", d.Payload)
	}
	if d.Src.IP != (IP4{10, 0, 0, 1}) || d.Src.Port != cli.LocalAddr().Port {
		t.Fatalf("src = %v", d.Src)
	}
	// Virtual time flowed: the receiver's clock is ahead of the sender's
	// send-start (wire + kernel processing happened in between).
	if sclk.Now() <= 0 || sclk.Now() < d.Stamp {
		t.Fatalf("receiver clock %d, stamp %d", sclk.Now(), d.Stamp)
	}

	// And the reply direction works (ARP already warm).
	if err := srv.SendTo([]byte("pong"), d.Src, &sclk); err != nil {
		t.Fatal(err)
	}
	r, err := cli.RecvFrom(&cclk, true)
	if err != nil || string(r.Payload) != "pong" {
		t.Fatalf("reply = %q, %v", r.Payload, err)
	}
}

func TestUDPEcho1000(t *testing.T) {
	w := newWorld(t, nil)
	srv, _ := w.b.UDPBind(5001)
	cli, _ := w.a.UDPBind(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var clk vtime.Clock
		for i := 0; i < 1000; i++ {
			d, err := srv.RecvFrom(&clk, true)
			if err != nil {
				t.Errorf("server recv %d: %v", i, err)
				return
			}
			if err := srv.SendTo(d.Payload, d.Src, &clk); err != nil {
				t.Errorf("server send %d: %v", i, err)
				return
			}
		}
	}()
	var clk vtime.Clock
	buf := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		buf[0], buf[1] = byte(i), byte(i>>8)
		if err := cli.SendTo(buf, Addr{IP4{10, 0, 0, 2}, 5001}, &clk); err != nil {
			t.Fatal(err)
		}
		d, err := cli.RecvFrom(&clk, true)
		if err != nil {
			t.Fatal(err)
		}
		if d.Payload[0] != byte(i) || d.Payload[1] != byte(i>>8) {
			t.Fatalf("echo %d corrupted", i)
		}
	}
	<-done
	if clk.Now() == 0 {
		t.Fatal("client clock did not advance")
	}
}

func TestUDPLargeDatagramFragments(t *testing.T) {
	w := newWorld(t, nil)
	srv, _ := w.b.UDPBind(5002)
	cli, _ := w.a.UDPBind(0)
	payload := make([]byte, 9000) // 7 fragments at MTU 1500
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	var clk vtime.Clock
	if err := cli.SendTo(payload, Addr{IP4{10, 0, 0, 2}, 5002}, &clk); err != nil {
		t.Fatal(err)
	}
	d, err := srv.RecvFrom(&clk, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Fatal("fragmented datagram corrupted")
	}
}

func TestUDPMaxSizeRejected(t *testing.T) {
	w := newWorld(t, nil)
	cli, _ := w.a.UDPBind(0)
	var clk vtime.Clock
	err := cli.SendTo(make([]byte, MaxUDPPayload+1), Addr{IP4{10, 0, 0, 2}, 1}, &clk)
	if !errors.Is(err, ErrMsgSize) {
		t.Fatalf("err = %v, want ErrMsgSize", err)
	}
}

func TestUDPBindConflicts(t *testing.T) {
	w := newWorld(t, nil)
	if _, err := w.a.UDPBind(7000); err != nil {
		t.Fatal(err)
	}
	if _, err := w.a.UDPBind(7000); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v, want ErrPortInUse", err)
	}
	e1, _ := w.a.UDPBind(0)
	e2, _ := w.a.UDPBind(0)
	if e1.LocalAddr().Port == e2.LocalAddr().Port {
		t.Fatal("ephemeral ports must differ")
	}
}

func TestUDPConnectSendRecv(t *testing.T) {
	w := newWorld(t, nil)
	srv, _ := w.b.UDPBind(5003)
	cli, _ := w.a.UDPBind(0)
	cli.Connect(Addr{IP4{10, 0, 0, 2}, 5003})
	if _, ok := cli.RemoteAddr(); !ok {
		t.Fatal("RemoteAddr after Connect")
	}
	var clk vtime.Clock
	if err := cli.Send([]byte("via connect"), &clk); err != nil {
		t.Fatal(err)
	}
	d, err := srv.RecvFrom(&clk, true)
	if err != nil || string(d.Payload) != "via connect" {
		t.Fatalf("%q %v", d.Payload, err)
	}
	// Unconnected Send fails.
	if err := srv.Send([]byte("x"), &clk); err == nil {
		t.Fatal("Send on unconnected socket must fail")
	}
}

func TestUDPNonblockingAndClose(t *testing.T) {
	w := newWorld(t, nil)
	srv, _ := w.b.UDPBind(5004)
	var clk vtime.Clock
	if _, err := srv.RecvFrom(&clk, false); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty nonblocking recv = %v, want ErrWouldBlock", err)
	}
	if srv.Readable() {
		t.Fatal("Readable on empty socket")
	}
	recvDone := make(chan error, 1)
	go func() {
		_, err := srv.RecvFrom(&clk, true)
		recvDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	if err := <-recvDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close = %v, want ErrClosed", err)
	}
	if err := srv.SendTo([]byte("x"), Addr{}, &clk); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	srv.Close() // idempotent
	// Port is free again.
	if _, err := w.b.UDPBind(5004); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	w := newWorld(t, nil)
	srv, _ := w.b.UDPBind(5005)
	var clk vtime.Clock
	if _, err := srv.RecvTimeout(&clk, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestCorruptUDPChecksumDropped(t *testing.T) {
	w := newWorld(t, nil)
	srv, _ := w.b.UDPBind(5006)
	// Build a frame by hand with a broken UDP checksum and inject it.
	dgram := make([]byte, UDPHeaderBytes+4)
	put16(dgram[0:2], 1234)
	put16(dgram[2:4], 5006)
	put16(dgram[4:6], uint16(len(dgram)))
	put16(dgram[6:8], 0xBEEF) // wrong
	ip := MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoUDP, Src: IP4{10, 0, 0, 1}, Dst: IP4{10, 0, 0, 2}}, dgram)
	frame := MarshalEth(EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 2}, Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}, ip)
	var clk vtime.Clock
	w.b.Input(frame, &clk)
	if srv.Readable() {
		t.Fatal("corrupt-checksum datagram must be dropped")
	}
	// Zero checksum means "no checksum" and is accepted.
	put16(dgram[6:8], 0)
	ip = MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoUDP, Src: IP4{10, 0, 0, 1}, Dst: IP4{10, 0, 0, 2}}, dgram)
	frame = MarshalEth(EthHeader{Dst: [6]byte{2, 0, 0, 0, 0, 2}, Src: [6]byte{2, 0, 0, 0, 0, 1}, Type: EtherTypeIPv4}, ip)
	w.b.Input(frame, &clk)
	if !srv.Readable() {
		t.Fatal("zero-checksum datagram must be accepted")
	}
}

func TestICMPEcho(t *testing.T) {
	w := newWorld(t, nil)
	// Observe b's replies by sniffing a's input: bind a raw check via a
	// socket is not possible, so instead send an echo request from a's
	// stack internals and verify no crash plus ARP learning; then check
	// reachability indirectly via UDP.
	body := []byte{0, 1, 0, 1, 'p', 'i', 'n', 'g'}
	req := marshalICMP(icmpEchoRequest, 0, body)
	var clk vtime.Clock
	if _, err := w.a.sendIP(ProtoICMP, IP4{10, 0, 0, 2}, req, &clk); err != nil {
		t.Fatal(err)
	}
	// The reply comes back to a's stack; a accepts it silently. Give the
	// softirq a moment, then confirm both stacks are still healthy.
	time.Sleep(20 * time.Millisecond)
	srv, _ := w.b.UDPBind(5007)
	cli, _ := w.a.UDPBind(0)
	cli.SendTo([]byte("after ping"), Addr{IP4{10, 0, 0, 2}, 5007}, &clk)
	if _, err := srv.RecvTimeout(&clk, time.Second); err != nil {
		t.Fatalf("stack unhealthy after ICMP exchange: %v", err)
	}
}

func TestGlobalLockSerializesVirtualTime(t *testing.T) {
	// With the global lock (the original-LWIP ablation), the stack's
	// per-packet processing serializes across all receive queues; with
	// sharded locks four softirq workers process four flows in parallel
	// virtual time. Saturate four queues and compare the receive
	// makespans.
	const flows, per = 4, 150
	run := func(global bool) uint64 {
		m := vtime.Default()
		da, db := netsim.NewPair(m,
			netsim.Config{Name: "ga", MAC: [6]byte{2, 0, 0, 0, 2, 1}},
			netsim.Config{Name: "gb", MAC: [6]byte{2, 0, 0, 0, 2, 2}, Queues: flows},
		)
		sa, err := New(Config{Name: "a", Dev: devLink{da}, IP: IP4{10, 2, 0, 1}, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		sb, err := New(Config{Name: "b", Dev: devLink{db}, IP: IP4{10, 2, 0, 2}, Model: m,
			GlobalLock: global})
		if err != nil {
			t.Fatal(err)
		}
		da.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sa.Input(f.Data, clk) })
		db.Start(func(q int, f netsim.Frame, clk *vtime.Clock) { sb.Input(f.Data, clk) })
		// One flow per queue, by destination port.
		db.SetRSS(func(data []byte, queues int) int {
			if len(data) < 14+20+4 || data[23] != 17 {
				return 0
			}
			dport := int(data[14+20+2])<<8 | int(data[14+20+3])
			return dport % queues
		})
		defer func() { sa.Close(); sb.Close(); da.Close(); db.Close() }()

		var socks []*UDPSocket
		for i := 0; i < flows; i++ {
			s, err := sb.UDPBind(uint16(6000 + i))
			if err != nil {
				t.Fatal(err)
			}
			socks = append(socks, s)
		}
		var wg sync.WaitGroup
		for i := 0; i < flows; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, _ := sa.UDPBind(0)
				var clk vtime.Clock
				for j := 0; j < per; j++ {
					c.SendTo(make([]byte, 400), Addr{IP4{10, 2, 0, 2}, uint16(6000 + i)}, &clk)
				}
			}(i)
		}
		wg.Wait()
		var makespan uint64
		var mu sync.Mutex
		var rg sync.WaitGroup
		for i := 0; i < flows; i++ {
			rg.Add(1)
			go func(i int) {
				defer rg.Done()
				var clk vtime.Clock
				for j := 0; j < per; j++ {
					if _, err := socks[i].RecvTimeout(&clk, 2*time.Second); err != nil {
						t.Errorf("recv flow %d: %v", i, err)
						return
					}
				}
				mu.Lock()
				if clk.Now() > makespan {
					makespan = clk.Now()
				}
				mu.Unlock()
			}(i)
		}
		rg.Wait()
		return makespan
	}
	sharded := run(false)
	global := run(true)
	if global < sharded*3/2 {
		t.Fatalf("global-lock makespan %d should exceed sharded %d by >=1.5x", global, sharded)
	}
}

func TestStackCloseErrorsSockets(t *testing.T) {
	w := newWorld(t, nil)
	srv, _ := w.b.UDPBind(5008)
	var clk vtime.Clock
	go func() {
		time.Sleep(10 * time.Millisecond)
		w.b.Close()
	}()
	if _, err := srv.RecvFrom(&clk, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on closed stack = %v, want ErrClosed", err)
	}
	if _, err := w.b.UDPBind(5009); !errors.Is(err, ErrClosed) {
		t.Fatalf("bind on closed stack = %v, want ErrClosed", err)
	}
}

func TestTrimmedStackRefusesTCP(t *testing.T) {
	w := newWorld(t, func(a, b *Config) {
		a.EnableTCP = false
		a.EnableICMP = false
	})
	if _, err := w.a.TCPListen(80, 1); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("TCPListen on trimmed stack = %v, want ErrTrimmed", err)
	}
	var clk vtime.Clock
	if _, err := w.a.TCPConnect(Addr{IP4{10, 0, 0, 2}, 80}, &clk); !errors.Is(err, ErrTrimmed) {
		t.Fatalf("TCPConnect on trimmed stack = %v, want ErrTrimmed", err)
	}
}
