package netstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/vtime"
)

// TCP constants. The implementation is deliberately compact but real:
// three-way handshake, sequence/ack bookkeeping, flow-control windows,
// retransmission under a lossy wire, and orderly close. Congestion
// control is omitted — the simulated wire is single-hop, so flow control
// alone governs throughput, which is what the Redis experiment
// exercises. Two configurations run it: the full kernel stack (stateful
// listen, ARP-resolved output) and the trimmed enclave stack over XSK
// (stateless SYN-cookie listen, per-connection cached peer MAC so no
// reply ever blocks on ARP for a spoofed source, and demux sharded by
// the RSS flow hash so a connection lives entirely on one FM shard).
const (
	TCPHeaderBytes = 20
	// tcpHeaderMax is the largest legal TCP header (data offset 15).
	tcpHeaderMax = 60
	// MSS is the maximum segment payload (1500 MTU - 20 IP - 20 TCP).
	MSS = 1460
	// rcvBufCap is the receive buffer and maximum advertised window.
	rcvBufCap = 65535
	// sndBufCap is the send buffer capacity.
	sndBufCap = 256 * 1024
	// rtoInitial is the real-time retransmission timeout; the engine's
	// deadlines pace in host time (like every blocking wait in the
	// simulation) while the retransmit work itself is charged to the
	// servicing pump's virtual clock.
	rtoInitial = 200 * time.Millisecond
	rtoMax     = 2 * time.Second
	// tcpTickFallback is the fallback ticker period for stacks with no
	// FM pumps driving TickTCP (the kernel configuration).
	tcpTickFallback = 5 * time.Millisecond
	// connectTimeout bounds the real-time handshake wait.
	connectTimeout = 5 * time.Second
)

// TCP flags.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagPSH = 1 << 3
	flagACK = 1 << 4
)

// tcpState is the connection state machine.
type tcpState int

const (
	stateClosed tcpState = iota
	stateListen
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateClosing
	stateLastAck
	stateTimeWait
)

var stateNames = map[tcpState]string{
	stateClosed: "CLOSED", stateListen: "LISTEN", stateSynSent: "SYN_SENT",
	stateSynRcvd: "SYN_RCVD", stateEstablished: "ESTABLISHED",
	stateFinWait1: "FIN_WAIT_1", stateFinWait2: "FIN_WAIT_2",
	stateCloseWait: "CLOSE_WAIT", stateClosing: "CLOSING",
	stateLastAck: "LAST_ACK", stateTimeWait: "TIME_WAIT",
}

func (s tcpState) String() string { return stateNames[s] }

// ErrReset reports a connection reset by the peer.
var ErrReset = errors.New("netstack: connection reset by peer")

type tcpSeg struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	flags            byte
	wnd              uint16
	payload          []byte
}

func parseTCP(b []byte) (tcpSeg, bool) {
	var s tcpSeg
	if len(b) < TCPHeaderBytes {
		return s, false
	}
	s.srcPort = be16(b[0:2])
	s.dstPort = be16(b[2:4])
	s.seq = be32(b[4:8])
	s.ack = be32(b[8:12])
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderBytes || dataOff > len(b) {
		return s, false
	}
	s.flags = b[13] & 0x3F
	s.wnd = be16(b[14:16])
	s.payload = b[dataOff:]
	return s, true
}

func marshalTCP(src, dst IP4, s tcpSeg) []byte {
	b := make([]byte, TCPHeaderBytes+len(s.payload))
	put16(b[0:2], s.srcPort)
	put16(b[2:4], s.dstPort)
	put32(b[4:8], s.seq)
	put32(b[8:12], s.ack)
	b[12] = (TCPHeaderBytes / 4) << 4
	b[13] = s.flags
	put16(b[14:16], s.wnd)
	copy(b[TCPHeaderBytes:], s.payload)
	sum := pseudoHeaderSum(src, dst, ProtoTCP, len(b))
	put16(b[16:18], checksumFold(checksumPartial(sum, b)))
	return b
}

// TCP flag bits, exported for frame-building tools outside the package
// (the chaos harness's SYN-flood generator builds hostile segments with
// MarshalTCP).
const (
	TCPFlagFIN = flagFIN
	TCPFlagSYN = flagSYN
	TCPFlagRST = flagRST
	TCPFlagPSH = flagPSH
	TCPFlagACK = flagACK
)

// MarshalTCP assembles a checksummed TCP segment (no options).
func MarshalTCP(src, dst IP4, srcPort, dstPort uint16, seq, ack uint32, flags byte, wnd uint16, payload []byte) []byte {
	return marshalTCP(src, dst, tcpSeg{
		srcPort: srcPort, dstPort: dstPort,
		seq: seq, ack: ack, flags: flags, wnd: wnd, payload: payload,
	})
}

// connKey identifies a connection from the stack's point of view.
type connKey struct {
	remoteIP   IP4
	remotePort uint16
	localPort  uint16
}

// tcpShard is one demux replica: the connection and listener maps one FM
// pump reads on its own RSS shard. Connections are published only to
// their flow's home shard (RSS consistency means every segment of the
// flow arrives there); listeners fan out to all shards, since SYNs carry
// any flow identity.
type tcpShard struct {
	mu        sync.RWMutex
	conns     map[connKey]*TCPSocket
	listeners map[uint16]*TCPSocket
	_         [32]byte // keep neighbouring shard locks off one cache line
}

// tcpTimerShard is one shard's retransmission timer wheel. Deadlines
// pace in host real time; servicing happens on the shard's FM pump
// (TickTCP, work charged to the pump's virtual clock and transmitted on
// the shard's flow-affine TX lane) with a slow fallback ticker for
// stacks that have no pumps.
type tcpTimerShard struct {
	mu   sync.Mutex
	due  map[*TCPSocket]time.Time
	next atomic.Int64 // unixnano of the earliest deadline; 0 = empty
}

func (ts *tcpTimerShard) arm(c *TCPSocket, at time.Time) {
	ts.mu.Lock()
	ts.due[c] = at
	n := at.UnixNano()
	if cur := ts.next.Load(); cur == 0 || n < cur {
		ts.next.Store(n)
	}
	ts.mu.Unlock()
}

func (ts *tcpTimerShard) disarm(c *TCPSocket) {
	ts.mu.Lock()
	delete(ts.due, c)
	if len(ts.due) == 0 {
		ts.next.Store(0)
	}
	ts.mu.Unlock()
}

// expire pops every socket whose deadline has passed and recomputes the
// earliest remaining deadline.
func (ts *tcpTimerShard) expire(now time.Time) []*TCPSocket {
	if n := ts.next.Load(); n == 0 || now.UnixNano() < n {
		return nil
	}
	ts.mu.Lock()
	var fired []*TCPSocket
	var next int64
	for c, at := range ts.due {
		if !at.After(now) {
			fired = append(fired, c)
			delete(ts.due, c)
			continue
		}
		if n := at.UnixNano(); next == 0 || n < next {
			next = n
		}
	}
	ts.next.Store(next)
	ts.mu.Unlock()
	return fired
}

// tcpSecretSalt differentiates cookie secrets across stacks created in
// the same nanosecond (tests boot many worlds back to back).
var tcpSecretSalt atomic.Uint64

// tcpTable holds connections and listeners.
type tcpTable struct {
	stack   *Stack
	cookies bool

	// mu guards the authoritative maps (bind-time bookkeeping). The hot
	// path never takes it: segment demux reads the per-shard replicas.
	mu        sync.RWMutex
	conns     map[connKey]*TCPSocket
	listeners map[uint16]*TCPSocket
	ephemeral uint16
	issBase   atomic.Uint32

	demux  []tcpShard
	timers []tcpTimerShard

	cookieSecret [2]uint32

	tickStop chan struct{}
	tickDone chan struct{}
	closed   atomic.Bool
}

func newTCPTable(s *Stack, shards int, cookies bool) *tcpTable {
	if shards < 1 {
		shards = 1
	}
	t := &tcpTable{
		stack:     s,
		cookies:   cookies,
		conns:     make(map[connKey]*TCPSocket),
		listeners: make(map[uint16]*TCPSocket),
		ephemeral: 40000,
		demux:     make([]tcpShard, shards),
		timers:    make([]tcpTimerShard, shards),
		tickStop:  make(chan struct{}),
		tickDone:  make(chan struct{}),
	}
	for i := range t.demux {
		t.demux[i].conns = make(map[connKey]*TCPSocket)
		t.demux[i].listeners = make(map[uint16]*TCPSocket)
		t.timers[i].due = make(map[*TCPSocket]time.Time)
	}
	// A lightly keyed cookie secret: the simulation needs distinct,
	// unpredictable-enough keys per stack instance, not cryptography.
	seed := uint64(time.Now().UnixNano()) + uint64(tcpSecretSalt.Add(0x9e3779b97f4a7c15))
	t.cookieSecret[0] = uint32(seed) ^ 0x9e3779b9
	t.cookieSecret[1] = uint32(seed>>32) ^ 0x85ebca6b
	go t.tickLoop()
	return t
}

// homeShard returns the RSS shard a connection's inbound segments arrive
// on: the single FlowHash invariant, applied to the remote→local tuple
// exactly as the kernel's RX steering applies it.
func (t *tcpTable) homeShard(key connKey) int {
	return RXShard(key.remoteIP, t.stack.ip, key.remotePort, key.localPort, len(t.demux))
}

// publishConn installs a registered connection in its home shard's
// replica.
func (t *tcpTable) publishConn(key connKey, c *TCPSocket) {
	d := &t.demux[c.shard]
	d.mu.Lock()
	d.conns[key] = c
	d.mu.Unlock()
}

func (t *tcpTable) retractConn(key connKey, c *TCPSocket) {
	d := &t.demux[c.shard]
	d.mu.Lock()
	if d.conns[key] == c {
		delete(d.conns, key)
	}
	d.mu.Unlock()
}

// publishListener fans a listener out to every shard replica.
func (t *tcpTable) publishListener(port uint16, l *TCPSocket) {
	for i := range t.demux {
		d := &t.demux[i]
		d.mu.Lock()
		d.listeners[port] = l
		d.mu.Unlock()
	}
}

func (t *tcpTable) retractListener(port uint16, l *TCPSocket) {
	for i := range t.demux {
		d := &t.demux[i]
		d.mu.Lock()
		if d.listeners[port] == l {
			delete(d.listeners, port)
		}
		d.mu.Unlock()
	}
}

func (t *tcpTable) closeAll() {
	if t.closed.CompareAndSwap(false, true) {
		close(t.tickStop)
		<-t.tickDone
	}
	t.mu.Lock()
	var socks []*TCPSocket
	for _, c := range t.conns {
		socks = append(socks, c)
	}
	for _, l := range t.listeners {
		socks = append(socks, l)
	}
	t.mu.Unlock()
	for _, c := range socks {
		c.abort(ErrClosed)
	}
}

func (t *tcpTable) nextISS() uint32 { return t.issBase.Add(0x1000_1) * 31 }

func (t *tcpTable) register(key connKey, c *TCPSocket) error {
	t.mu.Lock()
	if _, dup := t.conns[key]; dup {
		t.mu.Unlock()
		return fmt.Errorf("%w: tcp %v", ErrPortInUse, key)
	}
	t.conns[key] = c
	t.mu.Unlock()
	c.shard = t.homeShard(key)
	t.publishConn(key, c)
	return nil
}

func (t *tcpTable) deregister(key connKey, c *TCPSocket) {
	t.mu.Lock()
	if t.conns[key] == c {
		delete(t.conns, key)
	}
	t.mu.Unlock()
	t.retractConn(key, c)
}

// refuse counts one deterministic refusal (invalid cookie, full accept
// queue, or a segment matching no endpoint).
func (t *tcpTable) refuse() {
	if c := t.stack.cfg.Counters; c != nil {
		c.TCPRefused.Add(1)
	}
}

// tickLoop is the fallback timer driver: stacks whose shards are pumped
// by FMs service their wheels from TickTCP within microseconds, so this
// ticker only matters when no pump exists (the kernel stack) or a pump
// has stalled. Fallback retransmits run on a clock minted from the
// socket's last virtual timestamp, as the pre-wheel engine did.
func (t *tcpTable) tickLoop() {
	defer close(t.tickDone)
	tick := time.NewTicker(tcpTickFallback)
	defer tick.Stop()
	for {
		select {
		case <-t.tickStop:
			return
		case <-tick.C:
			for i := range t.timers {
				t.serviceTimers(i, nil)
			}
		}
	}
}

// serviceTimers fires every due retransmission on one shard's wheel.
// With a non-nil clk (an FM pump's clock) the retransmit work is charged
// there — the same attribution discipline as the TX doorbell model — and
// the segments leave on the pump's own flow-affine lane.
func (t *tcpTable) serviceTimers(shard int, clk *vtime.Clock) {
	if shard < 0 || shard >= len(t.timers) {
		return
	}
	for _, c := range t.timers[shard].expire(time.Now()) {
		if clk != nil {
			c.onRTO(clk)
			continue
		}
		var mint vtime.Clock
		mint.Sync(c.lastVTime.Load())
		c.onRTO(&mint)
	}
}

// TickTCP services the given shard's TCP retransmission wheel on the
// caller's clock. FM pumps call it once per loop; it is a single atomic
// load when nothing is due.
func (s *Stack) TickTCP(clk *vtime.Clock, shard int) {
	if s.tcp == nil {
		return
	}
	s.tcp.serviceTimers(shard%len(s.tcp.timers), clk)
}

// TCPStats is a point-in-time summary of the TCP table, exposed so the
// SYN-flood gate can assert bounded state: a flood of spoofed SYNs must
// move CookiesSent without moving Conns.
type TCPStats struct {
	Conns, Listeners             int
	CookiesSent, CookiesAccepted uint64
	Refused                      uint64
}

// TCPStats reports the table summary (zero value when TCP is trimmed).
func (s *Stack) TCPStats() TCPStats {
	if s.tcp == nil {
		return TCPStats{}
	}
	t := s.tcp
	t.mu.RLock()
	st := TCPStats{Conns: len(t.conns), Listeners: len(t.listeners)}
	t.mu.RUnlock()
	if c := s.cfg.Counters; c != nil {
		st.CookiesSent = c.TCPCookiesSent.Load()
		st.CookiesAccepted = c.TCPCookiesAccepted.Load()
		st.Refused = c.TCPRefused.Load()
	}
	return st
}

// TCPSocket is a TCP endpoint (listener or connection).
type TCPSocket struct {
	stack *Stack
	table *tcpTable

	mu   sync.Mutex
	cond *sync.Cond

	state  tcpState
	local  Addr
	remote Addr
	key    connKey
	shard  int

	// peerMAC caches the flow's layer-2 reply address, learned from the
	// frames the connection itself receives. The enclave path never
	// inserts TCP peers into the shared ARP cache (a SYN flood would
	// grow it per-SYN) and never blocks a pump on ARP resolution.
	peerMAC [6]byte
	hasMAC  bool

	// Send side: sndBuf holds bytes [sndUna, sndUna+len); the first
	// sndNxt-sndUna of them are in flight.
	sndBuf     []byte
	sndUna     uint32
	sndNxt     uint32
	sndWnd     uint32
	finPending bool
	finSent    bool
	finSeq     uint32

	// Receive side: rcvBuf holds in-order bytes ready for the app.
	rcvBuf    []byte
	rcvNxt    uint32
	rcvClosed bool

	err     error
	backlog chan *TCPSocket // listeners only
	parent  *TCPSocket      // SYN_RCVD children (stateful listen only)

	stamp     vtime.Stamp // raised when data/EOF arrives
	lastVTime atomic.Uint64

	rtoD     time.Duration
	deadDone bool
}

func newTCPSocket(t *tcpTable) *TCPSocket {
	c := &TCPSocket{stack: t.stack, table: t, state: stateClosed, rtoD: rtoInitial}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// --- public API -----------------------------------------------------------

// TCPListen creates a listening socket on port.
func (s *Stack) TCPListen(port uint16, backlog int) (*TCPSocket, error) {
	if s.tcp == nil {
		return nil, ErrTrimmed
	}
	if backlog <= 0 {
		backlog = 16
	}
	t := s.tcp
	t.mu.Lock()
	if _, used := t.listeners[port]; used {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: tcp/%d", ErrPortInUse, port)
	}
	l := newTCPSocket(t)
	l.state = stateListen
	l.local = Addr{IP: s.ip, Port: port}
	l.backlog = make(chan *TCPSocket, backlog)
	t.listeners[port] = l
	t.mu.Unlock()
	t.publishListener(port, l)
	return l, nil
}

// TCPConnect opens a connection to dst, blocking (in real time) until the
// handshake completes.
func (s *Stack) TCPConnect(dst Addr, clk *vtime.Clock) (*TCPSocket, error) {
	if s.tcp == nil {
		return nil, ErrTrimmed
	}
	t := s.tcp
	c := newTCPSocket(t)
	c.remote = dst

	t.mu.Lock()
	var port uint16
	var key connKey
	for i := 0; i < 65536; i++ {
		t.ephemeral++
		if t.ephemeral < 40000 {
			t.ephemeral = 40000
		}
		key = connKey{dst.IP, dst.Port, t.ephemeral}
		if _, used := t.conns[key]; !used {
			port = t.ephemeral
			c.key = key
			t.conns[key] = c
			break
		}
	}
	t.mu.Unlock()
	if port == 0 {
		return nil, fmt.Errorf("%w: no ephemeral TCP ports", ErrPortInUse)
	}
	c.shard = t.homeShard(key)
	t.publishConn(key, c)
	c.local = Addr{IP: s.ip, Port: port}

	c.mu.Lock()
	iss := t.nextISS()
	c.sndUna, c.sndNxt = iss, iss+1
	c.state = stateSynSent
	c.lastVTime.Store(clk.Now())
	c.sendSegLocked(tcpSeg{flags: flagSYN, seq: iss}, clk)
	c.armRTOLocked()
	ok := c.waitLocked(func() bool {
		return c.state == stateEstablished || c.err != nil
	}, connectTimeout)
	err := c.err
	state := c.state
	c.mu.Unlock()

	if err != nil || !ok || state != stateEstablished {
		c.abort(nil)
		t.deregister(c.key, c)
		if err == nil {
			err = ErrTimeout
		}
		return nil, err
	}
	return c, nil
}

// Accept returns the next established connection on a listener.
func (l *TCPSocket) Accept(clk *vtime.Clock, block bool) (*TCPSocket, error) {
	l.mu.Lock()
	if l.state != stateListen {
		l.mu.Unlock()
		return nil, fmt.Errorf("netstack: accept on non-listener (%v)", l.state)
	}
	l.mu.Unlock()
	if !block {
		select {
		case c, ok := <-l.backlog:
			if !ok {
				return nil, ErrClosed
			}
			clk.Sync(c.stamp.Load())
			return c, nil
		default:
			return nil, ErrWouldBlock
		}
	}
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	clk.Sync(c.stamp.Load())
	return c, nil
}

// offerBacklog enqueues an established child on the listener's accept
// queue. The push is serialized with the listener's own lock so it can
// never race the close of the backlog channel in Close/abort; it
// reports false when the listener is closed or the queue is full —
// both are the deterministic-refusal outcome for the caller.
func (l *TCPSocket) offerBacklog(c *TCPSocket) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state != stateListen || l.deadDone {
		return false
	}
	select {
	case l.backlog <- c:
		return true
	default:
		return false
	}
}

// Send queues data for transmission, blocking while the send buffer is
// full, and returns when all of p is queued.
func (c *TCPSocket) Send(p []byte, clk *vtime.Clock) (int, error) {
	total := 0
	for len(p) > 0 {
		c.mu.Lock()
		ok := c.waitLocked(func() bool {
			return c.err != nil || !c.stateSendableLocked() || len(c.sndBuf) < sndBufCap
		}, rtoMax*4)
		if c.err != nil {
			err := c.err
			c.mu.Unlock()
			return total, err
		}
		if !c.stateSendableLocked() {
			c.mu.Unlock()
			return total, ErrClosed
		}
		if !ok {
			c.mu.Unlock()
			return total, ErrTimeout
		}
		room := sndBufCap - len(c.sndBuf)
		n := len(p)
		if n > room {
			n = room
		}
		c.sndBuf = append(c.sndBuf, p[:n]...)
		c.trySendLocked(clk)
		c.mu.Unlock()
		p = p[n:]
		total += n
	}
	return total, nil
}

func (c *TCPSocket) stateSendableLocked() bool {
	return c.state == stateEstablished || c.state == stateCloseWait
}

// Recv copies received bytes into p. It returns 0, nil at EOF (peer
// closed). With block=false it returns ErrWouldBlock when no data is
// buffered.
func (c *TCPSocket) Recv(p []byte, clk *vtime.Clock, block bool) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.rcvBuf) > 0 {
			break
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.rcvClosed {
			return 0, nil // EOF
		}
		if c.state == stateClosed {
			return 0, ErrClosed
		}
		if !block {
			return 0, ErrWouldBlock
		}
		c.cond.Wait()
	}
	n := copy(p, c.rcvBuf)
	before := len(c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	clk.Sync(c.stamp.Load())
	clk.Advance(c.stack.model.SocketOp + vtime.Bytes(c.stack.model.UserCopyPerByte, n))
	// Window update: if we just opened significant space, tell the peer.
	if before >= rcvBufCap/2 && len(c.rcvBuf) < rcvBufCap/2 {
		c.sendAckLocked(clk)
	}
	return n, nil
}

// Readable reports data, EOF, or a pending accept (poll support).
func (c *TCPSocket) Readable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateListen {
		return len(c.backlog) > 0
	}
	return len(c.rcvBuf) > 0 || c.rcvClosed || c.err != nil
}

// Writable reports send-buffer space on an open connection.
func (c *TCPSocket) Writable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateSendableLocked() && len(c.sndBuf) < sndBufCap
}

// WaitReadable blocks (in real time, up to d) until Readable.
func (c *TCPSocket) WaitReadable(d time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateListen {
		// Listener readability is backlog occupancy; poll it.
		c.mu.Unlock()
		deadline := time.Now().Add(d)
		for {
			if len(c.backlog) > 0 {
				c.mu.Lock()
				return true
			}
			if time.Now().After(deadline) {
				c.mu.Lock()
				return false
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	return c.waitLocked(func() bool {
		return len(c.rcvBuf) > 0 || c.rcvClosed || c.err != nil
	}, d)
}

// LocalAddr returns the bound address.
func (c *TCPSocket) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer address.
func (c *TCPSocket) RemoteAddr() Addr { return c.remote }

// State returns the connection state (for tests).
func (c *TCPSocket) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.String()
}

// Shard returns the RSS shard the connection's segments arrive on.
func (c *TCPSocket) Shard() int { return c.shard }

// Close performs an orderly close: pending data is flushed, then a FIN.
func (c *TCPSocket) Close(clk *vtime.Clock) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case stateListen:
		c.state = stateClosed
		c.table.mu.Lock()
		if c.table.listeners[c.local.Port] == c {
			delete(c.table.listeners, c.local.Port)
		}
		c.table.mu.Unlock()
		c.table.retractListener(c.local.Port, c)
		if !c.deadDone {
			c.deadDone = true
			close(c.backlog)
		}
		return nil
	case stateEstablished:
		c.state = stateFinWait1
	case stateCloseWait:
		c.state = stateLastAck
	case stateSynSent, stateSynRcvd:
		c.teardownLocked(nil)
		return nil
	default:
		return nil
	}
	c.finPending = true
	c.trySendLocked(clk)
	return nil
}

// abort hard-kills the socket (RST semantics or stack shutdown).
func (c *TCPSocket) abort(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateListen {
		c.state = stateClosed
		c.table.mu.Lock()
		if c.table.listeners[c.local.Port] == c {
			delete(c.table.listeners, c.local.Port)
		}
		c.table.mu.Unlock()
		c.table.retractListener(c.local.Port, c)
		if !c.deadDone {
			c.deadDone = true
			close(c.backlog)
		}
		return
	}
	c.teardownLocked(err)
}

// teardownLocked finalizes the socket and removes it from the table.
func (c *TCPSocket) teardownLocked(err error) {
	if c.state == stateClosed && c.deadDone {
		return
	}
	c.state = stateClosed
	c.deadDone = true
	if err != nil && c.err == nil {
		c.err = err
	}
	c.disarmRTOLocked()
	c.table.deregister(c.key, c)
	c.cond.Broadcast()
}

// --- internals ------------------------------------------------------------

// waitLocked waits on the condition variable until pred holds or the
// real-time duration elapses; it reports whether pred held.
func (c *TCPSocket) waitLocked(pred func() bool, d time.Duration) bool {
	if pred() {
		return true
	}
	timedOut := false
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		timedOut = true
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer timer.Stop()
	for {
		if pred() {
			return true
		}
		if timedOut {
			return false
		}
		c.cond.Wait()
	}
}

// noteMAC caches the flow's reply MAC from a received frame's Ethernet
// source. Cheap double-checked store: reads race only with one writer
// value per flow (the peer's stable MAC).
func (c *TCPSocket) noteMAC(ethSrc *[6]byte) {
	if ethSrc == nil {
		return
	}
	c.mu.Lock()
	if !c.hasMAC {
		c.peerMAC = *ethSrc
		c.hasMAC = true
	}
	c.mu.Unlock()
}

// sendSegLocked transmits one segment for this connection. The window
// field is filled from the current receive buffer occupancy. When the
// flow's reply MAC is cached the frame goes straight to the link —
// retransmits and data never block a pump on ARP resolution.
func (c *TCPSocket) sendSegLocked(seg tcpSeg, clk *vtime.Clock) {
	seg.srcPort = c.local.Port
	seg.dstPort = c.remote.Port
	wnd := rcvBufCap - len(c.rcvBuf)
	if wnd < 0 {
		wnd = 0
	}
	seg.wnd = uint16(wnd)
	clk.Advance(c.stack.model.KernelTCPPerSegment +
		vtime.Bytes(c.stack.model.KernelCopyPerByte, len(seg.payload)))
	c.lastVTime.Store(clk.Now())
	payload := marshalTCP(c.stack.ip, c.remote.IP, seg)
	if c.hasMAC {
		c.stack.sendIPTo(c.peerMAC, ProtoTCP, c.remote.IP, payload, clk)
		return
	}
	c.stack.sendIP(ProtoTCP, c.remote.IP, payload, clk)
}

func (c *TCPSocket) sendAckLocked(clk *vtime.Clock) {
	c.sendSegLocked(tcpSeg{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt}, clk)
}

// trySendLocked pushes as much buffered data as the peer window allows,
// and the FIN once the buffer drains.
func (c *TCPSocket) trySendLocked(clk *vtime.Clock) {
	for {
		inFlight := c.sndNxt - c.sndUna
		if c.finSent && inFlight > 0 {
			inFlight-- // the FIN occupies one sequence number beyond the data
		}
		if inFlight > uint32(len(c.sndBuf)) {
			return // stale ACK state; nothing sane to transmit
		}
		unsent := uint32(len(c.sndBuf)) - inFlight
		if unsent > 0 && inFlight < c.sndWnd {
			n := c.sndWnd - inFlight
			if n > unsent {
				n = unsent
			}
			if n > MSS {
				n = MSS
			}
			off := inFlight
			seg := tcpSeg{
				flags:   flagACK | flagPSH,
				seq:     c.sndNxt,
				ack:     c.rcvNxt,
				payload: c.sndBuf[off : off+n],
			}
			c.sndNxt += n
			c.sendSegLocked(seg, clk)
			c.armRTOLocked()
			continue
		}
		if c.finPending && !c.finSent && unsent == 0 {
			c.finSeq = c.sndNxt
			c.sndNxt++
			c.finSent = true
			c.sendSegLocked(tcpSeg{flags: flagFIN | flagACK, seq: c.finSeq, ack: c.rcvNxt}, clk)
			c.armRTOLocked()
		}
		return
	}
}

// armRTOLocked schedules the retransmission deadline on the socket's
// home-shard timer wheel.
func (c *TCPSocket) armRTOLocked() {
	c.table.timers[c.shard].arm(c, time.Now().Add(c.rtoD))
}

func (c *TCPSocket) disarmRTOLocked() {
	c.table.timers[c.shard].disarm(c)
}

// onRTO fires when an ACK is overdue; it retransmits the oldest
// unacknowledged segment on the caller's clock (the servicing FM pump's,
// on pumped stacks) and doubles the backoff.
func (c *TCPSocket) onRTO(clk *vtime.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateClosed || c.sndNxt == c.sndUna {
		return
	}
	switch {
	case c.state == stateSynSent:
		c.sendSegLocked(tcpSeg{flags: flagSYN, seq: c.sndUna}, clk)
	case c.state == stateSynRcvd:
		c.sendSegLocked(tcpSeg{flags: flagSYN | flagACK, seq: c.sndUna, ack: c.rcvNxt}, clk)
	case uint32(len(c.sndBuf)) > 0:
		n := uint32(len(c.sndBuf))
		if n > MSS {
			n = MSS
		}
		c.sendSegLocked(tcpSeg{
			flags: flagACK | flagPSH, seq: c.sndUna, ack: c.rcvNxt,
			payload: c.sndBuf[:n],
		}, clk)
	case c.finSent:
		c.sendSegLocked(tcpSeg{flags: flagFIN | flagACK, seq: c.finSeq, ack: c.rcvNxt}, clk)
	}
	c.rtoD *= 2
	if c.rtoD > rtoMax {
		c.rtoD = rtoMax
	}
	c.armRTOLocked()
}

// input parses, verifies, and demuxes one TCP segment arriving on the
// classic (copying) path. ethSrc, when non-nil, is the frame's layer-2
// source for direct replies.
func (t *tcpTable) input(h IPv4Header, payload []byte, clk *vtime.Clock, shard int, ethSrc *[6]byte) {
	seg, ok := parseTCP(payload)
	if !ok {
		return
	}
	sum := pseudoHeaderSum(h.Src, h.Dst, ProtoTCP, len(payload))
	if checksumFold(checksumPartial(sum, payload)) != 0 {
		return
	}
	t.inputSeg(h.Src, seg, clk, shard, ethSrc)
}

// inputSeg demuxes one already-verified TCP segment through the given
// shard's replica. The certify-in-place view path enters here directly
// after its single-snapshot parse and single-pass checksum.
func (t *tcpTable) inputSeg(src IP4, seg tcpSeg, clk *vtime.Clock, shard int, ethSrc *[6]byte) {
	if shard < 0 || shard >= len(t.demux) {
		shard = 0
	}
	key := connKey{src, seg.srcPort, seg.dstPort}
	d := &t.demux[shard]
	d.mu.RLock()
	c := d.conns[key]
	l := d.listeners[seg.dstPort]
	d.mu.RUnlock()

	t.stack.charge(clk, t.stack.model.KernelTCPPerSegment)

	if c != nil {
		c.noteMAC(ethSrc)
		c.segArrives(seg, clk)
		return
	}
	if l != nil && seg.flags&flagSYN != 0 && seg.flags&flagACK == 0 {
		t.handleSYN(l, key, seg, clk, ethSrc)
		return
	}
	if t.cookies && l != nil && seg.flags&flagACK != 0 && seg.flags&(flagSYN|flagRST) == 0 {
		t.acceptCookie(l, key, seg, clk, ethSrc)
		return
	}
	if seg.flags&flagRST == 0 {
		t.refuse()
		t.sendRST(src, ethSrc, seg, clk)
	}
}

// sendRST answers a segment that matches no connection.
func (t *tcpTable) sendRST(dst IP4, ethSrc *[6]byte, in tcpSeg, clk *vtime.Clock) {
	out := tcpSeg{
		srcPort: in.dstPort,
		dstPort: in.srcPort,
		flags:   flagRST | flagACK,
		ack:     in.seq + uint32(len(in.payload)),
	}
	if in.flags&flagSYN != 0 {
		out.ack++
	}
	if in.flags&flagACK != 0 {
		out.seq = in.ack
		out.flags = flagRST
	}
	t.sendSegTo(dst, ethSrc, out, clk)
}

// sendSegTo transmits one connectionless segment (SYN|ACK cookie reply,
// RST). With a frame source MAC in hand the reply goes straight back to
// the sender's port — never through ARP, so a spoofed source can neither
// stall a pump on resolution nor grow the neighbour cache.
func (t *tcpTable) sendSegTo(dst IP4, ethSrc *[6]byte, seg tcpSeg, clk *vtime.Clock) {
	pkt := marshalTCP(t.stack.ip, dst, seg)
	if ethSrc != nil {
		t.stack.sendIPTo(*ethSrc, ProtoTCP, dst, pkt, clk)
		return
	}
	t.stack.sendIP(ProtoTCP, dst, pkt, clk)
}

// handleSYN answers a listener SYN: statelessly with a SYN-cookie
// SYN|ACK on the enclave configuration, or by spawning a SYN_RCVD child
// on the stateful kernel configuration.
func (t *tcpTable) handleSYN(l *TCPSocket, key connKey, seg tcpSeg, clk *vtime.Clock, ethSrc *[6]byte) {
	if t.cookies {
		iss := t.cookieISS(key)
		out := tcpSeg{
			srcPort: key.localPort,
			dstPort: key.remotePort,
			flags:   flagSYN | flagACK,
			seq:     iss,
			ack:     seg.seq + 1,
			wnd:     rcvBufCap,
		}
		if c := t.stack.cfg.Counters; c != nil {
			c.TCPCookiesSent.Add(1)
		}
		t.sendSegTo(key.remoteIP, ethSrc, out, clk)
		return
	}
	c := newTCPSocket(t)
	c.parent = l
	c.key = key
	c.local = Addr{IP: t.stack.ip, Port: seg.dstPort}
	c.remote = Addr{IP: key.remoteIP, Port: seg.srcPort}
	c.rcvNxt = seg.seq + 1
	iss := t.nextISS()
	c.sndUna, c.sndNxt = iss, iss+1
	c.sndWnd = uint32(seg.wnd)
	c.state = stateSynRcvd
	if err := t.register(key, c); err != nil {
		return // stale duplicate SYN
	}
	c.noteMAC(ethSrc)
	c.mu.Lock()
	c.sendSegLocked(tcpSeg{flags: flagSYN | flagACK, seq: iss, ack: c.rcvNxt}, clk)
	c.armRTOLocked()
	c.mu.Unlock()
}

// segArrives is the per-connection segment processor.
func (c *TCPSocket) segArrives(seg tcpSeg, clk *vtime.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if seg.flags&flagRST != 0 {
		if c.state == stateSynSent && seg.ack != c.sndNxt {
			return // blind RST with wrong ack
		}
		err := ErrReset
		if c.state == stateSynSent {
			err = ErrRefused
		}
		c.teardownLocked(err)
		return
	}

	// Handshake progress.
	switch c.state {
	case stateSynSent:
		if seg.flags&(flagSYN|flagACK) == flagSYN|flagACK && seg.ack == c.sndNxt {
			c.rcvNxt = seg.seq + 1
			c.sndUna = seg.ack
			c.sndWnd = uint32(seg.wnd)
			c.state = stateEstablished
			c.rtoD = rtoInitial
			c.disarmRTOLocked()
			c.sendAckLocked(clk)
			c.cond.Broadcast()
		}
		return
	case stateSynRcvd:
		if seg.flags&flagACK != 0 && seg.ack == c.sndNxt {
			c.sndUna = seg.ack
			c.sndWnd = uint32(seg.wnd)
			c.state = stateEstablished
			c.rtoD = rtoInitial
			c.disarmRTOLocked()
			c.stamp.Raise(clk.Now())
			if c.parent != nil && !c.parent.offerBacklog(c) {
				// Backlog overflow or listener gone: drop the connection.
				c.table.refuse()
				c.teardownLocked(ErrRefused)
				return
			}
			// Fall through: the ACK may carry data.
		} else {
			return
		}
	case stateClosed, stateListen:
		return
	}

	// ACK processing.
	if seg.flags&flagACK != 0 {
		acked := seg.ack - c.sndUna
		inFlight := c.sndNxt - c.sndUna
		if acked > 0 && acked <= inFlight {
			dataAcked := acked
			if c.finSent && seg.ack == c.sndNxt {
				dataAcked-- // the FIN consumed one sequence number
			}
			if dataAcked > uint32(len(c.sndBuf)) {
				dataAcked = uint32(len(c.sndBuf))
			}
			c.sndBuf = c.sndBuf[dataAcked:]
			c.sndUna = seg.ack
			c.rtoD = rtoInitial
			if c.sndUna == c.sndNxt {
				c.disarmRTOLocked()
			} else {
				c.armRTOLocked()
			}
			c.cond.Broadcast()
			// Our FIN is acknowledged?
			if c.finSent && seg.ack == c.sndNxt {
				switch c.state {
				case stateFinWait1:
					c.state = stateFinWait2
				case stateClosing:
					c.enterTimeWaitLocked()
				case stateLastAck:
					c.teardownLocked(nil)
					return
				}
			}
		}
		c.sndWnd = uint32(seg.wnd)
	}

	// Data processing.
	data := seg.payload
	seq := seg.seq
	if len(data) > 0 {
		// Trim a retransmitted prefix we already have.
		if diff := c.rcvNxt - seq; diff > 0 && diff <= uint32(len(data)) {
			data = data[diff:]
			seq += diff
		}
		if seq == c.rcvNxt && len(data) > 0 && !c.rcvClosed {
			room := rcvBufCap - len(c.rcvBuf)
			if room > 0 {
				if len(data) > room {
					data = data[:room] // excess is dropped; peer retransmits
				}
				c.rcvBuf = append(c.rcvBuf, data...)
				c.rcvNxt += uint32(len(data))
				c.stamp.Raise(clk.Now())
				c.cond.Broadcast()
			}
		}
		// Every data-bearing segment is acknowledged — in-sequence,
		// out-of-order, and one trimmed to nothing (a full duplicate)
		// alike. Swallowing a full duplicate silently livelocks loss
		// recovery: when the ACK of a delivered segment is lost, the
		// peer retransmits that same segment forever and the bytes
		// queued behind it never unstick.
		c.sendAckLocked(clk)
	}

	// FIN processing.
	if seg.flags&flagFIN != 0 && seq+uint32(len(data)) == c.rcvNxt || seg.flags&flagFIN != 0 && seg.seq == c.rcvNxt {
		if !c.rcvClosed {
			c.rcvNxt++
			c.rcvClosed = true
			c.stamp.Raise(clk.Now())
			c.sendAckLocked(clk)
			c.cond.Broadcast()
			switch c.state {
			case stateEstablished:
				c.state = stateCloseWait
			case stateFinWait1:
				c.state = stateClosing
			case stateFinWait2:
				c.enterTimeWaitLocked()
			}
		} else {
			c.sendAckLocked(clk) // retransmitted FIN
		}
	}

	// Window may have opened: push more data.
	if c.stateSendableLocked() || c.state == stateFinWait1 || c.state == stateLastAck {
		c.trySendLocked(clk)
	}
}

// enterTimeWaitLocked models TIME_WAIT as immediate reclamation: the
// simulated network cannot deliver old duplicates out of order.
func (c *TCPSocket) enterTimeWaitLocked() {
	c.state = stateTimeWait
	c.teardownLocked(nil)
	c.state = stateTimeWait // teardown sets Closed; report TIME_WAIT
}
