package netstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/vtime"
)

// TCP constants. The implementation is deliberately compact but real:
// three-way handshake, sequence/ack bookkeeping, flow-control windows,
// retransmission as a safety net, and orderly close. Congestion control
// is omitted — the simulated wire is lossless and single-hop, so flow
// control alone governs throughput, which is what the Redis experiment
// exercises. Only the full (kernel) stack configuration enables TCP; the
// enclave build excludes it by design (§7 "TCP Stack Considerations").
const (
	TCPHeaderBytes = 20
	// MSS is the maximum segment payload (1500 MTU - 20 IP - 20 TCP).
	MSS = 1460
	// rcvBufCap is the receive buffer and maximum advertised window.
	rcvBufCap = 65535
	// sndBufCap is the send buffer capacity.
	sndBufCap = 256 * 1024
	// rtoInitial is the real-time retransmission timeout. The wire is
	// lossless, so this fires only when a queue overflowed.
	rtoInitial = 200 * time.Millisecond
	rtoMax     = 2 * time.Second
	// connectTimeout bounds the real-time handshake wait.
	connectTimeout = 5 * time.Second
)

// TCP flags.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagPSH = 1 << 3
	flagACK = 1 << 4
)

// tcpState is the connection state machine.
type tcpState int

const (
	stateClosed tcpState = iota
	stateListen
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateClosing
	stateLastAck
	stateTimeWait
)

var stateNames = map[tcpState]string{
	stateClosed: "CLOSED", stateListen: "LISTEN", stateSynSent: "SYN_SENT",
	stateSynRcvd: "SYN_RCVD", stateEstablished: "ESTABLISHED",
	stateFinWait1: "FIN_WAIT_1", stateFinWait2: "FIN_WAIT_2",
	stateCloseWait: "CLOSE_WAIT", stateClosing: "CLOSING",
	stateLastAck: "LAST_ACK", stateTimeWait: "TIME_WAIT",
}

func (s tcpState) String() string { return stateNames[s] }

// ErrReset reports a connection reset by the peer.
var ErrReset = errors.New("netstack: connection reset by peer")

type tcpSeg struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	flags            byte
	wnd              uint16
	payload          []byte
}

func parseTCP(b []byte) (tcpSeg, bool) {
	var s tcpSeg
	if len(b) < TCPHeaderBytes {
		return s, false
	}
	s.srcPort = be16(b[0:2])
	s.dstPort = be16(b[2:4])
	s.seq = be32(b[4:8])
	s.ack = be32(b[8:12])
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderBytes || dataOff > len(b) {
		return s, false
	}
	s.flags = b[13] & 0x3F
	s.wnd = be16(b[14:16])
	s.payload = b[dataOff:]
	return s, true
}

func marshalTCP(src, dst IP4, s tcpSeg) []byte {
	b := make([]byte, TCPHeaderBytes+len(s.payload))
	put16(b[0:2], s.srcPort)
	put16(b[2:4], s.dstPort)
	put32(b[4:8], s.seq)
	put32(b[8:12], s.ack)
	b[12] = (TCPHeaderBytes / 4) << 4
	b[13] = s.flags
	put16(b[14:16], s.wnd)
	copy(b[TCPHeaderBytes:], s.payload)
	sum := pseudoHeaderSum(src, dst, ProtoTCP, len(b))
	put16(b[16:18], checksumFold(checksumPartial(sum, b)))
	return b
}

// connKey identifies a connection from the stack's point of view.
type connKey struct {
	remoteIP   IP4
	remotePort uint16
	localPort  uint16
}

// tcpTable holds connections and listeners.
type tcpTable struct {
	stack     *Stack
	mu        sync.RWMutex
	conns     map[connKey]*TCPSocket
	listeners map[uint16]*TCPSocket
	ephemeral uint16
	issBase   atomic.Uint32
}

func newTCPTable(s *Stack) *tcpTable {
	return &tcpTable{
		stack:     s,
		conns:     make(map[connKey]*TCPSocket),
		listeners: make(map[uint16]*TCPSocket),
		ephemeral: 40000,
	}
}

func (t *tcpTable) closeAll() {
	t.mu.Lock()
	var socks []*TCPSocket
	for _, c := range t.conns {
		socks = append(socks, c)
	}
	for _, l := range t.listeners {
		socks = append(socks, l)
	}
	t.mu.Unlock()
	for _, c := range socks {
		c.abort(ErrClosed)
	}
}

func (t *tcpTable) nextISS() uint32 { return t.issBase.Add(0x1000_1) * 31 }

func (t *tcpTable) register(key connKey, c *TCPSocket) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.conns[key]; dup {
		return fmt.Errorf("%w: tcp %v", ErrPortInUse, key)
	}
	t.conns[key] = c
	return nil
}

func (t *tcpTable) deregister(key connKey) {
	t.mu.Lock()
	if t.conns[key] != nil {
		delete(t.conns, key)
	}
	t.mu.Unlock()
}

// TCPSocket is a TCP endpoint (listener or connection).
type TCPSocket struct {
	stack *Stack
	table *tcpTable

	mu   sync.Mutex
	cond *sync.Cond

	state  tcpState
	local  Addr
	remote Addr
	key    connKey

	// Send side: sndBuf holds bytes [sndUna, sndUna+len); the first
	// sndNxt-sndUna of them are in flight.
	sndBuf     []byte
	sndUna     uint32
	sndNxt     uint32
	sndWnd     uint32
	finPending bool
	finSent    bool
	finSeq     uint32

	// Receive side: rcvBuf holds in-order bytes ready for the app.
	rcvBuf    []byte
	rcvNxt    uint32
	rcvClosed bool

	err     error
	backlog chan *TCPSocket // listeners only
	parent  *TCPSocket      // SYN_RCVD children

	stamp     vtime.Stamp // raised when data/EOF arrives
	lastVTime atomic.Uint64

	rto      *time.Timer
	rtoD     time.Duration
	deadDone bool
}

func newTCPSocket(t *tcpTable) *TCPSocket {
	c := &TCPSocket{stack: t.stack, table: t, state: stateClosed, rtoD: rtoInitial}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// --- public API -----------------------------------------------------------

// TCPListen creates a listening socket on port.
func (s *Stack) TCPListen(port uint16, backlog int) (*TCPSocket, error) {
	if s.tcp == nil {
		return nil, ErrTrimmed
	}
	if backlog <= 0 {
		backlog = 16
	}
	t := s.tcp
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, used := t.listeners[port]; used {
		return nil, fmt.Errorf("%w: tcp/%d", ErrPortInUse, port)
	}
	l := newTCPSocket(t)
	l.state = stateListen
	l.local = Addr{IP: s.ip, Port: port}
	l.backlog = make(chan *TCPSocket, backlog)
	t.listeners[port] = l
	return l, nil
}

// TCPConnect opens a connection to dst, blocking (in real time) until the
// handshake completes.
func (s *Stack) TCPConnect(dst Addr, clk *vtime.Clock) (*TCPSocket, error) {
	if s.tcp == nil {
		return nil, ErrTrimmed
	}
	t := s.tcp
	c := newTCPSocket(t)
	c.remote = dst

	t.mu.Lock()
	var port uint16
	for i := 0; i < 65536; i++ {
		t.ephemeral++
		if t.ephemeral < 40000 {
			t.ephemeral = 40000
		}
		key := connKey{dst.IP, dst.Port, t.ephemeral}
		if _, used := t.conns[key]; !used {
			port = t.ephemeral
			c.key = key
			t.conns[key] = c
			break
		}
	}
	t.mu.Unlock()
	if port == 0 {
		return nil, fmt.Errorf("%w: no ephemeral TCP ports", ErrPortInUse)
	}
	c.local = Addr{IP: s.ip, Port: port}

	c.mu.Lock()
	iss := t.nextISS()
	c.sndUna, c.sndNxt = iss, iss+1
	c.state = stateSynSent
	c.lastVTime.Store(clk.Now())
	c.sendSegLocked(tcpSeg{flags: flagSYN, seq: iss}, clk)
	c.armRTOLocked()
	ok := c.waitLocked(func() bool {
		return c.state == stateEstablished || c.err != nil
	}, connectTimeout)
	err := c.err
	state := c.state
	c.mu.Unlock()

	if err != nil || !ok || state != stateEstablished {
		c.abort(nil)
		t.deregister(c.key)
		if err == nil {
			err = ErrTimeout
		}
		return nil, err
	}
	return c, nil
}

// Accept returns the next established connection on a listener.
func (l *TCPSocket) Accept(clk *vtime.Clock, block bool) (*TCPSocket, error) {
	l.mu.Lock()
	if l.state != stateListen {
		l.mu.Unlock()
		return nil, fmt.Errorf("netstack: accept on non-listener (%v)", l.state)
	}
	l.mu.Unlock()
	if !block {
		select {
		case c, ok := <-l.backlog:
			if !ok {
				return nil, ErrClosed
			}
			clk.Sync(c.stamp.Load())
			return c, nil
		default:
			return nil, ErrWouldBlock
		}
	}
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	clk.Sync(c.stamp.Load())
	return c, nil
}

// Send queues data for transmission, blocking while the send buffer is
// full, and returns when all of p is queued.
func (c *TCPSocket) Send(p []byte, clk *vtime.Clock) (int, error) {
	total := 0
	for len(p) > 0 {
		c.mu.Lock()
		ok := c.waitLocked(func() bool {
			return c.err != nil || !c.stateSendableLocked() || len(c.sndBuf) < sndBufCap
		}, rtoMax*4)
		if c.err != nil {
			err := c.err
			c.mu.Unlock()
			return total, err
		}
		if !c.stateSendableLocked() {
			c.mu.Unlock()
			return total, ErrClosed
		}
		if !ok {
			c.mu.Unlock()
			return total, ErrTimeout
		}
		room := sndBufCap - len(c.sndBuf)
		n := len(p)
		if n > room {
			n = room
		}
		c.sndBuf = append(c.sndBuf, p[:n]...)
		c.trySendLocked(clk)
		c.mu.Unlock()
		p = p[n:]
		total += n
	}
	return total, nil
}

func (c *TCPSocket) stateSendableLocked() bool {
	return c.state == stateEstablished || c.state == stateCloseWait
}

// Recv copies received bytes into p. It returns 0, nil at EOF (peer
// closed). With block=false it returns ErrWouldBlock when no data is
// buffered.
func (c *TCPSocket) Recv(p []byte, clk *vtime.Clock, block bool) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.rcvBuf) > 0 {
			break
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.rcvClosed {
			return 0, nil // EOF
		}
		if c.state == stateClosed {
			return 0, ErrClosed
		}
		if !block {
			return 0, ErrWouldBlock
		}
		c.cond.Wait()
	}
	n := copy(p, c.rcvBuf)
	before := len(c.rcvBuf)
	c.rcvBuf = c.rcvBuf[n:]
	clk.Sync(c.stamp.Load())
	clk.Advance(c.stack.model.SocketOp + vtime.Bytes(c.stack.model.UserCopyPerByte, n))
	// Window update: if we just opened significant space, tell the peer.
	if before >= rcvBufCap/2 && len(c.rcvBuf) < rcvBufCap/2 {
		c.sendAckLocked(clk)
	}
	return n, nil
}

// Readable reports data, EOF, or a pending accept (poll support).
func (c *TCPSocket) Readable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateListen {
		return len(c.backlog) > 0
	}
	return len(c.rcvBuf) > 0 || c.rcvClosed || c.err != nil
}

// Writable reports send-buffer space on an open connection.
func (c *TCPSocket) Writable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateSendableLocked() && len(c.sndBuf) < sndBufCap
}

// WaitReadable blocks (in real time, up to d) until Readable.
func (c *TCPSocket) WaitReadable(d time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateListen {
		// Listener readability is backlog occupancy; poll it.
		c.mu.Unlock()
		deadline := time.Now().Add(d)
		for {
			if len(c.backlog) > 0 {
				c.mu.Lock()
				return true
			}
			if time.Now().After(deadline) {
				c.mu.Lock()
				return false
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	return c.waitLocked(func() bool {
		return len(c.rcvBuf) > 0 || c.rcvClosed || c.err != nil
	}, d)
}

// LocalAddr returns the bound address.
func (c *TCPSocket) LocalAddr() Addr { return c.local }

// RemoteAddr returns the peer address.
func (c *TCPSocket) RemoteAddr() Addr { return c.remote }

// State returns the connection state (for tests).
func (c *TCPSocket) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.String()
}

// Close performs an orderly close: pending data is flushed, then a FIN.
func (c *TCPSocket) Close(clk *vtime.Clock) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case stateListen:
		c.state = stateClosed
		c.table.mu.Lock()
		delete(c.table.listeners, c.local.Port)
		c.table.mu.Unlock()
		close(c.backlog)
		return nil
	case stateEstablished:
		c.state = stateFinWait1
	case stateCloseWait:
		c.state = stateLastAck
	case stateSynSent, stateSynRcvd:
		c.teardownLocked(nil)
		return nil
	default:
		return nil
	}
	c.finPending = true
	c.trySendLocked(clk)
	return nil
}

// abort hard-kills the socket (RST semantics or stack shutdown).
func (c *TCPSocket) abort(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateListen {
		c.state = stateClosed
		c.table.mu.Lock()
		delete(c.table.listeners, c.local.Port)
		c.table.mu.Unlock()
		if !c.deadDone {
			c.deadDone = true
			close(c.backlog)
		}
		return
	}
	c.teardownLocked(err)
}

// teardownLocked finalizes the socket and removes it from the table.
func (c *TCPSocket) teardownLocked(err error) {
	if c.state == stateClosed && c.deadDone {
		return
	}
	c.state = stateClosed
	c.deadDone = true
	if err != nil && c.err == nil {
		c.err = err
	}
	if c.rto != nil {
		c.rto.Stop()
	}
	c.table.deregister(c.key)
	c.cond.Broadcast()
}

// --- internals ------------------------------------------------------------

// waitLocked waits on the condition variable until pred holds or the
// real-time duration elapses; it reports whether pred held.
func (c *TCPSocket) waitLocked(pred func() bool, d time.Duration) bool {
	if pred() {
		return true
	}
	timedOut := false
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		timedOut = true
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer timer.Stop()
	for {
		if pred() {
			return true
		}
		if timedOut {
			return false
		}
		c.cond.Wait()
	}
}

// sendSegLocked transmits one segment for this connection. The window
// field is filled from the current receive buffer occupancy.
func (c *TCPSocket) sendSegLocked(seg tcpSeg, clk *vtime.Clock) {
	seg.srcPort = c.local.Port
	seg.dstPort = c.remote.Port
	wnd := rcvBufCap - len(c.rcvBuf)
	if wnd < 0 {
		wnd = 0
	}
	seg.wnd = uint16(wnd)
	clk.Advance(c.stack.model.KernelTCPPerSegment +
		vtime.Bytes(c.stack.model.KernelCopyPerByte, len(seg.payload)))
	c.lastVTime.Store(clk.Now())
	payload := marshalTCP(c.stack.ip, c.remote.IP, seg)
	c.stack.sendIP(ProtoTCP, c.remote.IP, payload, clk)
}

func (c *TCPSocket) sendAckLocked(clk *vtime.Clock) {
	c.sendSegLocked(tcpSeg{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt}, clk)
}

// trySendLocked pushes as much buffered data as the peer window allows,
// and the FIN once the buffer drains.
func (c *TCPSocket) trySendLocked(clk *vtime.Clock) {
	for {
		inFlight := c.sndNxt - c.sndUna
		if c.finSent && inFlight > 0 {
			inFlight-- // the FIN occupies one sequence number beyond the data
		}
		if inFlight > uint32(len(c.sndBuf)) {
			return // stale ACK state; nothing sane to transmit
		}
		unsent := uint32(len(c.sndBuf)) - inFlight
		if unsent > 0 && inFlight < c.sndWnd {
			n := c.sndWnd - inFlight
			if n > unsent {
				n = unsent
			}
			if n > MSS {
				n = MSS
			}
			off := inFlight
			seg := tcpSeg{
				flags:   flagACK | flagPSH,
				seq:     c.sndNxt,
				ack:     c.rcvNxt,
				payload: c.sndBuf[off : off+n],
			}
			c.sndNxt += n
			c.sendSegLocked(seg, clk)
			c.armRTOLocked()
			continue
		}
		if c.finPending && !c.finSent && unsent == 0 {
			c.finSeq = c.sndNxt
			c.sndNxt++
			c.finSent = true
			c.sendSegLocked(tcpSeg{flags: flagFIN | flagACK, seq: c.finSeq, ack: c.rcvNxt}, clk)
			c.armRTOLocked()
		}
		return
	}
}

// armRTOLocked schedules the retransmission safety net.
func (c *TCPSocket) armRTOLocked() {
	if c.rto == nil {
		c.rto = time.AfterFunc(c.rtoD, c.onRTO)
		return
	}
	c.rto.Reset(c.rtoD)
}

// onRTO fires in real time when an ACK is overdue; it retransmits the
// oldest unacknowledged segment. On the lossless wire this only happens
// after a queue-overflow drop.
func (c *TCPSocket) onRTO() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateClosed || c.sndNxt == c.sndUna {
		return
	}
	var clk vtime.Clock
	clk.Sync(c.lastVTime.Load())
	switch {
	case c.state == stateSynSent:
		c.sendSegLocked(tcpSeg{flags: flagSYN, seq: c.sndUna}, &clk)
	case c.state == stateSynRcvd:
		c.sendSegLocked(tcpSeg{flags: flagSYN | flagACK, seq: c.sndUna, ack: c.rcvNxt}, &clk)
	case uint32(len(c.sndBuf)) > 0:
		n := uint32(len(c.sndBuf))
		if n > MSS {
			n = MSS
		}
		c.sendSegLocked(tcpSeg{
			flags: flagACK | flagPSH, seq: c.sndUna, ack: c.rcvNxt,
			payload: c.sndBuf[:n],
		}, &clk)
	case c.finSent:
		c.sendSegLocked(tcpSeg{flags: flagFIN | flagACK, seq: c.finSeq, ack: c.rcvNxt}, &clk)
	}
	c.rtoD *= 2
	if c.rtoD > rtoMax {
		c.rtoD = rtoMax
	}
	c.armRTOLocked()
}

// input demuxes one TCP segment.
func (t *tcpTable) input(h IPv4Header, payload []byte, clk *vtime.Clock) {
	seg, ok := parseTCP(payload)
	if !ok {
		return
	}
	sum := pseudoHeaderSum(h.Src, h.Dst, ProtoTCP, len(payload))
	if checksumFold(checksumPartial(sum, payload)) != 0 {
		return
	}
	key := connKey{h.Src, seg.srcPort, seg.dstPort}
	t.mu.RLock()
	c := t.conns[key]
	l := t.listeners[seg.dstPort]
	t.mu.RUnlock()

	t.stack.charge(clk, t.stack.model.KernelTCPPerSegment)

	if c != nil {
		c.segArrives(seg, clk)
		return
	}
	if l != nil && seg.flags&flagSYN != 0 && seg.flags&flagACK == 0 {
		t.handleSYN(l, key, h, seg, clk)
		return
	}
	if seg.flags&flagRST == 0 {
		t.sendRST(h.Src, seg, clk)
	}
}

// sendRST answers a segment that matches no connection.
func (t *tcpTable) sendRST(dst IP4, in tcpSeg, clk *vtime.Clock) {
	out := tcpSeg{
		srcPort: in.dstPort,
		dstPort: in.srcPort,
		flags:   flagRST | flagACK,
		ack:     in.seq + uint32(len(in.payload)),
	}
	if in.flags&flagSYN != 0 {
		out.ack++
	}
	if in.flags&flagACK != 0 {
		out.seq = in.ack
		out.flags = flagRST
	}
	pkt := marshalTCP(t.stack.ip, dst, out)
	t.stack.sendIP(ProtoTCP, dst, pkt, clk)
}

// handleSYN spawns a SYN_RCVD child for a listener.
func (t *tcpTable) handleSYN(l *TCPSocket, key connKey, h IPv4Header, seg tcpSeg, clk *vtime.Clock) {
	c := newTCPSocket(t)
	c.parent = l
	c.key = key
	c.local = Addr{IP: t.stack.ip, Port: seg.dstPort}
	c.remote = Addr{IP: h.Src, Port: seg.srcPort}
	c.rcvNxt = seg.seq + 1
	iss := t.nextISS()
	c.sndUna, c.sndNxt = iss, iss+1
	c.sndWnd = uint32(seg.wnd)
	c.state = stateSynRcvd
	if err := t.register(key, c); err != nil {
		return // stale duplicate SYN
	}
	c.mu.Lock()
	c.sendSegLocked(tcpSeg{flags: flagSYN | flagACK, seq: iss, ack: c.rcvNxt}, clk)
	c.armRTOLocked()
	c.mu.Unlock()
}

// segArrives is the per-connection segment processor.
func (c *TCPSocket) segArrives(seg tcpSeg, clk *vtime.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if seg.flags&flagRST != 0 {
		if c.state == stateSynSent && seg.ack != c.sndNxt {
			return // blind RST with wrong ack
		}
		err := ErrReset
		if c.state == stateSynSent {
			err = ErrRefused
		}
		c.teardownLocked(err)
		return
	}

	// Handshake progress.
	switch c.state {
	case stateSynSent:
		if seg.flags&(flagSYN|flagACK) == flagSYN|flagACK && seg.ack == c.sndNxt {
			c.rcvNxt = seg.seq + 1
			c.sndUna = seg.ack
			c.sndWnd = uint32(seg.wnd)
			c.state = stateEstablished
			c.rtoD = rtoInitial
			if c.rto != nil {
				c.rto.Stop()
			}
			c.sendAckLocked(clk)
			c.cond.Broadcast()
		}
		return
	case stateSynRcvd:
		if seg.flags&flagACK != 0 && seg.ack == c.sndNxt {
			c.sndUna = seg.ack
			c.sndWnd = uint32(seg.wnd)
			c.state = stateEstablished
			c.rtoD = rtoInitial
			if c.rto != nil {
				c.rto.Stop()
			}
			c.stamp.Raise(clk.Now())
			if c.parent != nil {
				select {
				case c.parent.backlog <- c:
				default:
					// Backlog overflow: drop the connection.
					c.teardownLocked(ErrRefused)
					return
				}
			}
			// Fall through: the ACK may carry data.
		} else {
			return
		}
	case stateClosed, stateListen:
		return
	}

	// ACK processing.
	if seg.flags&flagACK != 0 {
		acked := seg.ack - c.sndUna
		inFlight := c.sndNxt - c.sndUna
		if acked > 0 && acked <= inFlight {
			dataAcked := acked
			if c.finSent && seg.ack == c.sndNxt {
				dataAcked-- // the FIN consumed one sequence number
			}
			if dataAcked > uint32(len(c.sndBuf)) {
				dataAcked = uint32(len(c.sndBuf))
			}
			c.sndBuf = c.sndBuf[dataAcked:]
			c.sndUna = seg.ack
			c.rtoD = rtoInitial
			if c.sndUna == c.sndNxt && c.rto != nil {
				c.rto.Stop()
			} else {
				c.armRTOLocked()
			}
			c.cond.Broadcast()
			// Our FIN is acknowledged?
			if c.finSent && seg.ack == c.sndNxt {
				switch c.state {
				case stateFinWait1:
					c.state = stateFinWait2
				case stateClosing:
					c.enterTimeWaitLocked()
				case stateLastAck:
					c.teardownLocked(nil)
					return
				}
			}
		}
		c.sndWnd = uint32(seg.wnd)
	}

	// Data processing.
	data := seg.payload
	seq := seg.seq
	if len(data) > 0 {
		// Trim a retransmitted prefix we already have.
		if diff := c.rcvNxt - seq; diff > 0 && diff <= uint32(len(data)) {
			data = data[diff:]
			seq += diff
		}
		if seq == c.rcvNxt && len(data) > 0 && !c.rcvClosed {
			room := rcvBufCap - len(c.rcvBuf)
			if room > 0 {
				if len(data) > room {
					data = data[:room] // excess is dropped; peer retransmits
				}
				c.rcvBuf = append(c.rcvBuf, data...)
				c.rcvNxt += uint32(len(data))
				c.stamp.Raise(clk.Now())
				c.cond.Broadcast()
			}
			c.sendAckLocked(clk)
		} else if len(data) > 0 {
			// Out-of-order or duplicate: dup-ACK so the peer resyncs.
			c.sendAckLocked(clk)
		}
	}

	// FIN processing.
	if seg.flags&flagFIN != 0 && seq+uint32(len(data)) == c.rcvNxt || seg.flags&flagFIN != 0 && seg.seq == c.rcvNxt {
		if !c.rcvClosed {
			c.rcvNxt++
			c.rcvClosed = true
			c.stamp.Raise(clk.Now())
			c.sendAckLocked(clk)
			c.cond.Broadcast()
			switch c.state {
			case stateEstablished:
				c.state = stateCloseWait
			case stateFinWait1:
				c.state = stateClosing
			case stateFinWait2:
				c.enterTimeWaitLocked()
			}
		} else {
			c.sendAckLocked(clk) // retransmitted FIN
		}
	}

	// Window may have opened: push more data.
	if c.stateSendableLocked() || c.state == stateFinWait1 || c.state == stateLastAck {
		c.trySendLocked(clk)
	}
}

// enterTimeWaitLocked models TIME_WAIT as immediate reclamation: the
// simulated network cannot deliver old duplicates out of order.
func (c *TCPSocket) enterTimeWaitLocked() {
	c.state = stateTimeWait
	c.teardownLocked(nil)
	c.state = stateTimeWait // teardown sets Closed; report TIME_WAIT
}
