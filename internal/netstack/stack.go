package netstack

import (
	"fmt"
	"sync/atomic"
	"time"

	"rakis/internal/vtime"
)

// Config configures a Stack instance.
type Config struct {
	// Name identifies the stack in diagnostics ("kernel", "enclave").
	Name string
	// Dev is the layer-2 output.
	Dev LinkDevice
	// IP is the interface address.
	IP IP4
	// Model supplies cost constants; nil uses vtime.Default.
	Model *vtime.Model
	// Counters receives statistics; it may be nil.
	Counters *vtime.Counters
	// EnableTCP compiles in the TCP layer. The kernel configuration has
	// always carried it; the trimmed enclave build (which the paper kept
	// UDP-only, proxying TCP through io_uring per §4.2/§7) can now opt in
	// to run TCP on the zero-exit XSK path.
	EnableTCP bool
	// TCPCookies selects the stateless SYN-cookie listen path: no
	// per-SYN state is allocated until the cookie round-trips, so a
	// spoofed-SYN flood cannot grow enclave memory. The kernel stack
	// keeps the classic stateful handshake (false).
	TCPCookies bool
	// EnableICMP compiles in ICMP echo/unreachable handling.
	EnableICMP bool
	// PerPacketCost is the processing cost charged per packet (the
	// kernel-stack hop for the full build, the trimmed-stack hop for the
	// enclave build). Zero selects the model's KernelNetPerPacket.
	PerPacketCost uint64
	// GlobalLock routes all packet costs through one serialization
	// resource, reproducing the original LWIP global-lock contention the
	// paper removed (ablation; §4.2 implementation note).
	GlobalLock bool
	// Shards partitions the UDP demux tables and per-socket receive
	// queues per RSS queue: InputShard(i) traffic only ever touches
	// shard i's demux replica and shard i's queue of each socket, so N
	// pump threads share no hot-path lock. Shard selection must agree
	// with the RSS steering hash (FlowHash) — the stack trusts the
	// caller's shard index. Zero or one selects the classic single-shard
	// layout (the kernel stack stays there).
	Shards int
	// StaticARP seeds the neighbour cache (the RAKIS deployment config
	// carries the peer MAC).
	StaticARP map[IP4][6]byte
}

// Stack is one network-stack instance.
type Stack struct {
	cfg   Config
	model *vtime.Model
	dev   LinkDevice
	ip    IP4
	arp   *arpTable
	reasm *reassembler

	udp    *udpTable
	tcp    *tcpTable
	splice spliceTable

	globalRes *vtime.Resource
	ipID      atomic.Uint32
	closed    atomic.Bool
}

// New creates a stack bound to cfg.Dev.
func New(cfg Config) (*Stack, error) {
	if cfg.Dev == nil {
		return nil, fmt.Errorf("netstack: nil device")
	}
	if cfg.Model == nil {
		cfg.Model = vtime.Default()
	}
	if cfg.PerPacketCost == 0 {
		cfg.PerPacketCost = cfg.Model.KernelNetPerPacket
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	s := &Stack{
		cfg:   cfg,
		model: cfg.Model,
		dev:   cfg.Dev,
		ip:    cfg.IP,
		arp:   newARPTable(cfg.StaticARP),
		reasm: newReassembler(),
		udp:   newUDPTable(cfg.Shards),
	}
	if cfg.EnableTCP {
		s.tcp = newTCPTable(s, cfg.Shards, cfg.TCPCookies)
	}
	if cfg.GlobalLock {
		s.globalRes = &vtime.Resource{}
	}
	return s, nil
}

// IP returns the interface address.
func (s *Stack) IP() IP4 { return s.ip }

// Shards returns the demux shard count.
func (s *Stack) Shards() int { return len(s.udp.demux) }

// Model returns the stack's cost model.
func (s *Stack) Model() *vtime.Model { return s.model }

// Close shuts the stack down: all sockets error out.
func (s *Stack) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.udp.closeAll()
	if s.tcp != nil {
		s.tcp.closeAll()
	}
}

// charge applies the per-packet processing cost to clk, serializing
// through the global lock resource when the ablation flag is on.
func (s *Stack) charge(clk *vtime.Clock, cost uint64) {
	if s.globalRes != nil {
		clk.SyncAs(s.globalRes.Use(clk.Now(), cost), vtime.CompStack)
		return
	}
	clk.Charge(vtime.CompStack, cost)
}

// Input feeds one received Ethernet frame into the stack on shard 0. It
// runs on the caller's (softirq or FM) virtual clock and never retains
// frame.
func (s *Stack) Input(frame []byte, clk *vtime.Clock) {
	s.InputShard(frame, clk, 0)
}

// InputShard feeds one received Ethernet frame into the stack through
// the given demux shard. The caller (an FM pump bound to one XSK queue)
// guarantees the frame was RSS-steered to that queue, so every lock the
// demux takes belongs to this shard alone.
func (s *Stack) InputShard(frame []byte, clk *vtime.Clock, shard int) {
	if s.closed.Load() {
		return
	}
	s.charge(clk, s.cfg.PerPacketCost)
	eth, payload, err := ParseEth(frame)
	if err != nil {
		return
	}
	switch eth.Type {
	case EtherTypeARP:
		s.inputARP(payload, clk)
	case EtherTypeIPv4:
		s.inputIPv4(eth, payload, clk, shard)
	}
}

func (s *Stack) inputARP(payload []byte, clk *vtime.Clock) {
	p, ok := parseARP(payload)
	if !ok {
		return
	}
	switch p.op {
	case arpOpRequest:
		// Learn the asker and answer if they want us.
		s.arp.learn(p.spa, p.sha)
		if p.tpa == s.ip {
			reply := arpPacket{
				op:  arpOpReply,
				sha: s.dev.MAC(), spa: s.ip,
				tha: p.sha, tpa: p.spa,
			}
			s.sendFrame(p.sha, EtherTypeARP, marshalARP(reply), clk)
		}
	case arpOpReply:
		s.arp.learn(p.spa, p.sha)
	}
}

func (s *Stack) inputIPv4(eth EthHeader, pkt []byte, clk *vtime.Clock, shard int) {
	h, payload, err := ParseIPv4(pkt)
	if err != nil {
		return
	}
	if h.Dst != s.ip && h.Dst != (IP4{255, 255, 255, 255}) {
		return // not for us; the simulated hosts never forward
	}
	// Learn the sender's MAC so replies never stall on ARP resolution in
	// softirq context (the single-segment network makes this safe).
	s.arp.learn(h.Src, eth.Src)
	if h.MF || h.FragOff != 0 {
		payload = s.reasm.add(h, payload)
		if payload == nil {
			return
		}
	}
	if s.cfg.Counters != nil {
		s.cfg.Counters.PacketsRx.Add(1)
		s.cfg.Counters.BytesRx.Add(uint64(len(payload)))
	}
	switch h.Proto {
	case ProtoUDP:
		s.inputUDP(h, payload, pkt, clk, shard)
	case ProtoTCP:
		if s.tcp != nil {
			s.tcp.input(h, payload, clk, shard, &eth.Src)
		}
	case ProtoICMP:
		if s.cfg.EnableICMP {
			s.handleICMP(h, payload, clk)
		}
	}
}

// sendFrame transmits one layer-2 frame.
func (s *Stack) sendFrame(dst [6]byte, etherType uint16, payload []byte, clk *vtime.Clock) (uint64, error) {
	frame := MarshalEth(EthHeader{Dst: dst, Src: s.dev.MAC(), Type: etherType}, payload)
	return s.dev.SendFrame(frame, clk)
}

// resolve finds the MAC for dst, emitting ARP requests as needed.
func (s *Stack) resolve(dst IP4, clk *vtime.Clock) ([6]byte, error) {
	if mac, ok := s.arp.lookup(dst); ok {
		return mac, nil
	}
	req := arpPacket{op: arpOpRequest, sha: s.dev.MAC(), spa: s.ip, tpa: dst}
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := s.sendFrame(Broadcast, EtherTypeARP, marshalARP(req), clk); err != nil {
			return [6]byte{}, err
		}
		if mac, ok := s.arp.waitFor(dst, time.Now().Add(200*time.Millisecond)); ok {
			return mac, nil
		}
	}
	return [6]byte{}, fmt.Errorf("%w: %v", ErrNoRoute, dst)
}

// sendIP encapsulates an L4 payload and transmits it, fragmenting to the
// MTU when necessary. It returns the virtual time of the last fragment's
// serialization.
func (s *Stack) sendIP(proto byte, dst IP4, payload []byte, clk *vtime.Clock) (uint64, error) {
	mac, err := s.resolve(dst, clk)
	if err != nil {
		return clk.Now(), err
	}
	h := IPv4Header{
		ID:    uint16(s.ipID.Add(1)),
		TTL:   64,
		Proto: proto,
		Src:   s.ip,
		Dst:   dst,
	}
	end := clk.Now()
	for _, pkt := range fragmentIPv4(h, payload, s.dev.MTU()) {
		end, err = s.sendFrame(mac, EtherTypeIPv4, pkt, clk)
		if err != nil {
			return end, err
		}
	}
	if s.cfg.Counters != nil {
		s.cfg.Counters.PacketsTx.Add(1)
	}
	return end, nil
}

// sendIPTo is sendIP with the layer-2 destination already in hand: no
// ARP lookup, no resolution stall, no neighbour-cache insertion. The
// enclave TCP path uses it for every reply whose MAC came off the
// triggering frame (SYN-cookie SYN|ACKs, RSTs to spoofed sources) and
// for established flows with a cached peer MAC, so hostile traffic can
// neither block an FM pump on resolution nor grow shared ARP state.
func (s *Stack) sendIPTo(mac [6]byte, proto byte, dst IP4, payload []byte, clk *vtime.Clock) (uint64, error) {
	h := IPv4Header{
		ID:    uint16(s.ipID.Add(1)),
		TTL:   64,
		Proto: proto,
		Src:   s.ip,
		Dst:   dst,
	}
	end := clk.Now()
	var err error
	for _, pkt := range fragmentIPv4(h, payload, s.dev.MTU()) {
		end, err = s.sendFrame(mac, EtherTypeIPv4, pkt, clk)
		if err != nil {
			return end, err
		}
	}
	if s.cfg.Counters != nil {
		s.cfg.Counters.PacketsTx.Add(1)
	}
	return end, nil
}

// sendIPBatch encapsulates several same-destination L4 payloads and
// transmits them as one run. When the link device supports batched
// output the MAC is resolved once, every fragment of every payload is
// framed up front, and the whole run is handed to the device in a single
// call; otherwise it degrades to per-payload sendIP. It returns the
// number of payloads transmitted and reports an error only when the
// first payload failed.
func (s *Stack) sendIPBatch(proto byte, dst IP4, payloads [][]byte, clk *vtime.Clock) (int, error) {
	bdev, batched := s.dev.(BatchLinkDevice)
	if !batched || len(payloads) <= 1 {
		for i, p := range payloads {
			if _, err := s.sendIP(proto, dst, p, clk); err != nil {
				if i == 0 {
					return 0, err
				}
				return i, nil
			}
		}
		return len(payloads), nil
	}
	mac, err := s.resolve(dst, clk)
	if err != nil {
		return 0, err
	}
	src := s.dev.MAC()
	frames := make([][]byte, 0, len(payloads))
	for _, payload := range payloads {
		h := IPv4Header{
			ID:    uint16(s.ipID.Add(1)),
			TTL:   64,
			Proto: proto,
			Src:   s.ip,
			Dst:   dst,
		}
		for _, pkt := range fragmentIPv4(h, payload, s.dev.MTU()) {
			frames = append(frames, MarshalEth(EthHeader{Dst: mac, Src: src, Type: EtherTypeIPv4}, pkt))
		}
	}
	if _, err := bdev.SendFrames(frames, clk); err != nil {
		return 0, err
	}
	if s.cfg.Counters != nil {
		s.cfg.Counters.PacketsTx.Add(uint64(len(payloads)))
	}
	return len(payloads), nil
}
