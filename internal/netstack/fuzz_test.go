package netstack

// Fuzz targets reproducing the paper's §5.2 campaign: the UDP/IP stack is
// the enclave component that parses host-controlled bytes, so it must
// survive arbitrary incoming frames without panicking or corrupting
// state. The harness mirrors the paper's AFL++ binary: it initializes the
// stack, feeds frames from the fuzzer, and — to broaden the reachable
// state space — emulates user actions (bound sockets that echo what they
// receive). cmd/rakis-fuzz wraps the same corpus-driven entry point for
// stdin-driven runs.

import (
	"testing"

	"rakis/internal/vtime"
)

// sinkDevice is a LinkDevice that swallows output frames: the fuzzed
// stack's replies go nowhere.
type sinkDevice struct{ mac [6]byte }

func (d sinkDevice) SendFrame(data []byte, clk *vtime.Clock) (uint64, error) { return clk.Now(), nil }
func (d sinkDevice) MAC() [6]byte                                            { return d.mac }
func (d sinkDevice) MTU() int                                                { return 1500 }

// FuzzTarget builds the fuzzing stack in its trimmed (enclave)
// configuration, with a bound socket to make the UDP demux reachable, and
// feeds it one hostile frame. Exported for cmd/rakis-fuzz.
func fuzzStack(trimmed bool) (*Stack, *UDPSocket) {
	cfg := Config{
		Name: "fuzz",
		Dev:  sinkDevice{mac: [6]byte{2, 0, 0, 0, 0, 9}},
		IP:   IP4{10, 0, 0, 9},
	}
	if !trimmed {
		cfg.EnableTCP = true
		cfg.EnableICMP = true
	}
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	sock, err := s.UDPBind(4242)
	if err != nil {
		panic(err)
	}
	if !trimmed {
		if _, err := s.TCPListen(4243, 4); err != nil {
			panic(err)
		}
	}
	return s, sock
}

// FuzzInject drives one frame through a stack and emulates the user side
// (echoing any datagram that arrived), as the paper's harness does to
// reach deeper states. Exported for cmd/rakis-fuzz via the go:linkname-free
// route of simply being reimplemented there; kept here as the canonical
// form.
func fuzzInject(s *Stack, sock *UDPSocket, data []byte) {
	var clk vtime.Clock
	s.Input(data, &clk)
	for {
		d, err := sock.RecvFrom(&clk, false)
		if err != nil {
			break
		}
		sock.SendTo(d.Payload, d.Src, &clk)
	}
}

func FuzzStackInput(f *testing.F) {
	// Seed with well-formed frames of every protocol the stack parses.
	self := IP4{10, 0, 0, 9}
	peer := IP4{10, 0, 0, 1}
	mac := [6]byte{2, 0, 0, 0, 0, 9}
	peerMAC := [6]byte{2, 0, 0, 0, 0, 1}

	udp := make([]byte, UDPHeaderBytes+8)
	put16(udp[0:2], 1111)
	put16(udp[2:4], 4242)
	put16(udp[4:6], uint16(len(udp)))
	copy(udp[UDPHeaderBytes:], "fuzzseed")
	f.Add(MarshalEth(EthHeader{Dst: mac, Src: peerMAC, Type: EtherTypeIPv4},
		MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoUDP, Src: peer, Dst: self}, udp)))

	f.Add(MarshalEth(EthHeader{Dst: Broadcast, Src: peerMAC, Type: EtherTypeARP},
		marshalARP(arpPacket{op: arpOpRequest, sha: peerMAC, spa: peer, tpa: self})))

	syn := marshalTCP(peer, self, tcpSeg{srcPort: 5555, dstPort: 4243, seq: 100, flags: flagSYN, wnd: 65535})
	f.Add(MarshalEth(EthHeader{Dst: mac, Src: peerMAC, Type: EtherTypeIPv4},
		MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoTCP, Src: peer, Dst: self}, syn)))

	icmp := marshalICMP(icmpEchoRequest, 0, []byte{0, 1, 0, 1, 'x'})
	f.Add(MarshalEth(EthHeader{Dst: mac, Src: peerMAC, Type: EtherTypeIPv4},
		MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoICMP, Src: peer, Dst: self}, icmp)))

	// A fragment, to reach the reassembler.
	frag := MarshalIPv4(IPv4Header{TTL: 64, Proto: ProtoUDP, MF: true, ID: 77, Src: peer, Dst: self}, make([]byte, 16))
	f.Add(MarshalEth(EthHeader{Dst: mac, Src: peerMAC, Type: EtherTypeIPv4}, frag))

	// Fresh stacks per run would be slow; hostile input must not corrupt
	// a long-lived stack either, which is the stronger property.
	trimmedStack, trimmedSock := fuzzStack(true)
	fullStack, fullSock := fuzzStack(false)

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzInject(trimmedStack, trimmedSock, data)
		fuzzInject(fullStack, fullSock, data)
	})
}

// FuzzSegArrives aims the fuzzer directly at the TCP state machine with a
// pre-established connection, bypassing checksums so mutations explore
// state transitions rather than dying in validation.
func FuzzSegArrives(f *testing.F) {
	f.Add(uint32(1), uint32(1), byte(flagACK), uint16(1024), []byte("data"))
	f.Add(uint32(0), uint32(0), byte(flagSYN|flagACK), uint16(0), []byte{})
	f.Add(uint32(5), uint32(2), byte(flagFIN|flagACK), uint16(65535), []byte{1})
	f.Add(uint32(9), uint32(9), byte(flagRST), uint16(9), []byte{})

	f.Fuzz(func(t *testing.T, seq, ack uint32, flags byte, wnd uint16, payload []byte) {
		s, _ := fuzzStack(false)
		c := newTCPSocket(s.tcp)
		c.state = stateEstablished
		c.local = Addr{s.ip, 4244}
		c.remote = Addr{IP4{10, 0, 0, 1}, 5555}
		c.rcvNxt = 1
		c.sndUna, c.sndNxt = 1, 1
		c.sndWnd = 65535
		var clk vtime.Clock
		c.segArrives(tcpSeg{
			srcPort: 5555, dstPort: 4244,
			seq: seq, ack: ack, flags: flags & 0x3F, wnd: wnd,
			payload: payload,
		}, &clk)
		// Invariants: buffers within caps, indices coherent.
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(c.rcvBuf) > rcvBufCap {
			t.Fatalf("rcvBuf grew to %d", len(c.rcvBuf))
		}
		inFlight := c.sndNxt - c.sndUna
		if c.finSent && inFlight > 0 {
			inFlight--
		}
		if inFlight > uint32(len(c.sndBuf))+1 {
			t.Fatalf("sndNxt-sndUna=%d exceeds sndBuf %d", inFlight, len(c.sndBuf))
		}
	})
}
