package iouring

import (
	"testing"

	"rakis/internal/vtime"
)

// Adversarial CQE table: a hostile kernel controls the completion ring
// bytes entirely, so it can duplicate, forge, and reorder completions at
// will. Table 2's discipline requires the FM to refuse everything it
// cannot match to an outstanding request — counting the refusal — while
// still routing every genuine completion to its requester.

// advCQE is one hostile posting: a genuine submission's token
// (subIdx >= 0) or a forged userData (subIdx < 0).
type advCQE struct {
	subIdx   int
	userData uint64
	res      int32
}

func TestAdversarialCQETable(t *testing.T) {
	cases := []struct {
		name     string
		submits  int      // OpRead Len=100 submissions, in order
		cqes     []advCQE // kernel postings, in order
		wantRes  map[int]int32
		wantViol uint64
	}{
		{
			// The same userData posted twice: the first is genuine, the
			// second must be refused — its token was consumed.
			name:     "duplicate userData",
			submits:  1,
			cqes:     []advCQE{{subIdx: 0, res: 7}, {subIdx: 0, res: 99}},
			wantRes:  map[int]int32{0: 7},
			wantViol: 1,
		},
		{
			// A completion for a request that was never submitted must
			// not shadow the genuine one behind it.
			name:    "never-submitted token",
			submits: 1,
			cqes: []advCQE{
				{subIdx: -1, userData: 1<<48 | 5, res: 3},
				{subIdx: 0, res: 7},
			},
			wantRes:  map[int]int32{0: 7},
			wantViol: 1,
		},
		{
			// Token zero is never issued (tokens start at 1); posting it
			// probes the uninitialised-entry edge.
			name:     "zero token",
			submits:  1,
			cqes:     []advCQE{{subIdx: -1, userData: 0, res: 0}, {subIdx: 0, res: 4}},
			wantRes:  map[int]int32{0: 4},
			wantViol: 1,
		},
		{
			// Completions may legally arrive in any order; each must
			// reach its own requester with its own result.
			name:    "reordered completions",
			submits: 3,
			cqes: []advCQE{
				{subIdx: 2, res: 30},
				{subIdx: 0, res: 10},
				{subIdx: 1, res: 20},
			},
			wantRes:  map[int]int32{0: 10, 1: 20, 2: 30},
			wantViol: 0,
		},
		{
			// Forgeries interleaved with reordered genuine answers plus a
			// replay of an already-consumed token: only the two genuine
			// first-arrivals may land.
			name:    "forgery storm",
			submits: 2,
			cqes: []advCQE{
				{subIdx: -1, userData: 1<<48 | 1, res: 1},
				{subIdx: 1, res: 21},
				{subIdx: -1, userData: ^uint64(0), res: -1},
				{subIdx: 0, res: 11},
				{subIdx: 1, res: 99}, // replayed after consumption
			},
			wantRes:  map[int]int32{0: 11, 1: 21},
			wantViol: 3,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fm, kSub, kCompl, _, ctrs := pair(t, 16)
			var clk vtime.Clock
			tokens := make([]uint64, c.submits)
			for i := range tokens {
				tok, err := fm.Submit(SQE{Op: OpRead, FD: 1, Len: 100}, &clk)
				if err != nil {
					t.Fatal(err)
				}
				tokens[i] = tok
			}
			if avail, _ := kSub.Available(); avail != uint32(c.submits) {
				t.Fatalf("kernel sees %d SQEs, want %d", avail, c.submits)
			}
			kSub.Release(uint32(c.submits))
			for _, q := range c.cqes {
				ud := q.userData
				if q.subIdx >= 0 {
					ud = tokens[q.subIdx]
				}
				cslot, err := kCompl.SlotBytes(0)
				if err != nil {
					t.Fatal(err)
				}
				PutCQE(cslot, CQE{UserData: ud, Res: q.res})
				kCompl.Submit(1, 0)
			}
			fm.Drain(&clk)
			for idx, want := range c.wantRes {
				res, err := fm.Wait(tokens[idx], &clk)
				if err != nil || res != want {
					t.Errorf("submission %d: res = %d, %v; want %d", idx, res, err, want)
				}
			}
			if got := ctrs.CQEViolations.Load(); got != c.wantViol {
				t.Errorf("CQEViolations = %d, want %d", got, c.wantViol)
			}
			if fm.Outstanding() != 0 {
				t.Errorf("outstanding = %d after all completions", fm.Outstanding())
			}
		})
	}
}
