package iouring

import (
	"errors"
	"testing"
	"testing/quick"

	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/vtime"
)

func TestSQERoundTrip(t *testing.T) {
	f := func(op uint8, flags uint8, fd int32, off, addr, userData uint64, length, opFlags uint32) bool {
		e := SQE{
			Op: Op(op), Flags: flags, FD: fd, Off: off,
			Addr: mem.Addr(addr), Len: length, OpFlags: opFlags, UserData: userData,
		}
		b := make([]byte, SQEBytes)
		PutSQE(b, e)
		return GetSQE(b) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCQERoundTrip(t *testing.T) {
	f := func(userData uint64, res int32, flags uint32) bool {
		e := CQE{UserData: userData, Res: res, Flags: flags}
		b := make([]byte, CQEBytes)
		PutCQE(b, e)
		return GetCQE(b) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpStrings(t *testing.T) {
	if OpRead.String() != "read" || OpPollRemove.String() != "poll_remove" {
		t.Fatal("op names")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op must render")
	}
}

// pair builds the FM handle plus raw kernel-side handles over shared
// memory.
func pair(t *testing.T, entries uint32) (*Ring, *ring.Ring, *ring.Ring, *mem.Space, *vtime.Counters) {
	t.Helper()
	sp := mem.NewSpace(1<<16, 1<<20)
	subB, _ := sp.Alloc(mem.Untrusted, ring.TotalBytes(entries, SQEBytes), 64)
	complB, _ := sp.Alloc(mem.Untrusted, ring.TotalBytes(entries, CQEBytes), 64)
	ctrs := &vtime.Counters{}
	fmRing, err := Attach(Config{
		Space: sp, Setup: Setup{FD: 3, SubBase: subB, ComplBase: complB},
		Entries: entries, Counters: ctrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	kSub, err := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: subB,
		Size: entries, EntrySize: SQEBytes, Side: ring.Consumer})
	if err != nil {
		t.Fatal(err)
	}
	kCompl, err := ring.New(ring.Config{Space: sp, Access: mem.RoleHost, Base: complB,
		Size: entries, EntrySize: CQEBytes, Side: ring.Producer})
	if err != nil {
		t.Fatal(err)
	}
	return fmRing, kSub, kCompl, sp, ctrs
}

// kernelAnswer consumes one SQE and completes it with res.
func kernelAnswer(t *testing.T, kSub, kCompl *ring.Ring, res int32) {
	t.Helper()
	avail, _ := kSub.Available()
	if avail == 0 {
		t.Fatal("no SQE to answer")
	}
	slot, _ := kSub.SlotBytes(0)
	sqe := GetSQE(slot)
	kSub.Release(1)
	cslot, _ := kCompl.SlotBytes(0)
	PutCQE(cslot, CQE{UserData: sqe.UserData, Res: res})
	kCompl.Submit(1, 0)
}

func TestSubmitWaitRoundTrip(t *testing.T) {
	fm, kSub, kCompl, _, _ := pair(t, 8)
	var clk vtime.Clock
	tok, err := fm.Submit(SQE{Op: OpNop}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Outstanding() != 1 {
		t.Fatal("outstanding")
	}
	kernelAnswer(t, kSub, kCompl, 0)
	res, err := fm.Wait(tok, &clk)
	if err != nil || res != 0 {
		t.Fatalf("res = %d, %v", res, err)
	}
	if fm.Outstanding() != 0 {
		t.Fatal("outstanding after completion")
	}
}

func TestTryWaitNonblocking(t *testing.T) {
	fm, kSub, kCompl, _, _ := pair(t, 8)
	var clk vtime.Clock
	tok, _ := fm.Submit(SQE{Op: OpRead, FD: 1, Len: 100}, &clk)
	if _, done, err := fm.TryWait(tok, &clk); done || err != nil {
		t.Fatalf("in-flight TryWait done=%v err=%v", done, err)
	}
	kernelAnswer(t, kSub, kCompl, 42)
	res, done, err := fm.TryWait(tok, &clk)
	if !done || err != nil || res != 42 {
		t.Fatalf("TryWait = %d/%v/%v", res, done, err)
	}
	// Unknown token is an error, reported done.
	if _, done, err := fm.TryWait(999, &clk); !done || err == nil {
		t.Fatal("unknown token must error")
	}
}

func TestImplausibleResultIsEPERM(t *testing.T) {
	fm, kSub, kCompl, _, ctrs := pair(t, 8)
	var clk vtime.Clock
	tok, _ := fm.Submit(SQE{Op: OpRecv, FD: 1, Len: 64}, &clk)
	kernelAnswer(t, kSub, kCompl, 65) // one more byte than requested
	if _, err := fm.Wait(tok, &clk); !errors.Is(err, EPERM) {
		t.Fatalf("err = %v, want EPERM", err)
	}
	if ctrs.CQEViolations.Load() != 1 {
		t.Fatal("violation not counted")
	}
}

func TestForeignCompletionDiscarded(t *testing.T) {
	fm, kSub, kCompl, _, ctrs := pair(t, 8)
	var clk vtime.Clock
	tok, _ := fm.Submit(SQE{Op: OpNop}, &clk)
	// Hostile kernel first forges an unrelated CQE, then answers.
	cslot, _ := kCompl.SlotBytes(0)
	PutCQE(cslot, CQE{UserData: 0xDEAD, Res: 7})
	kCompl.Submit(1, 0)
	kernelAnswer(t, kSub, kCompl, 0)
	res, err := fm.Wait(tok, &clk)
	if err != nil || res != 0 {
		t.Fatalf("legit completion lost: %d, %v", res, err)
	}
	if ctrs.CQEViolations.Load() != 1 {
		t.Fatalf("foreign CQE violations = %d, want 1", ctrs.CQEViolations.Load())
	}
}

func TestForgetSilencesCompletion(t *testing.T) {
	fm, kSub, kCompl, _, ctrs := pair(t, 8)
	var clk vtime.Clock
	tok, _ := fm.Submit(SQE{Op: OpPollAdd, FD: 1, OpFlags: PollIn}, &clk)
	fm.Forget(tok)
	if fm.Outstanding() != 0 {
		t.Fatal("forgotten token still outstanding")
	}
	// Its completion arrives later and is silently dropped — no
	// violation counted (it is not hostile).
	kernelAnswer(t, kSub, kCompl, int32(PollIn))
	fm.Drain(&clk)
	if ctrs.CQEViolations.Load() != 0 {
		t.Fatal("abandoned completion must not count as a violation")
	}
}

func TestSubmissionRingFull(t *testing.T) {
	fm, _, _, _, _ := pair(t, 4)
	var clk vtime.Clock
	for i := 0; i < 4; i++ {
		if _, err := fm.Submit(SQE{Op: OpNop}, &clk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fm.Submit(SQE{Op: OpNop}, &clk); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestAttachValidation(t *testing.T) {
	sp := mem.NewSpace(1<<16, 1<<20)
	subB, _ := sp.Alloc(mem.Untrusted, ring.TotalBytes(8, SQEBytes), 64)
	complB, _ := sp.Alloc(mem.Untrusted, ring.TotalBytes(8, CQEBytes), 64)
	trB, _ := sp.Alloc(mem.Trusted, ring.TotalBytes(8, CQEBytes), 64)

	if _, err := Attach(Config{Space: sp, Setup: Setup{FD: -1, SubBase: subB, ComplBase: complB}, Entries: 8}); !errors.Is(err, ErrSetup) {
		t.Fatal("negative fd")
	}
	if _, err := Attach(Config{Space: sp, Setup: Setup{FD: 3, SubBase: trB, ComplBase: complB}, Entries: 8}); !errors.Is(err, ErrSetup) {
		t.Fatal("trusted iSub")
	}
	if _, err := Attach(Config{Space: sp, Setup: Setup{FD: 3, SubBase: subB, ComplBase: subB}, Entries: 8}); !errors.Is(err, ErrSetup) {
		t.Fatal("overlapping rings")
	}
}

func TestResPlausibilityMatrix(t *testing.T) {
	cases := []struct {
		op   Op
		l    uint32
		res  int32
		want bool
	}{
		{OpRead, 100, 100, true},
		{OpRead, 100, 101, false},
		{OpRead, 100, 0, true},
		{OpRead, 100, -9, true},       // EBADF is plausible
		{OpRead, 100, -100000, false}, // not an errno
		{OpWrite, 10, 5, true},
		{OpSend, 10, 11, false},
		{OpRecv, 0, 1, false},
		{OpPollAdd, 0, int32(PollIn), true},
		{OpPollAdd, 0, int32(PollOut), false}, // not requested
		{OpPollAdd, 0, 0x18, true},            // ERR|HUP always allowed
		{OpNop, 0, 0, true},
		{OpNop, 0, 1, false},
		{OpFsync, 0, 0, true},
		{OpPollRemove, 0, 0, true},
		{OpPollRemove, 0, 3, false},
		{Op(99), 0, 1, false},
	}
	for _, c := range cases {
		got := resPlausible(SQE{Op: c.op, Len: c.l, OpFlags: uint32(PollIn)}, c.res)
		if got != c.want {
			t.Errorf("op=%v len=%d res=%d: got %v want %v", c.op, c.l, c.res, got, c.want)
		}
	}
}
