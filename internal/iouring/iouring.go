// Package iouring implements the FastPath Module side of an io_uring
// instance (§4.1, "Enabling the io_uring primitive") plus the SQE/CQE
// wire encoding shared with the simulated kernel.
//
// Two RAKIS-certified rings connect the enclave to the kernel (Table 1):
// iSub (FM produces submission entries) and iCompl (FM consumes
// completion entries). RAKIS uses io_uring for five syscalls — send and
// recv on TCP sockets, read, write, and poll — expressed through eight
// operations; it deliberately avoids liburing (§5: liburing trusts
// host-provided pointers, enabling enclave-memory exfiltration).
//
// Completion validation (Table 2, "IO operations status codes"): every
// CQE must carry the user-data token of an outstanding request, and its
// result must be plausible for the operation (e.g. a read may not claim
// more bytes than were requested). Implausible completions are refused
// and surfaced as -EPERM to the caller.
//
//rakis:role enclave
package iouring

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"rakis/internal/mem"
	"rakis/internal/ring"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
)

// Entry sizes.
const (
	SQEBytes = 64
	CQEBytes = 16
)

// Op is an io_uring operation code. RAKIS uses exactly these eight.
type Op uint8

const (
	OpNop Op = iota
	OpRead
	OpWrite
	OpSend
	OpRecv
	OpPollAdd
	OpPollRemove
	OpFsync
	opMax
)

var opNames = [...]string{"nop", "read", "write", "send", "recv", "poll_add", "poll_remove", "fsync"}

// String returns the operation mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Poll event masks for OpPollAdd.
const (
	PollIn  uint32 = 1 << 0
	PollOut uint32 = 1 << 2
)

// SQE is a submission-queue entry.
type SQE struct {
	Op       Op
	Flags    uint8
	FD       int32
	Off      uint64
	Addr     mem.Addr // untrusted buffer address (bounce buffer)
	Len      uint32
	OpFlags  uint32
	UserData uint64
}

// PutSQE encodes an SQE into a 64-byte slot. It is a pure encoder: the
// buffer address in e must have been validated by the caller (see
// Ring.Submit) before the entry is exposed to the host.
//
//rakis:boundary-ok pure encoder; Submit validates the buffer placement
func PutSQE(b []byte, e SQE) {
	_ = b[SQEBytes-1]
	for i := range b[:SQEBytes] {
		b[i] = 0
	}
	b[0] = byte(e.Op)
	b[1] = e.Flags
	le32(b[4:8], uint32(e.FD))
	le64(b[8:16], e.Off)
	le64(b[16:24], uint64(e.Addr))
	le32(b[24:28], e.Len)
	le32(b[28:32], e.OpFlags)
	le64(b[32:40], e.UserData)
}

// GetSQE decodes an SQE from a 64-byte slot. Slots live in shared
// memory, so every decoded field is host-controlled.
//
//rakis:untrusted
func GetSQE(b []byte) SQE {
	_ = b[SQEBytes-1]
	return SQE{
		Op:       Op(b[0]),
		Flags:    b[1],
		FD:       int32(ld32(b[4:8])),
		Off:      ld64(b[8:16]),
		Addr:     mem.Addr(ld64(b[16:24])),
		Len:      ld32(b[24:28]),
		OpFlags:  ld32(b[28:32]),
		UserData: ld64(b[32:40]),
	}
}

// CQE is a completion-queue entry.
type CQE struct {
	UserData uint64
	Res      int32
	Flags    uint32
}

// PutCQE encodes a CQE into a 16-byte slot.
func PutCQE(b []byte, e CQE) {
	_ = b[CQEBytes-1]
	le64(b[0:8], e.UserData)
	le32(b[8:12], uint32(e.Res))
	le32(b[12:16], e.Flags)
}

// GetCQE decodes a CQE from a 16-byte slot. Slots live in shared
// memory, so every decoded field is host-controlled until it passes the
// Table 2 completion validation in Drain.
//
//rakis:untrusted
func GetCQE(b []byte) CQE {
	_ = b[CQEBytes-1]
	return CQE{UserData: ld64(b[0:8]), Res: int32(ld32(b[8:12])), Flags: ld32(b[12:16])}
}

// SnapSQE decodes an SQE from a frozen 64-byte slot snapshot. The
// fields cannot change after decoding (single fetch), but every one of
// them is still producer-chosen and must be validated like any other
// cross-boundary input.
//
//rakis:untrusted
//rakis:snapshot
func SnapSQE(s mem.Snap) SQE { return GetSQE(s) }

// SnapCQE decodes a CQE from a frozen 16-byte slot snapshot: the
// UserData the outstanding-request lookup matches and the Res the
// plausibility check certifies are the same bytes the result map then
// stores, no matter what the host does to the live slot in between.
//
//rakis:untrusted
//rakis:snapshot
func SnapCQE(s mem.Snap) CQE { return GetCQE(s) }

func le32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func le64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
func ld32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func ld64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Setup is what the untrusted initialization hands the enclave.
type Setup struct {
	FD        int
	SubBase   mem.Addr
	ComplBase mem.Addr
}

// Config is the FM's trusted configuration for one io_uring.
type Config struct {
	Space    *mem.Space
	Setup    Setup
	Entries  uint32 // trusted ring size
	Counters *vtime.Counters
	Model    *vtime.Model
	// WaitTimeout bounds how long Wait spins for one completion before
	// giving up with ErrTimeout (availability failure; the host controls
	// liveness, never integrity). Zero selects the default.
	WaitTimeout time.Duration
	// Waker is the escalation path for stalled completions; the zero
	// value disables escalation.
	Waker Waker
}

// DefaultWaitTimeout is the completion-wait bound when the configuration
// does not specify one.
const DefaultWaitTimeout = 10 * time.Second

// Waker is how a Ring escalates when submitted work is provably sitting
// unconsumed in iSub and no completion arrives (§4.3: the Monitor Module
// is availability-critical but untrusted; losing its wakeups must cost
// throughput, not correctness).
//
// The ladder has two rungs: Nudge rings a shared-memory doorbell asking
// the MM to re-issue wakeup syscalls — exit-free, so a spurious nudge is
// harmless. Kick issues io_uring_enter directly from the enclave thread —
// a paid enclave exit, used only when nudging has not helped or the MM is
// known dead.
type Waker struct {
	// Nudge requests an immediate forced MM sweep. May be nil.
	Nudge func()
	// Kick issues the wakeup syscall directly (one enclave exit). May be
	// nil.
	Kick func()
	// Dead reports whether the MM has terminated, in which case Wait
	// skips the nudge rung entirely. May be nil.
	Dead func() bool
}

// Errors returned by the FM.
var (
	// ErrSetup reports failed initialization validation.
	ErrSetup = errors.New("iouring: untrusted setup rejected")
	// ErrFull reports a full submission ring.
	ErrFull = errors.New("iouring: submission ring full")
	// EPERM is surfaced when a completion fails validation (Table 2
	// fail action: return -EPERM).
	EPERM = errors.New("iouring: completion refused (-EPERM)")
	// ErrTimeout reports a completion that never arrived (availability
	// failure; the host controls liveness, never integrity).
	ErrTimeout = errors.New("iouring: completion wait timed out")
	// ErrBufferPlacement reports an SQE whose buffer range touches
	// enclave memory. Handing such a pointer to the host would let the
	// kernel-side copy exfiltrate or corrupt trusted memory — the
	// liburing flaw of §5 in the opposite direction.
	ErrBufferPlacement = errors.New("iouring: SQE buffer must not reference enclave memory")
)

// Ring is the FM's trusted handle on one io_uring instance. Each user
// thread owns its own Ring (§4.1: per-thread FMs avoid contention), so
// methods need no internal locking.
type Ring struct {
	Sub   *ring.Ring
	Compl *ring.Ring

	fd          int
	space       *mem.Space
	model       *vtime.Model
	counters    *vtime.Counters
	trace       *telemetry.Buf
	waitTimeout time.Duration
	waker       Waker

	// wedged is set after a Wait exhausts the full timeout: the kernel
	// side is presumed dead (a killed SQ worker never recovers), so
	// later Waits fail fast instead of paying the full timeout per
	// operation. A completion that does arrive clears it.
	wedged bool

	nextToken   uint64
	outstanding map[uint64]SQE // trusted copies of submitted requests
	results     map[uint64]result
	dropSet     map[uint64]bool // abandoned tokens awaiting disposal
}

// result is a validated completion parked until its requester asks.
type result struct {
	res   int32
	eperm bool
}

// Attach validates the untrusted setup and constructs the trusted handle.
func Attach(cfg Config) (*Ring, error) {
	if cfg.Model == nil {
		cfg.Model = vtime.Default()
	}
	if cfg.Setup.FD < 0 {
		return nil, fmt.Errorf("%w: fd %d", ErrSetup, cfg.Setup.FD)
	}
	subBytes := ring.TotalBytes(cfg.Entries, SQEBytes)
	complBytes := ring.TotalBytes(cfg.Entries, CQEBytes)
	if !cfg.Space.InUntrusted(cfg.Setup.SubBase, subBytes) {
		return nil, fmt.Errorf("%w: iSub not exclusively in untrusted memory", ErrSetup)
	}
	if !cfg.Space.InUntrusted(cfg.Setup.ComplBase, complBytes) {
		return nil, fmt.Errorf("%w: iCompl not exclusively in untrusted memory", ErrSetup)
	}
	if mem.Overlaps(cfg.Setup.SubBase, subBytes, cfg.Setup.ComplBase, complBytes) {
		return nil, fmt.Errorf("%w: iSub overlaps iCompl", ErrSetup)
	}
	if cfg.WaitTimeout <= 0 {
		cfg.WaitTimeout = DefaultWaitTimeout
	}
	r := &Ring{
		fd: cfg.Setup.FD, space: cfg.Space, model: cfg.Model,
		counters:    cfg.Counters,
		waitTimeout: cfg.WaitTimeout,
		waker:       cfg.Waker,
		outstanding: make(map[uint64]SQE),
		results:     make(map[uint64]result),
	}
	var err error
	r.Sub, err = ring.New(ring.Config{
		Space: cfg.Space, Access: mem.RoleEnclave, Base: cfg.Setup.SubBase,
		Size: cfg.Entries, EntrySize: SQEBytes, Side: ring.Producer,
		Certified: true, Counters: cfg.Counters,
	})
	if err != nil {
		return nil, err
	}
	r.Compl, err = ring.New(ring.Config{
		Space: cfg.Space, Access: mem.RoleEnclave, Base: cfg.Setup.ComplBase,
		Size: cfg.Entries, EntrySize: CQEBytes, Side: ring.Consumer,
		Certified: true, Counters: cfg.Counters,
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// FD returns the ring's file descriptor (used by the Monitor Module).
func (r *Ring) FD() int { return r.fd }

// SetWaker installs the escalation ladder after construction (the runtime
// wires it once the Monitor Module watch exists).
func (r *Ring) SetWaker(w Waker) { r.waker = w }

// SetTrace attaches the owning thread's trace ring; ring traffic,
// completions, and refusals are recorded on it. A nil buf disables.
func (r *Ring) SetTrace(b *telemetry.Buf) { r.trace = b }

// Counters returns the ring's counter sink (shared with the FM layer).
func (r *Ring) Counters() *vtime.Counters { return r.counters }

// Escalate fires one waker rung for a stalled submission ring: the free
// nudge while the Monitor Module lives, the paid kick once it is dead.
func (r *Ring) Escalate() {
	if r.waker.Dead != nil && r.waker.Dead() && r.waker.Kick != nil {
		r.waker.Kick()
		return
	}
	if r.waker.Nudge != nil {
		r.waker.Nudge()
	}
}

// Submit places one request on iSub. The returned token identifies the
// request's completion. The Monitor Module notices the producer advance
// and issues io_uring_enter on the FM's behalf.
//
// The buffer range named by the SQE is about to be dereferenced by the
// host kernel, so it must not reference enclave memory: RAKIS always
// points SQEs at bounce buffers in shared memory (§4.1).
func (r *Ring) Submit(e SQE, clk *vtime.Clock) (uint64, error) {
	if e.Len > 0 && r.space.IntersectsTrusted(e.Addr, uint64(e.Len)) {
		return 0, fmt.Errorf("%w: [%#x,+%d)", ErrBufferPlacement, uint64(e.Addr), e.Len)
	}
	free, _ := r.Sub.Free()
	if free == 0 {
		free = r.reconcileSub()
	}
	if free == 0 {
		return 0, ErrFull
	}
	r.nextToken++
	e.UserData = r.nextToken
	slot, err := r.Sub.SlotBytes(0)
	if err != nil {
		return 0, err
	}
	PutSQE(slot, e)
	clk.Charge(vtime.CompRing, r.model.RingOp)
	r.Sub.Submit(1, clk.Now())
	r.trace.Emit(telemetry.EvRingProduce, clk.Now(), telemetry.RingUringSub, 1)
	r.outstanding[e.UserData] = e
	if r.counters != nil {
		r.counters.IoUringOps.Add(1)
		if e.Op == OpPollRemove {
			r.counters.PollCancels.Add(1)
		}
	}
	return e.UserData, nil
}

// SubmitN places up to len(es) requests on iSub as one run: every buffer
// placement is validated first, then one certified read of the free
// count sizes the batch and a single producer-index publish exposes all
// entries at once — so the Monitor Module sees one producer advance and
// the whole batch costs at most one io_uring_enter wakeup.
//
// Partial success follows sendmmsg conventions: the returned tokens
// cover the prefix that fit; an error is reported only when nothing
// could be submitted.
func (r *Ring) SubmitN(es []SQE, clk *vtime.Clock) ([]uint64, error) {
	if len(es) == 0 {
		return nil, nil
	}
	for _, e := range es {
		if e.Len > 0 && r.space.IntersectsTrusted(e.Addr, uint64(e.Len)) {
			return nil, fmt.Errorf("%w: [%#x,+%d)", ErrBufferPlacement, uint64(e.Addr), e.Len)
		}
	}
	free, _ := r.Sub.Free()
	if free == 0 {
		free = r.reconcileSub()
	}
	if free == 0 {
		return nil, ErrFull
	}
	n := uint32(len(es))
	if free < n {
		n = free
	}
	tokens := make([]uint64, 0, n)
	for i := uint32(0); i < n; i++ {
		e := es[i]
		slot, err := r.Sub.SlotBytes(i)
		if err != nil {
			if len(tokens) == 0 {
				return nil, err
			}
			break
		}
		r.nextToken++
		e.UserData = r.nextToken
		PutSQE(slot, e)
		r.outstanding[e.UserData] = e
		tokens = append(tokens, e.UserData)
		if r.counters != nil && e.Op == OpPollRemove {
			r.counters.PollCancels.Add(1)
		}
	}
	clk.Charge(vtime.CompRing, r.model.RingOp)
	r.Sub.Submit(uint32(len(tokens)), clk.Now())
	r.trace.Emit(telemetry.EvRingProduce, clk.Now(), telemetry.RingUringSub, uint64(len(tokens)))
	if r.counters != nil {
		r.counters.IoUringOps.Add(uint64(len(tokens)))
		r.counters.BatchCalls.Add(1)
		r.counters.BatchedMsgs.Add(uint64(len(tokens)))
	}
	return tokens, nil
}

// reconcileSub recovers a submission ring stuck behind a scribbled
// consumer cell. When every request the FM ever submitted has either a
// validated completion already consumed or a completion still parked in
// results, the kernel provably consumed every SQE — certified CQEs only
// exist for consumed SQEs — so cons == prod can be re-derived from
// trusted state alone and published over the hostile cell. Returns the
// post-resync free count.
func (r *Ring) reconcileSub() uint32 {
	if len(r.outstanding) != 0 || len(r.dropSet) != 0 {
		return 0
	}
	if err := r.Sub.ResyncPeer(r.Sub.Local()); err != nil {
		return 0
	}
	free, _ := r.Sub.Free()
	return free
}

// resPlausible applies the per-op result validation of Table 2.
//
//rakis:validator
func resPlausible(req SQE, res int32) bool {
	if res < 0 {
		// Errors are always a plausible outcome.
		return res > -4096
	}
	switch req.Op {
	case OpRead, OpRecv, OpWrite, OpSend:
		return uint32(res) <= req.Len
	case OpPollAdd:
		// Result is a revents mask; only requested events may fire,
		// plus error/hangup which the kernel may always report.
		return uint32(res)&^(req.OpFlags|0x18) == 0
	case OpNop, OpFsync, OpPollRemove:
		return res == 0
	default:
		return false
	}
}

// Drain consumes every available completion, validating each against its
// outstanding request (Table 2). Foreign completions are refused and
// skipped; implausible results are parked as -EPERM for their requester.
//
// Reaping is coalesced: one certified read of the available count sizes
// a run, every entry in the run is validated in place, and a single
// consumer-index publish releases the whole run — per-entry validation
// with batched ring traffic. The outer loop re-reads availability in
// case the kernel produced more completions during the run.
func (r *Ring) Drain(clk *vtime.Clock) {
	for {
		avail, _ := r.Compl.Available()
		if avail == 0 {
			return
		}
		for i := uint32(0); i < avail; i++ {
			// Single fetch: the CQE is frozen into trusted storage before
			// the outstanding-request match and the plausibility check, so
			// a host rewriting the live slot mid-validation cannot swap a
			// certified result for a hostile one.
			snap, err := r.Compl.SnapSlot(i)
			if err != nil {
				continue
			}
			cqe := SnapCQE(snap)
			clk.Sync(r.Compl.SlotStamp(i))
			clk.Charge(vtime.CompValidate, r.model.RingOp)
			pending, known := r.outstanding[cqe.UserData]
			if !known {
				if r.dropSet[cqe.UserData] {
					// An abandoned request's completion: silently discard.
					delete(r.dropSet, cqe.UserData)
					continue
				}
				// A completion we never asked for: refuse and advance.
				if r.counters != nil {
					r.counters.CQEViolations.Add(1)
				}
				r.trace.Emit(telemetry.EvRingRefusal, clk.Now(), telemetry.RingUringCompl, cqe.UserData)
				continue
			}
			delete(r.outstanding, cqe.UserData)
			if !resPlausible(pending, cqe.Res) {
				// Status code impossible for the request: -EPERM.
				if r.counters != nil {
					r.counters.CQEViolations.Add(1)
				}
				r.trace.Emit(telemetry.EvRingRefusal, clk.Now(), telemetry.RingUringCompl, uint64(uint32(cqe.Res)))
				r.results[cqe.UserData] = result{eperm: true}
				continue
			}
			r.trace.Emit(telemetry.EvCQEComplete, clk.Now(), cqe.UserData, uint64(uint32(cqe.Res)))
			r.results[cqe.UserData] = result{res: cqe.Res}
		}
		r.Compl.Release(avail)
	}
}

// TryWait reports whether token's completion has arrived, without
// blocking. The boolean is false while the request is still in flight.
func (r *Ring) TryWait(token uint64, clk *vtime.Clock) (int32, bool, error) {
	r.Drain(clk)
	res, ok := r.results[token]
	if !ok {
		if _, inFlight := r.outstanding[token]; !inFlight {
			return 0, true, fmt.Errorf("iouring: unknown token %d", token)
		}
		return 0, false, nil
	}
	delete(r.results, token)
	if res.eperm {
		return 0, true, EPERM
	}
	return res.res, true, nil
}

// Forget abandons an in-flight request (e.g. a poll that lost the race
// in the API submodule's aggregation, §4.2); its eventual completion is
// silently discarded by a later Drain instead of counting as hostile.
func (r *Ring) Forget(token uint64) {
	if _, ok := r.outstanding[token]; ok {
		delete(r.outstanding, token)
		if r.dropSet == nil {
			r.dropSet = make(map[uint64]bool)
		}
		r.dropSet[token] = true
	}
	delete(r.results, token)
}

// ResPlausibleForTest exposes the Table 2 result validator to the
// Testing Module, which checks it exhaustively against an independent
// oracle (§5.1).
func ResPlausibleForTest(req SQE, res int32) bool { return resPlausible(req, res) }

// Escalation ladder timing for Wait. Nudges are exit-free, so the first
// rung fires early; Kick pays an enclave exit and waits far past the
// kernel worker's own periodic scan so clean runs never pay it.
const (
	nudgeAfter = 2 * time.Millisecond
	kickAfter  = 250 * time.Millisecond
)

// Wait blocks until the completion for token arrives, validates it, and
// returns its result (the SyncProxy path: the user expects synchronous
// semantics, §4.2).
//
// If the completion stalls while SQEs provably sit unconsumed in iSub —
// the signature of a lost wakeup — Wait climbs the Waker ladder: repeated
// exit-free nudges to the Monitor Module with doubling backoff, then a
// paid direct kick, immediately skipping to the kick rung when the MM is
// known dead. A completion that never arrives within the wait timeout
// surfaces as ErrTimeout: the host can always withhold service, but only
// at an availability cost (§4.3).
// wedgedTimeout replaces waitTimeout once a previous Wait has already
// proven the kernel side unresponsive.
const wedgedTimeout = 100 * time.Millisecond

func (r *Ring) Wait(token uint64, clk *vtime.Clock) (int32, error) {
	start := time.Now()
	limit := r.waitTimeout
	if r.wedged && limit > wedgedTimeout {
		limit = wedgedTimeout
	}
	deadline := start.Add(limit)
	nudgeAt := start.Add(nudgeAfter)
	kickAt := start.Add(kickAfter)
	nudgeBackoff := nudgeAfter
	spins := 0
	for {
		res, done, err := r.TryWait(token, clk)
		if done {
			r.wedged = false
			return res, err
		}
		now := time.Now()
		if r.unconsumedSub() {
			mmDead := r.waker.Dead != nil && r.waker.Dead()
			if mmDead || now.After(kickAt) {
				if r.waker.Kick != nil {
					r.waker.Kick()
					if r.counters != nil {
						r.counters.WakeupRetries.Add(1)
					}
				}
				kickAt = now.Add(kickAfter)
			} else if now.After(nudgeAt) && r.waker.Nudge != nil {
				r.waker.Nudge()
				if r.counters != nil {
					r.counters.WakeupRetries.Add(1)
				}
				nudgeBackoff *= 2
				nudgeAt = now.Add(nudgeBackoff)
			}
		}
		spins++
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
		if now.After(deadline) {
			r.wedged = true
			delete(r.outstanding, token)
			return 0, ErrTimeout
		}
	}
}

// unconsumedSub reports whether iSub entries the FM published are still
// unconsumed as far as trusted state can tell. A refused (scribbled)
// consumer cell keeps the last trusted value, which also reads as
// unconsumed — escalating is correct there too, since the sweep that
// follows costs nothing when no work is actually pending.
func (r *Ring) unconsumedSub() bool {
	free, _ := r.Sub.Free()
	return free < r.Sub.Size()
}

// Outstanding returns the number of in-flight requests (for tests).
func (r *Ring) Outstanding() int { return len(r.outstanding) }
