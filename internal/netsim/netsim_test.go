package netsim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rakis/internal/vtime"
)

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func devPair(t *testing.T, aq, bq int) (*Device, *Device) {
	t.Helper()
	m := vtime.Default()
	a, b := NewPair(m,
		Config{Name: "eth0", MAC: [6]byte{2, 0, 0, 0, 0, 1}, Queues: aq, QueueDepth: 64},
		Config{Name: "eth1", MAC: [6]byte{2, 0, 0, 0, 0, 2}, Queues: bq, QueueDepth: 64},
	)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// ethFrame builds a minimal Ethernet+IPv4+UDP frame for RSS testing.
func ethFrame(srcPort, dstPort uint16, payload int) []byte {
	f := make([]byte, EthHeaderBytes+20+8+payload)
	f[12], f[13] = 0x08, 0x00 // IPv4
	ip := f[EthHeaderBytes:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[9] = 17   // UDP
	copy(ip[12:16], []byte{10, 0, 0, 1})
	copy(ip[16:20], []byte{10, 0, 0, 2})
	udp := ip[20:]
	udp[0], udp[1] = byte(srcPort>>8), byte(srcPort)
	udp[2], udp[3] = byte(dstPort>>8), byte(dstPort)
	return f
}

func TestDeliveryAndStamp(t *testing.T) {
	a, b := devPair(t, 1, 1)
	got := make(chan Frame, 1)
	b.Start(func(q int, f Frame, clk *vtime.Clock) { got <- f })
	a.Start(func(q int, f Frame, clk *vtime.Clock) {})

	end, err := a.Transmit(ethFrame(1000, 2000, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("transmit end time must be positive (serialization)")
	}
	f := <-got
	if len(f.Data) != EthHeaderBytes+28+100 {
		t.Fatalf("delivered %d bytes", len(f.Data))
	}
	if f.Stamp < end {
		t.Fatalf("frame stamp %d before wire end %d", f.Stamp, end)
	}
}

func TestWireEnforcesLineRate(t *testing.T) {
	a, b := devPair(t, 1, 1)
	var n atomic.Uint64
	b.Start(func(q int, f Frame, clk *vtime.Clock) { n.Add(1) })
	a.Start(func(q int, f Frame, clk *vtime.Clock) {})

	frame := ethFrame(1, 2, 1432) // 1474-byte frame
	var last uint64
	for i := 0; i < 1000; i++ {
		end, err := a.Transmit(frame, 0)
		if err != nil {
			t.Fatal(err)
		}
		last = end
	}
	// Every frame serialized on the wire; those that found the RX queue
	// full were dropped by the NIC, exactly like hardware under overload.
	waitFor(t, func() bool { return n.Load()+b.Queue(0).Dropped() == 1000 })
	m := vtime.Default()
	// 1000 frames * WireCycles each must serialize back to back.
	want := 1000 * m.WireCycles(len(frame))
	if last != want {
		t.Fatalf("wire end = %d, want %d (strict serialization)", last, want)
	}
	// Sanity: that corresponds to ~25 Gbps.
	gbps := float64(1000*(len(frame)+24)*8) / m.Seconds(last) / 1e9
	if gbps < 24 || gbps > 26 {
		t.Fatalf("wire rate = %.1f Gbps, want ~25", gbps)
	}
}

func TestRSSSpreadsFlows(t *testing.T) {
	a, b := devPair(t, 1, 4)
	var mu sync.Mutex
	seen := map[int]int{}
	var wg sync.WaitGroup
	wg.Add(64)
	b.Start(func(q int, f Frame, clk *vtime.Clock) {
		mu.Lock()
		seen[q]++
		mu.Unlock()
		wg.Done()
	})
	a.Start(func(q int, f Frame, clk *vtime.Clock) {})

	for i := 0; i < 64; i++ {
		if _, err := a.Transmit(ethFrame(uint16(5000+i), 53, 32), 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 {
		t.Fatalf("RSS used %d queues for 64 flows, want >= 2", len(seen))
	}
	// Same flow always lands on the same queue.
	if q := DefaultRSS(ethFrame(7777, 53, 10), 4); q != DefaultRSS(ethFrame(7777, 53, 500), 4) {
		t.Fatal("RSS not stable per flow")
	}
}

func TestRSSFallbacks(t *testing.T) {
	if DefaultRSS([]byte{1, 2, 3}, 4) != 0 {
		t.Fatal("short frame must hash to 0")
	}
	arp := make([]byte, 64)
	arp[12], arp[13] = 0x08, 0x06
	if DefaultRSS(arp, 4) != 0 {
		t.Fatal("non-IP frame must hash to 0")
	}
	if DefaultRSS(ethFrame(1, 2, 10), 1) != 0 {
		t.Fatal("single queue must be 0")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	m := vtime.Default()
	ctrs := &vtime.Counters{}
	a, b := NewPair(m,
		Config{Name: "a", QueueDepth: 8},
		Config{Name: "b", QueueDepth: 8, Counters: ctrs},
	)
	defer a.Close()
	defer b.Close()
	// b is never started: its queue fills and further frames drop.
	f := ethFrame(1, 2, 10)
	for i := 0; i < 20; i++ {
		a.Transmit(f, 0)
	}
	if got := b.Queue(0).Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	if ctrs.PacketsDropped.Load() != 12 {
		t.Fatalf("counter dropped = %d, want 12", ctrs.PacketsDropped.Load())
	}
	b.Start(func(q int, fr Frame, clk *vtime.Clock) {})
}

func TestMTUEnforced(t *testing.T) {
	a, b := devPair(t, 1, 1)
	b.Start(func(q int, f Frame, clk *vtime.Clock) {})
	a.Start(func(q int, f Frame, clk *vtime.Clock) {})
	big := make([]byte, EthHeaderBytes+1501)
	if _, err := a.Transmit(big, 0); !errors.Is(err, ErrTooLong) {
		t.Fatalf("oversized frame err = %v, want ErrTooLong", err)
	}
	ok := make([]byte, EthHeaderBytes+1500)
	if _, err := a.Transmit(ok, 0); err != nil {
		t.Fatalf("MTU-sized frame err = %v", err)
	}
}

func TestTransmitAfterClose(t *testing.T) {
	a, b := devPair(t, 1, 1)
	b.Start(func(q int, f Frame, clk *vtime.Clock) {})
	a.Start(func(q int, f Frame, clk *vtime.Clock) {})
	b.Close()
	if _, err := a.Transmit(ethFrame(1, 2, 10), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("transmit to closed peer err = %v, want ErrClosed", err)
	}
	a.Close()
	a.Close() // idempotent
}

func TestSoftirqClockAdvances(t *testing.T) {
	a, b := devPair(t, 1, 1)
	done := make(chan uint64, 1)
	b.Start(func(q int, f Frame, clk *vtime.Clock) { done <- clk.Now() })
	a.Start(func(q int, f Frame, clk *vtime.Clock) {})
	end, _ := a.Transmit(ethFrame(1, 2, 64), 12345)
	now := <-done
	if now < end+vtime.Default().NicPerFrame {
		t.Fatalf("softirq clock %d, want >= %d", now, end+vtime.Default().NicPerFrame)
	}
}

func TestDeviceAccessors(t *testing.T) {
	a, b := devPair(t, 2, 4)
	if a.Name() != "eth0" || b.Name() != "eth1" {
		t.Fatal("names")
	}
	if a.MAC() != [6]byte{2, 0, 0, 0, 0, 1} {
		t.Fatal("mac")
	}
	if a.MTU() != 1500 {
		t.Fatal("default MTU")
	}
	if a.NumQueues() != 2 || b.NumQueues() != 4 {
		t.Fatal("queue counts")
	}
	if a.Peer() != b || b.Peer() != a {
		t.Fatal("peers")
	}
	if a.Queue(1) == nil || a.Queue(1).Clock() == nil {
		t.Fatal("queue access")
	}
}

func TestCustomRSS(t *testing.T) {
	a, b := devPair(t, 1, 4)
	hit := make(chan int, 1)
	b.Start(func(q int, f Frame, clk *vtime.Clock) { hit <- q })
	a.Start(func(q int, f Frame, clk *vtime.Clock) {})
	// RSS is configured on the *receiving* interface.
	b.SetRSS(func(data []byte, queues int) int { return 3 })
	a.Transmit(ethFrame(1, 2, 10), 0)
	if q := <-hit; q != 3 {
		t.Fatalf("custom RSS queue = %d, want 3", q)
	}
	// Out-of-range RSS results clamp to queue 0.
	b.SetRSS(func(data []byte, queues int) int { return 99 })
	a.Transmit(ethFrame(1, 2, 10), 0)
	if q := <-hit; q != 0 {
		t.Fatalf("out-of-range RSS queue = %d, want 0", q)
	}
}
