// Package netsim simulates the evaluation testbed's network hardware: one
// NIC with two Ethernet interfaces wired in a loopback configuration at
// 25 Gbps (§6). Each Device has multiple receive queues with a simple RSS
// hash distributing incoming frames, matching the multi-queue setup the
// Memcached experiment relies on (four XSKs bound to four NIC queues).
//
// Frames carry virtual-time stamps. Transmission occupies the directed
// link's serialization Resource, enforcing the 25 Gbps cap; reception
// enqueues the frame on the RSS-selected queue, where a per-queue softirq
// worker goroutine (owning its own virtual clock) hands it to the handler
// installed by the simulated kernel — the XDP hook lives in the kernel
// (internal/hostos), not in the NIC.
package netsim

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"rakis/internal/chaos"
	"rakis/internal/telemetry"
	"rakis/internal/vtime"
)

// Frame is one Ethernet frame in flight, with its virtual-time stamp.
type Frame struct {
	// Data is the frame contents, owned by the receiver once delivered.
	Data []byte
	// Stamp is the virtual time at which the frame finished arriving.
	Stamp uint64
}

// Handler processes received frames in softirq context. It is installed
// by the simulated kernel and runs on the queue's worker goroutine; clk
// is that worker's virtual clock, already synced to the frame's arrival
// and charged the NIC per-frame cost.
type Handler func(queueID int, f Frame, clk *vtime.Clock)

// RSSFunc selects a receive queue for a frame.
type RSSFunc func(data []byte, queues int) int

// ErrClosed reports a transmit on a closed device.
var ErrClosed = errors.New("netsim: device closed")

// ErrTooLong reports a frame exceeding the device MTU plus headers.
var ErrTooLong = errors.New("netsim: frame exceeds MTU")

// Queue is one NIC receive queue.
type Queue struct {
	id      int
	ch      chan Frame
	clk     vtime.Clock
	dropped atomic.Uint64
	done    chan struct{}
}

// Clock returns the queue's softirq virtual clock.
func (q *Queue) Clock() *vtime.Clock { return &q.clk }

// Dropped returns the number of frames dropped because the queue was full.
func (q *Queue) Dropped() uint64 { return q.dropped.Load() }

// Device is one Ethernet interface.
type Device struct {
	name   string
	mac    [6]byte
	mtu    int
	model  *vtime.Model
	queues []*Queue
	rss    atomic.Value // RSSFunc

	txRes   vtime.Resource // this device's outbound serialization
	peer    *Device
	closeMu sync.RWMutex // guards queue channels against close-vs-send
	closed  atomic.Bool
	counter *vtime.Counters

	// chaos, when non-nil, makes the wire hostile: frames may be
	// dropped, bit-flipped, or duplicated, and softirq workers stalled.
	// Set before Start.
	chaos *chaos.Injector

	// trace, when non-nil, receives one event per softirq-processed
	// frame. Set before Start.
	trace *telemetry.Buf

	mu      sync.Mutex
	handler Handler
	started bool
}

// Config describes one device of a pair.
type Config struct {
	// Name is the interface name, for diagnostics.
	Name string
	// MAC is the hardware address.
	MAC [6]byte
	// Queues is the number of RX queues (default 1).
	Queues int
	// QueueDepth is the RX descriptor count per queue (default 2048,
	// the "2K NIC queue length" of §6.1).
	QueueDepth int
	// MTU is the link MTU (default 1500).
	MTU int
	// Counters receives packet statistics; it may be nil.
	Counters *vtime.Counters
}

func (c *Config) fill() {
	if c.Queues <= 0 {
		c.Queues = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2048
	}
	if c.MTU <= 0 {
		c.MTU = 1500
	}
}

// NewPair creates the two loopback-wired interfaces of the testbed.
func NewPair(model *vtime.Model, a, b Config) (*Device, *Device) {
	a.fill()
	b.fill()
	da := newDevice(model, a)
	db := newDevice(model, b)
	da.peer, db.peer = db, da
	return da, db
}

func newDevice(model *vtime.Model, cfg Config) *Device {
	d := &Device{
		name:    cfg.Name,
		mac:     cfg.MAC,
		mtu:     cfg.MTU,
		model:   model,
		counter: cfg.Counters,
	}
	d.rss.Store(RSSFunc(DefaultRSS))
	for i := 0; i < cfg.Queues; i++ {
		d.queues = append(d.queues, &Queue{
			id:   i,
			ch:   make(chan Frame, cfg.QueueDepth),
			done: make(chan struct{}),
		})
	}
	return d
}

// Name returns the interface name.
func (d *Device) Name() string { return d.name }

// MAC returns the hardware address.
func (d *Device) MAC() [6]byte { return d.mac }

// MTU returns the link MTU.
func (d *Device) MTU() int { return d.mtu }

// NumQueues returns the receive queue count.
func (d *Device) NumQueues() int { return len(d.queues) }

// Queue returns receive queue i.
func (d *Device) Queue(i int) *Queue { return d.queues[i] }

// Peer returns the device at the other end of the wire.
func (d *Device) Peer() *Device { return d.peer }

// SetRSS overrides the receive-side scaling function.
func (d *Device) SetRSS(f RSSFunc) { d.rss.Store(f) }

// SetChaos wires a fault injector into the device. Must be called
// before Start.
func (d *Device) SetChaos(in *chaos.Injector) { d.chaos = in }

// SetTelemetry routes per-frame softirq events to the given trace
// buffer. Must be called before Start.
func (d *Device) SetTelemetry(b *telemetry.Buf) { d.trace = b }

// Start installs the kernel's frame handler and launches the per-queue
// softirq workers. It must be called exactly once before traffic flows.
func (d *Device) Start(h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		panic("netsim: device started twice")
	}
	d.started = true
	d.handler = h
	for _, q := range d.queues {
		go d.softirq(q)
	}
}

func (d *Device) softirq(q *Queue) {
	defer close(q.done)
	for f := range q.ch {
		if s := d.chaos.SoftirqStall(); s > 0 {
			// Fault site (c): one receive worker frozen mid-stream.
			time.Sleep(s)
		}
		q.clk.SyncAdvance(f.Stamp, d.model.NicPerFrame)
		f.Stamp = q.clk.Now()
		d.trace.Emit(telemetry.EvSoftirqFrame, q.clk.Now(), uint64(q.id), uint64(len(f.Data)))
		d.handler(q.id, f, &q.clk)
	}
}

// Close stops the device: subsequent transmits toward it are dropped and
// its softirq workers drain and exit.
func (d *Device) Close() {
	if !d.closed.CompareAndSwap(false, true) {
		return
	}
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	// Exclude in-flight senders before closing the queue channels.
	d.closeMu.Lock()
	for _, q := range d.queues {
		close(q.ch)
	}
	d.closeMu.Unlock()
	if started {
		for _, q := range d.queues {
			<-q.done
		}
	}
}

// Transmit serializes a frame onto the wire at the given virtual start
// time and delivers it to the peer's RSS-selected queue. It returns the
// virtual time at which the frame finishes arriving. A full peer queue
// drops the frame, as NIC hardware does.
func (d *Device) Transmit(data []byte, start uint64) (end uint64, err error) {
	if len(data) > d.mtu+EthHeaderBytes {
		return 0, ErrTooLong
	}
	p := d.peer
	if d.closed.Load() || p == nil || p.closed.Load() {
		return 0, ErrClosed
	}
	end = d.txRes.Use(start, d.model.WireCycles(len(data)))
	if d.counter != nil {
		d.counter.PacketsTx.Add(1)
		d.counter.BytesTx.Add(uint64(len(data)))
	}
	// Hostile wire: the frame may vanish, arrive bit-flipped, or arrive
	// twice. Loss and duplication look exactly like congestion to the
	// endpoints; corruption must be caught by their checksums.
	copies := 1
	if d.chaos.NetDrop() {
		copies = 0
		if p.counter != nil {
			p.counter.PacketsDropped.Add(1)
		}
	} else if d.chaos.NetDup() {
		copies = 2
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.chaos.NetCorrupt(buf)
	// Receive-side scaling is the receiving NIC's function.
	qi := p.rss.Load().(RSSFunc)(buf, len(p.queues))
	if qi < 0 || qi >= len(p.queues) {
		qi = 0
	}
	q := p.queues[qi]
	// Hold the receiver's close guard across the send so a concurrent
	// Close cannot close the channel under us.
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return 0, ErrClosed
	}
	for i := 0; i < copies; i++ {
		select {
		case q.ch <- Frame{Data: buf, Stamp: end}:
		default:
			q.dropped.Add(1)
			if p.counter != nil {
				p.counter.PacketsDropped.Add(1)
			}
		}
	}
	return end, nil
}

// EthHeaderBytes is the Ethernet header size (no VLAN, no FCS in Data).
const EthHeaderBytes = 14

// DefaultRSS hashes the IPv4 5-tuple if the frame parses as IPv4 UDP/TCP,
// else returns queue 0. It is intentionally simple but stable per flow.
func DefaultRSS(data []byte, queues int) int {
	if queues <= 1 {
		return 0
	}
	if len(data) < EthHeaderBytes+20 {
		return 0
	}
	etherType := uint16(data[12])<<8 | uint16(data[13])
	if etherType != 0x0800 { // IPv4
		return 0
	}
	ip := data[EthHeaderBytes:]
	ihl := int(ip[0]&0x0F) * 4
	if ihl < 20 || len(ip) < ihl+4 {
		return 0
	}
	proto := ip[9]
	if proto != 17 && proto != 6 { // UDP, TCP
		return 0
	}
	h := uint32(2166136261)
	mix := func(b byte) { h = (h ^ uint32(b)) * 16777619 }
	for _, b := range ip[12:20] { // src+dst IP
		mix(b)
	}
	for _, b := range ip[ihl : ihl+4] { // src+dst port
		mix(b)
	}
	return int(h % uint32(queues))
}
