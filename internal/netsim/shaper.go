package netsim

// This file is the deterministic traffic shaper: pure schedules of
// virtual departure times that load generators replay. Nothing here
// touches a Device — the shaper decides *when* each datagram leaves,
// the workload decides what it is and sends it — so the same Shape
// drives every environment identically and a run is reproducible
// bit-for-bit.

// Phase is one segment of a shaped schedule: Count departures spaced
// Gap virtual cycles apart.
type Phase struct {
	// Name labels the phase in per-phase results ("burst", "quiet", ...).
	Name string
	// Count is how many datagrams depart during the phase.
	Count int
	// Gap is the virtual-cycle spacing between consecutive departures.
	Gap uint64
}

// Shape is a named sequence of phases.
type Shape struct {
	Name   string
	Phases []Phase
}

// Departure is one scheduled send: which phase it belongs to and its
// virtual-time offset from the start of the schedule.
type Departure struct {
	Phase int
	At    uint64
}

// Total returns the number of departures in the whole schedule.
func (s Shape) Total() int {
	n := 0
	for _, p := range s.Phases {
		n += p.Count
	}
	return n
}

// Schedule expands the shape into its departure list. Phases abut: the
// first departure of phase k+1 follows the last of phase k by phase
// k+1's gap.
func (s Shape) Schedule() []Departure {
	out := make([]Departure, 0, s.Total())
	var t uint64
	for pi, p := range s.Phases {
		for i := 0; i < p.Count; i++ {
			if len(out) > 0 || i > 0 {
				t += p.Gap
			}
			out = append(out, Departure{Phase: pi, At: t})
		}
	}
	return out
}

// StepShape is a two-level step load: a trickle phase followed by a
// sustained high-rate phase — the canonical ramp-up/ramp-down probe for
// a control loop.
func StepShape(lowN int, lowGap uint64, highN int, highGap uint64) Shape {
	return Shape{Name: "step", Phases: []Phase{
		{Name: "low", Count: lowN, Gap: lowGap},
		{Name: "high", Count: highN, Gap: highGap},
	}}
}

// BurstShape is an on/off burst pattern: cycles repetitions of a dense
// burst followed by a sparse quiet tail. Bursts should be long relative
// to a tuner's guard window, or hysteresis (correctly) refuses to
// follow them.
func BurstShape(cycles, burstN int, burstGap uint64, quietN int, quietGap uint64) Shape {
	s := Shape{Name: "burst"}
	for i := 0; i < cycles; i++ {
		s.Phases = append(s.Phases,
			Phase{Name: "burst", Count: burstN, Gap: burstGap},
			Phase{Name: "quiet", Count: quietN, Gap: quietGap},
		)
	}
	return s
}

// DiurnalShape approximates a day's traffic curve in five steps: night
// trickle, morning ramp, midday peak, evening ramp-down, night again.
// peakGap spaces departures at the peak; the shoulders run at 4x and
// the nights at 32x that spacing.
func DiurnalShape(peakN int, peakGap uint64) Shape {
	shoulderN := peakN / 2
	nightN := peakN / 8
	if shoulderN < 1 {
		shoulderN = 1
	}
	if nightN < 1 {
		nightN = 1
	}
	return Shape{Name: "diurnal", Phases: []Phase{
		{Name: "night", Count: nightN, Gap: 32 * peakGap},
		{Name: "morning", Count: shoulderN, Gap: 4 * peakGap},
		{Name: "midday", Count: peakN, Gap: peakGap},
		{Name: "evening", Count: shoulderN, Gap: 4 * peakGap},
		{Name: "night2", Count: nightN, Gap: 32 * peakGap},
	}}
}
