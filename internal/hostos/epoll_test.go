package hostos

import (
	"errors"
	"testing"
	"time"

	"rakis/internal/netstack"
	"rakis/internal/vtime"
)

func TestEpollKernelObject(t *testing.T) {
	w := newTestWorld(t)
	var clk vtime.Clock

	epfd, err := w.sproc.EpollCreate(&clk)
	if err != nil {
		t.Fatal(err)
	}
	ufd, _ := w.sproc.Socket(SockUDP, &clk)
	w.sproc.Bind(ufd, 8300, &clk)
	ffd, _ := w.sproc.Open("/epoll-file", OCreate|ORdwr, &clk)

	if err := w.sproc.EpollCtl(epfd, EpollCtlAdd, ufd, PollIn, &clk); err != nil {
		t.Fatal(err)
	}
	if err := w.sproc.EpollCtl(epfd, EpollCtlAdd, ffd, PollIn|PollOut, &clk); err != nil {
		t.Fatal(err)
	}

	// The file is immediately ready; the socket is not.
	evs := make([]EpollEvent, 4)
	n, err := w.sproc.EpollWait(epfd, evs, 0, &clk)
	if err != nil || n != 1 || evs[0].FD != ffd {
		t.Fatalf("wait = %d, %v, %+v", n, err, evs[:1])
	}

	// Remove the file; now an idle wait times out.
	if err := w.sproc.EpollCtl(epfd, EpollCtlDel, ffd, 0, &clk); err != nil {
		t.Fatal(err)
	}
	if n, _ := w.sproc.EpollWait(epfd, evs, 10*time.Millisecond, &clk); n != 0 {
		t.Fatalf("idle wait fired %d", n)
	}

	// A datagram wakes a blocking wait.
	go func() {
		var cclk vtime.Clock
		cfd, _ := w.cproc.Socket(SockUDP, &cclk)
		time.Sleep(5 * time.Millisecond)
		w.cproc.SendTo(cfd, []byte("x"), netstack.Addr{IP: netstack.IP4{10, 0, 0, 2}, Port: 8300}, &cclk)
	}()
	n, err = w.sproc.EpollWait(epfd, evs, 2*time.Second, &clk)
	if err != nil || n != 1 || evs[0].FD != ufd || evs[0].Events&PollIn == 0 {
		t.Fatalf("blocking wait = %d, %v, %+v", n, err, evs[:1])
	}

	// Error paths.
	if _, err := w.sproc.EpollWait(ufd, evs, 0, &clk); !errors.Is(err, ErrInval) {
		t.Fatal("epoll_wait on a non-epoll fd must be EINVAL")
	}
	if err := w.sproc.EpollCtl(epfd, 99, ufd, 0, &clk); !errors.Is(err, ErrInval) {
		t.Fatal("bad ctl op must be EINVAL")
	}
	if err := w.sproc.EpollCtl(epfd, EpollCtlAdd, 9999, PollIn, &clk); !errors.Is(err, ErrBadFD) {
		t.Fatal("adding a bad fd must fail")
	}
	if err := w.sproc.Close(epfd, &clk); err != nil {
		t.Fatal(err)
	}
}
