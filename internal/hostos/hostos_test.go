package hostos

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"rakis/internal/mem"
	"rakis/internal/netsim"
	"rakis/internal/netstack"
	"rakis/internal/vtime"
)

type testWorld struct {
	kern   *Kernel
	client *NetNS
	server *NetNS
	cproc  *Proc
	sproc  *Proc
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	m := vtime.Default()
	space := mem.NewSpace(1<<24, 1<<26)
	kern := NewKernel(space, m)
	cd, sd := netsim.NewPair(m,
		netsim.Config{Name: "veth0", MAC: [6]byte{2, 0, 0, 0, 0, 1}, Queues: 4},
		netsim.Config{Name: "veth1", MAC: [6]byte{2, 0, 0, 0, 0, 2}, Queues: 4},
	)
	client, err := kern.AddNetNS("client", cd, netstack.IP4{10, 0, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	server, err := kern.AddNetNS("server", sd, netstack.IP4{10, 0, 0, 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(kern.Close)
	return &testWorld{
		kern:   kern,
		client: client,
		server: server,
		cproc:  kern.NewProc(client, &vtime.Counters{}),
		sproc:  kern.NewProc(server, &vtime.Counters{}),
	}
}

func TestVFSBasics(t *testing.T) {
	v := NewVFS()
	v.WriteFile("/data/a.txt", []byte("hello"))
	got, err := v.ReadFile("/data/a.txt")
	if err != nil || string(got) != "hello" {
		t.Fatalf("%q %v", got, err)
	}
	if _, err := v.Lookup("/missing"); !errors.Is(err, ErrNoEnt) {
		t.Fatal("missing file must be ErrNoEnt")
	}
	ino := v.Create("/data/a.txt") // create truncates
	if ino.Size() != 0 {
		t.Fatal("Create must truncate")
	}
	ino.WriteAt([]byte("xyz"), 5)
	if ino.Size() != 8 {
		t.Fatalf("sparse write size = %d, want 8", ino.Size())
	}
	buf := make([]byte, 8)
	if n := ino.ReadAt(buf, 0); n != 8 || !bytes.Equal(buf[:5], make([]byte, 5)) {
		t.Fatalf("sparse read = %d %q", n, buf)
	}
	ino.Truncate(2)
	if ino.Size() != 2 {
		t.Fatal("truncate failed")
	}
	if err := v.Unlink("/data/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := v.Unlink("/data/a.txt"); !errors.Is(err, ErrNoEnt) {
		t.Fatal("double unlink must fail")
	}
	if len(v.List()) != 0 {
		t.Fatal("List after unlink")
	}
}

func TestFileSyscalls(t *testing.T) {
	w := newTestWorld(t)
	var clk vtime.Clock
	fd, err := w.sproc.Open("/tmp/f", OCreate|ORdwr, &clk)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := w.sproc.Write(fd, []byte("0123456789"), &clk); n != 10 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	if off, err := w.sproc.Lseek(fd, 2, 0, &clk); off != 2 || err != nil {
		t.Fatalf("lseek = %d, %v", off, err)
	}
	buf := make([]byte, 4)
	if n, err := w.sproc.Read(fd, buf, &clk); n != 4 || string(buf) != "2345" || err != nil {
		t.Fatalf("read = %d %q %v", n, buf, err)
	}
	if n, err := w.sproc.Pread(fd, buf, 6, &clk); n != 4 || string(buf) != "6789" || err != nil {
		t.Fatalf("pread = %d %q %v", n, buf, err)
	}
	if n, err := w.sproc.Pwrite(fd, []byte("XX"), 0, &clk); n != 2 || err != nil {
		t.Fatalf("pwrite = %d %v", n, err)
	}
	if size, err := w.sproc.Fstat(fd, &clk); size != 10 || err != nil {
		t.Fatalf("fstat = %d %v", size, err)
	}
	if err := w.sproc.Fsync(fd, &clk); err != nil {
		t.Fatal(err)
	}
	if err := w.sproc.Close(fd, &clk); err != nil {
		t.Fatal(err)
	}
	if _, err := w.sproc.Read(fd, buf, &clk); !errors.Is(err, ErrBadFD) {
		t.Fatal("read after close must be ErrBadFD")
	}
	data, _ := w.kern.VFS().ReadFile("/tmp/f")
	if string(data) != "XX23456789" {
		t.Fatalf("final contents %q", data)
	}
	if clk.Now() == 0 {
		t.Fatal("syscalls must cost virtual time")
	}
	if w.sproc.Counters.Syscalls.Load() == 0 {
		t.Fatal("syscall counter must advance")
	}
}

func TestUDPSyscallsAcrossNamespaces(t *testing.T) {
	w := newTestWorld(t)
	var cclk, sclk vtime.Clock

	sfd, err := w.sproc.Socket(SockUDP, &sclk)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.sproc.Bind(sfd, 7777, &sclk); err != nil {
		t.Fatal(err)
	}
	cfd, err := w.cproc.Socket(SockUDP, &cclk)
	if err != nil {
		t.Fatal(err)
	}
	dst := netstack.Addr{IP: netstack.IP4{10, 0, 0, 2}, Port: 7777}
	if _, err := w.cproc.SendTo(cfd, []byte("ping"), dst, &cclk); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, src, err := w.sproc.RecvFrom(sfd, buf, &sclk, true)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("recvfrom = %q %v", buf[:n], err)
	}
	if src.IP != (netstack.IP4{10, 0, 0, 1}) {
		t.Fatalf("src = %v", src)
	}
	// Reply via connect/send.
	if err := w.sproc.Connect(sfd, src, &sclk); err != nil {
		t.Fatal(err)
	}
	if _, err := w.sproc.Send(sfd, []byte("pong"), &sclk); err != nil {
		t.Fatal(err)
	}
	n, err = w.cproc.Recv(cfd, buf, &cclk, true)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("recv = %q %v", buf[:n], err)
	}
}

func TestTCPSyscallsAcrossNamespaces(t *testing.T) {
	w := newTestWorld(t)
	var sclk vtime.Clock
	lfd, err := w.sproc.Socket(SockTCP, &sclk)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.sproc.Bind(lfd, 6379, &sclk); err != nil {
		t.Fatal(err)
	}
	if err := w.sproc.Listen(lfd, 16, &sclk); err != nil {
		t.Fatal(err)
	}
	go func() {
		var clk vtime.Clock
		cfd, _, err := w.sproc.Accept(lfd, &clk, true)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, err := w.sproc.Recv(cfd, buf, &clk, true)
		if err != nil {
			t.Errorf("server recv: %v", err)
			return
		}
		w.sproc.Send(cfd, bytes.ToUpper(buf[:n]), &clk)
	}()

	var cclk vtime.Clock
	cfd, err := w.cproc.Socket(SockTCP, &cclk)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.cproc.Connect(cfd, netstack.Addr{IP: netstack.IP4{10, 0, 0, 2}, Port: 6379}, &cclk); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cproc.Send(cfd, []byte("hello"), &cclk); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := w.cproc.Recv(cfd, buf, &cclk, true)
	if err != nil || string(buf[:n]) != "HELLO" {
		t.Fatalf("reply = %q %v", buf[:n], err)
	}
	if err := w.cproc.Close(cfd, &cclk); err != nil {
		t.Fatal(err)
	}
}

func TestPollSyscall(t *testing.T) {
	w := newTestWorld(t)
	var clk vtime.Clock
	ufd, _ := w.sproc.Socket(SockUDP, &clk)
	w.sproc.Bind(ufd, 8888, &clk)
	ffd, _ := w.sproc.Open("/f", OCreate|ORdwr, &clk)

	fds := []PollFD{
		{FD: ufd, Events: PollIn},
		{FD: ffd, Events: PollIn | PollOut},
	}
	n, err := w.sproc.Poll(fds, 0, &clk)
	if err != nil || n != 1 {
		t.Fatalf("poll = %d, %v; want file ready only", n, err)
	}
	if fds[0].Revents != 0 || fds[1].Revents == 0 {
		t.Fatalf("revents = %v / %v", fds[0].Revents, fds[1].Revents)
	}

	// Make the socket readable and poll again with a wait.
	go func() {
		var cclk vtime.Clock
		cfd, _ := w.cproc.Socket(SockUDP, &cclk)
		time.Sleep(5 * time.Millisecond)
		w.cproc.SendTo(cfd, []byte("x"), netstack.Addr{IP: netstack.IP4{10, 0, 0, 2}, Port: 8888}, &cclk)
	}()
	n, err = w.sproc.Poll([]PollFD{{FD: ufd, Events: PollIn}}, time.Second, &clk)
	if err != nil || n != 1 {
		t.Fatalf("blocking poll = %d, %v", n, err)
	}

	// Bad fd reports PollErr.
	n, _ = w.sproc.Poll([]PollFD{{FD: 999, Events: PollIn}}, 0, &clk)
	if n != 1 {
		t.Fatal("bad fd must report an event")
	}
}

func TestFreeProcCostsNothing(t *testing.T) {
	w := newTestWorld(t)
	w.cproc.Free = true
	var clk vtime.Clock
	fd, _ := w.cproc.Open("/x", OCreate|ORdwr, &clk)
	w.cproc.Write(fd, make([]byte, 4096), &clk)
	if clk.Now() != 0 {
		t.Fatalf("free proc clock = %d, want 0", clk.Now())
	}
	// Counter still ticks: the work happened, it just costs nothing.
	if w.cproc.Counters.Syscalls.Load() == 0 {
		t.Fatal("syscalls still counted for free procs")
	}
}

func TestSyscallErrnoPaths(t *testing.T) {
	w := newTestWorld(t)
	var clk vtime.Clock
	if _, err := w.sproc.Read(42, nil, &clk); !errors.Is(err, ErrBadFD) {
		t.Fatal("read bad fd")
	}
	ufd, _ := w.sproc.Socket(SockUDP, &clk)
	if _, err := w.sproc.Read(ufd, nil, &clk); !errors.Is(err, ErrNotFile) {
		t.Fatal("read on socket must be ErrNotFile")
	}
	ffd, _ := w.sproc.Open("/f", OCreate, &clk)
	if _, err := w.sproc.Send(ffd, nil, &clk); !errors.Is(err, ErrNotSocket) {
		t.Fatal("send on file must be ErrNotSocket")
	}
	if _, err := w.sproc.Open("/nope", ORdonly, &clk); !errors.Is(err, ErrNoEnt) {
		t.Fatal("open missing must be ErrNoEnt")
	}
	if _, _, err := w.sproc.Accept(ufd, &clk, false); !errors.Is(err, ErrNotSocket) {
		t.Fatal("accept on udp must fail")
	}
	if err := w.sproc.Close(12345, &clk); !errors.Is(err, ErrBadFD) {
		t.Fatal("close bad fd")
	}
}

func TestXDPHookVerdicts(t *testing.T) {
	w := newTestWorld(t)
	// Attach a dropping XDP program on the server for UDP port 9999 and
	// verify the kernel stack no longer sees those datagrams.
	w.server.AttachXDP(func(frame []byte) Verdict {
		_, ipPayload, err := netstack.ParseEth(frame)
		if err != nil {
			return VerdictPass
		}
		h, l4, err := netstack.ParseIPv4(ipPayload)
		if err != nil || h.Proto != netstack.ProtoUDP || len(l4) < 4 {
			return VerdictPass
		}
		dport := uint16(l4[2])<<8 | uint16(l4[3])
		if dport == 9999 {
			return VerdictDrop
		}
		return VerdictPass
	})
	var sclk, cclk vtime.Clock
	drop, _ := w.sproc.Socket(SockUDP, &sclk)
	w.sproc.Bind(drop, 9999, &sclk)
	pass, _ := w.sproc.Socket(SockUDP, &sclk)
	w.sproc.Bind(pass, 9998, &sclk)

	cfd, _ := w.cproc.Socket(SockUDP, &cclk)
	w.cproc.SendTo(cfd, []byte("drop me"), netstack.Addr{IP: netstack.IP4{10, 0, 0, 2}, Port: 9999}, &cclk)
	w.cproc.SendTo(cfd, []byte("pass me"), netstack.Addr{IP: netstack.IP4{10, 0, 0, 2}, Port: 9998}, &cclk)

	buf := make([]byte, 64)
	n, _, err := w.sproc.RecvFrom(pass, buf, &sclk, true)
	if err != nil || string(buf[:n]) != "pass me" {
		t.Fatalf("pass socket = %q %v", buf[:n], err)
	}
	if _, _, err := w.sproc.RecvFrom(drop, buf, &sclk, false); !errors.Is(err, netstack.ErrWouldBlock) {
		t.Fatal("dropped datagram must never arrive")
	}
}
